// Table 1 + Figures 1 and 2: the worked enumeration examples of §3.1–3.2.
//
// Prints, for the ⟦2,2,4⟧ machine: Table 1's rows (rank 10 under every
// order), Fig. 1's initial layout, and Fig. 2's six reordered layouts with
// their subcommunicator coloring, metrics, and Slurm --distribution
// equivalents ("not possible" where Slurm cannot express the order).
#include <iomanip>
#include <iostream>

#include "mixradix/mr/decompose.hpp"
#include "mixradix/mr/equivalence.hpp"
#include "mixradix/mr/metrics.hpp"
#include "mixradix/slurm/distribution.hpp"
#include "mixradix/util/strings.hpp"

namespace {

using namespace mr;

void print_layout(const Hierarchy& h, const std::vector<std::int64_t>& new_rank,
                  std::int64_t comm_size) {
  // Physical grid: nodes side by side, one row per socket.
  const int nodes = h[0], sockets = h[1], cores = h[2];
  for (int s = 0; s < sockets; ++s) {
    for (int n = 0; n < nodes; ++n) {
      std::cout << "  node" << n << ".socket" << s << ": ";
      for (int c = 0; c < cores; ++c) {
        const std::int64_t core = (n * sockets + s) * cores + c;
        const std::int64_t r = new_rank[static_cast<std::size_t>(core)];
        std::cout << std::setw(3) << r << "(c" << r / comm_size << ")";
      }
      std::cout << "   ";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  const Hierarchy h{2, 2, 4};

  std::cout << "== Table 1 — orders applied to rank 10 on " << h.to_string()
            << " ==\n";
  std::cout << std::left << std::setw(12) << "order" << std::setw(22)
            << "permuted coordinates" << std::setw(20) << "permuted hierarchy"
            << "new rank\n";
  const Coords coords = decompose(h, 10);
  for (const Order& order : all_orders_lexicographic(h.depth())) {
    std::vector<int> permuted_coords;
    for (int level : order) {
      permuted_coords.push_back(coords[static_cast<std::size_t>(level)]);
    }
    std::cout << std::left << std::setw(12) << order_to_string(order)
              << std::setw(22)
              << ("[" + util::join_ints(permuted_coords, ", ") + "]")
              << std::setw(20) << h.permuted(order).to_string()
              << reorder_rank(h, 10, order) << "\n";
  }

  std::cout << "\n== Fig. 1 — initial ranks on " << h.to_string() << " ==\n";
  print_layout(h, reorder_all_ranks(h, {2, 1, 0}), 4);

  std::cout << "\n== Fig. 2 — all orders, subcommunicators of 4 (cN = comm id) ==\n";
  // Characterize all h! orders in one batch chunked across the shared
  // thread pool (output below stays in lexicographic order regardless).
  const auto orders = all_orders_lexicographic(h.depth());
  const auto characters = characterize_orders(h, orders, 4);
  for (std::size_t i = 0; i < orders.size(); ++i) {
    const auto dist = slurm::equivalent_distribution(h, orders[i]);
    std::cout << "order " << characters[i].to_string() << "  --distribution="
              << (dist ? dist->to_string() : "(not possible)") << "\n";
    print_layout(h, reorder_all_ranks(h, orders[i]), 4);
  }

  std::cout << "\n== §3.3 — order equivalence classes (SameSetsOnly) ==\n";
  for (const auto& cls : classify_orders(h, 4, Equivalence::SameSetsOnly)) {
    std::cout << "  class of " << cls.representative.to_string() << ": "
              << cls.members.size() << " order(s)\n";
  }
  return 0;
}
