// Enumeration-kernel scaling: the screening phase of a deep-hierarchy
// enumeration (classify all h! orders, then characterize every order) run
// with the closed-form fast kernels and with the brute-force reference
// kernels, serially and over the shared pool.
//
// The reference path pays O(s^2) per order for the pair scan and a
// map-of-placements for classification; the fast path is O(h^2) per order
// plus a hashed two-pass grouping. On the depth-7/8 machines below the
// difference is the gap between "screen in milliseconds" and "screen in
// tens of seconds". The bench verifies that all four combinations
// {fast, reference} x {serial, threaded} render byte-identical class
// lists, representatives and per-order characters, spot-checks
// nth_order_lexicographic against the materialised order list, and writes
// BENCH_enum.json so the speedup is tracked across PRs. Pass --quick for
// CI-sized comm sizes.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "mixradix/mr/equivalence.hpp"

namespace {

struct MachineCase {
  std::string name;
  mr::Hierarchy hierarchy;
  std::int64_t comm_size;
};

struct EnumRun {
  std::string csv;
  double classify_seconds = 0.0;
  double characterize_seconds = 0.0;
  mr::ClassifyStats stats;

  double total_seconds() const { return classify_seconds + characterize_seconds; }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// One full screening pass: classify the order space at the benchmarking
// granularity, then characterize every order, and render both to a
// deterministic CSV (the byte-identity witness).
EnumRun run_enumeration(const MachineCase& mc, const std::vector<mr::Order>& orders,
                        mr::MetricsImpl impl, int threads) {
  EnumRun run;

  const auto classify_start = std::chrono::steady_clock::now();
  const auto classes =
      mr::classify_orders(mc.hierarchy, mc.comm_size,
                          mr::Equivalence::SameSetsAndInternal, threads, impl,
                          &run.stats);
  run.classify_seconds = seconds_since(classify_start);

  const auto characterize_start = std::chrono::steady_clock::now();
  const auto characters =
      mr::characterize_orders(mc.hierarchy, orders, mc.comm_size, threads, impl);
  run.characterize_seconds = seconds_since(characterize_start);

  std::ostringstream csv;
  csv << "class;representative;members\n";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    csv << i << ";" << classes[i].representative.to_string() << ";";
    for (std::size_t m = 0; m < classes[i].members.size(); ++m) {
      csv << (m ? " " : "") << mr::order_to_string(classes[i].members[m]);
    }
    csv << "\n";
  }
  csv << "character\n";
  for (const auto& character : characters) {
    csv << character.to_string() << "\n";
  }
  run.csv = csv.str();
  return run;
}

// Spot-check the shardable unranking against the materialised list: a
// handful of evenly spaced indices plus the two endpoints.
bool unranking_matches(int depth, const std::vector<mr::Order>& orders) {
  const long long total = mr::factorial(depth);
  const long long step = total > 8 ? total / 8 : 1;
  for (long long index = 0; index < total; index += step) {
    if (mr::nth_order_lexicographic(depth, index) !=
        orders[static_cast<std::size_t>(index)]) {
      return false;
    }
  }
  return mr::nth_order_lexicographic(depth, total - 1) == orders.back();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::erase_if(args, [&](const std::string& arg) {
    if (arg == "--quick") quick = true;
    return arg == "--quick";
  });
  bench::Options opts;
  try {
    opts = bench::Options::parse_args(args);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << " (enum_scaling also accepts --quick)\n";
    return 2;
  }
  const int threads = opts.resolved_threads();

  // Depth 7 and 8: past the deepest paper machine (lumi, h=5), where the
  // reference kernels stop being viable as a screening step. --quick
  // shrinks the communicators (and with them the O(s^2) reference cost)
  // to CI scale; the identity checks are equally strict either way.
  const std::vector<MachineCase> cases = {
      {"deep7", mr::Hierarchy{4, 2, 2, 2, 2, 2, 8}, quick ? 64 : 128},
      {"deep8", mr::Hierarchy{2, 2, 2, 2, 2, 2, 2, 2}, quick ? 32 : 64},
  };

  bool all_identical = true;
  bool all_unranked = true;
  double min_speedup = 0.0;
  std::ostringstream machines_json;

  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const MachineCase& mc = cases[ci];
    const auto orders = mr::all_orders_lexicographic(mc.hierarchy.depth());
    std::cout << "enum_scaling[" << mc.name << "]: hierarchy "
              << mc.hierarchy.to_string() << ", " << orders.size()
              << " orders, subcommunicators of " << mc.comm_size << "\n";

    const EnumRun ref_serial =
        run_enumeration(mc, orders, mr::MetricsImpl::Reference, 1);
    const EnumRun ref_threaded =
        run_enumeration(mc, orders, mr::MetricsImpl::Reference, threads);
    const EnumRun fast_serial =
        run_enumeration(mc, orders, mr::MetricsImpl::Fast, 1);
    const EnumRun fast_threaded =
        run_enumeration(mc, orders, mr::MetricsImpl::Fast, threads);

    const auto report = [](const char* label, const EnumRun& run) {
      std::cout << "  " << label << ": " << run.total_seconds()
                << " s (classify " << run.classify_seconds << " + characterize "
                << run.characterize_seconds << ")\n";
    };
    report("reference serial  ", ref_serial);
    report("reference threaded", ref_threaded);
    report("fast serial       ", fast_serial);
    report("fast threaded     ", fast_threaded);
    bench::print_kernel_counters(std::cout, mc.name + "-fast",
                                 fast_threaded.stats,
                                 fast_threaded.classify_seconds);

    const double speedup_serial =
        fast_serial.total_seconds() > 0
            ? ref_serial.total_seconds() / fast_serial.total_seconds()
            : 0.0;
    const double speedup_threaded =
        fast_threaded.total_seconds() > 0
            ? ref_threaded.total_seconds() / fast_threaded.total_seconds()
            : 0.0;
    const bool identical = ref_serial.csv == ref_threaded.csv &&
                           ref_serial.csv == fast_serial.csv &&
                           ref_serial.csv == fast_threaded.csv;
    const bool unranked = unranking_matches(mc.hierarchy.depth(), orders);
    std::cout << "  closed-form speedup: " << speedup_serial << "x serial, "
              << speedup_threaded << "x threaded\n"
              << "  output identical across {fast,reference} x {1," << threads
              << "} threads: "
              << (identical ? "yes" : "NO — KERNEL MISMATCH") << "\n"
              << "  unranking spot-check: " << (unranked ? "ok" : "MISMATCH")
              << "\n";

    all_identical = all_identical && identical;
    all_unranked = all_unranked && unranked;
    min_speedup =
        ci == 0 ? speedup_serial : std::min(min_speedup, speedup_serial);

    machines_json << "    {\n"
                  << "      \"name\": \"" << mc.name << "\",\n"
                  << "      \"orders\": " << orders.size() << ",\n"
                  << "      \"comm_size\": " << mc.comm_size << ",\n"
                  << "      \"classes\": " << fast_threaded.stats.classes
                  << ",\n"
                  << "      \"signatures_hashed\": "
                  << fast_threaded.stats.signatures_hashed << ",\n"
                  << "      \"hash_collisions\": "
                  << fast_threaded.stats.hash_collisions << ",\n"
                  << "      \"reference_serial_seconds\": "
                  << ref_serial.total_seconds() << ",\n"
                  << "      \"reference_threaded_seconds\": "
                  << ref_threaded.total_seconds() << ",\n"
                  << "      \"fast_serial_seconds\": "
                  << fast_serial.total_seconds() << ",\n"
                  << "      \"fast_threaded_seconds\": "
                  << fast_threaded.total_seconds() << ",\n"
                  << "      \"speedup_serial\": " << speedup_serial << ",\n"
                  << "      \"speedup_threaded\": " << speedup_threaded << "\n"
                  << "    }" << (ci + 1 < cases.size() ? "," : "") << "\n";

    if (!opts.csv_path.empty() && ci == 0) {
      std::ofstream csv(opts.csv_path);
      csv << fast_threaded.csv;
      std::cout << "  csv written to " << opts.csv_path << "\n";
    }
    std::cout << "\n";
  }

  std::ofstream json("BENCH_enum.json");
  json << "{\n"
       << "  \"bench\": \"enum_scaling\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"machines\": [\n"
       << machines_json.str() << "  ],\n"
       << "  \"min_speedup\": " << min_speedup << ",\n"
       << "  \"identical_output\": "
       << (all_identical && all_unranked ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "json written to BENCH_enum.json\n";

  return all_identical && all_unranked ? 0 : 1;
}
