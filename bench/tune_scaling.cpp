// mr::tune funnel validation and scaling: the three claims the autotuner
// ships with, measured and gated.
//
//  A. AGREEMENT — on every preset machine x paper message size, the
//     funnel's top-1 order equals the exhaustive sweep's argmin (the same
//     query with dedup and pruning disabled simulates all h! orders).
//  B. SCALING — on deep hierarchies (depth >= 6) the funnel runs >= 5x
//     fewer FlowSim invocations than exhaustive enumeration, while staying
//     SOUND: every pruned candidate's exhaustive score really is outside
//     the top k, and every dedup class member scores exactly its
//     representative's score.
//  C. DETERMINISM — the canonical JSON report is byte-identical for
//     --threads=1 and --threads=4.
//  D. AMORTIZATION — on a multi-payload query the BoundCache computes each
//     binding class's payload-invariant structure ONCE and evaluates it
//     across the payload grid (>= 5x fewer full route-resolution passes),
//     with the canonical report byte-identical for {cache on, off} x
//     {serial, threaded}; and an incremental re-tune seeded from a
//     subset-grid report reaches the cold run's exact top-k with strictly
//     fewer simulated candidates.
//
// Verdicts land in BENCH_tune.json (`top1_matches_exhaustive`,
// `pruning_sound`, `sim_reduction`, `identical_output`, `identical_ranking`,
// `bound_reuse_ratio`, `incremental_same_topk`) so CI greps them.
// Pass --quick to trim part A's size axis and skip the depth-7 search.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/tune/report.hpp"
#include "mixradix/tune/search.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Depth-6 variant of Hydra: the paper's node/socket/half/core levels with
/// the socket split into two NUMA domains and the core level into halves —
/// 6! = 720 orders, past what exhaustive sweeps comfortably enumerate.
mr::topo::Machine deep6() {
  std::vector<mr::topo::LevelSpec> levels = {
      {"node", 4, 1.0e-6, 12.5e9, 0.0},
      {"socket", 2, 4.0e-7, 20.0e9, 85.0e9},
      {"numa", 2, 2.5e-7, 30.0e9, 60.0e9},
      {"half", 2, 1.5e-7, 40.0e9, 48.0e9},
      {"l3", 2, 1.2e-7, 25.0e9, 30.0e9},
      {"core", 2, 1.0e-7, 9.0e9, 12.0e9},
  };
  return mr::topo::Machine("deep6", std::move(levels));
}

/// Depth-7, 5040 orders: a binary cache/NUMA tree over 4-core leaves.
mr::topo::Machine deep7() {
  std::vector<mr::topo::LevelSpec> levels = {
      {"cabinet", 2, 2.0e-6, 25.0e9, 0.0},
      {"node", 2, 1.0e-6, 12.5e9, 0.0},
      {"socket", 2, 4.0e-7, 20.0e9, 85.0e9},
      {"numa", 2, 2.5e-7, 30.0e9, 60.0e9},
      {"half", 2, 1.5e-7, 40.0e9, 48.0e9},
      {"l3", 2, 1.2e-7, 25.0e9, 30.0e9},
      {"core", 4, 1.0e-7, 9.0e9, 12.0e9},
  };
  return mr::topo::Machine("deep7", std::move(levels));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  bench::Options opts;
  try {
    opts = bench::Options::parse_args(args);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << " (tune_scaling also accepts --quick)\n";
    return 2;
  }
  mr::Engine& engine = bench::select_engine(opts);

  // ---- Part A: funnel top-1 == exhaustive argmin, presets x paper sizes --
  struct Preset {
    mr::topo::Machine machine;
    std::int64_t comm_size;
  };
  const std::vector<Preset> presets = {
      {mr::topo::testbox(), 4},
      {mr::topo::hydra(4), 16},
      {mr::topo::lumi(2), 32},
  };
  const auto sizes =
      mr::harness::paper_sizes(quick ? 128ll << 10 : std::min<std::int64_t>(
                                                         opts.max_size,
                                                         8ll << 20));

  std::size_t agreement_points = 0, agreement_failures = 0;
  std::int64_t funnel_sims = 0, exhaustive_sims = 0;
  const auto agreement_start = std::chrono::steady_clock::now();
  for (const Preset& preset : presets) {
    for (const std::int64_t bytes : sizes) {
      ++agreement_points;
      mr::tune::TuneQuery query;
      query.comm_sizes = {preset.comm_size};
      query.total_bytes = {bytes};
      query.k = 1;
      query.threads = opts.threads;
      query.repetitions = opts.repetitions;
      query.use_plan_cache = !opts.no_plan_cache;
      const auto funnel = mr::tune::tune(engine, preset.machine, query);

      mr::tune::TuneQuery brute = query;
      brute.dedup = false;
      brute.prune = false;
      const auto exhaustive = mr::tune::tune(engine, preset.machine, brute);

      funnel_sims += funnel.stats.sim_points;
      exhaustive_sims += exhaustive.stats.sim_points;
      const mr::Order& got = funnel.candidates[funnel.top.front()].order;
      const mr::Order& want =
          exhaustive.candidates[exhaustive.top.front()].order;
      if (got != want) {
        ++agreement_failures;
        std::cout << "  MISMATCH " << preset.machine.name() << "/" << bytes
                  << "B: funnel " << mr::order_to_string(got)
                  << " vs exhaustive " << mr::order_to_string(want) << "\n";
      }
    }
  }
  const double agreement_seconds = seconds_since(agreement_start);
  const bool top1_matches = agreement_failures == 0;
  std::cout << "tune_scaling A (agreement): " << agreement_points
            << " (machine, size) points, " << funnel_sims
            << " funnel sims vs " << exhaustive_sims << " exhaustive, "
            << agreement_points - agreement_failures << "/" << agreement_points
            << " top-1 agree, " << agreement_seconds << " s\n";

  // ---- Part B: >= 5x fewer FlowSim invocations at depth >= 6, soundly ----
  const auto machine6 = deep6();
  mr::tune::TuneQuery deep_query;
  deep_query.comm_sizes = {16};
  deep_query.total_bytes = {256ll << 10};
  deep_query.k = 3;
  deep_query.threads = opts.threads;
  deep_query.repetitions = opts.repetitions;
  deep_query.use_plan_cache = !opts.no_plan_cache;

  const auto deep_start = std::chrono::steady_clock::now();
  const auto funnel6 = mr::tune::tune(engine, machine6, deep_query);
  const double funnel6_seconds = seconds_since(deep_start);

  mr::tune::TuneQuery brute6 = deep_query;
  brute6.dedup = false;
  brute6.prune = false;
  const auto brute6_start = std::chrono::steady_clock::now();
  const auto exhaustive6 = mr::tune::tune(engine, machine6, brute6);
  const double brute6_seconds = seconds_since(brute6_start);

  // Exhaustive score of every order (all 720 were simulated).
  std::map<mr::Order, double> score_of;
  for (const auto& c : exhaustive6.candidates) {
    score_of[c.order] = c.score;
  }
  // The true k-th best score over all orders.
  std::vector<double> all_scores;
  all_scores.reserve(score_of.size());
  for (const auto& [order, score] : score_of) all_scores.push_back(score);
  std::sort(all_scores.begin(), all_scores.end());
  const double kth_best =
      all_scores[static_cast<std::size_t>(deep_query.k) - 1];

  std::size_t unsound_prunes = 0, class_mismatches = 0;
  for (const auto& c : funnel6.candidates) {
    if (c.fate == mr::tune::Fate::Pruned &&
        score_of.at(c.order) <= kth_best) {
      ++unsound_prunes;
      std::cout << "  UNSOUND PRUNE " << mr::order_to_string(c.order)
                << ": exhaustive score " << score_of.at(c.order)
                << " <= k-th best " << kth_best << "\n";
    }
    // Dedup soundness: every member of a class must score EXACTLY its
    // representative (byte-identical simulations, not approximations).
    for (const mr::Order& member : c.members) {
      if (score_of.at(member) != score_of.at(c.order)) {
        ++class_mismatches;
        std::cout << "  CLASS MISMATCH " << mr::order_to_string(member)
                  << " scores " << score_of.at(member) << " != rep "
                  << mr::order_to_string(c.order) << " "
                  << score_of.at(c.order) << "\n";
      }
    }
  }
  const mr::Order& top6_funnel = funnel6.candidates[funnel6.top.front()].order;
  const mr::Order& top6_brute =
      exhaustive6.candidates[exhaustive6.top.front()].order;
  const bool deep_top1 = top6_funnel == top6_brute;
  if (!deep_top1) ++agreement_failures;
  const bool pruning_sound = unsound_prunes == 0 && class_mismatches == 0;
  const double sim_reduction =
      funnel6.stats.sim_points > 0
          ? static_cast<double>(funnel6.stats.exhaustive_points) /
                static_cast<double>(funnel6.stats.sim_points)
          : 0.0;
  std::cout << "tune_scaling B (deep6, " << funnel6.stats.orders
            << " orders): " << funnel6.stats.classes << " classes, "
            << funnel6.stats.pruned << " pruned, " << funnel6.stats.simulated
            << " simulated -> " << funnel6.stats.sim_points << " of "
            << funnel6.stats.exhaustive_points << " sims (" << sim_reduction
            << "x reduction), funnel " << funnel6_seconds << " s vs exhaustive "
            << brute6_seconds << " s\n"
            << "  top-1 " << mr::order_to_string(top6_funnel)
            << (deep_top1 ? " == " : " != ") << mr::order_to_string(top6_brute)
            << ", pruning sound: " << (pruning_sound ? "yes" : "NO") << "\n";

  double sim_reduction7 = 0.0;
  if (!quick) {
    const auto machine7 = deep7();
    mr::tune::TuneQuery query7 = deep_query;
    const auto start7 = std::chrono::steady_clock::now();
    const auto funnel7 = mr::tune::tune(engine, machine7, query7);
    sim_reduction7 = funnel7.stats.sim_points > 0
                         ? static_cast<double>(funnel7.stats.exhaustive_points) /
                               static_cast<double>(funnel7.stats.sim_points)
                         : 0.0;
    std::cout << "tune_scaling B (deep7, " << funnel7.stats.orders
              << " orders): " << funnel7.stats.classes << " classes -> "
              << funnel7.stats.sim_points << " sims (" << sim_reduction7
              << "x reduction), " << seconds_since(start7) << " s\n";
  }

  // ---- Part C: byte-identical reports across thread counts ---------------
  mr::tune::TuneQuery det = deep_query;
  det.threads = 1;
  std::ostringstream serial_json;
  mr::tune::write_json(serial_json, mr::tune::tune(engine, machine6, det));
  det.threads = 4;
  std::ostringstream parallel_json;
  mr::tune::write_json(parallel_json, mr::tune::tune(engine, machine6, det));
  const bool identical = serial_json.str() == parallel_json.str();
  std::cout << "tune_scaling C (determinism): report identical for "
               "--threads={1,4}: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";

  // ---- Part D: bound-cache amortization + incremental re-tune ------------
  // A multi-payload query on deep6: six payload sizes in one algorithm
  // regime, so every binding class's analyzer structure is payload-invariant
  // across the whole grid. Each configuration runs in its OWN engine so the
  // cache starts cold and the reuse accounting is exact.
  mr::tune::TuneQuery multi = deep_query;
  multi.total_bytes = {256ll << 10, 384ll << 10, 512ll << 10,
                       768ll << 10, 1024ll << 10, 1536ll << 10};
  // A wide first wave is where incremental seeding pays: the cold run
  // simulates the whole wave blind (no incumbents yet), the seeded run
  // starts with k real scores and stops at the exact bound cut. Both runs
  // use this same query, so the comparison is apples to apples.
  multi.wave_size = 32;

  const auto run_multi = [&](bool use_cache, int threads) {
    mr::Engine fresh;
    mr::tune::TuneQuery q = multi;
    q.use_bound_cache = use_cache;
    q.threads = threads;
    return mr::tune::tune(fresh, machine6, q);
  };

  // {cache on, off} x {serial, threaded}: four cold runs, one canonical
  // document. The cached evaluate IS the uncached analysis bit for bit, so
  // every byte — bounds, visit order, prunes, scores, ranking — must match.
  const auto multi_on = run_multi(true, 1);
  const auto multi_off = run_multi(false, 1);
  const auto multi_on_mt = run_multi(true, 4);
  const auto multi_off_mt = run_multi(false, 4);
  const auto canon = [](const mr::tune::TuneReport& r) {
    std::ostringstream os;
    mr::tune::write_json(os, r);
    return os.str();
  };
  const std::string canon_on = canon(multi_on);
  const bool identical_ranking = canon_on == canon(multi_off) &&
                                 canon_on == canon(multi_on_mt) &&
                                 canon_on == canon(multi_off_mt);

  const std::int64_t built_on = multi_on.stats.bound_structures_built;
  const std::int64_t reused_on = multi_on.stats.bound_structure_reuses;
  const std::int64_t built_off = multi_off.stats.bound_structures_built;
  const double bound_reuse_ratio =
      built_on > 0 ? static_cast<double>(built_on + reused_on) /
                         static_cast<double>(built_on)
                   : 0.0;
  const double bound_time_ratio =
      multi_on.stats.bound_seconds > 0
          ? multi_off.stats.bound_seconds / multi_on.stats.bound_seconds
          : 0.0;
  std::cout << "tune_scaling D (bound cache, deep6 x "
            << multi.total_bytes.size() << " payloads): " << built_on
            << " structures built + " << reused_on << " reused vs "
            << built_off << " full analyses uncached (" << bound_reuse_ratio
            << "x fewer full passes), stage-2 "
            << multi_on.stats.bound_seconds << " s cached vs "
            << multi_off.stats.bound_seconds << " s fresh ("
            << bound_time_ratio << "x), reports identical for "
            << "{cache on,off} x {threads 1,4}: "
            << (identical_ranking ? "yes" : "NO — RANKING DIVERGENCE") << "\n";

  // Incremental re-tune: tune the first half of the payload grid, then
  // re-tune the full grid seeded with that report — same engine, the
  // natural "the grid grew" workflow. The seeded run must reproduce the
  // cold full-grid top-k exactly while simulating strictly fewer
  // candidates (the seeds hand branch-and-bound k real incumbents at
  // wave 0).
  mr::Engine inc_engine;
  mr::tune::TuneQuery prev_query = multi;
  prev_query.total_bytes = {256ll << 10, 384ll << 10, 512ll << 10};
  const auto prev_report = mr::tune::tune(inc_engine, machine6, prev_query);
  const auto seeded =
      mr::tune::tune(inc_engine, machine6, multi, &prev_report);

  bool incremental_same_topk = seeded.top.size() == multi_on.top.size();
  if (incremental_same_topk) {
    for (std::size_t r = 0; r < seeded.top.size(); ++r) {
      const auto& got = seeded.candidates[seeded.top[r]];
      const auto& want = multi_on.candidates[multi_on.top[r]];
      if (got.order != want.order || got.score != want.score) {
        incremental_same_topk = false;
        std::cout << "  TOP-K MISMATCH at rank " << r + 1 << ": seeded "
                  << mr::order_to_string(got.order) << " (" << got.score
                  << ") vs cold " << mr::order_to_string(want.order) << " ("
                  << want.score << ")\n";
      }
    }
  }
  const bool incremental_fewer =
      seeded.stats.simulated < multi_on.stats.simulated &&
      seeded.stats.seeded_candidates > 0;
  std::cout << "tune_scaling D (incremental): "
            << seeded.stats.seeded_candidates << " seeds, "
            << seeded.stats.simulated << " simulated vs "
            << multi_on.stats.simulated
            << " cold, top-k identical: "
            << (incremental_same_topk ? "yes" : "NO") << ", strictly fewer: "
            << (incremental_fewer ? "yes" : "NO") << "\n";

  const bool pass =
      top1_matches && deep_top1 && pruning_sound && sim_reduction >= 5.0 &&
      identical && identical_ranking && bound_reuse_ratio >= 5.0 &&
      incremental_same_topk && incremental_fewer;

  std::ofstream json("BENCH_tune.json");
  json << "{\n"
       << "  \"bench\": \"tune_scaling\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"agreement_points\": " << agreement_points << ",\n"
       << "  \"funnel_sims\": " << funnel_sims << ",\n"
       << "  \"exhaustive_sims\": " << exhaustive_sims << ",\n"
       << "  \"agreement_seconds\": " << agreement_seconds << ",\n"
       << "  \"deep6_orders\": " << funnel6.stats.orders << ",\n"
       << "  \"deep6_classes\": " << funnel6.stats.classes << ",\n"
       << "  \"deep6_pruned\": " << funnel6.stats.pruned << ",\n"
       << "  \"deep6_sim_points\": " << funnel6.stats.sim_points << ",\n"
       << "  \"deep6_exhaustive_points\": " << funnel6.stats.exhaustive_points
       << ",\n"
       << "  \"deep6_funnel_seconds\": " << funnel6_seconds << ",\n"
       << "  \"deep6_exhaustive_seconds\": " << brute6_seconds << ",\n"
       << "  \"sim_reduction\": " << sim_reduction << ",\n"
       << "  \"sim_reduction_deep7\": " << sim_reduction7 << ",\n"
       << "  \"top1_matches_exhaustive\": "
       << (top1_matches && deep_top1 ? "true" : "false") << ",\n"
       << "  \"pruning_sound\": " << (pruning_sound ? "true" : "false")
       << ",\n"
       << "  \"identical_output\": " << (identical ? "true" : "false") << ",\n"
       << "  \"multi_payload_points\": " << multi.total_bytes.size() << ",\n"
       << "  \"bound_structures_built\": " << built_on << ",\n"
       << "  \"bound_structure_reuses\": " << reused_on << ",\n"
       << "  \"bound_full_passes_uncached\": " << built_off << ",\n"
       << "  \"bound_reuse_ratio\": " << bound_reuse_ratio << ",\n"
       << "  \"bound_seconds_cached\": " << multi_on.stats.bound_seconds
       << ",\n"
       << "  \"bound_seconds_fresh\": " << multi_off.stats.bound_seconds
       << ",\n"
       << "  \"bound_time_ratio\": " << bound_time_ratio << ",\n"
       << "  \"identical_ranking\": "
       << (identical_ranking ? "true" : "false") << ",\n"
       << "  \"incremental_seeded\": " << seeded.stats.seeded_candidates
       << ",\n"
       << "  \"incremental_simulated\": " << seeded.stats.simulated << ",\n"
       << "  \"cold_simulated\": " << multi_on.stats.simulated << ",\n"
       << "  \"incremental_same_topk\": "
       << (incremental_same_topk ? "true" : "false") << ",\n"
       << "  \"incremental_fewer_sims\": "
       << (incremental_fewer ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "json written to BENCH_tune.json\n";
  return pass ? 0 : 1;
}
