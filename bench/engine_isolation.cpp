// mr::Engine isolation on a Fig-3-shaped sweep (MPI_Alltoall on 16 Hydra
// nodes, six enumeration orders, paper message sizes).
//
// The engine refactor replaced the process-global singletons (shared plan
// cache, shared pool, function-scoped thread_local workspaces) with scoped
// execution contexts. Two claims ship with it, measured and gated here:
//
//  1. NO TOLL — routing a sweep through a private Engine (own plan cache,
//     own workspace pool) costs nothing over the Engine::shared() path:
//     byte-identical CSVs, and min-over-alternating-passes wall time
//     within 3% (the indirection is two pointer hops per point).
//  2. ISOLATION SCALES — two private Engines running the same workload on
//     two std::threads (each query serial, --threads=1) finish >= 1.5x
//     faster than the same two queries run back to back, because nothing
//     is shared: no cache lock contention, no workspace handoff, per-engine
//     stats stay disjoint. Both concurrent outputs stay byte-identical to
//     the serial reference.
//
// Verdicts land in BENCH_engine.json (`identical_output`, `overhead_ok`,
// `scaling_ok`, `stats_disjoint`) so CI greps them.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "mixradix/topo/presets.hpp"

namespace {

std::string sweep_csv(mr::Engine& engine, const mr::topo::Machine& machine,
                      mr::harness::SweepConfig config) {
  config.all_comms = false;
  const auto single = run_sweep(engine, machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(engine, machine, config);
  std::ostringstream csv;
  mr::harness::write_figure_csv(csv, "engine_isolation", single, simultaneous);
  return csv.str();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::Options::parse(argc, argv);
  if (opts.max_size == 512ll << 20) opts.max_size = 8ll << 20;  // bench default
  const auto machine = mr::topo::hydra(16);

  mr::harness::SweepConfig config;
  config.orders = {
      mr::parse_order("0-1-2-3"), mr::parse_order("2-1-0-3"),
      mr::parse_order("1-3-0-2"), mr::parse_order("1-3-2-0"),
      mr::parse_order("3-1-0-2"), mr::parse_order("3-2-1-0"),
  };
  config.sizes = mr::harness::paper_sizes(opts.max_size);
  config.comm_size = 16;
  config.collective = mr::simmpi::Collective::Alltoall;
  config.repetitions = opts.repetitions;
  config.use_plan_cache = !opts.no_plan_cache;
  config.threads = opts.threads;

  const std::size_t points = 2 * config.orders.size() * config.sizes.size();
  std::cout << "engine_isolation: " << points
            << " sweep points, shared vs private engine\n";

  // Part 1 — no toll: the same sweep through Engine::shared() and through
  // a fresh private Engine must emit byte-identical CSVs, and the private
  // path must cost within 3% (min over alternating passes; both paths are
  // warm after pass 0, so the min compares steady states).
  mr::Engine isolated;
  const std::string shared_csv =
      sweep_csv(mr::Engine::shared(), machine, config);
  const std::string private_csv = sweep_csv(isolated, machine, config);
  const bool identical_paths = shared_csv == private_csv;

  mr::harness::SweepConfig timed = config;
  timed.all_comms = false;
  timed.threads = 1;  // serial: measure the indirection, not the pool
  double shared_seconds = 0, private_seconds = 0;
  for (int pass = 0; pass < 5; ++pass) {
    const auto shared_start = std::chrono::steady_clock::now();
    (void)run_sweep(mr::Engine::shared(), machine, timed);
    const double shared_pass = seconds_since(shared_start);

    const auto private_start = std::chrono::steady_clock::now();
    (void)run_sweep(isolated, machine, timed);
    const double private_pass = seconds_since(private_start);

    shared_seconds =
        pass == 0 ? shared_pass : std::min(shared_seconds, shared_pass);
    private_seconds =
        pass == 0 ? private_pass : std::min(private_seconds, private_pass);
  }
  const double overhead_ratio =
      shared_seconds > 0 ? private_seconds / shared_seconds : 0.0;
  const bool overhead_ok = overhead_ratio <= 1.03;
  std::cout << "  single-comm sweep: " << shared_seconds * 1e3
            << " ms shared engine, " << private_seconds * 1e3
            << " ms private engine (ratio " << overhead_ratio << ")\n"
            << "  output identical across engines: "
            << (identical_paths ? "yes" : "NO — ISOLATION VIOLATION") << "\n";

  // Part 2 — isolation scales: the same serial query on two engines at
  // once vs back to back. Each engine owns its cache and workspaces, so
  // the concurrent run shares nothing but cores.
  mr::harness::SweepConfig query = config;
  query.all_comms = false;
  query.threads = 1;
  const std::string reference_csv = [&] {
    mr::Engine reference;
    config.all_comms = false;
    std::ostringstream csv;
    mr::harness::write_figure_csv(
        csv, "engine_isolation", run_sweep(reference, machine, query), {});
    return csv.str();
  }();

  double serialized_seconds = 0, concurrent_seconds = 0;
  bool identical_concurrent = true;
  bool stats_disjoint = true;
  for (int pass = 0; pass < 3; ++pass) {
    mr::Engine a, b;
    // Warm both engines (plan compile happens once per engine), so the
    // timed passes compare steady-state throughput, not compile order.
    (void)run_sweep(a, machine, query);
    (void)run_sweep(b, machine, query);
    a.reset_stats();
    b.reset_stats();

    const auto serial_start = std::chrono::steady_clock::now();
    (void)run_sweep(a, machine, query);
    (void)run_sweep(b, machine, query);
    const double serial_pass = seconds_since(serial_start);

    std::string csv_a, csv_b;
    const auto concurrent_start = std::chrono::steady_clock::now();
    std::thread thread_b([&] {
      std::ostringstream csv;
      mr::harness::write_figure_csv(csv, "engine_isolation",
                                    run_sweep(b, machine, query), {});
      csv_b = csv.str();
    });
    {
      std::ostringstream csv;
      mr::harness::write_figure_csv(csv, "engine_isolation",
                                    run_sweep(a, machine, query), {});
      csv_a = csv.str();
    }
    thread_b.join();
    const double concurrent_pass = seconds_since(concurrent_start);

    identical_concurrent = identical_concurrent &&
                           csv_a == reference_csv && csv_b == reference_csv;
    // Each engine saw exactly its own two sweeps since reset_stats: one
    // serialized + one concurrent, orders x sizes points each.
    const auto stats_a = a.stats();
    const auto stats_b = b.stats();
    const auto expected = static_cast<std::int64_t>(
        2 * config.orders.size() * config.sizes.size());
    stats_disjoint = stats_disjoint && stats_a.sim_runs == expected &&
                     stats_b.sim_runs == expected;

    serialized_seconds = pass == 0
                             ? serial_pass
                             : std::min(serialized_seconds, serial_pass);
    concurrent_seconds = pass == 0
                             ? concurrent_pass
                             : std::min(concurrent_seconds, concurrent_pass);
  }
  const double concurrent_speedup =
      concurrent_seconds > 0 ? serialized_seconds / concurrent_seconds : 0.0;
  // The scaling claim needs two cores to test; on a single-core box the
  // two std::threads timeshare and the gate would measure the scheduler,
  // not the engines. Report the core count and only enforce when >= 2.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const bool scaling_ok = cores < 2 || concurrent_speedup >= 1.5;
  std::cout << "  two-engine workload: " << serialized_seconds * 1e3
            << " ms serialized, " << concurrent_seconds * 1e3
            << " ms concurrent (" << concurrent_speedup << "x on " << cores
            << " core" << (cores == 1 ? "" : "s") << ")\n"
            << "  concurrent outputs identical to serial reference: "
            << (identical_concurrent ? "yes" : "NO — ISOLATION VIOLATION")
            << "\n"
            << "  per-engine stats disjoint: "
            << (stats_disjoint ? "yes" : "NO") << "\n";

  const bool identical = identical_paths && identical_concurrent;
  std::ofstream json("BENCH_engine.json");
  json << "{\n"
       << "  \"bench\": \"engine_isolation\",\n"
       << "  \"points\": " << points << ",\n"
       << "  \"max_size_bytes\": " << opts.max_size << ",\n"
       << "  \"repetitions\": " << opts.repetitions << ",\n"
       << "  \"threads\": " << opts.resolved_threads() << ",\n"
       << "  \"shared_seconds\": " << shared_seconds << ",\n"
       << "  \"private_seconds\": " << private_seconds << ",\n"
       << "  \"overhead_ratio\": " << overhead_ratio << ",\n"
       << "  \"overhead_ok\": " << (overhead_ok ? "true" : "false") << ",\n"
       << "  \"cores\": " << cores << ",\n"
       << "  \"serialized_seconds\": " << serialized_seconds << ",\n"
       << "  \"concurrent_seconds\": " << concurrent_seconds << ",\n"
       << "  \"concurrent_speedup\": " << concurrent_speedup << ",\n"
       << "  \"scaling_ok\": " << (scaling_ok ? "true" : "false") << ",\n"
       << "  \"stats_disjoint\": " << (stats_disjoint ? "true" : "false")
       << ",\n"
       << "  \"identical_output\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "json written to BENCH_engine.json\n";
  return identical && stats_disjoint ? 0 : 1;
}
