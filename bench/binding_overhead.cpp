// Binding-analyzer overhead and soundness: time verify::binding::analyze
// against the timed simulation of the same bound point, across presets x
// registry algorithms at sweep scale, and assert the analyzer's lower
// bound never exceeds the simulated makespan at completion slack 0. The
// analyzer is meant to run as ExecOptions::preverify_binding ahead of
// sweeps, so it must stay a small fraction of one simulated point; the
// ratio and the soundness verdict go to BENCH_binding.json so CI can gate
// on `"sound": true` and watch the overhead across PRs.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "mixradix/harness/microbench.hpp"
#include "mixradix/simmpi/plan.hpp"
#include "mixradix/simmpi/registry.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/verify/binding.hpp"

namespace {

/// Median-of-reps wall-clock of `fn()`, in seconds.
template <typename Fn>
double time_seconds(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    samples.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const int reps = std::max(opts.repetitions, 3);

  const mr::topo::Machine machines[] = {mr::topo::testbox(),
                                        mr::topo::hydra(4),
                                        mr::topo::lumi(2)};
  const std::int64_t counts[] = {64, 65536};
  constexpr std::int32_t kP = 8;

  std::size_t points = 0, unsound = 0;
  std::string unsound_point;
  double analyze_total = 0, simulate_total = 0, worst_ratio = 0;
  std::string worst_point;

  for (const auto& machine : machines) {
    std::vector<std::int64_t> cores(kP);
    for (std::int32_t r = 0; r < kP; ++r) cores[static_cast<std::size_t>(r)] = r;
    for (const auto& info : mr::simmpi::algorithm_registry()) {
      if (!info.supported(kP)) continue;
      for (const std::int64_t count : counts) {
        ++points;
        const std::string label = machine.name() + "/" + info.name + "/" +
                                  std::to_string(count);
        const auto plan = std::make_shared<const mr::simmpi::Plan>(
            mr::simmpi::compile_plan(info.name, kP, count));
        const std::vector<mr::simmpi::PlanJob> jobs = {{plan, cores, 0.0}};

        mr::verify::binding::Result result;
        const double analyze_seconds = time_seconds(reps, [&] {
          result = mr::verify::binding::analyze(*plan, machine, cores);
        });
        double makespan = 0;
        const double simulate_seconds = time_seconds(reps, [&] {
          makespan = mr::simmpi::run_timed(machine, jobs, 0.0).makespan;
        });
        analyze_total += analyze_seconds;
        simulate_total += simulate_seconds;
        const double ratio =
            simulate_seconds > 0 ? analyze_seconds / simulate_seconds : 0.0;
        if (ratio > worst_ratio) {
          worst_ratio = ratio;
          worst_point = label;
        }
        if (!result.clean() ||
            result.bound.lower_bound > makespan * (1.0 + 1e-9)) {
          ++unsound;
          if (unsound_point.empty()) unsound_point = label;
          std::cout << "  UNSOUND " << label << ": bound "
                    << result.bound.lower_bound << " s > simulated "
                    << makespan << " s\n";
        }
      }
    }
  }

  const double aggregate_ratio =
      simulate_total > 0 ? analyze_total / simulate_total : 0.0;
  std::cout << "binding_overhead: " << points << " bound points, median of "
            << reps << " reps\n"
            << "  simulation: " << simulate_total << " s total\n"
            << "  analysis:   " << analyze_total << " s total ("
            << aggregate_ratio * 100 << "% of simulation)\n"
            << "  worst point: " << worst_point << " at " << worst_ratio * 100
            << "%\n"
            << "  soundness: " << points - unsound << "/" << points
            << " bounds below the simulated makespan\n";

  // The budget that decides whether preverify_binding can stay on ahead of
  // sweeps: what the preverify configuration (diagnostics only — the load
  // report and bound are CLI/CI products) adds to one real Fig-3 sweep
  // point (run_microbench: 16-rank alltoall on Hydra, 8 MiB, compile
  // included). The matrix above deliberately includes tiny messages where
  // analysis and simulation cost about the same; at sweep scale the
  // simulator's flow events dominate the analyzer's single CSR walk, and
  // THIS ratio is the one gated at < 10%.
  const auto fig3_machine = mr::topo::hydra(16);
  const auto fig3_plan = std::make_shared<const mr::simmpi::Plan>(
      mr::simmpi::compile_plan("alltoall_pairwise", 16, 1 << 20));
  std::vector<std::int64_t> fig3_cores(16);
  for (std::int32_t r = 0; r < 16; ++r) {
    fig3_cores[static_cast<std::size_t>(r)] = r * (fig3_machine.cores() / 16);
  }
  mr::verify::binding::Options preverify;
  preverify.load_report = false;
  preverify.lower_bound = false;
  const double fig3_preverify = time_seconds(reps, [&] {
    volatile bool clean = mr::verify::binding::analyze(*fig3_plan,
                                                       fig3_machine,
                                                       fig3_cores, preverify)
                              .clean();
    (void)clean;
  });
  const double fig3_analyze = time_seconds(reps, [&] {
    volatile bool clean =
        mr::verify::binding::analyze(*fig3_plan, fig3_machine, fig3_cores)
            .clean();
    (void)clean;
  });
  mr::harness::MicrobenchConfig mb;
  mb.order = mr::parse_order("0-1-2-3");
  mb.comm_size = 16;
  mb.collective = mr::simmpi::Collective::Alltoall;
  mb.total_bytes = 8ll << 20;
  mb.use_plan_cache = false;
  const double fig3_point = time_seconds(reps, [&] {
    mr::harness::run_microbench(fig3_machine, mb);
  });
  const double sweep_point_ratio =
      fig3_point > 0 ? fig3_preverify / fig3_point : 0.0;
  std::cout << "  fig3 point (alltoall p=16, 8 MiB): preverify "
            << fig3_preverify * 1e6 << " us, full analysis "
            << fig3_analyze * 1e6 << " us, sweep point " << fig3_point * 1e6
            << " us — preverify share " << sweep_point_ratio * 100 << "%"
            << (sweep_point_ratio < 0.10 ? " (within the 10% budget)"
                                         : " (OVER the 10% budget)")
            << "\n";

  std::ofstream json("BENCH_binding.json");
  json << "{\n"
       << "  \"bench\": \"binding_overhead\",\n"
       << "  \"points\": " << points << ",\n"
       << "  \"repetitions\": " << reps << ",\n"
       << "  \"analyze_seconds\": " << analyze_total << ",\n"
       << "  \"simulate_seconds\": " << simulate_total << ",\n"
       << "  \"analyze_over_simulate\": " << aggregate_ratio << ",\n"
       << "  \"worst_ratio\": " << worst_ratio << ",\n"
       << "  \"worst_point\": \"" << worst_point << "\",\n"
       << "  \"fig3_preverify_seconds\": " << fig3_preverify << ",\n"
       << "  \"fig3_analyze_seconds\": " << fig3_analyze << ",\n"
       << "  \"fig3_point_seconds\": " << fig3_point << ",\n"
       << "  \"fig3_preverify_over_point\": " << sweep_point_ratio << ",\n"
       << "  \"within_budget\": " << (sweep_point_ratio < 0.10 ? "true" : "false")
       << ",\n"
       << "  \"sound\": " << (unsound == 0 ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "json written to BENCH_binding.json\n";
  return unsound == 0 ? 0 : 1;
}
