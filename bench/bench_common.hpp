// Shared plumbing for the figure-reproduction benches: CLI size caps and
// CSV sidecar output next to the textual tables.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "mixradix/harness/microbench.hpp"

namespace bench {

/// Parse "--max-size=<bytes>" / "--reps=<n>" / "--csv=<path>" flags; the
/// defaults reproduce the paper's axes but can be shrunk for smoke runs.
struct Options {
  std::int64_t max_size = 512ll << 20;
  int repetitions = 2;
  std::string csv_path;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--max-size=", 0) == 0) {
        o.max_size = std::stoll(arg.substr(11));
      } else if (arg.rfind("--reps=", 0) == 0) {
        o.repetitions = std::stoi(arg.substr(7));
      } else if (arg.rfind("--csv=", 0) == 0) {
        o.csv_path = arg.substr(6);
      } else {
        std::cerr << "unknown flag: " << arg
                  << " (known: --max-size=B --reps=N --csv=PATH)\n";
        std::exit(2);
      }
    }
    return o;
  }
};

inline void emit(const std::string& figure, const Options& opts,
                 const std::vector<mr::harness::SweepSeries>& single,
                 const std::vector<mr::harness::SweepSeries>& simultaneous,
                 const std::string& title) {
  mr::harness::print_figure(std::cout, title, single, simultaneous);
  if (!opts.csv_path.empty()) {
    std::ofstream csv(opts.csv_path);
    mr::harness::write_figure_csv(csv, figure, single, simultaneous);
    std::cout << "csv written to " << opts.csv_path << "\n";
  }
}

}  // namespace bench
