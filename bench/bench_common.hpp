// Shared plumbing for the figure-reproduction benches: CLI size caps,
// thread-count pinning, and CSV sidecar output next to the textual tables.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "mixradix/engine/engine.hpp"
#include "mixradix/harness/microbench.hpp"
#include "mixradix/mr/equivalence.hpp"
#include "mixradix/simmpi/plan_cache.hpp"
#include "mixradix/util/thread_pool.hpp"

namespace bench {

/// Parse "--max-size=<bytes>" / "--reps=<n>" / "--threads=<n>" /
/// "--csv=<path>" / "--no-plan-cache" / "--private-engine" flags; the
/// defaults reproduce the paper's axes but can be shrunk for smoke runs.
/// Threads defaults to 0 = auto (the MIXRADIX_THREADS environment variable
/// when set, else hardware_concurrency); "--threads=1" forces the serial
/// path. "--no-plan-cache" recompiles every (order, size) point instead of
/// sharing plans through the engine's cache; "--private-engine" routes the
/// bench through a non-shared mr::Engine (fresh plan cache and workspace
/// pool). Output is identical for every thread count and for any
/// combination of cache/engine settings.
struct Options {
  std::int64_t max_size = 512ll << 20;
  int repetitions = 2;
  int threads = 0;  ///< 0 = auto; passed through to SweepConfig::threads.
  bool no_plan_cache = false;  ///< --no-plan-cache: compile per point.
  /// "--tune=K": opt-in autotuner screening — forwarded to
  /// SweepConfig::tune_top_k, replacing the bench's fixed order list with
  /// the top-K orders mr::tune finds for the same workload. 0 = off.
  int tune_k = 0;
  /// "--private-engine": run through a private mr::Engine instead of
  /// Engine::shared() — CI uses this to assert the engine indirection
  /// changes no output byte.
  bool private_engine = false;
  std::string csv_path;

  /// Number of workers after resolving 0 = auto.
  int resolved_threads() const {
    return threads > 0
               ? threads
               : static_cast<int>(mr::util::ThreadPool::default_threads());
  }

  /// Testable core: throws std::invalid_argument on unknown flags and on
  /// malformed or out-of-range values.
  static Options parse_args(const std::vector<std::string>& args) {
    Options o;
    for (const std::string& arg : args) {
      if (arg.rfind("--max-size=", 0) == 0) {
        o.max_size = parse_int(arg, arg.substr(11), 1);
      } else if (arg.rfind("--reps=", 0) == 0) {
        o.repetitions = static_cast<int>(parse_int(arg, arg.substr(7), 1));
      } else if (arg.rfind("--threads=", 0) == 0) {
        o.threads = static_cast<int>(parse_int(arg, arg.substr(10), 1));
      } else if (arg.rfind("--csv=", 0) == 0) {
        o.csv_path = arg.substr(6);
      } else if (arg.rfind("--tune=", 0) == 0) {
        o.tune_k = static_cast<int>(parse_int(arg, arg.substr(7), 1));
      } else if (arg == "--no-plan-cache") {
        o.no_plan_cache = true;
      } else if (arg == "--private-engine") {
        o.private_engine = true;
      } else {
        throw std::invalid_argument(
            "unknown flag: " + arg +
            " (known: --max-size=B --reps=N --threads=N --csv=PATH "
            "--tune=K --no-plan-cache --private-engine)");
      }
    }
    return o;
  }

  /// CLI entry point: parse_args with exit(2)-on-error reporting.
  static Options parse(int argc, char** argv) {
    try {
      return parse_args({argv + 1, argv + argc});
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      std::exit(2);
    }
  }

 private:
  /// Strict integer parse: the whole value must be digits (optional sign)
  /// and at least `min`.
  static std::int64_t parse_int(const std::string& flag,
                                const std::string& value, std::int64_t min) {
    std::size_t consumed = 0;
    std::int64_t parsed = 0;
    try {
      parsed = std::stoll(value, &consumed);
    } catch (const std::exception&) {
      throw std::invalid_argument("malformed integer in " + flag);
    }
    if (consumed != value.size()) {
      throw std::invalid_argument("malformed integer in " + flag);
    }
    if (parsed < min) {
      throw std::invalid_argument("value out of range in " + flag +
                                  " (minimum " + std::to_string(min) + ")");
    }
    return parsed;
  }
};

/// The engine a bench routes its work through: the process-wide
/// Engine::shared() by default, or one process-lifetime private Engine
/// under --private-engine (fresh plan cache and workspace pool; the worker
/// threads are still the process pool's). Byte-identical output either way.
inline mr::Engine& select_engine(const Options& opts) {
  if (!opts.private_engine) return mr::Engine::shared();
  static mr::Engine isolated;
  return isolated;
}

/// Engine-counter line in the style of the plan-cache stats line: one run's
/// executor instrumentation (events, queue/flow high-water marks, route
/// cache effectiveness).
inline void print_engine_counters(std::ostream& os,
                                  const mr::simmpi::TimedResult& result) {
  const auto& engine = result.engine_stats;
  const std::int64_t lookups =
      engine.route_cache_hits + engine.route_cache_misses;
  os << "engine: " << engine.events_processed << " events ("
     << engine.peak_event_queue << " peak queue), "
     << result.total_flow_events << " flow completions ("
     << result.flow_stats.peak_active_flows << " peak active flows), routes: "
     << engine.route_cache_hits << " hits / " << engine.route_cache_misses
     << " misses";
  if (lookups > 0) {
    os << " ("
       << static_cast<int>(
              static_cast<double>(engine.route_cache_hits) /
                  static_cast<double>(lookups) * 100.0 +
              0.5)
       << "% interned)";
  }
  os << "\n";
}

/// Enumeration-kernel counter line in the style of the plan-cache and
/// engine stats lines: one classification run's throughput and hash-group
/// verification counters (signatures hashed, collision checks performed,
/// genuine 128-bit collisions — expected 0).
inline void print_kernel_counters(std::ostream& os, const std::string& label,
                                  const mr::ClassifyStats& stats,
                                  double seconds) {
  os << "kernels[" << label << "]: " << stats.orders << " orders -> "
     << stats.classes << " classes in " << seconds << " s";
  if (seconds > 0) {
    os << " (" << static_cast<std::int64_t>(
                      static_cast<double>(stats.orders) / seconds + 0.5)
       << " orders/s)";
  }
  os << ", " << stats.signatures_hashed << " signatures hashed, "
     << stats.collision_checks << " collision checks ("
     << stats.hash_collisions << " hash collisions)\n";
}

inline void emit(const std::string& figure, const Options& opts,
                 const std::vector<mr::harness::SweepSeries>& single,
                 const std::vector<mr::harness::SweepSeries>& simultaneous,
                 const std::string& title) {
  mr::harness::print_figure(std::cout, title, single, simultaneous);
  if (opts.no_plan_cache) {
    std::cout << "plan cache: bypassed (--no-plan-cache)\n";
  } else {
    const auto stats = select_engine(opts).plan_cache().stats();
    std::cout << "plan cache: " << stats.entries << " plans, " << stats.hits
              << " hits / " << stats.misses << " compiles ("
              << static_cast<int>(stats.hit_rate() * 100.0 + 0.5)
              << "% hit rate)";
    if (stats.evictions > 0) {
      std::cout << ", " << stats.evictions << " evictions";
    }
    std::cout << "\n";
  }
  if (!opts.csv_path.empty()) {
    std::ofstream csv(opts.csv_path);
    mr::harness::write_figure_csv(csv, figure, single, simultaneous);
    std::cout << "csv written to " << opts.csv_path << "\n";
  }
}

}  // namespace bench
