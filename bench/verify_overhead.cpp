// Static-verifier overhead: time verify::analyze against the cost of
// generating the same schedule, across the generator matrix at Fig-3
// scale (16-rank alltoalls and friends, plus the composition shapes the
// sweeps replay). The verifier is meant to run inside every
// ScheduleBuilder::build() in checked builds, so it must stay a small
// fraction of generation time; this bench records the ratio per point and
// in aggregate to BENCH_verify.json so regressions show up across PRs.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>

#include "bench/bench_common.hpp"
#include "mixradix/harness/microbench.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/verify/generator_matrix.hpp"
#include "mixradix/verify/verify.hpp"

namespace {

/// Median-of-reps wall-clock of `fn()`, in seconds.
template <typename Fn>
double time_seconds(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    samples.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Min-of-reps: for the microsecond-scale single-point timings, where
/// scheduler noise is strictly additive and the minimum is the estimate.
template <typename Fn>
double min_seconds(int reps, Fn&& fn) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (i == 0 || t < best) best = t;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const int reps = std::max(opts.repetitions, 3);

  // Fig-3 scale: the sweeps run 16-rank collectives; include the smaller
  // shapes too so per-point ratios expose any superlinear analysis cost.
  const auto points =
      mr::verify::generator_matrix({4, 8, 16}, {1, 1000, 100000});

  std::cout << "verify_overhead: " << points.size() << " schedules, median of "
            << reps << " reps\n";

  double generate_total = 0, analyze_total = 0, worst_ratio = 0;
  std::string worst_point;
  std::size_t messages_total = 0;
  for (const auto& point : points) {
    const auto schedule = point.make();
    messages_total += schedule.messages.size();
    const double generate_seconds = time_seconds(reps, [&] {
      volatile auto bytes = point.make().total_bytes();
      (void)bytes;
    });
    const double analyze_seconds = time_seconds(reps, [&] {
      volatile bool clean = mr::verify::analyze(schedule).clean();
      (void)clean;
    });
    generate_total += generate_seconds;
    analyze_total += analyze_seconds;
    const double ratio =
        generate_seconds > 0 ? analyze_seconds / generate_seconds : 0.0;
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      worst_point = point.name;
    }
  }

  const double aggregate_ratio =
      generate_total > 0 ? analyze_total / generate_total : 0.0;
  std::cout << "  generation: " << generate_total << " s total\n"
            << "  analysis:   " << analyze_total << " s total ("
            << aggregate_ratio * 100 << "% of generation)\n"
            << "  worst point: " << worst_point << " at " << worst_ratio * 100
            << "%\n";

  // The ratio that decides whether MIXRADIX_VERIFY_SCHEDULES can stay on in
  // sweep runs: analyzer cost against one real Fig-3 sweep point — the §4.1
  // protocol's run_microbench (16-rank alltoall on Hydra, 8 MiB, the
  // default 2 back-to-back repetitions). Since the plan-cache refactor a
  // point resolves its compiled plan through the engine's plan cache: with the
  // cache bypassed the analyzer runs once per compile (its share of the
  // point is analyze / point wall time); with the cache on it runs once per
  // distinct (algorithm, p, count, root, reps) key for the *whole* sweep,
  // so the steady-state cached point pays no generation or analysis at all.
  // Both paths are timed (min-of-reps: the cached path's first rep is the
  // one compile; the min is the steady state).
  const auto machine = mr::topo::hydra(16);
  const auto fig3 = mr::verify::make_named("alltoall_pairwise", 16, 1 << 20, 0);
  mr::harness::MicrobenchConfig mb;
  mb.order = mr::parse_order("0-1-2-3");
  mb.comm_size = 16;
  mb.collective = mr::simmpi::Collective::Alltoall;
  mb.total_bytes = 8ll << 20;
  const int fig3_reps = std::max(reps, 15);
  const double fig3_analyze = min_seconds(fig3_reps, [&] {
    volatile bool clean = mr::verify::analyze(fig3).clean();
    (void)clean;
  });
  mb.use_plan_cache = false;
  const double fig3_point = min_seconds(fig3_reps, [&] {
    mr::harness::run_microbench(machine, mb);
  });
  mb.use_plan_cache = true;
  const double fig3_point_cached = min_seconds(fig3_reps, [&] {
    mr::harness::run_microbench(machine, mb);
  });
  const double fig3_pipeline_ratio = fig3_analyze / fig3_point;
  std::cout << "  fig3 point (alltoall p=16, 8 MiB): analyze "
            << fig3_analyze * 1e6 << " us, sweep point "
            << fig3_point * 1e6 << " us (compile per point), "
            << fig3_point_cached * 1e6 << " us (plan cache)\n"
            << "  analyzer share of an uncached fig3 sweep point: "
            << fig3_pipeline_ratio * 100 << "%"
            << (fig3_pipeline_ratio < 0.05 ? " (within the 5% budget)"
                                           : " (OVER the 5% budget)")
            << "; amortized to one analysis per distinct plan by the cache\n";

  std::ofstream json("BENCH_verify.json");
  json << "{\n"
       << "  \"bench\": \"verify_overhead\",\n"
       << "  \"points\": " << points.size() << ",\n"
       << "  \"messages_total\": " << messages_total << ",\n"
       << "  \"repetitions\": " << reps << ",\n"
       << "  \"generate_seconds\": " << generate_total << ",\n"
       << "  \"analyze_seconds\": " << analyze_total << ",\n"
       << "  \"analyze_over_generate\": " << aggregate_ratio << ",\n"
       << "  \"worst_ratio\": " << worst_ratio << ",\n"
       << "  \"worst_point\": \"" << worst_point << "\",\n"
       << "  \"fig3_analyze_seconds\": " << fig3_analyze << ",\n"
       << "  \"fig3_point_seconds\": " << fig3_point << ",\n"
       << "  \"fig3_point_cached_seconds\": " << fig3_point_cached << ",\n"
       << "  \"fig3_analyze_over_point\": " << fig3_pipeline_ratio << "\n"
       << "}\n";
  std::cout << "json written to BENCH_verify.json\n";
  return 0;
}
