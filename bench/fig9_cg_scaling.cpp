// Figure 9: strong scaling of NAS-CG (class C) on one LUMI node, with the
// cores selected by mixed-radix enumeration (Algorithm 3) — every distinct
// rank->core list for 2..128 processes, grouped by core set, annotated with
// the core-ID ranges, the Slurm default, and the perfect-scaling time.
//
// Expected shape (paper): the best selections use one core per L3 cache;
// Slurm's default block packing is almost always the slowest; beyond 16
// processes the parallel efficiency collapses (memory-bound saturation),
// and a well-placed 8-process run beats a badly-placed 32-process one.
#include <iomanip>
#include <iostream>

#include "mixradix/apps/cg.hpp"
#include "mixradix/mr/core_select.hpp"
#include "mixradix/util/strings.hpp"
#include "mixradix/topo/presets.hpp"

int main(int argc, char** argv) {
  char klass_name = 'C';
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--class=", 0) == 0) {
      klass_name = arg[8];
    } else {
      std::cerr << "unknown flag: " << arg << " (known: --class=S|A|B|C)\n";
      return 2;
    }
  }

  const auto machine = mr::topo::lumi_node();
  const auto klass = mr::apps::cg::cg_class(klass_name);
  const auto node_hierarchy = machine.hierarchy();  // [2, 4, 2, 8]
  const double serial = mr::apps::cg::serial_seconds(machine, klass);

  std::cout << "== Fig. 9 — CG class " << klass.name
            << " strong scaling on one LUMI node ==\n";
  std::cout << "serial estimate: " << mr::util::format_fixed(serial, 1)
            << " s\n\n";

  for (std::int64_t nproc : {2, 4, 8, 16, 32, 64, 128}) {
    std::cout << "-- " << nproc << " proc. (perfect scaling "
              << mr::util::format_fixed(serial / static_cast<double>(nproc), 2)
              << " s) --\n";
    const auto outcomes = mr::enumerate_selections(node_hierarchy, nproc);
    // Slurm default on LUMI is block:block: physical-id order, i.e. the
    // reversed-identity enumeration order.
    const mr::Order slurm_default{3, 2, 1, 0};
    std::string last_set;
    for (const auto& outcome : outcomes) {
      const auto result =
          mr::apps::cg::simulate_cg(machine, klass, outcome.core_list);
      const std::string set = mr::core_set_ranges(outcome.core_set);
      std::cout << "  " << std::left << std::setw(10)
                << mr::order_to_string(outcome.order) << std::right
                << std::setw(8) << mr::util::format_fixed(result.seconds, 2)
                << " s";
      if (outcome.order == slurm_default) std::cout << "  [Slurm default]";
      if (set != last_set) {
        std::cout << "   cores: " << set;
        last_set = set;
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
