// Figure 3: MPI_Alltoall on 16 Hydra nodes (512 processes), 16 processes
// per communicator — 1 vs 32 simultaneous communicators, bandwidth over
// message size, for the six orders shown in the paper's legend.
//
// Expected shape (paper): [0,1,2,3] (fully spread) wins when one
// communicator runs alone; under 32 simultaneous communicators it collapses
// while the packed [3,2,1,0] is contention-immune and wins. Orders mapping
// the communicator to the same resources but with different internal rank
// orders ([1,3,0,2] vs [3,1,0,2]) perform identically for Alltoall.
#include "bench/bench_common.hpp"
#include "mixradix/topo/presets.hpp"

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const auto machine = mr::topo::hydra(16);

  mr::harness::SweepConfig config;
  config.orders = {
      mr::parse_order("0-1-2-3"), mr::parse_order("2-1-0-3"),
      mr::parse_order("1-3-0-2"), mr::parse_order("1-3-2-0"),
      mr::parse_order("3-1-0-2"), mr::parse_order("3-2-1-0"),
  };
  config.sizes = mr::harness::paper_sizes(opts.max_size);
  config.comm_size = 16;
  config.collective = mr::simmpi::Collective::Alltoall;
  config.repetitions = opts.repetitions;
  config.threads = opts.threads;
  config.use_plan_cache = !opts.no_plan_cache;
  // --tune=K: replace the fixed legend with the autotuner's top-K orders
  // for this exact workload (funnel survivors only; see mr::tune).
  config.tune_top_k = opts.tune_k;

  config.all_comms = false;
  const auto single = run_sweep(machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(machine, config);

  bench::emit("fig3", opts, single, simultaneous,
              "Fig. 3 — 16 Hydra nodes, 512 procs, MPI_Alltoall, "
              "16 procs/comm (1 vs 32 simultaneous)");
  return 0;
}
