// Parallel sweep engine scaling: a Fig-3-shaped sweep (MPI_Alltoall on 16
// Hydra nodes, six orders, paper message sizes, 1 and 32 simultaneous
// communicators) run once serially (--threads=1 path) and once fanned out
// over the shared work-stealing pool.
//
// Reports wall-clock times and the speedup, verifies that the parallel
// CSV output is byte-identical to the serial one (the engine's
// determinism guarantee), and writes BENCH_sweep.json so the speedup is
// tracked across PRs. The default size cap keeps one pass around a few
// seconds; pass --max-size=536870912 for the full figure-3 axes.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "mixradix/topo/presets.hpp"

namespace {

std::string sweep_csv(const mr::topo::Machine& machine,
                      mr::harness::SweepConfig config) {
  config.all_comms = false;
  const auto single = run_sweep(machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(machine, config);
  std::ostringstream csv;
  mr::harness::write_figure_csv(csv, "sweep_scaling", single, simultaneous);
  return csv.str();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::Options::parse(argc, argv);
  if (opts.max_size == 512ll << 20) opts.max_size = 8ll << 20;  // bench default
  const auto machine = mr::topo::hydra(16);

  // The screening step a real enumeration starts with: classify the order
  // space once so the kernel counters sit next to the sweep timings
  // (bench/enum_scaling measures this phase in isolation and at depth 7/8).
  mr::ClassifyStats classify_stats;
  const auto classify_start = std::chrono::steady_clock::now();
  (void)mr::classify_orders(machine.hierarchy(), 16,
                            mr::Equivalence::SameSetsAndInternal, 0,
                            mr::MetricsImpl::Fast, &classify_stats);
  bench::print_kernel_counters(std::cout, "hydra16-classify", classify_stats,
                               seconds_since(classify_start));

  mr::harness::SweepConfig config;
  config.orders = {
      mr::parse_order("0-1-2-3"), mr::parse_order("2-1-0-3"),
      mr::parse_order("1-3-0-2"), mr::parse_order("1-3-2-0"),
      mr::parse_order("3-1-0-2"), mr::parse_order("3-2-1-0"),
  };
  config.sizes = mr::harness::paper_sizes(opts.max_size);
  config.comm_size = 16;
  config.collective = mr::simmpi::Collective::Alltoall;
  config.repetitions = opts.repetitions;
  config.use_plan_cache = !opts.no_plan_cache;
  if (opts.tune_k > 0) {
    // --tune=K: let the autotuner pick which K orders to sweep instead of
    // the fixed figure-3 list (the funnel screens all 4! = 24 orders).
    config.tune_top_k = opts.tune_k;
    std::cout << "sweep_scaling: --tune=" << opts.tune_k
              << " (autotuner replaces the fixed order list)\n";
  }

  const int threads = opts.resolved_threads();
  const std::size_t points = 2 * config.orders.size() * config.sizes.size();
  std::cout << "sweep_scaling: " << points << " simulation points, serial vs "
            << threads << " thread(s)\n";

  config.threads = 1;
  const auto serial_start = std::chrono::steady_clock::now();
  const std::string serial_csv = sweep_csv(machine, config);
  const double serial_seconds = seconds_since(serial_start);
  std::cout << "  serial:   " << serial_seconds << " s\n";

  config.threads = threads;
  const auto parallel_start = std::chrono::steady_clock::now();
  const std::string parallel_csv = sweep_csv(machine, config);
  const double parallel_seconds = seconds_since(parallel_start);
  std::cout << "  parallel: " << parallel_seconds << " s\n";

  const bool identical = serial_csv == parallel_csv;
  const double speedup =
      parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0.0;
  std::cout << "  speedup:  " << speedup << "x\n"
            << "  output identical across thread counts: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";

  std::ofstream json("BENCH_sweep.json");
  json << "{\n"
       << "  \"bench\": \"sweep_scaling\",\n"
       << "  \"points\": " << points << ",\n"
       << "  \"max_size_bytes\": " << opts.max_size << ",\n"
       << "  \"repetitions\": " << opts.repetitions << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"serial_seconds\": " << serial_seconds << ",\n"
       << "  \"parallel_seconds\": " << parallel_seconds << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"identical_output\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "json written to BENCH_sweep.json\n";

  if (!opts.csv_path.empty()) {
    std::ofstream csv(opts.csv_path);
    csv << parallel_csv;
    std::cout << "csv written to " << opts.csv_path << "\n";
  }
  return identical ? 0 : 1;
}
