// Figure 7: MPI_Allgather on 16 LUMI nodes (2048 processes), 256 processes
// per communicator — 1 vs 8 simultaneous communicators.
//
// Expected shape: the ring allgather is the most rank-order-sensitive
// collective; [0,1,2,3,4] and [1,2,3,0,4] use identical cores (same pair
// percentages) yet differ in bandwidth because their ring costs differ
// (1275 vs 1035).
#include "bench/bench_common.hpp"
#include "mixradix/topo/presets.hpp"

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const auto machine = mr::topo::lumi(16);

  mr::harness::SweepConfig config;
  config.orders = {
      mr::parse_order("0-1-2-3-4"), mr::parse_order("1-2-3-0-4"),
      mr::parse_order("3-4-0-1-2"), mr::parse_order("3-2-1-4-0"),
      mr::parse_order("4-3-2-1-0"),
  };
  config.sizes = mr::harness::paper_sizes(opts.max_size);
  config.comm_size = 256;
  config.collective = mr::simmpi::Collective::Allgather;
  config.repetitions = opts.repetitions;
  config.threads = opts.threads;
  config.use_plan_cache = !opts.no_plan_cache;
  // --tune=K: replace the fixed legend with the autotuner's top-K orders
  // for this exact workload (funnel survivors only; see mr::tune).
  config.tune_top_k = opts.tune_k;

  config.all_comms = false;
  const auto single = run_sweep(machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(machine, config);

  bench::emit("fig7", opts, single, simultaneous,
              "Fig. 7 — 16 LUMI nodes, 2048 procs, MPI_Allgather, "
              "256 procs/comm (1 vs 8 simultaneous)");
  return 0;
}
