// Micro-benchmarks of the core algorithms (google-benchmark): the paper
// argues its technique is "simple to implement" and cheap; these benches
// quantify that — decomposition and renumbering are nanosecond-scale, so
// reordering even a large MPI_COMM_WORLD is negligible next to job launch.
#include <benchmark/benchmark.h>

#include "mixradix/mr/core_select.hpp"
#include "mixradix/mr/equivalence.hpp"
#include "mixradix/mr/metrics.hpp"
#include "mixradix/mr/reorder.hpp"
#include "mixradix/simnet/flow_sim.hpp"
#include "mixradix/simnet/path.hpp"
#include "mixradix/topo/presets.hpp"

namespace {

using namespace mr;

const Hierarchy& lumi_hierarchy() {
  static const Hierarchy h{16, 2, 4, 2, 8};
  return h;
}

void BM_Decompose(benchmark::State& state) {
  const Hierarchy& h = lumi_hierarchy();
  std::int64_t rank = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompose(h, rank));
    rank = (rank + 997) % h.total();
  }
}
BENCHMARK(BM_Decompose);

void BM_ReorderRank(benchmark::State& state) {
  const Hierarchy& h = lumi_hierarchy();
  const Order order = parse_order("3-2-1-4-0");
  std::int64_t rank = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reorder_rank(h, rank, order));
    rank = (rank + 997) % h.total();
  }
}
BENCHMARK(BM_ReorderRank);

void BM_ReorderWholeWorld(benchmark::State& state) {
  const Hierarchy h = lumi_hierarchy().with_prefix_levels({static_cast<int>(state.range(0))});
  const Order order = identity_order(h.depth());
  for (auto _ : state) {
    benchmark::DoNotOptimize(reorder_all_ranks(h, order));
  }
  state.SetItemsProcessed(state.iterations() * h.total());
}
BENCHMARK(BM_ReorderWholeWorld)->Arg(2)->Arg(8)->Arg(32);

void BM_RingCost(benchmark::State& state) {
  const Hierarchy& h = lumi_hierarchy();
  const auto members = subcommunicator_coords(h, parse_order("1-2-3-0-4"), 0,
                                              state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring_cost(h, members));
  }
}
BENCHMARK(BM_RingCost)->Arg(16)->Arg(256);

void BM_PairPercentages(benchmark::State& state) {
  const Hierarchy& h = lumi_hierarchy();
  const auto members = subcommunicator_coords(h, parse_order("1-2-3-0-4"), 0,
                                              state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pair_percentages(h, members));
  }
}
BENCHMARK(BM_PairPercentages)->Arg(16)->Arg(256);

void BM_AllOrders(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_orders_heap(n));
  }
}
BENCHMARK(BM_AllOrders)->Arg(4)->Arg(6)->Arg(8);

void BM_SelectCores(benchmark::State& state) {
  const Hierarchy node{2, 4, 2, 8};
  const Order order = parse_order("2-1-0-3");
  for (auto _ : state) {
    benchmark::DoNotOptimize(select_cores(node, order, state.range(0)));
  }
}
BENCHMARK(BM_SelectCores)->Arg(8)->Arg(64);

void BM_ClassifyOrders(benchmark::State& state) {
  const Hierarchy h{4, 2, 2, 8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        classify_orders(h, 16, Equivalence::SameSetsAndInternal));
  }
}
BENCHMARK(BM_ClassifyOrders);

void BM_FlowSimChurn(benchmark::State& state) {
  // Steady-state add/complete churn at the given concurrency.
  const auto machine = topo::lumi(16);
  const auto caps = simnet::channel_capacities(machine);
  const auto flows = state.range(0);
  for (auto _ : state) {
    simnet::FlowSim sim(caps, 0.005);
    for (std::int64_t f = 0; f < flows; ++f) {
      sim.add_flow(simnet::flow_channels(machine, (f * 37) % 2048,
                                         (f * 101 + 7) % 2048),
                   1e6 + static_cast<double>(f), f);
    }
    std::int64_t completed = 0;
    while (sim.active_flows() > 0) {
      completed += static_cast<std::int64_t>(sim.advance_and_pop().size());
    }
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowSimChurn)->Arg(64)->Arg(512)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
