// Figure 5: MPI_Alltoall on 16 LUMI nodes (2048 processes), 16 processes
// per communicator — 1 vs 128 simultaneous communicators.
//
// Expected shape: alone, the spread [0,1,2,3,4] leads for large messages
// (each of the 16 ranks has a whole 25 GB/s NIC); with 128 simultaneous
// communicators it collapses (128 ranks share each NIC) and the packed
// [4,3,2,1,0] / [3,4,0,1,2] orders win, flat across scenarios.
#include "bench/bench_common.hpp"
#include "mixradix/topo/presets.hpp"

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const auto machine = mr::topo::lumi(16);

  mr::harness::SweepConfig config;
  config.orders = {
      mr::parse_order("0-1-2-3-4"), mr::parse_order("1-2-3-0-4"),
      mr::parse_order("3-2-1-4-0"), mr::parse_order("3-4-0-1-2"),
      mr::parse_order("4-3-2-1-0"),
  };
  config.sizes = mr::harness::paper_sizes(opts.max_size);
  config.comm_size = 16;
  config.collective = mr::simmpi::Collective::Alltoall;
  config.repetitions = opts.repetitions;
  config.threads = opts.threads;
  config.use_plan_cache = !opts.no_plan_cache;
  // --tune=K: replace the fixed legend with the autotuner's top-K orders
  // for this exact workload (funnel survivors only; see mr::tune).
  config.tune_top_k = opts.tune_k;

  config.all_comms = false;
  const auto single = run_sweep(machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(machine, config);

  bench::emit("fig5", opts, single, simultaneous,
              "Fig. 5 — 16 LUMI nodes, 2048 procs, MPI_Alltoall, "
              "16 procs/comm (1 vs 128 simultaneous)");
  return 0;
}
