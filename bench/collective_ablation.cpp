// Ablation: how much of each figure's effect is due to (a) the collective
// algorithm choice and (b) the memory-contention model — the design
// decisions DESIGN.md calls out.
//
// For each collective algorithm variant, prints the packed vs spread
// mapping times for a 16-process communicator on 16 Hydra nodes, alone and
// with all 32 communicators running. Pin one algorithm at a time the way
// the paper pins "the choice of the algorithm ... is left free" but
// verifies fixed algorithms "show similar trends".
#include <iomanip>
#include <iostream>

#include "mixradix/mr/metrics.hpp"
#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/strings.hpp"

namespace {

using namespace mr;

double run_orders(const topo::Machine& machine,
                  const std::shared_ptr<const simmpi::Plan>& coll,
                  const Order& order, std::int64_t comm_size, bool all) {
  const auto placement = placement_of_new_ranks(machine.hierarchy(), order);
  const std::int64_t ncomms = all ? machine.cores() / comm_size : 1;
  std::vector<simmpi::PlanJob> jobs;
  for (std::int64_t k = 0; k < ncomms; ++k) {
    simmpi::PlanJob job;
    job.plan = coll;
    for (std::int64_t j = 0; j < comm_size; ++j) {
      job.core_of_rank.push_back(
          placement[static_cast<std::size_t>(k * comm_size + j)]);
    }
    jobs.push_back(std::move(job));
  }
  return simmpi::run_timed(machine, jobs).makespan;
}

void report(const topo::Machine& machine, const char* name,
            simmpi::Schedule schedule) {
  // One compiled plan shared by all four (order, all) cells and every
  // communicator job within each cell.
  const auto coll = std::make_shared<const simmpi::Plan>(
      simmpi::make_plan(std::move(schedule), 1, name));
  const Order spread = parse_order("0-1-2-3");
  const Order packed = parse_order("3-2-1-0");
  std::cout << "  " << std::left << std::setw(30) << name;
  for (bool all : {false, true}) {
    const double t_spread = run_orders(machine, coll, spread, 16, all);
    const double t_packed = run_orders(machine, coll, packed, 16, all);
    std::cout << "  " << (all ? "32 comms:" : " 1 comm:") << " spread "
              << std::setw(8) << util::format_fixed(t_spread * 1e6, 0)
              << " us, packed " << std::setw(8)
              << util::format_fixed(t_packed * 1e6, 0) << " us |";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const auto machine = topo::hydra(16);
  const std::int64_t count = 32 * 1024;  // 256 KB per rank pair block

  std::cout << "== Ablation A — collective algorithm choice (Hydra, 512 "
               "procs, comms of 16) ==\n";
  report(machine, "alltoall_pairwise", mr::simmpi::alltoall_pairwise(16, count));
  report(machine, "alltoall_bruck", mr::simmpi::alltoall_bruck(16, count));
  report(machine, "alltoall_linear", mr::simmpi::alltoall_linear(16, count));
  report(machine, "allgather_ring", mr::simmpi::allgather_ring(16, count));
  report(machine, "allgather_recursive_doubling",
         mr::simmpi::allgather_recursive_doubling(16, count));
  report(machine, "allgather_bruck", mr::simmpi::allgather_bruck(16, count));
  report(machine, "allreduce_ring", mr::simmpi::allreduce_ring(16, count * 16));
  report(machine, "allreduce_recursive_doubling",
         mr::simmpi::allreduce_recursive_doubling(16, count * 16));

  std::cout << "\n== Ablation B — memory-contention model on/off (same "
               "setup, alltoall_pairwise) ==\n";
  // Without per-domain memory ceilings, packed mappings look free of self-
  // contention and the single-communicator crossover of Figs. 3/5 vanishes.
  auto no_mem_levels = machine.levels();
  for (auto& level : no_mem_levels) level.mem_bandwidth = 0;
  const topo::Machine no_mem("hydra-nomem", std::move(no_mem_levels),
                             machine.costs(), machine.core_flops());
  report(machine, "with memory model", mr::simmpi::alltoall_pairwise(16, count));
  report(no_mem, "without memory model", mr::simmpi::alltoall_pairwise(16, count));

  std::cout << "\nreading: packed times should match between the 1-comm and "
               "32-comm columns\n(contention immunity); spread should "
               "collapse by >5x in the 32-comm column.\nWithout the memory "
               "model, packed wins everywhere and the paper's\nsingle-"
               "communicator shape disappears — the ablation justifying the "
               "memory channels.\n";
  return 0;
}
