// Extension experiment (the paper's concluding future work): "being able
// to follow an order for a set of communicators and another order for
// remaining communicators and to have subcommunicators with different
// sizes."
//
// Setup: 16 Hydra nodes. Half the machine is FULL: 8 sixteen-process
// Alltoall communicators saturate it (packed wins under self-contention,
// Fig. 3 right). The other half is nearly idle: just 2 sixteen-process
// large-message Alltoall communicator (spread gives each rank a whole
// NIC, Fig. 3 left). Uniform orders force one policy on both
// groups; the mixed mapping gives each group its winner.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "mixradix/engine/engine.hpp"
#include "mixradix/mr/decompose.hpp"
#include "mixradix/mr/permutation.hpp"
#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/strings.hpp"
#include "mixradix/util/thread_pool.hpp"

namespace {

using namespace mr;

/// Jobs for one half of the machine: communicators of `comm_size` over the
/// cores listed in `cores` (block-partitioned in the given sequence).
void add_jobs(std::vector<simmpi::PlanJob>& jobs,
              const std::shared_ptr<const simmpi::Plan>& coll,
              const std::vector<std::int64_t>& cores, std::int64_t comm_size) {
  for (std::size_t base = 0; base + comm_size <= cores.size();
       base += comm_size) {
    simmpi::PlanJob job;
    job.plan = coll;
    job.core_of_rank.assign(cores.begin() + static_cast<std::ptrdiff_t>(base),
                            cores.begin() + static_cast<std::ptrdiff_t>(base + comm_size));
    jobs.push_back(std::move(job));
  }
}

/// Enumerate the cores of nodes [first, last) under `order` applied to the
/// 8-node sub-hierarchy.
std::vector<std::int64_t> half_cores(const Hierarchy& half, const Order& order,
                                     std::int64_t node_offset_cores) {
  const auto placement = placement_of_new_ranks(half, order);
  std::vector<std::int64_t> cores(placement.size());
  for (std::size_t i = 0; i < placement.size(); ++i) {
    cores[i] = placement[i] + node_offset_cores;
  }
  return cores;
}

}  // namespace

int main() {
  const auto machine = mr::topo::hydra(16);
  const Hierarchy half{8, 2, 2, 8};  // one 8-node half, 256 cores
  const std::int64_t offset = 256;   // second half starts at core 256

  // Busy half: 256 KB collectives in every communicator. Idle half: two
  // 8 MB collectives with six of eight nodes' worth of cores unused.
  // Compiled once, shared by every config's jobs (the configs only change
  // the rank->core bindings, never the plans).
  const auto busy = std::make_shared<const simmpi::Plan>(
      simmpi::make_plan(simmpi::alltoall_pairwise(16, 2048), 1, "busy_alltoall"));
  const auto sparse = std::make_shared<const simmpi::Plan>(simmpi::make_plan(
      simmpi::alltoall_pairwise(8, 262144), 1, "sparse_alltoall"));

  struct Config {
    const char* name;
    Order alltoall_order;   // order for the busy half
    Order allreduce_order;  // order for the sparse half
  };
  const std::vector<Config> configs = {
      {"uniform packed  [3-2-1-0] both", parse_order("3-2-1-0"), parse_order("3-2-1-0")},
      {"uniform spread  [0-1-2-3] both", parse_order("0-1-2-3"), parse_order("0-1-2-3")},
      {"uniform Slurm   [1-3-2-0] both", parse_order("1-3-2-0"), parse_order("1-3-2-0")},
      {"mixed: packed busy + spread sparse", parse_order("3-2-1-0"),
       parse_order("0-1-2-3")},
      {"mixed: spread busy + packed sparse", parse_order("0-1-2-3"),
       parse_order("3-2-1-0")},
  };

  std::cout << "== Extension — per-group orders (the paper's future work) ==\n"
            << "16 Hydra nodes: busy half runs 8x Alltoall(16 procs, 256 KB);\n"
            << "idle half runs 1x Alltoall(8 procs, 2 MB/pair), simultaneously.\n\n";
  // Each config is an independent simulation: fan them out across the
  // engine's pool and print in input order.
  std::vector<std::string> lines(configs.size());
  mr::Engine::shared().thread_pool().parallel_for(
      configs.size(), [&](std::size_t c) {
        const auto& config = configs[c];
        std::vector<simmpi::PlanJob> jobs;
        add_jobs(jobs, busy, half_cores(half, config.alltoall_order, 0), 16);
        // Only the first communicator of the idle half exists.
        auto sparse_cores = half_cores(half, config.allreduce_order, offset);
        sparse_cores.resize(8);
        add_jobs(jobs, sparse, sparse_cores, 8);
        const auto result = run_timed(machine, jobs);
        // Report the slowest communicator of each group.
        double worst_busy = 0, worst_sparse = 0;
        for (std::size_t j = 0; j < jobs.size(); ++j) {
          (j < 16 ? worst_busy : worst_sparse) =
              std::max(j < 16 ? worst_busy : worst_sparse, result.job_finish[j]);
        }
        std::ostringstream line;
        line << "  " << std::left << std::setw(44) << config.name << " busy "
             << std::setw(9)
             << (mr::util::format_fixed(worst_busy * 1e6, 0) + " us")
             << "  sparse " << std::setw(9)
             << (mr::util::format_fixed(worst_sparse * 1e6, 0) + " us")
             << "  makespan "
             << mr::util::format_fixed(result.makespan * 1e6, 0) << " us\n";
        lines[c] = line.str();
      });
  for (const std::string& line : lines) std::cout << line;
  std::cout << "\nreading: no single uniform order serves both groups; the\n"
               "per-group mapping matches each communicator family to its\n"
               "preferred policy — motivating the paper's proposed extension.\n";
  return 0;
}
