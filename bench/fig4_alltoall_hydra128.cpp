// Figure 4: MPI_Alltoall on 16 Hydra nodes (512 processes), 128 processes
// per communicator — 1 vs 4 simultaneous communicators.
//
// Expected shape: with communicators this large every mapping crosses
// nodes heavily, so the spread/packed gap narrows; packed-ish orders
// ([3,2,1,0], [1,3,2,0]) still degrade least when all 4 communicators run.
#include "bench/bench_common.hpp"
#include "mixradix/topo/presets.hpp"

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const auto machine = mr::topo::hydra(16);

  mr::harness::SweepConfig config;
  config.orders = {
      mr::parse_order("0-1-2-3"), mr::parse_order("2-1-0-3"),
      mr::parse_order("1-3-0-2"), mr::parse_order("3-1-0-2"),
      mr::parse_order("1-3-2-0"), mr::parse_order("3-2-1-0"),
  };
  config.sizes = mr::harness::paper_sizes(opts.max_size);
  config.comm_size = 128;
  config.collective = mr::simmpi::Collective::Alltoall;
  config.repetitions = opts.repetitions;
  config.threads = opts.threads;
  config.use_plan_cache = !opts.no_plan_cache;
  // --tune=K: replace the fixed legend with the autotuner's top-K orders
  // for this exact workload (funnel survivors only; see mr::tune).
  config.tune_top_k = opts.tune_k;

  config.all_comms = false;
  const auto single = run_sweep(machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(machine, config);

  bench::emit("fig4", opts, single, simultaneous,
              "Fig. 4 — 16 Hydra nodes, 512 procs, MPI_Alltoall, "
              "128 procs/comm (1 vs 4 simultaneous)");
  return 0;
}
