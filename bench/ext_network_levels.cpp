// Extension experiment (§3.2's unexploited possibility): include the
// NETWORK hierarchy in the mixed-radix base. The paper notes hierarchies
// "can also include levels outside of nodes, like cabinets or the topology
// of the network", with the constraint that allocated nodes exactly fill
// the selected switches — but never evaluates it.
//
// Setup: a two-level fat-tree — 4 leaf switches x 4 nodes — modelled as
// the 5-level hierarchy ⟦4, 4, 2, 2, 8⟧ with an oversubscribed (1:2)
// switch uplink. Alltoall in 16-process communicators; switch-aware orders
// can pack communicators under one leaf switch, which the node-level
// hierarchy alone cannot express.
#include "bench/bench_common.hpp"
#include "mixradix/topo/presets.hpp"

namespace {

mr::topo::Machine switchy_hydra() {
  std::vector<mr::topo::LevelSpec> levels = {
      // Leaf switches: the uplink into the core is 1:2 oversubscribed
      // (4 nodes x 12.5 GB/s behind a 25 GB/s trunk).
      {"switch", 4, 5.0e-7, 25.0e9, 0.0},
      {"node", 4, 1.0e-6, 12.5e9, 0.0},
      {"socket", 2, 4.0e-7, 20.0e9, 85.0e9},
      {"half", 2, 1.5e-7, 40.0e9, 48.0e9},
      {"core", 8, 1.0e-7, 9.0e9, 12.0e9},
  };
  return mr::topo::Machine("hydra-fat-tree", std::move(levels));
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const auto machine = switchy_hydra();  // 512 cores, 16 nodes

  mr::harness::SweepConfig config;
  config.orders = {
      // node-spread but switch-PACKED: impossible without the switch level.
      mr::parse_order("1-2-3-4-0"),
      // fully spread incl. switches (the naive "most spread").
      mr::parse_order("0-1-2-3-4"),
      // switch-level round-robin of packed comms.
      mr::parse_order("4-3-2-1-0"),
      // Slurm-expressible node-level spread, oblivious to switches.
      mr::parse_order("1-0-2-3-4"),
  };
  config.sizes = mr::harness::paper_sizes(opts.max_size);
  config.comm_size = 16;
  config.collective = mr::simmpi::Collective::Alltoall;
  config.repetitions = opts.repetitions;
  config.threads = opts.threads;
  config.use_plan_cache = !opts.no_plan_cache;

  config.all_comms = false;
  const auto single = run_sweep(machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(machine, config);

  bench::emit("ext-network", opts, single, simultaneous,
              "Extension — network levels in the hierarchy: 4 switches x 4 "
              "Hydra nodes (1:2 oversubscribed), MPI_Alltoall, 16 procs/comm");
  std::cout
      << "reading: with all communicators active, the switch-packed\n"
         "node-spread order [1-2-3-4-0] avoids the oversubscribed trunk\n"
         "that the switch-oblivious spread orders saturate — a mapping\n"
         "class only reachable once the network level joins the base.\n";
  return 0;
}
