// Timed-executor hot-path overhaul on a Fig-3-shaped sweep (MPI_Alltoall
// on 16 Hydra nodes, six enumeration orders, paper message sizes).
//
// The optimized engine interns message routes in a per-workspace
// RouteTable, tracks flow completions with FlowSim's lazy deadline heap,
// and reuses one SimWorkspace per sweep thread; the reference engine
// (ExecOptions::reference) keeps the pre-overhaul cost profile — routes
// derived per message, O(active-flows) completion scans, fresh
// allocations per point — while evaluating the exact same floating-point
// expressions. This bench (1) proves the two produce byte-identical sweep
// CSVs across {completion slack on, off} x {serial, threaded}, (2) times
// the single-communicator sweep both ways (min over alternating passes)
// and (3) records the engine counters of one representative run, writing
// everything to BENCH_timed_hotpath.json so the speedup is tracked
// across PRs.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "mixradix/mr/decompose.hpp"
#include "mixradix/topo/presets.hpp"

namespace {

std::string sweep_csv(mr::Engine& engine, const mr::topo::Machine& machine,
                      mr::harness::SweepConfig config) {
  config.all_comms = false;
  const auto single = run_sweep(engine, machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(engine, machine, config);
  std::ostringstream csv;
  mr::harness::write_figure_csv(csv, "timed_hotpath", single, simultaneous);
  return csv.str();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::Options::parse(argc, argv);
  if (opts.max_size == 512ll << 20) opts.max_size = 8ll << 20;  // bench default
  const auto machine = mr::topo::hydra(16);
  mr::Engine& engine = bench::select_engine(opts);

  mr::harness::SweepConfig config;
  config.orders = {
      mr::parse_order("0-1-2-3"), mr::parse_order("2-1-0-3"),
      mr::parse_order("1-3-0-2"), mr::parse_order("1-3-2-0"),
      mr::parse_order("3-1-0-2"), mr::parse_order("3-2-1-0"),
  };
  config.sizes = mr::harness::paper_sizes(opts.max_size);
  config.comm_size = 16;
  config.collective = mr::simmpi::Collective::Alltoall;
  config.repetitions = opts.repetitions;
  config.use_plan_cache = !opts.no_plan_cache;

  const std::size_t points = 2 * config.orders.size() * config.sizes.size();
  std::cout << "timed_hotpath: " << points
            << " sweep points, optimized vs reference engine\n";

  // Pass 1 — bit-identity across the full determinism matrix: the
  // reference and optimized engines must emit byte-identical CSVs with
  // completion slack on and off, serially and threaded (thread count only
  // changes which pool thread's workspace simulates a point).
  bool identical = true;
  for (const double slack : {mr::simmpi::kDefaultCompletionSlack, 0.0}) {
    config.completion_slack = slack;
    config.threads = 1;
    config.reference_engine = true;
    const std::string ref_serial = sweep_csv(engine, machine, config);
    config.reference_engine = false;
    const std::string opt_serial = sweep_csv(engine, machine, config);
    config.threads = opts.threads;
    const std::string opt_threaded = sweep_csv(engine, machine, config);
    const bool same =
        ref_serial == opt_serial && ref_serial == opt_threaded;
    identical = identical && same;
    std::cout << "  slack=" << slack
              << ": reference == optimized (serial, threads="
              << opts.resolved_threads() << "): " << (same ? "yes" : "NO")
              << "\n";
  }
  config.completion_slack = mr::simmpi::kDefaultCompletionSlack;
  config.threads = 1;

  // Pass 2 — end-to-end speedup on the single-communicator sweep (Fig 3
  // left panel), serial so the measurement is not at the mercy of the
  // pool. Min over alternating passes strips the strictly additive
  // scheduler noise.
  config.all_comms = false;
  double reference_seconds = 0, optimized_seconds = 0;
  for (int pass = 0; pass < 5; ++pass) {
    config.reference_engine = true;
    const auto ref_start = std::chrono::steady_clock::now();
    (void)run_sweep(engine, machine, config);
    const double ref_pass = seconds_since(ref_start);

    config.reference_engine = false;
    const auto opt_start = std::chrono::steady_clock::now();
    (void)run_sweep(engine, machine, config);
    const double opt_pass = seconds_since(opt_start);

    reference_seconds =
        pass == 0 ? ref_pass : std::min(reference_seconds, ref_pass);
    optimized_seconds =
        pass == 0 ? opt_pass : std::min(optimized_seconds, opt_pass);
  }
  const double speedup =
      optimized_seconds > 0 ? reference_seconds / optimized_seconds : 0.0;

  // Pass 3 — engine counters of one representative point (the largest
  // size, both scenarios' heaviest: all communicators at once), run twice
  // against one workspace so the second run shows the warm route table.
  mr::harness::MicrobenchConfig mb;
  mb.order = config.orders.front();
  mb.comm_size = config.comm_size;
  mb.collective = config.collective;
  mb.total_bytes = config.sizes.back();
  mb.all_comms = true;
  mb.repetitions = config.repetitions;
  mb.use_plan_cache = config.use_plan_cache;
  mr::simmpi::SimWorkspace workspace;
  mb.workspace = &workspace;
  (void)run_microbench(engine, machine, mb);  // cold: interns routes
  const mr::simmpi::TimedResult warm = [&] {
    // Re-run the heaviest point directly so the counters describe ONE
    // run_timed call (run_microbench aggregates away the TimedResult).
    mr::simmpi::ExecOptions exec;
    exec.workspace = &workspace;
    const auto plan = engine.plan_cache().get(
        mr::simmpi::PlanKey{mr::simmpi::selected_algorithm(
                                mb.collective,
                                static_cast<std::int32_t>(mb.comm_size),
                                std::max<std::int64_t>(
                                    1, mb.total_bytes / (8 * mb.comm_size)),
                                machine.costs().eager_threshold),
                            static_cast<std::int32_t>(mb.comm_size),
                            std::max<std::int64_t>(
                                1, mb.total_bytes / (8 * mb.comm_size)),
                            0, mb.repetitions});
    const auto placement =
        mr::placement_of_new_ranks(machine.hierarchy(), mb.order);
    std::vector<mr::simmpi::PlanJob> jobs;
    const std::int64_t ncomms = machine.cores() / mb.comm_size;
    for (std::int64_t k = 0; k < ncomms; ++k) {
      mr::simmpi::PlanJob job;
      job.plan = plan;
      job.core_of_rank.assign(
          placement.begin() + k * mb.comm_size,
          placement.begin() + (k + 1) * mb.comm_size);
      jobs.push_back(std::move(job));
    }
    return run_timed(machine, jobs, exec);
  }();
  std::cout << "  heaviest point (warm workspace): ";
  bench::print_engine_counters(std::cout, warm);

  std::cout << "  single-comm sweep: " << reference_seconds * 1e3
            << " ms reference, " << optimized_seconds * 1e3
            << " ms optimized (" << speedup << "x)\n"
            << "  output identical across engines, slack and threads: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";

  std::ofstream json("BENCH_timed_hotpath.json");
  json << "{\n"
       << "  \"bench\": \"timed_hotpath\",\n"
       << "  \"points\": " << points << ",\n"
       << "  \"max_size_bytes\": " << opts.max_size << ",\n"
       << "  \"repetitions\": " << opts.repetitions << ",\n"
       << "  \"threads\": " << opts.resolved_threads() << ",\n"
       << "  \"reference_seconds\": " << reference_seconds << ",\n"
       << "  \"optimized_seconds\": " << optimized_seconds << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"events_processed\": " << warm.engine_stats.events_processed
       << ",\n"
       << "  \"peak_event_queue\": " << warm.engine_stats.peak_event_queue
       << ",\n"
       << "  \"peak_active_flows\": " << warm.flow_stats.peak_active_flows
       << ",\n"
       << "  \"route_cache_hits\": " << warm.engine_stats.route_cache_hits
       << ",\n"
       << "  \"route_cache_misses\": " << warm.engine_stats.route_cache_misses
       << ",\n"
       << "  \"identical_output\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "json written to BENCH_timed_hotpath.json\n";
  return identical ? 0 : 1;
}
