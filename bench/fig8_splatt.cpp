// Figure 8: Splatt CPD duration on 32 Hydra nodes (1024 processes) for all
// 24 rank-reordering orders, with one and with two NICs per node.
//
// Expected shape (paper): the Slurm default [1,3,2,0] (block:cyclic) is
// among the slow mappings; the best order improves on it by ~30% with one
// NIC; with two NICs everything speeds up and the gap narrows (~19%). CPD
// duration correlates strongly (Pearson >= 0.9) with the time spent in the
// 16-process layer alltoallvs.
#include <iomanip>
#include <iostream>

#include "mixradix/apps/splatt.hpp"
#include "mixradix/mr/metrics.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/strings.hpp"

int main(int argc, char** argv) {
  int iterations = 50;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--iters=", 0) == 0) {
      iterations = std::stoi(arg.substr(8));
    } else {
      std::cerr << "unknown flag: " << arg << " (known: --iters=N)\n";
      return 2;
    }
  }

  const auto spec = mr::apps::splatt::nell1_like();
  mr::apps::splatt::CpdConfig config;
  config.iterations = iterations;
  // One simulated iteration extrapolates cleanly: the simulator is
  // deterministic and every iteration is statistically identical.
  config.sim_iterations = 1;

  const mr::Order slurm_default = mr::parse_order("1-3-2-0");

  for (int nics : {1, 2}) {
    const auto machine = mr::topo::hydra(32, nics);
    std::cout << "== Fig. 8" << (nics == 1 ? "a" : "b")
              << " — Splatt CPD, 32 Hydra nodes, 1024 procs, " << nics
              << " NIC(s) ==\n";
    std::vector<double> totals, alltoallvs;
    double best = 1e300, worst = 0, slurm = 0;
    std::string best_order, worst_order;
    for (const mr::Order& order : mr::all_orders_lexicographic(4)) {
      const auto result =
          mr::apps::splatt::simulate_cpd(machine, spec, order, config);
      totals.push_back(result.seconds);
      alltoallvs.push_back(result.alltoallv_seconds);
      std::cout << "  " << std::left << std::setw(10)
                << mr::order_to_string(order) << std::right << std::setw(8)
                << mr::util::format_fixed(result.seconds, 2) << " s   (16-proc "
                << "alltoallv: "
                << mr::util::format_fixed(result.alltoallv_seconds, 2) << " s)";
      if (order == slurm_default) {
        std::cout << "  [Slurm default mapping]";
        slurm = result.seconds;
      }
      std::cout << "\n";
      if (result.seconds < best) {
        best = result.seconds;
        best_order = mr::order_to_string(order);
      }
      if (result.seconds > worst) {
        worst = result.seconds;
        worst_order = mr::order_to_string(order);
      }
    }
    std::cout << "best " << best_order << " = "
              << mr::util::format_fixed(best, 2) << " s, worst " << worst_order
              << " = " << mr::util::format_fixed(worst, 2)
              << " s, Slurm default = " << mr::util::format_fixed(slurm, 2)
              << " s\n";
    std::cout << "improvement of best over Slurm default: "
              << mr::util::format_fixed(100.0 * (slurm - best) / slurm, 0)
              << " %\n";
    std::cout << "Pearson r(CPD duration, 16-proc alltoallv duration) = "
              << mr::util::format_fixed(
                     mr::apps::splatt::pearson(totals, alltoallvs), 2)
              << "\n\n";
  }
  return 0;
}
