// Plan-cache effectiveness on a Fig-3-shaped sweep (MPI_Alltoall on 16
// Hydra nodes, six enumeration orders, paper message sizes, 1 and 32
// simultaneous communicators).
//
// The compiled plan of a sweep point depends only on (algorithm, p, count,
// repetitions) — never on the enumeration order — so all six orders (and
// both scenarios) of each message size share one cached compile. This
// bench runs the sweep once through the engine's plan cache and once with
// the cache bypassed (compile per point), verifies the CSV output is
// byte-identical, and writes BENCH_plan_cache.json with the hit rate and
// the end-to-end speedup so both are tracked across PRs.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "mixradix/topo/presets.hpp"

namespace {

std::string sweep_csv(mr::Engine& engine, const mr::topo::Machine& machine,
                      mr::harness::SweepConfig config) {
  config.all_comms = false;
  const auto single = run_sweep(engine, machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(engine, machine, config);
  std::ostringstream csv;
  mr::harness::write_figure_csv(csv, "plan_cache", single, simultaneous);
  return csv.str();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::Options::parse(argc, argv);
  if (opts.max_size == 512ll << 20) opts.max_size = 8ll << 20;  // bench default
  const auto machine = mr::topo::hydra(16);

  mr::harness::SweepConfig config;
  config.orders = {
      mr::parse_order("0-1-2-3"), mr::parse_order("2-1-0-3"),
      mr::parse_order("1-3-0-2"), mr::parse_order("1-3-2-0"),
      mr::parse_order("3-1-0-2"), mr::parse_order("3-2-1-0"),
  };
  config.sizes = mr::harness::paper_sizes(opts.max_size);
  config.comm_size = 16;
  config.collective = mr::simmpi::Collective::Alltoall;
  config.repetitions = opts.repetitions;
  config.threads = opts.threads;

  const std::size_t points = 2 * config.orders.size() * config.sizes.size();
  std::cout << "plan_cache: " << points
            << " sweep points, cached vs compile-per-point\n";

  // Pass 1 — determinism + hit rate on the full Fig-3 sweep (both
  // scenarios). Bypass first so its private compiles cannot warm the
  // engine's cache.
  mr::Engine& engine = bench::select_engine(opts);
  auto& cache = engine.plan_cache();
  config.use_plan_cache = false;
  const auto full_bypass_start = std::chrono::steady_clock::now();
  const std::string bypass_csv = sweep_csv(engine, machine, config);
  const double full_bypass_seconds = seconds_since(full_bypass_start);
  cache.clear();  // measure this sweep's hit rate, not process history
  config.use_plan_cache = true;
  const auto full_cached_start = std::chrono::steady_clock::now();
  const std::string cached_csv = sweep_csv(engine, machine, config);
  const double full_cached_seconds = seconds_since(full_cached_start);
  const auto stats = cache.stats();
  const bool identical = cached_csv == bypass_csv;

  // Pass 2 — end-to-end speedup on the single-communicator sweep (Fig 3
  // left panel: 6 orders x sizes, one 16-rank communicator per point).
  // There a point's simulation is sub-millisecond, so the per-point
  // compile (plus, in verifying builds, the static analysis) is a
  // resolvable fraction of the wall time; the 32-communicator sweep is
  // simulation-bound and its timing — reported above as the full-sweep
  // seconds — hides the saving in noise. Min over alternating passes
  // strips the strictly additive scheduler noise.
  config.all_comms = false;
  double bypass_seconds = 0, cached_seconds = 0;
  for (int pass = 0; pass < 5; ++pass) {
    config.use_plan_cache = false;
    const auto bypass_start = std::chrono::steady_clock::now();
    (void)run_sweep(engine, machine, config);
    const double bypass_pass = seconds_since(bypass_start);

    cache.clear();  // every cached pass re-measures cold-to-warm
    config.use_plan_cache = true;
    const auto cached_start = std::chrono::steady_clock::now();
    (void)run_sweep(engine, machine, config);
    const double cached_pass = seconds_since(cached_start);

    bypass_seconds =
        pass == 0 ? bypass_pass : std::min(bypass_seconds, bypass_pass);
    cached_seconds =
        pass == 0 ? cached_pass : std::min(cached_seconds, cached_pass);
  }
  const double speedup =
      cached_seconds > 0 ? bypass_seconds / cached_seconds : 0.0;

  std::cout << "  full sweep (1 + 32 comms): " << full_bypass_seconds
            << " s bypass, " << full_cached_seconds << " s cached\n"
            << "  cache: " << stats.entries << " plans, " << stats.hits
            << " hits / " << stats.misses << " compiles ("
            << stats.hit_rate() * 100 << "% hit rate)\n"
            << "  single-comm sweep: " << bypass_seconds * 1e3
            << " ms bypass, " << cached_seconds * 1e3 << " ms cached ("
            << speedup << "x)\n"
            << "  output identical with and without the cache: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";

  std::ofstream json("BENCH_plan_cache.json");
  json << "{\n"
       << "  \"bench\": \"plan_cache\",\n"
       << "  \"points\": " << points << ",\n"
       << "  \"max_size_bytes\": " << opts.max_size << ",\n"
       << "  \"repetitions\": " << opts.repetitions << ",\n"
       << "  \"threads\": " << opts.resolved_threads() << ",\n"
       << "  \"gets\": " << stats.hits + stats.misses << ",\n"
       << "  \"hits\": " << stats.hits << ",\n"
       << "  \"misses\": " << stats.misses << ",\n"
       << "  \"hit_rate\": " << stats.hit_rate() << ",\n"
       << "  \"full_sweep_bypass_seconds\": " << full_bypass_seconds << ",\n"
       << "  \"full_sweep_cached_seconds\": " << full_cached_seconds << ",\n"
       << "  \"bypass_seconds\": " << bypass_seconds << ",\n"
       << "  \"cached_seconds\": " << cached_seconds << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"identical_output\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "json written to BENCH_plan_cache.json\n";
  return identical ? 0 : 1;
}
