// Extra experiment (beyond the paper, motivated by its §2): how close does
// enumerate-h!-orders-and-pick get to a TreeMatch-style mapping computed
// from the application's measured communication matrix?
//
// Workload: the Splatt CPD proxy on 32 Hydra nodes. Compared placements:
//   * every mixed-radix order (best / worst / Slurm default highlighted);
//   * the greedy communication-matrix mapping (baseline/);
//   * the matrix mapping's weighted-hop-cost metric next to each, showing
//     how well the static metric predicts simulated time.
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "mixradix/apps/splatt.hpp"
#include "mixradix/baseline/comm_matrix_mapper.hpp"
#include "mixradix/mr/decompose.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/strings.hpp"

int main() {
  using namespace mr;
  const auto machine = topo::hydra(32);
  const auto spec = apps::splatt::nell1_like();
  const auto grid = apps::splatt::default_grid(1024);
  apps::splatt::CpdConfig config;
  config.sim_iterations = 1;

  const auto matrix = apps::splatt::cpd_comm_matrix(spec, grid, config.factor_rank);
  const Hierarchy& h = machine.hierarchy();

  std::cout << "== Baseline comparison — Splatt CPD, 32 Hydra nodes ==\n";
  std::cout << std::left << std::setw(28) << "mapping" << std::right
            << std::setw(12) << "CPD [s]" << std::setw(22)
            << "weighted hop cost\n";

  const auto report = [&](const std::string& name,
                          const std::vector<std::int64_t>& placement) {
    const auto result =
        apps::splatt::simulate_cpd_placement(machine, spec, placement, config);
    std::cout << std::left << std::setw(28) << name << std::right
              << std::setw(12) << util::format_fixed(result.seconds, 2)
              << std::setw(20)
              << util::format_fixed(
                     baseline::weighted_hop_cost(h, matrix, placement) / 1e9, 1)
              << "\n";
    return result.seconds;
  };

  // Mixed-radix orders: find best and worst by simulation.
  double best = 1e300, worst = 0;
  Order best_order, worst_order;
  for (const Order& order : all_orders_lexicographic(h.depth())) {
    const auto placement = placement_of_new_ranks(h, order);
    const auto result = apps::splatt::simulate_cpd_placement(
        machine, spec, std::vector<std::int64_t>(placement.begin(), placement.end()),
        config);
    if (result.seconds < best) {
      best = result.seconds;
      best_order = order;
    }
    if (result.seconds > worst) {
      worst = result.seconds;
      worst_order = order;
    }
  }

  const auto placement_of = [&](const Order& order) {
    const auto p = placement_of_new_ranks(h, order);
    return std::vector<std::int64_t>(p.begin(), p.end());
  };
  report("mixed-radix best " + order_to_string(best_order), placement_of(best_order));
  report("mixed-radix worst " + order_to_string(worst_order), placement_of(worst_order));
  report("Slurm default 1-3-2-0", placement_of(parse_order("1-3-2-0")));
  const double tm = report("comm-matrix greedy (TreeMatch-like)",
                           baseline::map_by_comm_matrix(h, matrix));

  std::cout << "\nmixed-radix best vs matrix-driven mapping: "
            << util::format_fixed(100.0 * (tm - best) / tm, 1)
            << " % (positive = enumeration wins)\n";
  std::cout
      << "The matrix mapper minimises communication DISTANCE, and on this\n"
         "workload every mapping has nearly the same weighted hop cost (the\n"
         "strided 16-process layers cannot all be localised) — distance does\n"
         "not see the CONTENTION that separates the mappings. Enumerating\n"
         "h! = 24 orders and simulating/benchmarking them, the paper's\n"
         "approach, finds the contention-aware winner the static metric\n"
         "misses.\n";
  return 0;
}
