// Figure 6: MPI_Allreduce on 16 Hydra nodes (512 processes), 64 processes
// per communicator — 1 vs 8 simultaneous communicators.
//
// Expected shape: both the communicator placement AND the rank order
// inside the communicator matter — [0,1,2,3] vs [2,1,0,3] share pair
// percentages but differ in ring cost, and the ring/recursive phases of
// allreduce make that internal order visible (unlike Alltoall).
#include "bench/bench_common.hpp"
#include "mixradix/topo/presets.hpp"

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const auto machine = mr::topo::hydra(16);

  mr::harness::SweepConfig config;
  config.orders = {
      mr::parse_order("0-1-2-3"), mr::parse_order("2-1-0-3"),
      mr::parse_order("1-3-0-2"), mr::parse_order("3-1-0-2"),
      mr::parse_order("1-3-2-0"), mr::parse_order("3-2-1-0"),
  };
  config.sizes = mr::harness::paper_sizes(opts.max_size);
  config.comm_size = 64;
  config.collective = mr::simmpi::Collective::Allreduce;
  config.repetitions = opts.repetitions;
  config.threads = opts.threads;
  config.use_plan_cache = !opts.no_plan_cache;
  // --tune=K: replace the fixed legend with the autotuner's top-K orders
  // for this exact workload (funnel survivors only; see mr::tune).
  config.tune_top_k = opts.tune_k;

  config.all_comms = false;
  const auto single = run_sweep(machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(machine, config);

  bench::emit("fig6", opts, single, simultaneous,
              "Fig. 6 — 16 Hydra nodes, 512 procs, MPI_Allreduce, "
              "64 procs/comm (1 vs 8 simultaneous)");
  return 0;
}
