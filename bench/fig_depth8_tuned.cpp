// Depth-8 figure: the paper's protocol on a hierarchy deep enough that a
// fixed legend is impossible — 8 levels mean 8! = 40320 enumeration orders,
// far past what a hand-picked order list (or an exhaustive sweep) covers.
// Instead the sweep's curves are produced from FUNNEL SURVIVORS ONLY:
// SweepConfig::tune_top_k routes the whole 40320-order space through the
// mr::tune multi-fidelity funnel (screen -> dedup -> branch-and-bound with
// BoundCache-amortized static bounds -> waved simulation) and plots the
// top-K orders it returns, exactly like Fig. 3 plots its six.
//
//   $ ./fig_depth8_tuned                # top-4 survivors, sizes to 4 MiB
//   $ ./fig_depth8_tuned --tune=6 --max-size=16777216
//
// The machine is deep7's binary cache/NUMA tree with the 4-core leaf split
// once more (l2 pairs of 2-core leaves): 2 cabinets x 2 nodes x 2 sockets
// x 2 NUMA x 2 halves x 2 L3 x 2 L2 x 2 cores = 256 processes.
#include "bench/bench_common.hpp"

namespace {

/// Depth-8, 40320 orders: every level binary so the order space is maximal
/// for the core count. Memory bandwidth is modeled on four levels only
/// (socket/numa/l3/core); the half and l2 splits are pure topology levels,
/// keeping the deepest route at the simulator's kMaxChannelsPerFlow
/// envelope (2 link sides x 8 levels + 2 memory sides x 4 levels = 24).
mr::topo::Machine deep8() {
  std::vector<mr::topo::LevelSpec> levels = {
      {"cabinet", 2, 2.0e-6, 25.0e9, 0.0},
      {"node", 2, 1.0e-6, 12.5e9, 0.0},
      {"socket", 2, 4.0e-7, 20.0e9, 85.0e9},
      {"numa", 2, 2.5e-7, 30.0e9, 60.0e9},
      {"half", 2, 1.5e-7, 40.0e9, 0.0},
      {"l3", 2, 1.2e-7, 25.0e9, 30.0e9},
      {"l2", 2, 1.1e-7, 15.0e9, 0.0},
      {"core", 2, 1.0e-7, 9.0e9, 12.0e9},
  };
  return mr::topo::Machine("deep8", std::move(levels));
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const auto machine = deep8();

  mr::harness::SweepConfig config;
  // No fixed legend at depth 8: the tuner IS the order selection. --tune=K
  // overrides the survivor count; the default keeps the figure readable.
  config.tune_top_k = opts.tune_k > 0 ? opts.tune_k : 4;
  // 40320 orders x paper sizes is a tuner workload, not a sweep workload —
  // cap the size axis lower than the 512 MiB figure default unless the
  // caller explicitly asks for more.
  config.sizes =
      mr::harness::paper_sizes(std::min<std::int64_t>(opts.max_size, 4ll << 20));
  config.comm_size = 16;
  config.collective = mr::simmpi::Collective::Alltoall;
  config.repetitions = opts.repetitions;
  config.threads = opts.threads;
  config.use_plan_cache = !opts.no_plan_cache;

  config.all_comms = false;
  const auto single = run_sweep(machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(machine, config);

  bench::emit("fig_depth8", opts, single, simultaneous,
              "Depth-8 tree, 256 procs, MPI_Alltoall, 16 procs/comm — "
              "top-" + std::to_string(config.tune_top_k) +
              " funnel survivors of 40320 orders (1 vs 16 simultaneous)");
  return 0;
}
