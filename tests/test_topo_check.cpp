// Topology lint tests: every preset must come back clean, and every
// seeded adversarial mutation of a Machine spec must be flagged with a
// located diagnostic of the right check category.
#include "mixradix/verify/topo_check.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "mixradix/topo/presets.hpp"

namespace mr::verify {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<topo::LevelSpec> testbox_levels() {
  return topo::testbox().levels();
}

bool has_diagnostic(const TopoReport& report, Severity severity,
                    TopoCheck check, int level) {
  for (const auto& d : report.diagnostics) {
    if (d.severity == severity && d.check == check && d.level == level) {
      return true;
    }
  }
  return false;
}

TEST(TopoCheck, AllPresetsClean) {
  const topo::Machine machines[] = {
      topo::testbox(),        topo::hydra(4),  topo::hydra(4, 2),
      topo::hydra_node(),     topo::lumi(2),   topo::lumi_node(),
      topo::generic(4, 2, 8),
  };
  for (const auto& m : machines) {
    const TopoReport report = analyze(m);
    EXPECT_TRUE(report.clean()) << m.name() << ":\n" << report.to_string();
    EXPECT_EQ(report.count(Severity::Warning), 0u)
        << m.name() << ":\n" << report.to_string();
    EXPECT_EQ(report.machine, m.name());
  }
}

TEST(TopoCheck, ZeroRadixIsLocatedSpecError) {
  auto levels = testbox_levels();
  levels[1].radix = 0;
  const TopoReport r = analyze_spec("mutant", levels, {}, 1e9);
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(has_diagnostic(r, Severity::Error, TopoCheck::Spec, 1))
      << r.to_string();
  EXPECT_NE(r.to_string().find("radix"), std::string::npos);
}

TEST(TopoCheck, NegativeRadixIsSpecError) {
  auto levels = testbox_levels();
  levels[2].radix = -3;
  const TopoReport r = analyze_spec("mutant", levels, {}, 1e9);
  EXPECT_TRUE(has_diagnostic(r, Severity::Error, TopoCheck::Spec, 2))
      << r.to_string();
}

TEST(TopoCheck, RadixOneIsWarning) {
  auto levels = testbox_levels();
  levels[0].radix = 1;
  const TopoReport r = analyze_spec("mutant", levels, {}, 1e9);
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_TRUE(has_diagnostic(r, Severity::Warning, TopoCheck::Spec, 0))
      << r.to_string();
}

TEST(TopoCheck, NonPositiveBandwidthIsLocatedSpecError) {
  for (const double bw : {0.0, -1.0, kNaN, kInf}) {
    auto levels = testbox_levels();
    levels[1].link_bandwidth = bw;
    const TopoReport r = analyze_spec("mutant", levels, {}, 1e9);
    EXPECT_TRUE(has_diagnostic(r, Severity::Error, TopoCheck::Spec, 1))
        << "bw=" << bw << "\n" << r.to_string();
  }
}

TEST(TopoCheck, BadLatencyAndMemBandwidthAreSpecErrors) {
  auto levels = testbox_levels();
  levels[0].link_latency = -1e-9;
  levels[2].mem_bandwidth = kNaN;
  const TopoReport r = analyze_spec("mutant", levels, {}, 1e9);
  EXPECT_TRUE(has_diagnostic(r, Severity::Error, TopoCheck::Spec, 0))
      << r.to_string();
  EXPECT_TRUE(has_diagnostic(r, Severity::Error, TopoCheck::Spec, 2))
      << r.to_string();
}

TEST(TopoCheck, BadCostsAndFlopsAreGlobalSpecErrors) {
  topo::MessagingCosts costs;
  costs.send_overhead = -1;
  costs.base_latency = kNaN;
  costs.eager_threshold = -5;
  TopoReport r = analyze_spec("mutant", testbox_levels(), costs, 1e9);
  EXPECT_GE(r.count(Severity::Error), 3u) << r.to_string();
  EXPECT_TRUE(has_diagnostic(r, Severity::Error, TopoCheck::Spec, -1));

  r = analyze_spec("mutant", testbox_levels(), {}, 0.0);
  EXPECT_TRUE(has_diagnostic(r, Severity::Error, TopoCheck::Spec, -1))
      << r.to_string();
}

TEST(TopoCheck, InvertedTaperIsWarning) {
  // testbox: node 1 GB/s, socket 2 GB/s, core 4 GB/s — aggregate grows
  // inward. Crushing the core bandwidth inverts the taper at level 2.
  auto levels = testbox_levels();
  levels[2].link_bandwidth = 1e8;
  const TopoReport r = analyze_spec("mutant", levels, {}, 1e9);
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_TRUE(has_diagnostic(r, Severity::Warning, TopoCheck::Taper, 2))
      << r.to_string();
}

TEST(TopoCheck, PresetShapeViolationIsFlagged) {
  // A machine that *claims* to be hydra but carries testbox levels.
  const topo::Machine impostor("hydra", testbox_levels());
  const TopoReport r = analyze(impostor);
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(has_diagnostic(r, Severity::Error, TopoCheck::Preset, -1))
      << r.to_string();
}

TEST(TopoCheck, PresetLevelRenameIsLocated) {
  auto levels = topo::testbox().levels();
  levels[1].name = "sokcet";
  const topo::Machine impostor("testbox", levels, topo::testbox().costs());
  const TopoReport r = analyze(impostor);
  EXPECT_TRUE(has_diagnostic(r, Severity::Error, TopoCheck::Preset, 1))
      << r.to_string();
}

TEST(TopoCheck, TestboxNonZeroCostsViolateContract) {
  // testbox's analytic-prediction contract: zero per-message costs.
  topo::MessagingCosts costs;  // defaults are non-zero
  const topo::Machine impostor("testbox", topo::testbox().levels(), costs);
  const TopoReport r = analyze(impostor);
  EXPECT_TRUE(has_diagnostic(r, Severity::Error, TopoCheck::Preset, -1))
      << r.to_string();
  // The same machine under another name is fine.
  const topo::Machine renamed("mybox", topo::testbox().levels(), costs);
  EXPECT_TRUE(analyze(renamed).clean());
}

TEST(TopoCheck, PresetCheckCanBeDisabled) {
  const topo::Machine impostor("hydra", testbox_levels());
  TopoOptions options;
  options.check_presets = false;
  EXPECT_TRUE(analyze(impostor, options).clean());
}

TEST(TopoCheck, WithNodesAndNicScaleVariantsStayClean) {
  EXPECT_TRUE(analyze(topo::hydra(2).with_nodes(16)).clean());
  EXPECT_TRUE(analyze(topo::lumi(2).with_nodes(8)).clean());
  // with_nic_scale retouches the level-0 bandwidth; the taper check must
  // still pass for the documented 2-NIC configuration.
  EXPECT_TRUE(analyze(topo::hydra(4).with_nic_scale(2.0)).clean());
}

TEST(TopoCheck, DiagnosticFormatting) {
  auto levels = testbox_levels();
  levels[1].radix = 0;
  const TopoReport r = analyze_spec("mutant", levels, {}, 1e9);
  ASSERT_FALSE(r.diagnostics.empty());
  const std::string line = r.diagnostics.front().to_string();
  EXPECT_NE(line.find("error[spec]"), std::string::npos) << line;
  EXPECT_NE(line.find("level 1"), std::string::npos) << line;
  EXPECT_NE(r.summary().find("errors"), std::string::npos);
}

TEST(TopoCheck, LatencySymmetryHoldsOnLargeMachines) {
  TopoOptions options;
  options.latency_sample_pairs = 256;
  EXPECT_TRUE(analyze(topo::lumi(16), options).clean());
}

}  // namespace
}  // namespace mr::verify
