// The communication-matrix baseline mapper (§2's TreeMatch-style tools).
#include "mixradix/baseline/comm_matrix_mapper.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mixradix/apps/splatt.hpp"
#include "mixradix/mr/decompose.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::baseline {
namespace {

CommMatrix zero_matrix(std::int64_t p) {
  return CommMatrix(static_cast<std::size_t>(p),
                    std::vector<double>(static_cast<std::size_t>(p), 0));
}

TEST(CommMatrixMapper, PlacementIsAPermutation) {
  const Hierarchy h{2, 2, 4};
  auto m = zero_matrix(16);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      if (i != j) m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = (i * 31 + j * 7) % 13;
    }
  }
  auto placement = map_by_comm_matrix(h, m);
  std::sort(placement.begin(), placement.end());
  for (std::int64_t c = 0; c < 16; ++c) {
    EXPECT_EQ(placement[static_cast<std::size_t>(c)], c);
  }
}

TEST(CommMatrixMapper, BlockDiagonalMatrixPacksGroups) {
  // Four cliques of four heavy communicators on [2,2,4]: each clique must
  // land inside one socket (pairwise hop cost 1 within a clique).
  const Hierarchy h{2, 2, 4};
  auto m = zero_matrix(16);
  for (int g = 0; g < 4; ++g) {
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        if (a != b) {
          // Scatter clique members across initial ids: member = g + 4*a.
          m[static_cast<std::size_t>(g + 4 * a)][static_cast<std::size_t>(g + 4 * b)] = 100.0;
        }
      }
    }
  }
  const auto placement = map_by_comm_matrix(h, m);
  for (int g = 0; g < 4; ++g) {
    // All four members of clique g share a socket (same core/4 quotient).
    const std::int64_t socket = placement[static_cast<std::size_t>(g)] / 4;
    for (int a = 1; a < 4; ++a) {
      EXPECT_EQ(placement[static_cast<std::size_t>(g + 4 * a)] / 4, socket)
          << "clique " << g << " member " << a;
    }
  }
}

TEST(CommMatrixMapper, BeatsWorstOrderOnItsOwnMetric) {
  // On the Splatt comm matrix, the matrix-driven mapping must achieve a
  // weighted hop cost no worse than the identity placement.
  const Hierarchy h{4, 2, 2, 8};  // 128 "cores"
  const auto spec = apps::splatt::nell1_like();
  const auto grid = apps::splatt::default_grid(128);
  const auto matrix = apps::splatt::cpd_comm_matrix(spec, grid, 16);
  const auto placement = map_by_comm_matrix(h, matrix);
  std::vector<std::int64_t> identity(128);
  for (std::int64_t i = 0; i < 128; ++i) identity[static_cast<std::size_t>(i)] = i;
  EXPECT_LE(weighted_hop_cost(h, matrix, placement),
            weighted_hop_cost(h, matrix, identity));
}

TEST(CommMatrixMapper, ValidatesShape) {
  const Hierarchy h{2, 2};
  EXPECT_THROW(map_by_comm_matrix(h, zero_matrix(3)), invalid_argument);
  auto ragged = zero_matrix(4);
  ragged[1].pop_back();
  EXPECT_THROW(map_by_comm_matrix(h, ragged), invalid_argument);
}

TEST(WeightedHopCost, CountsCrossings) {
  const Hierarchy h{2, 2, 4};
  auto m = zero_matrix(16);
  m[0][1] = 10.0;  // one directed pair
  std::vector<std::int64_t> identity(16);
  for (std::int64_t i = 0; i < 16; ++i) identity[static_cast<std::size_t>(i)] = i;
  // Ranks 0,1 on cores 0,1: same socket, hop cost 1 -> 10.
  EXPECT_DOUBLE_EQ(weighted_hop_cost(h, m, identity), 10.0);
  // Place rank 1 on the other node: hop cost 3 -> 30.
  auto far = identity;
  far[1] = 8;
  EXPECT_DOUBLE_EQ(weighted_hop_cost(h, m, far), 30.0);
}

TEST(CpdCommMatrix, SymmetricStructureAcrossLayers) {
  const auto spec = apps::splatt::nell1_like();
  const auto grid = apps::splatt::default_grid(64);
  const auto matrix = apps::splatt::cpd_comm_matrix(spec, grid, 16);
  ASSERT_EQ(matrix.size(), 64u);
  // Ranks only talk to layer partners: rank 0's mode-0 partners are
  // strided by p2*p3 = 16.
  EXPECT_GT(matrix[0][16], 0);
  EXPECT_EQ(matrix[0][17], 0);  // different layer in every mode
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(matrix[i][i], 0);
}

}  // namespace
}  // namespace mr::baseline
