// The World/Communicator facade.
#include "mixradix/simmpi/world.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simmpi {
namespace {

TEST(World, CommWorldIsIdentity) {
  const World world(topo::testbox());
  EXPECT_EQ(world.size(), 16);
  const Communicator comm = world.comm_world();
  for (std::int32_t r = 0; r < comm.size(); ++r) {
    EXPECT_EQ(comm.core_of(r), r);
  }
}

TEST(World, ReorderedMatchesPlacement) {
  const World world(topo::testbox());
  const Order order = parse_order("0-2-1");
  const Communicator comm = world.reordered(order);
  const auto placement =
      placement_of_new_ranks(world.machine().hierarchy(), order);
  for (std::int32_t r = 0; r < comm.size(); ++r) {
    EXPECT_EQ(comm.core_of(r), placement[static_cast<std::size_t>(r)]);
  }
}

TEST(Communicator, SplitBlocksMatchesFig2Coloring) {
  const World world(topo::testbox());
  // Order [2,1,0] is the identity: blocks of 4 are the Fig. 2f comms.
  const auto comms = world.reordered(parse_order("2-1-0")).split_blocks(4);
  ASSERT_EQ(comms.size(), 4u);
  for (std::size_t c = 0; c < comms.size(); ++c) {
    for (std::int32_t r = 0; r < 4; ++r) {
      EXPECT_EQ(comms[c].core_of(r), static_cast<std::int64_t>(c) * 4 + r);
    }
  }
}

TEST(Communicator, SplitHonorsColorsAndKeys) {
  const World world(topo::testbox());
  const Communicator comm = world.comm_world();
  std::vector<std::int64_t> colors(16), keys(16);
  for (std::int32_t r = 0; r < 16; ++r) {
    colors[static_cast<std::size_t>(r)] = r % 2;
    keys[static_cast<std::size_t>(r)] = -r;  // reverse order within color
  }
  const auto parts = comm.split(colors, keys);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].size(), 8);
  // Color 0 = even cores, reversed by key.
  EXPECT_EQ(parts[0].core_of(0), 14);
  EXPECT_EQ(parts[0].core_of(7), 0);
  EXPECT_EQ(parts[1].core_of(0), 15);
}

TEST(Communicator, SplitValidatesSizes) {
  const World world(topo::testbox());
  const Communicator comm = world.comm_world();
  EXPECT_THROW(comm.split({0, 1}, {0, 1}), invalid_argument);
  EXPECT_THROW(comm.split_blocks(3), invalid_argument);
}

TEST(Communicator, TimeCollectiveIsPositiveAndScales) {
  const World world(topo::testbox());
  const auto comms = world.comm_world().split_blocks(4);
  const double small =
      comms[0].time_collective(Collective::Allreduce, 1024);
  const double big =
      comms[0].time_collective(Collective::Allreduce, 1024 * 256);
  EXPECT_GT(small, 0);
  EXPECT_GT(big, small);
}

TEST(Communicator, ConcurrentIsSlowerOrEqual) {
  const World world(topo::testbox());
  // Spread communicators (one rank per socket): concurrency must cost.
  const auto comms = world.reordered(parse_order("0-1-2")).split_blocks(4);
  const double alone = comms[0].time_collective(Collective::Alltoall, 1 << 14);
  const double together =
      Communicator::time_concurrent(comms, Collective::Alltoall, 1 << 14);
  EXPECT_GE(together, alone * (1 - 1e-9));
}

TEST(Communicator, DisjointCoresAcrossSplit) {
  const World world(topo::testbox());
  const auto comms = world.reordered(parse_order("1-2-0")).split_blocks(4);
  std::set<std::int64_t> all;
  for (const auto& comm : comms) {
    for (std::int64_t core : comm.cores()) {
      EXPECT_TRUE(all.insert(core).second) << "core " << core << " duplicated";
    }
  }
  EXPECT_EQ(all.size(), 16u);
}


TEST(Communicator, SplitByLevelGroupsByComponent) {
  const World world(topo::testbox());
  // Socket level (1): four communicators of four cores each.
  const auto sockets = world.comm_world().split_by_level(1);
  ASSERT_EQ(sockets.size(), 4u);
  for (std::size_t s = 0; s < sockets.size(); ++s) {
    ASSERT_EQ(sockets[s].size(), 4);
    for (std::int32_t r = 0; r < 4; ++r) {
      EXPECT_EQ(sockets[s].core_of(r), static_cast<std::int64_t>(s) * 4 + r);
    }
  }
  // Node level (0): two communicators of eight.
  EXPECT_EQ(world.comm_world().split_by_level(0).size(), 2u);
  EXPECT_THROW(world.comm_world().split_by_level(3), invalid_argument);
}

TEST(Communicator, SplitByLevelAfterReordering) {
  // After a cyclic reordering, a block of consecutive new ranks spans both
  // nodes; split_by_level(0) recovers the per-node halves — the MPI-4
  // guided-mode pattern the paper cites for hierarchy discovery.
  const World world(topo::testbox());
  const auto comms = world.reordered(parse_order("0-1-2")).split_blocks(8);
  const auto per_node = comms[0].split_by_level(0);
  ASSERT_EQ(per_node.size(), 2u);
  EXPECT_EQ(per_node[0].size(), 4);
  EXPECT_EQ(per_node[1].size(), 4);
}

}  // namespace
}  // namespace mr::simmpi
