#include "mixradix/simnet/flow_sim.hpp"

#include <gtest/gtest.h>

#include "mixradix/simnet/path.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"

#include <set>

namespace mr::simnet {
namespace {

TEST(FlowSim, SingleFlowDrainsAtCapacity) {
  FlowSim sim({100.0});  // 100 B/s
  sim.add_flow({0}, 500.0, 7);
  const auto done = sim.advance_and_pop();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].time, 5.0);
  EXPECT_EQ(done[0].user, 7);
  EXPECT_EQ(sim.active_flows(), 0u);
}

TEST(FlowSim, TwoFlowsShareAChannelFairly) {
  FlowSim sim({100.0});
  const auto f1 = sim.add_flow({0}, 500.0, 1);
  const auto f2 = sim.add_flow({0}, 500.0, 2);
  EXPECT_DOUBLE_EQ(sim.flow_rate(f1), 50.0);
  EXPECT_DOUBLE_EQ(sim.flow_rate(f2), 50.0);
  const auto done = sim.advance_and_pop();
  // Both complete simultaneously and batch into one event.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0].time, 10.0);
}

TEST(FlowSim, RatesRecomputeWhenAFlowFinishes) {
  FlowSim sim({100.0});
  sim.add_flow({0}, 100.0, 1);  // finishes first
  sim.add_flow({0}, 300.0, 2);
  auto done = sim.advance_and_pop();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].user, 1);
  EXPECT_DOUBLE_EQ(done[0].time, 2.0);  // 100 B at 50 B/s
  done = sim.advance_and_pop();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].user, 2);
  // Flow 2 had 300-2*50 = 200 B left, now alone at 100 B/s: +2 s.
  EXPECT_DOUBLE_EQ(done[0].time, 4.0);
}

TEST(FlowSim, MaxMinBottleneckSharing) {
  // Channel 0: cap 100 shared by A and B; channel 1: cap 30, used by B only.
  // Max-min: B is capped at 30 by channel 1; A gets the remaining 70.
  FlowSim sim({100.0, 30.0});
  const auto a = sim.add_flow({0}, 700.0, 1);
  const auto b = sim.add_flow({0, 1}, 300.0, 2);
  EXPECT_DOUBLE_EQ(sim.flow_rate(a), 70.0);
  EXPECT_DOUBLE_EQ(sim.flow_rate(b), 30.0);
}

TEST(FlowSim, EmptyChannelListIsInfinitelyFast) {
  FlowSim sim({100.0});
  sim.add_flow({}, 1e12, 1);
  const auto done = sim.advance_and_pop();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].time, 0.0);
}

TEST(FlowSim, ZeroByteFlowCompletesInstantly) {
  FlowSim sim({100.0});
  sim.add_flow({0}, 0.0, 1);
  const auto done = sim.advance_and_pop();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].time, 0.0);
}

TEST(FlowSim, DuplicateChannelIdsCollapse) {
  FlowSim sim({100.0});
  const auto f = sim.add_flow({0, 0, 0}, 100.0, 1);
  EXPECT_DOUBLE_EQ(sim.flow_rate(f), 100.0);
}

TEST(FlowSim, ValidatesInputs) {
  EXPECT_THROW(FlowSim({0.0}), invalid_argument);
  EXPECT_THROW(FlowSim({-1.0}), invalid_argument);
  FlowSim sim({10.0});
  EXPECT_THROW(sim.add_flow({1}, 10.0, 0), invalid_argument);
  EXPECT_THROW(sim.add_flow({0}, -5.0, 0), invalid_argument);
  EXPECT_THROW(sim.advance_to(-1.0), invalid_argument);
}

TEST(FlowSim, StaggeredArrival) {
  FlowSim sim({100.0});
  sim.add_flow({0}, 400.0, 1);
  sim.advance_to(2.0);  // flow 1 has 200 B left
  sim.add_flow({0}, 200.0, 2);
  // Both now at 50 B/s with 200 B each: finish together at t = 6.
  const auto done = sim.advance_and_pop();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0].time, 6.0);
}

TEST(FlowSim, InternedChanSetOverloadMatchesVectorOverload) {
  // The RouteTable fast path hands FlowSim pre-sorted inline channel sets;
  // both entry points must produce identical flows.
  FlowSim via_vector({100.0, 30.0});
  FlowSim via_set({100.0, 30.0});
  ChanSet set;
  set.ids[0] = 0;
  set.ids[1] = 1;
  set.count = 2;
  const auto fv = via_vector.add_flow({0, 1}, 300.0, 2);
  const auto fs = via_set.add_flow(set, 300.0, 2);
  EXPECT_EQ(via_set.flow_rate(fs), via_vector.flow_rate(fv));
  const auto done_vector = via_vector.advance_and_pop();
  const auto done_set = via_set.advance_and_pop();
  ASSERT_EQ(done_set.size(), 1u);
  EXPECT_EQ(done_set[0].time, done_vector[0].time);
}

TEST(FlowSim, StealScalesVictimsToTheFairShare) {
  // Deferred-mode steal: rates are clean, the newcomer's fair share is not
  // available as headroom, so the victims on the saturated channel scale
  // down proportionally and the newcomer gets exactly its fair share.
  FlowSim sim({100.0}, 0.01);
  const auto a = sim.add_flow({0}, 1000.0, 1);
  EXPECT_DOUBLE_EQ(sim.flow_rate(a), 100.0);  // recompute: rates now clean
  const auto b = sim.add_flow({0}, 1000.0, 2);  // headroom 0 -> steal
  EXPECT_DOUBLE_EQ(sim.flow_rate(a), 50.0);
  EXPECT_DOUBLE_EQ(sim.flow_rate(b), 50.0);
  EXPECT_EQ(sim.stats().full_recomputes, 1);  // no exact pass triggered
  EXPECT_EQ(sim.stats().deferred_rejections, 0);
}

TEST(FlowSim, StealRefusesCrowdedChannelsAndFallsBackToExact) {
  // A channel with more than 64 victims makes the proportional scaling
  // pass worth less than the exact recompute: the steal must refuse and
  // count a rejection, and the next query must deliver exact fairness.
  FlowSim sim({4290.0}, 0.01);  // 4290 = 65 * 66: both shares exact
  for (int i = 0; i < 65; ++i) sim.add_flow({0}, 1e6, i);
  EXPECT_DOUBLE_EQ(sim.flow_rate(0), 66.0);  // 4290 / 65, rates now clean
  const auto late = sim.add_flow({0}, 1e6, 65);
  EXPECT_EQ(sim.stats().deferred_rejections, 1);
  EXPECT_DOUBLE_EQ(sim.flow_rate(late), 65.0);  // exact pass: 4290 / 66
  EXPECT_EQ(sim.stats().full_recomputes, 2);
}

TEST(FlowSim, FlowRateQueryableAfterCompletion) {
  FlowSim sim({100.0});
  const auto a = sim.add_flow({0}, 100.0, 1);
  const auto b = sim.add_flow({0}, 300.0, 2);
  (void)sim.advance_and_pop();  // a completes at its last rate, 50 B/s
  EXPECT_DOUBLE_EQ(sim.flow_rate(a), 50.0);
  (void)sim.advance_and_pop();  // b finishes alone at full capacity
  EXPECT_DOUBLE_EQ(sim.flow_rate(b), 100.0);
  EXPECT_EQ(sim.active_flows(), 0u);
}

TEST(FlowSim, ChannelListsCompactUnderSequentialChurn) {
  // Hundreds of short flows over one channel leave dead entries in the
  // per-channel list; the lazy compaction must keep the simulation exact
  // while the list is repeatedly purged.
  FlowSim sim({100.0}, 0.01);
  double last = 0;
  for (int i = 0; i < 200; ++i) {
    sim.add_flow({0}, 100.0, i);
    const auto done = sim.advance_and_pop();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].user, i);
    last = done[0].time;
  }
  EXPECT_DOUBLE_EQ(last, 200.0);  // 1 s per flow, no time lost to churn
  EXPECT_EQ(sim.active_flows(), 0u);
}

TEST(FlowSim, HeapRegimeMatchesReferenceScan) {
  // Above kScanFlows active flows the incremental tracker switches from
  // the reference scan to the lazy deadline heap; completions must stay
  // bit-identical between the two modes through the regime crossing
  // (100 flows down to 0).
  std::vector<double> caps(100, 100.0);
  std::vector<std::vector<Completion>> runs;
  for (const bool incremental : {true, false}) {
    FlowSim sim;
    sim.reset(caps, 0.0, incremental);
    for (int i = 0; i < 100; ++i) {
      sim.add_flow({static_cast<ChannelId>(i)}, 100.0 * (i + 1), i);
    }
    std::vector<Completion> done;
    while (sim.active_flows() > 0) {
      const auto batch = sim.advance_and_pop();
      done.insert(done.end(), batch.begin(), batch.end());
    }
    runs.push_back(std::move(done));
  }
  ASSERT_EQ(runs[0].size(), 100u);
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].user, runs[1][i].user);
    EXPECT_EQ(runs[0][i].time, runs[1][i].time);  // exact, not NEAR
    EXPECT_DOUBLE_EQ(runs[0][i].time, static_cast<double>(i + 1));
  }
}

// Topology paths: verify channel lists against the machine structure.
TEST(Path, SelfMessageHasNoChannels) {
  const auto m = topo::testbox();
  EXPECT_TRUE(flow_channels(m, 3, 3).empty());
}

namespace {
std::multiset<ChannelId> as_set(const std::vector<ChannelId>& v) {
  return {v.begin(), v.end()};
}
}  // namespace

TEST(Path, IntraSocketUsesCoreLinksAndLocalMemory) {
  const auto m = topo::testbox();  // [2, 2, 4], mem on socket + core levels
  const auto ch = as_set(flow_channels(m, 0, 1));  // same socket
  EXPECT_TRUE(ch.contains(egress_channel(m, 2, 0)));
  EXPECT_TRUE(ch.contains(ingress_channel(m, 2, 1)));
  // Shared socket memory appears (twice pre-dedup: both endpoints).
  EXPECT_EQ(ch.count(memory_channel(m, 1, 0)), 2u);
  EXPECT_TRUE(ch.contains(memory_channel(m, 2, 0)));
  EXPECT_TRUE(ch.contains(memory_channel(m, 2, 1)));
  // No socket/node link crossings.
  EXPECT_FALSE(ch.contains(egress_channel(m, 1, 0)));
  EXPECT_FALSE(ch.contains(egress_channel(m, 0, 0)));
}

TEST(Path, CrossNodeClimbsAllLevels) {
  const auto m = topo::testbox();
  const auto ch = as_set(flow_channels(m, 0, 15));  // node 0 -> node 1 last core
  EXPECT_TRUE(ch.contains(egress_channel(m, 0, 0)));    // node 0 egress
  EXPECT_TRUE(ch.contains(ingress_channel(m, 0, 1)));   // node 1 ingress
  EXPECT_TRUE(ch.contains(egress_channel(m, 1, 0)));    // socket 0 egress
  EXPECT_TRUE(ch.contains(ingress_channel(m, 1, 3)));   // socket 3 ingress
  EXPECT_TRUE(ch.contains(egress_channel(m, 2, 0)));
  EXPECT_TRUE(ch.contains(ingress_channel(m, 2, 15)));
  // Memory of both endpoints' sockets, now distinct components.
  EXPECT_TRUE(ch.contains(memory_channel(m, 1, 0)));
  EXPECT_TRUE(ch.contains(memory_channel(m, 1, 3)));
}

TEST(FlowSimStats, ScriptedScenarioCountsDeferredAndFullRecomputes) {
  // With completion slack on, the second flow arrives after the first
  // completed and freed exactly its headroom: the deferred fast path
  // grants it without an exact recompute.
  FlowSim sim({100.0}, 0.01);
  sim.add_flow({0}, 100.0, 1);  // rates dirty at construction: no defer.
  auto done = sim.advance_and_pop();  // exact recompute #1, batch #1.
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].time, 1.0);
  sim.add_flow({0}, 100.0, 2);        // deferred allocation #1.
  done = sim.advance_and_pop();       // rates still clean, batch #2.
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].time, 2.0);

  const FlowSim::Stats& stats = sim.stats();
  EXPECT_EQ(stats.deferred_allocations, 1);
  EXPECT_EQ(stats.deferred_rejections, 0);
  EXPECT_EQ(stats.full_recomputes, 1);
  EXPECT_EQ(stats.pop_batches, 2);
}

TEST(FlowSimStats, ExactModeNeverDefers) {
  // Slack 0 disables the fast path: every batch forces an exact pass.
  FlowSim sim({100.0});
  sim.add_flow({0}, 100.0, 1);
  sim.advance_and_pop();
  sim.add_flow({0}, 100.0, 2);
  sim.advance_and_pop();

  const FlowSim::Stats& stats = sim.stats();
  EXPECT_EQ(stats.deferred_allocations, 0);
  EXPECT_EQ(stats.deferred_rejections, 0);
  EXPECT_EQ(stats.full_recomputes, 2);
  EXPECT_EQ(stats.pop_batches, 2);
}

TEST(FlowSimStats, InstancesAreIndependent) {
  // Formerly file-scope globals: one instance's traffic must not leak
  // into another's counters (a prerequisite for concurrent simulations).
  FlowSim busy({100.0}, 0.01);
  FlowSim idle({100.0}, 0.01);
  busy.add_flow({0}, 100.0, 1);
  busy.advance_and_pop();
  EXPECT_EQ(busy.stats().full_recomputes, 1);
  EXPECT_EQ(busy.stats().pop_batches, 1);
  EXPECT_EQ(idle.stats().full_recomputes, 0);
  EXPECT_EQ(idle.stats().pop_batches, 0);
  EXPECT_EQ(idle.stats().deferred_allocations, 0);
}

TEST(Path, MemoryChannelRequiresAModeledLevel) {
  const auto m = topo::testbox();  // node level has mem_bandwidth 0
  EXPECT_THROW(memory_channel(m, 0, 0), invalid_argument);
}

TEST(Path, CapacitiesMatchLevelBandwidths) {
  const auto m = topo::testbox();
  const auto caps = channel_capacities(m);
  ASSERT_EQ(caps.size(), static_cast<std::size_t>(3 * m.total_components()));
  EXPECT_DOUBLE_EQ(caps[static_cast<std::size_t>(egress_channel(m, 0, 0))], 1.0e9);
  EXPECT_DOUBLE_EQ(caps[static_cast<std::size_t>(ingress_channel(m, 1, 2))], 2.0e9);
  EXPECT_DOUBLE_EQ(caps[static_cast<std::size_t>(egress_channel(m, 2, 9))], 4.0e9);
  EXPECT_DOUBLE_EQ(caps[static_cast<std::size_t>(memory_channel(m, 1, 1))], 8.0e9);
  EXPECT_DOUBLE_EQ(caps[static_cast<std::size_t>(memory_channel(m, 2, 5))], 4.0e9);
}

}  // namespace
}  // namespace mr::simnet
