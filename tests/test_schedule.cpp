// Schedule representation: builder invariants and structural validation.
#include "mixradix/simmpi/schedule.hpp"

#include <gtest/gtest.h>

#include "mixradix/simmpi/data_executor.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simmpi {
namespace {

TEST(ScheduleBuilder, BuildsAValidExchange) {
  ScheduleBuilder b(2, 8);
  b.exchange(0, 0, Region{0, 4}, 1, Region{4, 4});
  b.exchange(0, 1, Region{0, 4}, 0, Region{4, 4});
  const Schedule s = std::move(b).build();
  EXPECT_EQ(s.nranks, 2);
  EXPECT_EQ(s.messages.size(), 2u);
  EXPECT_EQ(s.total_bytes(), 2 * 4 * 8);
  EXPECT_TRUE(s.validate().empty());
}

TEST(ScheduleBuilder, RejectsSelfMessages) {
  ScheduleBuilder b(2, 8);
  EXPECT_THROW(b.exchange(0, 0, Region{0, 4}, 0, Region{4, 4}), invalid_argument);
}

TEST(ScheduleBuilder, RejectsBadRanksAndRounds) {
  ScheduleBuilder b(2, 8);
  EXPECT_THROW(b.compute(0, 2, 1.0), invalid_argument);
  EXPECT_THROW(b.compute(-1, 0, 1.0), invalid_argument);
  EXPECT_THROW(b.compute(0, 0, -1.0), invalid_argument);
}

TEST(ScheduleBuilder, LazyRoundCreationKeepsProgramsAligned) {
  ScheduleBuilder b(3, 4);
  b.compute(5, 1, 1e-6);  // creates rounds 0..5 for rank 1 only
  const Schedule s = std::move(b).build();
  EXPECT_EQ(s.programs[1].rounds.size(), 6u);
  EXPECT_EQ(s.programs[0].rounds.size(), 0u);  // others stay empty
  EXPECT_TRUE(s.validate().empty());
}

TEST(ScheduleValidate, CatchesCorruption) {
  ScheduleBuilder b(2, 8);
  b.exchange(0, 0, Region{0, 4}, 1, Region{4, 4});
  Schedule s = std::move(b).build();

  Schedule bad = s;
  bad.messages[0].src_region.count = 100;  // out of arena
  EXPECT_FALSE(bad.validate().empty());

  bad = s;
  bad.messages[0].dst = 5;  // bad endpoint
  EXPECT_FALSE(bad.validate().empty());

  bad = s;
  bad.messages[0].dst_region.count = 2;  // src/dst mismatch
  EXPECT_FALSE(bad.validate().empty());

  bad = s;
  bad.programs[0].rounds[0].sends.push_back(SendOp{0});  // sent twice
  EXPECT_FALSE(bad.validate().empty());

  bad = s;
  bad.programs[1].rounds[0].recvs.clear();  // never received
  EXPECT_FALSE(bad.validate().empty());

  bad = s;
  bad.programs[1].rounds[0].recvs[0].msg = 7;  // dangling reference
  EXPECT_FALSE(bad.validate().empty());

  bad = s;
  bad.programs[0].rounds[0].compute_seconds = -1;
  EXPECT_FALSE(bad.validate().empty());
}

// Each structural failure branch must name the offending message/rank so a
// generator bug is locatable from the diagnostic alone.
TEST(ScheduleValidate, DiagnosticsNameTheCulprit) {
  ScheduleBuilder b(2, 8);
  b.exchange(0, 0, Region{0, 4}, 1, Region{4, 4});
  const Schedule s = std::move(b).build();
  const auto expect_mentions = [](const std::string& diagnostic,
                                  std::initializer_list<const char*> needles) {
    for (const char* needle : needles) {
      EXPECT_NE(diagnostic.find(needle), std::string::npos)
          << "\"" << diagnostic << "\" does not mention \"" << needle << "\"";
    }
  };

  Schedule bad = s;
  bad.messages[0].dst = 5;
  expect_mentions(bad.validate(), {"message 0", "bad endpoints"});

  bad = s;
  bad.messages[0].src_region = Region{6, 4};
  expect_mentions(bad.validate(), {"message 0", "region out of arena"});

  bad = s;
  bad.messages[0].dst_region.count = 2;
  expect_mentions(bad.validate(), {"message 0", "src/dst count mismatch"});

  bad = s;
  bad.programs[0].rounds[0].sends.push_back(SendOp{0});
  expect_mentions(bad.validate(), {"message 0", "rank 0", "sent 2 times"});

  bad = s;
  bad.programs[1].rounds[0].recvs.clear();
  expect_mentions(bad.validate(), {"message 0", "received 0 times"});

  bad = s;
  bad.programs[0].rounds[0].sends[0].msg = 7;
  expect_mentions(bad.validate(),
                  {"rank 0", "round 0", "unknown message 7"});

  bad = s;
  bad.programs[1].rounds[0].recvs[0].msg = 7;
  expect_mentions(bad.validate(),
                  {"rank 1", "round 0", "unknown message 7"});

  bad = s;
  bad.programs[1].rounds[0].recvs[0] = RecvOp{0};
  bad.programs[0].rounds[0].recvs.push_back(RecvOp{0});
  expect_mentions(bad.validate(), {"rank 0", "round 0", "addressed to rank 1"});

  bad = s;
  bad.programs[0].rounds[0].copies.push_back(CopyOp{Region{0, 9}, Region{0, 9}});
  expect_mentions(bad.validate(), {"rank 0", "round 0", "out of arena"});

  bad = s;
  bad.programs[0].rounds[0].copies.push_back(CopyOp{Region{0, 2}, Region{4, 3}});
  expect_mentions(bad.validate(), {"rank 0", "round 0", "mismatched src/dst"});

  bad = s;
  bad.programs[0].rounds[0].compute_seconds = -1;
  expect_mentions(bad.validate(),
                  {"negative compute time", "rank 0", "round 0"});
}

TEST(ScheduleValidate, WrongOwnerDetected) {
  ScheduleBuilder b(3, 8);
  b.exchange(0, 0, Region{0, 4}, 1, Region{4, 4});
  Schedule s = std::move(b).build();
  // Move the send op to rank 2's program: message owned by rank 0.
  s.programs[2].rounds.resize(1);
  s.programs[2].rounds[0].sends = s.programs[0].rounds[0].sends;
  s.programs[0].rounds[0].sends.clear();
  EXPECT_NE(s.validate().find("owned by rank"), std::string::npos);
}

TEST(DataExecutor, DetectsDeadlock) {
  // Rank 0 waits (round 0 recv) for a message rank 1 only sends in its
  // round 1, but rank 1's round 0 waits for rank 0's round-1 send: cycle.
  // Under MIXRADIX_VERIFY_SCHEDULES build() itself throws; otherwise the
  // executor's dynamic backstop does — either way it is invalid_argument.
  EXPECT_THROW(
      {
        ScheduleBuilder b(2, 4);
        b.message(1, 0, Region{0, 2}, 0, 1, Region{2, 2});  // 0 sends in round 1
        b.message(1, 1, Region{0, 2}, 0, 0, Region{2, 2});  // 1 sends in round 1
        const Schedule s = std::move(b).build();
        // Each rank's round 0 has only the recv; the matching sends sit in
        // round 1 behind those recvs.
        DataExecutor exec(s);
        exec.run();
      },
      invalid_argument);
}

TEST(Concat, SequencesPartsWithoutBarriers) {
  const auto part = [] {
    ScheduleBuilder b(2, 4);
    b.exchange(0, 0, Region{0, 2}, 1, Region{2, 2});
    return std::move(b).build();
  };
  const Schedule s = concat({part(), part(), part()});
  EXPECT_EQ(s.messages.size(), 3u);
  EXPECT_EQ(s.programs[0].rounds.size(), 3u);
  EXPECT_TRUE(s.validate().empty());
  DataExecutor exec(s);
  exec.arena(0)[0] = 42;
  exec.arena(0)[1] = 43;
  exec.run();
  EXPECT_DOUBLE_EQ(exec.arena(1)[2], 42);
  EXPECT_DOUBLE_EQ(exec.arena(1)[3], 43);
}

TEST(Concat, RejectsMismatchedRankCounts) {
  ScheduleBuilder a(2, 4), b(3, 4);
  a.exchange(0, 0, Region{0, 2}, 1, Region{2, 2});
  b.exchange(0, 0, Region{0, 2}, 1, Region{2, 2});
  EXPECT_THROW(concat({std::move(a).build(), std::move(b).build()}),
               invalid_argument);
}

TEST(Repeat, RejectsNonPositiveCounts) {
  ScheduleBuilder b(2, 4);
  b.exchange(0, 0, Region{0, 2}, 1, Region{2, 2});
  const Schedule s = std::move(b).build();
  EXPECT_THROW(repeat(s, 0), invalid_argument);
  EXPECT_THROW(repeat(s, -1), invalid_argument);
}

}  // namespace
}  // namespace mr::simmpi
