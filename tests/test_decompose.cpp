#include "mixradix/mr/decompose.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "mixradix/mr/permutation.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/prng.hpp"

namespace mr {
namespace {

// §3.1, Fig. 1: rank 10 on [2,2,4] is node 1, socket 0, core 2.
TEST(Decompose, PaperRank10Example) {
  const Hierarchy h{2, 2, 4};
  EXPECT_EQ(decompose(h, 10), (Coords{1, 0, 2}));
}

// Knuth's time example (§3.1): 3 weeks, 2 days, 9 hours, 22 minutes,
// 32 seconds = 2 020 952 seconds; coordinates listed innermost-first in
// the paper ([32, 22, 9, 2, 3]) are our coords reversed.
TEST(Decompose, KnuthTimeExample) {
  // Outermost level = weeks-within-some-bound; weeks radix only needs to
  // exceed 3, pick 52.
  const Hierarchy time{52, 7, 24, 60, 60};
  const Coords c = decompose(time, 2020952);
  EXPECT_EQ(c, (Coords{3, 2, 9, 22, 32}));
  EXPECT_EQ(compose(time, c), 2020952);
}

// §3.1's image-indexing example: pixel (x=12, y=20), colour 2, width w,
// 3 colour channels, enumerated by line, pixel, colour value:
// index = 2 + 12*3 + 20*w*3.
TEST(Decompose, ImageIndexingExample) {
  const int w = 640;
  const Hierarchy image{480, w, 3};  // rows, pixels per row, channels
  const Coords c{20, 12, 2};
  EXPECT_EQ(compose(image, c), 2 + 12 * 3 + 20 * w * 3);
}

TEST(Decompose, AllRanksRoundTrip) {
  const Hierarchy h{2, 2, 4};
  for (std::int64_t r = 0; r < h.total(); ++r) {
    EXPECT_EQ(compose(h, decompose(h, r)), r) << "rank " << r;
  }
}

TEST(Decompose, RejectsOutOfRangeRank) {
  const Hierarchy h{2, 2, 4};
  EXPECT_THROW(decompose(h, -1), invalid_argument);
  EXPECT_THROW(decompose(h, 16), invalid_argument);
}

TEST(Compose, RejectsBadCoordinates) {
  const Hierarchy h{2, 2, 4};
  EXPECT_THROW(compose(h, Coords{0, 0}), invalid_argument);        // too short
  EXPECT_THROW(compose(h, Coords{0, 2, 0}), invalid_argument);     // coord >= radix
  EXPECT_THROW(compose(h, Coords{0, -1, 0}), invalid_argument);    // negative
  EXPECT_THROW(compose(h, Coords{0, 0, 0}, {0, 0, 1}), invalid_argument);
}

// Table 1 of the paper: new rank of rank 10 on [2,2,4] under all 6 orders.
struct Table1Row {
  const char* order;
  std::int64_t new_rank;
};

class Table1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1, NewRankMatchesPaper) {
  const Hierarchy h{2, 2, 4};
  const Order order = parse_order(GetParam().order);
  EXPECT_EQ(reorder_rank(h, 10, order), GetParam().new_rank);
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table1,
    ::testing::Values(Table1Row{"0-1-2", 9}, Table1Row{"0-2-1", 5},
                      Table1Row{"1-0-2", 10}, Table1Row{"1-2-0", 12},
                      Table1Row{"2-0-1", 6}, Table1Row{"2-1-0", 10}),
    [](const auto& info) {
      std::string name = info.param.order;
      std::replace(name.begin(), name.end(), '-', '_');
      return "order_" + name;
    });

// "The inverse of Algorithm 1 is Algorithm 2 applied with the order
// [2, 1, 0]" (§3.1) — i.e. the reversed identity keeps every rank in place.
TEST(Compose, ReversedOrderIsIdentityReordering) {
  const Hierarchy h{2, 2, 4};
  const Order reversed = inverse_of_decompose_order(h.depth());
  EXPECT_EQ(reversed, (Order{2, 1, 0}));
  for (std::int64_t r = 0; r < h.total(); ++r) {
    EXPECT_EQ(reorder_rank(h, r, reversed), r);
  }
}

TEST(Reorder, AllRanksFormAPermutation) {
  const Hierarchy h{3, 2, 5};
  for (const Order& order : all_orders_lexicographic(h.depth())) {
    auto map = reorder_all_ranks(h, order);
    std::sort(map.begin(), map.end());
    for (std::int64_t r = 0; r < h.total(); ++r) {
      ASSERT_EQ(map[static_cast<std::size_t>(r)], r)
          << "order " << order_to_string(order);
    }
  }
}

TEST(Reorder, PlacementInvertsReordering) {
  const Hierarchy h{2, 3, 4};
  for (const Order& order : all_orders_lexicographic(h.depth())) {
    const auto forward = reorder_all_ranks(h, order);
    const auto placement = placement_of_new_ranks(h, order);
    for (std::int64_t r = 0; r < h.total(); ++r) {
      EXPECT_EQ(placement[static_cast<std::size_t>(
                    forward[static_cast<std::size_t>(r)])],
                r);
    }
  }
}

// Property sweep: random hierarchies, random orders, round trips hold.
class DecomposeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecomposeProperty, RandomHierarchyRoundTrips) {
  util::Xoshiro256 rng(GetParam());
  const int depth = 1 + static_cast<int>(rng.next_below(5));
  std::vector<int> radices;
  for (int i = 0; i < depth; ++i) {
    radices.push_back(2 + static_cast<int>(rng.next_below(6)));
  }
  const Hierarchy h(radices);

  // Random order.
  Order order = identity_order(depth);
  for (int i = depth - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng.next_below(static_cast<std::uint64_t>(i) + 1)]);
  }

  // decompose/compose round trip on every rank.
  for (std::int64_t r = 0; r < h.total(); ++r) {
    ASSERT_EQ(compose(h, decompose(h, r)), r);
  }

  // A reordering followed by the reordering of the inverse-composed order
  // must be the identity: new = compose(c, order) enumerates the permuted
  // hierarchy, so reordering under `order` is a bijection.
  auto map = reorder_all_ranks(h, order);
  std::vector<bool> seen(map.size(), false);
  for (auto v : map) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, h.total());
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }

  // Coordinates read back through the permuted hierarchy agree. Table 1's
  // "permuted hierarchy" column lists radices in enumeration order (σ(0)
  // first, the fastest-varying digit); a Hierarchy is outermost-first, so
  // the permuted base viewed as a Hierarchy is that column reversed.
  const auto permuted = h.permuted(order).radices();
  const Hierarchy hp(std::vector<int>(permuted.rbegin(), permuted.rend()));
  for (std::int64_t r = 0; r < h.total(); ++r) {
    const Coords c = decompose(h, r);
    const std::int64_t nr = compose(h, c, order);
    const Coords cp = decompose(hp, nr);
    // decompose peels innermost-first and compose() makes order[0] the
    // fastest-varying digit, so cp reversed matches c permuted by order.
    for (int i = 0; i < depth; ++i) {
      ASSERT_EQ(cp[static_cast<std::size_t>(depth - 1 - i)],
                c[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposeProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace mr
