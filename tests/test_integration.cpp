// Cross-module integration tests: the paper's pipelines end to end, plus
// monotonicity properties of the timed simulation.
#include <gtest/gtest.h>

#include "mixradix/harness/microbench.hpp"
#include "mixradix/mr/core_select.hpp"
#include "mixradix/mr/equivalence.hpp"
#include "mixradix/mr/reorder.hpp"
#include "mixradix/simmpi/world.hpp"
#include "mixradix/slurm/distribution.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"

namespace mr {
namespace {

// Pipeline 1 (§3.2 + §4.1): reorder -> split -> measure. Orders that are
// SameSetsAndInternal-equivalent must produce byte-identical simulated
// performance — the justification for deduplicating before benchmarking.
TEST(Integration, EquivalentOrdersTimeIdentically) {
  const auto machine = topo::hydra(4);  // 128 procs
  const auto classes =
      classify_orders(machine.hierarchy(), 16, Equivalence::SameSetsAndInternal);
  int checked = 0;
  for (const auto& cls : classes) {
    if (cls.members.size() < 2) continue;
    harness::MicrobenchConfig config;
    config.comm_size = 16;
    config.collective = simmpi::Collective::Allgather;
    config.total_bytes = 1 << 18;
    config.all_comms = true;
    config.repetitions = 1;
    config.order = cls.members[0];
    const double t0 = run_microbench(machine, config).mean_seconds_per_op;
    config.order = cls.members[1];
    const double t1 = run_microbench(machine, config).mean_seconds_per_op;
    // Identical up to the simulator's fast-path tolerance: the deferred /
    // steal rate allocation (see FlowSim) trades < ~2% determinism under
    // event-order ties for an order of magnitude of simulation speed.
    EXPECT_NEAR(t0, t1, t0 * 0.02) << order_to_string(cls.members[0]) << " vs "
                                   << order_to_string(cls.members[1]);
    if (++checked == 3) break;
  }
  EXPECT_GE(checked, 1);
}

// Pipeline 2: orders differing ONLY in intra-communicator rank order (same
// pair percentages, different ring cost) behave identically for Alltoall
// but can differ for ring-based Allgather — §4.1.3's observation.
TEST(Integration, RankOrderMattersForAllgatherNotAlltoall) {
  const auto machine = topo::hydra(16);
  // From Fig. 3's legend: [1,3,0,2] and [3,1,0,2] share percentages
  // (46.7, 0, 53.3, 0) but have ring costs 45 vs 17.
  const Order high_ring = parse_order("1-3-0-2");
  const Order low_ring = parse_order("3-1-0-2");

  harness::MicrobenchConfig config;
  config.comm_size = 16;
  config.total_bytes = 4 << 20;
  config.all_comms = false;
  config.repetitions = 1;

  config.collective = simmpi::Collective::Alltoall;
  config.order = high_ring;
  const double a2a_high = run_microbench(machine, config).mean_seconds_per_op;
  config.order = low_ring;
  const double a2a_low = run_microbench(machine, config).mean_seconds_per_op;
  EXPECT_NEAR(a2a_high, a2a_low, a2a_low * 0.02);

  config.collective = simmpi::Collective::Allgather;
  config.order = high_ring;
  const double ag_high = run_microbench(machine, config).mean_seconds_per_op;
  config.order = low_ring;
  const double ag_low = run_microbench(machine, config).mean_seconds_per_op;
  EXPECT_LT(ag_low, ag_high * 0.999)
      << "the sequential rank order (ring cost 17) must beat the "
         "round-robin one (ring cost 45) for the ring allgather";
}

// Pipeline 3 (§3.4): Slurm-equivalent order -> same core mapping -> same
// simulated time as the explicit distribution's task map.
TEST(Integration, SlurmDistributionAndOrderAgreeEndToEnd) {
  const auto machine = topo::testbox();
  const Hierarchy& h = machine.hierarchy();
  const auto dist = slurm::Distribution::parse("cyclic:block");
  const auto order = slurm::equivalent_order(h, dist);
  ASSERT_TRUE(order.has_value());
  const auto from_order = placement_of_new_ranks(h, *order);
  const auto from_slurm =
      slurm::task_map(slurm::MachineView::from_hierarchy(h), dist);
  EXPECT_EQ(from_order, from_slurm);
}

// Monotonicity: more bytes never finish faster; adding concurrent
// communicators never helps the first one.
TEST(Integration, TimedSimulationIsMonotone) {
  const auto machine = topo::hydra(2);
  const simmpi::World world(machine);
  const auto comms = world.reordered(parse_order("0-1-2-3")).split_blocks(8);
  double last = 0;
  for (std::int64_t count : {1 << 8, 1 << 12, 1 << 16, 1 << 20}) {
    const double t =
        comms[0].time_collective(simmpi::Collective::Alltoall, count);
    EXPECT_GT(t, last);
    last = t;
  }
  std::vector<simmpi::Communicator> two(comms.begin(), comms.begin() + 2);
  const double alone =
      comms[0].time_collective(simmpi::Collective::Alltoall, 1 << 16);
  const double with_two = simmpi::Communicator::time_concurrent(
      two, simmpi::Collective::Alltoall, 1 << 16);
  const double with_all = simmpi::Communicator::time_concurrent(
      comms, simmpi::Collective::Alltoall, 1 << 16);
  EXPECT_LE(alone, with_two * (1 + 1e-9));
  EXPECT_LE(with_two, with_all * (1 + 1e-9));
}

// Fake levels (§3.2): splitting a level must preserve the total and allow
// strictly more orders, and the coarse orders must remain reachable.
TEST(Integration, FakeLevelExpandsTheOrderSpace) {
  const Hierarchy coarse{4, 2, 16};
  const Hierarchy fine = coarse.with_split_level(2, 2);  // [4, 2, 2, 8]
  EXPECT_EQ(fine.total(), coarse.total());
  EXPECT_GT(factorial(fine.depth()), factorial(coarse.depth()));
  // Every coarse placement is realised by some fine order: check one —
  // coarse [2,1,0] (identity) == fine [3,2,1,0] (identity).
  EXPECT_EQ(reorder_all_ranks(coarse, {2, 1, 0}),
            reorder_all_ranks(fine, {3, 2, 1, 0}));
  // And a genuinely new mapping exists: the fake level enumerated first.
  const auto novel = reorder_all_ranks(fine, {2, 3, 1, 0});
  bool found = false;
  for_each_order(3, [&](const Order& o) {
    if (reorder_all_ranks(coarse, o) == novel) found = true;
    return !found;
  });
  EXPECT_FALSE(found) << "the fake level should unlock unreachable mappings";
}

// Network levels (§3.2): the full hierarchy's constraint — total must
// equal procs — and metrics stay consistent on 6-level hierarchies.
TEST(Integration, NetworkLevelsWork) {
  const Hierarchy full = Hierarchy{2, 2, 8}.with_prefix_levels({2, 3});
  EXPECT_EQ(full.depth(), 5);
  EXPECT_EQ(full.total(), 192);
  const auto ch = characterize_order(full, identity_order(5), 6);
  EXPECT_EQ(ch.pair_pct.size(), 5u);
  EXPECT_GE(ch.ring_cost, 5);
}

// Core selection then reordering (§3.4's two-step process): selecting a
// rectangular set yields a sub-hierarchy usable for a second reordering.
TEST(Integration, SelectThenReorder) {
  const Hierarchy node{2, 4, 2, 8};  // LUMI node
  const auto cores = select_cores(node, parse_order("1-2-0-3"), 16);
  const auto set = sorted_core_set(cores);
  const auto sub = selected_hierarchy(node, set);
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->total(), 16);
  // The sub-hierarchy admits its own full set of reorderings.
  for (const Order& order : all_orders_lexicographic(sub->depth())) {
    auto map = reorder_all_ranks(*sub, order);
    std::sort(map.begin(), map.end());
    for (std::int64_t r = 0; r < sub->total(); ++r) {
      ASSERT_EQ(map[static_cast<std::size_t>(r)], r);
    }
  }
}

}  // namespace
}  // namespace mr
