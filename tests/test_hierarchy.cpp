#include "mixradix/mr/hierarchy.hpp"

#include <gtest/gtest.h>

#include "mixradix/util/expect.hpp"

namespace mr {
namespace {

TEST(Hierarchy, BasicProperties) {
  const Hierarchy h{2, 2, 4};
  EXPECT_EQ(h.depth(), 3);
  EXPECT_EQ(h.total(), 16);
  EXPECT_EQ(h[0], 2);
  EXPECT_EQ(h[1], 2);
  EXPECT_EQ(h[2], 4);
  EXPECT_EQ(h.to_string(), "[2, 2, 4]");
}

TEST(Hierarchy, LeavesBelow) {
  const Hierarchy h{2, 2, 4};
  EXPECT_EQ(h.leaves_below(0), 16);  // whole machine
  EXPECT_EQ(h.leaves_below(1), 8);   // cores per node
  EXPECT_EQ(h.leaves_below(2), 4);   // cores per socket
  EXPECT_EQ(h.leaves_below(3), 1);   // a core
}

TEST(Hierarchy, ComponentsAt) {
  const Hierarchy h{2, 2, 4};
  EXPECT_EQ(h.components_at(0), 2);   // nodes
  EXPECT_EQ(h.components_at(1), 4);   // sockets
  EXPECT_EQ(h.components_at(2), 16);  // cores
}

TEST(Hierarchy, ParseAcceptsSeveralSyntaxes) {
  const Hierarchy expected{2, 2, 4};
  EXPECT_EQ(Hierarchy::parse("2,2,4"), expected);
  EXPECT_EQ(Hierarchy::parse("2:2:4"), expected);
  EXPECT_EQ(Hierarchy::parse("2x2x4"), expected);
  EXPECT_EQ(Hierarchy::parse("[2, 2, 4]"), expected);
  EXPECT_EQ(Hierarchy::parse("  [2,2,4]  "), expected);
}

TEST(Hierarchy, ParseRejectsJunk) {
  EXPECT_THROW(Hierarchy::parse(""), invalid_argument);
  EXPECT_THROW(Hierarchy::parse("[2,2,4"), invalid_argument);
  EXPECT_THROW(Hierarchy::parse("2,x,4"), invalid_argument);
  EXPECT_THROW(Hierarchy::parse("2,1,4"), invalid_argument);  // radix 1
  EXPECT_THROW(Hierarchy::parse("2,-3,4"), invalid_argument);
}

TEST(Hierarchy, RadixOneIsRejected) {
  // Strictly-greater-than-1 bases are required for unique decomposition.
  EXPECT_THROW(Hierarchy({2, 1, 4}), invalid_argument);
  EXPECT_THROW(Hierarchy({0}), invalid_argument);
  EXPECT_THROW(Hierarchy(std::vector<int>{}), invalid_argument);
}

TEST(Hierarchy, PermutedReordersRadices) {
  const Hierarchy h{2, 3, 5};
  EXPECT_EQ(h.permuted({2, 1, 0}), Hierarchy({5, 3, 2}));
  EXPECT_EQ(h.permuted({1, 2, 0}), Hierarchy({3, 5, 2}));
  EXPECT_EQ(h.permuted({0, 1, 2}), h);
}

TEST(Hierarchy, PermutedValidatesOrder) {
  const Hierarchy h{2, 3, 5};
  EXPECT_THROW(h.permuted({0, 0, 1}), invalid_argument);
  EXPECT_THROW(h.permuted({0, 1}), invalid_argument);
  EXPECT_THROW(h.permuted({0, 1, 3}), invalid_argument);
}

// Table 1's "Permuted hierarchy" column for [2, 2, 4].
TEST(Hierarchy, Table1PermutedHierarchyColumn) {
  const Hierarchy h{2, 2, 4};
  EXPECT_EQ(h.permuted({0, 1, 2}), Hierarchy({2, 2, 4}));
  EXPECT_EQ(h.permuted({0, 2, 1}), Hierarchy({2, 4, 2}));
  EXPECT_EQ(h.permuted({1, 0, 2}), Hierarchy({2, 2, 4}));
  EXPECT_EQ(h.permuted({1, 2, 0}), Hierarchy({2, 4, 2}));
  EXPECT_EQ(h.permuted({2, 0, 1}), Hierarchy({4, 2, 2}));
  EXPECT_EQ(h.permuted({2, 1, 0}), Hierarchy({4, 2, 2}));
}

TEST(Hierarchy, SplitLevelMakesFakeLevels) {
  // The paper's Hydra description fakes each 16-core socket as 2 x 8.
  const Hierarchy socket16{16, 2, 16};
  const Hierarchy split = socket16.with_split_level(2, 2);
  EXPECT_EQ(split, Hierarchy({16, 2, 2, 8}));
  EXPECT_EQ(split.total(), socket16.total());
}

TEST(Hierarchy, SplitLevelValidatesDivisor) {
  const Hierarchy h{2, 2, 16};
  EXPECT_THROW(h.with_split_level(2, 3), invalid_argument);   // 3 does not divide 16
  EXPECT_THROW(h.with_split_level(2, 1), invalid_argument);   // trivial outer
  EXPECT_THROW(h.with_split_level(2, 16), invalid_argument);  // trivial inner
  EXPECT_THROW(h.with_split_level(3, 2), invalid_argument);   // bad level
}

TEST(Hierarchy, PrefixLevelsModelTheNetwork) {
  // §3.2's example: [2, 3, 16 | 2, 2, 8] — network switches outside nodes.
  const Hierarchy node{2, 2, 8};
  const Hierarchy full = node.with_prefix_levels({2, 3, 16});
  EXPECT_EQ(full, Hierarchy({2, 3, 16, 2, 2, 8}));
  EXPECT_EQ(full.total(), 2 * 3 * 16 * 2 * 2 * 8);
}

TEST(Hierarchy, SuffixDropsOuterLevels) {
  const Hierarchy h{16, 2, 2, 8};
  EXPECT_EQ(h.suffix(1), Hierarchy({2, 2, 8}));
  EXPECT_EQ(h.suffix(3), Hierarchy({8}));
  EXPECT_THROW(h.suffix(4), invalid_argument);
}

TEST(Hierarchy, ValidateForNprocs) {
  const Hierarchy h{2, 2, 4};
  EXPECT_FALSE(validate_for_nprocs(h, 16).has_value());
  const auto err = validate_for_nprocs(h, 12);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("16"), std::string::npos);
  EXPECT_NE(err->find("12"), std::string::npos);
}

TEST(Hierarchy, LevelNamesDefaultAndCustom) {
  const Hierarchy anon{2, 4};
  EXPECT_EQ(anon.level_name(0), "level0");
  const Hierarchy named({2, 4}, {"node", "core"});
  EXPECT_EQ(named.level_name(0), "node");
  EXPECT_EQ(named.level_name(1), "core");
  EXPECT_THROW(Hierarchy({2, 4}, {"only-one"}), invalid_argument);
}

TEST(Hierarchy, PaperMachineDescriptions) {
  // Hydra: [nodes, 2, 2, 8]; LUMI: [nodes, 2, 4, 2, 8] (§4, machine descr.)
  const Hierarchy hydra16{16, 2, 2, 8};
  EXPECT_EQ(hydra16.total(), 512);
  const Hierarchy lumi16{16, 2, 4, 2, 8};
  EXPECT_EQ(lumi16.total(), 2048);
  const Hierarchy hydra32{32, 2, 2, 8};
  EXPECT_EQ(hydra32.total(), 1024);  // the Splatt experiment's world size
}

}  // namespace
}  // namespace mr
