// mr::tune — the multi-fidelity order-search funnel. The load-bearing
// guarantees under test:
//  * EXACTNESS — with dedup and pruning on (the defaults), the top-k
//    ranking equals the exhaustive one (every order simulated, ranked by
//    (score, order)) across collectives, machines and comm sizes;
//  * DETERMINISM — the canonical JSON report is byte-identical for every
//    thread count, and point-budget truncation cuts at the same candidate
//    regardless of threads;
//  * SOUNDNESS — a pruned candidate's true score is strictly outside the
//    top k, and every dedup class member scores exactly its
//    representative;
//  * SHARDING — shards partition the candidate classes exactly.
#include "mixradix/tune/search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "mixradix/engine/engine.hpp"
#include "mixradix/harness/microbench.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/tune/report.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::tune {
namespace {

TuneReport exhaustive(const topo::Machine& machine, TuneQuery query) {
  query.dedup = false;
  query.prune = false;
  query.budget = Budget{};
  return tune(machine, query);
}

/// The funnel's whole point: its ranking must equal brute force. The
/// funnel returns one representative per equivalence class while the
/// exhaustive ranking lists every order — tied class members occupy
/// consecutive exhaustive slots — so the exhaustive ranking is collapsed
/// through the funnel's own class partition (first appearance of a class
/// is its lexicographic representative, because members tie exactly and
/// ties break lexicographically) before comparing rank for rank.
void expect_matches_exhaustive(const topo::Machine& machine,
                               const TuneQuery& query) {
  const TuneReport funnel = tune(machine, query);
  TuneQuery all = query;
  all.k = 1 << 20;  // full exhaustive ranking, not just the top k.
  const TuneReport brute = exhaustive(machine, all);

  std::map<Order, const TuneCandidate*> class_of;
  for (const TuneCandidate& c : funnel.candidates) {
    for (const Order& member : c.members) class_of[member] = &c;
  }
  std::map<Order, double> brute_score;
  for (const TuneCandidate& c : brute.candidates) brute_score[c.order] = c.score;
  std::vector<const TuneCandidate*> expected;
  std::set<const TuneCandidate*> seen;
  for (const std::size_t idx : brute.top) {
    const TuneCandidate* cls = class_of.at(brute.candidates[idx].order);
    if (!seen.insert(cls).second) continue;
    expected.push_back(cls);
    if (expected.size() == funnel.top.size()) break;
  }

  ASSERT_EQ(funnel.top.size(), expected.size()) << machine.name();
  for (std::size_t rank = 0; rank < funnel.top.size(); ++rank) {
    const TuneCandidate& got = funnel.candidates[funnel.top[rank]];
    const TuneCandidate& want = *expected[rank];
    EXPECT_EQ(got.order, want.order)
        << machine.name() << " rank " << rank << ": funnel "
        << order_to_string(got.order) << " (score " << got.score
        << ") vs exhaustive " << order_to_string(want.order);
    // The representative's simulated score must be bit-exact between the
    // funnel and the exhaustive run.
    EXPECT_EQ(got.score, brute_score.at(got.order))
        << machine.name() << " rank " << rank;
  }
}

TEST(Tune, MatchesExhaustiveAcrossCollectivesOnTestbox) {
  const auto machine = topo::testbox();
  for (const simmpi::Collective collective :
       {simmpi::Collective::Alltoall, simmpi::Collective::Allgather,
        simmpi::Collective::Allreduce, simmpi::Collective::Bcast,
        simmpi::Collective::ReduceScatter, simmpi::Collective::Scan}) {
    for (const std::int64_t comm_size : {4, 8, 16}) {
      TuneQuery query;
      query.collectives = {collective};
      query.comm_sizes = {comm_size};
      query.total_bytes = {1 << 20};
      query.k = 3;
      query.threads = 1;
      expect_matches_exhaustive(machine, query);
    }
  }
}

TEST(Tune, MatchesExhaustiveOnHydraSerialAndThreaded) {
  const auto machine = topo::hydra(2);
  for (const std::int64_t comm_size : {8, 16, 32}) {
    for (const int threads : {1, 4}) {
      TuneQuery query;
      query.collectives = {simmpi::Collective::Alltoall};
      query.comm_sizes = {comm_size};
      query.total_bytes = {256 << 10};
      query.k = 2;
      query.threads = threads;
      expect_matches_exhaustive(machine, query);
    }
  }
}

TEST(Tune, MatchesExhaustiveOnLumiSingleComm) {
  const auto machine = topo::lumi(2);
  TuneQuery query;
  query.collectives = {simmpi::Collective::Allgather};
  query.comm_sizes = {16};
  query.total_bytes = {256 << 10};
  query.concurrency = Concurrency::SingleComm;
  query.k = 3;
  query.threads = 4;
  expect_matches_exhaustive(machine, query);
}

TEST(Tune, MatchesExhaustiveOnMultiPointQueries) {
  // Several collectives x sizes x payloads in one query: the objective sums
  // the points, and dedup must intersect across the comm sizes.
  const auto machine = topo::testbox();
  TuneQuery query;
  query.collectives = {simmpi::Collective::Alltoall,
                       simmpi::Collective::Allreduce};
  query.comm_sizes = {4, 8};
  query.total_bytes = {64 << 10, 1 << 20};
  query.k = 3;
  query.threads = 1;
  expect_matches_exhaustive(machine, query);
}

TEST(Tune, MatchesExhaustiveAtNonzeroSlack) {
  // slack > 0 switches all-comms dedup to the ExactPlacement fallback; the
  // ranking must still be exact.
  const auto machine = topo::hydra(2);
  TuneQuery query;
  query.comm_sizes = {16};
  query.total_bytes = {256 << 10};
  query.completion_slack = simmpi::kDefaultCompletionSlack;
  query.k = 2;
  query.threads = 1;
  expect_matches_exhaustive(machine, query);
}

TEST(Tune, ReportIsByteIdenticalAcrossThreadCounts) {
  const auto machine = topo::hydra(2);
  TuneQuery query;
  query.comm_sizes = {16};
  query.total_bytes = {1 << 20};
  query.k = 3;
  std::string baseline;
  for (const int threads : {1, 2, 4}) {
    query.threads = threads;
    std::ostringstream os;
    write_json(os, tune(machine, query));
    if (threads == 1) {
      baseline = os.str();
    } else {
      EXPECT_EQ(os.str(), baseline) << "threads=" << threads;
    }
  }
}

TEST(Tune, PointBudgetTruncatesDeterministically) {
  const auto machine = topo::hydra(2);
  TuneQuery query;
  query.comm_sizes = {16};
  query.total_bytes = {256 << 10};
  query.k = 2;
  query.wave_size = 4;
  // Dedup and pruning off so the candidate stream (all 24 orders) genuinely
  // outlives the budget — with them on, pruning can finish the set first
  // and the budget never trips.
  query.dedup = false;
  query.prune = false;
  query.budget.max_points = 6;  // not enough for the whole candidate set.
  std::string baseline;
  for (const int threads : {1, 4}) {
    query.threads = threads;
    const TuneReport report = tune(machine, query);
    EXPECT_FALSE(report.stats.exhausted);
    EXPECT_GT(report.stats.budget_skipped, 0);
    EXPECT_LE(report.stats.sim_points, query.budget.max_points);
    std::ostringstream os;
    write_json(os, report);
    if (threads == 1) {
      baseline = os.str();
    } else {
      EXPECT_EQ(os.str(), baseline) << "threads=" << threads;
    }
  }
}

TEST(Tune, PruningIsSound) {
  // Every pruned candidate's true (exhaustively simulated) score must be
  // strictly worse than the k-th best, and every class member must score
  // exactly its representative — the two invariants exactness rests on.
  const auto machine = topo::lumi(2);
  TuneQuery query;
  query.comm_sizes = {32};
  query.total_bytes = {1 << 20};
  query.k = 2;
  query.threads = 4;
  const TuneReport funnel = tune(machine, query);
  const TuneReport brute = exhaustive(machine, query);

  std::map<Order, double> score_of;
  for (const TuneCandidate& c : brute.candidates) score_of[c.order] = c.score;
  std::vector<double> scores;
  for (const auto& [order, score] : score_of) scores.push_back(score);
  std::sort(scores.begin(), scores.end());
  const double kth = scores[static_cast<std::size_t>(query.k) - 1];

  std::int64_t pruned = 0;
  for (const TuneCandidate& c : funnel.candidates) {
    if (c.fate == Fate::Pruned) {
      ++pruned;
      EXPECT_GT(score_of.at(c.order), kth) << order_to_string(c.order);
    }
    if (c.fate == Fate::Simulated) {
      EXPECT_EQ(c.score, score_of.at(c.order)) << order_to_string(c.order);
      EXPECT_LE(c.lower_bound, c.score + 1e-12) << order_to_string(c.order);
    }
    for (const Order& member : c.members) {
      EXPECT_EQ(score_of.at(member), score_of.at(c.order))
          << order_to_string(member) << " vs rep " << order_to_string(c.order);
    }
  }
  EXPECT_EQ(pruned, funnel.stats.pruned);
  // Funnel accounting closes: every candidate class has exactly one fate.
  EXPECT_EQ(funnel.stats.simulated + funnel.stats.pruned +
                funnel.stats.screened_out + funnel.stats.budget_skipped,
            funnel.stats.shard_classes);
}

TEST(Tune, ShardsPartitionTheCandidateClasses) {
  const auto machine = topo::hydra(2);
  TuneQuery query;
  query.comm_sizes = {16};
  query.total_bytes = {64 << 10};
  query.k = 1;
  query.threads = 1;
  const TuneReport whole = tune(machine, query);

  std::vector<Order> sharded;
  std::int64_t total_classes = 0;
  query.shard_count = 3;
  for (int shard = 0; shard < query.shard_count; ++shard) {
    query.shard_index = shard;
    const TuneReport part = tune(machine, query);
    total_classes += part.stats.shard_classes;
    for (const TuneCandidate& c : part.candidates) sharded.push_back(c.order);
  }
  EXPECT_EQ(total_classes, whole.stats.classes);

  std::vector<Order> all;
  for (const TuneCandidate& c : whole.candidates) all.push_back(c.order);
  std::sort(all.begin(), all.end());
  std::sort(sharded.begin(), sharded.end());
  EXPECT_EQ(sharded, all);

  // The global best is found by exactly one shard.
  const Order& best = whole.candidates[whole.top.front()].order;
  int holders = 0;
  query.k = 1;
  for (int shard = 0; shard < query.shard_count; ++shard) {
    query.shard_index = shard;
    const TuneReport part = tune(machine, query);
    if (!part.top.empty() &&
        part.candidates[part.top.front()].order == best) {
      ++holders;
    }
  }
  EXPECT_EQ(holders, 1);
}

TEST(Tune, ScreenKeepCapsTheCandidateStream) {
  const auto machine = topo::hydra(2);
  TuneQuery query;
  query.comm_sizes = {16};
  query.total_bytes = {64 << 10};
  query.k = 1;
  query.threads = 1;
  query.screen_keep = 4;
  const TuneReport report = tune(machine, query);
  EXPECT_EQ(report.stats.screened_out,
            report.stats.shard_classes - query.screen_keep);
  EXPECT_LE(report.stats.simulated, query.screen_keep);
  std::int64_t screened = 0;
  for (const TuneCandidate& c : report.candidates) {
    if (c.fate == Fate::Screened) ++screened;
  }
  EXPECT_EQ(screened, report.stats.screened_out);
}

TEST(Tune, ValidatesQueries) {
  const auto machine = topo::testbox();
  TuneQuery query;
  query.comm_sizes = {4};
  {
    TuneQuery bad = query;
    bad.comm_sizes = {};
    EXPECT_THROW(tune(machine, bad), invalid_argument);
  }
  {
    TuneQuery bad = query;
    bad.comm_sizes = {5};  // does not divide 16 cores.
    EXPECT_THROW(tune(machine, bad), invalid_argument);
  }
  {
    TuneQuery bad = query;
    bad.k = 0;
    EXPECT_THROW(tune(machine, bad), invalid_argument);
  }
  {
    TuneQuery bad = query;
    bad.shard_index = 2;
    bad.shard_count = 2;
    EXPECT_THROW(tune(machine, bad), invalid_argument);
  }
  {
    TuneQuery bad = query;
    bad.completion_slack = -0.1;
    EXPECT_THROW(tune(machine, bad), invalid_argument);
  }
}

TEST(Tune, CollectiveNamesRoundTrip) {
  for (const simmpi::Collective c :
       {simmpi::Collective::Alltoall, simmpi::Collective::Allgather,
        simmpi::Collective::Allreduce, simmpi::Collective::Bcast,
        simmpi::Collective::Reduce, simmpi::Collective::ReduceScatter,
        simmpi::Collective::Gather, simmpi::Collective::Scatter,
        simmpi::Collective::Scan, simmpi::Collective::Barrier}) {
    EXPECT_EQ(parse_collective(collective_name(c)), c);
  }
  EXPECT_THROW(parse_collective("alltoallw"), invalid_argument);
  EXPECT_THROW(parse_collective(""), invalid_argument);
}

TEST(Tune, BoundCacheDoesNotChangeTheReport) {
  // use_bound_cache routes stage-2 bounds through the engine's BoundCache
  // (one payload-invariant structure per binding class, evaluated per
  // payload point). The cached evaluate IS the uncached analysis bit for
  // bit, so the canonical report must not change by a byte — bounds, visit
  // order, prunes, scores, ranking.
  const auto machine = topo::hydra(2);
  TuneQuery query;
  query.comm_sizes = {16};
  query.total_bytes = {256 << 10, 512 << 10, 1 << 20};
  query.k = 2;
  query.threads = 1;

  Engine cached_engine;
  query.use_bound_cache = true;
  const TuneReport cached = tune(cached_engine, machine, query);
  Engine fresh_engine;
  query.use_bound_cache = false;
  const TuneReport fresh = tune(fresh_engine, machine, query);

  std::ostringstream cached_json, fresh_json;
  write_json(cached_json, cached, /*candidates=*/true);
  write_json(fresh_json, fresh, /*candidates=*/true);
  EXPECT_EQ(cached_json.str(), fresh_json.str());

  // Accounting: every (candidate, point) bound is either a build or a
  // reuse; with the cache off, every one is a build.
  const auto npoints = static_cast<std::int64_t>(cached.points.size());
  EXPECT_EQ(cached.stats.bound_structures_built +
                cached.stats.bound_structure_reuses,
            cached.stats.bounds_computed * npoints);
  EXPECT_GT(cached.stats.bound_structure_reuses, 0);
  EXPECT_EQ(fresh.stats.bound_structure_reuses, 0);
  EXPECT_EQ(fresh.stats.bound_structures_built,
            fresh.stats.bounds_computed * npoints);
  // The engine's cache saw the traffic; the uncached engine's did not.
  EXPECT_GT(cached_engine.stats().bound_cache.hits, 0);
  EXPECT_EQ(fresh_engine.stats().bound_cache.hits, 0);
}

TEST(Tune, IncrementalReTuneMatchesColdTopK) {
  // The canonical incremental shape: the payload grid grew. Seeding from
  // the subset-grid report must reproduce the cold full-grid top-k exactly
  // (same orders, bit-identical scores) without simulating more candidates.
  const auto machine = topo::hydra(2);
  TuneQuery full;
  full.comm_sizes = {16};
  full.total_bytes = {256 << 10, 512 << 10, 1 << 20};
  full.k = 2;
  full.threads = 1;

  Engine engine;
  const TuneReport cold = tune(engine, machine, full);

  TuneQuery subset = full;
  subset.total_bytes = {256 << 10};
  const TuneReport previous = tune(engine, machine, subset);
  const TuneReport seeded = tune(engine, machine, full, &previous);

  EXPECT_GT(seeded.stats.seeded_candidates, 0);
  EXPECT_LE(seeded.stats.simulated, cold.stats.simulated);
  ASSERT_EQ(seeded.top.size(), cold.top.size());
  for (std::size_t rank = 0; rank < cold.top.size(); ++rank) {
    const TuneCandidate& got = seeded.candidates[seeded.top[rank]];
    const TuneCandidate& want = cold.candidates[cold.top[rank]];
    EXPECT_EQ(got.order, want.order) << "rank " << rank;
    EXPECT_EQ(got.score, want.score) << "rank " << rank;
    EXPECT_EQ(got.points.size(), want.points.size());
    for (std::size_t pt = 0; pt < want.points.size(); ++pt) {
      EXPECT_EQ(got.points[pt].makespan, want.points[pt].makespan);
    }
  }
  // Seeds are provenance-visible: wave 0, counted in the canonical stats.
  std::int64_t wave0 = 0;
  for (const TuneCandidate& c : seeded.candidates) {
    if (c.fate == Fate::Simulated && c.wave == 0) ++wave0;
  }
  EXPECT_EQ(wave0, seeded.stats.seeded_candidates);
}

TEST(Tune, IncompatiblePreviousReportDegeneratesToColdRun) {
  // A previous report that fails any compatibility gate (here: a point
  // outside the new grid, and a different repetition count) must leave the
  // run byte-identical to a cold one — not silently half-seed it.
  const auto machine = topo::hydra(2);
  TuneQuery query;
  query.comm_sizes = {16};
  query.total_bytes = {256 << 10};
  query.k = 2;
  query.threads = 1;

  Engine engine;
  const auto json_of = [&](const TuneReport& r) {
    std::ostringstream os;
    write_json(os, r, /*candidates=*/true);
    return os.str();
  };
  const std::string cold = json_of(tune(engine, machine, query));

  TuneQuery superset = query;
  superset.total_bytes = {256 << 10, 1 << 20};  // NOT a subset of `query`.
  const TuneReport wider = tune(engine, machine, superset);
  EXPECT_EQ(json_of(tune(engine, machine, query, &wider)), cold);

  TuneQuery reps = query;
  reps.repetitions = query.repetitions + 1;
  const TuneReport other_reps = tune(engine, machine, reps);
  EXPECT_EQ(json_of(tune(engine, machine, query, &other_reps)), cold);
}

TEST(Tune, SweepScreeningReplacesOrdersWithTheTopK) {
  // SweepConfig::tune_top_k: the sweep runs exactly the tuner's top-k, in
  // ranked order, and its curves match sweeping those orders directly.
  const auto machine = topo::testbox();
  TuneQuery query;
  query.comm_sizes = {4};
  query.total_bytes = {64 << 10, 1 << 20};
  query.concurrency = Concurrency::AllComms;
  query.k = 2;
  query.threads = 1;
  const TuneReport report = tune(machine, query);

  harness::SweepConfig sweep;
  sweep.sizes = {64 << 10, 1 << 20};
  sweep.comm_size = 4;
  sweep.all_comms = true;
  sweep.threads = 1;
  sweep.completion_slack = 0.0;
  sweep.tune_top_k = 2;
  const auto tuned = run_sweep(machine, sweep);
  ASSERT_EQ(tuned.size(), 2u);
  for (std::size_t rank = 0; rank < tuned.size(); ++rank) {
    EXPECT_EQ(tuned[rank].character.order,
              report.candidates[report.top[rank]].order);
  }

  sweep.tune_top_k = 0;
  sweep.orders = {tuned[0].character.order, tuned[1].character.order};
  const auto direct = run_sweep(machine, sweep);
  for (std::size_t rank = 0; rank < tuned.size(); ++rank) {
    ASSERT_EQ(tuned[rank].results.size(), direct[rank].results.size());
    for (std::size_t si = 0; si < tuned[rank].results.size(); ++si) {
      EXPECT_EQ(tuned[rank].results[si].mean_bandwidth,
                direct[rank].results[si].mean_bandwidth);
    }
  }
}

}  // namespace
}  // namespace mr::tune
