// The Splatt CPD proxy (Fig. 8 substrate). Full-scale (1024-process)
// simulations live in the bench; tests run a scaled-down cluster.
#include "mixradix/apps/splatt.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mixradix/simmpi/data_executor.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::apps::splatt {
namespace {

TEST(TensorSpec, Nell1Shape) {
  const auto spec = nell1_like();
  EXPECT_EQ(spec.dims[0], 2902330);
  EXPECT_EQ(spec.dims[1], 2143368);
  EXPECT_EQ(spec.dims[2], 25495389);
  EXPECT_EQ(spec.nnz, 143599552);
}

TEST(DefaultGrid, BalancedFactorisation) {
  const Grid3 g1024 = default_grid(1024);
  EXPECT_EQ(g1024.p[0], 16);
  EXPECT_EQ(g1024.p[1], 8);
  EXPECT_EQ(g1024.p[2], 8);
  const Grid3 g64 = default_grid(64);
  EXPECT_EQ(g64.p[0], 4);
  EXPECT_EQ(g64.p[1], 4);
  EXPECT_EQ(g64.p[2], 4);
  const Grid3 g12 = default_grid(12);
  EXPECT_EQ(g12.nprocs(), 12);
  EXPECT_GE(g12.p[0], g12.p[1]);
  EXPECT_GE(g12.p[1], g12.p[2]);
}

TEST(LayerComms, CoverEveryRankOncePerMode) {
  const Grid3 grid = default_grid(64);
  for (int mode = 0; mode < 3; ++mode) {
    const auto comms = layer_comms(grid, mode);
    EXPECT_EQ(static_cast<std::int32_t>(comms.size()),
              grid.nprocs() / grid.p[mode]);
    std::set<std::int32_t> seen;
    for (const auto& comm : comms) {
      EXPECT_EQ(static_cast<std::int32_t>(comm.size()), grid.p[mode]);
      for (std::int32_t rank : comm) {
        EXPECT_TRUE(seen.insert(rank).second) << "rank " << rank;
      }
    }
    EXPECT_EQ(static_cast<std::int32_t>(seen.size()), grid.nprocs());
  }
}

TEST(LayerComms, Observed64CommsOf16At1024Ranks) {
  // The mpisee observation the proxy reproduces.
  const auto comms = layer_comms(default_grid(1024), 0);
  EXPECT_EQ(comms.size(), 64u);
  EXPECT_EQ(comms.front().size(), 16u);
}

TEST(LayerVolumes, DeterministicSkewedAndZeroDiagonal) {
  const auto spec = nell1_like();
  const Grid3 grid = default_grid(64);
  const auto a = layer_volumes(spec, grid, 0, 3, 16);
  const auto b = layer_volumes(spec, grid, 0, 3, 16);
  EXPECT_EQ(a, b);  // deterministic in (seed, mode, layer)
  const auto other_layer = layer_volumes(spec, grid, 0, 4, 16);
  EXPECT_NE(a, other_layer);  // layers are imbalanced differently
  std::int64_t lo = INT64_MAX, hi = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i][i], 0);
    for (std::size_t j = 0; j < a.size(); ++j) {
      if (i == j) continue;
      lo = std::min(lo, a[i][j]);
      hi = std::max(hi, a[i][j]);
      EXPECT_EQ(a[i][j] % 16, 0);  // whole factor rows
    }
  }
  EXPECT_GT(hi, 2 * lo) << "volumes should be visibly skewed";
}

/// A miniature tensor so data-level executions stay cheap: nell-1's
/// volumes run to gigabytes per layer, fine for the timing simulator
/// (which only counts bytes) but not for actually copying doubles.
TensorSpec tiny_tensor() {
  TensorSpec spec;
  spec.dims[0] = spec.dims[1] = spec.dims[2] = 4000;
  spec.nnz = 200000;
  spec.seed = 7;
  return spec;
}

TEST(CpdIterationSchedule, WellFormedAndDataClean) {
  const auto machine = topo::hydra(2);  // 64 cores
  CpdConfig config;
  const auto schedule =
      cpd_iteration_schedule(machine, tiny_tensor(), default_grid(64), config);
  EXPECT_TRUE(schedule.validate().empty());
  simmpi::DataExecutor exec(schedule);
  exec.run();
}

TEST(SimulateCpd, ReorderingChangesDurationNotCompute) {
  const auto machine = topo::hydra(2);
  const auto spec = tiny_tensor();
  CpdConfig config;
  config.iterations = 4;
  config.sim_iterations = 1;
  const auto packed = simulate_cpd(machine, spec, parse_order("3-2-1-0"), config);
  const auto spread = simulate_cpd(machine, spec, parse_order("0-1-2-3"), config);
  EXPECT_DOUBLE_EQ(packed.compute_seconds, spread.compute_seconds);
  EXPECT_NE(packed.seconds, spread.seconds);
  EXPECT_GT(packed.alltoallv_seconds, 0);
  EXPECT_GE(packed.seconds, packed.compute_seconds);
}

TEST(Pearson, KnownValues) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {1, -1, 1, -1}), -0.4472135955, 1e-6);
  EXPECT_THROW(pearson({1}, {1}), invalid_argument);
  EXPECT_THROW(pearson({1, 1}, {1, 2}), invalid_argument);  // constant x
}

}  // namespace
}  // namespace mr::apps::splatt
