// Utility layer: strings, CSV, PRNG determinism.
#include <gtest/gtest.h>

#include <sstream>

#include "mixradix/util/csv.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/prng.hpp"
#include "mixradix/util/strings.hpp"

namespace mr::util {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, JoinInvertsSplit) {
  const std::string text = "x:y:z";
  EXPECT_EQ(join(split(text, ':'), ":"), text);
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join_ints({3, 1, 2}, "-"), "3-1-2");
  EXPECT_EQ(join_ints({}, "-"), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\n x"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" 42 "), 42);
  EXPECT_EQ(parse_int("-3"), -3);
  EXPECT_THROW(parse_int("4x"), invalid_argument);
  EXPECT_THROW(parse_int(""), invalid_argument);
  EXPECT_THROW(parse_int("4 2"), invalid_argument);
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(16 << 10), "16 KB");
  EXPECT_EQ(format_bytes(512ll << 20), "512 MB");
  EXPECT_EQ(format_bytes((1ll << 30) + (1ll << 29)), "1.5 GB");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(46.666, 1), "46.7");
  EXPECT_EQ(format_fixed(0.0, 1), "0.0");
  EXPECT_EQ(format_fixed(100.0, 1), "100.0");
  EXPECT_EQ(format_fixed(3.14159, 3), "3.142");
}

TEST(Csv, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterEnforcesArity) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.row({"1", "2"});
  csv.row_of("x,y", 3);
  EXPECT_THROW(csv.row({"only-one"}), invalid_argument);
  EXPECT_EQ(os.str(), "a,b\n1,2\n\"x,y\",3\n");
}

TEST(Prng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  Xoshiro256 c(124);
  EXPECT_NE(a.next(), c.next());
}

TEST(Prng, NextBelowIsInRangeAndCoversIt) {
  Xoshiro256 rng(7);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++histogram[static_cast<std::size_t>(v)];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 800);  // roughly uniform
    EXPECT_LT(count, 1200);
  }
}

TEST(Prng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

}  // namespace
}  // namespace mr::util
