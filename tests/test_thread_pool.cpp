// The work-stealing pool behind the parallel sweep engine.
#include "mixradix/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mr::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  // One worker, one deque, drained front-to-back: strict FIFO.
  ThreadPool pool(1);
  std::vector<int> ran;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&ran, i] { ran.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(ran, expected);
}

TEST(ThreadPool, SubmitCapturesExceptionsIntoTheFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives the throwing task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroAndOneIndex) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForPropagatesTheBodyException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(1000, [&ran](std::size_t i) {
      if (i == 37) throw std::runtime_error("index 37 boom");
      ++ran;
    });
    FAIL() << "expected the body's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 37 boom");
  }
  // The throw cancels the remaining indices.
  EXPECT_LT(ran.load(), 1000);
}

TEST(ThreadPool, PoolOfSizeOneRunsInlineOnTheCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.parallel_for(64, [&](std::size_t) { seen.insert(std::this_thread::get_id()); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

TEST(ThreadPool, MaxWorkersOneRunsInlineEvenOnABiggerPool) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.parallel_for(
      64, [&](std::size_t) { seen.insert(std::this_thread::get_id()); },
      /*max_workers=*/1);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

TEST(ThreadPool, ParallelForUsesMultipleThreadsWhenAllowed) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  pool.parallel_for(256, [&](std::size_t) {
    // Enough work per index that helpers actually get scheduled.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  // Caller + at least one helper (can't assert 4 on a loaded 1-core box).
  EXPECT_GE(seen.size(), 1u);
  EXPECT_LE(seen.size(), 5u);  // 4 workers + the caller.
}

TEST(ThreadPool, DefaultThreadsHonoursTheEnvOverride) {
  ASSERT_EQ(setenv("MIXRADIX_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ASSERT_EQ(setenv("MIXRADIX_THREADS", "not-a-number", 1), 0);
  const unsigned fallback = ThreadPool::default_threads();
  ASSERT_EQ(unsetenv("MIXRADIX_THREADS"), 0);
  EXPECT_EQ(fallback, ThreadPool::default_threads());
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ThreadPool, SharedPoolIsAProcessWideSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

TEST(ThreadPool, StressManySmallParallelFors) {
  // Repeated fan-out/join cycles must not deadlock or drop indices.
  ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(64, [&sum](std::size_t i) {
      sum += static_cast<int>(i);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2);
  }
}

}  // namespace
}  // namespace mr::util
