// Property tests for the max-min fair allocation in exact mode (zero
// completion slack): feasibility, saturation, and max-min optimality
// checked against first principles on randomized flow sets.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mixradix/simnet/flow_sim.hpp"
#include "mixradix/util/prng.hpp"

namespace mr::simnet {
namespace {

struct RandomScenario {
  std::vector<double> capacities;
  std::vector<std::vector<ChannelId>> flow_channels;
};

RandomScenario make_scenario(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  RandomScenario s;
  const auto nchannels = 4 + rng.next_below(20);
  for (std::uint64_t c = 0; c < nchannels; ++c) {
    s.capacities.push_back(1.0 + static_cast<double>(rng.next_below(1000)));
  }
  const auto nflows = 2 + rng.next_below(30);
  for (std::uint64_t f = 0; f < nflows; ++f) {
    const auto width = 1 + rng.next_below(4);
    std::vector<ChannelId> channels;
    for (std::uint64_t k = 0; k < width; ++k) {
      channels.push_back(static_cast<ChannelId>(rng.next_below(nchannels)));
    }
    s.flow_channels.push_back(std::move(channels));
  }
  return s;
}

class MaxMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinProperty, FeasibleSaturatedAndMaxMin) {
  const RandomScenario s = make_scenario(GetParam());
  FlowSim sim(s.capacities);  // slack 0: exact allocation
  std::vector<std::int64_t> ids;
  for (const auto& channels : s.flow_channels) {
    ids.push_back(sim.add_flow(channels, 1e9, 0));
  }

  // Collect rates and per-channel loads (post-dedup, as the sim sees them).
  std::vector<double> rate;
  for (std::int64_t id : ids) rate.push_back(sim.flow_rate(id));

  std::vector<double> used(s.capacities.size(), 0.0);
  std::vector<std::vector<std::size_t>> on_channel(s.capacities.size());
  for (std::size_t f = 0; f < s.flow_channels.size(); ++f) {
    auto channels = s.flow_channels[f];
    std::sort(channels.begin(), channels.end());
    channels.erase(std::unique(channels.begin(), channels.end()), channels.end());
    for (ChannelId c : channels) {
      used[static_cast<std::size_t>(c)] += rate[f];
      on_channel[static_cast<std::size_t>(c)].push_back(f);
    }
  }

  // 1. Feasibility: no channel above capacity.
  for (std::size_t c = 0; c < s.capacities.size(); ++c) {
    EXPECT_LE(used[c], s.capacities[c] * (1 + 1e-9)) << "channel " << c;
  }

  // 2. Max-min optimality via the bottleneck criterion: every flow crosses
  // at least one SATURATED channel on which it has a maximal rate —
  // otherwise its rate could be raised without hurting a smaller flow.
  for (std::size_t f = 0; f < s.flow_channels.size(); ++f) {
    bool has_bottleneck = false;
    for (ChannelId c : s.flow_channels[f]) {
      const auto ci = static_cast<std::size_t>(c);
      if (used[ci] < s.capacities[ci] * (1 - 1e-9)) continue;  // unsaturated
      bool is_max = true;
      for (std::size_t other : on_channel[ci]) {
        if (rate[other] > rate[f] * (1 + 1e-9)) {
          is_max = false;
          break;
        }
      }
      if (is_max) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck) << "flow " << f << " rate " << rate[f];
  }

  // 3. All rates strictly positive.
  for (std::size_t f = 0; f < rate.size(); ++f) {
    EXPECT_GT(rate[f], 0) << "flow " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(MaxMinConservation, TotalBytesConserved) {
  // Run a randomized scenario to completion; each flow's integral of rate
  // over time must equal its size (bytes are neither lost nor duplicated).
  FlowSim sim({100.0, 70.0, 50.0});
  std::map<std::int64_t, double> size;
  util::Xoshiro256 rng(99);
  for (int f = 0; f < 12; ++f) {
    const double bytes = 100.0 + static_cast<double>(rng.next_below(900));
    const auto id = sim.add_flow(
        {static_cast<ChannelId>(f % 3), static_cast<ChannelId>((f + 1) % 3)},
        bytes, f);
    size[id] = bytes;
  }
  double last_time = 0;
  while (sim.active_flows() > 0) {
    for (const auto& done : sim.advance_and_pop()) {
      EXPECT_GE(done.time, last_time);
      last_time = done.time;
      size.erase(done.flow);
    }
  }
  EXPECT_TRUE(size.empty());
  // With total 2 channels each and aggregate channel capacity 220 B/s,
  // draining ~12*550 B cannot beat the aggregate-capacity lower bound.
  EXPECT_GT(last_time, 0.0);
}

TEST(CompletionSlack, ApproximationIsConservativeAndBounded) {
  // The same staggered scenario in exact and slack mode. This is the
  // adversarial case for the deferred fast path: every flow is added up
  // front, so freed capacity has no successor to grab it and surviving
  // flows run at stale (lower) rates until the periodic exact recompute.
  // The approximation must only ever be CONSERVATIVE (never finish early
  // beyond the slack) and stay within a modest factor of exact.
  const auto run = [&](double slack) {
    FlowSim sim({100.0, 80.0}, slack);
    util::Xoshiro256 rng(7);
    for (int f = 0; f < 40; ++f) {
      sim.add_flow({static_cast<ChannelId>(f % 2)},
                   50.0 + static_cast<double>(rng.next_below(100)), f);
    }
    double end = 0;
    while (sim.active_flows() > 0) {
      end = sim.advance_and_pop().back().time;
    }
    return end;
  };
  const double exact = run(0.0);
  const double approx = run(0.02);
  EXPECT_GE(approx, exact * (1 - 0.02));  // never optimistic past the slack
  EXPECT_LE(approx, exact * 1.15);        // bounded pessimism
}

}  // namespace
}  // namespace mr::simnet
