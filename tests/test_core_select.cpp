// Tests for Algorithm 3 (core selection) and the §3.4 examples.
#include "mixradix/mr/core_select.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mixradix/mr/decompose.hpp"
#include "mixradix/util/expect.hpp"

namespace mr {
namespace {

// §3.4: on the Fig. 1 machine (per-node ⟦2,4⟧... the paper discusses 2
// nodes of ⟦2,4⟧ each, i.e. the machine ⟦2,2,4⟧), selecting all cores of
// the first socket on both nodes yields sub-hierarchy ⟦2,4⟧; selecting two
// cores per socket yields ⟦2,2,2⟧.
TEST(SelectedHierarchy, PaperSection34Examples) {
  const Hierarchy machine{2, 2, 4};
  // All cores of socket 0 on both nodes: cores 0-3 and 8-11.
  const auto socket_first = selected_hierarchy(machine, {0, 1, 2, 3, 8, 9, 10, 11});
  ASSERT_TRUE(socket_first.has_value());
  EXPECT_EQ(*socket_first, Hierarchy({2, 4}));
  // Two cores per socket: 0,1 / 4,5 / 8,9 / 12,13.
  const auto two_per_socket = selected_hierarchy(machine, {0, 1, 4, 5, 8, 9, 12, 13});
  ASSERT_TRUE(two_per_socket.has_value());
  EXPECT_EQ(*two_per_socket, Hierarchy({2, 2, 2}));
}

TEST(SelectedHierarchy, NonRectangularSetsHaveNone) {
  const Hierarchy machine{2, 2, 4};
  // Socket 0 of node 0 plus socket 1 of node 1: an L-shape, not a product.
  EXPECT_FALSE(selected_hierarchy(machine, {0, 1, 2, 3, 12, 13, 14, 15}).has_value());
  // A single core has no hierarchy either.
  EXPECT_FALSE(selected_hierarchy(machine, {5}).has_value());
}

TEST(SelectCores, WholeNodeIsAReordering) {
  const Hierarchy node{2, 4};  // 2 sockets x 4 cores
  // Order [0,1] makes the socket level vary fastest: new rank of core
  // (s, c) is s + 2c, so position r holds core (r%2)*4 + r/2.
  const auto list = select_cores(node, {0, 1}, 8);
  const std::vector<std::int64_t> expected{0, 4, 1, 5, 2, 6, 3, 7};
  EXPECT_EQ(list, expected);
  // Order [1,0] (core level fastest) is the physical enumeration.
  const auto identity = select_cores(node, {1, 0}, 8);
  EXPECT_EQ(identity, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SelectCores, PrefixSelection) {
  const Hierarchy node{2, 4};
  // Cyclic-across-sockets order, 4 cores: first two cores of each socket.
  EXPECT_EQ(select_cores(node, {0, 1}, 4), (std::vector<std::int64_t>{0, 4, 1, 5}));
  // Physical order, 4 cores: the first socket only.
  EXPECT_EQ(select_cores(node, {1, 0}, 4), (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(SelectCores, ValidatesInputs) {
  const Hierarchy node{2, 4};
  EXPECT_THROW(select_cores(node, {0, 1}, 0), invalid_argument);
  EXPECT_THROW(select_cores(node, {0, 1}, 9), invalid_argument);
  EXPECT_THROW(select_cores(node, {0, 1, 2}, 4), invalid_argument);
}

TEST(SelectCores, EveryPositionFilled) {
  const Hierarchy node{2, 2, 4};
  for (const Order& order : all_orders_lexicographic(3)) {
    for (std::int64_t n : {1, 2, 4, 8, 16}) {
      const auto list = select_cores(node, order, n);
      ASSERT_EQ(static_cast<std::int64_t>(list.size()), n);
      std::set<std::int64_t> unique(list.begin(), list.end());
      ASSERT_EQ(static_cast<std::int64_t>(unique.size()), n);
      for (std::int64_t core : list) {
        ASSERT_GE(core, 0);
        ASSERT_LT(core, 16);
      }
    }
  }
}

TEST(MapCpuString, Format) {
  EXPECT_EQ(map_cpu_string({0, 8, 16}), "map_cpu:0,8,16");
  EXPECT_EQ(map_cpu_string({5}), "map_cpu:5");
}

TEST(CoreSetRanges, Fig9StyleRendering) {
  EXPECT_EQ(core_set_ranges({0, 1, 2, 3}), "0-3");
  EXPECT_EQ(core_set_ranges({0, 16, 32, 48}), "0,16,32,48");
  EXPECT_EQ(core_set_ranges({0, 1, 8, 9, 64, 65, 72, 73}), "0-1,8-9,64-65,72-73");
  EXPECT_EQ(core_set_ranges({7}), "7");
}

TEST(EnumerateSelections, DropsIdenticalMapsAndGroupsBySet) {
  // LUMI node hierarchy ⟦2,4,2,8⟧ with 2 processes: Fig. 9's top group
  // shows 4 distinct selections: {0,64}, {0,16}, {0,8}, {0,1}.
  const Hierarchy lumi_node{2, 4, 2, 8};
  const auto outcomes = enumerate_selections(lumi_node, 2);
  std::set<std::vector<std::int64_t>> sets;
  for (const auto& o : outcomes) sets.insert(o.core_set);
  EXPECT_EQ(sets.size(), 4u);
  EXPECT_TRUE(sets.contains(std::vector<std::int64_t>{0, 64}));
  EXPECT_TRUE(sets.contains(std::vector<std::int64_t>{0, 16}));
  EXPECT_TRUE(sets.contains(std::vector<std::int64_t>{0, 8}));
  EXPECT_TRUE(sets.contains(std::vector<std::int64_t>{0, 1}));
  // With 2 processes the rank order within a set is never distinguishable
  // (swapping two ranks of a symmetric pair), so each set appears once.
  EXPECT_EQ(outcomes.size(), 4u);
}

TEST(EnumerateSelections, OutcomesAreGroupedContiguouslyBySet) {
  const Hierarchy node{2, 2, 4};
  const auto outcomes = enumerate_selections(node, 4);
  // Sets must form contiguous runs (Fig. 9 clusters bars by color).
  std::set<std::vector<std::int64_t>> seen;
  const std::vector<std::int64_t>* current = nullptr;
  for (const auto& o : outcomes) {
    if (current == nullptr || o.core_set != *current) {
      ASSERT_TRUE(seen.insert(o.core_set).second)
          << "core set repeated non-contiguously";
      current = &o.core_set;
    }
  }
}

}  // namespace
}  // namespace mr
