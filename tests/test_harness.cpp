// The §4.1 micro-benchmark protocol and its reporting.
#include "mixradix/harness/microbench.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::harness {
namespace {

topo::Machine small_hydra() { return topo::hydra(2); }  // 64 procs

MicrobenchConfig base_config() {
  MicrobenchConfig c;
  c.order = parse_order("0-1-2-3");
  c.comm_size = 16;
  c.collective = simmpi::Collective::Alltoall;
  c.total_bytes = 1 << 20;
  c.repetitions = 1;
  return c;
}

TEST(Microbench, ProducesPositiveBandwidth) {
  const auto result = run_microbench(small_hydra(), base_config());
  EXPECT_GT(result.mean_bandwidth, 0);
  EXPECT_GT(result.mean_seconds_per_op, 0);
  EXPECT_NEAR(result.mean_bandwidth * result.mean_seconds_per_op,
              static_cast<double>(base_config().total_bytes),
              static_cast<double>(base_config().total_bytes) * 1e-6);
  EXPECT_EQ(result.algorithm, "alltoall_pairwise");
}

TEST(Microbench, SingleCommIsNoSlowerThanAllComms) {
  // Running every subcommunicator at once can only add contention.
  auto config = base_config();
  config.all_comms = false;
  const double alone = run_microbench(small_hydra(), config).mean_seconds_per_op;
  config.all_comms = true;
  const double together = run_microbench(small_hydra(), config).mean_seconds_per_op;
  EXPECT_LE(alone, together * (1 + 1e-9));
}

TEST(Microbench, DecilesBracketTheMean) {
  auto config = base_config();
  config.all_comms = true;
  const auto result = run_microbench(small_hydra(), config);
  EXPECT_LE(result.bw_p10, result.mean_bandwidth * (1 + 1e-9));
  EXPECT_GE(result.bw_p90, result.mean_bandwidth * (1 - 1e-9));
}

TEST(Microbench, PackedOrderIsContentionImmune) {
  // The paper's headline: packed mappings perform identically with 1 or
  // all communicators.
  auto config = base_config();
  config.order = parse_order("3-2-1-0");
  config.all_comms = false;
  const double alone = run_microbench(small_hydra(), config).mean_seconds_per_op;
  config.all_comms = true;
  const double together = run_microbench(small_hydra(), config).mean_seconds_per_op;
  EXPECT_NEAR(alone, together, alone * 0.05);
}

TEST(Microbench, ValidatesInputs) {
  auto config = base_config();
  config.comm_size = 24;  // does not divide 64
  EXPECT_THROW(run_microbench(small_hydra(), config), invalid_argument);
  config = base_config();
  config.total_bytes = 0;
  EXPECT_THROW(run_microbench(small_hydra(), config), invalid_argument);
  config = base_config();
  config.repetitions = 0;
  EXPECT_THROW(run_microbench(small_hydra(), config), invalid_argument);
  config = base_config();
  config.comm_size = 1;
  EXPECT_THROW(run_microbench(small_hydra(), config), invalid_argument);
}

TEST(PaperSizes, MatchesTheFiguresAxes) {
  const auto sizes = paper_sizes();
  ASSERT_EQ(sizes.size(), 6u);
  EXPECT_EQ(sizes.front(), 16ll << 10);
  EXPECT_EQ(sizes.back(), 512ll << 20);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[i - 1] * 8);
  }
  EXPECT_EQ(paper_sizes(1 << 20).size(), 3u);  // 16K, 128K, 1M
}

TEST(Sweep, SeriesCarryLegendsAndResults) {
  SweepConfig config;
  config.orders = {parse_order("0-1-2-3"), parse_order("3-2-1-0")};
  config.sizes = {16 << 10, 128 << 10};
  config.comm_size = 16;
  config.collective = simmpi::Collective::Allgather;
  config.repetitions = 1;
  const auto series = run_sweep(small_hydra(), config);
  ASSERT_EQ(series.size(), 2u);
  for (const auto& s : series) {
    EXPECT_EQ(s.sizes, config.sizes);
    EXPECT_EQ(s.results.size(), 2u);
    EXPECT_EQ(s.character.pair_pct.size(), 4u);
  }
  EXPECT_EQ(order_to_string(series[0].character.order), "0-1-2-3");
}

TEST(Report, PrintFigureContainsLegendAndRows) {
  SweepConfig config;
  config.orders = {parse_order("3-2-1-0")};
  config.sizes = {16 << 10};
  config.comm_size = 16;
  config.repetitions = 1;
  const auto single = run_sweep(small_hydra(), config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(small_hydra(), config);
  std::ostringstream os;
  print_figure(os, "Test figure", single, simultaneous);
  const std::string text = os.str();
  EXPECT_NE(text.find("Test figure"), std::string::npos);
  EXPECT_NE(text.find("3-2-1-0 ("), std::string::npos);
  EXPECT_NE(text.find("16 KB"), std::string::npos);
  EXPECT_NE(text.find("1 simultaneous comm."), std::string::npos);
  EXPECT_NE(text.find("all simultaneous comms."), std::string::npos);
}

TEST(Report, CsvIsWellFormed) {
  SweepConfig config;
  config.orders = {parse_order("0-1-2-3")};
  config.sizes = {16 << 10, 128 << 10};
  config.comm_size = 16;
  config.repetitions = 1;
  const auto single = run_sweep(small_hydra(), config);
  std::ostringstream os;
  write_figure_csv(os, "figX", single, {});
  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "figure,scenario,order,ring_cost,size_bytes,bandwidth_mbs,"
            "bw_p10_mbs,bw_p90_mbs,seconds_per_op,algorithm");
  int rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 9) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 2);
}

}  // namespace
}  // namespace mr::harness
