// The §4.1 micro-benchmark protocol and its reporting.
#include "mixradix/harness/microbench.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::harness {
namespace {

topo::Machine small_hydra() { return topo::hydra(2); }  // 64 procs

MicrobenchConfig base_config() {
  MicrobenchConfig c;
  c.order = parse_order("0-1-2-3");
  c.comm_size = 16;
  c.collective = simmpi::Collective::Alltoall;
  c.total_bytes = 1 << 20;
  c.repetitions = 1;
  return c;
}

TEST(Microbench, ProducesPositiveBandwidth) {
  const auto result = run_microbench(small_hydra(), base_config());
  EXPECT_GT(result.mean_bandwidth, 0);
  EXPECT_GT(result.mean_seconds_per_op, 0);
  EXPECT_NEAR(result.mean_bandwidth * result.mean_seconds_per_op,
              static_cast<double>(base_config().total_bytes),
              static_cast<double>(base_config().total_bytes) * 1e-6);
  EXPECT_EQ(result.algorithm, "alltoall_pairwise");
}

TEST(Microbench, SingleCommIsNoSlowerThanAllComms) {
  // Running every subcommunicator at once can only add contention.
  auto config = base_config();
  config.all_comms = false;
  const double alone = run_microbench(small_hydra(), config).mean_seconds_per_op;
  config.all_comms = true;
  const double together = run_microbench(small_hydra(), config).mean_seconds_per_op;
  EXPECT_LE(alone, together * (1 + 1e-9));
}

TEST(Microbench, DecilesBracketTheMean) {
  auto config = base_config();
  config.all_comms = true;
  const auto result = run_microbench(small_hydra(), config);
  EXPECT_LE(result.bw_p10, result.mean_bandwidth * (1 + 1e-9));
  EXPECT_GE(result.bw_p90, result.mean_bandwidth * (1 - 1e-9));
}

TEST(Microbench, PackedOrderIsContentionImmune) {
  // The paper's headline: packed mappings perform identically with 1 or
  // all communicators.
  auto config = base_config();
  config.order = parse_order("3-2-1-0");
  config.all_comms = false;
  const double alone = run_microbench(small_hydra(), config).mean_seconds_per_op;
  config.all_comms = true;
  const double together = run_microbench(small_hydra(), config).mean_seconds_per_op;
  EXPECT_NEAR(alone, together, alone * 0.05);
}

TEST(Microbench, ValidatesInputs) {
  auto config = base_config();
  config.comm_size = 24;  // does not divide 64
  EXPECT_THROW(run_microbench(small_hydra(), config), invalid_argument);
  config = base_config();
  config.total_bytes = 0;
  EXPECT_THROW(run_microbench(small_hydra(), config), invalid_argument);
  config = base_config();
  config.repetitions = 0;
  EXPECT_THROW(run_microbench(small_hydra(), config), invalid_argument);
  config = base_config();
  config.comm_size = 1;
  EXPECT_THROW(run_microbench(small_hydra(), config), invalid_argument);
}

TEST(PaperSizes, MatchesTheFiguresAxes) {
  const auto sizes = paper_sizes();
  ASSERT_EQ(sizes.size(), 6u);
  EXPECT_EQ(sizes.front(), 16ll << 10);
  EXPECT_EQ(sizes.back(), 512ll << 20);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[i - 1] * 8);
  }
  EXPECT_EQ(paper_sizes(1 << 20).size(), 3u);  // 16K, 128K, 1M
}

TEST(PaperSizes, EdgeCasesAroundTheFirstTick) {
  // Caps below the 16 KB first tick leave no valid size: the sweep's
  // precondition (non-empty sizes) then reports the misconfiguration.
  EXPECT_TRUE(paper_sizes(0).empty());
  EXPECT_TRUE(paper_sizes(1).empty());
  EXPECT_TRUE(paper_sizes((16 << 10) - 1).empty());
  EXPECT_TRUE(paper_sizes(-(16ll << 10)).empty());
  // Exactly the first tick is inclusive.
  ASSERT_EQ(paper_sizes(16 << 10).size(), 1u);
  EXPECT_EQ(paper_sizes(16 << 10).front(), 16ll << 10);
  // One byte below the next tick still yields only the first.
  EXPECT_EQ(paper_sizes((128 << 10) - 1).size(), 1u);
}

TEST(Sweep, SeriesCarryLegendsAndResults) {
  SweepConfig config;
  config.orders = {parse_order("0-1-2-3"), parse_order("3-2-1-0")};
  config.sizes = {16 << 10, 128 << 10};
  config.comm_size = 16;
  config.collective = simmpi::Collective::Allgather;
  config.repetitions = 1;
  const auto series = run_sweep(small_hydra(), config);
  ASSERT_EQ(series.size(), 2u);
  for (const auto& s : series) {
    EXPECT_EQ(s.sizes, config.sizes);
    EXPECT_EQ(s.results.size(), 2u);
    EXPECT_EQ(s.character.pair_pct.size(), 4u);
  }
  EXPECT_EQ(order_to_string(series[0].character.order), "0-1-2-3");
}

TEST(Sweep, ParallelAndSerialResultsAreBitIdentical) {
  // The determinism guarantee of the parallel sweep engine: every (order,
  // size) point owns its simulator, results merge in input order, so the
  // thread count must not change a single bit — including the CSV bytes.
  SweepConfig config;
  config.orders = {parse_order("0-1-2-3"), parse_order("1-3-2-0"),
                   parse_order("3-2-1-0")};
  config.sizes = {16 << 10, 128 << 10, 1 << 20};
  config.comm_size = 16;
  config.collective = simmpi::Collective::Alltoall;
  config.all_comms = true;
  config.repetitions = 1;

  config.threads = 1;
  const auto serial = run_sweep(small_hydra(), config);
  config.threads = 4;
  const auto parallel = run_sweep(small_hydra(), config);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    EXPECT_EQ(serial[s].character.order, parallel[s].character.order);
    EXPECT_EQ(serial[s].character.ring_cost, parallel[s].character.ring_cost);
    EXPECT_EQ(serial[s].character.pair_pct, parallel[s].character.pair_pct);
    EXPECT_EQ(serial[s].sizes, parallel[s].sizes);
    ASSERT_EQ(serial[s].results.size(), parallel[s].results.size());
    for (std::size_t r = 0; r < serial[s].results.size(); ++r) {
      const auto& a = serial[s].results[r];
      const auto& b = parallel[s].results[r];
      // EXPECT_EQ, not NEAR: identical inputs must give identical bits.
      EXPECT_EQ(a.mean_seconds_per_op, b.mean_seconds_per_op);
      EXPECT_EQ(a.mean_bandwidth, b.mean_bandwidth);
      EXPECT_EQ(a.bw_p10, b.bw_p10);
      EXPECT_EQ(a.bw_p90, b.bw_p90);
      EXPECT_EQ(a.algorithm, b.algorithm);
    }
  }

  std::ostringstream serial_csv, parallel_csv;
  write_figure_csv(serial_csv, "det", serial, {});
  write_figure_csv(parallel_csv, "det", parallel, {});
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
}

TEST(Sweep, DefaultThreadCountMatchesTheForcedSerialPath) {
  // threads = 0 resolves to hardware_concurrency (or MIXRADIX_THREADS);
  // whatever it picks, the output must equal the serial path's.
  SweepConfig config;
  config.orders = {parse_order("2-1-0-3")};
  config.sizes = {16 << 10, 128 << 10};
  config.comm_size = 16;
  config.repetitions = 1;
  config.threads = 0;
  const auto auto_threads = run_sweep(small_hydra(), config);
  config.threads = 1;
  const auto serial = run_sweep(small_hydra(), config);
  ASSERT_EQ(auto_threads.size(), serial.size());
  for (std::size_t r = 0; r < serial[0].results.size(); ++r) {
    EXPECT_EQ(auto_threads[0].results[r].mean_bandwidth,
              serial[0].results[r].mean_bandwidth);
  }
}

TEST(Report, PrintFigureContainsLegendAndRows) {
  SweepConfig config;
  config.orders = {parse_order("3-2-1-0")};
  config.sizes = {16 << 10};
  config.comm_size = 16;
  config.repetitions = 1;
  const auto single = run_sweep(small_hydra(), config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(small_hydra(), config);
  std::ostringstream os;
  print_figure(os, "Test figure", single, simultaneous);
  const std::string text = os.str();
  EXPECT_NE(text.find("Test figure"), std::string::npos);
  EXPECT_NE(text.find("3-2-1-0 ("), std::string::npos);
  EXPECT_NE(text.find("16 KB"), std::string::npos);
  EXPECT_NE(text.find("1 simultaneous comm."), std::string::npos);
  EXPECT_NE(text.find("all simultaneous comms."), std::string::npos);
}

TEST(Report, CsvIsWellFormed) {
  SweepConfig config;
  config.orders = {parse_order("0-1-2-3")};
  config.sizes = {16 << 10, 128 << 10};
  config.comm_size = 16;
  config.repetitions = 1;
  const auto single = run_sweep(small_hydra(), config);
  std::ostringstream os;
  write_figure_csv(os, "figX", single, {});
  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "figure,scenario,order,ring_cost,size_bytes,bandwidth_mbs,"
            "bw_p10_mbs,bw_p90_mbs,seconds_per_op,algorithm");
  int rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 9) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 2);
}

}  // namespace
}  // namespace mr::harness
