// Binding-analyzer tests. The load-bearing property: the static
// critical-path lower bound NEVER exceeds the TimedExecutor's simulated
// makespan — checked across the full registry x preset x size x engine
// matrix, in exact (slack 0) and slack-merged timing, serial and from a
// thread pool.
#include "mixradix/verify/binding.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mixradix/simmpi/plan.hpp"
#include "mixradix/simmpi/registry.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/simnet/path.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/thread_pool.hpp"

namespace mr::verify::binding {
namespace {

using simmpi::ExecOptions;
using simmpi::PlanJob;

// Floating-point tolerance for "lb <= sim": both sides accumulate the same
// quantities in different orders.
constexpr double kFpSlop = 1.0 + 1e-9;

/// Identity binding: rank r on core r.
std::vector<std::int64_t> packed_cores(std::int32_t p) {
  std::vector<std::int64_t> cores(static_cast<std::size_t>(p));
  for (std::int32_t r = 0; r < p; ++r) {
    cores[static_cast<std::size_t>(r)] = r;
  }
  return cores;
}

/// Max-stride binding: ranks spread as far apart as the machine allows.
std::vector<std::int64_t> spread_cores(std::int32_t p, std::int64_t ncores) {
  std::vector<std::int64_t> cores(static_cast<std::size_t>(p));
  for (std::int32_t r = 0; r < p; ++r) {
    cores[static_cast<std::size_t>(r)] = r * (ncores / p);
  }
  return cores;
}

std::int32_t pick_p(const simmpi::AlgorithmInfo& info, std::int64_t ncores) {
  for (const std::int32_t p : {8, 4, 16, 6, 2}) {
    if (p <= ncores && info.supported(p)) return p;
  }
  return -1;
}

double run_sim(const topo::Machine& machine, const simmpi::Plan& plan,
               const std::vector<std::int64_t>& cores, double slack,
               bool reference) {
  PlanJob job;
  job.plan = std::make_shared<const simmpi::Plan>(plan);
  job.core_of_rank = cores;
  ExecOptions options;
  options.completion_slack = slack;
  options.reference = reference;
  return simmpi::run_timed(machine, {job}, options).makespan;
}

/// One matrix point: analyze + simulate in all four engine configurations,
/// returning a description of every violated bound ("" = all held).
std::string check_point(const topo::Machine& machine, const std::string& alg,
                        std::int32_t p, std::int64_t count, int repetitions,
                        const std::vector<std::int64_t>& cores) {
  const simmpi::Plan plan =
      simmpi::compile_plan(alg, p, count, 0, repetitions);
  const Result analysis = analyze(plan, machine, cores);
  if (!analysis.clean()) {
    return alg + ": analysis not clean:\n" + analysis.to_string();
  }
  std::string failures;
  for (const bool reference : {false, true}) {
    for (const double slack : {0.0, simmpi::kDefaultCompletionSlack}) {
      const double sim = run_sim(machine, plan, cores, slack, reference);
      const double lb = analysis.bound.for_slack(slack);
      if (!(lb <= sim * kFpSlop)) {
        failures += alg + " on " + machine.name() + " count=" +
                    std::to_string(count) + " slack=" + std::to_string(slack) +
                    (reference ? " reference" : " optimized") +
                    ": lower bound " + std::to_string(lb) +
                    " exceeds simulated " + std::to_string(sim) + "\n";
      }
    }
  }
  return failures;
}

TEST(BindingBound, NeverExceedsSimAcrossRegistryMatrix) {
  const topo::Machine machines[] = {topo::testbox(), topo::hydra(4),
                                    topo::lumi(2)};
  // Byte counts straddle the 16 KiB eager threshold (testbox is all
  // rendezvous regardless).
  const std::int64_t counts[] = {64, 2048, 65536};
  int points = 0;
  for (const auto& machine : machines) {
    for (const auto& info : simmpi::algorithm_registry()) {
      const std::int32_t p = pick_p(info, machine.cores());
      ASSERT_GT(p, 0) << info.name;
      for (const std::int64_t count : counts) {
        const std::string failures =
            check_point(machine, info.name, p, count, 1, packed_cores(p));
        EXPECT_EQ(failures, "");
        ++points;
      }
    }
  }
  EXPECT_GE(points, 3 * 19 * 3);  // machines x algorithms x sizes
}

TEST(BindingBound, HoldsForSpreadMappingAndRepetitions) {
  const auto machine = topo::lumi(2);
  for (const auto& info : simmpi::algorithm_registry()) {
    const std::int32_t p = pick_p(info, machine.cores());
    ASSERT_GT(p, 0) << info.name;
    EXPECT_EQ(check_point(machine, info.name, p, 4096, 3,
                          spread_cores(p, machine.cores())),
              "");
  }
}

TEST(BindingBound, HoldsUnderThreadPool) {
  // TSan target: concurrent analyses + simulations must not race.
  const auto machine = topo::hydra(4);
  const auto& registry = simmpi::algorithm_registry();
  std::mutex mu;
  std::string failures;
  util::ThreadPool pool(4);
  pool.parallel_for(registry.size(), [&](std::size_t i) {
    const auto& info = registry[i];
    const std::int32_t p = pick_p(info, machine.cores());
    const std::string f =
        check_point(machine, info.name, p, 2048, 1, packed_cores(p));
    if (!f.empty()) {
      const std::lock_guard<std::mutex> lock(mu);
      failures += f;
    }
  });
  EXPECT_EQ(failures, "");
}

TEST(BindingBound, ExactlyTightOnSerializedNicContention) {
  // Two 8 MB cross-node transfers share node 0's egress NIC (1 GB/s on
  // testbox): the channel-serialization bound equals the simulated time.
  const auto m = topo::testbox();
  constexpr std::int64_t kCount = 1'000'000;
  simmpi::ScheduleBuilder b(4, kCount);
  b.exchange(0, 0, {0, kCount}, 1, {0, kCount});
  b.exchange(0, 2, {0, kCount}, 3, {0, kCount});
  const simmpi::Plan plan = simmpi::make_plan(std::move(b).build());
  // Ranks 0,2 on node 0 (cores 0,1), ranks 1,3 on node 1 (cores 8,9).
  const std::vector<std::int64_t> cores = {0, 8, 1, 9};
  const Result r = analyze(plan, m, cores);
  ASSERT_TRUE(r.clean()) << r.report.to_string();
  const double sim = run_sim(m, plan, cores, 0.0, false);
  EXPECT_NEAR(sim, 2 * 8e6 / 1e9, 1e-12);
  EXPECT_NEAR(r.bound.lower_bound, sim, 1e-12);
  EXPECT_NEAR(r.bound.channel_serialization, sim, 1e-12);
  // Each flow alone would take 8 ms (node-link bottleneck).
  EXPECT_NEAR(r.bound.critical_path, 8e6 / 1e9, 1e-12);

  // Load report: 16 MB over one round, two flows, and the shared NIC
  // carries twice a single flow's worth -> oversubscription 2.
  EXPECT_EQ(r.load.total_bytes, 2 * 8'000'000);
  EXPECT_EQ(r.load.total_flows, 2);
  EXPECT_EQ(r.load.self_bytes, 0);
  ASSERT_EQ(r.load.rounds.size(), 1u);
  EXPECT_EQ(r.load.rounds[0].bytes, 2 * 8'000'000);
  EXPECT_EQ(r.load.rounds[0].flows, 2);
  EXPECT_NEAR(r.load.rounds[0].max_oversubscription, 2.0, 1e-12);
  ASSERT_FALSE(r.load.top_channels.empty());
  const ChannelLoad& hot = r.load.top_channels.front();
  EXPECT_NEAR(hot.serialization_seconds, 16e6 / 1e9, 1e-12);
  EXPECT_NEAR(hot.oversubscription, 2.0, 1e-12);
  // The two equally hot channels are the node uplinks.
  EXPECT_TRUE(hot.name == "node[0].egress" || hot.name == "node[1].ingress")
      << hot.name;
  EXPECT_NE(r.to_string().find("lower bound"), std::string::npos);
}

TEST(BindingBound, ForSlackDeflates) {
  Bound b;
  b.lower_bound = 1.0;
  EXPECT_EQ(b.for_slack(0.0), 1.0);
  EXPECT_EQ(b.for_slack(-1.0), 1.0);
  EXPECT_NEAR(b.for_slack(0.02), 1.0 / 1.04, 1e-15);
}

TEST(BindingDiagnostics, CoreOutOfRangeIsError) {
  const auto m = topo::testbox();
  const simmpi::Plan plan = simmpi::compile_plan("allgather_ring", 4, 16);
  const Result r = analyze(plan, m, {0, 1, 2, 99});
  EXPECT_FALSE(r.clean());
  ASSERT_FALSE(r.report.diagnostics.empty());
  const auto& d = r.report.diagnostics.front();
  EXPECT_EQ(d.check, Check::Binding);
  EXPECT_EQ(d.rank, 3);
  EXPECT_NE(d.text.find("core 99"), std::string::npos) << d.text;
  // No load report or bound on a broken binding.
  EXPECT_EQ(r.bound.lower_bound, 0.0);
  EXPECT_TRUE(r.load.rounds.empty());
}

TEST(BindingDiagnostics, BindingSizeMismatchIsError) {
  const auto m = topo::testbox();
  const simmpi::Plan plan = simmpi::compile_plan("allgather_ring", 4, 16);
  const Result r = analyze(plan, m, {0, 1, 2});
  EXPECT_FALSE(r.clean());
  EXPECT_NE(r.report.diagnostics.front().text.find("3 entries"),
            std::string::npos);
}

TEST(BindingDiagnostics, DuplicateCoreIsWarningOnly) {
  const auto m = topo::testbox();
  const simmpi::Plan plan = simmpi::compile_plan("allgather_ring", 4, 16);
  const Result r = analyze(plan, m, {0, 0, 1, 2});
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.report.count(Severity::Warning), 1u) << r.report.to_string();
  EXPECT_NE(r.report.diagnostics.front().text.find("share core 0"),
            std::string::npos);
  // Rank 0 -> rank 1 traffic stays off the network.
  EXPECT_GT(r.load.self_bytes, 0);
  // The bound still holds on the degenerate mapping.
  const double sim = run_sim(m, plan, {0, 0, 1, 2}, 0.0, false);
  EXPECT_LE(r.bound.lower_bound, sim * kFpSlop);
}

TEST(BindingDiagnostics, RepetitionOverflowIsError) {
  const auto m = topo::testbox();
  simmpi::ScheduleBuilder b(2, 8);
  b.exchange(0, 0, {0, 8}, 1, {0, 8});
  b.exchange(1, 1, {0, 8}, 0, {0, 8});
  const simmpi::Plan plan =
      simmpi::make_plan(std::move(b).build(), 1 << 30);
  const Result r = analyze(plan, m, {0, 1});
  EXPECT_FALSE(r.clean());
  EXPECT_NE(r.report.diagnostics.front().text.find("overflows"),
            std::string::npos)
      << r.report.to_string();
}

TEST(BindingDiagnostics, DeadlockedBindingReportsCycleAndZeroBound) {
  // Cross-round wait cycle, built by hand so ScheduleBuilder's verification
  // (in MIXRADIX_VERIFY_SCHEDULES builds) cannot reject it first: each rank
  // waits in round 0 for a message the peer only sends in round 1.
  simmpi::Schedule s;
  s.nranks = 2;
  s.arena_size = 4;
  s.messages = {simmpi::MsgInfo{1, 0, {0, 2}, {0, 2}, simmpi::Combine::Replace},
                simmpi::MsgInfo{0, 1, {2, 2}, {2, 2}, simmpi::Combine::Replace}};
  s.programs.resize(2);
  s.programs[0].rounds.resize(2);
  s.programs[0].rounds[0].recvs = {simmpi::RecvOp{0}};
  s.programs[0].rounds[1].sends = {simmpi::SendOp{1}};
  s.programs[1].rounds.resize(2);
  s.programs[1].rounds[0].recvs = {simmpi::RecvOp{1}};
  s.programs[1].rounds[1].sends = {simmpi::SendOp{0}};
  const simmpi::Plan plan = simmpi::make_plan(std::move(s));
  const Result r = analyze(plan, topo::testbox(), {0, 1});
  EXPECT_FALSE(r.clean());
  EXPECT_NE(r.report.to_string().find("cycle"), std::string::npos)
      << r.report.to_string();
  EXPECT_EQ(r.bound.lower_bound, 0.0);
}

TEST(BindingDiagnostics, SameRoundExchangeIsNotACycle) {
  // The classic sendrecv pattern: posts are non-blocking, so mutual
  // same-round messages must analyze clean with a finite bound.
  simmpi::ScheduleBuilder b(2, 8);
  b.exchange(0, 0, {0, 8}, 1, {0, 8});
  b.exchange(0, 1, {0, 8}, 0, {0, 8});
  const simmpi::Plan plan = simmpi::make_plan(std::move(b).build());
  const Result r = analyze(plan, topo::testbox(), {0, 8});
  EXPECT_TRUE(r.clean()) << r.report.to_string();
  EXPECT_GT(r.bound.lower_bound, 0.0);
}

TEST(BindingDiagnostics, MultiJobDiagnosticsArePrefixed) {
  const auto m = topo::testbox();
  const simmpi::Plan plan = simmpi::compile_plan("allgather_ring", 4, 16);
  JobBinding good{&plan.schedule, &plan.exec, plan.repetitions, nullptr, 0};
  const std::vector<std::int64_t> ok_cores = {0, 1, 2, 3};
  const std::vector<std::int64_t> bad_cores = {0, 1, 2, 999};
  good.core_of_rank = &ok_cores;
  JobBinding bad = good;
  bad.core_of_rank = &bad_cores;
  const Result r = analyze_jobs(m, {good, bad});
  EXPECT_FALSE(r.clean());
  EXPECT_NE(r.report.diagnostics.front().text.find("job 1:"),
            std::string::npos)
      << r.report.to_string();
}

TEST(BindingDiagnostics, ConcurrentJobsBoundHolds) {
  const auto m = topo::testbox();
  const simmpi::Plan plan = simmpi::compile_plan("alltoall_pairwise", 4, 512);
  const std::vector<std::int64_t> cores_a = {0, 4, 8, 12};
  const std::vector<std::int64_t> cores_b = {1, 5, 9, 13};
  JobBinding ja{&plan.schedule, &plan.exec, plan.repetitions, &cores_a, 0.0};
  JobBinding jb{&plan.schedule, &plan.exec, plan.repetitions, &cores_b, 1e-4};
  const Result r = analyze_jobs(m, {ja, jb});
  ASSERT_TRUE(r.clean()) << r.report.to_string();

  PlanJob pa, pb;
  pa.plan = std::make_shared<const simmpi::Plan>(plan);
  pa.core_of_rank = cores_a;
  pb.plan = pa.plan;
  pb.core_of_rank = cores_b;
  pb.start_time = 1e-4;
  ExecOptions options;
  options.completion_slack = 0.0;
  const double sim = simmpi::run_timed(m, {pa, pb}, options).makespan;
  EXPECT_LE(r.bound.lower_bound, sim * kFpSlop);
  EXPECT_GT(r.bound.lower_bound, 1e-4);  // the delayed job's start counts.
}

TEST(BindingDiagnostics, EmptyJobListIsClean) {
  const Result r = analyze_jobs(topo::testbox(), {});
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.bound.lower_bound, 0.0);
}

TEST(BindingPreverify, ThrowsOnBadBindingAndPassesGoodOne) {
  const auto m = topo::testbox();
  PlanJob job;
  job.plan = std::make_shared<const simmpi::Plan>(
      simmpi::compile_plan("allgather_ring", 4, 16));
  job.core_of_rank = {0, 1, 2, 99};
  ExecOptions options;
  options.preverify_binding = true;
  EXPECT_THROW(simmpi::run_timed(m, {job}, options), mr::invalid_argument);
  try {
    simmpi::run_timed(m, {job}, options);
    FAIL() << "expected mr::invalid_argument";
  } catch (const mr::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("core 99"), std::string::npos)
        << e.what();
  }
  job.core_of_rank = {0, 1, 2, 3};
  EXPECT_GT(simmpi::run_timed(m, {job}, options).makespan, 0.0);
}

// The analyzer's RouteCache derives routes from precomputed per-machine
// tables instead of walking the hierarchy API per pair; this pins its
// channel accounting against simnet::flow_channels — the simulator's
// route derivation — across machines, mappings, and a rooted algorithm
// whose traffic is asymmetric.
TEST(BindingLoad, ChannelAccountingMatchesFlowChannels) {
  const topo::Machine machines[] = {topo::testbox(), topo::hydra(4, 2),
                                    topo::lumi(2)};
  constexpr std::int32_t kP = 8;
  constexpr int kReps = 2;
  for (const auto& machine : machines) {
    for (const std::string alg : {"alltoall_pairwise", "gather_linear"}) {
      for (const bool spread : {false, true}) {
        const simmpi::Plan plan = simmpi::compile_plan(alg, kP, 512, 0, kReps);
        const auto cores =
            spread ? spread_cores(kP, machine.cores()) : packed_cores(kP);
        // Reference accounting straight from flow_channels; sort+unique is
        // FlowSim's dedupe of the shared memory controller above the
        // divergence level.
        std::map<simnet::ChannelId, std::pair<std::int64_t, std::int64_t>>
            want;  // channel -> (bytes, flows)
        for (const simmpi::MsgInfo& msg : plan.schedule.messages) {
          auto chans = simnet::flow_channels(
              machine, cores[static_cast<std::size_t>(msg.src)],
              cores[static_cast<std::size_t>(msg.dst)]);
          std::sort(chans.begin(), chans.end());
          chans.erase(std::unique(chans.begin(), chans.end()), chans.end());
          for (const simnet::ChannelId id : chans) {
            want[id].first += msg.bytes() * kReps;
            want[id].second += kReps;
          }
        }
        Options options;
        options.top_k = 1 << 20;  // keep every touched channel.
        const Result result = analyze(plan, machine, cores, options);
        ASSERT_TRUE(result.clean());
        const std::string where = machine.name() + "/" + alg +
                                  (spread ? "/spread" : "/packed");
        ASSERT_EQ(result.load.top_channels.size(), want.size()) << where;
        for (const ChannelLoad& cl : result.load.top_channels) {
          const auto it = want.find(cl.channel);
          ASSERT_NE(it, want.end())
              << where << ": unexpected channel " << cl.name;
          EXPECT_EQ(cl.bytes, it->second.first) << where << " " << cl.name;
          EXPECT_EQ(cl.flows, it->second.second) << where << " " << cl.name;
        }
      }
    }
  }
}

// ---- BoundCache: payload-invariant structures vs fresh analysis -----------
//
// The cache's contract is BIT-identity: evaluate() of a cached structure
// must return the exact doubles a fresh analyze_jobs would — across the
// registry, machines, payload sizes and mappings, serial and threaded.

/// Fresh analysis in the tuner's configuration (bound only, no load
/// report) — the reference every cached result is compared against.
Result fresh_bound(const topo::Machine& machine,
                   const std::vector<JobBinding>& jobs) {
  Options options;
  options.load_report = false;
  options.lower_bound = true;
  return analyze_jobs(machine, jobs, options);
}

/// One cached-vs-fresh comparison; returns "" when bit-identical.
std::string check_cached(BoundCache& cache, const topo::Machine& machine,
                         const std::string& alg, std::int32_t p,
                         std::int64_t count,
                         const std::vector<std::int64_t>& cores) {
  const simmpi::Plan plan = simmpi::compile_plan(alg, p, count, 0, 1);
  const std::vector<JobBinding> jobs = {
      {&plan.schedule, &plan.exec, plan.repetitions, &cores, 0.0}};
  const Result want = fresh_bound(machine, jobs);
  const Result got = cache.analyze(machine, jobs);
  const std::string where = machine.name() + "/" + alg + "/count=" +
                            std::to_string(count);
  if (got.clean() != want.clean()) {
    return where + ": clean() mismatch\n";
  }
  std::string failures;
  if (got.bound.lower_bound != want.bound.lower_bound) {
    failures += where + ": lower_bound " +
                std::to_string(got.bound.lower_bound) + " != " +
                std::to_string(want.bound.lower_bound) + "\n";
  }
  if (got.bound.critical_path != want.bound.critical_path) {
    failures += where + ": critical_path mismatch\n";
  }
  if (got.bound.channel_serialization != want.bound.channel_serialization) {
    failures += where + ": channel_serialization mismatch\n";
  }
  return failures;
}

TEST(BoundCache, EvaluateMatchesFreshAnalysisBitExactly) {
  // Registry x {hydra, lumi} x three payload sizes x {packed, spread}; the
  // size axis straddles the eager threshold, so cached evaluation must
  // re-derive eager flags, transfer floors and compute times — not reuse
  // the build payload's.
  const topo::Machine machines[] = {topo::hydra(4), topo::lumi(2)};
  const std::int64_t counts[] = {64, 2048, 65536};
  BoundCache cache;
  std::string failures;
  for (const auto& machine : machines) {
    for (const auto& info : simmpi::algorithm_registry()) {
      const std::int32_t p = pick_p(info, machine.cores());
      ASSERT_GT(p, 0) << info.name;
      for (const bool spread : {false, true}) {
        const auto cores =
            spread ? spread_cores(p, machine.cores()) : packed_cores(p);
        for (const std::int64_t count : counts) {
          failures += check_cached(cache, machine, info.name, p, count, cores);
        }
      }
    }
  }
  EXPECT_EQ(failures, "");
  // The payload axis must have been served from cached structures: the
  // three sizes of a (machine, algorithm, mapping) cell share one build
  // whenever the algorithm's schedule shape is size-independent.
  const BoundCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.misses, 0);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(BoundCache, ThreadedEvaluateMatchesFresh) {
  // TSan target: one shared cache, concurrent analyze() calls racing on
  // the same keys — results must still be bit-identical to fresh analysis.
  const auto machine = topo::hydra(4);
  const auto& registry = simmpi::algorithm_registry();
  const std::int64_t counts[] = {64, 2048, 65536};
  BoundCache cache;
  std::mutex mu;
  std::string failures;
  util::ThreadPool pool(4);
  pool.parallel_for(registry.size() * 3, [&](std::size_t i) {
    const auto& info = registry[i / 3];
    const std::int64_t count = counts[i % 3];
    const std::int32_t p = pick_p(info, machine.cores());
    const std::string f =
        check_cached(cache, machine, info.name, p, count, packed_cores(p));
    if (!f.empty()) {
      const std::lock_guard<std::mutex> lock(mu);
      failures += f;
    }
  });
  EXPECT_EQ(failures, "");
}

TEST(BoundCache, ReusesStructureAcrossPayloadSizes) {
  // Same schedule shape, different payload: the second call must be served
  // by evaluate() on the first call's structure.
  const auto machine = topo::hydra(4);
  BoundCache cache;
  const simmpi::Plan small = simmpi::compile_plan("allgather_ring", 4, 64);
  const simmpi::Plan large = simmpi::compile_plan("allgather_ring", 4, 128);
  const auto cores = packed_cores(4);
  const std::vector<JobBinding> jsmall = {
      {&small.schedule, &small.exec, small.repetitions, &cores, 0.0}};
  const std::vector<JobBinding> jlarge = {
      {&large.schedule, &large.exec, large.repetitions, &cores, 0.0}};
  bool reused = true;
  cache.analyze(machine, jsmall, &reused);
  EXPECT_FALSE(reused);  // cold: built.
  const Result got = cache.analyze(machine, jlarge, &reused);
  EXPECT_TRUE(reused);  // same structure, new payload.
  const Result want = fresh_bound(machine, jlarge);
  EXPECT_EQ(got.bound.lower_bound, want.bound.lower_bound);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(BoundCache, LruEvictionClearAndCapacity) {
  const auto machine = topo::hydra(4);
  BoundCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  const auto cores = packed_cores(4);
  std::vector<simmpi::Plan> plans;
  for (const std::string alg :
       {"allgather_ring", "alltoall_pairwise", "bcast_binomial"}) {
    plans.push_back(simmpi::compile_plan(alg, 4, 256));
  }
  for (const auto& plan : plans) {
    cache.analyze(machine,
                  {{&plan.schedule, &plan.exec, plan.repetitions, &cores, 0.0}});
  }
  // Three distinct structures through a 2-entry cache: one eviction.
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  // The evicted (least-recent) structure must rebuild — correctly.
  const std::vector<JobBinding> first = {{&plans[0].schedule, &plans[0].exec,
                                          plans[0].repetitions, &cores, 0.0}};
  bool reused = true;
  const Result got = cache.analyze(machine, first, &reused);
  EXPECT_FALSE(reused);
  EXPECT_EQ(got.bound.lower_bound, fresh_bound(machine, first).bound.lower_bound);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 0);
  cache.set_capacity(0);  // unbounded.
  EXPECT_EQ(cache.capacity(), 0u);
}

TEST(BoundCache, DefectiveBindingIsNeverCached) {
  // An unclean analysis (core out of range) must not enter the cache, and
  // must keep reporting its diagnostics on every call.
  const auto machine = topo::testbox();
  BoundCache cache;
  const simmpi::Plan plan = simmpi::compile_plan("allgather_ring", 4, 16);
  const std::vector<std::int64_t> bad = {0, 1, 2, 99};
  const std::vector<JobBinding> jobs = {
      {&plan.schedule, &plan.exec, plan.repetitions, &bad, 0.0}};
  for (int i = 0; i < 2; ++i) {
    const Result r = cache.analyze(machine, jobs);
    EXPECT_FALSE(r.clean());
    EXPECT_FALSE(r.report.diagnostics.empty());
  }
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(BoundCache, SurvivesSourcePlanDestruction) {
  // The structure deep-copies everything it needs at build time: evaluating
  // through a DIFFERENT plan object after the build plan is destroyed (the
  // PlanCache-eviction scenario) must still be safe and exact.
  const auto machine = topo::hydra(4);
  BoundCache cache;
  const auto cores = packed_cores(4);
  {
    const simmpi::Plan doomed = simmpi::compile_plan("allgather_ring", 4, 64);
    cache.analyze(machine, {{&doomed.schedule, &doomed.exec,
                             doomed.repetitions, &cores, 0.0}});
  }
  const simmpi::Plan fresh_plan = simmpi::compile_plan("allgather_ring", 4, 64);
  const std::vector<JobBinding> jobs = {{&fresh_plan.schedule, &fresh_plan.exec,
                                         fresh_plan.repetitions, &cores, 0.0}};
  bool reused = false;
  const Result got = cache.analyze(machine, jobs, &reused);
  EXPECT_TRUE(reused);
  EXPECT_EQ(got.bound.lower_bound,
            fresh_bound(machine, jobs).bound.lower_bound);
}

TEST(BindingChannelName, NamesFollowLevelAndKind) {
  const auto m = topo::testbox();  // ⟦2,2,4⟧: 2 nodes, 4 sockets, 16 cores.
  EXPECT_EQ(channel_name(m, 0), "node[0].egress");
  EXPECT_EQ(channel_name(m, 4), "node[1].ingress");
  EXPECT_EQ(channel_name(m, 3 * 2), "socket[0].egress");
  EXPECT_EQ(channel_name(m, 3 * 5 + 2), "socket[3].mem");
  EXPECT_EQ(channel_name(m, 3 * 6), "core[0].egress");
  EXPECT_EQ(channel_name(m, 3 * 21 + 1), "core[15].ingress");
  EXPECT_EQ(channel_name(m, -1), "channel[-1]");
}

}  // namespace
}  // namespace mr::verify::binding
