// ReorderPlan: the MPI deployment artifacts of §3.2.
#include "mixradix/mr/reorder.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "mixradix/util/expect.hpp"
#include "mixradix/util/strings.hpp"

namespace mr {
namespace {

TEST(ReorderPlan, ForwardAndPlacementAreInverse) {
  const ReorderPlan plan(Hierarchy{2, 2, 4}, parse_order("0-2-1"));
  for (std::int64_t r = 0; r < 16; ++r) {
    EXPECT_EQ(plan.placement(plan.new_rank(r)), r);
  }
}

TEST(ReorderPlan, SplitArgumentsRealiseTheReordering) {
  // MPI_Comm_split(color=0, key=new_rank): ranks in the new communicator
  // are assigned by ascending key, so process with old rank r gets exactly
  // new_rank(r). Emulate the split and check.
  const Hierarchy h{2, 2, 4};
  const ReorderPlan plan(h, parse_order("1-2-0"));
  std::vector<std::pair<std::int64_t, std::int64_t>> key_rank;
  for (std::int64_t r = 0; r < h.total(); ++r) {
    EXPECT_EQ(plan.split_color(), 0);
    key_rank.emplace_back(plan.split_key(r), r);
  }
  std::sort(key_rank.begin(), key_rank.end());
  for (std::int64_t new_rank = 0; new_rank < h.total(); ++new_rank) {
    const auto [key, old_rank] = key_rank[static_cast<std::size_t>(new_rank)];
    EXPECT_EQ(plan.new_rank(old_rank), new_rank);
  }
}

TEST(ReorderPlan, SubcommColorAndRank) {
  const Hierarchy h{2, 2, 4};
  const ReorderPlan plan(h, parse_order("2-1-0"));  // identity reordering
  // Blocks of 4: old rank 5 -> new rank 5 -> comm 1, comm-rank 1.
  EXPECT_EQ(plan.subcomm_color(5, 4), 1);
  EXPECT_EQ(plan.subcomm_rank(5, 4), 1);
  EXPECT_THROW(plan.subcomm_color(5, 3), invalid_argument);
}

TEST(ReorderPlan, RankfileFormat) {
  const Hierarchy h{2, 2, 2};
  const ReorderPlan plan(h, parse_order("0-1-2"));
  const std::string rankfile = plan.rankfile();
  std::istringstream in(rankfile);
  std::string line;
  int lines = 0;
  std::set<std::pair<int, int>> placements;
  while (std::getline(in, line)) {
    int rank = 0, node = 0, slot = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "rank %d=+n%d slot=%d", &rank, &node, &slot), 3)
        << line;
    EXPECT_EQ(rank, lines);
    EXPECT_TRUE(placements.insert({node, slot}).second) << "duplicate core";
    EXPECT_GE(node, 0);
    EXPECT_LT(node, 2);
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, 4);
    ++lines;
  }
  EXPECT_EQ(lines, 8);
  // Spot-check: new rank 1 under [0,1,2] lives on node 1, slot 0.
  EXPECT_NE(rankfile.find("rank 1=+n1 slot=0"), std::string::npos);
}

TEST(ReorderPlan, ValidatesInputs) {
  EXPECT_THROW(ReorderPlan(Hierarchy{2, 2}, parse_order("0-1-2")), invalid_argument);
  const ReorderPlan plan(Hierarchy{2, 2}, parse_order("1-0"));
  EXPECT_THROW(plan.new_rank(-1), invalid_argument);
  EXPECT_THROW(plan.new_rank(4), invalid_argument);
  EXPECT_THROW(plan.placement(4), invalid_argument);
}

}  // namespace
}  // namespace mr
