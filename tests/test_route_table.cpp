// RouteTable: per-machine interning of (src_core, dst_core) channel sets
// and path latencies for the timed-executor hot path. The table must be a
// pure cache — byte-for-byte the same answers as deriving the route per
// message with flow_channels()/path_latency() — on every machine preset.
#include "mixradix/simnet/route_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "mixradix/simnet/path.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simnet {
namespace {

std::vector<ChannelId> as_vector(const ChanSet& set) {
  return {set.ids.begin(), set.ids.begin() + set.count};
}

std::vector<ChannelId> derived(const topo::Machine& m, std::int64_t src,
                               std::int64_t dst) {
  std::vector<ChannelId> ids = flow_channels(m, src, dst);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<std::pair<std::string, topo::Machine>> presets() {
  std::vector<std::pair<std::string, topo::Machine>> machines;
  machines.emplace_back("testbox", topo::testbox());
  machines.emplace_back("hydra(4)", topo::hydra(4));
  machines.emplace_back("hydra_node", topo::hydra_node());
  machines.emplace_back("lumi(2)", topo::lumi(2));
  machines.emplace_back("lumi_node", topo::lumi_node());
  machines.emplace_back("generic(2,2,2)", topo::generic(2, 2, 2));
  return machines;
}

TEST(RouteTable, MatchesFlowChannelsOnEveryPreset) {
  for (const auto& [name, m] : presets()) {
    RouteTable table;
    table.bind(m);
    // Every core pair on the smaller machines; a strided sample on the
    // bigger ones keeps the test fast without losing level coverage.
    const std::int64_t n = m.cores();
    const std::int64_t stride = n > 64 ? 7 : 1;
    for (std::int64_t src = 0; src < n; src += stride) {
      for (std::int64_t dst = 0; dst < n; dst += stride) {
        const auto id = table.route(src, dst);
        EXPECT_EQ(as_vector(table.channels(id)), derived(m, src, dst))
            << name << " route " << src << " -> " << dst;
        EXPECT_EQ(table.latency(id), m.path_latency(src, dst))
            << name << " latency " << src << " -> " << dst;
      }
    }
  }
}

TEST(RouteTable, InternsOncePerPair) {
  const auto m = topo::testbox();
  RouteTable table;
  table.bind(m);
  const auto a = table.route(0, 5);
  const auto b = table.route(0, 5);
  const auto c = table.route(5, 0);  // direction matters: distinct route
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.stats().misses, 2);
  EXPECT_EQ(table.stats().hits, 1);
}

TEST(RouteTable, SelfRouteIsEmptyWithZeroLatency) {
  const auto m = topo::testbox();
  RouteTable table;
  table.bind(m);
  const auto id = table.route(3, 3);
  EXPECT_EQ(table.channels(id).count, 0);
  EXPECT_EQ(table.latency(id), m.path_latency(3, 3));
}

TEST(RouteTable, ClearKeepsBindingAndCounters) {
  const auto m = topo::testbox();
  RouteTable table;
  table.bind(m);
  (void)table.route(0, 1);
  (void)table.route(0, 1);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().hits, 1);  // counters survive clear()
  const auto id = table.route(0, 1);  // still bound: re-derives
  EXPECT_EQ(as_vector(table.channels(id)), derived(m, 0, 1));
  EXPECT_EQ(table.stats().misses, 2);
}

TEST(RouteTable, RebindEquivalentKeepsInternedRoutes) {
  const auto m1 = topo::testbox();
  const auto m2 = topo::testbox();  // distinct instance, same parameters
  RouteTable table;
  table.bind(m1);
  const auto id = table.route(0, 9);
  table.rebind_equivalent(m2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.route(0, 9), id);  // served from the table
  EXPECT_EQ(table.stats().hits, 1);
  EXPECT_EQ(as_vector(table.channels(id)), derived(m2, 0, 9));
}

TEST(RouteTable, ValidatesUseBeforeBindAndCoreRange) {
  RouteTable unbound;
  EXPECT_THROW(unbound.route(0, 1), invalid_argument);
  const auto m = topo::testbox();
  RouteTable table;
  table.bind(m);
  EXPECT_THROW(table.route(-1, 0), invalid_argument);
  EXPECT_THROW(table.route(0, m.cores()), invalid_argument);
}

}  // namespace
}  // namespace mr::simnet
