// Machine model and host discovery.
#include "mixradix/topo/machine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "mixradix/topo/discover.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::topo {
namespace {

TEST(Machine, PresetShapes) {
  EXPECT_EQ(hydra(16).hierarchy(), Hierarchy({16, 2, 2, 8}));
  EXPECT_EQ(hydra(16).cores(), 512);
  EXPECT_EQ(hydra(32).cores(), 1024);
  EXPECT_EQ(lumi(16).hierarchy(), Hierarchy({16, 2, 4, 2, 8}));
  EXPECT_EQ(lumi(16).cores(), 2048);
  EXPECT_EQ(lumi_node().hierarchy(), Hierarchy({2, 4, 2, 8}));
  EXPECT_EQ(testbox().hierarchy(), Hierarchy({2, 2, 4}));
  EXPECT_EQ(hydra_node().hierarchy(), Hierarchy({2, 2, 8}));
}

TEST(Machine, ComponentOf) {
  const Machine m = testbox();  // [2, 2, 4]
  EXPECT_EQ(m.component_of(0, 0), 0);   // node of core 0
  EXPECT_EQ(m.component_of(8, 0), 1);   // node of core 8
  EXPECT_EQ(m.component_of(7, 1), 1);   // socket of core 7
  EXPECT_EQ(m.component_of(15, 2), 15); // core of core 15
  EXPECT_THROW(m.component_of(16, 0), invalid_argument);
  EXPECT_THROW(m.component_of(0, 3), invalid_argument);
}

TEST(Machine, ComponentIdsAreDenseAndUnique) {
  const Machine m = testbox();
  EXPECT_EQ(m.total_components(), 2 + 4 + 16);
  std::vector<bool> seen(static_cast<std::size_t>(m.total_components()), false);
  for (int level = 0; level < m.depth(); ++level) {
    for (std::int64_t comp = 0; comp < m.hierarchy().components_at(level); ++comp) {
      const std::int64_t id = m.component_id(level, comp);
      ASSERT_GE(id, 0);
      ASSERT_LT(id, m.total_components());
      ASSERT_FALSE(seen[static_cast<std::size_t>(id)]);
      seen[static_cast<std::size_t>(id)] = true;
    }
  }
}

TEST(Machine, NicScaleMultipliesNodeBandwidthOnly) {
  const Machine one = hydra(16, 1);
  const Machine two = hydra(16, 2);
  EXPECT_DOUBLE_EQ(two.level(0).link_bandwidth, 2 * one.level(0).link_bandwidth);
  for (int k = 1; k < one.depth(); ++k) {
    EXPECT_DOUBLE_EQ(two.level(k).link_bandwidth, one.level(k).link_bandwidth);
  }
  const Machine scaled = one.with_nic_scale(2.0);
  EXPECT_DOUBLE_EQ(scaled.level(0).link_bandwidth, two.level(0).link_bandwidth);
}

TEST(Machine, WithNodesChangesOuterRadix) {
  const Machine m = hydra(16).with_nodes(32);
  EXPECT_EQ(m.cores(), 1024);
  EXPECT_EQ(m.level(0).radix, 32);
  EXPECT_THROW(hydra(16).with_nodes(1), invalid_argument);
}

TEST(Machine, PathLatencyIsSymmetricAndMonotone) {
  const Machine m = lumi(4);
  EXPECT_DOUBLE_EQ(m.path_latency(0, 100), m.path_latency(100, 0));
  // Crossing more levels never reduces latency.
  const double same_l3 = m.path_latency(0, 1);
  const double same_numa = m.path_latency(0, 9);
  const double same_socket = m.path_latency(0, 17);
  const double same_node = m.path_latency(0, 65);
  const double cross_node = m.path_latency(0, 129);
  EXPECT_LT(same_l3, same_numa);
  EXPECT_LT(same_numa, same_socket);
  EXPECT_LT(same_socket, same_node);
  EXPECT_LT(same_node, cross_node);
}

TEST(Machine, DescribeMentionsEveryLevel) {
  const std::string text = lumi(16).describe();
  for (const char* level : {"node", "socket", "numa", "l3", "core"}) {
    EXPECT_NE(text.find(level), std::string::npos) << level;
  }
}

TEST(Machine, RejectsBadSpecs) {
  EXPECT_THROW(Machine("bad", {{"node", 2, 0.0, 0.0, 0.0}}), invalid_argument);
  EXPECT_THROW(Machine("bad", {{"node", 2, -1.0, 1e9, 0.0}}), invalid_argument);
  EXPECT_THROW(Machine("bad", {{"node", 2, 0.0, 1e9, -1.0}}), invalid_argument);
  EXPECT_THROW(Machine("bad", {}), invalid_argument);
  EXPECT_THROW(hydra(4, 3), invalid_argument);
}

// Capture the diagnostic text of a rejected construction.
template <typename Fn>
std::string rejection_message(Fn&& fn) {
  try {
    fn();
  } catch (const invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(Machine, BadLevelDiagnosticsAreLocated) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto levels = testbox().levels();

  levels[1].radix = 1;
  std::string msg = rejection_message([&] { Machine("bad", levels); });
  EXPECT_NE(msg.find("level 1 ('socket')"), std::string::npos) << msg;
  EXPECT_NE(msg.find("radix"), std::string::npos) << msg;
  EXPECT_NE(msg.find("got 1"), std::string::npos) << msg;

  levels = testbox().levels();
  levels[2].link_bandwidth = kNaN;
  msg = rejection_message([&] { Machine("bad", levels); });
  EXPECT_NE(msg.find("level 2 ('core')"), std::string::npos) << msg;
  EXPECT_NE(msg.find("link bandwidth"), std::string::npos) << msg;
  EXPECT_NE(msg.find("nan"), std::string::npos) << msg;

  levels = testbox().levels();
  levels[0].link_latency = kInf;
  msg = rejection_message([&] { Machine("bad", levels); });
  EXPECT_NE(msg.find("level 0 ('node')"), std::string::npos) << msg;
  EXPECT_NE(msg.find("link latency"), std::string::npos) << msg;

  levels = testbox().levels();
  levels[1].mem_bandwidth = -4.0;
  msg = rejection_message([&] { Machine("bad", levels); });
  EXPECT_NE(msg.find("level 1 ('socket')"), std::string::npos) << msg;
  EXPECT_NE(msg.find("memory bandwidth"), std::string::npos) << msg;
}

TEST(Machine, BadCostAndFlopsDiagnosticsNameTheField) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  const auto levels = testbox().levels();

  MessagingCosts costs;
  costs.send_overhead = kNaN;
  std::string msg = rejection_message([&] { Machine("bad", levels, costs); });
  EXPECT_NE(msg.find("send_overhead"), std::string::npos) << msg;

  costs = MessagingCosts{};
  costs.recv_overhead = -1.0;
  msg = rejection_message([&] { Machine("bad", levels, costs); });
  EXPECT_NE(msg.find("recv_overhead"), std::string::npos) << msg;
  EXPECT_NE(msg.find("-1"), std::string::npos) << msg;

  costs = MessagingCosts{};
  costs.base_latency = -2e-7;
  msg = rejection_message([&] { Machine("bad", levels, costs); });
  EXPECT_NE(msg.find("base_latency"), std::string::npos) << msg;

  costs = MessagingCosts{};
  costs.eager_threshold = -1;
  msg = rejection_message([&] { Machine("bad", levels, costs); });
  EXPECT_NE(msg.find("eager_threshold"), std::string::npos) << msg;

  costs = MessagingCosts{};
  costs.reduce_seconds_per_byte = kNaN;
  msg = rejection_message([&] { Machine("bad", levels, costs); });
  EXPECT_NE(msg.find("reduce_seconds_per_byte"), std::string::npos) << msg;

  msg = rejection_message([&] { Machine("bad", levels, {}, 0.0); });
  EXPECT_NE(msg.find("core_flops"), std::string::npos) << msg;
  msg = rejection_message([&] { Machine("bad", levels, {}, kNaN); });
  EXPECT_NE(msg.find("core_flops"), std::string::npos) << msg;
}

TEST(Machine, VariantBuildersRevalidate) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  const Machine base = testbox();

  std::string msg = rejection_message([&] { base.with_nodes(1); });
  EXPECT_NE(msg.find("at least two nodes"), std::string::npos) << msg;
  EXPECT_NE(msg.find("got 1"), std::string::npos) << msg;

  msg = rejection_message([&] { base.with_nic_scale(0.0); });
  EXPECT_NE(msg.find("NIC scale"), std::string::npos) << msg;
  EXPECT_THROW(base.with_nic_scale(kNaN), invalid_argument);
  EXPECT_THROW(base.with_nic_scale(-2.0), invalid_argument);

  MessagingCosts costs;
  costs.send_overhead = kNaN;
  EXPECT_THROW(base.with_costs(costs), invalid_argument);

  // The good paths still work and preserve the machine identity.
  EXPECT_EQ(base.with_nodes(4).cores(), 32);
  EXPECT_DOUBLE_EQ(base.with_nic_scale(2.0).level(0).link_bandwidth, 2e9);
}

// Discovery against a synthetic sysfs tree.
class DiscoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("mixradix-sysfs-" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void add_cpu(int cpu, int package, int core, int numa) {
    const auto topo = root_ / "devices/system/cpu" / ("cpu" + std::to_string(cpu)) /
                      "topology";
    std::filesystem::create_directories(topo);
    std::ofstream(topo / "physical_package_id") << package;
    std::ofstream(topo / "core_id") << core;
    const auto node = root_ / "devices/system/node" / ("node" + std::to_string(numa));
    std::filesystem::create_directories(node / ("cpu" + std::to_string(cpu)));
  }

  std::filesystem::path root_;
};

TEST_F(DiscoverTest, HomogeneousTwoSocketMachine) {
  // 2 packages x 2 NUMA x 4 cores, with SMT siblings sharing core ids.
  int cpu = 0;
  for (int pkg = 0; pkg < 2; ++pkg) {
    for (int numa = 0; numa < 2; ++numa) {
      for (int core = 0; core < 4; ++core) {
        add_cpu(cpu++, pkg, numa * 4 + core, pkg * 2 + numa);
      }
    }
  }
  const auto h = topo::discover_host(root_.string());
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(*h, Hierarchy({2, 2, 4}));
}

TEST_F(DiscoverTest, HeterogeneousMachineIsRejected) {
  // Package 0 has 4 cores, package 1 has 2: §3.2's constraint 2.
  for (int core = 0; core < 4; ++core) add_cpu(core, 0, core, 0);
  for (int core = 0; core < 2; ++core) add_cpu(4 + core, 1, core, 1);
  EXPECT_FALSE(topo::discover_host(root_.string()).has_value());
}

TEST_F(DiscoverTest, MissingSysfsReturnsNothing) {
  EXPECT_FALSE(topo::discover_host((root_ / "nope").string()).has_value());
}

TEST_F(DiscoverTest, SingleSocketCollapsesLevel) {
  for (int numa = 0; numa < 2; ++numa) {
    for (int core = 0; core < 4; ++core) {
      add_cpu(numa * 4 + core, 0, numa * 4 + core, numa);
    }
  }
  const auto h = topo::discover_host(root_.string());
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(*h, Hierarchy({2, 4}));  // socket level dropped
}

}  // namespace
}  // namespace mr::topo
