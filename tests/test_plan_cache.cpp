// PlanCache tests: exactly-once compilation under contention, shared
// results, exception caching, and the sweep determinism guarantee (cached
// and bypass runs produce byte-identical CSV at any thread count).
#include "mixradix/simmpi/plan_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "mixradix/harness/microbench.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/verify/verify.hpp"

namespace mr::simmpi {
namespace {

TEST(PlanCache, CompilesOnceAndSharesThePlan) {
  PlanCache cache;
  const PlanKey key{"alltoall_bruck", 8, 128, 0, 2};
  const auto first = cache.get(key);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->algorithm, "alltoall_bruck");
  EXPECT_EQ(first->nranks(), 8);
  EXPECT_EQ(first->repetitions, 2);
  const auto second = cache.get(key);
  EXPECT_EQ(first.get(), second.get());  // same object, not a recompile

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(PlanCache, DistinctKeysAreDistinctEntries) {
  PlanCache cache;
  const auto a = cache.get(PlanKey{"allgather_ring", 4, 10, 0, 1});
  const auto b = cache.get(PlanKey{"allgather_ring", 4, 10, 0, 2});
  const auto c = cache.get(PlanKey{"allgather_ring", 4, 11, 0, 1});
  const auto d = cache.get(PlanKey{"allgather_ring", 5, 10, 0, 1});
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().entries, 4u);
}

TEST(PlanCache, FailuresAreCachedAndRethrown) {
  PlanCache cache;
  const PlanKey bad{"no_such_algorithm", 4, 1, 0, 1};
  EXPECT_THROW(cache.get(bad), mr::invalid_argument);
  // The failed entry stays: the second request rethrows without a second
  // compile attempt (misses counts compilations started).
  EXPECT_THROW(cache.get(bad), mr::invalid_argument);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);

  const PlanKey unsupported{"allgather_recursive_doubling", 6, 8, 0, 1};
  EXPECT_THROW(cache.get(unsupported), mr::invalid_argument);
}

TEST(PlanCache, ClearResetsEntriesAndCounters) {
  PlanCache cache;
  const PlanKey key{"barrier_dissemination", 4, 1, 0, 1};
  (void)cache.get(key);
  (void)cache.get(key);
  cache.clear();
  const auto empty = cache.stats();
  EXPECT_EQ(empty.hits, 0u);
  EXPECT_EQ(empty.misses, 0u);
  EXPECT_EQ(empty.entries, 0u);
  (void)cache.get(key);
  EXPECT_EQ(cache.stats().misses, 1u);
}

// The acceptance criterion of the refactor: hammering one key from many
// threads compiles (and, in verifying builds, analyzes) exactly once, and
// every thread receives the same plan object. Run under
// -DMIXRADIX_SAN=thread this doubles as the data-race check.
TEST(PlanCache, ConcurrentGetsCompileExactlyOnce) {
  PlanCache cache;
  constexpr int kThreads = 8;
  constexpr int kGetsPerThread = 25;
  const PlanKey key{"alltoall_pairwise", 16, 256, 0, 2};

  const std::uint64_t analyzes_before = verify::analyze_call_count();
  std::atomic<int> ready{0};
  std::vector<const Plan*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Rendezvous so the first get() races from every thread at once.
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      std::shared_ptr<const Plan> plan;
      for (int i = 0; i < kGetsPerThread; ++i) plan = cache.get(key);
      seen[static_cast<std::size_t>(t)] = plan.get();
    });
  }
  for (auto& thread : threads) thread.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits,
            static_cast<std::uint64_t>(kThreads) * kGetsPerThread - 1u);
  EXPECT_EQ(stats.entries, 1u);
#ifdef MIXRADIX_VERIFY_SCHEDULES
  // One compile == one static analysis, even with 8 threads racing.
  EXPECT_EQ(verify::analyze_call_count() - analyzes_before, 1u);
#else
  EXPECT_EQ(verify::analyze_call_count(), analyzes_before);
#endif
}

TEST(PlanCache, ConcurrentDistinctKeysAllCompile) {
  PlanCache cache;
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int c = 1; c <= 4; ++c) {
        const auto plan = cache.get(
            PlanKey{"allreduce_ring", 4 + t, std::int64_t{16} * c, 0, 1});
        EXPECT_EQ(plan->nranks(), 4 + t);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.stats().entries, static_cast<std::size_t>(kThreads) * 4);
  EXPECT_EQ(cache.stats().misses, static_cast<std::uint64_t>(kThreads) * 4);
}

// ---- Sweep determinism: cache on vs bypassed ------------------------------

std::string sweep_csv(bool use_cache, int threads) {
  harness::SweepConfig config;
  config.orders = {parse_order("0-1-2-3"), parse_order("3-2-1-0"),
                   parse_order("1-3-2-0")};
  config.sizes = {1 << 18, 1 << 20};
  config.comm_size = 16;
  config.collective = Collective::Alltoall;
  config.repetitions = 2;
  config.threads = threads;
  config.use_plan_cache = use_cache;
  const auto machine = topo::hydra(2);
  config.all_comms = false;
  const auto single = run_sweep(machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(machine, config);
  std::ostringstream csv;
  harness::write_figure_csv(csv, "determinism", single, simultaneous);
  return csv.str();
}

TEST(PlanCache, SweepCsvIdenticalWithAndWithoutCacheSerial) {
  const std::string cached = sweep_csv(/*use_cache=*/true, /*threads=*/1);
  const std::string bypass = sweep_csv(/*use_cache=*/false, /*threads=*/1);
  EXPECT_FALSE(cached.empty());
  EXPECT_EQ(cached, bypass);
}

TEST(PlanCache, SweepCsvIdenticalWithAndWithoutCacheThreaded) {
  const std::string cached = sweep_csv(/*use_cache=*/true, /*threads=*/4);
  const std::string bypass = sweep_csv(/*use_cache=*/false, /*threads=*/4);
  const std::string serial = sweep_csv(/*use_cache=*/true, /*threads=*/1);
  EXPECT_EQ(cached, bypass);
  EXPECT_EQ(cached, serial);
}

// Sweeping through the shared cache analyzes each distinct plan key at
// most once, no matter how many (order, size, scenario) points replay it.
TEST(PlanCache, SharedSweepAnalyzesAtMostOncePerKey) {
  PlanCache::shared().clear();
  const std::uint64_t analyzes_before = verify::analyze_call_count();
  (void)sweep_csv(/*use_cache=*/true, /*threads=*/4);
  (void)sweep_csv(/*use_cache=*/true, /*threads=*/1);
  const std::uint64_t delta = verify::analyze_call_count() - analyzes_before;
  const auto stats = PlanCache::shared().stats();
  EXPECT_GE(stats.hits, 1u);
#ifdef MIXRADIX_VERIFY_SCHEDULES
  EXPECT_LE(delta, stats.misses);  // one analysis per compile, none on hits
#else
  EXPECT_EQ(delta, 0u);
#endif
}

TEST(PlanCacheLru, EvictsLeastRecentlyRequestedAtCapacity) {
  PlanCache cache(/*capacity=*/2);
  const PlanKey a{"alltoall_bruck", 8, 64, 0, 1};
  const PlanKey b{"allgather_ring", 8, 64, 0, 1};
  const PlanKey c{"allreduce_ring", 8, 64, 0, 1};
  (void)cache.get(a);
  (void)cache.get(b);
  (void)cache.get(a);  // touch: b is now the least recent.
  (void)cache.get(c);  // evicts b.
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 1u);

  // a survived the eviction (it was touched), b did not.
  (void)cache.get(a);
  EXPECT_EQ(cache.stats().hits, 2u);
  (void)cache.get(b);  // recompiles — a fresh miss, evicting c.
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(PlanCacheLru, RecompiledPlanIsEquivalent) {
  PlanCache cache(/*capacity=*/1);
  const PlanKey a{"alltoall_bruck", 8, 128, 0, 2};
  const PlanKey b{"allgather_ring", 8, 128, 0, 2};
  const auto first = cache.get(a);
  (void)cache.get(b);  // evicts a.
  const auto second = cache.get(a);  // recompiled, not the same object...
  EXPECT_NE(first.get(), second.get());
  // ...but the evicted shared_ptr stays valid, and the recompile is
  // byte-equivalent where it matters.
  EXPECT_EQ(first->algorithm, second->algorithm);
  EXPECT_EQ(first->nranks(), second->nranks());
  EXPECT_EQ(first->repetitions, second->repetitions);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(PlanCacheLru, SetCapacityShrinksOldestFirstAndZeroUnbounds) {
  PlanCache cache;
  const PlanKey a{"alltoall_bruck", 8, 64, 0, 1};
  const PlanKey b{"allgather_ring", 8, 64, 0, 1};
  const PlanKey c{"allreduce_ring", 8, 64, 0, 1};
  (void)cache.get(a);
  (void)cache.get(b);
  (void)cache.get(c);
  EXPECT_EQ(cache.stats().entries, 3u);
  cache.set_capacity(1);
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 2u);
  (void)cache.get(c);  // the most recent key survived.
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.set_capacity(0);  // back to unbounded: no further evictions.
  (void)cache.get(a);
  (void)cache.get(b);
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 2u);
}

}  // namespace
}  // namespace mr::simmpi
