// Fig. 2 golden tests: the Slurm --distribution value equivalent to every
// order on the ⟦2,2,4⟧ example machine, including the "Not possible" case.
#include "mixradix/slurm/distribution.hpp"

#include <gtest/gtest.h>

#include "mixradix/mr/decompose.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::slurm {
namespace {

TEST(Distribution, ParseAndPrint) {
  EXPECT_EQ(Distribution::parse("block:block").to_string(), "block:block");
  EXPECT_EQ(Distribution::parse("block:cyclic").to_string(), "block:cyclic");
  EXPECT_EQ(Distribution::parse("cyclic:block").to_string(), "cyclic:block");
  EXPECT_EQ(Distribution::parse("cyclic:cyclic").to_string(), "cyclic:cyclic");
  EXPECT_EQ(Distribution::parse("plane=4").to_string(), "plane=4");
  EXPECT_EQ(Distribution::parse("block").to_string(), "block:block");
  // Slurm's fcyclic maps to our cyclic socket policy.
  EXPECT_EQ(Distribution::parse("block:fcyclic").to_string(), "block:cyclic");
}

TEST(Distribution, ParseRejectsJunk) {
  EXPECT_THROW(Distribution::parse("blocky"), invalid_argument);
  EXPECT_THROW(Distribution::parse("block:cyclic:block"), invalid_argument);
  EXPECT_THROW(Distribution::parse("plane=0"), invalid_argument);
  EXPECT_THROW(Distribution::parse("plane=4:cyclic"), invalid_argument);
}

TEST(MachineView, CollapsesDeepHierarchies) {
  const auto hydra = MachineView::from_hierarchy(Hierarchy({16, 2, 2, 8}));
  EXPECT_EQ(hydra.nodes, 16);
  EXPECT_EQ(hydra.sockets_per_node, 2);
  EXPECT_EQ(hydra.cores_per_socket, 16);  // fake level folded back in
  EXPECT_EQ(hydra.total_cores(), 512);

  const auto flat = MachineView::from_hierarchy(Hierarchy({4, 8}));
  EXPECT_EQ(flat.sockets_per_node, 1);
  EXPECT_EQ(flat.cores_per_socket, 8);
}

TEST(TaskMap, BlockBlockIsIdentity) {
  const MachineView m{2, 2, 4};
  const auto map = task_map(m, Distribution::parse("block:block"));
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(map[static_cast<std::size_t>(i)], i);
  }
}

TEST(TaskMap, CyclicCyclicRoundRobins) {
  const MachineView m{2, 2, 4};
  const auto map = task_map(m, Distribution::parse("cyclic:cyclic"));
  EXPECT_EQ(map[0], 0);   // node 0, socket 0, core 0
  EXPECT_EQ(map[1], 8);   // node 1, socket 0, core 0
  EXPECT_EQ(map[2], 4);   // node 0, socket 1, core 0
  EXPECT_EQ(map[3], 12);  // node 1, socket 1, core 0
  EXPECT_EQ(map[4], 1);   // node 0, socket 0, core 1
}

// Fig. 2 captions: the --distribution value below each order.
struct Fig2Row {
  const char* order;
  const char* distribution;  // nullptr = "Not possible"
};

class Fig2 : public ::testing::TestWithParam<Fig2Row> {};

TEST_P(Fig2, DistributionEquivalence) {
  const Hierarchy h{2, 2, 4};
  const Order order = parse_order(GetParam().order);
  const auto found = equivalent_distribution(h, order);
  if (GetParam().distribution == nullptr) {
    EXPECT_FALSE(found.has_value());
  } else {
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->to_string(), GetParam().distribution);
  }
}

TEST_P(Fig2, OrderEquivalenceIsTheInverse) {
  const Hierarchy h{2, 2, 4};
  if (GetParam().distribution == nullptr) return;
  const auto order = equivalent_order(h, Distribution::parse(GetParam().distribution));
  ASSERT_TRUE(order.has_value());
  // The distribution's map must equal the claimed order's map (several
  // orders can tie; compare maps, not the orders themselves).
  EXPECT_EQ(placement_of_new_ranks(h, *order),
            placement_of_new_ranks(h, parse_order(GetParam().order)));
}

INSTANTIATE_TEST_SUITE_P(
    PaperCaptions, Fig2,
    ::testing::Values(Fig2Row{"0-1-2", "cyclic:cyclic"},
                      Fig2Row{"0-2-1", "cyclic:block"},
                      Fig2Row{"1-0-2", nullptr},  // "Not possible"
                      Fig2Row{"1-2-0", "block:cyclic"},
                      Fig2Row{"2-0-1", "plane=4"},
                      Fig2Row{"2-1-0", "block:block"}));

// Fig. 2's full reordered-rank layouts, read row by row off the figure:
// position = physical core (node-major), value = reordered rank.
TEST(Fig2Layouts, AllSixOrders) {
  const Hierarchy h{2, 2, 4};
  const auto layout = [&](const char* order) {
    return reorder_all_ranks(h, parse_order(order));
  };
  using V = std::vector<std::int64_t>;
  EXPECT_EQ(layout("0-1-2"),
            (V{0, 4, 8, 12, 2, 6, 10, 14, 1, 5, 9, 13, 3, 7, 11, 15}));
  EXPECT_EQ(layout("0-2-1"),
            (V{0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15}));
  EXPECT_EQ(layout("1-0-2"),
            (V{0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15}));
  EXPECT_EQ(layout("1-2-0"),
            (V{0, 2, 4, 6, 1, 3, 5, 7, 8, 10, 12, 14, 9, 11, 13, 15}));
  EXPECT_EQ(layout("2-0-1"),
            (V{0, 1, 2, 3, 8, 9, 10, 11, 4, 5, 6, 7, 12, 13, 14, 15}));
  EXPECT_EQ(layout("2-1-0"),
            (V{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}));
}

// The paper's defaults: Hydra's Slurm default is block:cyclic == [1,3,2,0]
// (Fig. 3 legend); LUMI's is block:block == identity ([4,3,2,1,0], Fig. 5).
TEST(Defaults, HydraDefaultIsBlockCyclic) {
  const Hierarchy hydra{16, 2, 2, 8};
  const auto dist = equivalent_distribution(hydra, parse_order("1-3-2-0"));
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ(dist->to_string(), "block:cyclic");
}

TEST(Defaults, LumiDefaultIsBlockBlock) {
  const Hierarchy lumi{16, 2, 4, 2, 8};
  const auto dist = equivalent_distribution(lumi, parse_order("4-3-2-1-0"));
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ(dist->to_string(), "block:block");
}

TEST(TaskMap, PlaneSizeValidation) {
  const MachineView m{2, 2, 4};
  EXPECT_THROW(task_map(m, Distribution{NodeDist::Plane, SocketDist::Block, 3}),
               invalid_argument);
  EXPECT_THROW(task_map(m, Distribution{NodeDist::Plane, SocketDist::Block, 0}),
               invalid_argument);
}

TEST(TaskMap, EveryDistributionIsAPermutation) {
  const MachineView m{4, 2, 8};
  std::vector<Distribution> dists;
  for (const char* s : {"block:block", "block:cyclic", "cyclic:block",
                        "cyclic:cyclic", "plane=2", "plane=4", "plane=8"}) {
    dists.push_back(Distribution::parse(s));
  }
  for (const auto& d : dists) {
    auto map = task_map(m, d);
    std::sort(map.begin(), map.end());
    for (std::int64_t i = 0; i < m.total_cores(); ++i) {
      ASSERT_EQ(map[static_cast<std::size_t>(i)], i) << d.to_string();
    }
  }
}

}  // namespace
}  // namespace mr::slurm
