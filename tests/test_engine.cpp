// mr::Engine — scoped execution contexts. Under test:
//  * SHARED COMPAT — Engine::shared() wraps the process singletons, and
//    every backward-compat shim produces byte-identical output to the
//    Engine-first overload it routes through;
//  * SCOPED STATE — plan-cache capacity and contents, workspace pools and
//    stats never leak between engines;
//  * WORKSPACE POOL — leases check out LIFO, reuse memory, and return on
//    destruction;
//  * MULTI-ENGINE — two engines with different machines and cache caps
//    running interleaved on overlapping pool threads produce output
//    byte-identical to serial single-engine runs, with disjoint stats.
//    Run under -DMIXRADIX_SAN=thread this doubles as the race check.
#include "mixradix/engine/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mixradix/harness/microbench.hpp"
#include "mixradix/mr/equivalence.hpp"
#include "mixradix/simmpi/plan.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/tune/report.hpp"
#include "mixradix/tune/search.hpp"

namespace mr {
namespace {

harness::SweepConfig small_sweep(int threads) {
  harness::SweepConfig config;
  config.orders = {parse_order("0-1-2-3"), parse_order("3-2-1-0"),
                   parse_order("1-3-2-0")};
  config.sizes = {1 << 16, 1 << 18};
  config.comm_size = 16;
  config.collective = simmpi::Collective::Alltoall;
  config.repetitions = 2;
  config.threads = threads;
  return config;
}

std::string sweep_csv(Engine& engine, const topo::Machine& machine,
                      harness::SweepConfig config) {
  config.all_comms = false;
  const auto single = run_sweep(engine, machine, config);
  config.all_comms = true;
  const auto simultaneous = run_sweep(engine, machine, config);
  std::ostringstream csv;
  harness::write_figure_csv(csv, "engine", single, simultaneous);
  return csv.str();
}

tune::TuneQuery small_query(std::int64_t bytes, int threads) {
  tune::TuneQuery query;
  query.comm_sizes = {16};
  query.total_bytes = {bytes};
  query.k = 3;
  query.threads = threads;
  return query;
}

std::string tune_json(Engine& engine, const topo::Machine& machine,
                      const tune::TuneQuery& query) {
  std::ostringstream json;
  tune::write_json(json, tune::tune(engine, machine, query));
  return json.str();
}

TEST(Engine, SharedWrapsTheProcessSingletons) {
  Engine& shared = Engine::shared();
  EXPECT_EQ(&shared, &Engine::shared());
  EXPECT_EQ(&shared.plan_cache(), &simmpi::PlanCache::shared());
  EXPECT_EQ(&shared.thread_pool(), &util::ThreadPool::shared());
}

TEST(Engine, PlanCacheCapacityIsScopedToTheEngine) {
  EngineConfig config;
  config.plan_cache_capacity = 1;
  Engine bounded(config);
  Engine unbounded;
  EXPECT_EQ(bounded.config().plan_cache_capacity, 1u);

  const simmpi::PlanKey a{"alltoall_bruck", 8, 64, 0, 1};
  const simmpi::PlanKey b{"allgather_ring", 8, 64, 0, 1};
  (void)bounded.plan_cache().get(a);
  (void)bounded.plan_cache().get(b);  // evicts a: capacity 1.
  (void)unbounded.plan_cache().get(a);
  (void)unbounded.plan_cache().get(b);

  const auto bounded_stats = bounded.plan_cache().stats();
  EXPECT_EQ(bounded_stats.entries, 1u);
  EXPECT_EQ(bounded_stats.evictions, 1u);
  const auto unbounded_stats = unbounded.plan_cache().stats();
  EXPECT_EQ(unbounded_stats.entries, 2u);
  EXPECT_EQ(unbounded_stats.evictions, 0u);

  // A third engine starts cold: nothing leaked through shared state.
  Engine fresh;
  EXPECT_EQ(fresh.plan_cache().stats().entries, 0u);
}

TEST(Engine, WorkspacePoolChecksOutLifoAndReusesMemory) {
  Engine engine;
  simmpi::SimWorkspace* first = nullptr;
  {
    Engine::WorkspaceLease lease = engine.workspace();
    ASSERT_NE(lease.get(), nullptr);
    first = lease.get();
    // A second simultaneous lease is a distinct workspace.
    Engine::WorkspaceLease other = engine.workspace();
    ASSERT_NE(other.get(), nullptr);
    EXPECT_NE(other.get(), first);
    const auto stats = engine.stats();
    EXPECT_EQ(stats.workspace_checkouts, 2);
    EXPECT_EQ(stats.workspaces_created, 2);
    EXPECT_EQ(stats.workspaces_idle, 0);
  }
  EXPECT_EQ(engine.stats().workspaces_idle, 2);

  // LIFO: the next checkout returns the most recently released workspace
  // (warm interned routes), not a new allocation.
  Engine::WorkspaceLease lease = engine.workspace();
  EXPECT_EQ(lease.get(), first);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.workspace_checkouts, 3);
  EXPECT_EQ(stats.workspaces_created, 2);
  EXPECT_EQ(stats.workspaces_idle, 1);
}

TEST(Engine, WorkspaceLeaseMovesAndReleasesOnce) {
  Engine engine;
  Engine::WorkspaceLease empty;
  EXPECT_EQ(empty.get(), nullptr);

  Engine::WorkspaceLease lease = engine.workspace();
  simmpi::SimWorkspace* const workspace = lease.get();
  Engine::WorkspaceLease moved = std::move(lease);
  EXPECT_EQ(moved.get(), workspace);
  EXPECT_EQ(lease.get(), nullptr);  // NOLINT: moved-from is empty.
  empty = std::move(moved);
  EXPECT_EQ(empty.get(), workspace);
  EXPECT_EQ(engine.stats().workspaces_idle, 0);  // still checked out.
  empty = Engine::WorkspaceLease();
  EXPECT_EQ(engine.stats().workspaces_idle, 1);  // returned exactly once.
  EXPECT_EQ(engine.stats().workspace_checkouts, 1);
}

TEST(Engine, SweepRecordsRunCountersAndResetClears) {
  Engine engine;
  const auto machine = topo::hydra(2);
  auto config = small_sweep(/*threads=*/1);
  config.all_comms = false;
  (void)run_sweep(engine, machine, config);

  const auto stats = engine.stats();
  const auto points =
      static_cast<std::int64_t>(config.orders.size() * config.sizes.size());
  EXPECT_EQ(stats.sim_runs, points);
  EXPECT_GT(stats.events_processed, 0);
  EXPECT_GT(stats.flow_completions, 0);
  EXPECT_GT(stats.plan_cache.misses, 0u);  // snapshot of the engine's cache.

  engine.reset_stats();
  const auto after = engine.stats();
  EXPECT_EQ(after.sim_runs, 0);
  EXPECT_EQ(after.events_processed, 0);
  // Plan-cache stats belong to the cache, not the counters.
  EXPECT_GT(after.plan_cache.misses, 0u);
}

TEST(Engine, ClassifyRecordsCountersMatchingTheOutParam) {
  Engine engine;
  const Hierarchy h{2, 2, 2, 4};
  ClassifyStats out;
  const auto classes = classify_orders(engine, h, /*comm_size=*/8,
                                       Equivalence::SameSetsAndInternal,
                                       /*threads=*/1, MetricsImpl::Fast, &out);
  EXPECT_FALSE(classes.empty());
  const auto stats = engine.stats();
  EXPECT_EQ(stats.classify_runs, 1);
  EXPECT_EQ(stats.orders_classified, out.orders);
  EXPECT_EQ(stats.orders_classified, 24);  // 4! orders.
  EXPECT_EQ(stats.classes_found, static_cast<std::int64_t>(classes.size()));
  EXPECT_EQ(stats.signatures_hashed, out.signatures_hashed);
  EXPECT_EQ(stats.collision_checks, out.collision_checks);
}

TEST(Engine, TuneRecordsFunnelTotals) {
  Engine engine;
  const auto machine = topo::hydra(2);
  const auto query = small_query(/*bytes=*/1 << 18, /*threads=*/1);
  const tune::TuneReport report = tune::tune(engine, machine, query);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.tune_runs, 1);
  EXPECT_EQ(stats.tune_candidates_simulated, report.stats.simulated);
  EXPECT_EQ(stats.tune_sim_points, report.stats.sim_points);
  EXPECT_GT(stats.tune_sim_points, 0);
  // Stage 3 runs each simulation through the engine: the run counters and
  // the tune totals describe the same work.
  EXPECT_EQ(stats.sim_runs, report.stats.sim_points);
  // Stage 1 (hashed dedup) classified through this engine too.
  EXPECT_EQ(stats.classify_runs, 1);
}

TEST(Engine, ShimsMatchEngineFirstOverloads) {
  const auto machine = topo::hydra(2);
  const auto config = small_sweep(/*threads=*/1);

  // Sweep: shim == explicit shared engine == fresh private engine.
  harness::SweepConfig single = config;
  single.all_comms = false;
  std::ostringstream shim_csv;
  harness::write_figure_csv(shim_csv, "engine", run_sweep(machine, single), {});
  Engine fresh;
  std::ostringstream shared_csv, fresh_csv;
  harness::write_figure_csv(shared_csv, "engine",
                            run_sweep(Engine::shared(), machine, single), {});
  harness::write_figure_csv(fresh_csv, "engine",
                            run_sweep(fresh, machine, single), {});
  EXPECT_FALSE(shim_csv.str().empty());
  EXPECT_EQ(shim_csv.str(), shared_csv.str());
  EXPECT_EQ(shim_csv.str(), fresh_csv.str());

  // Classify: shim result == engine-first result.
  const Hierarchy h{2, 2, 2, 4};
  Engine classify_engine;
  const auto via_engine = classify_orders(classify_engine, h, 8,
                                          Equivalence::SameSetsAndInternal);
  const auto via_shim = classify_orders(h, 8, Equivalence::SameSetsAndInternal);
  ASSERT_EQ(via_engine.size(), via_shim.size());
  for (std::size_t c = 0; c < via_engine.size(); ++c) {
    EXPECT_EQ(via_engine[c].members, via_shim[c].members);
  }

  // Tune: the canonical JSON is byte-identical through the shim, the
  // shared engine, and a cold private engine.
  const auto query = small_query(/*bytes=*/1 << 18, /*threads=*/1);
  std::ostringstream shim_json;
  tune::write_json(shim_json, tune::tune(machine, query));
  Engine tune_engine;
  EXPECT_EQ(shim_json.str(), tune_json(tune_engine, machine, query));
}

TEST(Engine, BoundCacheIsScopedAndSurfacedInStats) {
  EngineConfig config;
  config.bound_cache_capacity = 1;
  Engine bounded(config);
  Engine fresh;
  const auto machine = topo::hydra(2);
  const simmpi::Plan ring = simmpi::compile_plan("allgather_ring", 4, 64);
  const simmpi::Plan pair = simmpi::compile_plan("alltoall_pairwise", 4, 64);
  const std::vector<std::int64_t> cores = {0, 1, 2, 3};
  // ring, pair, ring through a 1-entry cache: three builds, two evictions.
  for (const auto* plan : {&ring, &pair, &ring}) {
    bounded.bound_cache().analyze(
        machine,
        {{&plan->schedule, &plan->exec, plan->repetitions, &cores, 0.0}});
  }
  const auto stats = bounded.stats();
  EXPECT_EQ(stats.bound_cache.misses, 3);
  EXPECT_EQ(stats.bound_cache.entries, 1u);
  EXPECT_EQ(stats.bound_cache.evictions, 2);
  // Scoped: another engine's cache saw none of it.
  EXPECT_EQ(fresh.stats().bound_cache.misses, 0);
  EXPECT_EQ(fresh.stats().bound_cache.entries, 0u);
}

TEST(Engine, DedicatedThreadBudgetIsCooperative) {
  // The budget is process-global state; this test owns it for its scope
  // and restores the unlimited default on every path out.
  ASSERT_EQ(Engine::dedicated_thread_budget(), 0u);
  ASSERT_EQ(Engine::dedicated_threads_in_use(), 0u);
  Engine::set_dedicated_thread_budget(4);
  EngineConfig eight;
  eight.dedicated_threads = 8;
  {
    Engine a(eight);
    EXPECT_EQ(a.dedicated_threads_granted(), 4u);  // clamped to the budget.
    EXPECT_EQ(Engine::dedicated_threads_in_use(), 4u);
    // Budget exhausted: a second tenant still gets ONE worker (progress
    // guarantee) — oversubscription is bounded by one thread per engine,
    // not by each engine's full request.
    Engine b(eight);
    EXPECT_EQ(b.dedicated_threads_granted(), 1u);
    EXPECT_EQ(Engine::dedicated_threads_in_use(), 5u);
    // Both tenants stay fully functional at their granted widths, with
    // byte-identical output.
    const auto machine = topo::hydra(2);
    EXPECT_EQ(sweep_csv(a, machine, small_sweep(/*threads=*/4)),
              sweep_csv(b, machine, small_sweep(/*threads=*/4)));
  }
  // Grants return when tenants die (pool joined first), so a successor
  // sees the whole budget again.
  EXPECT_EQ(Engine::dedicated_threads_in_use(), 0u);
  {
    Engine c(eight);
    EXPECT_EQ(c.dedicated_threads_granted(), 4u);
  }
  Engine::set_dedicated_thread_budget(0);
  {
    Engine unlimited(eight);  // 0 = no cap: the full request is granted.
    EXPECT_EQ(unlimited.dedicated_threads_granted(), 8u);
  }
  EXPECT_EQ(Engine::dedicated_threads_in_use(), 0u);
}

// Two engines with different machines and different plan-cache capacities,
// interleaving threaded sweeps and tunes on the SAME process-wide pool.
// Outputs must be byte-identical to serial single-engine references, and
// each engine's cache/stats must describe exactly its own workload.
TEST(MultiEngine, InterleavedWorkMatchesSerialRunsWithDisjointStats) {
  const auto machine_a = topo::hydra(2);
  const auto machine_b = topo::hydra(4);
  const auto query_b = small_query(/*bytes=*/1 << 16, /*threads=*/4);

  // Serial references, each from its own throwaway engine.
  std::string reference_a, reference_b_csv, reference_b_json;
  {
    Engine reference;
    reference_a = sweep_csv(reference, machine_a, small_sweep(/*threads=*/1));
  }
  {
    Engine reference;
    reference_b_csv = sweep_csv(reference, machine_b, small_sweep(/*threads=*/1));
    auto serial_query = query_b;
    serial_query.threads = 1;
    reference_b_json = tune_json(reference, machine_b, serial_query);
  }

  EngineConfig bounded;
  bounded.plan_cache_capacity = 2;
  Engine engine_a(bounded);
  Engine engine_b;
  std::string csv_a, csv_b, json_b;
  std::thread worker([&] {
    csv_b = sweep_csv(engine_b, machine_b, small_sweep(/*threads=*/4));
    json_b = tune_json(engine_b, machine_b, query_b);
  });
  csv_a = sweep_csv(engine_a, machine_a, small_sweep(/*threads=*/4));
  worker.join();

  // Byte-identity against the serial single-engine world.
  EXPECT_EQ(csv_a, reference_a);
  EXPECT_EQ(csv_b, reference_b_csv);
  EXPECT_EQ(json_b, reference_b_json);

  // Disjoint accounting: each engine saw exactly its own sweep points
  // (plus, for b, the tune's stage-3 simulations).
  const auto config = small_sweep(0);
  const auto sweep_points =
      static_cast<std::int64_t>(2 * config.orders.size() * config.sizes.size());
  const auto stats_a = engine_a.stats();
  const auto stats_b = engine_b.stats();
  EXPECT_EQ(stats_a.sim_runs, sweep_points);
  EXPECT_EQ(stats_a.tune_runs, 0);
  EXPECT_EQ(stats_b.sim_runs, sweep_points + stats_b.tune_sim_points);
  EXPECT_EQ(stats_b.tune_runs, 1);
  EXPECT_EQ(stats_b.classify_runs, 1);  // the tune's dedup stage.
  // engine_a's LRU capacity applied only to engine_a.
  EXPECT_LE(engine_a.plan_cache().stats().entries, 2u);
  EXPECT_EQ(engine_b.plan_cache().stats().evictions, 0u);
}

TEST(MultiEngine, BudgetedDedicatedEnginesRunConcurrently) {
  // Two dedicated-pool tenants under a budget smaller than their combined
  // request, driving sweeps at the same time: the cap must change worker
  // counts only, never output bytes. TSan target for the budget plumbing.
  ASSERT_EQ(Engine::dedicated_threads_in_use(), 0u);
  Engine::set_dedicated_thread_budget(3);
  EngineConfig dedicated;
  dedicated.dedicated_threads = 4;
  {
    Engine a(dedicated);
    Engine b(dedicated);
    EXPECT_EQ(a.dedicated_threads_granted(), 3u);
    EXPECT_EQ(b.dedicated_threads_granted(), 1u);
    const auto machine = topo::hydra(2);
    std::string csv_a, csv_b;
    std::thread worker(
        [&] { csv_b = sweep_csv(b, machine, small_sweep(/*threads=*/4)); });
    csv_a = sweep_csv(a, machine, small_sweep(/*threads=*/4));
    worker.join();
    EXPECT_FALSE(csv_a.empty());
    EXPECT_EQ(csv_a, csv_b);
  }
  Engine::set_dedicated_thread_budget(0);
  EXPECT_EQ(Engine::dedicated_threads_in_use(), 0u);
}

TEST(MultiEngine, ConcurrentTunesMatchSerialReferences) {
  const auto machine = topo::hydra(2);
  const auto query_a = small_query(/*bytes=*/1 << 18, /*threads=*/2);
  const auto query_b = small_query(/*bytes=*/1 << 20, /*threads=*/2);

  std::string reference_a, reference_b;
  {
    Engine reference;
    reference_a = tune_json(reference, machine, query_a);
  }
  {
    Engine reference;
    reference_b = tune_json(reference, machine, query_b);
  }

  Engine engine_a, engine_b;
  std::string json_a, json_b;
  std::thread worker([&] { json_b = tune_json(engine_b, machine, query_b); });
  json_a = tune_json(engine_a, machine, query_a);
  worker.join();

  EXPECT_EQ(json_a, reference_a);
  EXPECT_EQ(json_b, reference_b);
  EXPECT_EQ(engine_a.stats().tune_runs, 1);
  EXPECT_EQ(engine_b.stats().tune_runs, 1);
}

}  // namespace
}  // namespace mr
