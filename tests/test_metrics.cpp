// Golden tests for the §3.3 metrics: every ring cost and pair-percentage
// tuple printed in the paper's figure legends is a pure function of
// (hierarchy, order, communicator size) and is reproduced here bit-exactly
// (percentages compared after the paper's 1-decimal rounding).
#include "mixradix/mr/metrics.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mixradix/util/expect.hpp"
#include "mixradix/util/prng.hpp"

namespace mr {
namespace {

Hierarchy hydra16() { return Hierarchy({16, 2, 2, 8}); }   // 512 procs
Hierarchy lumi16() { return Hierarchy({16, 2, 4, 2, 8}); } // 2048 procs

TEST(HopCost, CountsCrossedLevels) {
  const Hierarchy h{2, 2, 4};
  EXPECT_EQ(hop_cost(h, {0, 0, 0}, {0, 0, 1}), 1);  // same socket
  EXPECT_EQ(hop_cost(h, {0, 0, 0}, {0, 1, 0}), 2);  // cross socket
  EXPECT_EQ(hop_cost(h, {0, 0, 0}, {1, 0, 0}), 3);  // cross node
  EXPECT_EQ(hop_cost(h, {1, 0, 2}, {1, 0, 2}), 0);  // same core
}

TEST(InnermostCommonLevel, MatchesHopCost) {
  const Hierarchy h{2, 2, 4};
  EXPECT_EQ(innermost_common_level(h, {0, 0, 0}, {0, 0, 3}), 2);
  EXPECT_EQ(innermost_common_level(h, {0, 0, 0}, {0, 1, 3}), 1);
  EXPECT_EQ(innermost_common_level(h, {0, 0, 0}, {1, 0, 0}), 0);
  EXPECT_THROW(innermost_common_level(h, {0, 0, 0}, {0, 0, 0}), invalid_argument);
}

// §3.3: on [2,2,4] with communicators of 4, order [0,1,2] has ring cost 9
// and order [1,0,2] has ring cost 7 with pair percentages [0, 33.3, 66.7];
// order [2,1,0] has percentages [100, 0, 0].
TEST(Metrics, Section33Examples) {
  const Hierarchy h{2, 2, 4};
  const auto c012 = characterize_order(h, {0, 1, 2}, 4);
  EXPECT_EQ(c012.ring_cost, 9);

  const auto c102 = characterize_order(h, {1, 0, 2}, 4);
  EXPECT_EQ(c102.ring_cost, 7);
  ASSERT_EQ(c102.pair_pct.size(), 3u);
  EXPECT_NEAR(c102.pair_pct[0], 0.0, 1e-9);
  EXPECT_NEAR(c102.pair_pct[1], 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(c102.pair_pct[2], 200.0 / 3.0, 1e-9);

  const auto c210 = characterize_order(h, {2, 1, 0}, 4);
  EXPECT_NEAR(c210.pair_pct[0], 100.0, 1e-9);
  EXPECT_NEAR(c210.pair_pct[1], 0.0, 1e-9);
  EXPECT_NEAR(c210.pair_pct[2], 0.0, 1e-9);
}

// Orders [0,1,2] and [1,0,2] place the first communicator on the same set
// of cores (same percentages), but number ranks differently (different
// ring costs) — the paper's motivating observation for having two metrics.
TEST(Metrics, MetricsAreIndependent) {
  const Hierarchy h{2, 2, 4};
  const auto a = characterize_order(h, {0, 1, 2}, 4);
  const auto b = characterize_order(h, {1, 0, 2}, 4);
  EXPECT_EQ(a.pair_pct, b.pair_pct);
  EXPECT_NE(a.ring_cost, b.ring_cost);
}

struct LegendCase {
  const char* figure;
  Hierarchy hierarchy;
  std::int64_t comm_size;
  const char* legend;  // exact paper text: "order (ring - pcts)"
};

class FigureLegends : public ::testing::TestWithParam<LegendCase> {};

TEST_P(FigureLegends, MatchesPaper) {
  const auto& p = GetParam();
  const std::string text = p.legend;
  const Order order = parse_order(text.substr(0, text.find(' ')));
  const auto character = characterize_order(p.hierarchy, order, p.comm_size);
  EXPECT_EQ(character.to_string(), text) << "figure " << p.figure;
}

INSTANTIATE_TEST_SUITE_P(
    Fig3AlltoallHydraComm16, FigureLegends,
    ::testing::Values(
        LegendCase{"3", hydra16(), 16, "0-1-2-3 (60 - 0.0, 0.0, 0.0, 100.0)"},
        LegendCase{"3", hydra16(), 16, "2-1-0-3 (40 - 0.0, 6.7, 13.3, 80.0)"},
        LegendCase{"3", hydra16(), 16, "1-3-0-2 (45 - 46.7, 0.0, 53.3, 0.0)"},
        LegendCase{"3", hydra16(), 16, "1-3-2-0 (45 - 46.7, 0.0, 53.3, 0.0)"},
        LegendCase{"3", hydra16(), 16, "3-1-0-2 (17 - 46.7, 0.0, 53.3, 0.0)"},
        LegendCase{"3", hydra16(), 16, "3-2-1-0 (16 - 46.7, 53.3, 0.0, 0.0)"}));

INSTANTIATE_TEST_SUITE_P(
    Fig4AlltoallHydraComm128, FigureLegends,
    ::testing::Values(
        LegendCase{"4", hydra16(), 128, "0-1-2-3 (508 - 0.8, 1.6, 3.1, 94.5)"},
        LegendCase{"4", hydra16(), 128, "2-1-0-3 (348 - 0.8, 1.6, 3.1, 94.5)"},
        LegendCase{"4", hydra16(), 128, "1-3-0-2 (388 - 5.5, 0.0, 6.3, 88.2)"},
        LegendCase{"4", hydra16(), 128, "3-1-0-2 (164 - 5.5, 0.0, 6.3, 88.2)"},
        LegendCase{"4", hydra16(), 128, "1-3-2-0 (384 - 5.5, 6.3, 12.6, 75.6)"},
        LegendCase{"4", hydra16(), 128, "3-2-1-0 (152 - 5.5, 6.3, 12.6, 75.6)"}));

INSTANTIATE_TEST_SUITE_P(
    Fig5AlltoallLumiComm16, FigureLegends,
    ::testing::Values(
        LegendCase{"5", lumi16(), 16, "0-1-2-3-4 (75 - 0.0, 0.0, 0.0, 0.0, 100.0)"},
        LegendCase{"5", lumi16(), 16, "1-2-3-0-4 (60 - 0.0, 6.7, 40.0, 53.3, 0.0)"},
        LegendCase{"5", lumi16(), 16, "3-2-1-4-0 (38 - 0.0, 6.7, 40.0, 53.3, 0.0)"},
        LegendCase{"5", lumi16(), 16, "3-4-0-1-2 (30 - 46.7, 53.3, 0.0, 0.0, 0.0)"},
        LegendCase{"5", lumi16(), 16, "4-3-2-1-0 (16 - 46.7, 53.3, 0.0, 0.0, 0.0)"}));

INSTANTIATE_TEST_SUITE_P(
    Fig6AllreduceHydraComm64, FigureLegends,
    ::testing::Values(
        LegendCase{"6", hydra16(), 64, "0-1-2-3 (252 - 0.0, 1.6, 3.2, 95.2)"},
        LegendCase{"6", hydra16(), 64, "2-1-0-3 (172 - 0.0, 1.6, 3.2, 95.2)"},
        LegendCase{"6", hydra16(), 64, "1-3-0-2 (192 - 11.1, 0.0, 12.7, 76.2)"},
        LegendCase{"6", hydra16(), 64, "3-1-0-2 (80 - 11.1, 0.0, 12.7, 76.2)"},
        LegendCase{"6", hydra16(), 64, "1-3-2-0 (190 - 11.1, 12.7, 25.4, 50.8)"},
        LegendCase{"6", hydra16(), 64, "3-2-1-0 (74 - 11.1, 12.7, 25.4, 50.8)"}));

INSTANTIATE_TEST_SUITE_P(
    Fig7AllgatherLumiComm256, FigureLegends,
    ::testing::Values(
        LegendCase{"7", lumi16(), 256, "0-1-2-3-4 (1275 - 0.0, 0.4, 2.4, 3.1, 94.1)"},
        LegendCase{"7", lumi16(), 256, "1-2-3-0-4 (1035 - 0.0, 0.4, 2.4, 3.1, 94.1)"},
        LegendCase{"7", lumi16(), 256, "3-4-0-1-2 (555 - 2.7, 3.1, 0.0, 0.0, 94.1)"},
        LegendCase{"7", lumi16(), 256, "3-2-1-4-0 (669 - 2.7, 3.1, 18.8, 25.1, 50.2)"},
        LegendCase{"7", lumi16(), 256, "4-3-2-1-0 (305 - 2.7, 3.1, 18.8, 25.1, 50.2)"}));

TEST(PairPercentages, SumToOneHundred) {
  const Hierarchy h = hydra16();
  for (std::int64_t comm_size : {2, 4, 16, 64, 128, 512}) {
    for (const Order& order :
         {Order{0, 1, 2, 3}, Order{3, 2, 1, 0}, Order{1, 3, 0, 2}}) {
      const auto pct = characterize_order(h, order, comm_size).pair_pct;
      const double sum = std::accumulate(pct.begin(), pct.end(), 0.0);
      EXPECT_NEAR(sum, 100.0, 1e-9);
    }
  }
}

TEST(RingCost, BoundsHold) {
  // Ring cost of p members lies in [(p-1)*1, (p-1)*depth].
  const Hierarchy h = hydra16();
  for (std::int64_t comm_size : {4, 16, 64}) {
    for (const Order& order :
         {Order{0, 1, 2, 3}, Order{3, 2, 1, 0}, Order{2, 0, 3, 1}}) {
      const auto c = characterize_order(h, order, comm_size);
      EXPECT_GE(c.ring_cost, comm_size - 1);
      EXPECT_LE(c.ring_cost, (comm_size - 1) * h.depth());
    }
  }
}

TEST(SubcommunicatorCoords, ValidatesInputs) {
  const Hierarchy h{2, 2, 4};
  EXPECT_THROW(subcommunicator_coords(h, {0, 1, 2}, 0, 3), invalid_argument);
  EXPECT_THROW(subcommunicator_coords(h, {0, 1, 2}, 4, 4), invalid_argument);
  EXPECT_THROW(subcommunicator_coords(h, {0, 1, 2}, -1, 4), invalid_argument);
}

TEST(SubcommunicatorCoords, EveryCommunicatorIsDisjoint) {
  const Hierarchy h{2, 2, 4};
  for (const Order& order : {Order{0, 1, 2}, Order{2, 0, 1}}) {
    std::vector<Coords> all;
    for (std::int64_t c = 0; c < 4; ++c) {
      const auto members = subcommunicator_coords(h, order, c, 4);
      all.insert(all.end(), members.begin(), members.end());
    }
    for (std::size_t i = 0; i < all.size(); ++i) {
      for (std::size_t j = i + 1; j < all.size(); ++j) {
        EXPECT_NE(all[i], all[j]);
      }
    }
  }
}

TEST(Metrics, SingletonCommunicatorHasNoHopsAndNoPairs) {
  const Hierarchy h{2, 2, 4};
  EXPECT_EQ(ring_cost(h, {Coords{0, 1, 2}}), 0);
  EXPECT_TRUE(pair_percentages(h, {Coords{0, 1, 2}}).empty());
  EXPECT_THROW(ring_cost(h, {}), invalid_argument);
  EXPECT_THROW(pair_percentages(h, {}), invalid_argument);
  for (MetricsImpl impl : {MetricsImpl::Fast, MetricsImpl::Reference}) {
    const auto c = characterize_order(h, {2, 0, 1}, 1, impl);
    EXPECT_EQ(c.ring_cost, 0);
    EXPECT_TRUE(c.pair_pct.empty());
    EXPECT_EQ(c.to_string(), "2-0-1 (0)");
  }
  EXPECT_EQ(ring_cost_closed_form(h, {0, 1, 2}, 1), 0);
  EXPECT_TRUE(pair_percentages_closed_form(h, {0, 1, 2}, 1).empty());
}

// The closed-form kernels must agree with the brute-force reference not
// just approximately but bit-for-bit (EXPECT_EQ on the doubles): both
// compute the same integer pair counts and feed them through the same
// floating expression, so the classification and legend strings built on
// top are byte-identical regardless of the MetricsImpl.
TEST(ClosedForm, MatchesReferenceOnPaperMachinesExhaustively) {
  struct Case {
    Hierarchy hierarchy;
    std::vector<std::int64_t> comm_sizes;
  };
  const std::vector<Case> cases = {
      {hydra16(), {2, 16, 64, 128, 512}},  // figs 3, 4, 6 + edge sizes
      {lumi16(), {16, 256, 2048}},         // figs 5, 7 + full machine
  };
  for (const auto& c : cases) {
    for (const std::int64_t comm_size : c.comm_sizes) {
      for (const Order& order : all_orders_lexicographic(c.hierarchy.depth())) {
        const auto fast =
            characterize_order(c.hierarchy, order, comm_size, MetricsImpl::Fast);
        const auto ref = characterize_order(c.hierarchy, order, comm_size,
                                            MetricsImpl::Reference);
        EXPECT_EQ(fast.ring_cost, ref.ring_cost)
            << order_to_string(order) << " s=" << comm_size;
        EXPECT_EQ(fast.pair_pct, ref.pair_pct)
            << order_to_string(order) << " s=" << comm_size;
      }
    }
  }
}

TEST(ClosedForm, MatchesReferenceOnRandomHierarchies) {
  // Seeded, platform-independent randomness (util::Xoshiro256): random
  // radix vectors up to depth 8, random orders, random divisor comm sizes.
  util::Xoshiro256 rng(0x6d72656e756dULL);  // "mrenum"
  for (int trial = 0; trial < 60; ++trial) {
    const int depth = 2 + static_cast<int>(rng.next_below(7));  // 2..8
    std::vector<int> radices;
    for (int i = 0; i < depth; ++i) {
      radices.push_back(2 + static_cast<int>(rng.next_below(3)));  // 2..4
    }
    const Hierarchy h(radices);

    Order order(static_cast<std::size_t>(depth));
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size() - 1; i > 0; --i) {  // Fisher-Yates
      std::swap(order[i], order[rng.next_below(i + 1)]);
    }

    // A random divisor of total(): the product of a random subset of the
    // radices, capped so the O(s^2) reference stays test-sized.
    std::int64_t comm_size = 1;
    for (const int radix : radices) {
      if (rng.next_below(2) == 1 && comm_size * radix <= 512) {
        comm_size *= radix;
      }
    }

    for (const std::int64_t s : {std::int64_t{1}, comm_size}) {
      const auto fast = characterize_order(h, order, s, MetricsImpl::Fast);
      const auto ref = characterize_order(h, order, s, MetricsImpl::Reference);
      EXPECT_EQ(fast.ring_cost, ref.ring_cost)
          << h.to_string() << " " << order_to_string(order) << " s=" << s;
      EXPECT_EQ(fast.pair_pct, ref.pair_pct)
          << h.to_string() << " " << order_to_string(order) << " s=" << s;
    }
  }
}

TEST(Spreadness, PackedIsZeroSpreadIsOne) {
  const Hierarchy h = hydra16();
  const auto packed = subcommunicator_coords(h, {3, 2, 1, 0}, 0, 8);
  EXPECT_NEAR(spreadness(h, packed), 0.0, 1e-9);
  const auto spread = subcommunicator_coords(h, {0, 1, 2, 3}, 0, 16);
  EXPECT_NEAR(spreadness(h, spread), 1.0, 1e-9);
}

}  // namespace
}  // namespace mr
