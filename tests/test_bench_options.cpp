// CLI parsing shared by the figure benches (bench/bench_common.hpp).
#include "bench/bench_common.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bench {
namespace {

TEST(BenchOptions, DefaultsReproduceThePaperAxes) {
  const Options o = Options::parse_args({});
  EXPECT_EQ(o.max_size, 512ll << 20);
  EXPECT_EQ(o.repetitions, 2);
  EXPECT_EQ(o.threads, 0);  // auto
  EXPECT_TRUE(o.csv_path.empty());
}

TEST(BenchOptions, ParsesEveryFlag) {
  const Options o = Options::parse_args(
      {"--max-size=1048576", "--reps=5", "--threads=4", "--csv=out.csv"});
  EXPECT_EQ(o.max_size, 1048576);
  EXPECT_EQ(o.repetitions, 5);
  EXPECT_EQ(o.threads, 4);
  EXPECT_EQ(o.csv_path, "out.csv");
}

TEST(BenchOptions, ResolvedThreadsHonoursExplicitValueAndAuto) {
  Options o;
  o.threads = 7;
  EXPECT_EQ(o.resolved_threads(), 7);
  o.threads = 0;
  EXPECT_EQ(o.resolved_threads(),
            static_cast<int>(mr::util::ThreadPool::default_threads()));
}

TEST(BenchOptions, RejectsUnknownFlags) {
  EXPECT_THROW(Options::parse_args({"--frobnicate=1"}), std::invalid_argument);
  EXPECT_THROW(Options::parse_args({"extra"}), std::invalid_argument);
}

TEST(BenchOptions, RejectsMalformedIntegers) {
  EXPECT_THROW(Options::parse_args({"--threads=four"}), std::invalid_argument);
  EXPECT_THROW(Options::parse_args({"--threads=4x"}), std::invalid_argument);
  EXPECT_THROW(Options::parse_args({"--threads="}), std::invalid_argument);
  EXPECT_THROW(Options::parse_args({"--reps=2.5"}), std::invalid_argument);
  EXPECT_THROW(Options::parse_args({"--max-size=1e6"}), std::invalid_argument);
}

TEST(BenchOptions, RejectsOutOfRangeValues) {
  EXPECT_THROW(Options::parse_args({"--threads=0"}), std::invalid_argument);
  EXPECT_THROW(Options::parse_args({"--threads=-2"}), std::invalid_argument);
  EXPECT_THROW(Options::parse_args({"--reps=0"}), std::invalid_argument);
  EXPECT_THROW(Options::parse_args({"--max-size=0"}), std::invalid_argument);
  EXPECT_THROW(Options::parse_args({"--max-size=-1"}), std::invalid_argument);
}

TEST(BenchOptions, LastFlagWins) {
  const Options o = Options::parse_args({"--reps=3", "--reps=9"});
  EXPECT_EQ(o.repetitions, 9);
}

}  // namespace
}  // namespace bench
