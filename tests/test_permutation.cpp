#include "mixradix/mr/permutation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "mixradix/util/expect.hpp"

namespace mr {
namespace {

TEST(ParseOrder, AcceptsPaperNotations) {
  EXPECT_EQ(parse_order("1-3-2-0"), (Order{1, 3, 2, 0}));
  EXPECT_EQ(parse_order("1,3,2,0"), (Order{1, 3, 2, 0}));
  EXPECT_EQ(parse_order("[1, 3, 2, 0]"), (Order{1, 3, 2, 0}));
  EXPECT_EQ(parse_order("0"), (Order{0}));
}

TEST(ParseOrder, RejectsNonPermutations) {
  EXPECT_THROW(parse_order("0-0-1"), invalid_argument);
  EXPECT_THROW(parse_order("0-2"), invalid_argument);
  EXPECT_THROW(parse_order("0-1-x"), invalid_argument);
  EXPECT_THROW(parse_order(""), invalid_argument);
}

TEST(OrderToString, RoundTripsWithParse) {
  const Order o{3, 1, 0, 2};
  EXPECT_EQ(o, parse_order(order_to_string(o)));
  EXPECT_EQ(order_to_string(o), "3-1-0-2");
}

TEST(InverseOrder, Involution) {
  const Order o{3, 1, 0, 2};
  const Order inv = inverse_order(o);
  EXPECT_EQ(inverse_order(inv), o);
  for (std::size_t i = 0; i < o.size(); ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(o[i])], static_cast<int>(i));
  }
}

TEST(ComposeOrders, InverseComposesToIdentity) {
  const Order o{2, 0, 3, 1};
  const Order id{0, 1, 2, 3};
  EXPECT_EQ(compose_orders(o, inverse_order(o)), id);
  EXPECT_EQ(compose_orders(inverse_order(o), o), id);
}

TEST(ComposeOrders, Associativity) {
  const Order a{1, 2, 0}, b{2, 0, 1}, c{0, 2, 1};
  EXPECT_EQ(compose_orders(compose_orders(a, b), c),
            compose_orders(a, compose_orders(b, c)));
}

TEST(Factorial, KnownValues) {
  EXPECT_EQ(factorial(0), 1);
  EXPECT_EQ(factorial(1), 1);
  EXPECT_EQ(factorial(4), 24);
  EXPECT_EQ(factorial(6), 720);
  EXPECT_EQ(factorial(20), 2432902008176640000LL);
  EXPECT_THROW(factorial(21), invalid_argument);
  EXPECT_THROW(factorial(-1), invalid_argument);
}

class AllOrders : public ::testing::TestWithParam<int> {};

TEST_P(AllOrders, LexicographicIsCompleteSortedAndUnique) {
  const int n = GetParam();
  const auto orders = all_orders_lexicographic(n);
  EXPECT_EQ(static_cast<long long>(orders.size()), factorial(n));
  EXPECT_TRUE(std::is_sorted(orders.begin(), orders.end()));
  const std::set<Order> unique(orders.begin(), orders.end());
  EXPECT_EQ(unique.size(), orders.size());
  for (const auto& o : orders) EXPECT_TRUE(is_permutation_of_iota(o));
}

TEST_P(AllOrders, HeapGeneratesTheSameSet) {
  const int n = GetParam();
  auto heap = all_orders_heap(n);
  EXPECT_EQ(static_cast<long long>(heap.size()), factorial(n));
  // Heap's algorithm changes exactly one transposition per step.
  for (std::size_t i = 1; i < heap.size(); ++i) {
    int diffs = 0;
    for (std::size_t j = 0; j < heap[i].size(); ++j) {
      if (heap[i][j] != heap[i - 1][j]) ++diffs;
    }
    EXPECT_EQ(diffs, 2) << "step " << i;
  }
  std::sort(heap.begin(), heap.end());
  EXPECT_EQ(heap, all_orders_lexicographic(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllOrders, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST_P(AllOrders, NthOrderUnranksEveryIndex) {
  const int n = GetParam();
  const auto orders = all_orders_lexicographic(n);
  for (std::size_t i = 0; i < orders.size(); ++i) {
    EXPECT_EQ(nth_order_lexicographic(n, static_cast<long long>(i)), orders[i])
        << "index " << i;
  }
}

TEST(NthOrder, WorksBeyondTheMaterialisationGuard) {
  // all_orders_lexicographic refuses n > 12; unranking has no such limit.
  EXPECT_EQ(nth_order_lexicographic(14, 0),
            (Order{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}));
  EXPECT_EQ(nth_order_lexicographic(14, factorial(14) - 1),
            (Order{13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0}));
  // The second block of 13! indices starts by swapping the two slowest
  // levels, exactly like next_permutation would.
  EXPECT_EQ(nth_order_lexicographic(14, factorial(13))[0], 1);
}

TEST(NthOrder, RejectsOutOfRangeIndices) {
  EXPECT_THROW(nth_order_lexicographic(3, -1), invalid_argument);
  EXPECT_THROW(nth_order_lexicographic(3, 6), invalid_argument);
  EXPECT_THROW(nth_order_lexicographic(0, 0), invalid_argument);
}

TEST(OrderIndex, InverseOfNthOrderForEveryRank) {
  for (int n = 1; n <= 6; ++n) {
    for (long long i = 0; i < factorial(n); ++i) {
      EXPECT_EQ(order_index_lexicographic(nth_order_lexicographic(n, i)), i)
          << "n=" << n << " index=" << i;
    }
  }
}

TEST(OrderIndex, WorksBeyondTheMaterialisationGuard) {
  const Order last{13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  EXPECT_EQ(order_index_lexicographic(last), factorial(14) - 1);
  const long long mid = factorial(13) + 12345;
  EXPECT_EQ(order_index_lexicographic(nth_order_lexicographic(14, mid)), mid);
}

TEST(OrderIndex, RejectsNonPermutations) {
  EXPECT_THROW(order_index_lexicographic(Order{0, 0, 1}), invalid_argument);
  EXPECT_THROW(order_index_lexicographic(Order{}), invalid_argument);
}

TEST(OrderIndex, ShardsPartitionTheOrderSet) {
  // The mrenum --shard contract: strided unranking over shards 0..n-1
  // visits every order exactly once.
  const int depth = 5;
  for (const long long nshards : {1ll, 3ll, 7ll}) {
    std::vector<Order> seen;
    for (long long shard = 0; shard < nshards; ++shard) {
      for (long long idx = shard; idx < factorial(depth); idx += nshards) {
        seen.push_back(nth_order_lexicographic(depth, idx));
      }
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, all_orders_lexicographic(depth)) << nshards << " shards";
  }
}

TEST(IsPermutationOfIota, HandlesWideOrders) {
  // n > 64 falls back to the seen-vector path.
  Order wide(100);
  std::iota(wide.begin(), wide.end(), 0);
  std::reverse(wide.begin(), wide.end());
  EXPECT_TRUE(is_permutation_of_iota(wide));
  wide[99] = 99;  // duplicates wide[0]
  EXPECT_FALSE(is_permutation_of_iota(wide));
  wide[99] = 100;  // out of range
  EXPECT_FALSE(is_permutation_of_iota(wide));
}

TEST(ForEachOrder, VisitsLexicographicallyAndStopsEarly) {
  std::vector<Order> seen;
  for_each_order(3, [&](const Order& o) {
    seen.push_back(o);
    return seen.size() < 4;
  });
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (Order{0, 1, 2}));
  EXPECT_EQ(seen[1], (Order{0, 2, 1}));
  EXPECT_EQ(seen[2], (Order{1, 0, 2}));
  EXPECT_EQ(seen[3], (Order{1, 2, 0}));
}

TEST(AllOrders, MaterialisationGuard) {
  EXPECT_THROW(all_orders_lexicographic(13), invalid_argument);
  EXPECT_THROW(all_orders_heap(0), invalid_argument);
}

}  // namespace
}  // namespace mr
