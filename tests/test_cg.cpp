// The NAS-CG proxy (Fig. 9 substrate).
#include "mixradix/apps/cg.hpp"

#include <gtest/gtest.h>

#include "mixradix/mr/core_select.hpp"
#include "mixradix/simmpi/data_executor.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::apps::cg {
namespace {

TEST(CgClass, NpbGeometries) {
  EXPECT_EQ(cg_class('S').n, 1400);
  EXPECT_EQ(cg_class('A').n, 14000);
  EXPECT_EQ(cg_class('B').n, 75000);
  EXPECT_EQ(cg_class('C').n, 150000);
  EXPECT_EQ(cg_class('C').iterations, 75);
  EXPECT_GT(cg_class('C').nnz, cg_class('B').nnz);
  EXPECT_THROW(cg_class('D'), invalid_argument);
}

TEST(NpbGrid, PowerOfTwoFactorisation) {
  for (const auto& [p, rows, cols] :
       {std::tuple{1, 1, 1}, std::tuple{2, 2, 1}, std::tuple{4, 2, 2},
        std::tuple{8, 4, 2}, std::tuple{16, 4, 4}, std::tuple{32, 8, 4},
        std::tuple{64, 8, 8}, std::tuple{128, 16, 8}}) {
    const Grid g = npb_grid(p);
    EXPECT_EQ(g.rows, rows) << "p=" << p;
    EXPECT_EQ(g.cols, cols) << "p=" << p;
  }
  EXPECT_THROW(npb_grid(12), invalid_argument);
  EXPECT_THROW(npb_grid(0), invalid_argument);
}

TEST(ProcessMemBandwidth, SharingDividesDomains) {
  const auto m = topo::lumi_node();  // socket mem 190, numa 48, l3 32, core 20
  // Alone: limited only by the core's own streaming rate.
  EXPECT_DOUBLE_EQ(process_mem_bandwidth(m, {0}, 0), 20e9);
  // Two cores in one L3: the L3 port (32) splits to 16 each.
  EXPECT_DOUBLE_EQ(process_mem_bandwidth(m, {0, 1}, 0), 16e9);
  // Two cores in one NUMA but different L3s: NUMA 48/2 = 24, core 20 binds.
  EXPECT_DOUBLE_EQ(process_mem_bandwidth(m, {0, 8}, 0), 20e9);
  // All 8 cores of one L3: 32/8 = 4.
  std::vector<std::int64_t> l3_full{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_DOUBLE_EQ(process_mem_bandwidth(m, l3_full, 0), 4e9);
  // A full socket (64 cores): the socket controller (190/64 ~ 2.97) is
  // slightly tighter than the per-NUMA share (48/16 = 3).
  std::vector<std::int64_t> socket_full;
  for (std::int64_t c = 0; c < 64; ++c) socket_full.push_back(c);
  EXPECT_DOUBLE_EQ(process_mem_bandwidth(m, socket_full, 0), 190e9 / 64);
}

TEST(ProcessMemBandwidth, ValidatesMembership) {
  const auto m = topo::lumi_node();
  EXPECT_THROW(process_mem_bandwidth(m, {1, 2}, 0), invalid_argument);
  EXPECT_THROW(process_mem_bandwidth(m, {}, 0), invalid_argument);
}

TEST(ComputeSeconds, MemoryBoundScalesWithBandwidth) {
  const auto klass = cg_class('C');
  const double slow = compute_seconds(klass, 8, 39e9, 4e9);
  const double fast = compute_seconds(klass, 8, 39e9, 20e9);
  EXPECT_NEAR(slow / fast, 5.0, 1e-9);  // memory-bound: inversely in bw
  // More processes, less work each.
  EXPECT_GT(compute_seconds(klass, 8, 39e9, 20e9),
            compute_seconds(klass, 16, 39e9, 20e9));
}

TEST(CgSchedule, IsWellFormedAndDataClean) {
  const auto klass = cg_class('S');
  for (std::int32_t p : {1, 2, 4, 8, 16}) {
    const std::vector<double> compute(static_cast<std::size_t>(p), 1e-6);
    const auto schedule = cg_schedule(klass, p, compute, 2);
    EXPECT_TRUE(schedule.validate().empty()) << "p=" << p;
    simmpi::DataExecutor exec(schedule);
    exec.run();  // must be deadlock-free
  }
  EXPECT_THROW(cg_schedule(klass, 6, std::vector<double>(6, 0.0), 1),
               invalid_argument);
}

TEST(SimulateCg, OneCorePerL3BeatsPacked) {
  const auto m = topo::lumi_node();
  const auto klass = cg_class('C');
  // 8 processes: one core per L3 of socket 0 vs the first 8 cores (one L3).
  const auto spread = select_cores(m.hierarchy(), parse_order("2-1-0-3"), 8);
  const auto packed = select_cores(m.hierarchy(), parse_order("3-2-1-0"), 8);
  const double t_spread = simulate_cg(m, klass, spread).seconds;
  const double t_packed = simulate_cg(m, klass, packed).seconds;
  EXPECT_LT(t_spread, t_packed * 0.5) << "memory-bound CG must prefer "
                                         "one core per L3";
}

TEST(SimulateCg, ScalingStallsBeyondSixteenProcesses) {
  // The paper: from 16 processes on, parallel efficiency collapses on one
  // node. Efficiency = serial / (p * T_p).
  const auto m = topo::lumi_node();
  const auto klass = cg_class('C');
  const double serial = serial_seconds(m, klass);
  const auto best_time = [&](std::int64_t nproc) {
    double best = 1e300;
    for (const auto& outcome : enumerate_selections(m.hierarchy(), nproc)) {
      best = std::min(best, simulate_cg(m, klass, outcome.core_list).seconds);
    }
    return best;
  };
  const double eff8 = serial / (8 * best_time(8));
  const double eff64 = serial / (64 * best_time(64));
  EXPECT_GT(eff8, 0.85);
  EXPECT_LT(eff64, 0.5);
}

TEST(SimulateCg, MoreProcessesBadlyPlacedLoseToFewerWellPlaced) {
  // Paper: 32 processes with the Slurm default mapping lose to 8 processes
  // with the best mapping.
  const auto m = topo::lumi_node();
  const auto klass = cg_class('C');
  const auto best8 = select_cores(m.hierarchy(), parse_order("1-2-0-3"), 8);
  const auto slurm32 = select_cores(m.hierarchy(), parse_order("3-2-1-0"), 32);
  EXPECT_LT(simulate_cg(m, klass, best8).seconds,
            simulate_cg(m, klass, slurm32).seconds);
}

TEST(SimulateCg, SingleProcessMatchesSerialEstimate) {
  const auto m = topo::lumi_node();
  const auto klass = cg_class('B');
  const auto result = simulate_cg(m, klass, {0});
  EXPECT_DOUBLE_EQ(result.seconds, serial_seconds(m, klass));
  EXPECT_DOUBLE_EQ(result.comm_seconds, 0);
}

}  // namespace
}  // namespace mr::apps::cg
