// Semantic tests: every collective schedule, run through the DataExecutor,
// must implement its MPI operation exactly — for power-of-two and awkward
// communicator sizes alike.
#include <gtest/gtest.h>

#include <cmath>

#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/simmpi/data_executor.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simmpi {
namespace {

// Distinct, order-sensitive test value for (rank, block, element).
double value(int rank, int block, std::int64_t elem) {
  return 1.0 + rank * 1000.0 + block * 10.0 + static_cast<double>(elem) * 0.001;
}

class CollectiveSizes : public ::testing::TestWithParam<std::int32_t> {};

INSTANTIATE_TEST_SUITE_P(CommSizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17));

// ---- Alltoall -------------------------------------------------------------

void check_alltoall(const Schedule& s, std::int32_t p, std::int64_t c) {
  DataExecutor exec(s);
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int32_t j = 0; j < p; ++j) {
      for (std::int64_t e = 0; e < c; ++e) {
        exec.arena(r)[static_cast<std::size_t>(j * c + e)] = value(r, j, e);
      }
    }
  }
  exec.run();
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int32_t j = 0; j < p; ++j) {
      for (std::int64_t e = 0; e < c; ++e) {
        ASSERT_DOUBLE_EQ(exec.arena(r)[static_cast<std::size_t>(p * c + j * c + e)],
                         value(j, r, e))
            << "p=" << p << " rank=" << r << " block=" << j << " elem=" << e;
      }
    }
  }
}

TEST_P(CollectiveSizes, AlltoallPairwise) {
  check_alltoall(alltoall_pairwise(GetParam(), 3), GetParam(), 3);
}
TEST_P(CollectiveSizes, AlltoallBruck) {
  check_alltoall(alltoall_bruck(GetParam(), 3), GetParam(), 3);
}
TEST_P(CollectiveSizes, AlltoallLinear) {
  check_alltoall(alltoall_linear(GetParam(), 3), GetParam(), 3);
}

// ---- Allgather ------------------------------------------------------------

void check_allgather(const Schedule& s, std::int32_t p, std::int64_t c) {
  DataExecutor exec(s);
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int64_t e = 0; e < c; ++e) {
      exec.arena(r)[static_cast<std::size_t>(e)] = value(r, 0, e);
    }
  }
  exec.run();
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int32_t j = 0; j < p; ++j) {
      for (std::int64_t e = 0; e < c; ++e) {
        ASSERT_DOUBLE_EQ(exec.arena(r)[static_cast<std::size_t>(c + j * c + e)],
                         value(j, 0, e))
            << "p=" << p << " rank=" << r << " block=" << j;
      }
    }
  }
}

TEST_P(CollectiveSizes, AllgatherRing) {
  check_allgather(allgather_ring(GetParam(), 4), GetParam(), 4);
}
TEST_P(CollectiveSizes, AllgatherBruck) {
  check_allgather(allgather_bruck(GetParam(), 4), GetParam(), 4);
}
TEST(AllgatherRecursiveDoubling, PowerOfTwoSizes) {
  for (std::int32_t p : {1, 2, 4, 8, 16, 32}) {
    check_allgather(allgather_recursive_doubling(p, 4), p, 4);
  }
}
TEST(AllgatherRecursiveDoubling, RejectsNonPowerOfTwo) {
  EXPECT_THROW(allgather_recursive_doubling(6, 4), invalid_argument);
}

// ---- Allreduce ------------------------------------------------------------

void check_allreduce(const Schedule& s, std::int32_t p, std::int64_t c) {
  DataExecutor exec(s);
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int64_t e = 0; e < c; ++e) {
      exec.arena(r)[static_cast<std::size_t>(e)] = value(r, 0, e);
    }
  }
  exec.run();
  for (std::int64_t e = 0; e < c; ++e) {
    double expected = 0;
    for (std::int32_t r = 0; r < p; ++r) expected += value(r, 0, e);
    for (std::int32_t r = 0; r < p; ++r) {
      ASSERT_NEAR(exec.arena(r)[static_cast<std::size_t>(c + e)], expected, 1e-9)
          << "p=" << p << " rank=" << r << " elem=" << e;
    }
  }
}

TEST_P(CollectiveSizes, AllreduceRecursiveDoubling) {
  check_allreduce(allreduce_recursive_doubling(GetParam(), 5), GetParam(), 5);
}
TEST_P(CollectiveSizes, AllreduceRing) {
  check_allreduce(allreduce_ring(GetParam(), 5), GetParam(), 5);
}
TEST_P(CollectiveSizes, AllreduceRingShortVector) {
  // count < p exercises the zero-length chunk handling.
  check_allreduce(allreduce_ring(GetParam(), 2), GetParam(), 2);
}

// ---- Bcast ----------------------------------------------------------------

void check_bcast(const Schedule& s, std::int32_t p, std::int64_t c, std::int32_t root) {
  DataExecutor exec(s);
  for (std::int64_t e = 0; e < c; ++e) {
    exec.arena(root)[static_cast<std::size_t>(e)] = value(root, 9, e);
  }
  exec.run();
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int64_t e = 0; e < c; ++e) {
      ASSERT_DOUBLE_EQ(exec.arena(r)[static_cast<std::size_t>(e)], value(root, 9, e))
          << "p=" << p << " root=" << root << " rank=" << r;
    }
  }
}

TEST_P(CollectiveSizes, BcastBinomialAllRoots) {
  const std::int32_t p = GetParam();
  for (std::int32_t root = 0; root < p; ++root) {
    check_bcast(bcast_binomial(p, 6, root), p, 6, root);
  }
}
TEST_P(CollectiveSizes, BcastScatterAllgatherAllRoots) {
  const std::int32_t p = GetParam();
  for (std::int32_t root = 0; root < p; ++root) {
    check_bcast(bcast_scatter_allgather(p, 37, root), p, 37, root);
  }
}

// ---- Reduce ----------------------------------------------------------------

TEST_P(CollectiveSizes, ReduceBinomialAllRoots) {
  const std::int32_t p = GetParam();
  const std::int64_t c = 4;
  for (std::int32_t root = 0; root < p; ++root) {
    DataExecutor exec(reduce_binomial(p, c, root));
    for (std::int32_t r = 0; r < p; ++r) {
      for (std::int64_t e = 0; e < c; ++e) {
        exec.arena(r)[static_cast<std::size_t>(e)] = value(r, 0, e);
      }
    }
    exec.run();
    for (std::int64_t e = 0; e < c; ++e) {
      double expected = 0;
      for (std::int32_t r = 0; r < p; ++r) expected += value(r, 0, e);
      ASSERT_NEAR(exec.arena(root)[static_cast<std::size_t>(c + e)], expected, 1e-9)
          << "p=" << p << " root=" << root;
    }
  }
}

// ---- Gather / Scatter --------------------------------------------------------

TEST_P(CollectiveSizes, GatherLinear) {
  const std::int32_t p = GetParam();
  const std::int64_t c = 3;
  const std::int32_t root = p / 2;
  DataExecutor exec(gather_linear(p, c, root));
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int64_t e = 0; e < c; ++e) {
      exec.arena(r)[static_cast<std::size_t>(e)] = value(r, 0, e);
    }
  }
  exec.run();
  for (std::int32_t j = 0; j < p; ++j) {
    for (std::int64_t e = 0; e < c; ++e) {
      ASSERT_DOUBLE_EQ(exec.arena(root)[static_cast<std::size_t>(c + j * c + e)],
                       value(j, 0, e));
    }
  }
}

TEST_P(CollectiveSizes, ScatterLinear) {
  const std::int32_t p = GetParam();
  const std::int64_t c = 3;
  const std::int32_t root = p - 1;
  DataExecutor exec(scatter_linear(p, c, root));
  for (std::int32_t j = 0; j < p; ++j) {
    for (std::int64_t e = 0; e < c; ++e) {
      exec.arena(root)[static_cast<std::size_t>(j * c + e)] = value(j, 1, e);
    }
  }
  exec.run();
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int64_t e = 0; e < c; ++e) {
      ASSERT_DOUBLE_EQ(exec.arena(r)[static_cast<std::size_t>(p * c + e)],
                       value(r, 1, e));
    }
  }
}

// ---- Tree scatter/gather & reduce-scatter -----------------------------------

TEST_P(CollectiveSizes, ScatterBinomialAllRoots) {
  const std::int32_t p = GetParam();
  const std::int64_t c = 3;
  for (std::int32_t root = 0; root < p; ++root) {
    DataExecutor exec(scatter_binomial(p, c, root));
    for (std::int32_t j = 0; j < p; ++j) {
      for (std::int64_t e = 0; e < c; ++e) {
        exec.arena(root)[static_cast<std::size_t>(j * c + e)] = value(j, 1, e);
      }
    }
    exec.run();
    for (std::int32_t r = 0; r < p; ++r) {
      for (std::int64_t e = 0; e < c; ++e) {
        ASSERT_DOUBLE_EQ(exec.arena(r)[static_cast<std::size_t>(2 * p * c + e)],
                         value(r, 1, e))
            << "p=" << p << " root=" << root << " rank=" << r;
      }
    }
  }
}

TEST_P(CollectiveSizes, GatherBinomialAllRoots) {
  const std::int32_t p = GetParam();
  const std::int64_t c = 3;
  for (std::int32_t root = 0; root < p; ++root) {
    DataExecutor exec(gather_binomial(p, c, root));
    for (std::int32_t r = 0; r < p; ++r) {
      for (std::int64_t e = 0; e < c; ++e) {
        exec.arena(r)[static_cast<std::size_t>(e)] = value(r, 0, e);
      }
    }
    exec.run();
    for (std::int32_t j = 0; j < p; ++j) {
      for (std::int64_t e = 0; e < c; ++e) {
        ASSERT_DOUBLE_EQ(
            exec.arena(root)[static_cast<std::size_t>(c + p * c + j * c + e)],
            value(j, 0, e))
            << "p=" << p << " root=" << root << " block=" << j;
      }
    }
  }
}

TEST_P(CollectiveSizes, ReduceScatterRing) {
  const std::int32_t p = GetParam();
  const std::int64_t c = 4;
  DataExecutor exec(reduce_scatter_ring(p, c));
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int32_t j = 0; j < p; ++j) {
      for (std::int64_t e = 0; e < c; ++e) {
        exec.arena(r)[static_cast<std::size_t>(j * c + e)] = value(r, j, e);
      }
    }
  }
  exec.run();
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int64_t e = 0; e < c; ++e) {
      double expected = 0;
      for (std::int32_t src = 0; src < p; ++src) expected += value(src, r, e);
      ASSERT_NEAR(exec.arena(r)[static_cast<std::size_t>(2 * p * c + e)],
                  expected, 1e-9)
          << "p=" << p << " rank=" << r << " elem=" << e;
    }
  }
}

// ---- Scan -----------------------------------------------------------------

TEST_P(CollectiveSizes, ScanInclusive) {
  const std::int32_t p = GetParam();
  const std::int64_t c = 4;
  DataExecutor exec(scan_recursive_doubling(p, c));
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int64_t e = 0; e < c; ++e) {
      exec.arena(r)[static_cast<std::size_t>(e)] = value(r, 0, e);
    }
  }
  exec.run();
  for (std::int32_t r = 0; r < p; ++r) {
    for (std::int64_t e = 0; e < c; ++e) {
      double expected = 0;
      for (std::int32_t j = 0; j <= r; ++j) expected += value(j, 0, e);
      ASSERT_NEAR(exec.arena(r)[static_cast<std::size_t>(c + e)], expected, 1e-9)
          << "p=" << p << " rank=" << r;
    }
  }
}

// ---- Barrier / structure ----------------------------------------------------

TEST_P(CollectiveSizes, BarrierIsWellFormed) {
  const auto s = barrier_dissemination(GetParam());
  EXPECT_TRUE(s.validate().empty());
  EXPECT_EQ(s.total_bytes(), 0);
  DataExecutor exec(s);
  exec.run();  // must not deadlock
}

// ---- Alltoallv ---------------------------------------------------------------

TEST_P(CollectiveSizes, AlltoallvArbitraryCounts) {
  const std::int32_t p = GetParam();
  std::vector<std::vector<std::int64_t>> counts(
      static_cast<std::size_t>(p), std::vector<std::int64_t>(static_cast<std::size_t>(p)));
  for (std::int32_t i = 0; i < p; ++i) {
    for (std::int32_t j = 0; j < p; ++j) {
      counts[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          (i + 2 * j) % 4;  // includes zero-sized pairs
    }
  }
  const auto s = alltoallv_pairwise(counts);
  DataExecutor exec(s);
  // Fill each send block with (src, dst)-tagged values.
  for (std::int32_t i = 0; i < p; ++i) {
    std::int64_t off = 0;
    for (std::int32_t j = 0; j < p; ++j) {
      const std::int64_t n = counts[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      for (std::int64_t e = 0; e < n; ++e) {
        exec.arena(i)[static_cast<std::size_t>(off + e)] = value(i, j, e);
      }
      off += n;
    }
  }
  exec.run();
  for (std::int32_t i = 0; i < p; ++i) {
    // Recv blocks start after this rank's send blocks.
    std::int64_t off = 0;
    for (std::int32_t j = 0; j < p; ++j) {
      off += counts[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
    for (std::int32_t j = 0; j < p; ++j) {
      const std::int64_t n = counts[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
      for (std::int64_t e = 0; e < n; ++e) {
        ASSERT_DOUBLE_EQ(exec.arena(i)[static_cast<std::size_t>(off + e)], value(j, i, e))
            << "p=" << p << " dst=" << i << " src=" << j;
      }
      off += n;
    }
  }
}

// ---- Selector / repeat / merge -----------------------------------------------

TEST(Selector, RootedAndReduceScatterSelection) {
  EXPECT_EQ(selected_algorithm(Collective::ReduceScatter, 16, 1024),
            "reduce_scatter_ring");
  EXPECT_EQ(selected_algorithm(Collective::Gather, 16, 16), "gather_binomial");
  EXPECT_EQ(selected_algorithm(Collective::Gather, 2, 16), "gather_linear");
  EXPECT_EQ(selected_algorithm(Collective::Gather, 16, 1 << 20), "gather_linear");
  EXPECT_EQ(selected_algorithm(Collective::Scatter, 16, 16), "scatter_binomial");
}

TEST(Selector, PicksLatencyAlgorithmsForSmallPayloads) {
  EXPECT_EQ(selected_algorithm(Collective::Alltoall, 16, 4), "alltoall_bruck");
  EXPECT_EQ(selected_algorithm(Collective::Alltoall, 16, 1 << 16), "alltoall_pairwise");
  EXPECT_EQ(selected_algorithm(Collective::Allgather, 16, 4),
            "allgather_recursive_doubling");
  EXPECT_EQ(selected_algorithm(Collective::Allgather, 12, 4), "allgather_bruck");
  EXPECT_EQ(selected_algorithm(Collective::Allgather, 16, 1 << 16), "allgather_ring");
  EXPECT_EQ(selected_algorithm(Collective::Allreduce, 16, 4),
            "allreduce_recursive_doubling");
  EXPECT_EQ(selected_algorithm(Collective::Allreduce, 16, 1 << 20), "allreduce_ring");
}

TEST(Selector, MakeCollectiveIsSemanticallyCorrect) {
  for (const std::int64_t count : {2, 100000}) {
    check_alltoall(make_collective(Collective::Alltoall, 6, count), 6, count);
    check_allreduce(make_collective(Collective::Allreduce, 6, count), 6, count);
    check_allgather(make_collective(Collective::Allgather, 6, count), 6, count);
    check_bcast(make_collective(Collective::Bcast, 6, count), 6, count, 0);
  }
}

TEST(Repeat, TriplesMessagesAndStaysValid) {
  const auto s = allgather_ring(5, 3);
  const auto r3 = repeat(s, 3);
  EXPECT_TRUE(r3.validate().empty());
  EXPECT_EQ(r3.messages.size(), 3 * s.messages.size());
  EXPECT_EQ(r3.total_bytes(), 3 * s.total_bytes());
  DataExecutor exec(r3);  // re-running the same collective is idempotent
  for (std::int32_t r = 0; r < 5; ++r) {
    exec.arena(r)[0] = value(r, 0, 0);
    exec.arena(r)[1] = value(r, 0, 1);
    exec.arena(r)[2] = value(r, 0, 2);
  }
  exec.run();
  for (std::int32_t r = 0; r < 5; ++r) {
    for (std::int32_t j = 0; j < 5; ++j) {
      ASSERT_DOUBLE_EQ(exec.arena(r)[static_cast<std::size_t>(3 + j * 3)], value(j, 0, 0));
    }
  }
}

TEST(Merge, TwoDisjointCommunicators) {
  const auto a = allreduce_recursive_doubling(2, 2);
  const auto b = allreduce_recursive_doubling(3, 2);
  const auto merged = merge({a, b}, {{0, 2}, {1, 3, 4}}, 5);
  EXPECT_TRUE(merged.validate().empty());
  DataExecutor exec(merged);
  for (std::int32_t g = 0; g < 5; ++g) {
    exec.arena(g)[0] = 10.0 * (g + 1);
  }
  exec.run();
  // Communicator A = global ranks {0, 2}: sum 10 + 30.
  EXPECT_DOUBLE_EQ(exec.arena(0)[2], 40.0);
  EXPECT_DOUBLE_EQ(exec.arena(2)[2], 40.0);
  // Communicator B = global ranks {1, 3, 4}: sum 20 + 40 + 50.
  EXPECT_DOUBLE_EQ(exec.arena(1)[2], 110.0);
  EXPECT_DOUBLE_EQ(exec.arena(3)[2], 110.0);
  EXPECT_DOUBLE_EQ(exec.arena(4)[2], 110.0);
}

TEST(Merge, RejectsOverlappingRankSets) {
  const auto a = allreduce_recursive_doubling(2, 2);
  EXPECT_THROW(merge({a, a}, {{0, 1}, {1, 2}}, 3), invalid_argument);
}

}  // namespace
}  // namespace mr::simmpi
