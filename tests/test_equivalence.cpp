// Order equivalence classes (§3.3's "similar orders" discussion).
#include "mixradix/mr/equivalence.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mixradix/util/expect.hpp"

namespace mr {
namespace {

// §3.3's worked example on [2,2,4] with communicators of 4:
// [2,0,1] and [2,1,0] map communicators to the same core sets (only
// exchanging whole communicators); [0,1,2] and [1,0,2] share core sets but
// differ in the internal rank order.
TEST(Equivalence, PaperExamplesOnFig2) {
  const Hierarchy h{2, 2, 4};

  const auto same_sets = classify_orders(h, 4, Equivalence::SameSetsOnly);
  const auto class_of = [&](const Order& order) -> const OrderClass* {
    for (const auto& cls : same_sets) {
      for (const auto& member : cls.members) {
        if (member == order) return &cls;
      }
    }
    return nullptr;
  };
  EXPECT_EQ(class_of({2, 0, 1}), class_of({2, 1, 0}));
  EXPECT_EQ(class_of({0, 1, 2}), class_of({1, 0, 2}));
  EXPECT_NE(class_of({0, 1, 2}), class_of({2, 1, 0}));

  // At the finer granularity, [0,1,2] and [1,0,2] separate (their ring
  // costs are 9 vs 7) while [2,0,1] and [2,1,0] stay together (each
  // communicator keeps its internal order; only the sockets swap).
  const auto internal = classify_orders(h, 4, Equivalence::SameSetsAndInternal);
  const auto class_of_internal = [&](const Order& order) -> const OrderClass* {
    for (const auto& cls : internal) {
      for (const auto& member : cls.members) {
        if (member == order) return &cls;
      }
    }
    return nullptr;
  };
  EXPECT_NE(class_of_internal({0, 1, 2}), class_of_internal({1, 0, 2}));
  EXPECT_EQ(class_of_internal({2, 0, 1}), class_of_internal({2, 1, 0}));
}

TEST(Equivalence, GranularitiesAreNested) {
  const Hierarchy h{2, 2, 4};
  for (std::int64_t comm_size : {2, 4, 8}) {
    const auto exact = classify_orders(h, comm_size, Equivalence::ExactPlacement);
    const auto internal =
        classify_orders(h, comm_size, Equivalence::SameSetsAndInternal);
    const auto sets = classify_orders(h, comm_size, Equivalence::SameSetsOnly);
    EXPECT_GE(exact.size(), internal.size());
    EXPECT_GE(internal.size(), sets.size());
    // Every order appears in exactly one class at each granularity.
    for (const auto& classes : {exact, internal, sets}) {
      std::set<Order> seen;
      for (const auto& cls : classes) {
        for (const auto& member : cls.members) {
          EXPECT_TRUE(seen.insert(member).second);
        }
      }
      EXPECT_EQ(static_cast<long long>(seen.size()), factorial(h.depth()));
    }
  }
}

TEST(Equivalence, ExactPlacementMergesOrdersWithIdenticalMaps) {
  // On [2,2,4], exact placement classes number fewer than 3! = 6 only when
  // two orders produce the same map — which never happens for distinct
  // radix patterns... with equal radices at two levels it can. Check a
  // hierarchy with repeated radices where swapping equal levels changes
  // the map anyway (levels are positional, not value-based).
  const Hierarchy h{2, 2, 2};
  const auto exact = classify_orders(h, 2, Equivalence::ExactPlacement);
  std::size_t members = 0;
  for (const auto& cls : exact) members += cls.members.size();
  EXPECT_EQ(members, 6u);
}

TEST(Equivalence, DistinctOrdersReturnsRepresentatives) {
  const Hierarchy h{16, 2, 2, 8};
  const auto reps = distinct_orders(h, 16, Equivalence::SameSetsAndInternal);
  EXPECT_LT(reps.size(), 24u);  // must actually deduplicate
  EXPECT_GE(reps.size(), 6u);
  const std::set<Order> unique(reps.begin(), reps.end());
  EXPECT_EQ(unique.size(), reps.size());
}

TEST(Equivalence, RepresentativeMetricsMatchMembers) {
  // Pair percentages are a class invariant at SameSetsOnly granularity.
  const Hierarchy h{2, 2, 4};
  for (const auto& cls : classify_orders(h, 4, Equivalence::SameSetsOnly)) {
    for (const auto& member : cls.members) {
      EXPECT_EQ(characterize_order(h, member, 4).pair_pct,
                cls.representative.pair_pct)
          << order_to_string(member);
    }
  }
}

TEST(Equivalence, ValidatesCommSize) {
  const Hierarchy h{2, 2, 4};
  EXPECT_THROW(classify_orders(h, 3, Equivalence::SameSetsOnly), invalid_argument);
  EXPECT_THROW(classify_orders(h, 0, Equivalence::SameSetsOnly), invalid_argument);
}

}  // namespace
}  // namespace mr
