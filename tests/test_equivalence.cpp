// Order equivalence classes (§3.3's "similar orders" discussion).
#include "mixradix/mr/equivalence.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mixradix/util/expect.hpp"

namespace mr {
namespace {

// §3.3's worked example on [2,2,4] with communicators of 4:
// [2,0,1] and [2,1,0] map communicators to the same core sets (only
// exchanging whole communicators); [0,1,2] and [1,0,2] share core sets but
// differ in the internal rank order.
TEST(Equivalence, PaperExamplesOnFig2) {
  const Hierarchy h{2, 2, 4};

  const auto same_sets = classify_orders(h, 4, Equivalence::SameSetsOnly);
  const auto class_of = [&](const Order& order) -> const OrderClass* {
    for (const auto& cls : same_sets) {
      for (const auto& member : cls.members) {
        if (member == order) return &cls;
      }
    }
    return nullptr;
  };
  EXPECT_EQ(class_of({2, 0, 1}), class_of({2, 1, 0}));
  EXPECT_EQ(class_of({0, 1, 2}), class_of({1, 0, 2}));
  EXPECT_NE(class_of({0, 1, 2}), class_of({2, 1, 0}));

  // At the finer granularity, [0,1,2] and [1,0,2] separate (their ring
  // costs are 9 vs 7) while [2,0,1] and [2,1,0] stay together (each
  // communicator keeps its internal order; only the sockets swap).
  const auto internal = classify_orders(h, 4, Equivalence::SameSetsAndInternal);
  const auto class_of_internal = [&](const Order& order) -> const OrderClass* {
    for (const auto& cls : internal) {
      for (const auto& member : cls.members) {
        if (member == order) return &cls;
      }
    }
    return nullptr;
  };
  EXPECT_NE(class_of_internal({0, 1, 2}), class_of_internal({1, 0, 2}));
  EXPECT_EQ(class_of_internal({2, 0, 1}), class_of_internal({2, 1, 0}));
}

TEST(Equivalence, GranularitiesAreNested) {
  const Hierarchy h{2, 2, 4};
  for (std::int64_t comm_size : {2, 4, 8}) {
    const auto exact = classify_orders(h, comm_size, Equivalence::ExactPlacement);
    const auto internal =
        classify_orders(h, comm_size, Equivalence::SameSetsAndInternal);
    const auto sets = classify_orders(h, comm_size, Equivalence::SameSetsOnly);
    EXPECT_GE(exact.size(), internal.size());
    EXPECT_GE(internal.size(), sets.size());
    // Every order appears in exactly one class at each granularity.
    for (const auto& classes : {exact, internal, sets}) {
      std::set<Order> seen;
      for (const auto& cls : classes) {
        for (const auto& member : cls.members) {
          EXPECT_TRUE(seen.insert(member).second);
        }
      }
      EXPECT_EQ(static_cast<long long>(seen.size()), factorial(h.depth()));
    }
  }
}

TEST(Equivalence, ExactPlacementMergesOrdersWithIdenticalMaps) {
  // On [2,2,4], exact placement classes number fewer than 3! = 6 only when
  // two orders produce the same map — which never happens for distinct
  // radix patterns... with equal radices at two levels it can. Check a
  // hierarchy with repeated radices where swapping equal levels changes
  // the map anyway (levels are positional, not value-based).
  const Hierarchy h{2, 2, 2};
  const auto exact = classify_orders(h, 2, Equivalence::ExactPlacement);
  std::size_t members = 0;
  for (const auto& cls : exact) members += cls.members.size();
  EXPECT_EQ(members, 6u);
}

TEST(Equivalence, DistinctOrdersReturnsRepresentatives) {
  const Hierarchy h{16, 2, 2, 8};
  const auto reps = distinct_orders(h, 16, Equivalence::SameSetsAndInternal);
  EXPECT_LT(reps.size(), 24u);  // must actually deduplicate
  EXPECT_GE(reps.size(), 6u);
  const std::set<Order> unique(reps.begin(), reps.end());
  EXPECT_EQ(unique.size(), reps.size());
}

TEST(Equivalence, RepresentativeMetricsMatchMembers) {
  // Pair percentages are a class invariant at SameSetsOnly granularity.
  const Hierarchy h{2, 2, 4};
  for (const auto& cls : classify_orders(h, 4, Equivalence::SameSetsOnly)) {
    for (const auto& member : cls.members) {
      EXPECT_EQ(characterize_order(h, member, 4).pair_pct,
                cls.representative.pair_pct)
          << order_to_string(member);
    }
  }
}

TEST(Equivalence, ValidatesCommSize) {
  const Hierarchy h{2, 2, 4};
  EXPECT_THROW(classify_orders(h, 3, Equivalence::SameSetsOnly), invalid_argument);
  EXPECT_THROW(classify_orders(h, 0, Equivalence::SameSetsOnly), invalid_argument);
}

constexpr Equivalence kGranularities[] = {Equivalence::ExactPlacement,
                                          Equivalence::SameSetsAndInternal,
                                          Equivalence::SameSetsOnly};

// Byte-level equality of two classifications: same classes in the same
// order, same members, and bit-identical representative characters.
void expect_same_classes(const std::vector<OrderClass>& a,
                         const std::vector<OrderClass>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].members, b[i].members) << "class " << i;
    EXPECT_EQ(a[i].representative.order, b[i].representative.order);
    EXPECT_EQ(a[i].representative.ring_cost, b[i].representative.ring_cost);
    EXPECT_EQ(a[i].representative.pair_pct, b[i].representative.pair_pct);
  }
}

// The hashed two-pass classifier must reproduce the map-based reference
// exactly — including on a depth-6 hierarchy with repeated radices (the
// regime the hash path exists for) and for every granularity.
TEST(HashedClassifier, MatchesReferenceClassifier) {
  struct Case {
    Hierarchy hierarchy;
    std::vector<std::int64_t> comm_sizes;
  };
  const std::vector<Case> cases = {
      {Hierarchy{2, 2, 4}, {2, 4, 8, 16}},
      {Hierarchy{16, 2, 2, 8}, {16, 128}},
      {Hierarchy{2, 2, 2, 3, 3, 4}, {4, 24, 288}},  // depth 6, 288 procs
  };
  for (const auto& c : cases) {
    for (const std::int64_t comm_size : c.comm_sizes) {
      for (const Equivalence granularity : kGranularities) {
        ClassifyStats fast_stats;
        const auto fast = classify_orders(c.hierarchy, comm_size, granularity, 1,
                                          MetricsImpl::Fast, &fast_stats);
        ClassifyStats ref_stats;
        const auto ref = classify_orders(c.hierarchy, comm_size, granularity, 1,
                                         MetricsImpl::Reference, &ref_stats);
        expect_same_classes(fast, ref);

        const long long orders = factorial(c.hierarchy.depth());
        EXPECT_EQ(fast_stats.orders, orders);
        EXPECT_EQ(fast_stats.signatures_hashed, orders);
        EXPECT_EQ(fast_stats.classes, static_cast<long long>(fast.size()));
        EXPECT_EQ(fast_stats.hash_collisions, 0);
        EXPECT_EQ(ref_stats.orders, orders);
        EXPECT_EQ(ref_stats.signatures_hashed, 0);  // map path: no hashing
      }
    }
  }
}

// Determinism guarantee under TSan: the pass-1 hash and pass-2 verify fan
// out over the shared pool, yet the classification must be byte-identical
// to the serial path for every granularity and both kernel impls.
TEST(HashedClassifier, DeterministicAcrossThreadCounts) {
  const Hierarchy h{2, 2, 2, 3, 3, 4};  // 720 orders
  for (const Equivalence granularity : kGranularities) {
    const auto serial =
        classify_orders(h, 24, granularity, 1, MetricsImpl::Fast);
    const auto threaded =
        classify_orders(h, 24, granularity, 4, MetricsImpl::Fast);
    expect_same_classes(serial, threaded);
    const auto ref_threaded =
        classify_orders(h, 24, granularity, 4, MetricsImpl::Reference);
    expect_same_classes(serial, ref_threaded);
  }
}

TEST(HashedClassifier, SingletonCommunicatorsClassify) {
  // comm_size 1: every communicator is one core, so the core-set multiset
  // is the whole machine for every order — a single class at both set
  // granularities — while exact placement still separates orders.
  const Hierarchy h{2, 2, 4};
  for (const MetricsImpl impl : {MetricsImpl::Fast, MetricsImpl::Reference}) {
    const auto sets = classify_orders(h, 1, Equivalence::SameSetsOnly, 0, impl);
    ASSERT_EQ(sets.size(), 1u);
    EXPECT_EQ(sets[0].members.size(), 6u);
    EXPECT_EQ(sets[0].representative.ring_cost, 0);
    EXPECT_TRUE(sets[0].representative.pair_pct.empty());
    const auto internal =
        classify_orders(h, 1, Equivalence::SameSetsAndInternal, 0, impl);
    EXPECT_EQ(internal.size(), 1u);
    const auto exact =
        classify_orders(h, 1, Equivalence::ExactPlacement, 0, impl);
    EXPECT_EQ(exact.size(), 6u);
  }
}

TEST(HashedClassifier, DistinctOrdersAgreesAcrossImpls) {
  const Hierarchy h{16, 2, 2, 8};
  EXPECT_EQ(
      distinct_orders(h, 16, Equivalence::SameSetsAndInternal, 0,
                      MetricsImpl::Fast),
      distinct_orders(h, 16, Equivalence::SameSetsAndInternal, 0,
                      MetricsImpl::Reference));
}

void expect_classes_equal(const std::vector<OrderClass>& got,
                          const std::vector<OrderClass>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t c = 0; c < got.size(); ++c) {
    EXPECT_EQ(got[c].members, want[c].members) << "class " << c;
    EXPECT_EQ(got[c].representative.order, want[c].representative.order);
    EXPECT_EQ(got[c].representative.ring_cost,
              want[c].representative.ring_cost);
    EXPECT_EQ(got[c].representative.pair_pct, want[c].representative.pair_pct);
  }
}

TEST(CoarsenClasses, MatchesDirectClassificationAtBothGranularities) {
  for (const Hierarchy& h : {Hierarchy{2, 2, 4}, Hierarchy{2, 2, 2, 4}}) {
    for (const std::int64_t comm_size : {h.total() / 2, h.total()}) {
      const auto exact =
          classify_orders(h, comm_size, Equivalence::ExactPlacement);
      for (const Equivalence coarser :
           {Equivalence::SameSetsAndInternal, Equivalence::SameSetsOnly}) {
        expect_classes_equal(
            coarsen_classes(h, comm_size, exact, coarser),
            classify_orders(h, comm_size, coarser));
      }
    }
  }
}

TEST(CoarsenClasses, ExactGranularityIsIdentity) {
  const Hierarchy h{2, 2, 4};
  const auto exact = classify_orders(h, 4, Equivalence::ExactPlacement);
  expect_classes_equal(
      coarsen_classes(h, 4, exact, Equivalence::ExactPlacement), exact);
}

}  // namespace
}  // namespace mr
