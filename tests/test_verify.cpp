// Static schedule verification: the full generator matrix must analyze
// clean, and hand-built adversarial schedules must be rejected with
// diagnostics naming the culprit rank/round/message.
#include "mixradix/verify/verify.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/simmpi/data_executor.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/verify/generator_matrix.hpp"

namespace mr::verify {
namespace {

using simmpi::Combine;
using simmpi::CopyOp;
using simmpi::Region;
using simmpi::Schedule;

// Adversarial schedules are assembled as raw IR, not via ScheduleBuilder:
// the builder rejects some of them outright, and under the
// MIXRADIX_VERIFY_SCHEDULES build option it would reject all of them.
Schedule blank(std::int32_t nranks, std::int64_t arena) {
  Schedule s;
  s.nranks = nranks;
  s.arena_size = arena;
  s.programs.resize(static_cast<std::size_t>(nranks));
  return s;
}

simmpi::Round& round_of(Schedule& s, std::int32_t rank, int round) {
  auto& rounds = s.programs[static_cast<std::size_t>(rank)].rounds;
  if (rounds.size() <= static_cast<std::size_t>(round)) {
    rounds.resize(static_cast<std::size_t>(round) + 1);
  }
  return rounds[static_cast<std::size_t>(round)];
}

std::int32_t add_message(Schedule& s, std::int32_t src, int send_round,
                         Region src_region, std::int32_t dst, int recv_round,
                         Region dst_region,
                         Combine combine = Combine::Replace) {
  const auto id = static_cast<std::int32_t>(s.messages.size());
  s.messages.push_back(
      simmpi::MsgInfo{src, dst, src_region, dst_region, combine});
  round_of(s, src, send_round).sends.push_back(simmpi::SendOp{id});
  round_of(s, dst, recv_round).recvs.push_back(simmpi::RecvOp{id});
  return id;
}

bool has(const Report& report, Severity severity, Check check) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.severity == severity && d.check == check;
                     });
}

const Diagnostic* first(const Report& report, Check check) {
  for (const auto& d : report.diagnostics) {
    if (d.check == check) return &d;
  }
  return nullptr;
}

// ---- Generator matrix acceptance -------------------------------------------

TEST(VerifyMatrix, EveryGeneratedScheduleAnalyzesClean) {
  const auto points =
      generator_matrix({1, 2, 3, 4, 5, 8, 13, 16}, {1, 5, 1000});
  ASSERT_GT(points.size(), 100u);
  for (const auto& point : points) {
    const Schedule s = point.make();
    const Report report = analyze(s);
    EXPECT_TRUE(report.clean())
        << point.name << " rejected:\n" << report.to_string();
  }
}

TEST(VerifyMatrix, CoversTheCompositionShapes) {
  const auto names = algorithm_names();
  for (const char* required : {"repeat", "concat", "merge", "concat_merge"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
  }
  const auto points = generator_matrix({4}, {8});
  const auto by_name = [&](const std::string& algorithm) {
    return std::any_of(points.begin(), points.end(),
                       [&](const MatrixPoint& p) {
                         return p.algorithm == algorithm;
                       });
  };
  EXPECT_TRUE(by_name("repeat"));
  EXPECT_TRUE(by_name("concat"));
  EXPECT_TRUE(by_name("merge"));
  EXPECT_TRUE(by_name("concat_merge"));
}

TEST(VerifyMatrix, MakeNamedRejectsUnsupportedPoints) {
  EXPECT_THROW(make_named("no_such_algorithm", 4, 8), invalid_argument);
  EXPECT_THROW(make_named("allgather_recursive_doubling", 6, 8),
               invalid_argument);
  EXPECT_FALSE(supports("allgather_recursive_doubling", 6));
  EXPECT_TRUE(supports("allgather_recursive_doubling", 8));
  EXPECT_TRUE(analyze(make_named("alltoall_bruck", 6, 16)).clean());
}

// Steady-state repetition overwrites the previous iteration's unread
// results by design: the analyzer must accept it (no errors) while still
// surfacing the dead writes as warnings.
TEST(VerifyMatrix, RepeatIsCleanButHasDeadWriteWarnings) {
  const Schedule s = simmpi::repeat(simmpi::allreduce_ring(4, 8), 2);
  const Report report = analyze(s);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(has(report, Severity::Warning, Check::DeadWrite))
      << report.to_string();
}

// ---- Adversarial: deadlock -------------------------------------------------

// The classic send/recv round inversion: each rank's round-0 receive waits
// for a message the peer only posts in round 1, behind its own stuck recv.
Schedule round_inversion() {
  Schedule s = blank(2, 4);
  add_message(s, 0, 1, Region{0, 2}, 1, 0, Region{2, 2});
  add_message(s, 1, 1, Region{0, 2}, 0, 0, Region{2, 2});
  return s;
}

TEST(VerifyDeadlock, RoundInversionReportsTheFullCycle) {
  const Report report = analyze(round_inversion());
  EXPECT_FALSE(report.clean());
  const Diagnostic* d = first(report, Check::Deadlock);
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->severity, Severity::Error);
  // The trace names every node of the cycle: both ranks, their stuck
  // rounds, and both messages.
  EXPECT_NE(d->text.find("cycle"), std::string::npos) << d->text;
  EXPECT_NE(d->text.find("rank 0"), std::string::npos) << d->text;
  EXPECT_NE(d->text.find("rank 1"), std::string::npos) << d->text;
  EXPECT_NE(d->text.find("message 0"), std::string::npos) << d->text;
  EXPECT_NE(d->text.find("message 1"), std::string::npos) << d->text;
  EXPECT_NE(d->text.find("round 0"), std::string::npos) << d->text;
}

TEST(VerifyDeadlock, ThreeRankCycleNamesEveryRank) {
  Schedule s = blank(3, 4);
  add_message(s, 0, 1, Region{0, 2}, 1, 0, Region{2, 2});
  add_message(s, 1, 1, Region{0, 2}, 2, 0, Region{2, 2});
  add_message(s, 2, 1, Region{0, 2}, 0, 0, Region{2, 2});
  const Report report = analyze(s);
  const Diagnostic* d = first(report, Check::Deadlock);
  ASSERT_NE(d, nullptr) << report.to_string();
  for (const char* rank : {"rank 0", "rank 1", "rank 2"}) {
    EXPECT_NE(d->text.find(rank), std::string::npos) << d->text;
  }
}

TEST(VerifyDeadlock, SelfMessageBehindItsOwnReceiveDeadlocks) {
  // Rank 0 receives message 0 in round 0 but only posts it in round 1:
  // a one-rank happens-before cycle (plus the self-message warning).
  Schedule s = blank(2, 4);
  add_message(s, 0, 1, Region{0, 2}, 0, 0, Region{2, 2});
  const Report report = analyze(s);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has(report, Severity::Error, Check::Deadlock))
      << report.to_string();
}

TEST(VerifyDeadlock, CrossRoundMessagingInTheRightDirectionIsClean) {
  // Posting early and receiving late is fine; only the inversion deadlocks.
  Schedule s = blank(2, 4);
  add_message(s, 0, 0, Region{0, 2}, 1, 1, Region{2, 2});
  add_message(s, 1, 0, Region{0, 2}, 0, 1, Region{2, 2});
  EXPECT_TRUE(analyze(s).clean());
}

TEST(VerifyDeadlock, ExecutorBackstopCarriesTheCycleTrace) {
  simmpi::DataExecutor exec(round_inversion(), simmpi::Preverify::OnDeadlock);
  try {
    exec.run();
    FAIL() << "deadlocking schedule ran to completion";
  } catch (const invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("message 0"), std::string::npos)
        << e.what();
  }
}

TEST(VerifyDeadlock, UpfrontPreverifyRejectsAtConstruction) {
  EXPECT_THROW(
      simmpi::DataExecutor(round_inversion(), simmpi::Preverify::Upfront),
      invalid_argument);
}

// ---- Adversarial: write races ----------------------------------------------

TEST(VerifyRace, OverlappingReplaceReceivesAreRejected) {
  Schedule s = blank(3, 8);
  add_message(s, 0, 0, Region{0, 4}, 1, 0, Region{4, 4});
  add_message(s, 2, 0, Region{0, 2}, 1, 0, Region{6, 2});  // overlaps [4,8)
  const Report report = analyze(s);
  EXPECT_FALSE(report.clean());
  const Diagnostic* d = first(report, Check::Race);
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->rank, 1);
  EXPECT_EQ(d->round, 0);
  EXPECT_NE(d->text.find("message 0"), std::string::npos) << d->text;
  EXPECT_NE(d->text.find("message 1"), std::string::npos) << d->text;
}

TEST(VerifyRace, OverlappingCommutativeReceivesAreAllowed) {
  Schedule s = blank(3, 8);
  add_message(s, 0, 0, Region{0, 4}, 1, 0, Region{4, 4}, Combine::Sum);
  add_message(s, 2, 0, Region{0, 4}, 1, 0, Region{4, 4}, Combine::Sum);
  EXPECT_TRUE(analyze(s).clean());
}

TEST(VerifyRace, MixedCombinesOnOverlapAreRejected) {
  // sum-then-replace vs replace-then-sum differ: order-dependent.
  Schedule s = blank(3, 8);
  add_message(s, 0, 0, Region{0, 4}, 1, 0, Region{4, 4}, Combine::Sum);
  add_message(s, 2, 0, Region{0, 4}, 1, 0, Region{4, 4}, Combine::Replace);
  EXPECT_TRUE(has(analyze(s), Severity::Error, Check::Race));
}

TEST(VerifyRace, CopyIntoAPostedReceiveBufferIsRejected) {
  Schedule s = blank(2, 8);
  add_message(s, 0, 0, Region{0, 4}, 1, 0, Region{4, 4});
  round_of(s, 1, 0).copies.push_back(
      CopyOp{Region{0, 2}, Region{5, 2}, Combine::Replace});
  const Report report = analyze(s);
  EXPECT_FALSE(report.clean());
  const Diagnostic* d = first(report, Check::Race);
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->rank, 1);
  EXPECT_NE(d->text.find("copy"), std::string::npos) << d->text;
}

TEST(VerifyRace, OverlappingLocalCopiesOnlyWarn) {
  Schedule s = blank(1, 16);
  round_of(s, 0, 0).copies.push_back(
      CopyOp{Region{0, 4}, Region{8, 4}, Combine::Replace});
  round_of(s, 0, 0).copies.push_back(
      CopyOp{Region{2, 4}, Region{10, 4}, Combine::Replace});
  const Report report = analyze(s);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(has(report, Severity::Warning, Check::Race))
      << report.to_string();
}

TEST(VerifyRace, DisjointSameRoundWritesAreClean) {
  Schedule s = blank(3, 16);
  add_message(s, 0, 0, Region{0, 4}, 1, 0, Region{4, 4});
  add_message(s, 2, 0, Region{0, 4}, 1, 0, Region{8, 4});
  EXPECT_TRUE(analyze(s).clean());
}

// ---- Adversarial: conservation & structure ---------------------------------

TEST(VerifyConservation, ByteCountMismatchNamesTheMessage) {
  Schedule s = blank(2, 8);
  add_message(s, 0, 0, Region{0, 4}, 1, 0, Region{0, 2});
  const Report report = analyze(s);
  EXPECT_FALSE(report.clean());
  const Diagnostic* d = first(report, Check::Conservation);
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->msg, 0);
  EXPECT_NE(d->text.find("32 B"), std::string::npos) << d->text;
  EXPECT_NE(d->text.find("16 B"), std::string::npos) << d->text;
  EXPECT_NE(d->text.find("not conserved"), std::string::npos) << d->text;
}

TEST(VerifyConservation, DoubleSendNamesRankAndMessage) {
  Schedule s = blank(2, 8);
  const auto id = add_message(s, 0, 0, Region{0, 4}, 1, 0, Region{4, 4});
  round_of(s, 0, 1).sends.push_back(simmpi::SendOp{id});
  const Report report = analyze(s);
  EXPECT_FALSE(report.clean());
  const Diagnostic* d = first(report, Check::Conservation);
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->msg, 0);
  EXPECT_NE(d->text.find("2 times"), std::string::npos) << d->text;
  EXPECT_NE(d->text.find("rank 0"), std::string::npos) << d->text;
}

TEST(VerifyConservation, DroppedPayloadIsRejected) {
  Schedule s = blank(2, 8);
  add_message(s, 0, 0, Region{0, 4}, 1, 0, Region{4, 4});
  s.programs[1].rounds[0].recvs.clear();  // payload is never received
  const Report report = analyze(s);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has(report, Severity::Error, Check::Conservation))
      << report.to_string();
}

TEST(VerifyStructure, OutOfArenaRegionNamesTheMessage) {
  Schedule s = blank(2, 8);
  add_message(s, 0, 0, Region{6, 4}, 1, 0, Region{4, 4});  // [6,10) > 8
  const Report report = analyze(s);
  EXPECT_FALSE(report.clean());
  const Diagnostic* d = first(report, Check::Structure);
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->msg, 0);
  EXPECT_NE(d->text.find("arena"), std::string::npos) << d->text;
}

TEST(VerifyStructure, DanglingMessageReferenceShortCircuits) {
  Schedule s = blank(2, 8);
  round_of(s, 0, 0).sends.push_back(simmpi::SendOp{7});
  const Report report = analyze(s);
  EXPECT_FALSE(report.clean());
  const Diagnostic* d = first(report, Check::Structure);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->text.find("unknown message 7"), std::string::npos) << d->text;
  // Deeper passes must not run on a schedule they cannot index safely.
  EXPECT_FALSE(has(report, Severity::Error, Check::Deadlock));
}

TEST(VerifyStructure, SelfMessageOnlyWarns) {
  Schedule s = blank(2, 8);
  add_message(s, 0, 0, Region{0, 4}, 0, 0, Region{4, 4});
  const Report report = analyze(s);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(has(report, Severity::Warning, Check::Structure))
      << report.to_string();
}

// ---- Liveness lints --------------------------------------------------------

TEST(VerifyDataflow, FullyOverwrittenUnreadWriteIsDead) {
  Schedule s = blank(1, 8);
  round_of(s, 0, 0).copies.push_back(
      CopyOp{Region{0, 2}, Region{4, 2}, Combine::Replace});
  round_of(s, 0, 1).copies.push_back(
      CopyOp{Region{2, 2}, Region{4, 2}, Combine::Replace});
  const Report report = analyze(s);
  EXPECT_TRUE(report.clean()) << report.to_string();
  const Diagnostic* d = first(report, Check::DeadWrite);
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->rank, 0);
  EXPECT_EQ(d->round, 0);
}

TEST(VerifyDataflow, ReadOrPartialSurvivalKeepsAWriteAlive) {
  // Same shape, but the first write is read before being overwritten.
  Schedule s = blank(2, 8);
  round_of(s, 0, 0).copies.push_back(
      CopyOp{Region{0, 2}, Region{4, 2}, Combine::Replace});
  add_message(s, 0, 1, Region{4, 2}, 1, 1, Region{0, 2});  // reads [4,6)
  round_of(s, 0, 2).copies.push_back(
      CopyOp{Region{2, 2}, Region{4, 2}, Combine::Replace});
  const Report report = analyze(s);
  EXPECT_FALSE(has(report, Severity::Warning, Check::DeadWrite))
      << report.to_string();
}

TEST(VerifyDataflow, AccumulatingOverwriteReadsThePreviousValue) {
  // A Sum combine consumes the previous contents: not a dead write.
  Schedule s = blank(1, 8);
  round_of(s, 0, 0).copies.push_back(
      CopyOp{Region{0, 2}, Region{4, 2}, Combine::Replace});
  round_of(s, 0, 1).copies.push_back(
      CopyOp{Region{2, 2}, Region{4, 2}, Combine::Sum});
  EXPECT_FALSE(has(analyze(s), Severity::Warning, Check::DeadWrite));
}

TEST(VerifyDataflow, InputInferenceFollowsOptions) {
  Schedule s = blank(1, 8);
  round_of(s, 0, 0).copies.push_back(
      CopyOp{Region{0, 2}, Region{4, 2}, Combine::Replace});

  EXPECT_TRUE(analyze(s).diagnostics.empty());  // inputs assumed initialised

  Options report_inputs;
  report_inputs.report_inputs = true;
  const Report inputs = analyze(s, report_inputs);
  const Diagnostic* d = first(inputs, Check::UninitRead);
  ASSERT_NE(d, nullptr) << inputs.to_string();
  EXPECT_EQ(d->severity, Severity::Info);
  EXPECT_NE(d->text.find("[0, 2)"), std::string::npos) << d->text;

  Options strict;
  strict.assume_inputs_initialized = false;
  const Report uninit = analyze(s, strict);
  EXPECT_TRUE(has(uninit, Severity::Warning, Check::UninitRead))
      << uninit.to_string();
}

// ---- Report plumbing -------------------------------------------------------

TEST(VerifyReport, SummaryCountsAndSuppression) {
  // p overlapping Replace receives on one rank: O(p^2) conflicts, far more
  // than the diagnostic cap.
  Schedule s = blank(9, 64);
  for (std::int32_t src = 1; src < 9; ++src) {
    add_message(s, src, 0, Region{0, 8}, 0, 0, Region{8, 8});
  }
  Options options;
  options.max_diagnostics = 4;
  const Report report = analyze(s, options);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.diagnostics.size(), 5u);  // 4 kept + the suppression note
  EXPECT_NE(report.to_string().find("suppressed"), std::string::npos);
  EXPECT_NE(report.summary().find("errors"), std::string::npos);
}

TEST(VerifyReport, DiagnosticToStringCarriesLocations) {
  Diagnostic d;
  d.severity = Severity::Error;
  d.check = Check::Race;
  d.rank = 3;
  d.round = 2;
  d.msg = 7;
  d.text = "boom";
  EXPECT_EQ(d.to_string(), "error[race] rank 3 round 2 msg 7: boom");
}

TEST(VerifyReport, EmptyScheduleIsClean) {
  const Report report = analyze(blank(1, 0));
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.diagnostics.empty());
}

}  // namespace
}  // namespace mr::verify
