// Compiled-plan tests: registry/selector consistency, the flattened
// execution CSR, and the executor's repetition loop against materialized
// repeat() schedules.
#include "mixradix/simmpi/plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/simmpi/data_executor.hpp"
#include "mixradix/simmpi/registry.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/verify/generator_matrix.hpp"

namespace mr::simmpi {
namespace {

TEST(Registry, EveryEntryHasNamePredicateAndGenerator) {
  const auto& reg = algorithm_registry();
  ASSERT_FALSE(reg.empty());
  for (const AlgorithmInfo& e : reg) {
    EXPECT_NE(e.name, nullptr);
    EXPECT_NE(e.supported, nullptr);
    EXPECT_NE(e.make, nullptr);
    EXPECT_EQ(find_algorithm(e.name), &e);
  }
}

TEST(Registry, FindUnknownReturnsNull) {
  EXPECT_EQ(find_algorithm("alltoall_quantum"), nullptr);
}

TEST(Registry, MakeAlgorithmMatchesDirectGenerators) {
  const Schedule direct = alltoall_bruck(8, 100);
  const Schedule named = make_algorithm("alltoall_bruck", 8, 100);
  EXPECT_EQ(named.nranks, direct.nranks);
  EXPECT_EQ(named.arena_size, direct.arena_size);
  EXPECT_EQ(named.messages.size(), direct.messages.size());
  EXPECT_EQ(named.total_bytes(), direct.total_bytes());
}

TEST(Registry, MakeAlgorithmValidatesArguments) {
  EXPECT_THROW(make_algorithm("no_such_algorithm", 4, 1), mr::invalid_argument);
  EXPECT_THROW(make_algorithm("allgather_recursive_doubling", 6, 1),
               mr::invalid_argument);
  EXPECT_THROW(make_algorithm("alltoall_bruck", 4, 0), mr::invalid_argument);
  EXPECT_THROW(make_algorithm("bcast_binomial", 4, 1, 4), mr::invalid_argument);
  EXPECT_THROW(make_algorithm("bcast_binomial", 4, 1, -1),
               mr::invalid_argument);
}

// The selector must only ever pick names the registry can compile — this is
// the contract that lets the harness route every collective through the
// plan cache by name.
TEST(Registry, SelectorOnlyPicksRegisteredAlgorithms) {
  const std::vector<Collective> kinds = {
      Collective::Alltoall,  Collective::Allgather, Collective::Allreduce,
      Collective::Bcast,     Collective::Reduce,    Collective::Gather,
      Collective::Scatter,   Collective::ReduceScatter,
      Collective::Scan,      Collective::Barrier,
  };
  for (const Collective kind : kinds) {
    for (const std::int32_t p : {2, 3, 16}) {
      for (const std::int64_t count : {std::int64_t{1}, std::int64_t{65536}}) {
        const std::string name = selected_algorithm(kind, p, count, 8192);
        const AlgorithmInfo* info = find_algorithm(name);
        ASSERT_NE(info, nullptr) << name;
        EXPECT_TRUE(info->supported(p)) << name << " p=" << p;
      }
    }
  }
}

// The verify generator matrix delegates to the same registry: every
// registry name is a matrix name and instantiates identically.
TEST(Registry, VerifyMatrixDelegatesToRegistry) {
  const auto names = verify::algorithm_names();
  for (const AlgorithmInfo& e : algorithm_registry()) {
    EXPECT_NE(std::find(names.begin(), names.end(), e.name), names.end())
        << e.name;
    EXPECT_EQ(verify::supports(e.name, 16), e.supported(16));
    const Schedule a = verify::make_named(e.name, 4, 40, 0);
    const Schedule b = make_algorithm(e.name, 4, 40, 0);
    EXPECT_EQ(a.messages.size(), b.messages.size()) << e.name;
    EXPECT_EQ(a.total_bytes(), b.total_bytes()) << e.name;
  }
}

TEST(PlanExec, CsrMatchesSchedule) {
  const Schedule s = make_algorithm("allgather_ring", 5, 20);
  const PlanExec exec = derive_exec(s);
  ASSERT_EQ(exec.rank_rounds_begin.size(), static_cast<std::size_t>(s.nranks) + 1);
  EXPECT_EQ(exec.rank_rounds_begin.front(), 0);
  EXPECT_EQ(exec.msg_bytes.size(), s.messages.size());
  for (std::size_t m = 0; m < s.messages.size(); ++m) {
    EXPECT_EQ(exec.msg_bytes[m], s.messages[m].bytes());
  }
  std::int64_t flat = 0;
  for (std::int32_t rank = 0; rank < s.nranks; ++rank) {
    const auto& rounds = s.programs[static_cast<std::size_t>(rank)].rounds;
    EXPECT_EQ(exec.rounds_of(rank), static_cast<std::int64_t>(rounds.size()));
    for (const Round& round : rounds) {
      const auto gi = static_cast<std::size_t>(flat);
      EXPECT_EQ(exec.round_compute[gi], round.compute_seconds);
      const auto sends_begin = static_cast<std::size_t>(exec.send_begin[gi]);
      const auto recvs_begin = static_cast<std::size_t>(exec.recv_begin[gi]);
      ASSERT_EQ(exec.send_begin[gi + 1] - exec.send_begin[gi],
                static_cast<std::int64_t>(round.sends.size()));
      ASSERT_EQ(exec.recv_begin[gi + 1] - exec.recv_begin[gi],
                static_cast<std::int64_t>(round.recvs.size()));
      for (std::size_t i = 0; i < round.sends.size(); ++i) {
        EXPECT_EQ(exec.send_msg[sends_begin + i], round.sends[i].msg);
      }
      for (std::size_t i = 0; i < round.recvs.size(); ++i) {
        EXPECT_EQ(exec.recv_msg[recvs_begin + i], round.recvs[i].msg);
      }
      std::int64_t copy_doubles = 0;
      for (const CopyOp& op : round.copies) copy_doubles += op.dst.count;
      EXPECT_EQ(exec.round_copy_doubles[gi], copy_doubles);
      ++flat;
    }
  }
  EXPECT_EQ(exec.rank_rounds_begin.back(), flat);
}

TEST(Plan, MakePlanRejectsNonPositiveRepetitions) {
  EXPECT_THROW(make_plan(make_algorithm("barrier_dissemination", 4, 1), 0),
               mr::invalid_argument);
}

TEST(Plan, CompilePlanCarriesAlgorithmAndCounts) {
  const Plan plan = compile_plan("alltoall_pairwise", 8, 64, 0, 3);
  EXPECT_EQ(plan.algorithm, "alltoall_pairwise");
  EXPECT_EQ(plan.nranks(), 8);
  EXPECT_EQ(plan.repetitions, 3);
  EXPECT_EQ(plan.total_messages(), plan.messages_per_rep() * 3);
#ifdef MIXRADIX_VERIFY_SCHEDULES
  ASSERT_NE(plan.report, nullptr);
  EXPECT_TRUE(plan.report->clean());
#else
  EXPECT_EQ(plan.report, nullptr);
#endif
}

// The load-bearing equivalence: executing a plan's repetition count as a
// loop must reproduce the materialized repeat() schedule bit for bit —
// the sweep CSVs depend on it.
TEST(Plan, RepetitionLoopMatchesMaterializedRepeat) {
  const auto machine = topo::testbox();
  const std::vector<std::int64_t> cores = {0, 1, 4, 5, 8, 9, 12, 13};
  for (const char* name :
       {"alltoall_pairwise", "allreduce_recursive_doubling",
        "allgather_bruck", "reduce_scatter_ring"}) {
    for (const int reps : {1, 2, 5}) {
      const Schedule once = make_algorithm(name, 8, 300);
      const Schedule materialized = repeat(once, reps);
      const double expect =
          run_timed_single(machine, materialized, cores);
      const Plan plan = make_plan(once, reps, name);
      const double got = run_timed_plan_single(machine, plan, cores);
      EXPECT_EQ(got, expect) << name << " reps=" << reps;
    }
  }
}

TEST(Plan, RepetitionLoopMatchesRepeatUnderContention) {
  const auto machine = topo::testbox();
  const Schedule once = make_algorithm("alltoall_pairwise", 4, 2048);
  const Schedule materialized = repeat(once, 3);
  const auto plan = std::make_shared<const Plan>(make_plan(once, 3));
  const std::vector<std::vector<std::int64_t>> bindings = {
      {0, 1, 2, 3}, {8, 9, 10, 11}};

  std::vector<JobSpec> legacy;
  std::vector<PlanJob> jobs;
  for (const auto& cores : bindings) {
    legacy.push_back(JobSpec{&materialized, cores, 0.0});
    jobs.push_back(PlanJob{plan, cores, 0.0});
  }
  const TimedResult a = run_timed(machine, legacy);
  const TimedResult b = run_timed(machine, jobs);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.job_finish.size(), b.job_finish.size());
  for (std::size_t i = 0; i < a.job_finish.size(); ++i) {
    EXPECT_EQ(a.job_finish[i], b.job_finish[i]);
  }
  EXPECT_EQ(a.total_messages, b.total_messages);
}

TEST(Plan, EmptyRankProgramsFinishImmediately) {
  // A schedule where some ranks have no rounds at all must not trip the
  // repetition arithmetic (rounds_per_rep == 0).
  ScheduleBuilder b(3, 4);
  b.exchange(0, 0, Region{0, 4}, 2, Region{0, 4});  // rank 1 idle
  const Plan plan = make_plan(std::move(b).build(), 4);
  const auto machine = topo::testbox();
  const double t = run_timed_plan_single(machine, plan, {0, 1, 2});
  EXPECT_GT(t, 0.0);
}

TEST(Plan, DataExecutorRunsPlansWithRepetitions) {
  // allreduce twice: the second repetition re-sums the already-reduced
  // arenas, so every rank ends with p^2 * initial (initial = rank + 1,
  // summed = p(p+1)/2, then p * that... verified against the materialized
  // DataExecutor run instead of hand-arithmetic).
  const auto plan = std::make_shared<const Plan>(
      make_plan(make_algorithm("allreduce_recursive_doubling", 4, 8), 2));
  DataExecutor via_plan(plan);
  DataExecutor materialized(repeat(plan->schedule, 2));
  for (std::int32_t rank = 0; rank < 4; ++rank) {
    for (auto* ex : {&via_plan, &materialized}) {
      auto& arena = ex->arena(rank);
      std::fill(arena.begin(), arena.end(), static_cast<double>(rank + 1));
    }
  }
  via_plan.run();
  materialized.run();
  for (std::int32_t rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(via_plan.arena(rank), materialized.arena(rank)) << rank;
  }
}

}  // namespace
}  // namespace mr::simmpi
