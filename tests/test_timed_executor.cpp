// Timing-model tests. topo::testbox() has zero latencies/overheads and
// round link speeds (node 1 GB/s, socket 2 GB/s, core 4 GB/s), so transfer
// durations are exactly predictable.
#include "mixradix/simmpi/timed_executor.hpp"

#include <gtest/gtest.h>

#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simmpi {
namespace {

// 1M doubles = 8 MB.
constexpr std::int64_t kBig = 1'000'000;

Schedule one_message(std::int64_t count) {
  ScheduleBuilder b(2, count);
  b.exchange(0, 0, Region{0, count}, 1, Region{0, count});
  return std::move(b).build();
}

TEST(TimedExecutor, IntraSocketRate) {
  const auto m = topo::testbox();
  // Cores 0 -> 1 share a socket: bottleneck 4 GB/s core channels.
  const double t = run_timed_single(m, one_message(kBig), {0, 1});
  EXPECT_NEAR(t, 8e6 / 4e9, 1e-12);
}

TEST(TimedExecutor, CrossSocketRate) {
  const auto m = topo::testbox();
  // Cores 0 -> 4: socket uplinks (2 GB/s) bottleneck.
  const double t = run_timed_single(m, one_message(kBig), {0, 4});
  EXPECT_NEAR(t, 8e6 / 2e9, 1e-12);
}

TEST(TimedExecutor, CrossNodeRate) {
  const auto m = topo::testbox();
  // Cores 0 -> 8: node uplinks (1 GB/s) bottleneck.
  const double t = run_timed_single(m, one_message(kBig), {0, 8});
  EXPECT_NEAR(t, 8e6 / 1e9, 1e-12);
}

TEST(TimedExecutor, NicContentionHalvesThroughput) {
  const auto m = topo::testbox();
  // Two concurrent cross-node messages share node 0's egress NIC.
  const Schedule s = one_message(kBig);
  JobSpec j1{&s, {0, 8}, 0.0};
  JobSpec j2{&s, {1, 9}, 0.0};
  const auto result = run_timed(m, {j1, j2});
  EXPECT_NEAR(result.makespan, 2 * 8e6 / 1e9, 1e-12);
  EXPECT_EQ(result.total_messages, 2);
}

TEST(TimedExecutor, OppositeDirectionsDoNotContend) {
  const auto m = topo::testbox();
  // Full-duplex: node0->node1 and node1->node0 use different channels.
  const Schedule s = one_message(kBig);
  JobSpec j1{&s, {0, 8}, 0.0};
  JobSpec j2{&s, {8, 0}, 0.0};
  const auto result = run_timed(m, {j1, j2});
  EXPECT_NEAR(result.makespan, 8e6 / 1e9, 1e-12);
}

TEST(TimedExecutor, LatencyAddsPerLevel) {
  // A machine with per-level latencies and a tiny rendezvous message:
  // the wire time is dominated by path latency.
  auto m = topo::testbox();
  topo::MessagingCosts costs = m.costs();
  costs.base_latency = 1e-6;
  m = m.with_costs(costs);
  const double t_socket = run_timed_single(m, one_message(1), {0, 1});
  const double t_node = run_timed_single(m, one_message(1), {0, 8});
  // testbox level latencies are zero, so only base latency differs... both
  // should include exactly one base latency.
  EXPECT_NEAR(t_socket, 1e-6 + 8.0 / 4e9, 1e-12);
  EXPECT_NEAR(t_node, 1e-6 + 8.0 / 1e9, 1e-12);
}

TEST(TimedExecutor, HopLatenciesAccumulate) {
  std::vector<topo::LevelSpec> levels = {
      {"node", 2, 100e-9, 1.0e9, 0.0},
      {"socket", 2, 10e-9, 2.0e9, 0.0},
      {"core", 4, 1e-9, 4.0e9, 0.0},
  };
  topo::MessagingCosts costs;
  costs.send_overhead = costs.recv_overhead = 0.0;
  costs.base_latency = 0.0;
  costs.eager_threshold = 0;
  const topo::Machine m("latbox", std::move(levels), costs);
  // Same socket: 2 core hops = 2 ns. Cross socket: +2 socket hops = 22 ns.
  // Cross node: +2 node hops = 222 ns.
  EXPECT_NEAR(m.path_latency(0, 1), 2e-9, 1e-15);
  EXPECT_NEAR(m.path_latency(0, 4), 22e-9, 1e-15);
  EXPECT_NEAR(m.path_latency(0, 8), 222e-9, 1e-15);
  const double t = run_timed_single(m, one_message(1), {0, 8});
  EXPECT_NEAR(t, 222e-9 + 8.0 / 1e9, 1e-15);
}

TEST(TimedExecutor, SendRecvOverheadsSerialise) {
  auto m = topo::testbox();
  topo::MessagingCosts costs = m.costs();
  costs.send_overhead = 5e-6;
  costs.recv_overhead = 3e-6;
  m = m.with_costs(costs);
  // One message: sender round pays 5 us, receiver round 3 us; the transfer
  // starts once both posted (rendezvous) = 5 us, takes 2 ms.
  const double t = run_timed_single(m, one_message(kBig), {0, 1});
  EXPECT_NEAR(t, 5e-6 + 8e6 / 4e9, 1e-12);
}

TEST(TimedExecutor, EagerSenderDoesNotWaitForReceiver) {
  auto m = topo::testbox();
  topo::MessagingCosts costs = m.costs();
  costs.eager_threshold = 1 << 20;
  m = m.with_costs(costs);
  // Rank 0: round 0 sends a small message to rank 1 and is then done.
  // Rank 1: round 0 computes 1 ms, round 1 receives.
  ScheduleBuilder b(2, 16);
  b.message(0, 0, Region{0, 16}, 1, 1, Region{0, 16});
  b.compute(0, 1, 1e-3);
  const Schedule s = std::move(b).build();
  const auto result = run_timed(m, {JobSpec{&s, {0, 1}, 0.0}});
  // The transfer (128 B at 4 GB/s = 32 ns) happened during rank 1's
  // compute; total time is the compute, not compute + transfer.
  EXPECT_NEAR(result.makespan, 1e-3, 1e-9);
}

TEST(TimedExecutor, RendezvousWaitsForReceiver) {
  const auto m = topo::testbox();  // eager_threshold 0: all rendezvous
  ScheduleBuilder b(2, kBig);
  b.message(0, 0, Region{0, kBig}, 1, 1, Region{0, kBig});
  b.compute(0, 1, 1e-3);
  const Schedule s = std::move(b).build();
  const auto result = run_timed(m, {JobSpec{&s, {0, 1}, 0.0}});
  // Transfer cannot start before the receiver posts at t = 1 ms.
  EXPECT_NEAR(result.makespan, 1e-3 + 8e6 / 4e9, 1e-9);
}

TEST(TimedExecutor, ComputeRoundsChainSequentially) {
  const auto m = topo::testbox();
  ScheduleBuilder b(1, 0);
  b.compute(0, 0, 1e-3);
  b.compute(1, 0, 2e-3);
  b.compute(2, 0, 3e-3);
  const Schedule s = std::move(b).build();
  EXPECT_NEAR(run_timed_single(m, s, {0}), 6e-3, 1e-12);
}

TEST(TimedExecutor, StaggeredJobStartTimes) {
  const auto m = topo::testbox();
  const Schedule s = one_message(kBig);
  JobSpec j1{&s, {0, 8}, 0.0};
  JobSpec j2{&s, {1, 9}, 8e-3};  // starts exactly when j1 finishes
  const auto result = run_timed(m, {j1, j2});
  ASSERT_EQ(result.job_finish.size(), 2u);
  EXPECT_NEAR(result.job_finish[0], 8e-3, 1e-12);
  EXPECT_NEAR(result.job_finish[1], 16e-3, 1e-12);
}

TEST(TimedExecutor, ValidatesJobs) {
  const auto m = topo::testbox();
  const Schedule s = one_message(4);
  EXPECT_THROW(run_timed(m, std::vector<JobSpec>{}), invalid_argument);
  EXPECT_THROW(run_timed(m, std::vector<PlanJob>{}), invalid_argument);
  EXPECT_THROW(run_timed(m, {JobSpec{&s, {0}, 0.0}}), invalid_argument);
  EXPECT_THROW(run_timed(m, {JobSpec{&s, {0, 99}, 0.0}}), invalid_argument);
  EXPECT_THROW(run_timed(m, {JobSpec{nullptr, {0, 1}, 0.0}}), invalid_argument);
}

// Integration: collective schedules complete and scale sensibly.
TEST(TimedExecutor, AlltoallSpreadSlowerThanPackedUnderLoad) {
  const auto m = topo::testbox();  // [2, 2, 4], 16 cores
  const Schedule coll = alltoall_pairwise(4, 4096);  // 4 ranks, 32 KB blocks
  // Packed: 4 communicators, each inside one socket.
  std::vector<JobSpec> packed;
  for (int c = 0; c < 4; ++c) {
    packed.push_back(JobSpec{&coll,
                             {4 * c + 0, 4 * c + 1, 4 * c + 2, 4 * c + 3},
                             0.0});
  }
  // Spread: each communicator has one rank per socket.
  std::vector<JobSpec> spread;
  for (int c = 0; c < 4; ++c) {
    spread.push_back(JobSpec{&coll, {c, 4 + c, 8 + c, 12 + c}, 0.0});
  }
  const double t_packed = run_timed(m, packed).makespan;
  const double t_spread = run_timed(m, spread).makespan;
  EXPECT_LT(t_packed, t_spread);
}

TEST(TimedExecutor, SingleSpreadCommBeatsNothingButIsValid) {
  const auto m = topo::testbox();
  const Schedule coll = alltoall_pairwise(4, 4096);
  const double t_alone_spread =
      run_timed_single(m, coll, {0, 4, 8, 12});
  const double t_alone_packed = run_timed_single(m, coll, {0, 1, 2, 3});
  EXPECT_GT(t_alone_spread, 0);
  EXPECT_GT(t_alone_packed, 0);
  // Alone, the packed mapping still wins on this machine because intra-
  // socket links are faster than the NIC — matching the paper's testbox-
  // scale intuition (spread only wins once per-NIC bandwidth exceeds the
  // per-core share of intra-node links, as on Hydra with 16 procs/node).
  EXPECT_LT(t_alone_packed, t_alone_spread);
}

TEST(TimedExecutor, DeterministicAcrossRuns) {
  const auto m = topo::testbox();
  const Schedule coll = allgather_ring(8, 1024);
  const std::vector<std::int64_t> cores{0, 2, 4, 6, 8, 10, 12, 14};
  const double t1 = run_timed_single(m, coll, cores);
  const double t2 = run_timed_single(m, coll, cores);
  EXPECT_EQ(t1, t2);
}

TEST(TimedExecutor, CompletionSlackIsATunableParameter) {
  const auto m = topo::testbox();
  const Schedule coll = alltoall_pairwise(8, 16384);
  const std::vector<std::int64_t> cores{0, 1, 2, 3, 4, 5, 6, 7};
  // Exact timing (slack 0) and the default 2% slack must agree to within
  // the documented per-hop error bound, scaled by the rounds in flight.
  const double exact = run_timed_single(m, coll, cores, 0.0);
  const double slack = run_timed_single(m, coll, cores);
  EXPECT_GT(exact, 0);
  EXPECT_NEAR(slack, exact, exact * 0.1);
  EXPECT_THROW(run_timed_single(m, coll, cores, -0.1), invalid_argument);
  EXPECT_THROW(run_timed_single(m, coll, cores, 0.5), invalid_argument);
}

TEST(TimedExecutor, ReportsFlowSimStats) {
  const auto m = topo::testbox();
  const Schedule coll = alltoall_pairwise(8, 16384);
  JobSpec job{&coll, {0, 1, 2, 3, 4, 5, 6, 7}, 0.0};
  const TimedResult result = run_timed(m, {job});
  EXPECT_GE(result.flow_stats.full_recomputes, 1);
  EXPECT_GE(result.flow_stats.pop_batches, 1);
  EXPECT_LE(result.flow_stats.pop_batches, result.total_flow_events);
}

}  // namespace
}  // namespace mr::simmpi
