// Timing-model tests. topo::testbox() has zero latencies/overheads and
// round link speeds (node 1 GB/s, socket 2 GB/s, core 4 GB/s), so transfer
// durations are exactly predictable.
#include "mixradix/simmpi/timed_executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <vector>

#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simmpi {
namespace {

// 1M doubles = 8 MB.
constexpr std::int64_t kBig = 1'000'000;

Schedule one_message(std::int64_t count) {
  ScheduleBuilder b(2, count);
  b.exchange(0, 0, Region{0, count}, 1, Region{0, count});
  return std::move(b).build();
}

TEST(TimedExecutor, IntraSocketRate) {
  const auto m = topo::testbox();
  // Cores 0 -> 1 share a socket: bottleneck 4 GB/s core channels.
  const double t = run_timed_single(m, one_message(kBig), {0, 1});
  EXPECT_NEAR(t, 8e6 / 4e9, 1e-12);
}

TEST(TimedExecutor, CrossSocketRate) {
  const auto m = topo::testbox();
  // Cores 0 -> 4: socket uplinks (2 GB/s) bottleneck.
  const double t = run_timed_single(m, one_message(kBig), {0, 4});
  EXPECT_NEAR(t, 8e6 / 2e9, 1e-12);
}

TEST(TimedExecutor, CrossNodeRate) {
  const auto m = topo::testbox();
  // Cores 0 -> 8: node uplinks (1 GB/s) bottleneck.
  const double t = run_timed_single(m, one_message(kBig), {0, 8});
  EXPECT_NEAR(t, 8e6 / 1e9, 1e-12);
}

TEST(TimedExecutor, NicContentionHalvesThroughput) {
  const auto m = topo::testbox();
  // Two concurrent cross-node messages share node 0's egress NIC.
  const Schedule s = one_message(kBig);
  JobSpec j1{&s, {0, 8}, 0.0};
  JobSpec j2{&s, {1, 9}, 0.0};
  const auto result = run_timed(m, {j1, j2});
  EXPECT_NEAR(result.makespan, 2 * 8e6 / 1e9, 1e-12);
  EXPECT_EQ(result.total_messages, 2);
}

TEST(TimedExecutor, OppositeDirectionsDoNotContend) {
  const auto m = topo::testbox();
  // Full-duplex: node0->node1 and node1->node0 use different channels.
  const Schedule s = one_message(kBig);
  JobSpec j1{&s, {0, 8}, 0.0};
  JobSpec j2{&s, {8, 0}, 0.0};
  const auto result = run_timed(m, {j1, j2});
  EXPECT_NEAR(result.makespan, 8e6 / 1e9, 1e-12);
}

TEST(TimedExecutor, LatencyAddsPerLevel) {
  // A machine with per-level latencies and a tiny rendezvous message:
  // the wire time is dominated by path latency.
  auto m = topo::testbox();
  topo::MessagingCosts costs = m.costs();
  costs.base_latency = 1e-6;
  m = m.with_costs(costs);
  const double t_socket = run_timed_single(m, one_message(1), {0, 1});
  const double t_node = run_timed_single(m, one_message(1), {0, 8});
  // testbox level latencies are zero, so only base latency differs... both
  // should include exactly one base latency.
  EXPECT_NEAR(t_socket, 1e-6 + 8.0 / 4e9, 1e-12);
  EXPECT_NEAR(t_node, 1e-6 + 8.0 / 1e9, 1e-12);
}

TEST(TimedExecutor, HopLatenciesAccumulate) {
  std::vector<topo::LevelSpec> levels = {
      {"node", 2, 100e-9, 1.0e9, 0.0},
      {"socket", 2, 10e-9, 2.0e9, 0.0},
      {"core", 4, 1e-9, 4.0e9, 0.0},
  };
  topo::MessagingCosts costs;
  costs.send_overhead = costs.recv_overhead = 0.0;
  costs.base_latency = 0.0;
  costs.eager_threshold = 0;
  const topo::Machine m("latbox", std::move(levels), costs);
  // Same socket: 2 core hops = 2 ns. Cross socket: +2 socket hops = 22 ns.
  // Cross node: +2 node hops = 222 ns.
  EXPECT_NEAR(m.path_latency(0, 1), 2e-9, 1e-15);
  EXPECT_NEAR(m.path_latency(0, 4), 22e-9, 1e-15);
  EXPECT_NEAR(m.path_latency(0, 8), 222e-9, 1e-15);
  const double t = run_timed_single(m, one_message(1), {0, 8});
  EXPECT_NEAR(t, 222e-9 + 8.0 / 1e9, 1e-15);
}

TEST(TimedExecutor, SendRecvOverheadsSerialise) {
  auto m = topo::testbox();
  topo::MessagingCosts costs = m.costs();
  costs.send_overhead = 5e-6;
  costs.recv_overhead = 3e-6;
  m = m.with_costs(costs);
  // One message: sender round pays 5 us, receiver round 3 us; the transfer
  // starts once both posted (rendezvous) = 5 us, takes 2 ms.
  const double t = run_timed_single(m, one_message(kBig), {0, 1});
  EXPECT_NEAR(t, 5e-6 + 8e6 / 4e9, 1e-12);
}

TEST(TimedExecutor, EagerSenderDoesNotWaitForReceiver) {
  auto m = topo::testbox();
  topo::MessagingCosts costs = m.costs();
  costs.eager_threshold = 1 << 20;
  m = m.with_costs(costs);
  // Rank 0: round 0 sends a small message to rank 1 and is then done.
  // Rank 1: round 0 computes 1 ms, round 1 receives.
  ScheduleBuilder b(2, 16);
  b.message(0, 0, Region{0, 16}, 1, 1, Region{0, 16});
  b.compute(0, 1, 1e-3);
  const Schedule s = std::move(b).build();
  const auto result = run_timed(m, {JobSpec{&s, {0, 1}, 0.0}});
  // The transfer (128 B at 4 GB/s = 32 ns) happened during rank 1's
  // compute; total time is the compute, not compute + transfer.
  EXPECT_NEAR(result.makespan, 1e-3, 1e-9);
}

TEST(TimedExecutor, RendezvousWaitsForReceiver) {
  const auto m = topo::testbox();  // eager_threshold 0: all rendezvous
  ScheduleBuilder b(2, kBig);
  b.message(0, 0, Region{0, kBig}, 1, 1, Region{0, kBig});
  b.compute(0, 1, 1e-3);
  const Schedule s = std::move(b).build();
  const auto result = run_timed(m, {JobSpec{&s, {0, 1}, 0.0}});
  // Transfer cannot start before the receiver posts at t = 1 ms.
  EXPECT_NEAR(result.makespan, 1e-3 + 8e6 / 4e9, 1e-9);
}

TEST(TimedExecutor, ComputeRoundsChainSequentially) {
  const auto m = topo::testbox();
  ScheduleBuilder b(1, 0);
  b.compute(0, 0, 1e-3);
  b.compute(1, 0, 2e-3);
  b.compute(2, 0, 3e-3);
  const Schedule s = std::move(b).build();
  EXPECT_NEAR(run_timed_single(m, s, {0}), 6e-3, 1e-12);
}

TEST(TimedExecutor, StaggeredJobStartTimes) {
  const auto m = topo::testbox();
  const Schedule s = one_message(kBig);
  JobSpec j1{&s, {0, 8}, 0.0};
  JobSpec j2{&s, {1, 9}, 8e-3};  // starts exactly when j1 finishes
  const auto result = run_timed(m, {j1, j2});
  ASSERT_EQ(result.job_finish.size(), 2u);
  EXPECT_NEAR(result.job_finish[0], 8e-3, 1e-12);
  EXPECT_NEAR(result.job_finish[1], 16e-3, 1e-12);
}

TEST(TimedExecutor, ValidatesJobs) {
  const auto m = topo::testbox();
  const Schedule s = one_message(4);
  EXPECT_THROW(run_timed(m, std::vector<JobSpec>{}), invalid_argument);
  EXPECT_THROW(run_timed(m, std::vector<PlanJob>{}), invalid_argument);
  EXPECT_THROW(run_timed(m, {JobSpec{&s, {0}, 0.0}}), invalid_argument);
  EXPECT_THROW(run_timed(m, {JobSpec{&s, {0, 99}, 0.0}}), invalid_argument);
  EXPECT_THROW(run_timed(m, {JobSpec{nullptr, {0, 1}, 0.0}}), invalid_argument);
}

// Integration: collective schedules complete and scale sensibly.
TEST(TimedExecutor, AlltoallSpreadSlowerThanPackedUnderLoad) {
  const auto m = topo::testbox();  // [2, 2, 4], 16 cores
  const Schedule coll = alltoall_pairwise(4, 4096);  // 4 ranks, 32 KB blocks
  // Packed: 4 communicators, each inside one socket.
  std::vector<JobSpec> packed;
  for (int c = 0; c < 4; ++c) {
    packed.push_back(JobSpec{&coll,
                             {4 * c + 0, 4 * c + 1, 4 * c + 2, 4 * c + 3},
                             0.0});
  }
  // Spread: each communicator has one rank per socket.
  std::vector<JobSpec> spread;
  for (int c = 0; c < 4; ++c) {
    spread.push_back(JobSpec{&coll, {c, 4 + c, 8 + c, 12 + c}, 0.0});
  }
  const double t_packed = run_timed(m, packed).makespan;
  const double t_spread = run_timed(m, spread).makespan;
  EXPECT_LT(t_packed, t_spread);
}

TEST(TimedExecutor, SingleSpreadCommBeatsNothingButIsValid) {
  const auto m = topo::testbox();
  const Schedule coll = alltoall_pairwise(4, 4096);
  const double t_alone_spread =
      run_timed_single(m, coll, {0, 4, 8, 12});
  const double t_alone_packed = run_timed_single(m, coll, {0, 1, 2, 3});
  EXPECT_GT(t_alone_spread, 0);
  EXPECT_GT(t_alone_packed, 0);
  // Alone, the packed mapping still wins on this machine because intra-
  // socket links are faster than the NIC — matching the paper's testbox-
  // scale intuition (spread only wins once per-NIC bandwidth exceeds the
  // per-core share of intra-node links, as on Hydra with 16 procs/node).
  EXPECT_LT(t_alone_packed, t_alone_spread);
}

TEST(TimedExecutor, DeterministicAcrossRuns) {
  const auto m = topo::testbox();
  const Schedule coll = allgather_ring(8, 1024);
  const std::vector<std::int64_t> cores{0, 2, 4, 6, 8, 10, 12, 14};
  const double t1 = run_timed_single(m, coll, cores);
  const double t2 = run_timed_single(m, coll, cores);
  EXPECT_EQ(t1, t2);
}

TEST(TimedExecutor, CompletionSlackIsATunableParameter) {
  const auto m = topo::testbox();
  const Schedule coll = alltoall_pairwise(8, 16384);
  const std::vector<std::int64_t> cores{0, 1, 2, 3, 4, 5, 6, 7};
  // Exact timing (slack 0) and the default 2% slack must agree to within
  // the documented per-hop error bound, scaled by the rounds in flight.
  const double exact = run_timed_single(m, coll, cores, 0.0);
  const double slack = run_timed_single(m, coll, cores);
  EXPECT_GT(exact, 0);
  EXPECT_NEAR(slack, exact, exact * 0.1);
  EXPECT_THROW(run_timed_single(m, coll, cores, -0.1), invalid_argument);
  EXPECT_THROW(run_timed_single(m, coll, cores, 0.5), invalid_argument);
}

TEST(TimedExecutor, ReportsFlowSimStats) {
  const auto m = topo::testbox();
  const Schedule coll = alltoall_pairwise(8, 16384);
  JobSpec job{&coll, {0, 1, 2, 3, 4, 5, 6, 7}, 0.0};
  const TimedResult result = run_timed(m, {job});
  EXPECT_GE(result.flow_stats.full_recomputes, 1);
  EXPECT_GE(result.flow_stats.pop_batches, 1);
  EXPECT_LE(result.flow_stats.pop_batches, result.total_flow_events);
}

TEST(TimedExecutorEvent, ComparatorIsATotalOrder) {
  // Every field must participate: two distinct events never compare equal
  // both ways, and the order is transitive by construction (lexicographic).
  using detail::Event;
  using detail::EventKind;
  const std::vector<Event> distinct = {
      {1.0, EventKind::PostRound, 0, 0}, {1.0, EventKind::PostRound, 0, 1},
      {1.0, EventKind::PostRound, 1, 0}, {1.0, EventKind::StartFlow, 0, 0},
      {2.0, EventKind::PostRound, 0, 0},
  };
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    for (std::size_t j = 0; j < distinct.size(); ++j) {
      if (i == j) {
        EXPECT_FALSE(distinct[i] > distinct[j]);
      } else {
        EXPECT_NE(distinct[i] > distinct[j], distinct[j] > distinct[i])
            << "events " << i << " and " << j << " must be strictly ordered";
      }
    }
  }
}

TEST(TimedExecutorEvent, PopOrderIndependentOfPushOrder) {
  // Simultaneous events (equal times) must pop in the same deterministic
  // order no matter how they were pushed — a std::priority_queue with a
  // partial order would leave ties to incidental heap history.
  using detail::Event;
  using detail::EventKind;
  std::vector<Event> events;
  for (const double time : {0.0, 1.0}) {
    for (const auto kind : {EventKind::PostRound, EventKind::StartFlow}) {
      for (std::int32_t job = 0; job < 2; ++job) {
        for (std::int32_t a = 0; a < 2; ++a) {
          events.push_back(Event{time, kind, job, a});
        }
      }
    }
  }
  auto pop_sequence = [](std::vector<Event> heap) {
    std::make_heap(heap.begin(), heap.end(), std::greater<>{});
    std::vector<Event> out;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
      out.push_back(heap.back());
      heap.pop_back();
    }
    return out;
  };
  const auto baseline = pop_sequence(events);
  std::vector<Event> permuted = events;
  std::mt19937 rng(12345);
  for (int trial = 0; trial < 20; ++trial) {
    std::shuffle(permuted.begin(), permuted.end(), rng);
    const auto popped = pop_sequence(permuted);
    ASSERT_EQ(popped.size(), baseline.size());
    for (std::size_t i = 0; i < popped.size(); ++i) {
      EXPECT_EQ(popped[i].time, baseline[i].time);
      EXPECT_EQ(popped[i].kind, baseline[i].kind);
      EXPECT_EQ(popped[i].job, baseline[i].job);
      EXPECT_EQ(popped[i].a, baseline[i].a);
    }
  }
}

TEST(TimedExecutor, ReferenceEngineIsBitIdentical) {
  const auto m = topo::testbox();
  const Schedule coll = alltoall_pairwise(8, 16384);
  std::vector<JobSpec> jobs;
  for (int c = 0; c < 2; ++c) {
    jobs.push_back(JobSpec{&coll, {8 * c, 8 * c + 1, 8 * c + 2, 8 * c + 3,
                                   8 * c + 4, 8 * c + 5, 8 * c + 6, 8 * c + 7},
                           0.0});
  }
  for (const double slack : {kDefaultCompletionSlack, 0.0}) {
    ExecOptions optimized;
    optimized.completion_slack = slack;
    ExecOptions reference = optimized;
    reference.reference = true;
    const TimedResult fast = run_timed(m, jobs, optimized);
    const TimedResult exact = run_timed(m, jobs, reference);
    EXPECT_EQ(fast.makespan, exact.makespan);  // exact, not NEAR
    ASSERT_EQ(fast.job_finish.size(), exact.job_finish.size());
    for (std::size_t j = 0; j < fast.job_finish.size(); ++j) {
      EXPECT_EQ(fast.job_finish[j], exact.job_finish[j]);
    }
    EXPECT_EQ(fast.total_flow_events, exact.total_flow_events);
  }
}

TEST(TimedExecutor, WorkspaceReuseIsBitIdenticalAndKeepsRoutes) {
  const auto m = topo::testbox();
  const Schedule coll = alltoall_pairwise(8, 16384);
  JobSpec job{&coll, {0, 2, 4, 6, 8, 10, 12, 14}, 0.0};
  const TimedResult fresh = run_timed(m, {job});

  SimWorkspace workspace;
  ExecOptions options;
  options.workspace = &workspace;
  const TimedResult cold = run_timed(m, {job}, options);
  const TimedResult warm = run_timed(m, {job}, options);
  EXPECT_EQ(cold.makespan, fresh.makespan);
  EXPECT_EQ(warm.makespan, fresh.makespan);
  // The cold run interns every distinct core pair; the warm run must be
  // served entirely from the table.
  EXPECT_GT(cold.engine_stats.route_cache_misses, 0);
  EXPECT_GT(warm.engine_stats.route_cache_hits, 0);
  EXPECT_EQ(warm.engine_stats.route_cache_misses, 0);
}

TEST(TimedExecutor, WorkspaceSurvivesEquivalentAndChangedMachines) {
  const Schedule coll = alltoall_pairwise(4, 4096);
  JobSpec job{&coll, {0, 1, 2, 3}, 0.0};
  SimWorkspace workspace;
  ExecOptions options;
  options.workspace = &workspace;

  const auto m1 = topo::testbox();
  const TimedResult first = run_timed(m1, {job}, options);
  // A fresh-but-equivalent Machine instance keeps the interned routes
  // (binding follows the fingerprint, not the object identity).
  const auto m2 = topo::testbox();
  const TimedResult equivalent = run_timed(m2, {job}, options);
  EXPECT_EQ(equivalent.makespan, first.makespan);
  EXPECT_EQ(equivalent.engine_stats.route_cache_misses, 0);

  // A machine with different parameters forces a rebind; results must
  // match a workspace-free run on that machine.
  const auto changed = topo::hydra_node();
  const TimedResult rebound = run_timed(changed, {job}, options);
  EXPECT_GT(rebound.engine_stats.route_cache_misses, 0);
  EXPECT_EQ(rebound.makespan, run_timed(changed, {job}).makespan);

  // And returning to the first machine re-interns (the table tracks ONE
  // machine), still bit-identically.
  const TimedResult back = run_timed(m1, {job}, options);
  EXPECT_EQ(back.makespan, first.makespan);
}

TEST(TimedExecutor, ReportsEngineStats) {
  const auto m = topo::testbox();
  const Schedule coll = alltoall_pairwise(8, 16384);
  JobSpec job{&coll, {0, 1, 2, 3, 4, 5, 6, 7}, 0.0};
  const TimedResult result = run_timed(m, {job});
  EXPECT_GT(result.engine_stats.events_processed, 0);
  EXPECT_GT(result.engine_stats.peak_event_queue, 0);
  EXPECT_GT(result.flow_stats.peak_active_flows, 0);
  // Every message looked its route up exactly once somewhere.
  EXPECT_EQ(result.engine_stats.route_cache_hits +
                result.engine_stats.route_cache_misses,
            result.total_messages);
}

}  // namespace
}  // namespace mr::simmpi
