#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy) over the library, example, bench and
# test sources. Skips gracefully when clang-tidy is not installed so the
# script can sit in CI pipelines whose images only carry gcc.
#
#   tools/lint.sh [build-dir]
#
# The build dir (default: build-tidy) is configured with
# CMAKE_EXPORT_COMPILE_COMMANDS so clang-tidy sees the real compile flags.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-tidy}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found on PATH; skipping (install clang-tidy to enable)"
  exit 0
fi

cmake -S "$repo" -B "$build" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

mapfile -t sources < <(
  find "$repo/src" "$repo/examples" "$repo/bench" "$repo/tests" -name '*.cpp' |
  sort
)

echo "lint.sh: clang-tidy over ${#sources[@]} files"
status=0
for file in "${sources[@]}"; do
  clang-tidy -p "$build" --quiet "$file" || status=1
done
exit "$status"
