#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy, plus the stricter scoped profiles in
# src/simnet and src/verify) over the library, example, bench and test
# sources. Skips gracefully when clang-tidy is not installed so the script
# can sit in CI pipelines whose images only carry gcc.
#
#   tools/lint.sh [--changed] [build-dir]
#
# --changed lints only the .cpp files that differ from origin/main (or main
# when no remote exists) — the mode PR builds use; the default lints
# everything. Files are linted in parallel, one clang-tidy process per CPU.
#
# The build dir (default: build-tidy) is configured with
# CMAKE_EXPORT_COMPILE_COMMANDS so clang-tidy sees the real compile flags.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
changed=0
build=""
for arg in "$@"; do
  case "$arg" in
    --changed) changed=1 ;;
    *) build="$arg" ;;
  esac
done
build="${build:-$repo/build-tidy}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found on PATH; skipping (install clang-tidy to enable)"
  exit 0
fi

cmake -S "$repo" -B "$build" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

if [[ "$changed" -eq 1 ]]; then
  base="$(git -C "$repo" merge-base HEAD origin/main 2>/dev/null ||
          git -C "$repo" merge-base HEAD main 2>/dev/null || true)"
  if [[ -z "$base" ]]; then
    echo "lint.sh: no origin/main or main to diff against; linting everything"
    changed=0
  else
    mapfile -t sources < <(
      git -C "$repo" diff --name-only "$base" -- \
          'src/*.cpp' 'examples/*.cpp' 'bench/*.cpp' 'tests/*.cpp' |
      while read -r rel; do
        [[ -f "$repo/$rel" ]] && echo "$repo/$rel"
      done | sort
    )
    if [[ "${#sources[@]}" -eq 0 ]]; then
      echo "lint.sh: no changed sources vs $base; nothing to lint"
      exit 0
    fi
  fi
fi
if [[ "$changed" -eq 0 ]]; then
  mapfile -t sources < <(
    find "$repo/src" "$repo/examples" "$repo/bench" "$repo/tests" \
         -name '*.cpp' | sort
  )
fi

jobs="$(nproc 2>/dev/null || echo 4)"
echo "lint.sh: clang-tidy over ${#sources[@]} files, $jobs at a time"
status=0
printf '%s\0' "${sources[@]}" |
  xargs -0 -n 1 -P "$jobs" clang-tidy -p "$build" --quiet || status=1
exit "$status"
