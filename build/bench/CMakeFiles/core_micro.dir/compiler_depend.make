# Empty compiler generated dependencies file for core_micro.
# This may be replaced when dependencies are built.
