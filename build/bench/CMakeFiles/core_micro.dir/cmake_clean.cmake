file(REMOVE_RECURSE
  "CMakeFiles/core_micro.dir/core_micro.cpp.o"
  "CMakeFiles/core_micro.dir/core_micro.cpp.o.d"
  "core_micro"
  "core_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
