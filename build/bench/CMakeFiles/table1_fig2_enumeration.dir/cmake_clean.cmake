file(REMOVE_RECURSE
  "CMakeFiles/table1_fig2_enumeration.dir/table1_fig2_enumeration.cpp.o"
  "CMakeFiles/table1_fig2_enumeration.dir/table1_fig2_enumeration.cpp.o.d"
  "table1_fig2_enumeration"
  "table1_fig2_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fig2_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
