# Empty dependencies file for table1_fig2_enumeration.
# This may be replaced when dependencies are built.
