file(REMOVE_RECURSE
  "CMakeFiles/fig5_alltoall_lumi.dir/fig5_alltoall_lumi.cpp.o"
  "CMakeFiles/fig5_alltoall_lumi.dir/fig5_alltoall_lumi.cpp.o.d"
  "fig5_alltoall_lumi"
  "fig5_alltoall_lumi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_alltoall_lumi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
