# Empty compiler generated dependencies file for fig5_alltoall_lumi.
# This may be replaced when dependencies are built.
