file(REMOVE_RECURSE
  "CMakeFiles/collective_ablation.dir/collective_ablation.cpp.o"
  "CMakeFiles/collective_ablation.dir/collective_ablation.cpp.o.d"
  "collective_ablation"
  "collective_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
