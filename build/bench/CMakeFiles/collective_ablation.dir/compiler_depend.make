# Empty compiler generated dependencies file for collective_ablation.
# This may be replaced when dependencies are built.
