# Empty dependencies file for fig9_cg_scaling.
# This may be replaced when dependencies are built.
