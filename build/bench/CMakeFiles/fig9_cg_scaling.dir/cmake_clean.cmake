file(REMOVE_RECURSE
  "CMakeFiles/fig9_cg_scaling.dir/fig9_cg_scaling.cpp.o"
  "CMakeFiles/fig9_cg_scaling.dir/fig9_cg_scaling.cpp.o.d"
  "fig9_cg_scaling"
  "fig9_cg_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cg_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
