file(REMOVE_RECURSE
  "CMakeFiles/ext_mixed_orders.dir/ext_mixed_orders.cpp.o"
  "CMakeFiles/ext_mixed_orders.dir/ext_mixed_orders.cpp.o.d"
  "ext_mixed_orders"
  "ext_mixed_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mixed_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
