# Empty dependencies file for ext_mixed_orders.
# This may be replaced when dependencies are built.
