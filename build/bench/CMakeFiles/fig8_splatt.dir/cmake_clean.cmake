file(REMOVE_RECURSE
  "CMakeFiles/fig8_splatt.dir/fig8_splatt.cpp.o"
  "CMakeFiles/fig8_splatt.dir/fig8_splatt.cpp.o.d"
  "fig8_splatt"
  "fig8_splatt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_splatt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
