# Empty compiler generated dependencies file for fig8_splatt.
# This may be replaced when dependencies are built.
