file(REMOVE_RECURSE
  "CMakeFiles/fig6_allreduce_hydra.dir/fig6_allreduce_hydra.cpp.o"
  "CMakeFiles/fig6_allreduce_hydra.dir/fig6_allreduce_hydra.cpp.o.d"
  "fig6_allreduce_hydra"
  "fig6_allreduce_hydra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_allreduce_hydra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
