# Empty dependencies file for fig6_allreduce_hydra.
# This may be replaced when dependencies are built.
