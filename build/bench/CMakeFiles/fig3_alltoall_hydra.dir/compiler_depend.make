# Empty compiler generated dependencies file for fig3_alltoall_hydra.
# This may be replaced when dependencies are built.
