file(REMOVE_RECURSE
  "CMakeFiles/fig3_alltoall_hydra.dir/fig3_alltoall_hydra.cpp.o"
  "CMakeFiles/fig3_alltoall_hydra.dir/fig3_alltoall_hydra.cpp.o.d"
  "fig3_alltoall_hydra"
  "fig3_alltoall_hydra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_alltoall_hydra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
