# Empty compiler generated dependencies file for ext_network_levels.
# This may be replaced when dependencies are built.
