file(REMOVE_RECURSE
  "CMakeFiles/ext_network_levels.dir/ext_network_levels.cpp.o"
  "CMakeFiles/ext_network_levels.dir/ext_network_levels.cpp.o.d"
  "ext_network_levels"
  "ext_network_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_network_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
