# Empty dependencies file for fig4_alltoall_hydra128.
# This may be replaced when dependencies are built.
