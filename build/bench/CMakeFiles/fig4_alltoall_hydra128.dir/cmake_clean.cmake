file(REMOVE_RECURSE
  "CMakeFiles/fig4_alltoall_hydra128.dir/fig4_alltoall_hydra128.cpp.o"
  "CMakeFiles/fig4_alltoall_hydra128.dir/fig4_alltoall_hydra128.cpp.o.d"
  "fig4_alltoall_hydra128"
  "fig4_alltoall_hydra128.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_alltoall_hydra128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
