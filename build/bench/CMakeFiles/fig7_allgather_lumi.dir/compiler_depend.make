# Empty compiler generated dependencies file for fig7_allgather_lumi.
# This may be replaced when dependencies are built.
