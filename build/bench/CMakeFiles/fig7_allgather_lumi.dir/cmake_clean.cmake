file(REMOVE_RECURSE
  "CMakeFiles/fig7_allgather_lumi.dir/fig7_allgather_lumi.cpp.o"
  "CMakeFiles/fig7_allgather_lumi.dir/fig7_allgather_lumi.cpp.o.d"
  "fig7_allgather_lumi"
  "fig7_allgather_lumi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_allgather_lumi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
