file(REMOVE_RECURSE
  "libmixradix.a"
)
