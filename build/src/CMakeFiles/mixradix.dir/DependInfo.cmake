
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cg/cg_sim.cpp" "src/CMakeFiles/mixradix.dir/apps/cg/cg_sim.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/apps/cg/cg_sim.cpp.o.d"
  "/root/repo/src/apps/cg/geometry.cpp" "src/CMakeFiles/mixradix.dir/apps/cg/geometry.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/apps/cg/geometry.cpp.o.d"
  "/root/repo/src/apps/cg/roofline.cpp" "src/CMakeFiles/mixradix.dir/apps/cg/roofline.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/apps/cg/roofline.cpp.o.d"
  "/root/repo/src/apps/splatt/cpd.cpp" "src/CMakeFiles/mixradix.dir/apps/splatt/cpd.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/apps/splatt/cpd.cpp.o.d"
  "/root/repo/src/apps/splatt/decomposition.cpp" "src/CMakeFiles/mixradix.dir/apps/splatt/decomposition.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/apps/splatt/decomposition.cpp.o.d"
  "/root/repo/src/apps/splatt/tensor.cpp" "src/CMakeFiles/mixradix.dir/apps/splatt/tensor.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/apps/splatt/tensor.cpp.o.d"
  "/root/repo/src/baseline/comm_matrix_mapper.cpp" "src/CMakeFiles/mixradix.dir/baseline/comm_matrix_mapper.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/baseline/comm_matrix_mapper.cpp.o.d"
  "/root/repo/src/harness/protocol.cpp" "src/CMakeFiles/mixradix.dir/harness/protocol.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/harness/protocol.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/mixradix.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/harness/report.cpp.o.d"
  "/root/repo/src/harness/sweep.cpp" "src/CMakeFiles/mixradix.dir/harness/sweep.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/harness/sweep.cpp.o.d"
  "/root/repo/src/mr/core_select.cpp" "src/CMakeFiles/mixradix.dir/mr/core_select.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/mr/core_select.cpp.o.d"
  "/root/repo/src/mr/decompose.cpp" "src/CMakeFiles/mixradix.dir/mr/decompose.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/mr/decompose.cpp.o.d"
  "/root/repo/src/mr/equivalence.cpp" "src/CMakeFiles/mixradix.dir/mr/equivalence.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/mr/equivalence.cpp.o.d"
  "/root/repo/src/mr/hierarchy.cpp" "src/CMakeFiles/mixradix.dir/mr/hierarchy.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/mr/hierarchy.cpp.o.d"
  "/root/repo/src/mr/metrics.cpp" "src/CMakeFiles/mixradix.dir/mr/metrics.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/mr/metrics.cpp.o.d"
  "/root/repo/src/mr/permutation.cpp" "src/CMakeFiles/mixradix.dir/mr/permutation.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/mr/permutation.cpp.o.d"
  "/root/repo/src/mr/reorder.cpp" "src/CMakeFiles/mixradix.dir/mr/reorder.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/mr/reorder.cpp.o.d"
  "/root/repo/src/simmpi/coll_allgather.cpp" "src/CMakeFiles/mixradix.dir/simmpi/coll_allgather.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/coll_allgather.cpp.o.d"
  "/root/repo/src/simmpi/coll_allreduce.cpp" "src/CMakeFiles/mixradix.dir/simmpi/coll_allreduce.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/coll_allreduce.cpp.o.d"
  "/root/repo/src/simmpi/coll_alltoall.cpp" "src/CMakeFiles/mixradix.dir/simmpi/coll_alltoall.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/coll_alltoall.cpp.o.d"
  "/root/repo/src/simmpi/coll_alltoallv.cpp" "src/CMakeFiles/mixradix.dir/simmpi/coll_alltoallv.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/coll_alltoallv.cpp.o.d"
  "/root/repo/src/simmpi/coll_bcast.cpp" "src/CMakeFiles/mixradix.dir/simmpi/coll_bcast.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/coll_bcast.cpp.o.d"
  "/root/repo/src/simmpi/coll_gather.cpp" "src/CMakeFiles/mixradix.dir/simmpi/coll_gather.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/coll_gather.cpp.o.d"
  "/root/repo/src/simmpi/coll_reduce.cpp" "src/CMakeFiles/mixradix.dir/simmpi/coll_reduce.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/coll_reduce.cpp.o.d"
  "/root/repo/src/simmpi/coll_reduce_scatter.cpp" "src/CMakeFiles/mixradix.dir/simmpi/coll_reduce_scatter.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/coll_reduce_scatter.cpp.o.d"
  "/root/repo/src/simmpi/coll_scan.cpp" "src/CMakeFiles/mixradix.dir/simmpi/coll_scan.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/coll_scan.cpp.o.d"
  "/root/repo/src/simmpi/coll_scatter_gather_tree.cpp" "src/CMakeFiles/mixradix.dir/simmpi/coll_scatter_gather_tree.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/coll_scatter_gather_tree.cpp.o.d"
  "/root/repo/src/simmpi/data_executor.cpp" "src/CMakeFiles/mixradix.dir/simmpi/data_executor.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/data_executor.cpp.o.d"
  "/root/repo/src/simmpi/schedule.cpp" "src/CMakeFiles/mixradix.dir/simmpi/schedule.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/schedule.cpp.o.d"
  "/root/repo/src/simmpi/selector.cpp" "src/CMakeFiles/mixradix.dir/simmpi/selector.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/selector.cpp.o.d"
  "/root/repo/src/simmpi/timed_executor.cpp" "src/CMakeFiles/mixradix.dir/simmpi/timed_executor.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/timed_executor.cpp.o.d"
  "/root/repo/src/simmpi/world.cpp" "src/CMakeFiles/mixradix.dir/simmpi/world.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simmpi/world.cpp.o.d"
  "/root/repo/src/simnet/flow_sim.cpp" "src/CMakeFiles/mixradix.dir/simnet/flow_sim.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simnet/flow_sim.cpp.o.d"
  "/root/repo/src/simnet/path.cpp" "src/CMakeFiles/mixradix.dir/simnet/path.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/simnet/path.cpp.o.d"
  "/root/repo/src/slurm/distribution_parser.cpp" "src/CMakeFiles/mixradix.dir/slurm/distribution_parser.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/slurm/distribution_parser.cpp.o.d"
  "/root/repo/src/slurm/launcher.cpp" "src/CMakeFiles/mixradix.dir/slurm/launcher.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/slurm/launcher.cpp.o.d"
  "/root/repo/src/topo/discover.cpp" "src/CMakeFiles/mixradix.dir/topo/discover.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/topo/discover.cpp.o.d"
  "/root/repo/src/topo/machine.cpp" "src/CMakeFiles/mixradix.dir/topo/machine.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/topo/machine.cpp.o.d"
  "/root/repo/src/topo/presets.cpp" "src/CMakeFiles/mixradix.dir/topo/presets.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/topo/presets.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/mixradix.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "src/CMakeFiles/mixradix.dir/util/prng.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/util/prng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/mixradix.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/mixradix.dir/util/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
