# Empty compiler generated dependencies file for mixradix.
# This may be replaced when dependencies are built.
