
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_baseline.cpp.o.d"
  "/root/repo/tests/test_cg.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_cg.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_cg.cpp.o.d"
  "/root/repo/tests/test_collectives_data.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_collectives_data.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_collectives_data.cpp.o.d"
  "/root/repo/tests/test_core_select.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_core_select.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_core_select.cpp.o.d"
  "/root/repo/tests/test_decompose.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_decompose.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_decompose.cpp.o.d"
  "/root/repo/tests/test_equivalence.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_equivalence.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_equivalence.cpp.o.d"
  "/root/repo/tests/test_flow_sim.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_flow_sim.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_flow_sim.cpp.o.d"
  "/root/repo/tests/test_flow_sim_properties.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_flow_sim_properties.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_flow_sim_properties.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_permutation.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_permutation.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_permutation.cpp.o.d"
  "/root/repo/tests/test_reorder.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_reorder.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_reorder.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_slurm.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_slurm.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_slurm.cpp.o.d"
  "/root/repo/tests/test_splatt.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_splatt.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_splatt.cpp.o.d"
  "/root/repo/tests/test_timed_executor.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_timed_executor.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_timed_executor.cpp.o.d"
  "/root/repo/tests/test_topo.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_topo.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_topo.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_world.cpp" "tests/CMakeFiles/mixradix_tests.dir/test_world.cpp.o" "gcc" "tests/CMakeFiles/mixradix_tests.dir/test_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mixradix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
