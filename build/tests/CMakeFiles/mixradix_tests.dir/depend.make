# Empty dependencies file for mixradix_tests.
# This may be replaced when dependencies are built.
