file(REMOVE_RECURSE
  "CMakeFiles/core_selection.dir/core_selection.cpp.o"
  "CMakeFiles/core_selection.dir/core_selection.cpp.o.d"
  "core_selection"
  "core_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
