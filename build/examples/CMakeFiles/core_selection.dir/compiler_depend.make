# Empty compiler generated dependencies file for core_selection.
# This may be replaced when dependencies are built.
