file(REMOVE_RECURSE
  "CMakeFiles/explore_orders.dir/explore_orders.cpp.o"
  "CMakeFiles/explore_orders.dir/explore_orders.cpp.o.d"
  "explore_orders"
  "explore_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
