# Empty dependencies file for explore_orders.
# This may be replaced when dependencies are built.
