file(REMOVE_RECURSE
  "CMakeFiles/machine_inspect.dir/machine_inspect.cpp.o"
  "CMakeFiles/machine_inspect.dir/machine_inspect.cpp.o.d"
  "machine_inspect"
  "machine_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
