# Empty dependencies file for machine_inspect.
# This may be replaced when dependencies are built.
