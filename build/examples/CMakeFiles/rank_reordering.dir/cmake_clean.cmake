file(REMOVE_RECURSE
  "CMakeFiles/rank_reordering.dir/rank_reordering.cpp.o"
  "CMakeFiles/rank_reordering.dir/rank_reordering.cpp.o.d"
  "rank_reordering"
  "rank_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
