# Empty dependencies file for rank_reordering.
# This may be replaced when dependencies are built.
