file(REMOVE_RECURSE
  "CMakeFiles/mrenum_cli.dir/mrenum_cli.cpp.o"
  "CMakeFiles/mrenum_cli.dir/mrenum_cli.cpp.o.d"
  "mrenum_cli"
  "mrenum_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrenum_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
