# Empty compiler generated dependencies file for mrenum_cli.
# This may be replaced when dependencies are built.
