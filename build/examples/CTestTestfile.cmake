# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rank_reordering "/root/repo/build/examples/rank_reordering" "8" "256")
set_tests_properties(example_rank_reordering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_core_selection "/root/repo/build/examples/core_selection" "4" "S")
set_tests_properties(example_core_selection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explore_orders "/root/repo/build/examples/explore_orders" "2:2:4" "4")
set_tests_properties(example_explore_orders PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_machine_inspect "/root/repo/build/examples/machine_inspect")
set_tests_properties(example_machine_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mrenum_rank "/root/repo/build/examples/mrenum_cli" "rank" "--hierarchy" "2:2:4" "--order" "0-2-1" "--rank" "10")
set_tests_properties(example_mrenum_rank PROPERTIES  PASS_REGULAR_EXPRESSION "^5" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
