// Machine inspection: presets, host discovery, and hierarchy surgery.
//
//   $ ./machine_inspect
//
// Shows the bundled machine models (the paper's Hydra and LUMI), tries to
// discover the host's own hierarchy from sysfs (the hwloc substitute), and
// demonstrates the fake-level / network-level hierarchy transformations
// of §3.2.
#include <iostream>

#include "mixradix/topo/discover.hpp"
#include "mixradix/topo/presets.hpp"

int main() {
  using namespace mr;

  for (const auto& machine :
       {topo::hydra(16), topo::hydra(32, 2), topo::lumi(16), topo::lumi_node(),
        topo::testbox()}) {
    std::cout << machine.describe() << "\n";
  }

  std::cout << "this host: ";
  if (const auto host = topo::discover_host()) {
    std::cout << host->to_string() << " (from sysfs)\n";
  } else {
    std::cout << "not discoverable or heterogeneous — provide a hierarchy "
                 "manually\n";
  }

  // §3.2 hierarchy surgery: fake levels and network levels.
  const Hierarchy socket16{16, 2, 16};
  std::cout << "\n" << socket16.to_string() << " with each 16-core socket "
            << "faked as 2 x 8: "
            << socket16.with_split_level(2, 2).to_string() << "\n";
  const Hierarchy node{2, 2, 8};
  std::cout << node.to_string() << " behind a 2 x 3 x 16 switch tree: "
            << node.with_prefix_levels({2, 3, 16}).to_string() << " ("
            << node.with_prefix_levels({2, 3, 16}).total()
            << " cores; needs exactly 96 nodes, §3.2)\n";
  return 0;
}
