// Order-space exploration: metrics and equivalence classes without any
// simulation (§3.3's "do not evaluate all h! permutations" message).
//
//   $ ./explore_orders [hierarchy] [comm_size] [fast|reference]
//   $ ./explore_orders 16:2:2:8 16
//
// Prints, for a hierarchy given on the command line, the equivalence
// classes of orders at each granularity and the metric tuple of each class
// representative — the screening step before any expensive benchmarking.
// The optional third argument selects the classifier: the hashed
// closed-form fast path (default) or the map-based reference; the classes
// printed are identical, only the kernel counters differ.
#include <iostream>
#include <string>

#include "mixradix/mr/equivalence.hpp"
#include "mixradix/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace mr;

  const Hierarchy h =
      argc > 1 ? Hierarchy::parse(argv[1]) : Hierarchy{16, 2, 2, 8};
  const std::int64_t comm_size = argc > 2 ? std::stoll(argv[2]) : 16;
  const MetricsImpl impl = argc > 3 && std::string(argv[3]) == "reference"
                               ? MetricsImpl::Reference
                               : MetricsImpl::Fast;

  std::cout << "hierarchy " << h.to_string() << ", " << h.total()
            << " processes, subcommunicators of " << comm_size << "\n";
  std::cout << factorial(h.depth()) << " orders total ("
            << (impl == MetricsImpl::Fast ? "hashed fast" : "map-based reference")
            << " classifier)\n\n";

  // Classify the full h! set once, at the finest granularity; the coarser
  // partitions are refinements of it, so they merge from the exact classes
  // (one signature per class, not per order) instead of re-classifying the
  // whole order space twice more. Output is identical to three
  // classify_orders calls — enforced by the equivalence test suite.
  ClassifyStats stats;
  const auto exact =
      classify_orders(h, comm_size, Equivalence::ExactPlacement, 0, impl, &stats);
  const auto internal =
      coarsen_classes(h, comm_size, exact, Equivalence::SameSetsAndInternal);
  const auto sets =
      coarsen_classes(h, comm_size, exact, Equivalence::SameSetsOnly);

  std::cout << "distinct placements:                     " << exact.size() << "\n";
  std::cout << "distinct (comm sets + internal order):   " << internal.size()
            << "  <- benchmark these\n";
  std::cout << "distinct communicator core-sets:         " << sets.size()
            << "  <- what pair-percentages can see\n\n";

  std::cout << "core-set classes (representative metrics, members):\n";
  for (const auto& cls : sets) {
    std::cout << "  " << cls.representative.to_string() << "\n    members:";
    for (const auto& member : cls.members) {
      std::cout << " " << order_to_string(member);
    }
    std::cout << "\n";
  }
  if (impl == MetricsImpl::Fast) {
    std::cout << "\nexact pass kernels: " << stats.signatures_hashed
              << " signatures hashed, " << stats.collision_checks
              << " collision checks, " << stats.hash_collisions
              << " hash collisions; coarser granularities merged from "
              << exact.size() << " class representatives\n";
  }
  std::cout << "\nwithin one core-set class, members differing in ring cost "
               "can still\nperform differently for rank-order-sensitive "
               "collectives (allgather,\nallreduce) — §3.3 of the paper.\n";
  return 0;
}
