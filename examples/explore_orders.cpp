// Order-space exploration: metrics and equivalence classes without any
// simulation (§3.3's "do not evaluate all h! permutations" message).
//
//   $ ./explore_orders [hierarchy] [comm_size] [fast|reference]
//   $ ./explore_orders 16:2:2:8 16
//
// Prints, for a hierarchy given on the command line, the equivalence
// classes of orders at each granularity and the metric tuple of each class
// representative — the screening step before any expensive benchmarking.
// The optional third argument selects the classifier: the hashed
// closed-form fast path (default) or the map-based reference; the classes
// printed are identical, only the kernel counters differ.
#include <iostream>
#include <string>

#include "mixradix/mr/equivalence.hpp"
#include "mixradix/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace mr;

  const Hierarchy h =
      argc > 1 ? Hierarchy::parse(argv[1]) : Hierarchy{16, 2, 2, 8};
  const std::int64_t comm_size = argc > 2 ? std::stoll(argv[2]) : 16;
  const MetricsImpl impl = argc > 3 && std::string(argv[3]) == "reference"
                               ? MetricsImpl::Reference
                               : MetricsImpl::Fast;

  std::cout << "hierarchy " << h.to_string() << ", " << h.total()
            << " processes, subcommunicators of " << comm_size << "\n";
  std::cout << factorial(h.depth()) << " orders total ("
            << (impl == MetricsImpl::Fast ? "hashed fast" : "map-based reference")
            << " classifier)\n\n";

  const auto exact =
      classify_orders(h, comm_size, Equivalence::ExactPlacement, 0, impl);
  const auto internal =
      classify_orders(h, comm_size, Equivalence::SameSetsAndInternal, 0, impl);
  ClassifyStats stats;
  const auto sets =
      classify_orders(h, comm_size, Equivalence::SameSetsOnly, 0, impl, &stats);

  std::cout << "distinct placements:                     " << exact.size() << "\n";
  std::cout << "distinct (comm sets + internal order):   " << internal.size()
            << "  <- benchmark these\n";
  std::cout << "distinct communicator core-sets:         " << sets.size()
            << "  <- what pair-percentages can see\n\n";

  std::cout << "core-set classes (representative metrics, members):\n";
  for (const auto& cls : sets) {
    std::cout << "  " << cls.representative.to_string() << "\n    members:";
    for (const auto& member : cls.members) {
      std::cout << " " << order_to_string(member);
    }
    std::cout << "\n";
  }
  if (impl == MetricsImpl::Fast) {
    std::cout << "\ncore-set pass kernels: " << stats.signatures_hashed
              << " signatures hashed, " << stats.collision_checks
              << " collision checks, " << stats.hash_collisions
              << " hash collisions\n";
  }
  std::cout << "\nwithin one core-set class, members differing in ring cost "
               "can still\nperform differently for rank-order-sensitive "
               "collectives (allgather,\nallreduce) — §3.3 of the paper.\n";
  return 0;
}
