// verify_cli: run the static schedule verifier from the command line — the
// tool a collective-algorithm author points at a generator while debugging.
//
//   $ ./verify_cli list
//   $ ./verify_cli check --algo allreduce_ring --p 8 --count 1000
//   $ ./verify_cli check --algo bcast_binomial --p 5 --root 3 --verbose 1
//   $ ./verify_cli matrix --ranks 2,3,4,8 --counts 1,1000
//   $ ./verify_cli topo --machine lumi:4
//   $ ./verify_cli topo --all 1
//   $ ./verify_cli bind --machine hydra:4 --algo alltoall_bruck --count 4096
//   $ ./verify_cli bind --all 1 --report congestion_report.txt
//
// Exit status is 0 iff every analyzed schedule is clean (no Error-level
// diagnostics), so the tool slots directly into CI.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mixradix/simmpi/plan.hpp"
#include "mixradix/simmpi/registry.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/verify/binding.hpp"
#include "mixradix/verify/generator_matrix.hpp"
#include "mixradix/verify/topo_check.hpp"
#include "mixradix/verify/verify.hpp"

namespace {

int usage() {
  std::cerr <<
      "usage: verify_cli <command> [flags]\n"
      "commands:\n"
      "  list    print every algorithm/composition in the generator matrix\n"
      "  check   generate one schedule and analyze it\n"
      "          --algo NAME (required)  --p P  --count C  --root R\n"
      "          --verbose 1 prints warnings/infos, not just errors\n"
      "  matrix  analyze the full generator matrix\n"
      "          --ranks P1,P2,...  --counts C1,C2,...\n"
      "  topo    lint a machine's topology invariants\n"
      "          --machine SPEC (testbox | hydra:N[:nics] | lumi:N |\n"
      "          hydra_node | lumi_node | generic:n:s:c) or --all 1\n"
      "  bind    static binding analysis: congestion + lower bound\n"
      "          --machine SPEC  --algo NAME  --p P  --count C  --root R\n"
      "          --reps N  --mapping packed|spread  --top K\n"
      "          --all 1 sweeps presets x registry; --report PATH saves\n"
      "          the full congestion report\n";
  return 2;
}

mr::topo::Machine parse_machine(const std::string& spec) {
  std::vector<std::string> parts;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ':')) parts.push_back(item);
  MR_EXPECT(!parts.empty(), "empty machine spec");
  const auto arg = [&](std::size_t i, int fallback) {
    return i < parts.size() ? std::stoi(parts[i]) : fallback;
  };
  if (parts[0] == "testbox") return mr::topo::testbox();
  if (parts[0] == "hydra") return mr::topo::hydra(arg(1, 4), arg(2, 1));
  if (parts[0] == "hydra_node") return mr::topo::hydra_node(arg(1, 1));
  if (parts[0] == "lumi") return mr::topo::lumi(arg(1, 2));
  if (parts[0] == "lumi_node") return mr::topo::lumi_node();
  if (parts[0] == "generic") {
    return mr::topo::generic(arg(1, 2), arg(2, 2), arg(3, 8));
  }
  throw mr::invalid_argument("unknown machine spec: " + spec);
}

std::vector<mr::topo::Machine> preset_sweep() {
  return {mr::topo::testbox(), mr::topo::hydra(4), mr::topo::hydra(4, 2),
          mr::topo::lumi(2)};
}

std::vector<std::int64_t> make_mapping(const std::string& kind,
                                       std::int32_t p, std::int64_t cores) {
  MR_EXPECT(p <= cores, "p exceeds the machine's cores");
  std::vector<std::int64_t> out(static_cast<std::size_t>(p));
  const std::int64_t stride = kind == "spread" ? cores / p : 1;
  for (std::int32_t r = 0; r < p; ++r) out[static_cast<std::size_t>(r)] = r * stride;
  return out;
}

std::vector<std::int64_t> parse_list(const std::string& spec) {
  std::vector<std::int64_t> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoll(item));
  MR_EXPECT(!out.empty(), "empty list: " + spec);
  return out;
}

void print_report(const mr::verify::Report& report, bool verbose) {
  for (const auto& d : report.diagnostics) {
    if (verbose || d.severity == mr::verify::Severity::Error) {
      std::cout << d.to_string() << "\n";
    }
  }
  std::cout << report.summary() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mr::verify;
  if (argc < 2) return usage();
  const std::string command = argv[1];

  std::map<std::string, std::string> flags;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
    flags[argv[i] + 2] = argv[i + 1];
  }
  const auto flag = [&](const char* name, const char* fallback) {
    const auto it = flags.find(name);
    return it == flags.end() ? std::string(fallback) : it->second;
  };

  try {
    if (command == "list") {
      for (const std::string& name : algorithm_names()) {
        std::cout << name << "\n";
      }
    } else if (command == "check") {
      const std::string algo = flag("algo", "");
      if (algo.empty()) return usage();
      const auto p = static_cast<std::int32_t>(std::stol(flag("p", "8")));
      const std::int64_t count = std::stoll(flag("count", "1000"));
      const auto root = static_cast<std::int32_t>(std::stol(flag("root", "0")));
      const bool verbose = flag("verbose", "0") != "0";
      const auto schedule = make_named(algo, p, count, root);
      Options options;
      options.report_inputs = verbose;
      const Report report = analyze(schedule, options);
      std::cout << algo << " p=" << p << " count=" << count << ": ";
      print_report(report, verbose);
      return report.clean() ? 0 : 1;
    } else if (command == "matrix") {
      std::vector<std::int32_t> ranks;
      for (const std::int64_t p : parse_list(flag("ranks", "2,3,4,8"))) {
        ranks.push_back(static_cast<std::int32_t>(p));
      }
      const std::vector<std::int64_t> counts = parse_list(flag("counts", "1,1000"));
      std::size_t failed = 0;
      const auto points = generator_matrix(ranks, counts);
      for (const MatrixPoint& point : points) {
        const Report report = analyze(point.make());
        if (!report.clean()) {
          ++failed;
          std::cout << point.name << ": FAIL\n";
          print_report(report, false);
        }
      }
      std::cout << points.size() - failed << "/" << points.size()
                << " schedules verified clean\n";
      return failed == 0 ? 0 : 1;
    } else if (command == "topo") {
      std::vector<mr::topo::Machine> machines;
      if (flag("all", "0") != "0") {
        machines = preset_sweep();
      } else {
        machines.push_back(parse_machine(flag("machine", "testbox")));
      }
      std::size_t failed = 0;
      for (const auto& m : machines) {
        const TopoReport report = analyze(m);
        std::cout << report.to_string();
        if (!report.clean()) ++failed;
      }
      std::cout << machines.size() - failed << "/" << machines.size()
                << " machines verified clean\n";
      return failed == 0 ? 0 : 1;
    } else if (command == "bind") {
      const std::int64_t count = std::stoll(flag("count", "4096"));
      const auto root = static_cast<std::int32_t>(std::stol(flag("root", "0")));
      const int reps = std::stoi(flag("reps", "1"));
      const std::string mapping = flag("mapping", "packed");
      binding::Options options;
      options.top_k = std::stoi(flag("top", "8"));
      const std::string report_path = flag("report", "");
      std::ofstream report_file;
      if (!report_path.empty()) {
        report_file.open(report_path);
        MR_EXPECT(report_file.good(), "cannot open " + report_path);
      }
      const auto analyze_point = [&](const mr::topo::Machine& m,
                                     const std::string& algo,
                                     std::int32_t p) {
        const auto plan = mr::simmpi::compile_plan(algo, p, count, root, reps);
        const auto cores = make_mapping(mapping, p, m.cores());
        const auto result = binding::analyze(plan, m, cores, options);
        std::cout << m.name() << " x " << algo << " p=" << p
                  << " count=" << count << ": "
                  << (result.clean() ? "clean" : "DIRTY") << ", lower bound "
                  << result.bound.lower_bound << " s\n";
        if (report_file.is_open()) {
          report_file << "=== " << m.name() << " x " << algo << " p=" << p
                      << " count=" << count << " ===\n"
                      << result.to_string() << "\n";
        }
        return result.clean();
      };
      std::size_t failed = 0;
      std::size_t analyzed = 0;
      if (flag("all", "0") != "0") {
        const auto p = static_cast<std::int32_t>(std::stol(flag("p", "8")));
        for (const auto& m : preset_sweep()) {
          for (const auto& info : mr::simmpi::algorithm_registry()) {
            if (!info.supported(p)) continue;
            ++analyzed;
            if (!analyze_point(m, info.name, p)) ++failed;
          }
        }
      } else {
        const std::string algo = flag("algo", "");
        if (algo.empty()) return usage();
        const auto m = parse_machine(flag("machine", "testbox"));
        const auto p = static_cast<std::int32_t>(
            std::stol(flag("p", std::to_string(m.cores()).c_str())));
        ++analyzed;
        const auto plan = mr::simmpi::compile_plan(algo, p, count, root, reps);
        const auto cores = make_mapping(mapping, p, m.cores());
        const auto result = binding::analyze(plan, m, cores, options);
        std::cout << result.to_string();
        if (!result.clean()) ++failed;
        if (report_file.is_open()) report_file << result.to_string();
      }
      std::cout << analyzed - failed << "/" << analyzed
                << " bindings verified clean\n";
      return failed == 0 ? 0 : 1;
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
