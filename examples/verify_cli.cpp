// verify_cli: run the static schedule verifier from the command line — the
// tool a collective-algorithm author points at a generator while debugging.
//
//   $ ./verify_cli list
//   $ ./verify_cli check --algo allreduce_ring --p 8 --count 1000
//   $ ./verify_cli check --algo bcast_binomial --p 5 --root 3 --verbose 1
//   $ ./verify_cli matrix --ranks 2,3,4,8 --counts 1,1000
//
// Exit status is 0 iff every analyzed schedule is clean (no Error-level
// diagnostics), so the tool slots directly into CI.
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mixradix/util/expect.hpp"
#include "mixradix/verify/generator_matrix.hpp"
#include "mixradix/verify/verify.hpp"

namespace {

int usage() {
  std::cerr <<
      "usage: verify_cli <command> [flags]\n"
      "commands:\n"
      "  list    print every algorithm/composition in the generator matrix\n"
      "  check   generate one schedule and analyze it\n"
      "          --algo NAME (required)  --p P  --count C  --root R\n"
      "          --verbose 1 prints warnings/infos, not just errors\n"
      "  matrix  analyze the full generator matrix\n"
      "          --ranks P1,P2,...  --counts C1,C2,...\n";
  return 2;
}

std::vector<std::int64_t> parse_list(const std::string& spec) {
  std::vector<std::int64_t> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoll(item));
  MR_EXPECT(!out.empty(), "empty list: " + spec);
  return out;
}

void print_report(const mr::verify::Report& report, bool verbose) {
  for (const auto& d : report.diagnostics) {
    if (verbose || d.severity == mr::verify::Severity::Error) {
      std::cout << d.to_string() << "\n";
    }
  }
  std::cout << report.summary() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mr::verify;
  if (argc < 2) return usage();
  const std::string command = argv[1];

  std::map<std::string, std::string> flags;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
    flags[argv[i] + 2] = argv[i + 1];
  }
  const auto flag = [&](const char* name, const char* fallback) {
    const auto it = flags.find(name);
    return it == flags.end() ? std::string(fallback) : it->second;
  };

  try {
    if (command == "list") {
      for (const std::string& name : algorithm_names()) {
        std::cout << name << "\n";
      }
    } else if (command == "check") {
      const std::string algo = flag("algo", "");
      if (algo.empty()) return usage();
      const auto p = static_cast<std::int32_t>(std::stol(flag("p", "8")));
      const std::int64_t count = std::stoll(flag("count", "1000"));
      const auto root = static_cast<std::int32_t>(std::stol(flag("root", "0")));
      const bool verbose = flag("verbose", "0") != "0";
      const auto schedule = make_named(algo, p, count, root);
      Options options;
      options.report_inputs = verbose;
      const Report report = analyze(schedule, options);
      std::cout << algo << " p=" << p << " count=" << count << ": ";
      print_report(report, verbose);
      return report.clean() ? 0 : 1;
    } else if (command == "matrix") {
      std::vector<std::int32_t> ranks;
      for (const std::int64_t p : parse_list(flag("ranks", "2,3,4,8"))) {
        ranks.push_back(static_cast<std::int32_t>(p));
      }
      const std::vector<std::int64_t> counts = parse_list(flag("counts", "1,1000"));
      std::size_t failed = 0;
      const auto points = generator_matrix(ranks, counts);
      for (const MatrixPoint& point : points) {
        const Report report = analyze(point.make());
        if (!report.clean()) {
          ++failed;
          std::cout << point.name << ": FAIL\n";
          print_report(report, false);
        }
      }
      std::cout << points.size() - failed << "/" << points.size()
                << " schedules verified clean\n";
      return failed == 0 ? 0 : 1;
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
