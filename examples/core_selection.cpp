// Core selection for under-subscribed nodes (§3.4 + Fig. 9, condensed).
//
//   $ ./core_selection [nprocs] [class]
//
// Enumerates every distinct way Algorithm 3 can place `nprocs` CG
// processes on one LUMI node, prints the Slurm --cpu-bind=map_cpu option
// for each, and simulates the CG proxy to rank them — demonstrating that
// the selected core *set* dominates performance and that one core per L3
// wins for this memory-bound benchmark.
#include <algorithm>
#include <iostream>

#include "mixradix/apps/cg.hpp"
#include "mixradix/mr/core_select.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace mr;

  const std::int64_t nprocs = argc > 1 ? std::stoll(argv[1]) : 8;
  const char klass_name = argc > 2 ? argv[2][0] : 'B';

  const auto machine = topo::lumi_node();
  const auto klass = apps::cg::cg_class(klass_name);
  std::cout << machine.describe() << "\nCG class " << klass.name << ", "
            << nprocs << " processes; serial estimate "
            << util::format_fixed(apps::cg::serial_seconds(machine, klass), 1)
            << " s\n\n";

  struct Row {
    SelectionOutcome outcome;
    double seconds;
  };
  std::vector<Row> rows;
  for (auto& outcome : enumerate_selections(machine.hierarchy(), nprocs)) {
    const double seconds =
        apps::cg::simulate_cg(machine, klass, outcome.core_list).seconds;
    rows.push_back({std::move(outcome), seconds});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.seconds < b.seconds; });

  for (const Row& row : rows) {
    std::cout << "  " << order_to_string(row.outcome.order) << "  "
              << util::format_fixed(row.seconds, 2) << " s   cores "
              << core_set_ranges(row.outcome.core_set) << "\n"
              << "      srun --cpu-bind="
              << map_cpu_string(row.outcome.core_list) << "\n";
    const auto sub = selected_hierarchy(machine.hierarchy(), row.outcome.core_set);
    if (sub) {
      std::cout << "      selected sub-hierarchy: " << sub->to_string()
                << " (usable for a second reordering step)\n";
    }
  }
  return 0;
}
