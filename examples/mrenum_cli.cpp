// mrenum: a command-line front end to the enumeration algorithms — what a
// cluster user would actually invoke from a job script.
//
//   $ ./mrenum rank --hierarchy 2:2:4 --order 0-2-1 --rank 10
//   $ ./mrenum rankfile --hierarchy 16:2:2:8 --order 1-3-2-0
//   $ ./mrenum map_cpu --hierarchy 2:4:2:8 --order 2-1-0-3 --nprocs 16
//   $ ./mrenum orders --hierarchy 2:2:4 --comm-size 4
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <utility>

#include "mixradix/mr/core_select.hpp"
#include "mixradix/mr/equivalence.hpp"
#include "mixradix/mr/reorder.hpp"
#include "mixradix/slurm/distribution.hpp"
#include "mixradix/util/expect.hpp"

namespace {

int usage() {
  std::cerr <<
      "usage: mrenum <command> [--hierarchy H] [--order O] [--rank R]\n"
      "              [--nprocs N] [--comm-size S] [--metrics fast|reference]\n"
      "commands:\n"
      "  rank      new rank of --rank under --order\n"
      "  rankfile  Open MPI rankfile realising --order on --hierarchy\n"
      "  map_cpu   Slurm --cpu-bind list selecting --nprocs cores per node\n"
      "  orders    all orders with metrics and Slurm equivalents\n"
      "flags:\n"
      "  --metrics fast|reference   metric kernels for `orders`: closed-form\n"
      "                             (default) or the brute-force reference;\n"
      "                             the output is identical either way\n"
      "  --shard i/n                `orders` emits only lexicographic ranks\n"
      "                             i, i+n, i+2n, ... (factorial-number-\n"
      "                             system unranking, no enumeration of the\n"
      "                             other shards); the n shards partition\n"
      "                             the h! orders exactly. Default 0/1.\n";
  return 2;
}

/// Parse "i/n" (e.g. "1/4") into {index, count}; throws on malformed specs.
std::pair<long long, long long> parse_shard(const std::string& value) {
  const auto slash = value.find('/');
  long long index = -1, count = -1;
  try {
    if (slash != std::string::npos) {
      index = std::stoll(value.substr(0, slash));
      count = std::stoll(value.substr(slash + 1));
    }
  } catch (const std::exception&) {
  }
  if (index < 0 || count < 1 || index >= count) {
    throw mr::invalid_argument("--shard must be i/n with 0 <= i < n, got '" +
                               value + "'");
  }
  return {index, count};
}

mr::MetricsImpl parse_metrics_impl(const std::string& value) {
  if (value == "fast") return mr::MetricsImpl::Fast;
  if (value == "reference") return mr::MetricsImpl::Reference;
  throw mr::invalid_argument("--metrics must be 'fast' or 'reference', got '" +
                             value + "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mr;
  if (argc < 2) return usage();
  const std::string command = argv[1];

  std::map<std::string, std::string> flags;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
    flags[argv[i] + 2] = argv[i + 1];
  }
  const auto flag = [&](const char* name, const char* fallback) {
    const auto it = flags.find(name);
    return it == flags.end() ? std::string(fallback) : it->second;
  };

  try {
    const Hierarchy h = Hierarchy::parse(flag("hierarchy", "2:2:4"));
    if (command == "rank") {
      const Order order = parse_order(flag("order", "0-1-2"));
      const std::int64_t rank = std::stoll(flag("rank", "0"));
      std::cout << reorder_rank(h, rank, order) << "\n";
    } else if (command == "rankfile") {
      const Order order = parse_order(flag("order", "0-1-2"));
      std::cout << ReorderPlan(h, order).rankfile();
    } else if (command == "map_cpu") {
      const Order order = parse_order(flag("order", "0-1-2"));
      const std::int64_t n = std::stoll(flag("nprocs", "1"));
      std::cout << "--cpu-bind=" << map_cpu_string(select_cores(h, order, n))
                << "\n";
    } else if (command == "orders") {
      const std::int64_t comm_size =
          std::stoll(flag("comm-size", std::to_string(h.total()).c_str()));
      const MetricsImpl impl = parse_metrics_impl(flag("metrics", "fast"));
      const auto [shard, nshards] = parse_shard(flag("shard", "0/1"));
      // Unrank each of this shard's lexicographic positions directly — a
      // shard never materialises (or even iterates) the other n-1 shards,
      // so n workers splitting an h! enumeration each do 1/n of the work.
      for (long long idx = shard; idx < factorial(h.depth()); idx += nshards) {
        const Order order = nth_order_lexicographic(h.depth(), idx);
        const auto ch = characterize_order(h, order, comm_size, impl);
        const auto dist = slurm::equivalent_distribution(h, order);
        std::cout << ch.to_string() << "  distribution="
                  << (dist ? dist->to_string() : "-") << "\n";
      }
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
