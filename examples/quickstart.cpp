// Quickstart: the mixed-radix enumeration API in five minutes.
//
//   $ ./quickstart
//
// Walks through the paper's running example: decompose a rank into
// hierarchy coordinates, renumber it under a level permutation, inspect
// the mapping metrics, and generate the artifacts you would feed to a real
// launcher (MPI_Comm_split arguments, a rankfile, a map_cpu list).
#include <iostream>

#include "mixradix/mr/core_select.hpp"
#include "mixradix/mr/metrics.hpp"
#include "mixradix/mr/reorder.hpp"
#include "mixradix/slurm/distribution.hpp"

int main() {
  using namespace mr;

  // A machine: 2 nodes x 2 sockets x 4 cores (Fig. 1 of the paper).
  const Hierarchy h{2, 2, 4};
  std::cout << "machine " << h.to_string() << " has " << h.total()
            << " cores\n\n";

  // Algorithm 1: a rank's coordinates in the hierarchy.
  const Coords c = decompose(h, 10);
  std::cout << "rank 10 lives at node " << c[0] << ", socket " << c[1]
            << ", core " << c[2] << "\n";

  // Algorithm 2: renumber under an enumeration order. Order [0,2,1]
  // enumerates nodes fastest, then cores, then sockets.
  const Order order = parse_order("0-2-1");
  std::cout << "under order " << order_to_string(order) << ", rank 10 becomes "
            << reorder_rank(h, 10, order) << " (Table 1 says 5)\n\n";

  // Metrics (§3.3) for subcommunicators of 4 consecutive reordered ranks.
  for (const Order& o : all_orders_lexicographic(h.depth())) {
    const OrderCharacter ch = characterize_order(h, o, 4);
    const auto dist = slurm::equivalent_distribution(h, o);
    std::cout << "order " << ch.to_string() << "  -> Slurm --distribution="
              << (dist ? dist->to_string() : "(not expressible)") << "\n";
  }

  // Deployment artifacts.
  const ReorderPlan plan(h, order);
  std::cout << "\nMPI_Comm_split(color=" << plan.split_color()
            << ", key=new_rank); e.g. old rank 10 passes key "
            << plan.split_key(10) << "\n";
  std::cout << "\nrankfile for the same mapping:\n" << plan.rankfile();

  // Second use case (§3.4): run only 4 processes per node, picking one
  // core per socket first (Algorithm 3).
  const Hierarchy node = h.suffix(1);  // one node: [2, 4]
  const auto cores = select_cores(node, parse_order("0-1"), 4);
  std::cout << "\nSlurm --cpu-bind=" << map_cpu_string(cores)
            << " spreads 4 processes over both sockets\n";
  return 0;
}
