// Rank reordering for subcommunicator collectives (§3.2 + §4.1, condensed).
//
//   $ ./rank_reordering [comm_size] [total_kb]
//
// Simulates an application that splits a reordered MPI_COMM_WORLD into
// equal subcommunicators and runs MPI_Alltoall in all of them
// simultaneously, on an 8-node Hydra-like cluster — then ranks all
// performance-distinct orders. This is the experiment you would run to
// choose a mapping for a real subcommunicator-heavy code.
#include <algorithm>
#include <iostream>
#include <vector>

#include "mixradix/mr/equivalence.hpp"
#include "mixradix/simmpi/world.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace mr;

  const std::int64_t comm_size = argc > 1 ? std::stoll(argv[1]) : 16;
  const std::int64_t total_bytes = (argc > 2 ? std::stoll(argv[2]) : 1024) * 1024;

  const auto machine = topo::hydra(8);
  const simmpi::World world(machine);
  std::cout << machine.describe() << "\n";

  // Deduplicate the 4! = 24 orders: orders mapping communicators to the
  // same core sets with the same internal rank order are indistinguishable.
  const auto orders = distinct_orders(machine.hierarchy(), comm_size,
                                      Equivalence::SameSetsAndInternal);
  std::cout << orders.size() << " performance-distinct orders (of "
            << factorial(machine.hierarchy().depth()) << ")\n\n";

  const std::int64_t count =
      std::max<std::int64_t>(1, total_bytes / (8 * comm_size));
  struct Row {
    Order order;
    double alone;
    double together;
  };
  std::vector<Row> rows;
  for (const Order& order : orders) {
    const auto comms = world.reordered(order).split_blocks(comm_size);
    const double alone =
        comms.front().time_collective(simmpi::Collective::Alltoall, count);
    const double together = simmpi::Communicator::time_concurrent(
        comms, simmpi::Collective::Alltoall, count);
    rows.push_back({order, alone, together});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.together < b.together; });

  std::cout << "MPI_Alltoall, " << comm_size << " procs/comm, "
            << util::format_bytes(static_cast<std::uint64_t>(total_bytes))
            << " per collective — sorted by all-comms time:\n";
  std::cout << "order        1 comm [us]   all comms [us]   legend\n";
  for (const Row& row : rows) {
    const auto ch = characterize_order(machine.hierarchy(), row.order, comm_size);
    std::cout << "  " << order_to_string(row.order) << "      "
              << util::format_fixed(row.alone * 1e6, 1) << "          "
              << util::format_fixed(row.together * 1e6, 1) << "        "
              << ch.to_string() << "\n";
  }
  std::cout << "\npacked orders (high % at low levels) stay flat under "
               "concurrency;\nspread orders win alone and collapse together "
               "— the paper's Fig. 3 in one program.\n";
  return 0;
}
