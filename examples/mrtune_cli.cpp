// mrtune: the mapping autotuner from the command line — "which enumeration
// orders should my job script use on this machine for this workload?"
//
//   $ ./mrtune --machine lumi:2 --size 256 --collective alltoall --k 5
//   $ ./mrtune --machine hydra:4 --size 16 --collective allgather,allreduce
//              --bytes 1048576,8388608 --json 1
//   $ ./mrtune --machine testbox --size 4 --concurrency single --k 2
//   $ ./mrtune --machine lumi:2 --size 32 --budget-points 40 --k 3
//   $ ./mrtune --machine lumi:2 --size 32 --shard 0/4   # 1 of 4 workers
//
// Prints the top-k orders with their §3.3 metric tuples, simulated scores
// and funnel provenance; --json 1 emits the canonical machine-readable
// report instead (byte-identical across runs and thread counts when the
// budget is a point budget or absent).
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mixradix/engine/engine.hpp"
#include "mixradix/topo/presets.hpp"
#include "mixradix/tune/report.hpp"
#include "mixradix/tune/search.hpp"
#include "mixradix/util/expect.hpp"

namespace {

int usage() {
  std::cerr <<
      "usage: mrtune [flags]\n"
      "  --machine SPEC      testbox | hydra:N[:nics] | hydra_node |\n"
      "                      lumi:N | lumi_node | generic:n:s:c\n"
      "  --size S[,S...]     communicator sizes (default: machine cores)\n"
      "  --collective C[,C]  alltoall (default), allgather, allreduce,\n"
      "                      bcast, reduce, reduce_scatter, gather,\n"
      "                      scatter, scan, barrier\n"
      "  --bytes B[,B...]    total payload per point (default 8388608)\n"
      "  --concurrency MODE  all (default) | single subcommunicator\n"
      "  --k K               orders to return (default 3)\n"
      "  --reps N            repetitions per point (default 2)\n"
      "  --threads N         0 = default pool width, 1 = serial\n"
      "  --slack S           completion slack (default 0 = exact)\n"
      "  --budget-points N   stop after N point simulations (anytime)\n"
      "  --budget-seconds S  wall-clock cap (non-deterministic)\n"
      "  --shard i/n         search only candidate shard i of n\n"
      "  --plan-cache-cap N  bound this query's plan cache (LRU, 0 = off)\n"
      "  --bound-cache-cap N bound the static-bound structure cache\n"
      "                      (LRU, default 512, 0 = unbounded)\n"
      "  --no-bound-cache 1  fresh analyze_jobs per candidate x point\n"
      "  --json 1            canonical JSON report on stdout (cache and\n"
      "                      reuse stats go to stderr)\n";
  return 2;
}

mr::topo::Machine parse_machine(const std::string& spec) {
  std::vector<std::string> parts;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ':')) parts.push_back(item);
  MR_EXPECT(!parts.empty(), "empty machine spec");
  const auto arg = [&](std::size_t i, int fallback) {
    return i < parts.size() ? std::stoi(parts[i]) : fallback;
  };
  if (parts[0] == "testbox") return mr::topo::testbox();
  if (parts[0] == "hydra") return mr::topo::hydra(arg(1, 4), arg(2, 1));
  if (parts[0] == "hydra_node") return mr::topo::hydra_node(arg(1, 1));
  if (parts[0] == "lumi") return mr::topo::lumi(arg(1, 2));
  if (parts[0] == "lumi_node") return mr::topo::lumi_node();
  if (parts[0] == "generic") {
    return mr::topo::generic(arg(1, 2), arg(2, 2), arg(3, 8));
  }
  throw mr::invalid_argument("unknown machine spec: " + spec);
}

std::vector<std::string> split(const std::string& spec, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, sep)) out.push_back(item);
  MR_EXPECT(!out.empty(), "empty list: " + spec);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mr;
  std::map<std::string, std::string> flags;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
    flags[argv[i] + 2] = argv[i + 1];
  }
  if (argc > 1 && (argc - 1) % 2 != 0) return usage();
  const auto flag = [&](const char* name, const char* fallback) {
    const auto it = flags.find(name);
    return it == flags.end() ? std::string(fallback) : it->second;
  };

  try {
    const topo::Machine machine = parse_machine(flag("machine", "testbox"));
    tune::TuneQuery query;
    query.collectives.clear();
    for (const std::string& name : split(flag("collective", "alltoall"), ',')) {
      query.collectives.push_back(tune::parse_collective(name));
    }
    for (const std::string& s :
         split(flag("size", std::to_string(machine.cores()).c_str()), ',')) {
      query.comm_sizes.push_back(std::stoll(s));
    }
    query.total_bytes.clear();
    for (const std::string& b : split(flag("bytes", "8388608"), ',')) {
      query.total_bytes.push_back(std::stoll(b));
    }
    const std::string mode = flag("concurrency", "all");
    MR_EXPECT(mode == "all" || mode == "single",
              "--concurrency must be 'all' or 'single'");
    query.concurrency = mode == "all" ? tune::Concurrency::AllComms
                                      : tune::Concurrency::SingleComm;
    query.k = std::stoi(flag("k", "3"));
    query.repetitions = std::stoi(flag("reps", "2"));
    query.threads = std::stoi(flag("threads", "0"));
    query.completion_slack = std::stod(flag("slack", "0"));
    query.budget.max_points = std::stoll(flag("budget-points", "0"));
    query.budget.max_seconds = std::stod(flag("budget-seconds", "0"));
    const std::string shard = flag("shard", "0/1");
    const auto slash = shard.find('/');
    MR_EXPECT(slash != std::string::npos, "--shard must be i/n");
    query.shard_index = std::stoi(shard.substr(0, slash));
    query.shard_count = std::stoi(shard.substr(slash + 1));
    // The query runs in its own Engine so --plan-cache-cap bounds THIS
    // query's cache; it used to set_capacity on the process-wide
    // PlanCache singleton, leaking the LRU bound into every later query
    // in the process.
    EngineConfig config;
    config.plan_cache_capacity = std::stoull(flag("plan-cache-cap", "0"));
    config.bound_cache_capacity = std::stoull(flag(
        "bound-cache-cap",
        std::to_string(verify::binding::BoundCache::kDefaultCapacity).c_str()));
    Engine engine(config);
    query.use_bound_cache = flag("no-bound-cache", "0") == "0";

    const tune::TuneReport report = tune::tune(engine, machine, query);
    const Engine::Stats stats = engine.stats();
    // Cache/reuse statistics, next to each other: plan cache (compiled
    // plans) and bound cache (payload-invariant analyzer structures). In
    // --json mode they go to stderr so stdout stays the canonical document.
    std::ostringstream cache_line;
    cache_line << "plan cache: " << stats.plan_cache.hits << " hits, "
               << stats.plan_cache.misses << " misses, "
               << stats.plan_cache.entries << " entries, "
               << stats.plan_cache.evictions << " evictions\n"
               << "bound cache: " << stats.bound_cache.hits << " hits, "
               << stats.bound_cache.misses << " misses, "
               << stats.bound_cache.entries << " entries, "
               << stats.bound_cache.evictions << " evictions\n"
               << "stage-2 structures: "
               << report.stats.bound_structures_built << " built, "
               << report.stats.bound_structure_reuses << " reused\n";
    if (flag("json", "0") != "0") {
      tune::write_json(std::cout, report, /*candidates=*/false);
      std::cerr << cache_line.str();
    } else {
      std::cout << tune::to_string(report) << cache_line.str();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
