#include "mixradix/baseline/comm_matrix_mapper.hpp"

#include <algorithm>
#include <numeric>

#include "mixradix/mr/decompose.hpp"
#include "mixradix/mr/metrics.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::baseline {

namespace {

/// One grouping pass: bundle `n` items into n/size groups of `size`,
/// greedily maximising intra-group volume. Returns the group of each item.
std::vector<std::int32_t> group_items(const std::vector<std::vector<double>>& vol,
                                      std::int32_t size) {
  const auto n = static_cast<std::int32_t>(vol.size());
  MR_ASSERT_INTERNAL(n % size == 0);
  std::vector<std::int32_t> group_of(static_cast<std::size_t>(n), -1);
  std::vector<bool> taken(static_cast<std::size_t>(n), false);

  // Process seeds by descending total traffic: heavy communicators get
  // first pick of their partners (the classic greedy tree-match order).
  std::vector<std::int32_t> seeds(static_cast<std::size_t>(n));
  std::iota(seeds.begin(), seeds.end(), 0);
  std::vector<double> total(static_cast<std::size_t>(n), 0);
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      if (i != j) total[static_cast<std::size_t>(i)] += vol[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  std::stable_sort(seeds.begin(), seeds.end(), [&](std::int32_t a, std::int32_t b) {
    return total[static_cast<std::size_t>(a)] > total[static_cast<std::size_t>(b)];
  });

  std::int32_t next_group = 0;
  for (std::int32_t seed : seeds) {
    if (taken[static_cast<std::size_t>(seed)]) continue;
    const std::int32_t g = next_group++;
    std::vector<std::int32_t> members{seed};
    taken[static_cast<std::size_t>(seed)] = true;
    group_of[static_cast<std::size_t>(seed)] = g;
    while (static_cast<std::int32_t>(members.size()) < size) {
      // Pick the free item with the largest volume to the current members.
      std::int32_t best = -1;
      double best_volume = -1;
      for (std::int32_t candidate = 0; candidate < n; ++candidate) {
        if (taken[static_cast<std::size_t>(candidate)]) continue;
        double to_group = 0;
        for (std::int32_t m : members) {
          to_group += vol[static_cast<std::size_t>(candidate)][static_cast<std::size_t>(m)];
        }
        if (to_group > best_volume) {
          best_volume = to_group;
          best = candidate;
        }
      }
      MR_ASSERT_INTERNAL(best >= 0);
      taken[static_cast<std::size_t>(best)] = true;
      group_of[static_cast<std::size_t>(best)] = g;
      members.push_back(best);
    }
  }
  return group_of;
}

}  // namespace

std::vector<std::int64_t> map_by_comm_matrix(const Hierarchy& h,
                                             const CommMatrix& volume) {
  const std::int64_t p = h.total();
  MR_EXPECT(static_cast<std::int64_t>(volume.size()) == p,
            "matrix size must equal the hierarchy's resource count");
  for (const auto& row : volume) {
    MR_EXPECT(static_cast<std::int64_t>(row.size()) == p, "matrix must be square");
  }

  // Symmetrised working copy.
  std::vector<std::vector<double>> vol(
      static_cast<std::size_t>(p), std::vector<double>(static_cast<std::size_t>(p), 0));
  for (std::int64_t i = 0; i < p; ++i) {
    for (std::int64_t j = 0; j < p; ++j) {
      if (i == j) continue;
      vol[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          volume[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +
          volume[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
    }
  }

  // items[k] = list of ranks inside super-node k, in placement order.
  std::vector<std::vector<std::int64_t>> items(static_cast<std::size_t>(p));
  for (std::int64_t r = 0; r < p; ++r) {
    items[static_cast<std::size_t>(r)] = {r};
  }

  // Bottom-up over levels: group radix(level) super-nodes at a time.
  for (int level = h.depth() - 1; level >= 0; --level) {
    const std::int32_t size = h.radix(level);
    const auto group_of = group_items(vol, size);
    const auto ngroups = static_cast<std::int32_t>(items.size()) / size;

    std::vector<std::vector<std::int64_t>> merged(static_cast<std::size_t>(ngroups));
    for (std::size_t item = 0; item < items.size(); ++item) {
      auto& target = merged[static_cast<std::size_t>(group_of[item])];
      target.insert(target.end(), items[item].begin(), items[item].end());
    }

    std::vector<std::vector<double>> next_vol(
        static_cast<std::size_t>(ngroups),
        std::vector<double>(static_cast<std::size_t>(ngroups), 0));
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t j = 0; j < items.size(); ++j) {
        if (group_of[i] == group_of[j]) continue;
        next_vol[static_cast<std::size_t>(group_of[i])]
                [static_cast<std::size_t>(group_of[j])] += vol[i][j];
      }
    }
    items = std::move(merged);
    vol = std::move(next_vol);
  }
  MR_ASSERT_INTERNAL(items.size() == 1 &&
                     static_cast<std::int64_t>(items[0].size()) == p);

  // The flattened tree order is the physical core order.
  std::vector<std::int64_t> core_of_rank(static_cast<std::size_t>(p));
  for (std::int64_t core = 0; core < p; ++core) {
    core_of_rank[static_cast<std::size_t>(items[0][static_cast<std::size_t>(core)])] =
        core;
  }
  return core_of_rank;
}

double weighted_hop_cost(const Hierarchy& h, const CommMatrix& volume,
                         const std::vector<std::int64_t>& core_of_rank) {
  const std::int64_t p = h.total();
  MR_EXPECT(static_cast<std::int64_t>(volume.size()) == p &&
                static_cast<std::int64_t>(core_of_rank.size()) == p,
            "matrix/placement size mismatch");
  std::vector<Coords> coords;
  coords.reserve(static_cast<std::size_t>(p));
  for (std::int64_t r = 0; r < p; ++r) {
    coords.push_back(decompose(h, core_of_rank[static_cast<std::size_t>(r)]));
  }
  double cost = 0;
  for (std::int64_t i = 0; i < p; ++i) {
    for (std::int64_t j = 0; j < p; ++j) {
      if (i == j) continue;
      const double v = volume[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (v <= 0) continue;
      cost += v * hop_cost(h, coords[static_cast<std::size_t>(i)],
                           coords[static_cast<std::size_t>(j)]);
    }
  }
  return cost;
}

}  // namespace mr::baseline
