#include "mixradix/mr/permutation.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "mixradix/util/expect.hpp"
#include "mixradix/util/strings.hpp"

namespace mr {

Order parse_order(std::string_view text) {
  std::string_view body = util::trim(text);
  if (!body.empty() && body.front() == '[') {
    MR_EXPECT(body.back() == ']', "unbalanced brackets in order '" + std::string(text) + "'");
    body = body.substr(1, body.size() - 2);
  }
  const char sep = body.find('-') != std::string_view::npos ? '-' : ',';
  Order order;
  for (const auto& part : util::split(body, sep)) {
    order.push_back(util::parse_int(part));
  }
  MR_EXPECT(is_permutation_of_iota(order),
            "'" + std::string(text) + "' is not a permutation of 0..n-1");
  return order;
}

std::string order_to_string(const Order& order) {
  return util::join_ints(order, "-");
}

bool is_permutation_of_iota(const Order& order) {
  // Validation sits on the closed-form metric hot path (called once per
  // order of an h! enumeration), so the common n <= 64 case uses a
  // register-wide bitmask instead of a heap-allocated seen-vector.
  if (order.size() <= 64) {
    std::uint64_t seen = 0;
    for (int v : order) {
      if (v < 0 || v >= static_cast<int>(order.size())) return false;
      const std::uint64_t bit = 1ull << static_cast<unsigned>(v);
      if (seen & bit) return false;
      seen |= bit;
    }
    return !order.empty();
  }
  std::vector<bool> seen(order.size(), false);
  for (int v : order) {
    if (v < 0 || v >= static_cast<int>(order.size())) return false;
    if (seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return !order.empty();
}

Order inverse_order(const Order& order) {
  MR_EXPECT(is_permutation_of_iota(order), "not a permutation");
  Order inverse(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    inverse[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  return inverse;
}

Order compose_orders(const Order& a, const Order& b) {
  MR_EXPECT(a.size() == b.size(), "permutation size mismatch");
  MR_EXPECT(is_permutation_of_iota(a) && is_permutation_of_iota(b), "not permutations");
  Order result(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    result[i] = a[static_cast<std::size_t>(b[i])];
  }
  return result;
}

std::vector<Order> all_orders_lexicographic(int n) {
  MR_EXPECT(n >= 1 && n <= 12, "refusing to materialise more than 12! orders");
  std::vector<Order> out;
  out.reserve(static_cast<std::size_t>(factorial(n)));
  Order order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  do {
    out.push_back(order);
  } while (std::next_permutation(order.begin(), order.end()));
  return out;
}

Order nth_order_lexicographic(int n, long long index) {
  MR_EXPECT(n >= 1 && n <= 20, "n out of range");
  MR_EXPECT(index >= 0 && index < factorial(n),
            "permutation index out of range");
  // Factorial number system: digit i (radix n-i) selects which of the
  // still-unused values comes next.
  std::vector<int> unused(static_cast<std::size_t>(n));
  std::iota(unused.begin(), unused.end(), 0);
  Order order;
  order.reserve(static_cast<std::size_t>(n));
  long long radix_product = factorial(n);
  for (int i = 0; i < n; ++i) {
    radix_product /= n - i;
    const auto pick = static_cast<std::size_t>(index / radix_product);
    index %= radix_product;
    order.push_back(unused[pick]);
    unused.erase(unused.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return order;
}

long long order_index_lexicographic(const Order& order) {
  MR_EXPECT(is_permutation_of_iota(order),
            "order must be a permutation of [0, n)");
  const int n = static_cast<int>(order.size());
  MR_EXPECT(n >= 1 && n <= 20, "n out of range");
  // Factorial number system: digit i is how many still-unused values are
  // smaller than order[i].
  long long index = 0;
  long long radix_product = factorial(n);
  for (int i = 0; i < n; ++i) {
    radix_product /= n - i;
    long long smaller = 0;
    for (int j = i + 1; j < n; ++j) {
      if (order[static_cast<std::size_t>(j)] <
          order[static_cast<std::size_t>(i)]) {
        ++smaller;
      }
    }
    index += smaller * radix_product;
  }
  return index;
}

std::vector<Order> all_orders_heap(int n) {
  MR_EXPECT(n >= 1 && n <= 12, "refusing to materialise more than 12! orders");
  std::vector<Order> out;
  out.reserve(static_cast<std::size_t>(factorial(n)));
  Order a(static_cast<std::size_t>(n));
  std::iota(a.begin(), a.end(), 0);
  // Heap's algorithm, iterative form (Heap 1963): generates each successive
  // permutation from the previous by a single swap.
  std::vector<int> c(static_cast<std::size_t>(n), 0);
  out.push_back(a);
  int i = 0;
  while (i < n) {
    auto& ci = c[static_cast<std::size_t>(i)];
    if (ci < i) {
      if (i % 2 == 0) {
        std::swap(a[0], a[static_cast<std::size_t>(i)]);
      } else {
        std::swap(a[static_cast<std::size_t>(ci)], a[static_cast<std::size_t>(i)]);
      }
      out.push_back(a);
      ++ci;
      i = 0;
    } else {
      ci = 0;
      ++i;
    }
  }
  return out;
}

void for_each_order(int n, const std::function<bool(const Order&)>& visit) {
  MR_EXPECT(n >= 1, "n must be positive");
  Order order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  do {
    if (!visit(order)) return;
  } while (std::next_permutation(order.begin(), order.end()));
}

long long factorial(int n) {
  MR_EXPECT(n >= 0 && n <= 20, "factorial overflows past 20!");
  long long result = 1;
  for (int i = 2; i <= n; ++i) result *= i;
  return result;
}

}  // namespace mr
