#include "mixradix/mr/hierarchy.hpp"

#include <algorithm>
#include <limits>

#include "mixradix/util/expect.hpp"
#include "mixradix/util/strings.hpp"

namespace mr {

Hierarchy::Hierarchy(std::vector<int> radices, std::vector<std::string> level_names)
    : radices_(std::move(radices)), names_(std::move(level_names)) {
  MR_EXPECT(!radices_.empty(), "hierarchy needs at least one level");
  for (int r : radices_) {
    MR_EXPECT(r >= 2, "every radix must be >= 2, got " + std::to_string(r));
    MR_EXPECT(total_ <= std::numeric_limits<std::int64_t>::max() / r,
              "hierarchy size overflows int64");
    total_ *= r;
  }
  if (names_.empty()) {
    names_.reserve(radices_.size());
    for (std::size_t i = 0; i < radices_.size(); ++i) {
      names_.push_back("level" + std::to_string(i));
    }
  }
  MR_EXPECT(names_.size() == radices_.size(),
            "level_names must match the number of radices");
}

Hierarchy Hierarchy::parse(std::string_view text) {
  std::string_view body = util::trim(text);
  // Strip the paper's bracket notation if present.
  if (!body.empty() && (body.front() == '[' || body.front() == '(')) {
    MR_EXPECT(body.size() >= 2 && (body.back() == ']' || body.back() == ')'),
              "unbalanced brackets in hierarchy '" + std::string(text) + "'");
    body = body.substr(1, body.size() - 2);
  }
  char sep = ',';
  if (body.find(':') != std::string_view::npos) sep = ':';
  else if (body.find('x') != std::string_view::npos) sep = 'x';
  std::vector<int> radices;
  for (const auto& part : util::split(body, sep)) {
    radices.push_back(util::parse_int(part));
  }
  return Hierarchy(std::move(radices));
}

int Hierarchy::radix(int level) const {
  MR_EXPECT(level >= 0 && level < depth(), "level out of range");
  return radices_[static_cast<std::size_t>(level)];
}

const std::string& Hierarchy::level_name(int level) const {
  MR_EXPECT(level >= 0 && level < depth(), "level out of range");
  return names_[static_cast<std::size_t>(level)];
}

std::int64_t Hierarchy::leaves_below(int level) const {
  MR_EXPECT(level >= 0 && level <= depth(), "level out of range");
  std::int64_t product = 1;
  for (int i = level; i < depth(); ++i) product *= radices_[static_cast<std::size_t>(i)];
  return product;
}

std::int64_t Hierarchy::components_at(int level) const {
  MR_EXPECT(level >= 0 && level < depth(), "level out of range");
  std::int64_t product = 1;
  for (int i = 0; i <= level; ++i) product *= radices_[static_cast<std::size_t>(i)];
  return product;
}

Hierarchy Hierarchy::permuted(const std::vector<int>& order) const {
  MR_EXPECT(static_cast<int>(order.size()) == depth(),
            "order length must equal hierarchy depth");
  std::vector<bool> seen(order.size(), false);
  std::vector<int> radices(order.size());
  std::vector<std::string> names(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int level = order[i];
    MR_EXPECT(level >= 0 && level < depth(), "order entry out of range");
    MR_EXPECT(!seen[static_cast<std::size_t>(level)], "order is not a permutation");
    seen[static_cast<std::size_t>(level)] = true;
    radices[i] = radices_[static_cast<std::size_t>(level)];
    names[i] = names_[static_cast<std::size_t>(level)];
  }
  return Hierarchy(std::move(radices), std::move(names));
}

Hierarchy Hierarchy::with_split_level(int level, int outer,
                                      std::string_view outer_name) const {
  MR_EXPECT(level >= 0 && level < depth(), "level out of range");
  const int r = radices_[static_cast<std::size_t>(level)];
  MR_EXPECT(outer >= 2 && outer < r && r % outer == 0,
            "split factor must be a proper divisor >= 2 of the radix");
  std::vector<int> radices = radices_;
  std::vector<std::string> names = names_;
  radices[static_cast<std::size_t>(level)] = outer;
  radices.insert(radices.begin() + level + 1, r / outer);
  names[static_cast<std::size_t>(level)] =
      outer_name.empty() ? names_[static_cast<std::size_t>(level)] + "-group"
                         : std::string(outer_name);
  names.insert(names.begin() + level + 1, names_[static_cast<std::size_t>(level)]);
  return Hierarchy(std::move(radices), std::move(names));
}

Hierarchy Hierarchy::with_prefix_levels(const std::vector<int>& radices,
                                        std::vector<std::string> names) const {
  MR_EXPECT(!radices.empty(), "prefix must add at least one level");
  if (names.empty()) {
    for (std::size_t i = 0; i < radices.size(); ++i) {
      names.push_back("net" + std::to_string(i));
    }
  }
  MR_EXPECT(names.size() == radices.size(), "prefix names/radices mismatch");
  std::vector<int> all = radices;
  all.insert(all.end(), radices_.begin(), radices_.end());
  names.insert(names.end(), names_.begin(), names_.end());
  return Hierarchy(std::move(all), std::move(names));
}

Hierarchy Hierarchy::suffix(int first) const {
  MR_EXPECT(first >= 0 && first < depth(), "suffix start out of range");
  return Hierarchy(
      std::vector<int>(radices_.begin() + first, radices_.end()),
      std::vector<std::string>(names_.begin() + first, names_.end()));
}

std::string Hierarchy::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < radices_.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(radices_[i]);
  }
  out += "]";
  return out;
}

std::optional<std::string> validate_for_nprocs(const Hierarchy& h, std::int64_t nprocs) {
  if (h.total() != nprocs) {
    return "hierarchy " + h.to_string() + " describes " + std::to_string(h.total()) +
           " resources but there are " + std::to_string(nprocs) + " processes";
  }
  return std::nullopt;
}

}  // namespace mr
