#include "mixradix/mr/equivalence.hpp"

#include <algorithm>
#include <map>

#include "mixradix/mr/decompose.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/thread_pool.hpp"

namespace mr {

namespace {

using CommSequence = std::vector<std::int64_t>;   // core ids in comm-rank order
using Signature = std::vector<CommSequence>;      // sorted multiset of comms

Signature signature_of(const Hierarchy& h, const Order& order,
                       std::int64_t comm_size, Equivalence granularity) {
  const auto placement = placement_of_new_ranks(h, order);
  const std::int64_t ncomms = h.total() / comm_size;
  Signature sig;
  sig.reserve(static_cast<std::size_t>(ncomms));
  for (std::int64_t c = 0; c < ncomms; ++c) {
    CommSequence seq(static_cast<std::size_t>(comm_size));
    for (std::int64_t j = 0; j < comm_size; ++j) {
      seq[static_cast<std::size_t>(j)] =
          placement[static_cast<std::size_t>(c * comm_size + j)];
    }
    if (granularity == Equivalence::SameSetsOnly) {
      std::sort(seq.begin(), seq.end());
    }
    sig.push_back(std::move(seq));
  }
  if (granularity != Equivalence::ExactPlacement) {
    // Communicators are interchangeable: compare as a multiset.
    std::sort(sig.begin(), sig.end());
  }
  return sig;
}

/// Resolve the `threads` knob shared by the classification entry points.
unsigned resolve_workers(int threads) {
  MR_EXPECT(threads >= 0, "threads must be non-negative");
  return threads > 0 ? static_cast<unsigned>(threads)
                     : util::ThreadPool::default_threads();
}

}  // namespace

std::vector<OrderClass> classify_orders(const Hierarchy& h, std::int64_t comm_size,
                                        Equivalence granularity, int threads) {
  MR_EXPECT(comm_size >= 1 && h.total() % comm_size == 0,
            "communicator size must divide the number of processes");
  const unsigned workers = resolve_workers(threads);

  // Phase 1 (parallel): one signature per order, indexed slots. Phase 2
  // (serial): bucket in lexicographic visit order, so class membership
  // lists and representatives are independent of the thread count.
  const std::vector<Order> orders = all_orders_lexicographic(h.depth());
  std::vector<Signature> signatures(orders.size());
  const auto sign = [&](std::size_t i) {
    signatures[i] = signature_of(h, orders[i], comm_size, granularity);
  };
  if (workers <= 1 || orders.size() <= 1) {
    for (std::size_t i = 0; i < orders.size(); ++i) sign(i);
  } else {
    util::ThreadPool::shared().parallel_for(orders.size(), sign, workers);
  }

  std::map<Signature, std::vector<Order>> buckets;
  for (std::size_t i = 0; i < orders.size(); ++i) {
    buckets[std::move(signatures[i])].push_back(orders[i]);
  }

  std::vector<OrderClass> classes;
  classes.reserve(buckets.size());
  for (auto& [sig, members] : buckets) {
    OrderClass cls;
    cls.members = std::move(members);  // lexicographic within each bucket
    classes.push_back(std::move(cls));
  }
  // Phase 3 (parallel): metrics of each representative.
  const auto characterize = [&](std::size_t c) {
    classes[c].representative =
        characterize_order(h, classes[c].members.front(), comm_size);
  };
  if (workers <= 1 || classes.size() <= 1) {
    for (std::size_t c = 0; c < classes.size(); ++c) characterize(c);
  } else {
    util::ThreadPool::shared().parallel_for(classes.size(), characterize,
                                            workers);
  }
  std::sort(classes.begin(), classes.end(),
            [](const OrderClass& a, const OrderClass& b) {
              return a.members.front() < b.members.front();
            });
  return classes;
}

std::vector<Order> distinct_orders(const Hierarchy& h, std::int64_t comm_size,
                                   Equivalence granularity, int threads) {
  std::vector<Order> out;
  for (const auto& cls : classify_orders(h, comm_size, granularity, threads)) {
    out.push_back(cls.members.front());
  }
  return out;
}

}  // namespace mr
