#include "mixradix/mr/equivalence.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "mixradix/engine/engine.hpp"
#include "mixradix/mr/decompose.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/thread_pool.hpp"

namespace mr {

namespace {

using CommSequence = std::vector<std::int64_t>;   // core ids in comm-rank order
using Signature = std::vector<CommSequence>;      // sorted multiset of comms

Signature signature_of(const Hierarchy& h, const Order& order,
                       std::int64_t comm_size, Equivalence granularity) {
  const auto placement = placement_of_new_ranks(h, order);
  const std::int64_t ncomms = h.total() / comm_size;
  Signature sig;
  sig.reserve(static_cast<std::size_t>(ncomms));
  for (std::int64_t c = 0; c < ncomms; ++c) {
    CommSequence seq(static_cast<std::size_t>(comm_size));
    for (std::int64_t j = 0; j < comm_size; ++j) {
      seq[static_cast<std::size_t>(j)] =
          placement[static_cast<std::size_t>(c * comm_size + j)];
    }
    if (granularity == Equivalence::SameSetsOnly) {
      std::sort(seq.begin(), seq.end());
    }
    sig.push_back(std::move(seq));
  }
  if (granularity != Equivalence::ExactPlacement) {
    // Communicators are interchangeable: compare as a multiset.
    std::sort(sig.begin(), sig.end());
  }
  return sig;
}

/// Resolve the `threads` knob shared by the classification entry points.
unsigned resolve_workers(int threads) {
  MR_EXPECT(threads >= 0, "threads must be non-negative");
  return threads > 0 ? static_cast<unsigned>(threads)
                     : util::ThreadPool::default_threads();
}

/// Indexed fan-out over the engine's pool with the serial fallback every
/// classification pass uses; serial runs never touch the pool.
template <typename Fn>
void fan_out(Engine& engine, std::size_t n, unsigned workers, const Fn& fn) {
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  } else {
    engine.thread_pool().parallel_for(n, fn, workers);
  }
}

/// Slot-aware fan-out: the body receives a stable per-thread slot id in
/// [0, workers) for indexing call-scoped scratch (the caller is slot 0 on
/// the serial path).
template <typename Fn>
void fan_out_slots(Engine& engine, std::size_t n, unsigned workers,
                   const Fn& fn) {
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0u, i);
  } else {
    engine.thread_pool().parallel_for_slots(n, fn, workers);
  }
}

// ---- Map-based reference classifier (the pre-hashing baseline) -------------

std::vector<OrderClass> classify_reference(Engine& engine, const Hierarchy& h,
                                           std::int64_t comm_size,
                                           Equivalence granularity,
                                           unsigned workers,
                                           ClassifyStats* stats) {
  // Phase 1 (parallel): one signature per order, indexed slots. Phase 2
  // (serial): bucket in lexicographic visit order, so class membership
  // lists and representatives are independent of the thread count.
  const std::vector<Order> orders = all_orders_lexicographic(h.depth());
  std::vector<Signature> signatures(orders.size());
  fan_out(engine, orders.size(), workers, [&](std::size_t i) {
    signatures[i] = signature_of(h, orders[i], comm_size, granularity);
  });

  std::map<Signature, std::vector<Order>> buckets;
  for (std::size_t i = 0; i < orders.size(); ++i) {
    buckets[std::move(signatures[i])].push_back(orders[i]);
  }

  std::vector<OrderClass> classes;
  classes.reserve(buckets.size());
  for (auto& [sig, members] : buckets) {
    OrderClass cls;
    cls.members = std::move(members);  // lexicographic within each bucket
    classes.push_back(std::move(cls));
  }
  // Phase 3 (parallel): metrics of each representative, with the
  // brute-force kernels — this path is the differential baseline and keeps
  // the original cost profile.
  fan_out(engine, classes.size(), workers, [&](std::size_t c) {
    classes[c].representative = characterize_order(
        h, classes[c].members.front(), comm_size, MetricsImpl::Reference);
  });
  std::sort(classes.begin(), classes.end(),
            [](const OrderClass& a, const OrderClass& b) {
              return a.members.front() < b.members.front();
            });
  if (stats != nullptr) {
    stats->orders = static_cast<std::int64_t>(orders.size());
    stats->classes = static_cast<std::int64_t>(classes.size());
  }
  return classes;
}

// ---- Hashed fast classifier ------------------------------------------------
//
// Two parallel passes over reusable flat per-thread buffers:
//  1. a 128-bit signature hash per order (no placement materialised: an
//     odometer over the permuted radices yields core ids incrementally, and
//     multiset hashing replaces the canonicalising sorts);
//  2. per hash group, prove the grouping sound by comparing the members'
//     REAL canonical signatures — each order builds its placement exactly
//     once here — and characterize the representative with the closed-form
//     kernels.
// Grouping happens serially in lexicographic visit order, so members,
// representatives and class order are byte-identical to the map-based
// classifier for every thread count.

std::uint64_t mix64(std::uint64_t z) {
  // SplitMix64's finalizer (util::SplitMix64 keeps the additive state).
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const Hash128&, const Hash128&) = default;
};

struct Hash128Key {
  std::size_t operator()(const Hash128& h) const noexcept {
    return static_cast<std::size_t>(h.lo);  // already mixed.
  }
};

/// Reusable per-slot workspace: every buffer is resized once per
/// classification geometry and then reused across the orders this slot's
/// thread processes — the per-order allocation churn of the map-based path
/// (placement vector + nested signature vectors per order) is gone. One
/// Scratch per fan_out_slots slot, owned by the classification call itself
/// (the old `static thread_local` pinned this memory to pool threads for
/// the life of the process and leaked state across engines).
struct Scratch {
  std::vector<int> digits;               ///< odometer digits, per position.
  std::vector<int> pos_radix;            ///< radix of each permuted position.
  std::vector<std::int64_t> pos_weight;  ///< core-id weight of each position.
  std::vector<std::int64_t> placement;   ///< old core of each new rank.
  std::vector<std::int64_t> sig;         ///< canonical flattened signature.
  std::vector<std::int32_t> comm_order;  ///< comm block sort permutation.
};

/// Prime the odometer for `order`: position i (fastest-varying) holds the
/// digit of level order[i], whose contribution to the old core id is
/// digit * (leaves below that level).
void init_walk(Scratch& s, const Hierarchy& h, const Order& order) {
  const int depth = h.depth();
  s.digits.assign(static_cast<std::size_t>(depth), 0);
  s.pos_radix.resize(static_cast<std::size_t>(depth));
  s.pos_weight.resize(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    const int level = order[static_cast<std::size_t>(i)];
    s.pos_radix[static_cast<std::size_t>(i)] = h.radix(level);
    s.pos_weight[static_cast<std::size_t>(i)] = h.leaves_below(level + 1);
  }
}

/// Advance the odometer by one new rank, returning the next old core id
/// (amortised O(1): a carry into position k happens every prod-radix
/// increments).
std::int64_t advance_walk(Scratch& s, std::int64_t core) {
  std::size_t i = 0;
  while (s.digits[i] == s.pos_radix[i] - 1) {
    core -= static_cast<std::int64_t>(s.digits[i]) * s.pos_weight[i];
    s.digits[i] = 0;
    ++i;
  }
  ++s.digits[i];
  return core + s.pos_weight[i];
}

constexpr std::uint64_t kSaltLo = 0x8f9c3a5b1d2e4f60ull;
constexpr std::uint64_t kSaltHi = 0x1b873593c2b2ae35ull;

/// 128-bit signature hash of one order, walking the permuted space once.
/// Interchangeable structure (communicators at every granularity except
/// ExactPlacement, members within a communicator at SameSetsOnly) is
/// hashed commutatively (wrapping sums of mixed words), ordered structure
/// with a chained mix — so no sorting is needed to canonicalise.
Hash128 signature_hash(const Hierarchy& h, const Order& order,
                       std::int64_t comm_size, Equivalence granularity,
                       Scratch& s) {
  init_walk(s, h, order);
  const std::int64_t ncomms = h.total() / comm_size;
  Hash128 sig;
  std::int64_t core = 0;
  for (std::int64_t c = 0; c < ncomms; ++c) {
    std::uint64_t comm_lo = 0;
    std::uint64_t comm_hi = 0;
    for (std::int64_t j = 0; j < comm_size; ++j) {
      if (c != 0 || j != 0) core = advance_walk(s, core);
      const auto word = static_cast<std::uint64_t>(core);
      if (granularity == Equivalence::SameSetsOnly) {
        comm_lo += mix64(word ^ kSaltLo);  // member multiset: wrapping sum.
        comm_hi += mix64(word ^ kSaltHi);
      } else {
        comm_lo = mix64(comm_lo ^ word ^ kSaltLo);  // member sequence: chain.
        comm_hi = mix64(comm_hi ^ word ^ kSaltHi);
      }
    }
    comm_lo = mix64(comm_lo);  // decorrelate before the outer combine.
    comm_hi = mix64(comm_hi);
    if (granularity == Equivalence::ExactPlacement) {
      sig.lo = mix64(sig.lo ^ comm_lo);  // comm sequence: chain.
      sig.hi = mix64(sig.hi ^ comm_hi);
    } else {
      sig.lo += comm_lo;  // comm multiset: wrapping sum.
      sig.hi += comm_hi;
    }
  }
  return sig;
}

/// Build the canonical flattened signature of `order` into s.sig: the
/// placement split into comm blocks, each block sorted at SameSetsOnly,
/// blocks sorted among themselves unless ExactPlacement. Equal s.sig <=>
/// equal signature_of() — this is the ground truth the hash groups are
/// verified against.
void build_canonical_signature(const Hierarchy& h, const Order& order,
                               std::int64_t comm_size, Equivalence granularity,
                               Scratch& s) {
  const std::int64_t total = h.total();
  const std::int64_t ncomms = total / comm_size;
  init_walk(s, h, order);
  s.placement.resize(static_cast<std::size_t>(total));
  std::int64_t core = 0;
  for (std::int64_t r = 0; r < total; ++r) {
    if (r != 0) core = advance_walk(s, core);
    s.placement[static_cast<std::size_t>(r)] = core;
  }
  if (granularity == Equivalence::SameSetsOnly) {
    for (std::int64_t c = 0; c < ncomms; ++c) {
      const auto begin = s.placement.begin() +
                         static_cast<std::ptrdiff_t>(c * comm_size);
      std::sort(begin, begin + static_cast<std::ptrdiff_t>(comm_size));
    }
  }
  if (granularity == Equivalence::ExactPlacement) {
    s.sig = s.placement;
    return;
  }
  s.comm_order.resize(static_cast<std::size_t>(ncomms));
  for (std::int64_t c = 0; c < ncomms; ++c) {
    s.comm_order[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(c);
  }
  const auto* base = s.placement.data();
  std::sort(s.comm_order.begin(), s.comm_order.end(),
            [&](std::int32_t a, std::int32_t b) {
              return std::lexicographical_compare(
                  base + a * comm_size, base + (a + 1) * comm_size,
                  base + b * comm_size, base + (b + 1) * comm_size);
            });
  s.sig.resize(static_cast<std::size_t>(total));
  auto* out = s.sig.data();
  for (std::int64_t c = 0; c < ncomms; ++c) {
    const auto* block = base + s.comm_order[static_cast<std::size_t>(c)] *
                                   comm_size;
    out = std::copy(block, block + comm_size, out);
  }
}

/// Classes produced from one hash group, plus its verification counters.
struct GroupResult {
  std::vector<OrderClass> classes;
  std::int64_t collision_checks = 0;
  std::int64_t hash_collisions = 0;
};

std::vector<OrderClass> classify_hashed(Engine& engine, const Hierarchy& h,
                                        std::int64_t comm_size,
                                        Equivalence granularity,
                                        unsigned workers,
                                        ClassifyStats* stats) {
  const std::vector<Order> orders = all_orders_lexicographic(h.depth());
  const std::size_t norders = orders.size();

  // Call-scoped scratch, one per fan_out_slots slot: freed when the
  // classification returns, never pinned to pool threads or shared across
  // engines.
  std::vector<Scratch> scratch(workers);

  // Pass 1 (parallel): one 128-bit hash per order.
  std::vector<Hash128> hashes(norders);
  fan_out_slots(engine, norders, workers, [&](unsigned slot, std::size_t i) {
    hashes[i] = signature_hash(h, orders[i], comm_size, granularity,
                               scratch[slot]);
  });

  // Group (serial, lexicographic visit order): members of each group stay
  // sorted, and the first member is the candidate representative.
  std::unordered_map<Hash128, std::uint32_t, Hash128Key> group_of;
  group_of.reserve(norders * 2);
  std::vector<std::vector<std::uint32_t>> groups;
  for (std::size_t i = 0; i < norders; ++i) {
    const auto [it, inserted] =
        group_of.try_emplace(hashes[i], static_cast<std::uint32_t>(groups.size()));
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(static_cast<std::uint32_t>(i));
  }

  // Pass 2 (parallel over groups): verify each group against the real
  // signatures — splitting it if the hash ever merged distinct signatures
  // — and characterize representatives via the closed-form kernels.
  std::vector<GroupResult> results(groups.size());
  const auto verify_group = [&](unsigned slot, std::size_t g) {
    const auto& members = groups[g];
    GroupResult& result = results[g];
    Scratch& s = scratch[slot];
    // Sub-buckets by real signature, in first-occurrence (= lexicographic)
    // order. A clean group has exactly one.
    std::vector<std::vector<std::int64_t>> bucket_sigs;
    std::vector<std::vector<Order>> bucket_members;
    if (members.size() == 1) {
      // Nothing to merge, so nothing to verify.
      bucket_members.push_back({orders[members.front()]});
    } else {
      for (const std::uint32_t idx : members) {
        build_canonical_signature(h, orders[idx], comm_size, granularity, s);
        std::size_t bucket = bucket_sigs.size();
        for (std::size_t b = 0; b < bucket_sigs.size(); ++b) {
          ++result.collision_checks;
          if (bucket_sigs[b] == s.sig) {
            bucket = b;
            break;
          }
        }
        if (bucket == bucket_sigs.size()) {
          bucket_sigs.push_back(s.sig);
          bucket_members.emplace_back();
        }
        bucket_members[bucket].push_back(orders[idx]);
      }
      result.hash_collisions =
          static_cast<std::int64_t>(bucket_sigs.size()) - 1;
    }
    result.classes.reserve(bucket_members.size());
    for (auto& cls_members : bucket_members) {
      OrderClass cls;
      cls.members = std::move(cls_members);
      cls.representative = characterize_order(h, cls.members.front(),
                                              comm_size, MetricsImpl::Fast);
      result.classes.push_back(std::move(cls));
    }
  };
  fan_out_slots(engine, groups.size(), workers, verify_group);

  std::vector<OrderClass> classes;
  classes.reserve(groups.size());
  std::int64_t collision_checks = 0;
  std::int64_t hash_collisions = 0;
  for (auto& result : results) {
    collision_checks += result.collision_checks;
    hash_collisions += result.hash_collisions;
    for (auto& cls : result.classes) classes.push_back(std::move(cls));
  }
  std::sort(classes.begin(), classes.end(),
            [](const OrderClass& a, const OrderClass& b) {
              return a.members.front() < b.members.front();
            });
  if (stats != nullptr) {
    stats->orders = static_cast<std::int64_t>(norders);
    stats->classes = static_cast<std::int64_t>(classes.size());
    stats->signatures_hashed = static_cast<std::int64_t>(norders);
    stats->collision_checks = collision_checks;
    stats->hash_collisions = hash_collisions;
  }
  return classes;
}

}  // namespace

std::vector<OrderClass> classify_orders(Engine& engine, const Hierarchy& h,
                                        std::int64_t comm_size,
                                        Equivalence granularity, int threads,
                                        MetricsImpl impl, ClassifyStats* stats) {
  MR_EXPECT(comm_size >= 1 && h.total() % comm_size == 0,
            "communicator size must divide the number of processes");
  const unsigned workers = resolve_workers(threads);
  ClassifyStats local;
  std::vector<OrderClass> classes =
      impl == MetricsImpl::Fast
          ? classify_hashed(engine, h, comm_size, granularity, workers, &local)
          : classify_reference(engine, h, comm_size, granularity, workers,
                               &local);
  engine.record_classify(local);
  if (stats != nullptr) *stats = local;
  return classes;
}

std::vector<OrderClass> classify_orders(const Hierarchy& h, std::int64_t comm_size,
                                        Equivalence granularity, int threads,
                                        MetricsImpl impl, ClassifyStats* stats) {
  return classify_orders(Engine::shared(), h, comm_size, granularity, threads,
                         impl, stats);
}

std::vector<OrderClass> coarsen_classes(const Hierarchy& h,
                                        std::int64_t comm_size,
                                        const std::vector<OrderClass>& exact,
                                        Equivalence granularity) {
  // Bucket the exact classes by the coarser signature of their
  // representative. Visiting them in input order (sorted by representative)
  // makes the first contributor of each bucket the one holding the merged
  // class's lexicographically smallest member, so its character transfers
  // to the merged class unchanged.
  std::map<Signature, std::size_t> bucket_of;
  std::vector<OrderClass> classes;
  for (const OrderClass& cls : exact) {
    MR_EXPECT(!cls.members.empty(), "exact class without members");
    const Signature sig =
        signature_of(h, cls.members.front(), comm_size, granularity);
    const auto [it, inserted] = bucket_of.try_emplace(sig, classes.size());
    if (inserted) {
      classes.push_back(cls);
      continue;
    }
    OrderClass& merged = classes[it->second];
    merged.members.insert(merged.members.end(), cls.members.begin(),
                          cls.members.end());
  }
  for (OrderClass& cls : classes) {
    std::sort(cls.members.begin(), cls.members.end());
  }
  std::sort(classes.begin(), classes.end(),
            [](const OrderClass& a, const OrderClass& b) {
              return a.members.front() < b.members.front();
            });
  return classes;
}

std::vector<Order> distinct_orders(Engine& engine, const Hierarchy& h,
                                   std::int64_t comm_size,
                                   Equivalence granularity, int threads,
                                   MetricsImpl impl) {
  std::vector<Order> out;
  for (const auto& cls :
       classify_orders(engine, h, comm_size, granularity, threads, impl)) {
    out.push_back(cls.members.front());
  }
  return out;
}

std::vector<Order> distinct_orders(const Hierarchy& h, std::int64_t comm_size,
                                   Equivalence granularity, int threads,
                                   MetricsImpl impl) {
  return distinct_orders(Engine::shared(), h, comm_size, granularity, threads,
                         impl);
}

}  // namespace mr
