#include "mixradix/mr/equivalence.hpp"

#include <algorithm>
#include <map>

#include "mixradix/mr/decompose.hpp"
#include "mixradix/util/expect.hpp"

namespace mr {

namespace {

using CommSequence = std::vector<std::int64_t>;   // core ids in comm-rank order
using Signature = std::vector<CommSequence>;      // sorted multiset of comms

Signature signature_of(const Hierarchy& h, const Order& order,
                       std::int64_t comm_size, Equivalence granularity) {
  const auto placement = placement_of_new_ranks(h, order);
  const std::int64_t ncomms = h.total() / comm_size;
  Signature sig;
  sig.reserve(static_cast<std::size_t>(ncomms));
  for (std::int64_t c = 0; c < ncomms; ++c) {
    CommSequence seq(static_cast<std::size_t>(comm_size));
    for (std::int64_t j = 0; j < comm_size; ++j) {
      seq[static_cast<std::size_t>(j)] =
          placement[static_cast<std::size_t>(c * comm_size + j)];
    }
    if (granularity == Equivalence::SameSetsOnly) {
      std::sort(seq.begin(), seq.end());
    }
    sig.push_back(std::move(seq));
  }
  if (granularity != Equivalence::ExactPlacement) {
    // Communicators are interchangeable: compare as a multiset.
    std::sort(sig.begin(), sig.end());
  }
  return sig;
}

}  // namespace

std::vector<OrderClass> classify_orders(const Hierarchy& h, std::int64_t comm_size,
                                        Equivalence granularity) {
  MR_EXPECT(comm_size >= 1 && h.total() % comm_size == 0,
            "communicator size must divide the number of processes");
  std::map<Signature, std::vector<Order>> buckets;
  for_each_order(h.depth(), [&](const Order& order) {
    buckets[signature_of(h, order, comm_size, granularity)].push_back(order);
    return true;
  });
  std::vector<OrderClass> classes;
  classes.reserve(buckets.size());
  for (auto& [sig, members] : buckets) {
    OrderClass cls;
    cls.members = std::move(members);  // for_each_order visits lexicographically
    cls.representative = characterize_order(h, cls.members.front(), comm_size);
    classes.push_back(std::move(cls));
  }
  std::sort(classes.begin(), classes.end(),
            [](const OrderClass& a, const OrderClass& b) {
              return a.members.front() < b.members.front();
            });
  return classes;
}

std::vector<Order> distinct_orders(const Hierarchy& h, std::int64_t comm_size,
                                   Equivalence granularity) {
  std::vector<Order> out;
  for (const auto& cls : classify_orders(h, comm_size, granularity)) {
    out.push_back(cls.members.front());
  }
  return out;
}

}  // namespace mr
