#include "mixradix/mr/metrics.hpp"

#include "mixradix/util/expect.hpp"
#include "mixradix/util/strings.hpp"
#include "mixradix/util/thread_pool.hpp"

namespace mr {

namespace {

/// First level (outermost-first index) where two coordinate vectors differ,
/// or h.depth() when identical.
int first_diff_level(const Hierarchy& h, const Coords& a, const Coords& b) {
  MR_EXPECT(static_cast<int>(a.size()) == h.depth() &&
                static_cast<int>(b.size()) == h.depth(),
            "coordinates must match the hierarchy depth");
  for (int level = 0; level < h.depth(); ++level) {
    if (a[static_cast<std::size_t>(level)] != b[static_cast<std::size_t>(level)]) {
      return level;
    }
  }
  return h.depth();
}

}  // namespace

int hop_cost(const Hierarchy& h, const Coords& a, const Coords& b) {
  return h.depth() - first_diff_level(h, a, b);
}

int innermost_common_level(const Hierarchy& h, const Coords& a, const Coords& b) {
  const int level = first_diff_level(h, a, b);
  MR_EXPECT(level < h.depth(), "cores must be distinct");
  return level;
}

std::int64_t ring_cost(const Hierarchy& h, const std::vector<Coords>& members) {
  MR_EXPECT(members.size() >= 2, "ring cost needs at least two members");
  std::int64_t total = 0;
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {
    total += hop_cost(h, members[i], members[i + 1]);
  }
  return total;
}

std::vector<double> pair_percentages(const Hierarchy& h,
                                     const std::vector<Coords>& members) {
  MR_EXPECT(members.size() >= 2, "pair percentages need at least two members");
  std::vector<std::int64_t> counts(static_cast<std::size_t>(h.depth()), 0);
  std::int64_t pairs = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      const int level = first_diff_level(h, members[i], members[j]);
      MR_EXPECT(level < h.depth(), "duplicate core in communicator");
      counts[static_cast<std::size_t>(level)] += 1;
      ++pairs;
    }
  }
  // counts is indexed outermost-first; the paper's legends list lowest-first.
  std::vector<double> pct(static_cast<std::size_t>(h.depth()));
  for (int level = 0; level < h.depth(); ++level) {
    const auto lowest_first = static_cast<std::size_t>(h.depth() - 1 - level);
    pct[lowest_first] =
        100.0 * static_cast<double>(counts[static_cast<std::size_t>(level)]) /
        static_cast<double>(pairs);
  }
  return pct;
}

std::vector<Coords> subcommunicator_coords(const Hierarchy& h, const Order& order,
                                           std::int64_t comm_index,
                                           std::int64_t comm_size) {
  MR_EXPECT(comm_size >= 1 && comm_size <= h.total(), "bad communicator size");
  MR_EXPECT(h.total() % comm_size == 0,
            "communicator size must divide the number of processes");
  MR_EXPECT(comm_index >= 0 && comm_index < h.total() / comm_size,
            "communicator index out of range");
  const auto placement = placement_of_new_ranks(h, order);
  std::vector<Coords> members;
  members.reserve(static_cast<std::size_t>(comm_size));
  for (std::int64_t j = 0; j < comm_size; ++j) {
    const std::int64_t core = placement[static_cast<std::size_t>(comm_index * comm_size + j)];
    members.push_back(decompose(h, core));
  }
  return members;
}

std::string OrderCharacter::to_string() const {
  std::vector<std::string> pcts;
  pcts.reserve(pair_pct.size());
  for (double p : pair_pct) pcts.push_back(util::format_fixed(p, 1));
  return order_to_string(order) + " (" + std::to_string(ring_cost) + " - " +
         util::join(pcts, ", ") + ")";
}

OrderCharacter characterize_order(const Hierarchy& h, const Order& order,
                                  std::int64_t comm_size) {
  const auto members = subcommunicator_coords(h, order, 0, comm_size);
  OrderCharacter out;
  out.order = order;
  out.ring_cost = ring_cost(h, members);
  out.pair_pct = pair_percentages(h, members);
  return out;
}

std::vector<OrderCharacter> characterize_orders(const Hierarchy& h,
                                                const std::vector<Order>& orders,
                                                std::int64_t comm_size,
                                                int threads) {
  MR_EXPECT(threads >= 0, "threads must be non-negative");
  std::vector<OrderCharacter> out(orders.size());
  const auto one = [&](std::size_t i) {
    out[i] = characterize_order(h, orders[i], comm_size);
  };
  const unsigned workers = threads > 0 ? static_cast<unsigned>(threads)
                                       : util::ThreadPool::default_threads();
  if (workers <= 1 || orders.size() <= 1) {
    for (std::size_t i = 0; i < orders.size(); ++i) one(i);
  } else {
    util::ThreadPool::shared().parallel_for(orders.size(), one, workers);
  }
  return out;
}

double spreadness(const Hierarchy& h, const std::vector<Coords>& members) {
  const auto pct = pair_percentages(h, members);
  // pct is lowest-first; a pair at lowest level crosses 0 extra levels,
  // a pair at the outermost crosses depth-1.
  double crossed = 0.0;
  for (std::size_t j = 0; j < pct.size(); ++j) {
    crossed += pct[j] / 100.0 * static_cast<double>(j);
  }
  return h.depth() > 1 ? crossed / static_cast<double>(h.depth() - 1) : 0.0;
}

}  // namespace mr
