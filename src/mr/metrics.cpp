#include "mixradix/mr/metrics.hpp"

#include <algorithm>

#include "mixradix/engine/engine.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/strings.hpp"
#include "mixradix/util/thread_pool.hpp"

namespace mr {

namespace {

/// First level (outermost-first index) where two coordinate vectors differ,
/// or h.depth() when identical.
int first_diff_level(const Hierarchy& h, const Coords& a, const Coords& b) {
  MR_EXPECT(static_cast<int>(a.size()) == h.depth() &&
                static_cast<int>(b.size()) == h.depth(),
            "coordinates must match the hierarchy depth");
  for (int level = 0; level < h.depth(); ++level) {
    if (a[static_cast<std::size_t>(level)] != b[static_cast<std::size_t>(level)]) {
      return level;
    }
  }
  return h.depth();
}

}  // namespace

int hop_cost(const Hierarchy& h, const Coords& a, const Coords& b) {
  return h.depth() - first_diff_level(h, a, b);
}

int innermost_common_level(const Hierarchy& h, const Coords& a, const Coords& b) {
  const int level = first_diff_level(h, a, b);
  MR_EXPECT(level < h.depth(), "cores must be distinct");
  return level;
}

std::int64_t ring_cost(const Hierarchy& h, const std::vector<Coords>& members) {
  MR_EXPECT(!members.empty(), "ring cost needs at least one member");
  std::int64_t total = 0;
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {
    total += hop_cost(h, members[i], members[i + 1]);
  }
  return total;
}

std::vector<double> pair_percentages(const Hierarchy& h,
                                     const std::vector<Coords>& members) {
  MR_EXPECT(!members.empty(), "pair percentages need at least one member");
  if (members.size() == 1) return {};  // no pairs: percentages are undefined.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(h.depth()), 0);
  std::int64_t pairs = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      const int level = first_diff_level(h, members[i], members[j]);
      MR_EXPECT(level < h.depth(), "duplicate core in communicator");
      counts[static_cast<std::size_t>(level)] += 1;
      ++pairs;
    }
  }
  // counts is indexed outermost-first; the paper's legends list lowest-first.
  std::vector<double> pct(static_cast<std::size_t>(h.depth()));
  for (int level = 0; level < h.depth(); ++level) {
    const auto lowest_first = static_cast<std::size_t>(h.depth() - 1 - level);
    pct[lowest_first] =
        100.0 * static_cast<double>(counts[static_cast<std::size_t>(level)]) /
        static_cast<double>(pairs);
  }
  return pct;
}

std::vector<Coords> subcommunicator_coords(const Hierarchy& h, const Order& order,
                                           std::int64_t comm_index,
                                           std::int64_t comm_size) {
  MR_EXPECT(comm_size >= 1 && comm_size <= h.total(), "bad communicator size");
  MR_EXPECT(h.total() % comm_size == 0,
            "communicator size must divide the number of processes");
  MR_EXPECT(comm_index >= 0 && comm_index < h.total() / comm_size,
            "communicator index out of range");
  const auto placement = placement_of_new_ranks(h, order);
  std::vector<Coords> members;
  members.reserve(static_cast<std::size_t>(comm_size));
  for (std::int64_t j = 0; j < comm_size; ++j) {
    const std::int64_t core = placement[static_cast<std::size_t>(comm_index * comm_size + j)];
    members.push_back(decompose(h, core));
  }
  return members;
}

namespace {

/// Shared preconditions of the closed-form kernels: `order` permutes the
/// levels and `comm_size` tiles the machine (same checks the reference
/// path performs inside subcommunicator_coords/compose).
void expect_valid_block(const Hierarchy& h, const Order& order,
                        std::int64_t comm_size) {
  MR_EXPECT(static_cast<int>(order.size()) == h.depth() &&
                is_permutation_of_iota(order),
            "order must be a permutation of the hierarchy levels");
  MR_EXPECT(comm_size >= 1 && comm_size <= h.total(), "bad communicator size");
  MR_EXPECT(h.total() % comm_size == 0,
            "communicator size must divide the number of processes");
}

}  // namespace

std::int64_t ring_cost_closed_form(const Hierarchy& h, const Order& order,
                                   std::int64_t comm_size) {
  expect_valid_block(h, order, comm_size);
  // The s-1 ring hops are the mixed-radix increments 1..s-1 in the
  // permuted base. Increment r has >= k carries iff the product of the k
  // fastest permuted radices divides r, so exactly-k-carry increments
  // number floor((s-1)/P_k) - floor((s-1)/P_{k+1}), and each such hop
  // changes levels {order[0..k]}, costing depth - min(order[0..k]).
  const std::int64_t last = comm_size - 1;
  std::int64_t cost = 0;
  std::int64_t radix_product = 1;  // P_k
  int min_level = h.depth();
  for (int k = 0; k < h.depth(); ++k) {
    const int level = order[static_cast<std::size_t>(k)];
    min_level = std::min(min_level, level);
    const std::int64_t at_least_k = last / radix_product;
    if (at_least_k == 0) break;  // no increment carries this deep.
    radix_product *= h.radix(level);
    const std::int64_t at_least_k1 = last / radix_product;
    cost += (at_least_k - at_least_k1) * (h.depth() - min_level);
  }
  return cost;
}

std::vector<double> pair_percentages_closed_form(const Hierarchy& h,
                                                 const Order& order,
                                                 std::int64_t comm_size) {
  expect_valid_block(h, order, comm_size);
  if (comm_size == 1) return {};  // no pairs: percentages are undefined.
  // agree(T) = number of x != y in [0, s)^2 whose permuted digits match at
  // every level in T, counted by a most-significant-first DP whose state is
  // which of (x, y) still sits on the s-1 bound. Both metrics only ever
  // need T = {levels < L} for L = 0..depth, and those sets are nested, so
  // the first-diff-level histogram is agree(S_L) - agree(S_{L+1}).
  const int depth = h.depth();
  // Permuted digits of s-1: the digit at position `pos` (pos 0 fastest) is
  // the bound below which a still-tight coordinate goes free in the DP.
  std::vector<std::int64_t> bound_digit(static_cast<std::size_t>(depth));
  {
    std::int64_t rest = comm_size - 1;
    for (int pos = 0; pos < depth; ++pos) {
      const int radix = h.radix(order[static_cast<std::size_t>(pos)]);
      bound_digit[static_cast<std::size_t>(pos)] = rest % radix;
      rest /= radix;
    }
  }
  const auto ordered_pairs_agreeing_below = [&](int level_bound) {
    using u128 = unsigned __int128;
    u128 both_tight = 1, one_tight = 0, both_free = 0;  // one_tight: x or y.
    for (int pos = depth - 1; pos >= 0; --pos) {
      const int level = order[static_cast<std::size_t>(pos)];
      const auto radix = static_cast<u128>(h.radix(level));
      const auto digit = static_cast<u128>(bound_digit[static_cast<std::size_t>(pos)]);
      if (level < level_bound) {
        // Digits must be equal: below the bound digit, both go free.
        both_free = both_free * radix + one_tight * digit + both_tight * digit;
        // both_tight and one_tight survive only on the bound digit itself.
      } else {
        // Digits independent: each tight coordinate picks < digit (goes
        // free) or == digit (stays tight); free coordinates pick anything.
        both_free = both_free * radix * radix + one_tight * digit * radix +
                    both_tight * digit * digit;
        one_tight = one_tight * radix + both_tight * digit * 2;
      }
    }
    const u128 ordered = both_tight + one_tight + both_free;
    return ordered - static_cast<u128>(comm_size);  // drop the x == y diagonal.
  };
  // counts[L] (outermost-first) = pairs agreeing at all levels < L but not
  // at L; halving the ordered counts yields the unordered pair counts the
  // reference kernel produces, so the doubles below are bit-identical.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(depth));
  unsigned __int128 agreeing = ordered_pairs_agreeing_below(0);
  const auto pairs =
      static_cast<std::int64_t>(agreeing / 2);  // s*(s-1)/2, checked to fit.
  MR_EXPECT(pairs >= 0 && static_cast<unsigned __int128>(pairs) * 2 == agreeing,
            "pair count overflows 64 bits");
  for (int level = 0; level < depth; ++level) {
    const unsigned __int128 next = ordered_pairs_agreeing_below(level + 1);
    counts[static_cast<std::size_t>(level)] =
        static_cast<std::int64_t>((agreeing - next) / 2);
    agreeing = next;
  }
  MR_ASSERT_INTERNAL(agreeing == 0);  // agreeing everywhere means x == y.
  std::vector<double> pct(static_cast<std::size_t>(depth));
  for (int level = 0; level < depth; ++level) {
    const auto lowest_first = static_cast<std::size_t>(depth - 1 - level);
    pct[lowest_first] =
        100.0 * static_cast<double>(counts[static_cast<std::size_t>(level)]) /
        static_cast<double>(pairs);
  }
  return pct;
}

std::string OrderCharacter::to_string() const {
  if (pair_pct.empty()) {
    return order_to_string(order) + " (" + std::to_string(ring_cost) + ")";
  }
  std::vector<std::string> pcts;
  pcts.reserve(pair_pct.size());
  for (double p : pair_pct) pcts.push_back(util::format_fixed(p, 1));
  return order_to_string(order) + " (" + std::to_string(ring_cost) + " - " +
         util::join(pcts, ", ") + ")";
}

OrderCharacter characterize_order(const Hierarchy& h, const Order& order,
                                  std::int64_t comm_size, MetricsImpl impl) {
  OrderCharacter out;
  out.order = order;
  if (impl == MetricsImpl::Fast) {
    out.ring_cost = ring_cost_closed_form(h, order, comm_size);
    out.pair_pct = pair_percentages_closed_form(h, order, comm_size);
  } else {
    const auto members = subcommunicator_coords(h, order, 0, comm_size);
    out.ring_cost = ring_cost(h, members);
    out.pair_pct = pair_percentages(h, members);
  }
  return out;
}

std::vector<OrderCharacter> characterize_orders(Engine& engine,
                                                const Hierarchy& h,
                                                const std::vector<Order>& orders,
                                                std::int64_t comm_size,
                                                int threads, MetricsImpl impl) {
  MR_EXPECT(threads >= 0, "threads must be non-negative");
  std::vector<OrderCharacter> out(orders.size());
  const auto one = [&](std::size_t i) {
    out[i] = characterize_order(h, orders[i], comm_size, impl);
  };
  const unsigned workers = threads > 0 ? static_cast<unsigned>(threads)
                                       : util::ThreadPool::default_threads();
  if (workers <= 1 || orders.size() <= 1) {
    for (std::size_t i = 0; i < orders.size(); ++i) one(i);
  } else {
    engine.thread_pool().parallel_for(orders.size(), one, workers);
  }
  return out;
}

std::vector<OrderCharacter> characterize_orders(const Hierarchy& h,
                                                const std::vector<Order>& orders,
                                                std::int64_t comm_size,
                                                int threads, MetricsImpl impl) {
  return characterize_orders(Engine::shared(), h, orders, comm_size, threads,
                             impl);
}

double spreadness(const Hierarchy& h, const std::vector<Coords>& members) {
  const auto pct = pair_percentages(h, members);
  // pct is lowest-first; a pair at lowest level crosses 0 extra levels,
  // a pair at the outermost crosses depth-1.
  double crossed = 0.0;
  for (std::size_t j = 0; j < pct.size(); ++j) {
    crossed += pct[j] / 100.0 * static_cast<double>(j);
  }
  return h.depth() > 1 ? crossed / static_cast<double>(h.depth() - 1) : 0.0;
}

}  // namespace mr
