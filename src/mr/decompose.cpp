#include "mixradix/mr/decompose.hpp"

#include <numeric>

#include "mixradix/util/expect.hpp"

namespace mr {

std::vector<int> identity_order(int depth) {
  MR_EXPECT(depth >= 1, "depth must be positive");
  std::vector<int> order(static_cast<std::size_t>(depth));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<int> inverse_of_decompose_order(int depth) {
  MR_EXPECT(depth >= 1, "depth must be positive");
  std::vector<int> order(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) order[static_cast<std::size_t>(i)] = depth - 1 - i;
  return order;
}

Coords decompose(const Hierarchy& h, std::int64_t rank) {
  MR_EXPECT(rank >= 0 && rank < h.total(),
            "rank " + std::to_string(rank) + " out of range for " + h.to_string());
  Coords coords(static_cast<std::size_t>(h.depth()));
  // Algorithm 1: peel radices from the innermost level outward.
  for (int i = h.depth() - 1; i >= 0; --i) {
    const int radix = h.radix(i);
    coords[static_cast<std::size_t>(i)] = static_cast<int>(rank % radix);
    rank /= radix;
  }
  return coords;
}

std::int64_t compose(const Hierarchy& h, const Coords& coords,
                     const std::vector<int>& order) {
  MR_EXPECT(static_cast<int>(coords.size()) == h.depth(),
            "coordinate count must equal hierarchy depth");
  MR_EXPECT(static_cast<int>(order.size()) == h.depth(),
            "order length must equal hierarchy depth");
  std::vector<bool> seen(order.size(), false);
  std::int64_t rank = 0;
  std::int64_t factor = 1;
  // Algorithm 2: the level enumerated first (σ(0)) varies fastest.
  for (int i = 0; i < h.depth(); ++i) {
    const int level = order[static_cast<std::size_t>(i)];
    MR_EXPECT(level >= 0 && level < h.depth(), "order entry out of range");
    MR_EXPECT(!seen[static_cast<std::size_t>(level)], "order is not a permutation");
    seen[static_cast<std::size_t>(level)] = true;
    const int c = coords[static_cast<std::size_t>(level)];
    MR_EXPECT(c >= 0 && c < h.radix(level), "coordinate out of range for its level");
    rank += c * factor;
    factor *= h.radix(level);
  }
  return rank;
}

std::int64_t compose(const Hierarchy& h, const Coords& coords) {
  return compose(h, coords, inverse_of_decompose_order(h.depth()));
}

std::int64_t reorder_rank(const Hierarchy& h, std::int64_t rank,
                          const std::vector<int>& order) {
  return compose(h, decompose(h, rank), order);
}

std::vector<std::int64_t> reorder_all_ranks(const Hierarchy& h,
                                            const std::vector<int>& order) {
  std::vector<std::int64_t> out(static_cast<std::size_t>(h.total()));
  for (std::int64_t r = 0; r < h.total(); ++r) {
    out[static_cast<std::size_t>(r)] = reorder_rank(h, r, order);
  }
  return out;
}

std::vector<std::int64_t> placement_of_new_ranks(const Hierarchy& h,
                                                 const std::vector<int>& order) {
  const auto forward = reorder_all_ranks(h, order);
  std::vector<std::int64_t> inverse(forward.size());
  for (std::size_t old_rank = 0; old_rank < forward.size(); ++old_rank) {
    inverse[static_cast<std::size_t>(forward[old_rank])] =
        static_cast<std::int64_t>(old_rank);
  }
  return inverse;
}

}  // namespace mr
