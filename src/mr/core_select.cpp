#include "mixradix/mr/core_select.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "mixradix/mr/decompose.hpp"
#include "mixradix/util/expect.hpp"

namespace mr {

std::vector<std::int64_t> select_cores(const Hierarchy& h, const Order& order,
                                       std::int64_t n) {
  MR_EXPECT(n >= 1 && n <= h.total(), "core count out of range");
  MR_EXPECT(static_cast<int>(order.size()) == h.depth(),
            "order length must equal hierarchy depth");
  std::vector<std::int64_t> list(static_cast<std::size_t>(n), -1);
  // Algorithm 3: iterate over all physical cores; a core whose reordered
  // rank falls below n is kept at position <reordered rank>.
  for (std::int64_t core = 0; core < h.total(); ++core) {
    const std::int64_t r = reorder_rank(h, core, order);
    if (r < n) list[static_cast<std::size_t>(r)] = core;
  }
  for (std::int64_t c : list) MR_ASSERT_INTERNAL(c >= 0);
  return list;
}

std::string map_cpu_string(const std::vector<std::int64_t>& cores) {
  std::string out = "map_cpu:";
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(cores[i]);
  }
  return out;
}

std::vector<std::int64_t> sorted_core_set(std::vector<std::int64_t> cores) {
  std::sort(cores.begin(), cores.end());
  MR_EXPECT(std::adjacent_find(cores.begin(), cores.end()) == cores.end(),
            "duplicate core in selection");
  return cores;
}

std::string core_set_ranges(const std::vector<std::int64_t>& sorted_cores) {
  MR_EXPECT(!sorted_cores.empty(), "empty core set");
  std::string out;
  std::size_t i = 0;
  while (i < sorted_cores.size()) {
    std::size_t j = i;
    while (j + 1 < sorted_cores.size() &&
           sorted_cores[j + 1] == sorted_cores[j] + 1) {
      ++j;
    }
    if (!out.empty()) out += ',';
    out += std::to_string(sorted_cores[i]);
    if (j > i) {
      out += '-';
      out += std::to_string(sorted_cores[j]);
    }
    i = j + 1;
  }
  return out;
}

std::optional<Hierarchy> selected_hierarchy(const Hierarchy& h,
                                            const std::vector<std::int64_t>& sorted_cores) {
  MR_EXPECT(!sorted_cores.empty(), "empty core set");
  const auto depth = static_cast<std::size_t>(h.depth());
  std::vector<std::set<int>> used(depth);
  for (std::int64_t core : sorted_cores) {
    const Coords c = decompose(h, core);
    for (std::size_t level = 0; level < depth; ++level) {
      used[level].insert(c[level]);
    }
  }
  // Rectangularity: the set must be the full cartesian product of the
  // per-level coordinate subsets.
  std::int64_t product = 1;
  for (const auto& values : used) product *= static_cast<std::int64_t>(values.size());
  if (product != static_cast<std::int64_t>(sorted_cores.size())) return std::nullopt;
  // Verify membership (sizes matching is necessary but not sufficient).
  std::set<std::int64_t> members(sorted_cores.begin(), sorted_cores.end());
  for (std::int64_t core : members) {
    const Coords c = decompose(h, core);
    for (std::size_t level = 0; level < depth; ++level) {
      if (!used[level].contains(c[level])) return std::nullopt;
    }
  }
  std::vector<int> radices;
  std::vector<std::string> names;
  for (std::size_t level = 0; level < depth; ++level) {
    if (used[level].size() > 1) {
      radices.push_back(static_cast<int>(used[level].size()));
      names.push_back(h.level_name(static_cast<int>(level)));
    }
  }
  if (radices.empty()) return std::nullopt;  // a single core has no hierarchy
  return Hierarchy(std::move(radices), std::move(names));
}

std::vector<SelectionOutcome> enumerate_selections(const Hierarchy& h,
                                                   std::int64_t n) {
  std::vector<SelectionOutcome> outcomes;
  std::set<std::vector<std::int64_t>> seen_lists;
  // Group index per core set, in order of first discovery.
  std::map<std::vector<std::int64_t>, std::size_t> group_of_set;
  std::vector<std::vector<SelectionOutcome>> groups;
  for_each_order(h.depth(), [&](const Order& order) {
    auto list = select_cores(h, order, n);
    if (!seen_lists.insert(list).second) return true;  // identical mapping
    SelectionOutcome outcome;
    outcome.order = order;
    outcome.core_set = sorted_core_set(list);
    outcome.core_list = std::move(list);
    auto [it, inserted] = group_of_set.try_emplace(outcome.core_set, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(std::move(outcome));
    return true;
  });
  for (auto& group : groups) {
    for (auto& outcome : group) outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace mr
