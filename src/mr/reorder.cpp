#include "mixradix/mr/reorder.hpp"

#include "mixradix/util/expect.hpp"

namespace mr {

ReorderPlan::ReorderPlan(Hierarchy hierarchy, Order order)
    : hierarchy_(std::move(hierarchy)), order_(std::move(order)) {
  MR_EXPECT(static_cast<int>(order_.size()) == hierarchy_.depth(),
            "order length must equal hierarchy depth");
  MR_EXPECT(is_permutation_of_iota(order_), "order is not a permutation");
  forward_ = reorder_all_ranks(hierarchy_, order_);
  placement_.resize(forward_.size());
  for (std::size_t old_rank = 0; old_rank < forward_.size(); ++old_rank) {
    placement_[static_cast<std::size_t>(forward_[old_rank])] =
        static_cast<std::int64_t>(old_rank);
  }
}

std::int64_t ReorderPlan::new_rank(std::int64_t old_rank) const {
  MR_EXPECT(old_rank >= 0 && old_rank < hierarchy_.total(), "rank out of range");
  return forward_[static_cast<std::size_t>(old_rank)];
}

std::int64_t ReorderPlan::placement(std::int64_t new_rank) const {
  MR_EXPECT(new_rank >= 0 && new_rank < hierarchy_.total(), "rank out of range");
  return placement_[static_cast<std::size_t>(new_rank)];
}

std::int64_t ReorderPlan::subcomm_color(std::int64_t old_rank,
                                        std::int64_t comm_size) const {
  MR_EXPECT(comm_size >= 1 && hierarchy_.total() % comm_size == 0,
            "communicator size must divide the world size");
  return new_rank(old_rank) / comm_size;
}

std::int64_t ReorderPlan::subcomm_rank(std::int64_t old_rank,
                                       std::int64_t comm_size) const {
  MR_EXPECT(comm_size >= 1 && hierarchy_.total() % comm_size == 0,
            "communicator size must divide the world size");
  return new_rank(old_rank) % comm_size;
}

std::string ReorderPlan::rankfile() const {
  const std::int64_t cores_per_node = hierarchy_.leaves_below(1);
  std::string out;
  out.reserve(static_cast<std::size_t>(hierarchy_.total()) * 24);
  for (std::int64_t r = 0; r < hierarchy_.total(); ++r) {
    const std::int64_t core = placement(r);
    const std::int64_t node = core / cores_per_node;
    const std::int64_t slot = core % cores_per_node;
    out += "rank " + std::to_string(r) + "=+n" + std::to_string(node) +
           " slot=" + std::to_string(slot) + "\n";
  }
  return out;
}

}  // namespace mr
