#include "mixradix/simnet/route_table.hpp"

#include <algorithm>
#include <limits>

#include "mixradix/simnet/path.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simnet {

void RouteTable::bind(const topo::Machine& machine) {
  machine_ = &machine;
  index_.clear();
  channels_.clear();
  latency_.clear();
  stats_ = Stats{};
}

void RouteTable::clear() {
  index_.clear();
  channels_.clear();
  latency_.clear();
}

RouteTable::RouteId RouteTable::route(std::int64_t src, std::int64_t dst) {
  MR_EXPECT(machine_ != nullptr, "RouteTable used before bind()");
  MR_EXPECT(src >= 0 && src < machine_->cores() && dst >= 0 &&
                dst < machine_->cores(),
            "core id out of range for the bound machine");
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) |
                            static_cast<std::uint64_t>(dst);
  const auto [it, inserted] =
      index_.try_emplace(key, static_cast<RouteId>(channels_.size()));
  if (!inserted) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  std::vector<ChannelId> ids = flow_channels(*machine_, src, dst);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  MR_ASSERT_INTERNAL(ids.size() <= static_cast<std::size_t>(kMaxChannelsPerFlow));
  ChanSet set;
  for (ChannelId c : ids) {
    MR_ASSERT_INTERNAL(c >= 0);
    set.ids[static_cast<std::size_t>(set.count++)] = c;
  }
  MR_ASSERT_INTERNAL(channels_.size() <
                     static_cast<std::size_t>(std::numeric_limits<RouteId>::max()));
  channels_.push_back(set);
  latency_.push_back(machine_->path_latency(src, dst));
  return it->second;
}

}  // namespace mr::simnet
