#include "mixradix/simnet/flow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mixradix/util/expect.hpp"

namespace mr::simnet {
namespace {
// Bytes below which a flow counts as drained (guards rounding error).
constexpr double kByteEpsilon = 1e-6;
// Two completions within this window collapse into one event batch.
constexpr double kTimeEpsilon = 1e-15;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

FlowSim::FlowSim(std::vector<double> capacities, double completion_slack)
    : capacities_(std::move(capacities)), completion_slack_(completion_slack) {
  for (double c : capacities_) {
    MR_EXPECT(c > 0, "channel capacity must be positive");
  }
  MR_EXPECT(completion_slack_ >= 0 && completion_slack_ < 0.5,
            "completion slack must be in [0, 0.5)");
  residual_.resize(capacities_.size());
  load_.resize(capacities_.size());
  flows_on_.resize(capacities_.size());
  used_.resize(capacities_.size());
  nflows_.resize(capacities_.size());
  freed_.resize(capacities_.size());
  by_channel_.resize(capacities_.size());
}

std::int64_t FlowSim::add_flow(std::vector<ChannelId> channels, double bytes,
                               std::int64_t user) {
  MR_EXPECT(bytes >= 0, "flow size must be non-negative");
  std::sort(channels.begin(), channels.end());
  channels.erase(std::unique(channels.begin(), channels.end()), channels.end());
  MR_EXPECT(channels.size() <= kMaxChannelsPerFlow,
            "flow crosses more channels than supported");
  ChanSet set;
  for (ChannelId c : channels) {
    MR_EXPECT(c >= 0 && static_cast<std::size_t>(c) < capacities_.size(),
              "channel id out of range");
    set.ids[static_cast<std::size_t>(set.count++)] = c;
  }
  const auto ext = static_cast<std::int64_t>(ext_index_.size());
  ext_index_.push_back(static_cast<std::int64_t>(remaining_.size()) + 1);
  ext_rate_.push_back(0.0);
  remaining_.push_back(bytes);
  rate_.push_back(0.0);
  user_.push_back(user);
  ext_id_.push_back(ext);
  chans_.push_back(set);
  for (std::int32_t k = 0; k < set.count; ++k) {
    const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
    ++nflows_[ci];
    auto& list = by_channel_[ci];
    // Lazy compaction: purge completed entries once they dominate.
    if (list.size() > 8 && list.size() > 4 * static_cast<std::size_t>(nflows_[ci])) {
      std::erase_if(list, [&](std::int64_t e) {
        return ext_index_[static_cast<std::size_t>(e)] == 0;
      });
    }
    list.push_back(ext);
  }
  if (!try_defer_allocation(remaining_.size() - 1)) {
    rates_dirty_ = true;
  }
  return ext;
}

// Deferred allocation: in steady-state traffic (rings, pipelines) each
// completed flow frees exactly the headroom its successor needs, so a full
// max-min recompute per event is wasted work. When completion slack is
// enabled, a new flow may simply grab the available headroom on its path —
// provided that headroom is within 10% of its estimated fair share, so a
// congestion shift still forces the exact recomputation. Deferred rates
// are always feasible (never exceed residual capacity); periodic full
// recomputes (every kMaxDeferredBatches pop batches) restore exact
// max-min fairness.
bool FlowSim::try_defer_allocation(std::size_t index) {
  if (completion_slack_ <= 0 || rates_dirty_) return false;
  const ChanSet& set = chans_[index];
  if (set.count == 0) {
    rate_[index] = kInf;
    return true;
  }
  double headroom = kInf;
  double fair = kInf;
  for (std::int32_t k = 0; k < set.count; ++k) {
    const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
    headroom = std::min(headroom, capacities_[ci] - used_[ci]);
    fair = std::min(fair, capacities_[ci] / nflows_[ci]);
  }
  if (!(headroom >= 0.9 * fair) || headroom <= 0) {
    if (steal_allocation(index, fair)) return true;
    ++stats_.deferred_rejections;
    return false;
  }
  ++stats_.deferred_allocations;
  rate_[index] = headroom;
  for (std::int32_t k = 0; k < set.count; ++k) {
    const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
    used_[ci] += headroom;
    freed_[ci] = std::max(0.0, freed_[ci] - headroom);
  }
  return true;
}

// Steal fallback for deferred allocation: when the freed headroom is not
// enough (consecutive pipeline rounds overlap in flight), give the new
// flow its estimated fair share and proportionally scale down the victims
// on each oversubscribed channel. Rates stay feasible (to within the 1%
// scale floor that keeps every flow draining), conservative, and the
// periodic exact recomputation erases the approximation. Refuses when a
// channel has too many victims — then the exact pass is worth its cost.
bool FlowSim::steal_allocation(std::size_t index, double fair) {
  const ChanSet& set = chans_[index];
  for (std::int32_t k = 0; k < set.count; ++k) {
    const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
    if (used_[ci] + fair > capacities_[ci] && nflows_[ci] > 64) return false;
  }
  for (std::int32_t k = 0; k < set.count; ++k) {
    const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
    const double over = used_[ci] + fair - capacities_[ci];
    if (over <= 0 || used_[ci] <= 0) continue;
    const double scale =
        std::max(0.01, (capacities_[ci] - fair) / used_[ci]);
    if (scale >= 1) continue;
    for (std::int64_t ext : by_channel_[ci]) {
      const std::int64_t slot = ext_index_[static_cast<std::size_t>(ext)];
      if (slot == 0) continue;  // completed
      const auto f = static_cast<std::size_t>(slot - 1);
      if (f == index || std::isinf(rate_[f])) continue;
      const double delta = rate_[f] * (1 - scale);
      if (delta <= 0) continue;
      rate_[f] -= delta;
      const ChanSet& vs = chans_[f];
      for (std::int32_t j = 0; j < vs.count; ++j) {
        const auto cj = static_cast<std::size_t>(vs.ids[static_cast<std::size_t>(j)]);
        used_[cj] = std::max(0.0, used_[cj] - delta);
      }
    }
  }
  rate_[index] = fair;
  for (std::int32_t k = 0; k < set.count; ++k) {
    const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
    used_[ci] += fair;
    freed_[ci] = std::max(0.0, freed_[ci] - fair);
  }
  return true;
}

void FlowSim::recompute_rates() {
  if (!rates_dirty_) return;
  ++stats_.full_recomputes;
  rates_dirty_ = false;
  const std::size_t n = remaining_.size();

  // Per-channel load and flow lists.
  touched_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const ChanSet& set = chans_[i];
    for (std::int32_t k = 0; k < set.count; ++k) {
      const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
      if (load_[ci] == 0) {
        touched_.push_back(set.ids[static_cast<std::size_t>(k)]);
        flows_on_[ci].clear();
        residual_[ci] = capacities_[ci];
      }
      ++load_[ci];
      flows_on_[ci].push_back(static_cast<std::int32_t>(i));
    }
  }

  std::size_t unfrozen = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (chans_[i].count == 0) {
      rate_[i] = kInf;
    } else {
      rate_[i] = -1.0;  // marker: not yet frozen
      ++unfrozen;
    }
  }

  // Progressive filling, level by level. Each pass finds the global
  // minimum fair share s and freezes the flows of EVERY channel tied at s:
  // freezing the flows of one bottleneck only ever raises the share of the
  // others ((R - s)/(n - 1) >= R/n when s is the global minimum), so ties
  // stay ties and strictly-larger channels stay above s. The number of
  // passes equals the number of distinct bottleneck levels, which for
  // collective traffic is small (one per congestion class), keeping the
  // whole recompute at O(levels * touched + flow-channel incidences).
  // `alive` is the compacted working set of channels still carrying
  // unfrozen flows; saturated channels are swap-removed so later passes
  // scan progressively fewer entries.
  std::vector<ChannelId>& alive = touched_scan_;
  alive = touched_;
  while (unfrozen > 0) {
    double s = kInf;
    for (std::size_t w = 0; w < alive.size();) {
      const auto ci = static_cast<std::size_t>(alive[w]);
      if (load_[ci] == 0) {
        alive[w] = alive.back();
        alive.pop_back();
        continue;
      }
      s = std::min(s, residual_[ci] / load_[ci]);
      ++w;
    }
    MR_ASSERT_INTERNAL(std::isfinite(s));
    const double bound = s * (1 + std::max(1e-12, completion_slack_));
    for (ChannelId c : alive) {
      const auto ci = static_cast<std::size_t>(c);
      if (load_[ci] == 0 || residual_[ci] / load_[ci] > bound) continue;
      for (std::int32_t fi : flows_on_[ci]) {
        const auto f = static_cast<std::size_t>(fi);
        if (rate_[f] >= 0) continue;  // already frozen
        rate_[f] = s;
        --unfrozen;
        const ChanSet& set = chans_[f];
        for (std::int32_t k = 0; k < set.count; ++k) {
          const auto c2i =
              static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
          residual_[c2i] = std::max(0.0, residual_[c2i] - s);
          --load_[c2i];
        }
      }
    }
  }

  // Rebuild the incremental headroom bookkeeping used by deferred
  // allocation, and reset the load scratch.
  for (ChannelId c : touched_) {
    const auto ci = static_cast<std::size_t>(c);
    load_[ci] = 0;
    used_[ci] = 0;
    freed_[ci] = 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isinf(rate_[i])) continue;
    const ChanSet& set = chans_[i];
    for (std::int32_t k = 0; k < set.count; ++k) {
      used_[static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)])] += rate_[i];
    }
  }
}

void FlowSim::drain(double dt) {
  if (dt <= 0) return;
  const std::size_t n = remaining_.size();
  for (std::size_t i = 0; i < n; ++i) {
    remaining_[i] = std::max(0.0, remaining_[i] - rate_[i] * dt);
  }
}

std::optional<double> FlowSim::next_completion_time() {
  if (remaining_.empty()) return std::nullopt;
  recompute_rates();
  double best = kInf;
  const std::size_t n = remaining_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (remaining_[i] <= kByteEpsilon || std::isinf(rate_[i])) {
      best = 0;
    } else {
      MR_ASSERT_INTERNAL(rate_[i] > 0);
      best = std::min(best, remaining_[i] / rate_[i]);
    }
  }
  return now_ + best;
}

void FlowSim::advance_to(double t) {
  MR_EXPECT(t >= now_ - kTimeEpsilon, "cannot advance backwards");
  recompute_rates();
  drain(t - now_);
  now_ = std::max(now_, t);
}

void FlowSim::remove_active(std::size_t index) {
  const ChanSet& set = chans_[index];
  if (!std::isinf(rate_[index])) {
    for (std::int32_t k = 0; k < set.count; ++k) {
      const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
      used_[ci] = std::max(0.0, used_[ci] - rate_[index]);
      --nflows_[ci];
      // Freed capacity that no successor grabs must eventually be handed
      // to the surviving flows: once a quarter of a channel sits idle,
      // force the exact recomputation.
      freed_[ci] += rate_[index];
      // Only surviving flows can profit from the freed share; an empty
      // channel needs no redistribution.
      if (nflows_[ci] > 0 && freed_[ci] > 0.4 * capacities_[ci]) {
        rates_dirty_ = true;
      }
    }
  } else {
    for (std::int32_t k = 0; k < set.count; ++k) {
      --nflows_[static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)])];
    }
  }
  const std::size_t last = remaining_.size() - 1;
  ext_rate_[static_cast<std::size_t>(ext_id_[index])] = rate_[index];
  ext_index_[static_cast<std::size_t>(ext_id_[index])] = 0;
  if (index != last) {
    remaining_[index] = remaining_[last];
    rate_[index] = rate_[last];
    user_[index] = user_[last];
    ext_id_[index] = ext_id_[last];
    chans_[index] = chans_[last];
    ext_index_[static_cast<std::size_t>(ext_id_[index])] =
        static_cast<std::int64_t>(index) + 1;
  }
  remaining_.pop_back();
  rate_.pop_back();
  user_.pop_back();
  ext_id_.pop_back();
  chans_.pop_back();
}

std::vector<Completion> FlowSim::advance_and_pop() {
  ++stats_.pop_batches;
  std::vector<Completion> done;
  const auto t = next_completion_time();
  MR_EXPECT(t.has_value(), "no active flows to advance to");
  const double before = now_;
  advance_to(*t);
  // Completion-slack batching: flows whose residual transfer time is within
  // slack * elapsed-horizon finish in this batch, slightly early.
  const double merge_window = completion_slack_ * (now_ - before);
  // Drain rounding: a flow "completes" when its remaining bytes dip under
  // the epsilon, or instantly when unconstrained. Iterate backwards so the
  // swap-remove never skips an element.
  for (std::size_t i = remaining_.size(); i-- > 0;) {
    if (remaining_[i] > kByteEpsilon && !std::isinf(rate_[i]) &&
        !(rate_[i] > 0 && remaining_[i] / rate_[i] <= merge_window)) {
      continue;
    }
    done.push_back(Completion{ext_id_[i], user_[i], now_});
    remove_active(i);
  }
  MR_ASSERT_INTERNAL(!done.empty());
  if (completion_slack_ <= 0 || ++batches_since_full_ >= kMaxDeferredBatches) {
    batches_since_full_ = 0;
    rates_dirty_ = true;
  }
  return done;
}

double FlowSim::flow_rate(std::int64_t flow) {
  MR_EXPECT(flow >= 0 && static_cast<std::size_t>(flow) < ext_index_.size(),
            "unknown flow");
  recompute_rates();
  const std::int64_t idx = ext_index_[static_cast<std::size_t>(flow)];
  if (idx == 0) return ext_rate_[static_cast<std::size_t>(flow)];
  return rate_[static_cast<std::size_t>(idx - 1)];
}

}  // namespace mr::simnet
