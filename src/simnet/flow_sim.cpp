#include "mixradix/simnet/flow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "mixradix/util/expect.hpp"

namespace mr::simnet {
namespace {
// Tolerated backwards clock jitter in advance_to.
constexpr double kTimeEpsilon = 1e-15;
constexpr double kInf = std::numeric_limits<double>::infinity();

bool heap_later(const double a, const double b) { return a > b; }
}  // namespace

FlowSim::FlowSim(std::vector<double> capacities, double completion_slack) {
  reset(capacities, completion_slack);
}

void FlowSim::reset(const std::vector<double>& capacities,
                    double completion_slack, bool incremental) {
  for (double c : capacities) {
    MR_EXPECT(c > 0, "channel capacity must be positive");
  }
  MR_EXPECT(completion_slack >= 0 && completion_slack < 0.5,
            "completion slack must be in [0, 0.5)");
  capacities_.assign(capacities.begin(), capacities.end());
  completion_slack_ = completion_slack;
  incremental_ = incremental;

  const std::size_t nc = capacities_.size();
  residual_.resize(nc);
  load_.assign(nc, 0);
  flows_on_.resize(nc);
  used_.assign(nc, 0.0);
  nflows_.assign(nc, 0);
  freed_.assign(nc, 0.0);
  // Keep the per-channel lists (and their heap blocks) alive across runs;
  // only their contents reset.
  if (by_channel_.size() > nc) by_channel_.resize(nc);
  for (auto& list : by_channel_) list.clear();
  by_channel_.resize(nc);

  remaining_.clear();
  rate_.clear();
  deadline_.clear();
  user_.clear();
  ext_id_.clear();
  chans_.clear();
  ext_index_.clear();
  ext_rate_.clear();
  heap_.clear();
  heap_live_ = false;
  batch_.clear();

  now_ = 0;
  rates_dirty_ = true;
  batches_since_full_ = 0;
  stats_ = Stats{};
}

double FlowSim::current_remaining(std::size_t index) const {
  const double r = rate_[index];
  if (r == 0) return remaining_[index];  // never allocated: nothing drained
  if (std::isinf(r)) return 0.0;
  return std::max(0.0, r * (deadline_[index] - now_));
}

void FlowSim::assign_rate(std::size_t index, double rate) {
  remaining_[index] = current_remaining(index);
  rate_[index] = rate;
  deadline_[index] =
      std::isinf(rate) ? now_ : now_ + remaining_[index] / rate;
  if (incremental_) heap_push(index);
}

void FlowSim::heap_push(std::size_t index) {
  // In the scan regime the heap is not consulted: skip the push and mark
  // the index stale so the first push back in the many-flow regime
  // rebuilds it over the live flows.
  if (remaining_.size() <= kScanFlows) {
    heap_live_ = false;
    return;
  }
  // Stale entries (flows gone, deadlines superseded) accumulate until they
  // dominate, then one rebuild over the live flows resets the heap.
  if (!heap_live_ || heap_.size() > 4 * remaining_.size() + 64) {
    heap_.clear();
    for (std::size_t i = 0; i < remaining_.size(); ++i) {
      if (deadline_[i] < kInf) heap_.push_back({deadline_[i], ext_id_[i]});
    }
    std::make_heap(heap_.begin(), heap_.end(), [](const auto& a, const auto& b) {
      return heap_later(a.deadline, b.deadline);
    });
    heap_live_ = true;
    return;  // `index` is live, so the rebuild already indexed it
  }
  heap_.push_back({deadline_[index], ext_id_[index]});
  std::push_heap(heap_.begin(), heap_.end(), [](const auto& a, const auto& b) {
    return heap_later(a.deadline, b.deadline);
  });
}

std::int64_t FlowSim::add_flow(std::vector<ChannelId> channels, double bytes,
                               std::int64_t user) {
  std::sort(channels.begin(), channels.end());
  channels.erase(std::unique(channels.begin(), channels.end()), channels.end());
  MR_EXPECT(channels.size() <= static_cast<std::size_t>(kMaxChannelsPerFlow),
            "flow crosses more channels than supported");
  ChanSet set;
  for (ChannelId c : channels) {
    MR_EXPECT(c >= 0 && static_cast<std::size_t>(c) < capacities_.size(),
              "channel id out of range");
    set.ids[static_cast<std::size_t>(set.count++)] = c;
  }
  return add_flow(set, bytes, user);
}

std::int64_t FlowSim::add_interned(const ChanSet& channels, double bytes,
                                   std::int64_t user) {
  MR_EXPECT(bytes >= 0, "flow size must be non-negative");
  MR_ASSERT_INTERNAL(channels.count >= 0 &&
                     channels.count <= simnet::kMaxChannelsPerFlow);
  const auto ext = static_cast<std::int64_t>(ext_index_.size());
  ext_index_.push_back(static_cast<std::int64_t>(remaining_.size()) + 1);
  ext_rate_.push_back(0.0);
  remaining_.push_back(bytes);
  rate_.push_back(0.0);
  deadline_.push_back(kInf);
  user_.push_back(user);
  ext_id_.push_back(ext);
  chans_.push_back(channels);
  stats_.peak_active_flows =
      std::max(stats_.peak_active_flows,
               static_cast<std::int64_t>(remaining_.size()));
  for (std::int32_t k = 0; k < channels.count; ++k) {
    const auto ci =
        static_cast<std::size_t>(channels.ids[static_cast<std::size_t>(k)]);
    MR_ASSERT_INTERNAL(ci < capacities_.size());
    ++nflows_[ci];
    auto& list = by_channel_[ci];
    // Lazy compaction: purge completed entries once they dominate.
    if (list.size() > 8 && list.size() > 4 * static_cast<std::size_t>(nflows_[ci])) {
      std::erase_if(list, [&](std::int64_t e) {
        return ext_index_[static_cast<std::size_t>(e)] == 0;
      });
    }
    list.push_back(ext);
  }
  if (!try_defer_allocation(remaining_.size() - 1)) {
    rates_dirty_ = true;
  }
  return ext;
}

// Deferred allocation: in steady-state traffic (rings, pipelines) each
// completed flow frees exactly the headroom its successor needs, so a full
// max-min recompute per event is wasted work. When completion slack is
// enabled, a new flow may simply grab the available headroom on its path —
// provided that headroom is within 10% of its estimated fair share, so a
// congestion shift still forces the exact recomputation. Deferred rates
// are always feasible (never exceed residual capacity); periodic full
// recomputes (every kMaxDeferredBatches pop batches) restore exact
// max-min fairness.
bool FlowSim::try_defer_allocation(std::size_t index) {
  if (completion_slack_ <= 0 || rates_dirty_) return false;
  const ChanSet& set = chans_[index];
  if (set.count == 0) {
    assign_rate(index, kInf);
    return true;
  }
  double headroom = kInf;
  double fair = kInf;
  for (std::int32_t k = 0; k < set.count; ++k) {
    const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
    headroom = std::min(headroom, capacities_[ci] - used_[ci]);
    fair = std::min(fair, capacities_[ci] / nflows_[ci]);
  }
  if (!(headroom >= 0.9 * fair) || headroom <= 0) {
    if (steal_allocation(index, fair)) return true;
    ++stats_.deferred_rejections;
    return false;
  }
  ++stats_.deferred_allocations;
  assign_rate(index, headroom);
  for (std::int32_t k = 0; k < set.count; ++k) {
    const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
    used_[ci] += headroom;
    freed_[ci] = std::max(0.0, freed_[ci] - headroom);
  }
  return true;
}

// Steal fallback for deferred allocation: when the freed headroom is not
// enough (consecutive pipeline rounds overlap in flight), give the new
// flow its estimated fair share and proportionally scale down the victims
// on each oversubscribed channel. Rates stay feasible (to within the 1%
// scale floor that keeps every flow draining), conservative, and the
// periodic exact recomputation erases the approximation. Refuses when a
// channel has too many victims — then the exact pass is worth its cost.
bool FlowSim::steal_allocation(std::size_t index, double fair) {
  const ChanSet& set = chans_[index];
  for (std::int32_t k = 0; k < set.count; ++k) {
    const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
    if (used_[ci] + fair > capacities_[ci] && nflows_[ci] > 64) return false;
  }
  for (std::int32_t k = 0; k < set.count; ++k) {
    const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
    const double over = used_[ci] + fair - capacities_[ci];
    if (over <= 0 || used_[ci] <= 0) continue;
    const double scale =
        std::max(0.01, (capacities_[ci] - fair) / used_[ci]);
    if (scale >= 1) continue;
    for (std::int64_t ext : by_channel_[ci]) {
      const std::int64_t slot = ext_index_[static_cast<std::size_t>(ext)];
      if (slot == 0) continue;  // completed
      const auto f = static_cast<std::size_t>(slot - 1);
      if (f == index || std::isinf(rate_[f])) continue;
      const double delta = rate_[f] * (1 - scale);
      if (delta <= 0) continue;
      assign_rate(f, rate_[f] - delta);
      const ChanSet& vs = chans_[f];
      for (std::int32_t j = 0; j < vs.count; ++j) {
        const auto cj = static_cast<std::size_t>(vs.ids[static_cast<std::size_t>(j)]);
        used_[cj] = std::max(0.0, used_[cj] - delta);
      }
    }
  }
  assign_rate(index, fair);
  for (std::int32_t k = 0; k < set.count; ++k) {
    const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
    used_[ci] += fair;
    freed_[ci] = std::max(0.0, freed_[ci] - fair);
  }
  return true;
}

void FlowSim::recompute_rates() {
  if (!rates_dirty_) return;
  ++stats_.full_recomputes;
  rates_dirty_ = false;
  const std::size_t n = remaining_.size();

  // Per-channel load and flow lists.
  touched_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const ChanSet& set = chans_[i];
    for (std::int32_t k = 0; k < set.count; ++k) {
      const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
      if (load_[ci] == 0) {
        touched_.push_back(set.ids[static_cast<std::size_t>(k)]);
        flows_on_[ci].clear();
        residual_[ci] = capacities_[ci];
      }
      ++load_[ci];
      flows_on_[ci].push_back(static_cast<std::int32_t>(i));
    }
  }

  // New rates build up in scratch so that a flow whose fair share did NOT
  // change keeps its remaining/deadline state untouched (no re-projection,
  // no rounding drift, no heap churn).
  newrate_.resize(n);
  std::size_t unfrozen = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (chans_[i].count == 0) {
      newrate_[i] = kInf;
    } else {
      newrate_[i] = -1.0;  // marker: not yet frozen
      ++unfrozen;
    }
  }

  // Progressive filling, level by level. Each pass finds the global
  // minimum fair share s and freezes the flows of EVERY channel tied at s:
  // freezing the flows of one bottleneck only ever raises the share of the
  // others ((R - s)/(n - 1) >= R/n when s is the global minimum), so ties
  // stay ties and strictly-larger channels stay above s. The number of
  // passes equals the number of distinct bottleneck levels, which for
  // collective traffic is small (one per congestion class), keeping the
  // whole recompute at O(levels * touched + flow-channel incidences).
  // `alive` is the compacted working set of channels still carrying
  // unfrozen flows; saturated channels are swap-removed so later passes
  // scan progressively fewer entries.
  std::vector<ChannelId>& alive = touched_scan_;
  alive = touched_;
  while (unfrozen > 0) {
    double s = kInf;
    for (std::size_t w = 0; w < alive.size();) {
      const auto ci = static_cast<std::size_t>(alive[w]);
      if (load_[ci] == 0) {
        alive[w] = alive.back();
        alive.pop_back();
        continue;
      }
      s = std::min(s, residual_[ci] / load_[ci]);
      ++w;
    }
    MR_ASSERT_INTERNAL(std::isfinite(s));
    const double bound = s * (1 + std::max(1e-12, completion_slack_));
    for (ChannelId c : alive) {
      const auto ci = static_cast<std::size_t>(c);
      if (load_[ci] == 0 || residual_[ci] / load_[ci] > bound) continue;
      for (std::int32_t fi : flows_on_[ci]) {
        const auto f = static_cast<std::size_t>(fi);
        if (newrate_[f] >= 0) continue;  // already frozen
        newrate_[f] = s;
        --unfrozen;
        const ChanSet& set = chans_[f];
        for (std::int32_t k = 0; k < set.count; ++k) {
          const auto c2i =
              static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
          residual_[c2i] = std::max(0.0, residual_[c2i] - s);
          --load_[c2i];
        }
      }
    }
  }

  // Apply only the rates that actually changed — everything else keeps its
  // projected deadline, which is what keeps the completion heap lazy.
  for (std::size_t i = 0; i < n; ++i) {
    if (newrate_[i] != rate_[i]) assign_rate(i, newrate_[i]);
  }

  // Rebuild the incremental headroom bookkeeping used by deferred
  // allocation, and reset the load scratch. The filling loop already
  // maintained residual = capacity - allocated per channel, so the used
  // capacity falls out of it — no second pass over the flow-channel
  // incidences.
  for (ChannelId c : touched_) {
    const auto ci = static_cast<std::size_t>(c);
    load_[ci] = 0;
    used_[ci] = capacities_[ci] - residual_[ci];
    freed_[ci] = 0;
  }
}

std::optional<double> FlowSim::next_completion_time() {
  if (remaining_.empty()) return std::nullopt;
  recompute_rates();
  if (!incremental_ || remaining_.size() <= kScanFlows || !heap_live_) {
    // Reference mode and the few-flow regime: O(active flows) scan. min()
    // over doubles is exact, so the scan and the heap below yield the
    // same double.
    double best = kInf;
    const std::size_t n = remaining_.size();
    for (std::size_t i = 0; i < n; ++i) {
      MR_ASSERT_INTERNAL(rate_[i] > 0);  // recompute allocated every flow
      best = std::min(best, deadline_[i]);
    }
    return std::max(now_, best);
  }
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    const std::int64_t slot = ext_index_[static_cast<std::size_t>(top.ext)];
    if (slot != 0 &&
        deadline_[static_cast<std::size_t>(slot - 1)] == top.deadline) {
      return std::max(now_, top.deadline);
    }
    std::pop_heap(heap_.begin(), heap_.end(), [](const auto& a, const auto& b) {
      return heap_later(a.deadline, b.deadline);
    });
    heap_.pop_back();
  }
  MR_ASSERT_INTERNAL(false);  // every active flow has a live heap entry
  return std::nullopt;
}

void FlowSim::advance_to(double t) {
  MR_EXPECT(t >= now_ - kTimeEpsilon, "cannot advance backwards");
  recompute_rates();
  // The drain is implicit: every allocated flow carries its absolute
  // deadline, so moving the clock is all that is needed.
  now_ = std::max(now_, t);
}

void FlowSim::remove_active(std::size_t index) {
  const ChanSet& set = chans_[index];
  if (!std::isinf(rate_[index])) {
    for (std::int32_t k = 0; k < set.count; ++k) {
      const auto ci = static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)]);
      used_[ci] = std::max(0.0, used_[ci] - rate_[index]);
      --nflows_[ci];
      // Freed capacity that no successor grabs must eventually be handed
      // to the surviving flows: once a quarter of a channel sits idle,
      // force the exact recomputation.
      freed_[ci] += rate_[index];
      // Only surviving flows can profit from the freed share; an empty
      // channel needs no redistribution.
      if (nflows_[ci] > 0 && freed_[ci] > 0.4 * capacities_[ci]) {
        rates_dirty_ = true;
      }
    }
  } else {
    for (std::int32_t k = 0; k < set.count; ++k) {
      --nflows_[static_cast<std::size_t>(set.ids[static_cast<std::size_t>(k)])];
    }
  }
  const std::size_t last = remaining_.size() - 1;
  ext_rate_[static_cast<std::size_t>(ext_id_[index])] = rate_[index];
  ext_index_[static_cast<std::size_t>(ext_id_[index])] = 0;
  if (index != last) {
    remaining_[index] = remaining_[last];
    rate_[index] = rate_[last];
    deadline_[index] = deadline_[last];
    user_[index] = user_[last];
    ext_id_[index] = ext_id_[last];
    chans_[index] = chans_[last];
    ext_index_[static_cast<std::size_t>(ext_id_[index])] =
        static_cast<std::int64_t>(index) + 1;
  }
  remaining_.pop_back();
  rate_.pop_back();
  deadline_.pop_back();
  user_.pop_back();
  ext_id_.pop_back();
  chans_.pop_back();
}

std::vector<Completion> FlowSim::advance_and_pop() {
  ++stats_.pop_batches;
  std::vector<Completion> done;
  const auto t = next_completion_time();
  MR_EXPECT(t.has_value(), "no active flows to advance to");
  const double before = now_;
  advance_to(*t);
  // Completion-slack batching: flows whose residual transfer time is within
  // slack * elapsed-horizon finish in this batch, slightly early.
  const double merge_window = completion_slack_ * (now_ - before);
  const double threshold = now_ + merge_window;
  batch_.clear();
  if (!incremental_ || remaining_.size() <= kScanFlows || !heap_live_) {
    // Reference mode and the few-flow regime: backwards scan, exactly the
    // swap-removal-safe order.
    for (std::size_t i = remaining_.size(); i-- > 0;) {
      if (deadline_[i] <= threshold) batch_.push_back(i);
    }
  } else {
    auto later = [](const HeapEntry& a, const HeapEntry& b) {
      return heap_later(a.deadline, b.deadline);
    };
    while (!heap_.empty() && heap_.front().deadline <= threshold) {
      const HeapEntry top = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), later);
      heap_.pop_back();
      const std::int64_t slot = ext_index_[static_cast<std::size_t>(top.ext)];
      if (slot != 0 &&
          deadline_[static_cast<std::size_t>(slot - 1)] == top.deadline) {
        batch_.push_back(static_cast<std::size_t>(slot - 1));
      }
    }
    // Match the reference scan bit for bit: complete in descending slot
    // order (this is also what makes the interleaved swap-removal safe),
    // one completion per flow even if its deadline was re-pushed.
    std::sort(batch_.begin(), batch_.end(), std::greater<>{});
    batch_.erase(std::unique(batch_.begin(), batch_.end()), batch_.end());
  }
  for (std::size_t i : batch_) {
    done.push_back(Completion{ext_id_[i], user_[i], now_});
    remove_active(i);
  }
  MR_ASSERT_INTERNAL(!done.empty());
  if (completion_slack_ <= 0 || ++batches_since_full_ >= kMaxDeferredBatches) {
    batches_since_full_ = 0;
    rates_dirty_ = true;
  }
  return done;
}

double FlowSim::flow_rate(std::int64_t flow) {
  MR_EXPECT(flow >= 0 && static_cast<std::size_t>(flow) < ext_index_.size(),
            "unknown flow");
  recompute_rates();
  const std::int64_t idx = ext_index_[static_cast<std::size_t>(flow)];
  if (idx == 0) return ext_rate_[static_cast<std::size_t>(flow)];
  return rate_[static_cast<std::size_t>(idx - 1)];
}

}  // namespace mr::simnet
