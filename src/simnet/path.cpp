#include "mixradix/simnet/path.hpp"

#include "mixradix/mr/metrics.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simnet {

std::vector<double> channel_capacities(const topo::Machine& machine) {
  std::vector<double> caps(static_cast<std::size_t>(3 * machine.total_components()));
  for (int level = 0; level < machine.depth(); ++level) {
    const auto& spec = machine.level(level);
    const std::int64_t count = machine.hierarchy().components_at(level);
    for (std::int64_t comp = 0; comp < count; ++comp) {
      const std::int64_t id = machine.component_id(level, comp);
      caps[static_cast<std::size_t>(3 * id)] = spec.link_bandwidth;
      caps[static_cast<std::size_t>(3 * id + 1)] = spec.link_bandwidth;
      // Levels without a memory model get a placeholder capacity; those
      // channels are never referenced by flow_channels().
      caps[static_cast<std::size_t>(3 * id + 2)] =
          spec.mem_bandwidth > 0 ? spec.mem_bandwidth : 1.0;
    }
  }
  return caps;
}

ChannelId egress_channel(const topo::Machine& machine, int level,
                         std::int64_t component_in_level) {
  return static_cast<ChannelId>(3 * machine.component_id(level, component_in_level));
}

ChannelId ingress_channel(const topo::Machine& machine, int level,
                          std::int64_t component_in_level) {
  return static_cast<ChannelId>(3 * machine.component_id(level, component_in_level) + 1);
}

ChannelId memory_channel(const topo::Machine& machine, int level,
                         std::int64_t component_in_level) {
  MR_EXPECT(machine.level(level).mem_bandwidth > 0,
            "level has no memory bandwidth model");
  return static_cast<ChannelId>(3 * machine.component_id(level, component_in_level) + 2);
}

std::vector<ChannelId> flow_channels(const topo::Machine& machine,
                                     std::int64_t core_a, std::int64_t core_b) {
  MR_EXPECT(core_a >= 0 && core_a < machine.cores(), "core_a out of range");
  MR_EXPECT(core_b >= 0 && core_b < machine.cores(), "core_b out of range");
  if (core_a == core_b) return {};
  const auto& h = machine.hierarchy();
  const Coords a = decompose(h, core_a);
  const Coords b = decompose(h, core_b);
  const int fd = innermost_common_level(h, a, b);
  std::vector<ChannelId> channels;
  channels.reserve(static_cast<std::size_t>(4 * (machine.depth() - fd)));
  for (int level = fd; level < machine.depth(); ++level) {
    channels.push_back(egress_channel(machine, level, machine.component_of(core_a, level)));
    channels.push_back(ingress_channel(machine, level, machine.component_of(core_b, level)));
  }
  // Memory traffic: the transfer reads from the sender's memory domains and
  // writes to the receiver's, at every level that models a controller.
  // (FlowSim deduplicates, so a flow staying inside one domain consumes its
  // controller once, not twice.)
  for (int level = 0; level < machine.depth(); ++level) {
    if (machine.level(level).mem_bandwidth <= 0) continue;
    channels.push_back(memory_channel(machine, level, machine.component_of(core_a, level)));
    channels.push_back(memory_channel(machine, level, machine.component_of(core_b, level)));
  }
  return channels;
}

}  // namespace mr::simnet
