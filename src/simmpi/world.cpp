#include "mixradix/simmpi/world.hpp"

#include <algorithm>
#include <map>

#include "mixradix/engine/engine.hpp"
#include "mixradix/mr/decompose.hpp"
#include "mixradix/simmpi/plan_cache.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simmpi {

Communicator::Communicator(Engine* engine,
                           std::shared_ptr<const topo::Machine> machine,
                           std::vector<std::int64_t> cores)
    : engine_(engine), machine_(std::move(machine)), cores_(std::move(cores)) {
  MR_EXPECT(!cores_.empty(), "communicator must not be empty");
  for (std::int64_t core : cores_) {
    MR_EXPECT(core >= 0 && core < machine_->cores(), "core out of range");
  }
}

std::int64_t Communicator::core_of(std::int32_t rank) const {
  MR_EXPECT(rank >= 0 && rank < size(), "rank out of range");
  return cores_[static_cast<std::size_t>(rank)];
}

std::vector<Communicator> Communicator::split(
    const std::vector<std::int64_t>& colors,
    const std::vector<std::int64_t>& keys) const {
  MR_EXPECT(static_cast<std::int32_t>(colors.size()) == size(),
            "one color per rank required");
  MR_EXPECT(static_cast<std::int32_t>(keys.size()) == size(),
            "one key per rank required");
  // (color) -> [(key, old rank)] with MPI's (key, rank) tie-breaking.
  std::map<std::int64_t, std::vector<std::pair<std::int64_t, std::int32_t>>> groups;
  for (std::int32_t rank = 0; rank < size(); ++rank) {
    groups[colors[static_cast<std::size_t>(rank)]].emplace_back(
        keys[static_cast<std::size_t>(rank)], rank);
  }
  std::vector<Communicator> out;
  out.reserve(groups.size());
  for (auto& [color, members] : groups) {
    std::sort(members.begin(), members.end());
    std::vector<std::int64_t> cores;
    cores.reserve(members.size());
    for (const auto& [key, rank] : members) {
      cores.push_back(cores_[static_cast<std::size_t>(rank)]);
    }
    out.push_back(Communicator(engine_, machine_, std::move(cores)));
  }
  return out;
}

std::vector<Communicator> Communicator::split_blocks(std::int64_t comm_size) const {
  MR_EXPECT(comm_size >= 1 && size() % comm_size == 0,
            "comm size must divide the communicator");
  std::vector<std::int64_t> colors(static_cast<std::size_t>(size()));
  std::vector<std::int64_t> keys(static_cast<std::size_t>(size()));
  for (std::int32_t rank = 0; rank < size(); ++rank) {
    colors[static_cast<std::size_t>(rank)] = rank / comm_size;
    keys[static_cast<std::size_t>(rank)] = rank % comm_size;
  }
  return split(colors, keys);
}

std::vector<Communicator> Communicator::split_by_level(int level) const {
  MR_EXPECT(level >= 0 && level < machine_->depth(), "level out of range");
  std::vector<std::int64_t> colors(static_cast<std::size_t>(size()));
  std::vector<std::int64_t> keys(static_cast<std::size_t>(size()));
  for (std::int32_t rank = 0; rank < size(); ++rank) {
    colors[static_cast<std::size_t>(rank)] =
        machine_->component_of(cores_[static_cast<std::size_t>(rank)], level);
    keys[static_cast<std::size_t>(rank)] = rank;
  }
  return split(colors, keys);
}

double Communicator::time_collective(Collective kind, std::int64_t count,
                                     std::int32_t root) const {
  const auto plan = engine_->plan_cache().get(
      PlanKey{selected_algorithm(kind, size(), count,
                                 machine_->costs().eager_threshold),
              size(), count, root, 1});
  return run_timed_plan_single(*machine_, *plan, cores_);
}

double Communicator::time_concurrent(const std::vector<Communicator>& comms,
                                     Collective kind, std::int64_t count) {
  MR_EXPECT(!comms.empty(), "need at least one communicator");
  const topo::Machine& machine = comms.front().machine();
  Engine& engine = comms.front().engine();
  std::vector<PlanJob> jobs;
  jobs.reserve(comms.size());
  for (const auto& comm : comms) {
    MR_EXPECT(&comm.machine() == &machine,
              "all communicators must live on the same machine");
    auto plan = engine.plan_cache().get(
        PlanKey{selected_algorithm(kind, comm.size(), count,
                                   machine.costs().eager_threshold),
                comm.size(), count, 0, 1});
    jobs.push_back(PlanJob{std::move(plan), comm.cores(), 0.0});
  }
  const TimedResult timed = run_timed(machine, jobs);
  engine.record_run(timed);
  return timed.makespan;
}

World::World(Engine& engine, topo::Machine machine)
    : engine_(&engine),
      machine_(std::make_shared<const topo::Machine>(std::move(machine))) {}

World::World(topo::Machine machine)
    : World(Engine::shared(), std::move(machine)) {}

std::int32_t World::size() const {
  return static_cast<std::int32_t>(machine_->cores());
}

Communicator World::comm_world() const {
  std::vector<std::int64_t> cores(static_cast<std::size_t>(machine_->cores()));
  for (std::int64_t c = 0; c < machine_->cores(); ++c) {
    cores[static_cast<std::size_t>(c)] = c;
  }
  return Communicator(engine_, machine_, std::move(cores));
}

Communicator World::reordered(const Order& order) const {
  const auto placement = placement_of_new_ranks(machine_->hierarchy(), order);
  return Communicator(engine_, machine_, placement);
}

}  // namespace mr::simmpi
