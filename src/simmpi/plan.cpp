#include "mixradix/simmpi/plan.hpp"

#include <utility>

#include "mixradix/simmpi/registry.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simmpi {

PlanExec derive_exec(const Schedule& schedule) {
  PlanExec exec;
  const auto nranks = static_cast<std::size_t>(schedule.nranks);
  exec.rank_rounds_begin.reserve(nranks + 1);
  exec.rank_rounds_begin.push_back(0);
  std::size_t total_rounds = 0, total_sends = 0, total_recvs = 0;
  for (const RankProgram& prog : schedule.programs) {
    total_rounds += prog.rounds.size();
    exec.rank_rounds_begin.push_back(static_cast<std::int64_t>(total_rounds));
    for (const Round& round : prog.rounds) {
      total_sends += round.sends.size();
      total_recvs += round.recvs.size();
    }
  }
  exec.round_compute.reserve(total_rounds);
  exec.round_copy_doubles.reserve(total_rounds);
  exec.send_begin.reserve(total_rounds + 1);
  exec.recv_begin.reserve(total_rounds + 1);
  exec.send_msg.reserve(total_sends);
  exec.recv_msg.reserve(total_recvs);
  exec.send_begin.push_back(0);
  exec.recv_begin.push_back(0);
  for (const RankProgram& prog : schedule.programs) {
    for (const Round& round : prog.rounds) {
      exec.round_compute.push_back(round.compute_seconds);
      std::int64_t copy_doubles = 0;
      for (const CopyOp& op : round.copies) copy_doubles += op.dst.count;
      exec.round_copy_doubles.push_back(copy_doubles);
      for (const SendOp& op : round.sends) exec.send_msg.push_back(op.msg);
      for (const RecvOp& op : round.recvs) exec.recv_msg.push_back(op.msg);
      exec.send_begin.push_back(static_cast<std::int64_t>(exec.send_msg.size()));
      exec.recv_begin.push_back(static_cast<std::int64_t>(exec.recv_msg.size()));
    }
  }
  exec.msg_bytes.reserve(schedule.messages.size());
  for (const MsgInfo& m : schedule.messages) exec.msg_bytes.push_back(m.bytes());
  return exec;
}

Plan make_plan(Schedule schedule, int repetitions, std::string algorithm) {
  MR_EXPECT(repetitions >= 1, "repetition count must be >= 1");
  Plan plan;
  plan.schedule = std::move(schedule);
  plan.repetitions = repetitions;
  plan.algorithm = std::move(algorithm);
  plan.exec = derive_exec(plan.schedule);
  return plan;
}

Plan compile_plan(const std::string& algorithm, std::int32_t p,
                  std::int64_t count, std::int32_t root, int repetitions) {
  MR_EXPECT(repetitions >= 1, "repetition count must be >= 1");
  Schedule schedule;
  {
    // Defer build()-time verification to the single whole-plan analysis
    // below: a compile is one verify::analyze per distinct plan key.
    detail::PlanCompileScope scope;
    schedule = make_algorithm(algorithm, p, count, root);
  }
  Plan plan = make_plan(std::move(schedule), repetitions, algorithm);
#ifdef MIXRADIX_VERIFY_SCHEDULES
  auto report = std::make_shared<verify::Report>(verify::analyze(plan.schedule));
  MR_EXPECT(report->clean(), "plan " + algorithm +
                                 " fails static verification:\n" +
                                 report->to_string());
  plan.report = std::move(report);
#endif
  return plan;
}

}  // namespace mr::simmpi
