#include "mixradix/simmpi/collectives.hpp"
#include "src/simmpi/coll_internal.hpp"

namespace mr::simmpi {

using detail::ceil_log2;
using detail::mod;

// Arena: in [0,c), out/accumulator [c,2c) — the sum lands in the root's out.

Schedule reduce_binomial(std::int32_t p, std::int64_t count, std::int32_t root) {
  MR_EXPECT(p >= 1 && count >= 1, "bad reduce parameters");
  MR_EXPECT(root >= 0 && root < p, "root out of range");
  ScheduleBuilder b(p, 2 * count);
  const Region in{0, count};
  const Region acc{count, count};
  for (std::int32_t rank = 0; rank < p; ++rank) {
    b.copy(0, rank, in, acc);
  }
  const int rounds = ceil_log2(p);
  // Root-relative binomial tree, mirrored from the broadcast: in round k
  // (counting down the tree), vr's with bit k set and lower bits clear send
  // their accumulator to vr - 2^k, which folds it in.
  for (int k = 0; k < rounds; ++k) {
    const std::int32_t z = std::int32_t{1} << k;
    for (std::int32_t vr = z; vr < p; vr += 2 * z) {
      // vr has bits below k clear by construction of the loop.
      const std::int32_t src = mod(root + vr, p);
      const std::int32_t dst = mod(root + vr - z, p);
      b.message(1 + k, src, acc, 1 + k, dst, acc, Combine::Sum);
    }
  }
  return std::move(b).build();
}

}  // namespace mr::simmpi
