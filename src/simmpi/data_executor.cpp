#include "mixradix/simmpi/data_executor.hpp"

#include <algorithm>

#include "mixradix/util/expect.hpp"
#include "mixradix/verify/verify.hpp"

namespace mr::simmpi {

void combine_into(Combine combine, const double* src, double* dst,
                  std::int64_t count) {
  switch (combine) {
    case Combine::Replace:
      std::copy(src, src + count, dst);
      return;
    case Combine::Sum:
      for (std::int64_t i = 0; i < count; ++i) dst[i] += src[i];
      return;
    case Combine::Max:
      for (std::int64_t i = 0; i < count; ++i) dst[i] = std::max(dst[i], src[i]);
      return;
    case Combine::Min:
      for (std::int64_t i = 0; i < count; ++i) dst[i] = std::min(dst[i], src[i]);
      return;
    case Combine::Prod:
      for (std::int64_t i = 0; i < count; ++i) dst[i] *= src[i];
      return;
  }
  MR_ASSERT_INTERNAL(false);
}

DataExecutor::DataExecutor(Schedule schedule, Preverify preverify)
    : schedule_(std::move(schedule)), preverify_(preverify) {
  init(nullptr);
}

DataExecutor::DataExecutor(const std::shared_ptr<const Plan>& plan,
                           Preverify preverify)
    : preverify_(preverify) {
  MR_EXPECT(plan != nullptr, "executor without plan");
  schedule_ = plan->repetitions == 1
                  ? plan->schedule
                  : repeat(plan->schedule, plan->repetitions);
  // The embedded report covers the single-repetition schedule only; a
  // materialized repeat is re-analyzed like any other schedule.
  init(plan->repetitions == 1 ? plan->report.get() : nullptr);
}

void DataExecutor::init(const verify::Report* compile_report) {
  const std::string error = schedule_.validate();
  MR_EXPECT(error.empty(), "malformed schedule: " + error);
  if (preverify_ == Preverify::Upfront) {
    if (compile_report != nullptr) {
      // Proved once at plan compile time; no second analyzer pass.
      MR_EXPECT(compile_report->clean(),
                "schedule fails static verification:\n" +
                    compile_report->to_string());
    } else {
      const verify::Report report = verify::analyze(schedule_);
      MR_EXPECT(report.clean(),
                "schedule fails static verification:\n" + report.to_string());
    }
  }
  arenas_.assign(static_cast<std::size_t>(schedule_.nranks),
                 std::vector<double>(static_cast<std::size_t>(schedule_.arena_size), 0.0));
  pc_.assign(static_cast<std::size_t>(schedule_.nranks), 0);
  mailbox_.resize(schedule_.messages.size());
  delivered_.assign(schedule_.messages.size(), false);
}

std::vector<double>& DataExecutor::arena(std::int32_t rank) {
  MR_EXPECT(rank >= 0 && rank < schedule_.nranks, "rank out of range");
  return arenas_[static_cast<std::size_t>(rank)];
}

const std::vector<double>& DataExecutor::arena(std::int32_t rank) const {
  MR_EXPECT(rank >= 0 && rank < schedule_.nranks, "rank out of range");
  return arenas_[static_cast<std::size_t>(rank)];
}

// A round executes in two phases, mirroring post-then-waitall semantics:
//   phase 0 (on entering the round): copies, then sends — payloads snapshot
//   into the mailbox immediately, like buffered isends;
//   phase 1 (once every expected payload is in the mailbox): receives
//   combine, the rank moves to the next round.
// Splitting phases is what lets two ranks exchange messages within the same
// round without deadlocking the sweep below.
bool DataExecutor::round_ready(std::int32_t rank) const {
  const auto& rounds = schedule_.programs[static_cast<std::size_t>(rank)].rounds;
  const std::size_t pc = pc_[static_cast<std::size_t>(rank)];
  MR_ASSERT_INTERNAL(pc < rounds.size());
  for (const auto& op : rounds[pc].recvs) {
    if (!delivered_[static_cast<std::size_t>(op.msg)]) return false;
  }
  return true;
}

void DataExecutor::execute_round(std::int32_t rank) {
  auto& arena = arenas_[static_cast<std::size_t>(rank)];
  const auto& round =
      schedule_.programs[static_cast<std::size_t>(rank)]
          .rounds[pc_[static_cast<std::size_t>(rank)]];
  for (const auto& op : round.copies) {
    // Copies may alias; stage through a scratch buffer for safety.
    std::vector<double> scratch(arena.begin() + op.src.offset,
                                arena.begin() + op.src.offset + op.src.count);
    combine_into(op.combine, scratch.data(), arena.data() + op.dst.offset,
                 op.dst.count);
  }
  for (const auto& op : round.sends) {
    const auto& msg = schedule_.messages[static_cast<std::size_t>(op.msg)];
    mailbox_[static_cast<std::size_t>(op.msg)].assign(
        arena.begin() + msg.src_region.offset,
        arena.begin() + msg.src_region.offset + msg.src_region.count);
    delivered_[static_cast<std::size_t>(op.msg)] = true;
  }
}

void DataExecutor::run() {
  const auto n = static_cast<std::size_t>(schedule_.nranks);
  std::vector<bool> posted(n, false);  // phase flag for the current round
  while (true) {
    bool progress = false;
    bool done = true;
    for (std::int32_t rank = 0; rank < schedule_.nranks; ++rank) {
      const auto r = static_cast<std::size_t>(rank);
      const auto& rounds = schedule_.programs[r].rounds;
      while (pc_[r] < rounds.size()) {
        if (!posted[r]) {
          execute_round(rank);  // copies + sends
          posted[r] = true;
          progress = true;
        }
        if (!round_ready(rank)) break;  // receives still missing payloads
        auto& arena = arenas_[r];
        for (const auto& op : rounds[pc_[r]].recvs) {
          const auto& msg = schedule_.messages[static_cast<std::size_t>(op.msg)];
          const auto& payload = mailbox_[static_cast<std::size_t>(op.msg)];
          MR_ASSERT_INTERNAL(static_cast<std::int64_t>(payload.size()) ==
                             msg.dst_region.count);
          combine_into(msg.combine, payload.data(),
                       arena.data() + msg.dst_region.offset, msg.dst_region.count);
        }
        ++pc_[r];
        posted[r] = false;
        progress = true;
      }
      if (pc_[r] < rounds.size()) done = false;
    }
    if (done) return;
    if (!progress) {
      // The static analyzer reconstructs *why*: the happens-before cycle
      // with its rank/round/message chain beats "a receive waits on a send".
      std::string detail = "a receive waits on a send that can never execute";
      if (preverify_ != Preverify::Off) {
        verify::Options options;
        options.check_races = false;
        options.check_dataflow = false;
        const verify::Report report = verify::analyze(schedule_, options);
        if (!report.clean()) detail = report.to_string();
      }
      MR_EXPECT(false, "schedule deadlocks: " + detail);
    }
  }
}

}  // namespace mr::simmpi
