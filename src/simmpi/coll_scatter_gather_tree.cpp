// Binomial-tree scatter and gather for arbitrary roots.
//
// Both work in root-relative rank space over a staging buffer ordered by
// relative rank: the root rotates its blocks once, the tree then moves
// CONTIGUOUS relative-block ranges (rank vr owns [vr, vr+len) and forwards
// the upper half to vr + len/2), and leaves copy their own slot in or out.
#include "mixradix/simmpi/collectives.hpp"
#include "src/simmpi/coll_internal.hpp"

namespace mr::simmpi {

using detail::mod;

Schedule scatter_binomial(std::int32_t p, std::int64_t count, std::int32_t root) {
  MR_EXPECT(p >= 1 && count >= 1, "bad scatter parameters");
  MR_EXPECT(root >= 0 && root < p, "root out of range");
  // Arena: in [0, p*c) (root), temp [p*c, 2p*c) (relative order),
  // out [2p*c, 2p*c + c).
  const std::int64_t c = count;
  const std::int64_t temp0 = p * c;
  const std::int64_t out0 = 2 * p * c;
  ScheduleBuilder b(p, out0 + c);
  // Root rotates absolute blocks into relative order once.
  for (std::int32_t i = 0; i < p; ++i) {
    b.copy(0, root, Region{mod(root + i, p) * c, c}, Region{temp0 + i * c, c});
  }
  // Tree rounds: in round k (halving), every holder vr with subtree length
  // len > 2^k... iterate splits from the top: a holder with chunk length
  // len splits off its upper half to vr + ceil(len/2)-aligned child. We
  // realise it root-down: round k sends chunks of size 2^k.
  int rounds = detail::ceil_log2(p);
  for (int k = rounds - 1; k >= 0; --k) {
    const std::int32_t z = std::int32_t{1} << k;
    for (std::int32_t vr = 0; vr < p; vr += 2 * z) {
      const std::int32_t child = vr + z;
      if (child >= p) continue;
      const std::int32_t len = std::min(z, p - child);
      // vr holds [vr, ...) in its temp; it forwards [child, child+len).
      b.message(rounds - k, mod(root + vr, p), Region{temp0 + child * c, len * c},
                rounds - k, mod(root + child, p),
                Region{temp0 + child * c, len * c});
    }
  }
  for (std::int32_t vr = 0; vr < p; ++vr) {
    b.copy(rounds + 1, mod(root + vr, p), Region{temp0 + vr * c, c},
           Region{out0, c});
  }
  return std::move(b).build();
}

Schedule gather_binomial(std::int32_t p, std::int64_t count, std::int32_t root) {
  MR_EXPECT(p >= 1 && count >= 1, "bad gather parameters");
  MR_EXPECT(root >= 0 && root < p, "root out of range");
  // Arena: in [0, c), temp [c, c + p*c) (relative order), out at root
  // [c + p*c, c + 2p*c) (absolute order).
  const std::int64_t c = count;
  const std::int64_t temp0 = c;
  const std::int64_t out0 = c + p * c;
  ScheduleBuilder b(p, out0 + p * c);
  for (std::int32_t vr = 0; vr < p; ++vr) {
    b.copy(0, mod(root + vr, p), Region{0, c}, Region{temp0 + vr * c, c});
  }
  // Mirror of the scatter: children fold their accumulated chunk upward.
  const int rounds = detail::ceil_log2(p);
  for (int k = 0; k < rounds; ++k) {
    const std::int32_t z = std::int32_t{1} << k;
    for (std::int32_t vr = 0; vr < p; vr += 2 * z) {
      const std::int32_t child = vr + z;
      if (child >= p) continue;
      const std::int32_t len = std::min(z, p - child);
      b.message(1 + k, mod(root + child, p), Region{temp0 + child * c, len * c},
                1 + k, mod(root + vr, p), Region{temp0 + child * c, len * c});
    }
  }
  for (std::int32_t i = 0; i < p; ++i) {
    b.copy(rounds + 1, root, Region{temp0 + i * c, c},
           Region{out0 + mod(root + i, p) * c, c});
  }
  return std::move(b).build();
}

}  // namespace mr::simmpi
