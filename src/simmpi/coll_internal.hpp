// Shared helpers for the collective schedule generators.
#pragma once

#include <cstdint>

#include "mixradix/simmpi/schedule.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simmpi::detail {

inline int ceil_log2(std::int64_t n) {
  MR_EXPECT(n >= 1, "ceil_log2 needs a positive argument");
  int k = 0;
  while ((std::int64_t{1} << k) < n) ++k;
  return k;
}

inline bool is_power_of_two(std::int64_t n) { return n >= 1 && (n & (n - 1)) == 0; }

/// Boundaries of chunk i when splitting `count` elements into `p`
/// near-equal chunks (used by ring reduce-scatter/allgather so that any
/// count works, not just multiples of p).
inline std::int64_t chunk_begin(std::int64_t count, std::int32_t p, std::int64_t i) {
  return i * count / p;
}
inline std::int64_t chunk_len(std::int64_t count, std::int32_t p, std::int64_t i) {
  return chunk_begin(count, p, i + 1) - chunk_begin(count, p, i);
}

inline std::int32_t mod(std::int32_t a, std::int32_t p) { return ((a % p) + p) % p; }

}  // namespace mr::simmpi::detail
