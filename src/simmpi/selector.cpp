#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/simmpi/registry.hpp"
#include "src/simmpi/coll_internal.hpp"

namespace mr::simmpi {

using detail::is_power_of_two;

namespace {

/// Per-rank payload (bytes) each collective contributes, used to pick the
/// latency- vs bandwidth-optimised algorithm, mirroring the decision
/// structure of Open MPI's tuned module.
std::int64_t per_rank_bytes(Collective kind, std::int32_t p, std::int64_t count) {
  switch (kind) {
    case Collective::Alltoall:
      return 8 * count * p;  // a rank touches p blocks
    case Collective::Allgather:
      return 8 * count * p;
    case Collective::Allreduce:
    case Collective::Bcast:
    case Collective::Reduce:
    case Collective::Scan:
      return 8 * count;
    case Collective::ReduceScatter:
    case Collective::Gather:
    case Collective::Scatter:
      return 8 * count * p;  // rooted/rotating buffers span all blocks
    case Collective::Barrier:
      return 0;
  }
  MR_ASSERT_INTERNAL(false);
  return 0;
}

}  // namespace

std::string selected_algorithm(Collective kind, std::int32_t p, std::int64_t count,
                               std::int64_t eager_threshold) {
  const std::int64_t bytes = per_rank_bytes(kind, p, count);
  switch (kind) {
    case Collective::Alltoall:
      if (p >= 8 && 8 * count <= 512) return "alltoall_bruck";
      if (p <= 4) return "alltoall_linear";
      return "alltoall_pairwise";
    case Collective::Allgather:
      if (bytes <= eager_threshold) {
        return is_power_of_two(p) ? "allgather_recursive_doubling"
                                  : "allgather_bruck";
      }
      return "allgather_ring";
    case Collective::Allreduce:
      if (bytes <= eager_threshold || p <= 4) {
        return "allreduce_recursive_doubling";
      }
      return "allreduce_ring";
    case Collective::Bcast:
      if (bytes <= eager_threshold || p <= 4) return "bcast_binomial";
      return "bcast_scatter_allgather";
    case Collective::Reduce:
      return "reduce_binomial";
    case Collective::ReduceScatter:
      return "reduce_scatter_ring";
    case Collective::Gather:
      return p <= 4 || bytes > 64 * eager_threshold ? "gather_linear"
                                                    : "gather_binomial";
    case Collective::Scatter:
      return p <= 4 || bytes > 64 * eager_threshold ? "scatter_linear"
                                                    : "scatter_binomial";
    case Collective::Scan:
      return "scan_recursive_doubling";
    case Collective::Barrier:
      return "barrier_dissemination";
  }
  MR_ASSERT_INTERNAL(false);
  return {};
}

Schedule make_collective(Collective kind, std::int32_t p, std::int64_t count,
                         std::int64_t eager_threshold, std::int32_t root) {
  // The selection rule picks a registry name; the registry provides the
  // generator (one source of truth shared with plan compilation and the
  // verify generator matrix).
  return make_algorithm(selected_algorithm(kind, p, count, eager_threshold), p,
                        count, root);
}

}  // namespace mr::simmpi
