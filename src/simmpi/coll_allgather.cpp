#include "mixradix/simmpi/collectives.hpp"
#include "src/simmpi/coll_internal.hpp"

namespace mr::simmpi {

using detail::ceil_log2;
using detail::is_power_of_two;
using detail::mod;

namespace {

// Arena: in [0, c), out [c, c + p*c); Bruck appends temp [c+pc, c+2pc).
Region in_region(std::int64_t c) { return {0, c}; }
Region out_block(std::int64_t c, std::int32_t j) { return {c + j * c, c}; }

}  // namespace

Schedule allgather_ring(std::int32_t p, std::int64_t count) {
  MR_EXPECT(p >= 1 && count >= 1, "bad allgather parameters");
  ScheduleBuilder b(p, count + p * count);
  for (std::int32_t rank = 0; rank < p; ++rank) {
    b.copy(0, rank, in_region(count), out_block(count, rank));
  }
  // Round t: pass block (rank - t) around the ring of comm ranks. This is
  // the algorithm whose cost is literally the ring-cost metric of §3.3.
  for (std::int32_t t = 0; t < p - 1; ++t) {
    for (std::int32_t rank = 0; rank < p; ++rank) {
      const std::int32_t to = mod(rank + 1, p);
      const std::int32_t block = mod(rank - t, p);
      b.message(t, rank, out_block(count, block), t, to, out_block(count, block));
    }
  }
  return std::move(b).build();
}

Schedule allgather_recursive_doubling(std::int32_t p, std::int64_t count) {
  MR_EXPECT(p >= 1 && count >= 1, "bad allgather parameters");
  MR_EXPECT(is_power_of_two(p), "recursive doubling needs a power-of-two size");
  ScheduleBuilder b(p, count + p * count);
  for (std::int32_t rank = 0; rank < p; ++rank) {
    b.copy(0, rank, in_region(count), out_block(count, rank));
  }
  for (int k = 0; (std::int32_t{1} << k) < p; ++k) {
    const std::int32_t z = std::int32_t{1} << k;
    for (std::int32_t rank = 0; rank < p; ++rank) {
      const std::int32_t peer = rank ^ z;
      // Entering round k, each rank owns the z contiguous blocks of its
      // aligned group [my_base, my_base + z); it ships all of them to the
      // partner, which stores them at the same (sender-side) offsets.
      const std::int32_t my_base = rank & ~(z - 1);
      b.message(k, rank, Region{count + my_base * count, z * count}, k, peer,
                Region{count + my_base * count, z * count});
    }
  }
  return std::move(b).build();
}

Schedule allgather_bruck(std::int32_t p, std::int64_t count) {
  MR_EXPECT(p >= 1 && count >= 1, "bad allgather parameters");
  const std::int64_t c = count;
  const std::int64_t temp0 = c + p * c;
  ScheduleBuilder b(p, temp0 + p * c);
  const auto temp_block = [&](std::int32_t i) { return Region{temp0 + i * c, c}; };

  // temp[0] = own contribution.
  for (std::int32_t rank = 0; rank < p; ++rank) {
    b.copy(0, rank, in_region(c), temp_block(0));
  }
  // Doubling rounds: after round k, temp[i] = contribution of (rank+i)%p
  // for i < min(2^{k+1}, p).
  int have = 1;
  int round = 0;
  while (have < p) {
    const std::int32_t send_len = static_cast<std::int32_t>(
        std::min<std::int64_t>(have, p - have));
    for (std::int32_t rank = 0; rank < p; ++rank) {
      const std::int32_t to = mod(rank - have, p);
      b.message(round, rank, Region{temp0, send_len * c}, round, to,
                Region{temp0 + have * c, send_len * c});
    }
    have += send_len;
    ++round;
  }
  // Final rotation: temp[i] holds the block of rank (rank+i)%p.
  for (std::int32_t rank = 0; rank < p; ++rank) {
    for (std::int32_t i = 0; i < p; ++i) {
      b.copy(round, rank, temp_block(i), out_block(c, mod(rank + i, p)));
    }
  }
  return std::move(b).build();
}

}  // namespace mr::simmpi
