#include "mixradix/simmpi/collectives.hpp"
#include "src/simmpi/coll_internal.hpp"

namespace mr::simmpi {

Schedule scan_recursive_doubling(std::int32_t p, std::int64_t count) {
  MR_EXPECT(p >= 1 && count >= 1, "bad scan parameters");
  // Arena: in [0,c), out [c,2c), partial [2c,3c), temp [3c,4c).
  //   out     — inclusive prefix sum of the ranks <= me (the result);
  //   partial — sum over the contiguous window of ranks ending at me that
  //             the doubling scheme has accumulated (what gets forwarded);
  //   temp    — landing zone for the incoming window sum.
  ScheduleBuilder b(p, 4 * count);
  const std::int64_t c = count;
  const Region in{0, c}, out{c, c}, partial{2 * c, c}, temp{3 * c, c};
  for (std::int32_t rank = 0; rank < p; ++rank) {
    b.copy(0, rank, in, out);
    b.copy(0, rank, in, partial);
  }
  int round = 1;
  for (std::int32_t z = 1; z < p; z *= 2) {
    // Sends happen in `round`; the received window folds into out/partial
    // in `round + 1` (copies execute at round start, before that round's
    // sends snapshot `partial`).
    for (std::int32_t rank = 0; rank < p; ++rank) {
      if (rank + z < p) {
        b.message(round, rank, partial, round, rank + z, temp);
      }
      if (rank - z >= 0) {
        b.copy(round + 1, rank, temp, out, Combine::Sum);
        b.copy(round + 1, rank, temp, partial, Combine::Sum);
      }
    }
    round += 2;
  }
  return std::move(b).build();
}

Schedule barrier_dissemination(std::int32_t p) {
  MR_EXPECT(p >= 1, "bad barrier parameters");
  ScheduleBuilder b(p, 0);
  const Region empty{0, 0};
  for (std::int32_t z = 1, round = 0; z < p; z *= 2, ++round) {
    for (std::int32_t rank = 0; rank < p; ++rank) {
      b.message(round, rank, empty, round, detail::mod(rank + z, p), empty);
    }
  }
  return std::move(b).build();
}

}  // namespace mr::simmpi
