#include "mixradix/simmpi/collectives.hpp"
#include "src/simmpi/coll_internal.hpp"

namespace mr::simmpi {

using detail::mod;

Schedule reduce_scatter_ring(std::int32_t p, std::int64_t count) {
  MR_EXPECT(p >= 1 && count >= 1, "bad reduce_scatter parameters");
  // Arena: in [0, p*c) (block j = contribution to rank j), acc [p*c, 2p*c),
  // out [2p*c, 2p*c + c). Semantics: out on rank r == sum over ranks of
  // their in block r.
  const std::int64_t c = count;
  const std::int64_t acc0 = p * c;
  const std::int64_t out0 = 2 * p * c;
  ScheduleBuilder b(p, out0 + c);
  const auto acc_block = [&](std::int64_t i) { return Region{acc0 + i * c, c}; };
  for (std::int32_t rank = 0; rank < p; ++rank) {
    b.copy(0, rank, Region{0, p * c}, Region{acc0, p * c});
  }
  // Ring accumulation: after p-1 rounds rank r owns the fully reduced
  // block r (each partial sum travels once around the ring).
  int round = 1;
  for (std::int32_t t = 0; t < p - 1; ++t, ++round) {
    for (std::int32_t rank = 0; rank < p; ++rank) {
      const std::int32_t to = mod(rank + 1, p);
      const std::int64_t block = mod(rank - t - 1, p);
      b.message(round, rank, acc_block(block), round, to, acc_block(block),
                Combine::Sum);
    }
  }
  for (std::int32_t rank = 0; rank < p; ++rank) {
    b.copy(round, rank, acc_block(rank), Region{out0, c});
  }
  return std::move(b).build();
}

}  // namespace mr::simmpi
