#include "mixradix/simmpi/registry.hpp"

#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::simmpi {

namespace {

bool any_p(std::int32_t) { return true; }
bool power_of_two_p(std::int32_t p) { return p > 0 && (p & (p - 1)) == 0; }

/// Canonical deterministic non-uniform counts matrix for alltoallv,
/// including zero entries (the generator's trickiest case). Formerly the
/// verify generator matrix's private fixture; registered here so every
/// consumer exercises the same shape.
std::vector<std::vector<std::int64_t>> v_counts(std::int32_t p,
                                                std::int64_t count) {
  const std::int64_t unit = (count + 3) / 4;
  std::vector<std::vector<std::int64_t>> counts(static_cast<std::size_t>(p));
  for (std::int32_t i = 0; i < p; ++i) {
    auto& row = counts[static_cast<std::size_t>(i)];
    row.resize(static_cast<std::size_t>(p));
    for (std::int32_t j = 0; j < p; ++j) {
      row[static_cast<std::size_t>(j)] = ((i + 2 * j) % 4) * unit;
    }
  }
  return counts;
}

const std::vector<AlgorithmInfo>& entries() {
  static const std::vector<AlgorithmInfo> kEntries = {
      {"alltoall_pairwise", false, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t) {
         return alltoall_pairwise(p, c);
       }},
      {"alltoall_bruck", false, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t) {
         return alltoall_bruck(p, c);
       }},
      {"alltoall_linear", false, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t) {
         return alltoall_linear(p, c);
       }},
      {"allgather_ring", false, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t) {
         return allgather_ring(p, c);
       }},
      {"allgather_recursive_doubling", false, power_of_two_p,
       [](std::int32_t p, std::int64_t c, std::int32_t) {
         return allgather_recursive_doubling(p, c);
       }},
      {"allgather_bruck", false, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t) {
         return allgather_bruck(p, c);
       }},
      {"allreduce_recursive_doubling", false, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t) {
         return allreduce_recursive_doubling(p, c);
       }},
      {"allreduce_ring", false, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t) {
         return allreduce_ring(p, c);
       }},
      {"bcast_binomial", true, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t root) {
         return bcast_binomial(p, c, root);
       }},
      {"bcast_scatter_allgather", true, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t root) {
         return bcast_scatter_allgather(p, c, root);
       }},
      {"reduce_binomial", true, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t root) {
         return reduce_binomial(p, c, root);
       }},
      {"gather_linear", true, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t root) {
         return gather_linear(p, c, root);
       }},
      {"scatter_linear", true, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t root) {
         return scatter_linear(p, c, root);
       }},
      {"scatter_binomial", true, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t root) {
         return scatter_binomial(p, c, root);
       }},
      {"gather_binomial", true, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t root) {
         return gather_binomial(p, c, root);
       }},
      {"reduce_scatter_ring", false, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t) {
         return reduce_scatter_ring(p, c);
       }},
      {"scan_recursive_doubling", false, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t) {
         return scan_recursive_doubling(p, c);
       }},
      {"barrier_dissemination", false, any_p,
       [](std::int32_t p, std::int64_t, std::int32_t) {
         return barrier_dissemination(p);
       }},
      {"alltoallv_pairwise", false, any_p,
       [](std::int32_t p, std::int64_t c, std::int32_t) {
         return alltoallv_pairwise(v_counts(p, c));
       }},
  };
  return kEntries;
}

}  // namespace

const std::vector<AlgorithmInfo>& algorithm_registry() { return entries(); }

const AlgorithmInfo* find_algorithm(std::string_view name) {
  for (const AlgorithmInfo& e : entries()) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

Schedule make_algorithm(const std::string& name, std::int32_t p,
                        std::int64_t count, std::int32_t root) {
  const AlgorithmInfo* e = find_algorithm(name);
  MR_EXPECT(e != nullptr, "unknown algorithm: " + name);
  MR_EXPECT(p >= 1 && e->supported(p),
            name + " does not support p = " + std::to_string(p));
  MR_EXPECT(count >= 1, "count must be >= 1");
  MR_EXPECT(root >= 0 && root < p, "root out of range");
  return e->make(p, count, root);
}

}  // namespace mr::simmpi
