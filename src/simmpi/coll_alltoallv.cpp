#include "mixradix/simmpi/collectives.hpp"
#include "src/simmpi/coll_internal.hpp"

namespace mr::simmpi {

using detail::is_power_of_two;
using detail::mod;

Schedule alltoallv_pairwise(const std::vector<std::vector<std::int64_t>>& counts) {
  const auto p = static_cast<std::int32_t>(counts.size());
  MR_EXPECT(p >= 1, "alltoallv needs at least one rank");
  for (const auto& row : counts) {
    MR_EXPECT(static_cast<std::int32_t>(row.size()) == p,
              "counts must be a p x p matrix");
    for (std::int64_t c : row) MR_EXPECT(c >= 0, "counts must be non-negative");
  }

  // Per-rank arena: send blocks laid out by destination (prefix sums of the
  // rank's row), then recv blocks by source (prefix sums of the column).
  // The shared schedule arena is the maximum over ranks.
  std::vector<std::vector<std::int64_t>> send_off(static_cast<std::size_t>(p)),
      recv_off(static_cast<std::size_t>(p));
  std::int64_t arena = 0;
  std::vector<std::int64_t> recv_base(static_cast<std::size_t>(p));
  for (std::int32_t i = 0; i < p; ++i) {
    auto& so = send_off[static_cast<std::size_t>(i)];
    so.resize(static_cast<std::size_t>(p));
    std::int64_t off = 0;
    for (std::int32_t j = 0; j < p; ++j) {
      so[static_cast<std::size_t>(j)] = off;
      off += counts[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
    recv_base[static_cast<std::size_t>(i)] = off;
    auto& ro = recv_off[static_cast<std::size_t>(i)];
    ro.resize(static_cast<std::size_t>(p));
    for (std::int32_t j = 0; j < p; ++j) {
      ro[static_cast<std::size_t>(j)] = off;
      off += counts[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
    }
    arena = std::max(arena, off);
  }

  ScheduleBuilder b(p, arena);
  for (std::int32_t rank = 0; rank < p; ++rank) {
    const std::int64_t n =
        counts[static_cast<std::size_t>(rank)][static_cast<std::size_t>(rank)];
    if (n > 0) {
      b.copy(0, rank,
             Region{send_off[static_cast<std::size_t>(rank)][static_cast<std::size_t>(rank)], n},
             Region{recv_off[static_cast<std::size_t>(rank)][static_cast<std::size_t>(rank)], n});
    }
  }
  for (std::int32_t r = 1; r < p; ++r) {
    for (std::int32_t rank = 0; rank < p; ++rank) {
      const std::int32_t to = is_power_of_two(p) ? (rank ^ r) : mod(rank + r, p);
      const std::int64_t n =
          counts[static_cast<std::size_t>(rank)][static_cast<std::size_t>(to)];
      if (n == 0) continue;
      b.message(r, rank,
                Region{send_off[static_cast<std::size_t>(rank)][static_cast<std::size_t>(to)], n},
                r, to,
                Region{recv_off[static_cast<std::size_t>(to)][static_cast<std::size_t>(rank)], n});
    }
  }
  return std::move(b).build();
}

}  // namespace mr::simmpi
