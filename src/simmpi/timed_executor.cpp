#include "mixradix/simmpi/timed_executor.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <optional>
#include <sstream>

#include "mixradix/simnet/flow_sim.hpp"
#include "mixradix/simnet/path.hpp"
#include "mixradix/simnet/route_table.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/verify/binding.hpp"

namespace mr::simmpi {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-15;

/// One job as the engine sees it: schedule IR + precomputed CSR + loop
/// count. Built from PlanJobs directly or derived on the fly for legacy
/// JobSpecs.
struct JobView {
  const Schedule* schedule = nullptr;
  const PlanExec* exec = nullptr;
  int repetitions = 1;
  const std::vector<std::int64_t>* core_of_rank = nullptr;
  double start_time = 0;
};

/// Global (job, virtual message) key for flow cookies. Virtual message ids
/// enumerate repetitions: v = rep * messages_per_rep + base_msg, exactly
/// the ids a materialized repeat() would assign.
struct MsgKey {
  std::int32_t job;
  std::int32_t msg;
};
std::int64_t encode(MsgKey k) {
  return (static_cast<std::int64_t>(k.job) << 32) |
         static_cast<std::uint32_t>(k.msg);
}
MsgKey decode(std::int64_t cookie) {
  return MsgKey{static_cast<std::int32_t>(cookie >> 32),
                static_cast<std::int32_t>(cookie & 0xffffffff)};
}

struct MsgState {
  double sender_posted = -1;
  double receiver_posted = -1;
  bool flow_scheduled = false;
  bool transfer_done = false;
  double transfer_time = 0;
};

struct RankState {
  std::int64_t round = 0;  ///< virtual round: rep * rounds_per_rep + local.
  int outstanding = 0;     ///< unfinished sends+recvs of the current round.
  bool posted = false;
  double last_time = 0;    ///< completion time of the last finished op/round.
  bool finished = false;
};

}  // namespace

/// Everything the engine allocates, hoisted so reuse across runs is
/// alloc-free once warm: the flow simulator (with its channel lists and
/// completion heap), the route table, the event heap, per-job message and
/// rank state, and the machine's channel capacities.
struct SimWorkspace::Impl {
  simnet::FlowSim flows;
  simnet::RouteTable routes;
  std::vector<double> capacities;
  std::string fingerprint;
  std::vector<detail::Event> events;  ///< binary min-heap (Event::operator>).
  std::vector<std::vector<MsgState>> msg_state;
  std::vector<std::vector<RankState>> rank_state;
  std::vector<std::vector<simnet::RouteTable::RouteId>> msg_route;
  std::vector<double> finish;

  /// Bind to `machine`: a changed fingerprint recomputes capacities and
  /// drops interned routes; an equivalent machine only retargets the
  /// route table's reference.
  void bind(const topo::Machine& machine) {
    std::string fp = topo::machine_fingerprint(machine);
    if (fp == fingerprint) {
      routes.rebind_equivalent(machine);
      return;
    }
    fingerprint = std::move(fp);
    capacities = simnet::channel_capacities(machine);
    routes.bind(machine);
  }
};

SimWorkspace::SimWorkspace() : impl_(std::make_unique<Impl>()) {}
SimWorkspace::~SimWorkspace() = default;
SimWorkspace::SimWorkspace(SimWorkspace&&) noexcept = default;
SimWorkspace& SimWorkspace::operator=(SimWorkspace&&) noexcept = default;

namespace {

class Engine {
 public:
  Engine(const topo::Machine& machine, std::vector<JobView> jobs,
         const ExecOptions& options, SimWorkspace::Impl& ws)
      : machine_(machine),
        jobs_(std::move(jobs)),
        ws_(ws),
        reference_(options.reference) {
    ws_.bind(machine);
    ws_.flows.reset(ws_.capacities, options.completion_slack, !reference_);
    ws_.events.clear();
    const std::size_t njobs = jobs_.size();
    ws_.msg_state.resize(njobs);
    ws_.rank_state.resize(njobs);
    ws_.msg_route.resize(njobs);
    ws_.finish.assign(njobs, 0.0);
    route_hits_before_ = ws_.routes.stats().hits;
    route_misses_before_ = ws_.routes.stats().misses;
    for (std::size_t j = 0; j < njobs; ++j) {
      const JobView& job = jobs_[j];
      MR_EXPECT(job.repetitions >= 1, "repetition count must be >= 1");
      MR_EXPECT(static_cast<std::int32_t>(job.core_of_rank->size()) ==
                    job.schedule->nranks,
                "core binding size must equal the plan's nranks");
      for (std::int64_t core : *job.core_of_rank) {
        MR_EXPECT(core >= 0 && core < machine.cores(), "core id out of range");
      }
      const std::int64_t virtual_msgs =
          static_cast<std::int64_t>(job.schedule->messages.size()) *
          job.repetitions;
      MR_EXPECT(virtual_msgs <= std::numeric_limits<std::int32_t>::max(),
                "repetitions * messages overflows the message id space");
      ws_.msg_state[j].assign(static_cast<std::size_t>(virtual_msgs),
                              MsgState{});
      ws_.rank_state[j].assign(static_cast<std::size_t>(job.schedule->nranks),
                               RankState{});
      // Pre-resolve every base message's route once per (plan, binding) —
      // repetitions and StartFlow events then index straight into the
      // interned table (the reference engine re-derives per message).
      auto& routes = ws_.msg_route[j];
      routes.clear();
      if (!reference_) {
        routes.reserve(job.schedule->messages.size());
        for (const MsgInfo& m : job.schedule->messages) {
          routes.push_back(ws_.routes.route(
              (*job.core_of_rank)[static_cast<std::size_t>(m.src)],
              (*job.core_of_rank)[static_cast<std::size_t>(m.dst)]));
        }
      }
      for (std::int32_t r = 0; r < job.schedule->nranks; ++r) {
        push({job.start_time, detail::EventKind::PostRound,
              static_cast<std::int32_t>(j), r});
      }
      result_.total_messages += virtual_msgs;
    }
  }

  TimedResult run() {
    while (true) {
      const double t_evt = ws_.events.empty() ? kInf : ws_.events.front().time;
      const auto flow_next = ws_.flows.next_completion_time();
      const double t_flow = flow_next.value_or(kInf);
      if (t_evt == kInf && t_flow == kInf) break;
      if (t_flow <= t_evt + kTimeEps) {
        for (const auto& done : ws_.flows.advance_and_pop()) {
          ++result_.total_flow_events;
          on_transfer_done(decode(done.user), done.time);
        }
      } else {
        ws_.flows.advance_to(t_evt);
        // Handle every event at this timestamp before giving the flow
        // simulator a chance to recompute rates.
        while (!ws_.events.empty() && ws_.events.front().time <= t_evt + kTimeEps) {
          const detail::Event e = pop();
          ++result_.engine_stats.events_processed;
          if (e.kind == detail::EventKind::PostRound) {
            post_round(e.job, e.a, e.time);
          } else {
            start_flow(e.job, e.a);
          }
        }
      }
    }
    result_.job_finish = ws_.finish;
    for (double f : ws_.finish) {
      result_.makespan = std::max(result_.makespan, f);
    }
    result_.flow_stats = ws_.flows.stats();
    result_.engine_stats.route_cache_hits =
        ws_.routes.stats().hits - route_hits_before_;
    result_.engine_stats.route_cache_misses =
        ws_.routes.stats().misses - route_misses_before_;
    return result_;
  }

 private:
  void push(detail::Event e) {
    ws_.events.push_back(e);
    std::push_heap(ws_.events.begin(), ws_.events.end(), std::greater<>{});
    result_.engine_stats.peak_event_queue =
        std::max(result_.engine_stats.peak_event_queue,
                 static_cast<std::int64_t>(ws_.events.size()));
  }

  detail::Event pop() {
    std::pop_heap(ws_.events.begin(), ws_.events.end(), std::greater<>{});
    const detail::Event e = ws_.events.back();
    ws_.events.pop_back();
    return e;
  }

  std::int64_t messages_per_rep(std::int32_t job) const {
    return static_cast<std::int64_t>(
        jobs_[static_cast<std::size_t>(job)].schedule->messages.size());
  }

  /// Message metadata of a virtual message id (repetitions share it).
  const MsgInfo& msg_info(std::int32_t job, std::int32_t msg) const {
    const JobView& j = jobs_[static_cast<std::size_t>(job)];
    return j.schedule->messages[static_cast<std::size_t>(
        msg % messages_per_rep(job))];
  }

  simnet::RouteTable::RouteId route_of(std::int32_t job,
                                       std::int32_t msg) const {
    return ws_.msg_route[static_cast<std::size_t>(job)][static_cast<std::size_t>(
        msg % messages_per_rep(job))];
  }

  bool is_eager(std::int32_t job, std::int32_t msg) const {
    const JobView& j = jobs_[static_cast<std::size_t>(job)];
    return j.exec->msg_bytes[static_cast<std::size_t>(
               msg % messages_per_rep(job))] <= machine_.costs().eager_threshold;
  }

  std::int64_t core_of(std::int32_t job, std::int32_t rank) const {
    return (*jobs_[static_cast<std::size_t>(job)]
                 .core_of_rank)[static_cast<std::size_t>(rank)];
  }

  /// CPU-serial portion of a round, from the plan's precomputed cost
  /// inputs: algorithm compute + per-message overheads + local copy costs.
  double round_cpu_time(const PlanExec& exec, std::int64_t round) const {
    const auto& costs = machine_.costs();
    const auto i = static_cast<std::size_t>(round);
    double cpu = exec.round_compute[i];
    cpu += costs.send_overhead *
           static_cast<double>(exec.send_begin[i + 1] - exec.send_begin[i]);
    cpu += costs.recv_overhead *
           static_cast<double>(exec.recv_begin[i + 1] - exec.recv_begin[i]);
    cpu += static_cast<double>(exec.round_copy_doubles[i]) * 8.0 *
           costs.reduce_seconds_per_byte;
    return cpu;
  }

  void post_round(std::int32_t job, std::int32_t rank, double t) {
    const auto j = static_cast<std::size_t>(job);
    const JobView& view = jobs_[j];
    const PlanExec& exec = *view.exec;
    auto& state = ws_.rank_state[j][static_cast<std::size_t>(rank)];
    const std::int64_t rounds_per_rep = exec.rounds_of(rank);
    const std::int64_t total_rounds = rounds_per_rep * view.repetitions;
    if (state.round >= total_rounds) {
      state.finished = true;
      state.last_time = t;
      on_rank_finished(job, t);
      return;
    }
    // Flattened CSR index of this round and the repetition's message shift.
    const std::int64_t gi =
        exec.rank_rounds_begin[static_cast<std::size_t>(rank)] +
        state.round % rounds_per_rep;
    const std::int32_t shift = static_cast<std::int32_t>(
        state.round / rounds_per_rep * messages_per_rep(job));
    const auto i = static_cast<std::size_t>(gi);
    const double ready = t + round_cpu_time(exec, gi);
    state.posted = true;
    state.outstanding = static_cast<int>(
        (exec.send_begin[i + 1] - exec.send_begin[i]) +
        (exec.recv_begin[i + 1] - exec.recv_begin[i]));

    for (std::int64_t k = exec.send_begin[i]; k < exec.send_begin[i + 1]; ++k) {
      const std::int32_t msg = exec.send_msg[static_cast<std::size_t>(k)] + shift;
      auto& ms = ws_.msg_state[j][static_cast<std::size_t>(msg)];
      ms.sender_posted = ready;
      if (is_eager(job, msg)) {
        // Fire-and-forget: the flow departs regardless of the receiver and
        // the sender's op completes at the post.
        schedule_flow(job, msg, ready);
        op_complete(job, rank, ready);
      } else if (ms.receiver_posted >= 0) {
        schedule_flow(job, msg, std::max(ready, ms.receiver_posted));
      }
    }
    for (std::int64_t k = exec.recv_begin[i]; k < exec.recv_begin[i + 1]; ++k) {
      const std::int32_t msg = exec.recv_msg[static_cast<std::size_t>(k)] + shift;
      auto& ms = ws_.msg_state[j][static_cast<std::size_t>(msg)];
      ms.receiver_posted = ready;
      if (ms.transfer_done) {
        // Eager payload already arrived; completing costs nothing extra.
        op_complete(job, rank, std::max(ready, ms.transfer_time));
      } else if (!is_eager(job, msg) && ms.sender_posted >= 0 &&
                 !ms.flow_scheduled) {
        schedule_flow(job, msg, std::max(ready, ms.sender_posted));
      }
    }
    // Ops completing synchronously above (eager sends, already-arrived
    // receives) may have driven outstanding to zero and advanced the round
    // from inside op_complete — in that case posted is already false and
    // advancing again here would double-post the next round.
    if (state.posted && state.outstanding == 0) {
      advance_rank(job, rank, ready);
    }
  }

  void schedule_flow(std::int32_t job, std::int32_t msg, double post_time) {
    auto& ms = ws_.msg_state[static_cast<std::size_t>(job)]
                            [static_cast<std::size_t>(msg)];
    MR_ASSERT_INTERNAL(!ms.flow_scheduled);
    ms.flow_scheduled = true;
    const double latency =
        reference_
            ? machine_.path_latency(core_of(job, msg_info(job, msg).src),
                                    core_of(job, msg_info(job, msg).dst))
            : ws_.routes.latency(route_of(job, msg));
    push({post_time + latency, detail::EventKind::StartFlow, job, msg});
  }

  void start_flow(std::int32_t job, std::int32_t msg) {
    const MsgInfo& m = msg_info(job, msg);
    if (reference_) {
      ws_.flows.add_flow(
          simnet::flow_channels(machine_, core_of(job, m.src),
                                core_of(job, m.dst)),
          static_cast<double>(m.bytes()), encode({job, msg}));
    } else {
      ws_.flows.add_flow(ws_.routes.channels(route_of(job, msg)),
                         static_cast<double>(m.bytes()), encode({job, msg}));
    }
  }

  void on_transfer_done(MsgKey key, double t) {
    auto& ms = ws_.msg_state[static_cast<std::size_t>(key.job)]
                            [static_cast<std::size_t>(key.msg)];
    ms.transfer_done = true;
    ms.transfer_time = t;
    const MsgInfo& m = msg_info(key.job, key.msg);
    if (!is_eager(key.job, key.msg)) {
      // Rendezvous: the sender's op was pending on the transfer.
      op_complete(key.job, m.src, t);
    }
    if (ms.receiver_posted >= 0) {
      op_complete(key.job, m.dst, t);
    }
    // else: eager arrival before the receiver posted; the receive completes
    // when the receiver posts its round (handled in post_round).
  }

  void op_complete(std::int32_t job, std::int32_t rank, double t) {
    auto& state = ws_.rank_state[static_cast<std::size_t>(job)]
                                [static_cast<std::size_t>(rank)];
    MR_ASSERT_INTERNAL(state.posted && state.outstanding > 0);
    state.last_time = std::max(state.last_time, t);
    if (--state.outstanding == 0) {
      advance_rank(job, rank, state.last_time);
    }
  }

  void advance_rank(std::int32_t job, std::int32_t rank, double t) {
    auto& state = ws_.rank_state[static_cast<std::size_t>(job)]
                                [static_cast<std::size_t>(rank)];
    state.posted = false;
    ++state.round;
    push({t, detail::EventKind::PostRound, job, rank});
  }

  void on_rank_finished(std::int32_t job, double t) {
    auto& finish = ws_.finish[static_cast<std::size_t>(job)];
    finish = std::max(finish, t);
  }

  const topo::Machine& machine_;
  std::vector<JobView> jobs_;
  SimWorkspace::Impl& ws_;
  bool reference_ = false;
  std::int64_t route_hits_before_ = 0;
  std::int64_t route_misses_before_ = 0;
  TimedResult result_;
};

/// Non-owning internal entry point: every public overload lands here with
/// borrowed schedule/exec/binding pointers. A private workspace backs the
/// run when the caller supplied none — and always in reference mode, whose
/// contract is fresh allocations and a cold route path.
TimedResult run_timed_views(const topo::Machine& machine,
                            std::vector<JobView> views,
                            const ExecOptions& options) {
  if (options.preverify_binding) {
    std::vector<verify::binding::JobBinding> bindings;
    bindings.reserve(views.size());
    for (const JobView& view : views) {
      bindings.push_back(verify::binding::JobBinding{
          view.schedule, view.exec, view.repetitions, view.core_of_rank,
          view.start_time});
    }
    // Diagnostics are all we need; skip the load report and bound.
    verify::binding::Options opts;
    opts.load_report = false;
    opts.lower_bound = false;
    const verify::binding::Result result =
        verify::binding::analyze_jobs(machine, bindings, opts);
    if (!result.clean()) {
      throw mr::invalid_argument("binding preverification failed:\n" +
                                 result.to_string());
    }
  }
  std::optional<SimWorkspace> local;
  SimWorkspace* ws = options.workspace;
  if (ws == nullptr || options.reference) {
    local.emplace();
    ws = &*local;
  }
  Engine engine(machine, std::move(views), options, ws->impl());
  return engine.run();
}

}  // namespace

TimedResult run_timed(const topo::Machine& machine,
                      const std::vector<PlanJob>& jobs,
                      const ExecOptions& options) {
  MR_EXPECT(!jobs.empty(), "need at least one job");
  std::vector<JobView> views;
  views.reserve(jobs.size());
  for (const PlanJob& job : jobs) {
    MR_EXPECT(job.plan != nullptr, "job without plan");
    views.push_back(JobView{&job.plan->schedule, &job.plan->exec,
                            job.plan->repetitions, &job.core_of_rank,
                            job.start_time});
  }
  return run_timed_views(machine, std::move(views), options);
}

TimedResult run_timed(const topo::Machine& machine,
                      const std::vector<PlanJob>& jobs,
                      double completion_slack) {
  ExecOptions options;
  options.completion_slack = completion_slack;
  return run_timed(machine, jobs, options);
}

TimedResult run_timed(const topo::Machine& machine,
                      const std::vector<JobSpec>& jobs,
                      const ExecOptions& options) {
  MR_EXPECT(!jobs.empty(), "need at least one job");
  // Ad-hoc schedules have not been through plan compilation; validate here
  // (plans are validated by their builders at compile time).
  std::vector<PlanExec> execs;
  execs.reserve(jobs.size());
  std::vector<JobView> views;
  views.reserve(jobs.size());
  for (const JobSpec& job : jobs) {
    MR_EXPECT(job.schedule != nullptr, "job without schedule");
    MR_EXPECT(job.schedule->validate().empty(), "malformed schedule");
    execs.push_back(derive_exec(*job.schedule));
    views.push_back(JobView{job.schedule, &execs.back(), 1, &job.core_of_rank,
                            job.start_time});
  }
  return run_timed_views(machine, std::move(views), options);
}

TimedResult run_timed(const topo::Machine& machine,
                      const std::vector<JobSpec>& jobs,
                      double completion_slack) {
  ExecOptions options;
  options.completion_slack = completion_slack;
  return run_timed(machine, jobs, options);
}

double run_timed_single(const topo::Machine& machine, const Schedule& schedule,
                        std::vector<std::int64_t> core_of_rank,
                        double completion_slack) {
  JobSpec job;
  job.schedule = &schedule;
  job.core_of_rank = std::move(core_of_rank);
  const TimedResult result = run_timed(machine, std::vector<JobSpec>{job},
                                       completion_slack);
  return result.makespan;
}

double run_timed_plan_single(const topo::Machine& machine, const Plan& plan,
                             std::vector<std::int64_t> core_of_rank,
                             double completion_slack) {
  ExecOptions options;
  options.completion_slack = completion_slack;
  std::vector<JobView> views;
  views.push_back(JobView{&plan.schedule, &plan.exec, plan.repetitions,
                          &core_of_rank, 0.0});
  return run_timed_views(machine, std::move(views), options).makespan;
}

}  // namespace mr::simmpi
