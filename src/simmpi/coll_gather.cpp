#include "mixradix/simmpi/collectives.hpp"
#include "src/simmpi/coll_internal.hpp"

namespace mr::simmpi {

Schedule gather_linear(std::int32_t p, std::int64_t count, std::int32_t root) {
  MR_EXPECT(p >= 1 && count >= 1, "bad gather parameters");
  MR_EXPECT(root >= 0 && root < p, "root out of range");
  // Arena: in [0,c); out [c, c+p*c) (meaningful at root).
  ScheduleBuilder b(p, count + p * count);
  const Region in{0, count};
  b.copy(0, root, in, Region{count + root * count, count});
  for (std::int32_t rank = 0; rank < p; ++rank) {
    if (rank == root) continue;
    b.message(0, rank, in, 0, root, Region{count + rank * count, count});
  }
  return std::move(b).build();
}

Schedule scatter_linear(std::int32_t p, std::int64_t count, std::int32_t root) {
  MR_EXPECT(p >= 1 && count >= 1, "bad scatter parameters");
  MR_EXPECT(root >= 0 && root < p, "root out of range");
  // Arena: in [0, p*c) (meaningful at root); out [p*c, p*c + c).
  ScheduleBuilder b(p, p * count + count);
  const Region out{p * count, count};
  b.copy(0, root, Region{root * count, count}, out);
  for (std::int32_t rank = 0; rank < p; ++rank) {
    if (rank == root) continue;
    b.message(0, root, Region{rank * count, count}, 0, rank, out);
  }
  return std::move(b).build();
}

}  // namespace mr::simmpi
