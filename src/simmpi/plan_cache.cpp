#include "mixradix/simmpi/plan_cache.hpp"

#include <functional>
#include <utility>

namespace mr::simmpi {

std::size_t PlanKeyHash::operator()(const PlanKey& key) const noexcept {
  std::size_t h = std::hash<std::string>{}(key.algorithm);
  const auto mix = [&h](std::uint64_t v) {
    // splitmix64-style avalanche, folded into the running hash.
    v += 0x9e3779b97f4a7c15ull + h;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    h = static_cast<std::size_t>(v ^ (v >> 31));
  };
  mix(static_cast<std::uint64_t>(key.nranks));
  mix(static_cast<std::uint64_t>(key.count));
  mix(static_cast<std::uint64_t>(key.root));
  mix(static_cast<std::uint64_t>(key.repetitions));
  return h;
}

std::shared_ptr<const Plan> PlanCache::get(const PlanKey& key) {
  std::promise<std::shared_ptr<const Plan>> promise;
  std::shared_future<std::shared_ptr<const Plan>> future;
  bool compile_here = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      future = it->second;
    } else {
      ++misses_;
      future = promise.get_future().share();
      map_.emplace(key, future);
      compile_here = true;
    }
  }
  if (compile_here) {
    try {
      promise.set_value(std::make_shared<const Plan>(
          compile_plan(key.algorithm, key.nranks, key.count, key.root,
                       key.repetitions)));
    } catch (...) {
      // Deterministic failures (unknown algorithm, unsupported p) stay
      // cached: every requester of this key sees the same exception.
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, map_.size()};
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

PlanCache& PlanCache::shared() {
  static PlanCache cache;
  return cache;
}

}  // namespace mr::simmpi
