#include "mixradix/simmpi/plan_cache.hpp"

#include <functional>
#include <utility>

namespace mr::simmpi {

std::size_t PlanKeyHash::operator()(const PlanKey& key) const noexcept {
  std::size_t h = std::hash<std::string>{}(key.algorithm);
  const auto mix = [&h](std::uint64_t v) {
    // splitmix64-style avalanche, folded into the running hash.
    v += 0x9e3779b97f4a7c15ull + h;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    h = static_cast<std::size_t>(v ^ (v >> 31));
  };
  mix(static_cast<std::uint64_t>(key.nranks));
  mix(static_cast<std::uint64_t>(key.count));
  mix(static_cast<std::uint64_t>(key.root));
  mix(static_cast<std::uint64_t>(key.repetitions));
  return h;
}

std::shared_ptr<const Plan> PlanCache::get(const PlanKey& key) {
  std::promise<std::shared_ptr<const Plan>> promise;
  std::shared_future<std::shared_ptr<const Plan>> future;
  bool compile_here = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      future = it->second.plan;
      // Touch: move to the recency front.
      lru_.splice(lru_.begin(), lru_, it->second.recency);
    } else {
      ++misses_;
      future = promise.get_future().share();
      lru_.push_front(key);
      map_.emplace(key, Entry{future, lru_.begin()});
      enforce_capacity_locked();
      compile_here = true;
    }
  }
  if (compile_here) {
    try {
      promise.set_value(std::make_shared<const Plan>(
          compile_plan(key.algorithm, key.nranks, key.count, key.root,
                       key.repetitions)));
    } catch (...) {
      // Deterministic failures (unknown algorithm, unsupported p) stay
      // cached: every requester of this key sees the same exception.
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, evictions_, map_.size()};
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

void PlanCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  enforce_capacity_locked();
}

std::size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void PlanCache::enforce_capacity_locked() {
  if (capacity_ == 0) return;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

PlanCache& PlanCache::shared() {
  static PlanCache cache;
  return cache;
}

}  // namespace mr::simmpi
