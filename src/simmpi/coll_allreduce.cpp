#include "mixradix/simmpi/collectives.hpp"
#include "src/simmpi/coll_internal.hpp"

namespace mr::simmpi {

using detail::chunk_begin;
using detail::chunk_len;
using detail::is_power_of_two;
using detail::mod;

namespace {

// Arena: in [0,c), out/accumulator [c,2c), temp [2c,3c).
Region in_region(std::int64_t c) { return {0, c}; }
Region acc_region(std::int64_t c) { return {c, c}; }

}  // namespace

Schedule allreduce_recursive_doubling(std::int32_t p, std::int64_t count) {
  MR_EXPECT(p >= 1 && count >= 1, "bad allreduce parameters");
  ScheduleBuilder b(p, 3 * count);
  for (std::int32_t rank = 0; rank < p; ++rank) {
    b.copy(0, rank, in_region(count), acc_region(count));
  }

  // Non-power-of-two handling (Rabenseifner's standard trick): with
  // r = p - 2^k extra ranks, the first 2r ranks fold pairwise (even -> odd)
  // so that a power-of-two subgroup remains; results are unfolded at the end.
  std::int32_t pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const std::int32_t rem = p - pof2;

  // Survivor id of a rank in the power-of-two phase, or -1 for folded evens.
  const auto survivor = [&](std::int32_t rank) -> std::int32_t {
    if (rank < 2 * rem) return (rank % 2 == 1) ? rank / 2 : -1;
    return rank - rem;
  };
  const auto rank_of_survivor = [&](std::int32_t s) -> std::int32_t {
    return s < rem ? 2 * s + 1 : s + rem;
  };

  int round = 1;
  if (rem > 0) {
    for (std::int32_t e = 0; e < 2 * rem; e += 2) {
      b.message(round, e, acc_region(count), round, e + 1, acc_region(count),
                Combine::Sum);
    }
    ++round;
  }

  for (std::int32_t z = 1; z < pof2; z *= 2, ++round) {
    for (std::int32_t s = 0; s < pof2; ++s) {
      const std::int32_t rank = rank_of_survivor(s);
      const std::int32_t peer = rank_of_survivor(s ^ z);
      // Sends snapshot the accumulator before receives combine into it
      // (executor ordering), so the symmetric exchange is race-free.
      b.message(round, rank, acc_region(count), round, peer, acc_region(count),
                Combine::Sum);
    }
  }

  if (rem > 0) {
    for (std::int32_t e = 0; e < 2 * rem; e += 2) {
      b.message(round, e + 1, acc_region(count), round, e, acc_region(count),
                Combine::Replace);
    }
  }
  (void)survivor;
  return std::move(b).build();
}

Schedule allreduce_ring(std::int32_t p, std::int64_t count) {
  MR_EXPECT(p >= 1 && count >= 1, "bad allreduce parameters");
  ScheduleBuilder b(p, 3 * count);
  const std::int64_t c = count;
  for (std::int32_t rank = 0; rank < p; ++rank) {
    b.copy(0, rank, in_region(c), acc_region(c));
  }
  if (p == 1) return std::move(b).build();

  const auto acc_chunk = [&](std::int64_t i) {
    return Region{c + chunk_begin(c, p, i), chunk_len(c, p, i)};
  };

  // Phase 1 — ring reduce-scatter: after p-1 rounds, rank owns the fully
  // reduced chunk (rank + 1) % p.
  int round = 1;
  for (std::int32_t t = 0; t < p - 1; ++t, ++round) {
    for (std::int32_t rank = 0; rank < p; ++rank) {
      const std::int32_t to = mod(rank + 1, p);
      const std::int64_t send_chunk = mod(rank - t, p);
      if (chunk_len(c, p, send_chunk) == 0) continue;
      b.message(round, rank, acc_chunk(send_chunk), round, to,
                acc_chunk(send_chunk), Combine::Sum);
    }
  }

  // Phase 2 — ring allgather of the reduced chunks.
  for (std::int32_t t = 0; t < p - 1; ++t, ++round) {
    for (std::int32_t rank = 0; rank < p; ++rank) {
      const std::int32_t to = mod(rank + 1, p);
      const std::int64_t send_chunk = mod(rank + 1 - t, p);
      if (chunk_len(c, p, send_chunk) == 0) continue;
      b.message(round, rank, acc_chunk(send_chunk), round, to,
                acc_chunk(send_chunk), Combine::Replace);
    }
  }
  return std::move(b).build();
}

}  // namespace mr::simmpi
