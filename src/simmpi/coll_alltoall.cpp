#include "mixradix/simmpi/collectives.hpp"
#include "src/simmpi/coll_internal.hpp"

namespace mr::simmpi {

using detail::ceil_log2;
using detail::is_power_of_two;
using detail::mod;

namespace {

// Arena layout shared by the alltoall variants (offsets in doubles):
//   in   [0, p*c)         block j = data for rank j
//   out  [p*c, 2*p*c)     block j = data from rank j
// Bruck appends: temp [2pc, 3pc), pack [3pc, 3pc + ceil(p/2)*c),
//                unpack [.., + ceil(p/2)*c).
Region in_block(std::int64_t c, std::int32_t j) { return {j * c, c}; }
Region out_block(std::int32_t p, std::int64_t c, std::int32_t j) {
  return {(p + j) * c, c};
}

}  // namespace

Schedule alltoall_pairwise(std::int32_t p, std::int64_t count) {
  MR_EXPECT(p >= 1 && count >= 1, "bad alltoall parameters");
  ScheduleBuilder b(p, 2 * p * count);
  for (std::int32_t rank = 0; rank < p; ++rank) {
    // Own block moves locally in the first round.
    b.copy(0, rank, in_block(count, rank), out_block(p, count, rank));
  }
  for (std::int32_t r = 1; r < p; ++r) {
    for (std::int32_t rank = 0; rank < p; ++rank) {
      // XOR partners when possible keep each round a perfect matching;
      // otherwise the classic shifted send/recv pair.
      const std::int32_t send_to =
          is_power_of_two(p) ? (rank ^ r) : mod(rank + r, p);
      // Round r-1 because round 0 is the local copy round... rounds align:
      // use round index r so sends/recvs of step r share a round.
      b.message(r, rank, in_block(count, send_to), r, send_to,
                out_block(p, count, rank));
    }
  }
  return std::move(b).build();
}

Schedule alltoall_linear(std::int32_t p, std::int64_t count) {
  MR_EXPECT(p >= 1 && count >= 1, "bad alltoall parameters");
  ScheduleBuilder b(p, 2 * p * count);
  for (std::int32_t rank = 0; rank < p; ++rank) {
    b.copy(0, rank, in_block(count, rank), out_block(p, count, rank));
    for (std::int32_t peer = 0; peer < p; ++peer) {
      if (peer == rank) continue;
      // All posted in round 0 on both sides: the waitall-everything variant.
      b.message(0, rank, in_block(count, peer), 0, peer,
                out_block(p, count, rank));
    }
  }
  // Deduplicate: the loop above adds each directed message once (owned by
  // its sender), so nothing further to do.
  return std::move(b).build();
}

Schedule alltoall_bruck(std::int32_t p, std::int64_t count) {
  MR_EXPECT(p >= 1 && count >= 1, "bad alltoall parameters");
  const std::int64_t c = count;
  const std::int64_t half_blocks = (p + 1) / 2;
  const std::int64_t temp0 = 2 * p * c;
  const std::int64_t pack0 = 3 * p * c;
  const std::int64_t unpack0 = pack0 + half_blocks * c;
  ScheduleBuilder b(p, unpack0 + half_blocks * c);

  const auto temp_block = [&](std::int32_t i) { return Region{temp0 + i * c, c}; };

  // Phase 1: local rotation. temp[i] = in[(rank + i) % p].
  for (std::int32_t rank = 0; rank < p; ++rank) {
    for (std::int32_t i = 0; i < p; ++i) {
      b.copy(0, rank, in_block(c, mod(rank + i, p)), temp_block(i));
    }
  }

  // Phase 2: log rounds. In round k, blocks whose index has bit k set are
  // packed and shipped to rank + 2^k; the mirror blocks arrive from
  // rank - 2^k and are unpacked into the same positions.
  const int rounds = ceil_log2(p);
  for (int k = 0; k < rounds; ++k) {
    const std::int32_t z = std::int32_t{1} << k;
    // Which block indices move this round (same for every rank).
    std::vector<std::int32_t> moved;
    for (std::int32_t i = 0; i < p; ++i) {
      if (i & z) moved.push_back(i);
    }
    if (moved.empty()) continue;
    const auto nblk = static_cast<std::int64_t>(moved.size());
    const int round = 1 + 2 * k;  // pack in this round, unpack in the next
    for (std::int32_t rank = 0; rank < p; ++rank) {
      for (std::int64_t m = 0; m < nblk; ++m) {
        b.copy(round, rank, temp_block(moved[static_cast<std::size_t>(m)]),
               Region{pack0 + m * c, c});
      }
      b.message(round, rank, Region{pack0, nblk * c}, round, mod(rank + z, p),
                Region{unpack0, nblk * c});
    }
    for (std::int32_t rank = 0; rank < p; ++rank) {
      for (std::int64_t m = 0; m < nblk; ++m) {
        b.copy(round + 1, rank, Region{unpack0 + m * c, c},
               temp_block(moved[static_cast<std::size_t>(m)]));
      }
    }
  }

  // Phase 3: inverse rotation into the output. After phase 2, temp[i] on
  // `rank` holds the block that rank (rank + i) % p originally addressed
  // to... the final placement is verified by the DataExecutor test:
  // out[src] = temp[(src - rank + p) % p] reversed within blocks moved —
  // concretely the standard result is out[(rank - i + p) % p] = temp[i].
  const int final_round = 1 + 2 * rounds;
  for (std::int32_t rank = 0; rank < p; ++rank) {
    for (std::int32_t i = 0; i < p; ++i) {
      b.copy(final_round, rank, temp_block(i), out_block(p, c, mod(rank - i, p)));
    }
  }
  return std::move(b).build();
}

}  // namespace mr::simmpi
