#include "mixradix/simmpi/collectives.hpp"
#include "src/simmpi/coll_internal.hpp"

namespace mr::simmpi {

using detail::ceil_log2;
using detail::chunk_begin;
using detail::chunk_len;
using detail::mod;

// Arena: buf [0, c) — input at root, output everywhere.

Schedule bcast_binomial(std::int32_t p, std::int64_t count, std::int32_t root) {
  MR_EXPECT(p >= 1 && count >= 1, "bad bcast parameters");
  MR_EXPECT(root >= 0 && root < p, "root out of range");
  ScheduleBuilder b(p, count);
  const Region buf{0, count};
  const int rounds = ceil_log2(p);
  // Work in root-relative rank space: vr 0 is the root. In round k every
  // vr < 2^k forwards to vr + 2^k. A rank's receive happens in the same
  // global round its parent sends, keeping the tree pipelined.
  for (int k = 0; k < rounds; ++k) {
    const std::int32_t z = std::int32_t{1} << k;
    for (std::int32_t vr = 0; vr < z && vr + z < p; ++vr) {
      const std::int32_t src = mod(root + vr, p);
      const std::int32_t dst = mod(root + vr + z, p);
      b.message(k, src, buf, k, dst, buf);
    }
  }
  return std::move(b).build();
}

Schedule bcast_scatter_allgather(std::int32_t p, std::int64_t count,
                                 std::int32_t root) {
  MR_EXPECT(p >= 1 && count >= 1, "bad bcast parameters");
  MR_EXPECT(root >= 0 && root < p, "root out of range");
  ScheduleBuilder b(p, count);
  if (p == 1) return std::move(b).build();

  // Van de Geijn: the root scatters chunk i to (root + i) % p (binomial in
  // root-relative space would be better asymptotically; linear keeps the
  // generator simple and the bandwidth profile identical), then a ring
  // allgather of chunks completes the broadcast.
  const auto chunk = [&](std::int64_t i) {
    return Region{chunk_begin(count, p, i), chunk_len(count, p, i)};
  };
  for (std::int32_t i = 1; i < p; ++i) {
    if (chunk(i).count == 0) continue;
    b.message(0, root, chunk(i), 0, mod(root + i, p), chunk(i));
  }
  // Ring allgather over root-relative positions: vr owns chunk vr.
  for (std::int32_t t = 0; t < p - 1; ++t) {
    for (std::int32_t vr = 0; vr < p; ++vr) {
      const std::int64_t send_chunk = mod(vr - t, p);
      if (chunk(send_chunk).count == 0) continue;
      const std::int32_t src = mod(root + vr, p);
      const std::int32_t dst = mod(root + vr + 1, p);
      b.message(1 + t, src, chunk(send_chunk), 1 + t, dst, chunk(send_chunk));
    }
  }
  return std::move(b).build();
}

}  // namespace mr::simmpi
