#include "mixradix/simmpi/schedule.hpp"

#include <algorithm>

#include "mixradix/util/expect.hpp"
#ifdef MIXRADIX_VERIFY_SCHEDULES
#include "mixradix/verify/verify.hpp"
#endif

namespace mr::simmpi {

std::int64_t Schedule::total_bytes() const {
  std::int64_t total = 0;
  for (const auto& m : messages) total += m.bytes();
  return total;
}

namespace detail {

namespace {
thread_local int t_plan_compile_depth = 0;
}  // namespace

PlanCompileScope::PlanCompileScope() noexcept { ++t_plan_compile_depth; }
PlanCompileScope::~PlanCompileScope() { --t_plan_compile_depth; }

bool plan_compile_active() noexcept { return t_plan_compile_depth > 0; }

}  // namespace detail

namespace {

bool region_ok(const Region& r, std::int64_t arena) {
  return r.offset >= 0 && r.count >= 0 && r.offset + r.count <= arena;
}

}  // namespace

std::string Schedule::validate() const {
  if (nranks <= 0) return "schedule has no ranks";
  if (static_cast<std::int32_t>(programs.size()) != nranks) {
    return "program count != nranks";
  }
  std::vector<int> sent(messages.size(), 0);
  std::vector<int> received(messages.size(), 0);
  for (std::size_t m = 0; m < messages.size(); ++m) {
    const auto& msg = messages[m];
    if (msg.src < 0 || msg.src >= nranks || msg.dst < 0 || msg.dst >= nranks) {
      return "message " + std::to_string(m) + " has bad endpoints";
    }
    if (!region_ok(msg.src_region, arena_size) || !region_ok(msg.dst_region, arena_size)) {
      return "message " + std::to_string(m) + " region out of arena";
    }
    if (msg.src_region.count != msg.dst_region.count) {
      return "message " + std::to_string(m) + " src/dst count mismatch";
    }
  }
  for (std::int32_t rank = 0; rank < nranks; ++rank) {
    const auto& rounds = programs[static_cast<std::size_t>(rank)].rounds;
    for (std::size_t k = 0; k < rounds.size(); ++k) {
      const auto& round = rounds[k];
      const std::string at =
          "rank " + std::to_string(rank) + " round " + std::to_string(k);
      for (const auto& op : round.sends) {
        if (op.msg < 0 || static_cast<std::size_t>(op.msg) >= messages.size()) {
          return "send op on " + at + " references unknown message " +
                 std::to_string(op.msg);
        }
        if (messages[static_cast<std::size_t>(op.msg)].src != rank) {
          return "send op on " + at + " for message " + std::to_string(op.msg) +
                 " owned by rank " +
                 std::to_string(messages[static_cast<std::size_t>(op.msg)].src);
        }
        ++sent[static_cast<std::size_t>(op.msg)];
      }
      for (const auto& op : round.recvs) {
        if (op.msg < 0 || static_cast<std::size_t>(op.msg) >= messages.size()) {
          return "recv op on " + at + " references unknown message " +
                 std::to_string(op.msg);
        }
        if (messages[static_cast<std::size_t>(op.msg)].dst != rank) {
          return "recv op on " + at + " for message " + std::to_string(op.msg) +
                 " addressed to rank " +
                 std::to_string(messages[static_cast<std::size_t>(op.msg)].dst);
        }
        ++received[static_cast<std::size_t>(op.msg)];
      }
      for (const auto& op : round.copies) {
        if (!region_ok(op.src, arena_size) || !region_ok(op.dst, arena_size)) {
          return "copy on " + at + " has a region out of arena";
        }
        if (op.src.count != op.dst.count) {
          return "copy on " + at + " has mismatched src/dst counts";
        }
      }
      if (round.compute_seconds < 0) {
        return "negative compute time on " + at;
      }
    }
  }
  for (std::size_t m = 0; m < messages.size(); ++m) {
    if (sent[m] != 1) {
      return "message " + std::to_string(m) + " (rank " +
             std::to_string(messages[m].src) + " -> rank " +
             std::to_string(messages[m].dst) + ") sent " +
             std::to_string(sent[m]) + " times";
    }
    if (received[m] != 1) {
      return "message " + std::to_string(m) + " (rank " +
             std::to_string(messages[m].src) + " -> rank " +
             std::to_string(messages[m].dst) + ") received " +
             std::to_string(received[m]) + " times";
    }
  }
  return {};
}

ScheduleBuilder::ScheduleBuilder(std::int32_t nranks, std::int64_t arena_size) {
  MR_EXPECT(nranks >= 1, "schedule needs at least one rank");
  MR_EXPECT(arena_size >= 0, "arena size must be non-negative");
  schedule_.nranks = nranks;
  schedule_.arena_size = arena_size;
  schedule_.programs.resize(static_cast<std::size_t>(nranks));
}

Round& ScheduleBuilder::round_of(std::int32_t rank, int round) {
  MR_EXPECT(rank >= 0 && rank < schedule_.nranks, "rank out of range");
  MR_EXPECT(round >= 0, "round index must be non-negative");
  auto& rounds = schedule_.programs[static_cast<std::size_t>(rank)].rounds;
  if (rounds.size() <= static_cast<std::size_t>(round)) {
    rounds.resize(static_cast<std::size_t>(round) + 1);
  }
  return rounds[static_cast<std::size_t>(round)];
}

void ScheduleBuilder::message(int send_round, std::int32_t src, Region src_region,
                              int recv_round, std::int32_t dst, Region dst_region,
                              Combine combine) {
  MR_EXPECT(src != dst, "self-messages should be local copies");
  const auto id = static_cast<std::int32_t>(schedule_.messages.size());
  schedule_.messages.push_back(MsgInfo{src, dst, src_region, dst_region, combine});
  round_of(src, send_round).sends.push_back(SendOp{id});
  round_of(dst, recv_round).recvs.push_back(RecvOp{id});
}

void ScheduleBuilder::copy(int round, std::int32_t rank, Region src, Region dst,
                           Combine combine) {
  round_of(rank, round).copies.push_back(CopyOp{src, dst, combine});
}

void ScheduleBuilder::compute(int round, std::int32_t rank, double seconds) {
  MR_EXPECT(seconds >= 0, "compute time must be non-negative");
  round_of(rank, round).compute_seconds += seconds;
}

Schedule ScheduleBuilder::build() && {
  const std::string error = schedule_.validate();
  MR_EXPECT(error.empty(), "generated schedule is malformed: " + error);
#ifdef MIXRADIX_VERIFY_SCHEDULES
  // Debug builds prove deadlock/race/conservation freedom of every schedule
  // a generator emits, at the point of generation. Plan compilation defers
  // this to its own single whole-plan analysis (see PlanCompileScope).
  if (!detail::plan_compile_active()) {
    const verify::Report report = verify::analyze(schedule_);
    MR_EXPECT(report.clean(),
              "generated schedule fails static verification:\n" + report.to_string());
  }
#endif
  return std::move(schedule_);
}

Schedule repeat(const Schedule& schedule, int times) {
  MR_EXPECT(times >= 1, "repetition count must be >= 1");
  if (times == 1) return schedule;
  Schedule out;
  out.nranks = schedule.nranks;
  out.arena_size = schedule.arena_size;
  const auto msgs = static_cast<std::int32_t>(schedule.messages.size());
  out.messages.reserve(static_cast<std::size_t>(msgs) * times);
  for (int it = 0; it < times; ++it) {
    out.messages.insert(out.messages.end(), schedule.messages.begin(),
                        schedule.messages.end());
  }
  out.programs.resize(schedule.programs.size());
  for (std::size_t rank = 0; rank < schedule.programs.size(); ++rank) {
    auto& prog = out.programs[rank];
    for (int it = 0; it < times; ++it) {
      const std::int32_t shift = msgs * it;
      for (const auto& round : schedule.programs[rank].rounds) {
        Round r = round;
        for (auto& op : r.sends) op.msg += shift;
        for (auto& op : r.recvs) op.msg += shift;
        prog.rounds.push_back(std::move(r));
      }
    }
  }
  MR_ASSERT_INTERNAL(out.validate().empty());
  return out;
}

Schedule concat(const std::vector<Schedule>& parts) {
  MR_EXPECT(!parts.empty(), "need at least one schedule");
  Schedule out;
  out.nranks = parts.front().nranks;
  out.programs.resize(static_cast<std::size_t>(out.nranks));
  for (const Schedule& part : parts) {
    MR_EXPECT(part.nranks == out.nranks, "concat needs equal rank counts");
    out.arena_size = std::max(out.arena_size, part.arena_size);
    const auto shift = static_cast<std::int32_t>(out.messages.size());
    out.messages.insert(out.messages.end(), part.messages.begin(),
                        part.messages.end());
    for (std::int32_t rank = 0; rank < out.nranks; ++rank) {
      auto& prog = out.programs[static_cast<std::size_t>(rank)];
      for (const auto& round : part.programs[static_cast<std::size_t>(rank)].rounds) {
        Round r = round;
        for (auto& op : r.sends) op.msg += shift;
        for (auto& op : r.recvs) op.msg += shift;
        prog.rounds.push_back(std::move(r));
      }
    }
  }
  MR_ASSERT_INTERNAL(out.validate().empty());
  return out;
}

Schedule merge(const std::vector<Schedule>& parts,
               const std::vector<std::vector<std::int32_t>>& rank_of,
               std::int32_t total_ranks) {
  MR_EXPECT(parts.size() == rank_of.size(), "parts/rank_of size mismatch");
  MR_EXPECT(total_ranks >= 1, "need at least one rank");
  Schedule out;
  out.nranks = total_ranks;
  out.programs.resize(static_cast<std::size_t>(total_ranks));
  std::vector<bool> used(static_cast<std::size_t>(total_ranks), false);
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const Schedule& part = parts[k];
    const auto& map = rank_of[k];
    MR_EXPECT(static_cast<std::int32_t>(map.size()) == part.nranks,
              "rank map size must equal the part's nranks");
    out.arena_size = std::max(out.arena_size, part.arena_size);
    const auto shift = static_cast<std::int32_t>(out.messages.size());
    for (const auto& m : part.messages) {
      MsgInfo global = m;
      global.src = map[static_cast<std::size_t>(m.src)];
      global.dst = map[static_cast<std::size_t>(m.dst)];
      out.messages.push_back(global);
    }
    for (std::int32_t local = 0; local < part.nranks; ++local) {
      const std::int32_t global = map[static_cast<std::size_t>(local)];
      MR_EXPECT(global >= 0 && global < total_ranks, "global rank out of range");
      MR_EXPECT(!used[static_cast<std::size_t>(global)],
                "rank appears in two merged communicators");
      used[static_cast<std::size_t>(global)] = true;
      auto& prog = out.programs[static_cast<std::size_t>(global)];
      prog = part.programs[static_cast<std::size_t>(local)];
      for (auto& round : prog.rounds) {
        for (auto& op : round.sends) op.msg += shift;
        for (auto& op : round.recvs) op.msg += shift;
      }
    }
  }
  MR_ASSERT_INTERNAL(out.validate().empty());
  return out;
}

}  // namespace mr::simmpi
