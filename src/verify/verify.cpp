#include "mixradix/verify/verify.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <utility>

namespace mr::verify {

using simmpi::Combine;
using simmpi::Region;
using simmpi::Round;
using simmpi::Schedule;

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

const char* to_string(Check check) {
  switch (check) {
    case Check::Structure: return "structure";
    case Check::Conservation: return "conservation";
    case Check::Deadlock: return "deadlock";
    case Check::Race: return "race";
    case Check::DeadWrite: return "dead-write";
    case Check::UninitRead: return "uninit-read";
    case Check::Binding: return "binding";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << verify::to_string(severity) << "[" << verify::to_string(check) << "]";
  if (rank >= 0) os << " rank " << rank;
  if (round >= 0) os << " round " << round;
  if (msg >= 0) os << " msg " << msg;
  os << ": " << text;
  return os.str();
}

std::size_t Report::count(Severity severity) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string Report::summary() const {
  std::ostringstream os;
  os << count(Severity::Error) << " errors, " << count(Severity::Warning)
     << " warnings, " << count(Severity::Info) << " infos";
  return os.str();
}

std::string Report::to_string() const {
  std::ostringstream os;
  for (const auto& d : diagnostics) os << d.to_string() << "\n";
  os << summary();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Report& report) {
  return os << report.to_string();
}

namespace {

const char* combine_name(Combine combine) {
  switch (combine) {
    case Combine::Replace: return "replace";
    case Combine::Sum: return "sum";
    case Combine::Max: return "max";
    case Combine::Min: return "min";
    case Combine::Prod: return "prod";
  }
  return "?";
}

std::string region_str(const Region& r) {
  std::ostringstream os;
  os << "[" << r.offset << ", " << r.offset + r.count << ")";
  return os.str();
}

bool region_in_arena(const Region& r, std::int64_t arena) {
  return r.offset >= 0 && r.count >= 0 && r.offset + r.count <= arena;
}

/// Combines whose accumulation commutes, so concurrent overlapping receives
/// still produce one well-defined value per element. Replace is excluded:
/// last-writer-wins depends on completion order.
bool commutative(Combine combine) { return combine != Combine::Replace; }

class Analyzer {
 public:
  Analyzer(const Schedule& schedule, const Options& options)
      : s_(schedule), opt_(options) {}

  Report run() {
    const bool sound = structure_and_conservation();
    if (sound) {
      if (opt_.check_deadlock) deadlock();
      if (opt_.check_races) races();
      if (opt_.check_dataflow) dataflow();
    }
    if (suppressed_ > 0) {
      Diagnostic d;
      d.severity = Severity::Info;
      d.check = Check::Structure;
      d.text = std::to_string(suppressed_) +
               " further diagnostics suppressed (max_diagnostics = " +
               std::to_string(opt_.max_diagnostics) + ")";
      report_.diagnostics.push_back(std::move(d));
    }
    return std::move(report_);
  }

 private:
  void emit(Severity severity, Check check, std::int32_t rank, int round,
            std::int32_t msg, std::string text) {
    if (severity == Severity::Error) ++errors_;
    if (report_.diagnostics.size() >= opt_.max_diagnostics) {
      ++suppressed_;
      return;
    }
    report_.diagnostics.push_back(
        Diagnostic{severity, check, rank, round, msg, std::move(text)});
  }

  std::string msg_str(std::int32_t m) const {
    const auto& msg = s_.messages[static_cast<std::size_t>(m)];
    std::ostringstream os;
    os << "message " << m << " (rank " << msg.src << " -> rank " << msg.dst
       << ", " << msg.bytes() << " B)";
    return os.str();
  }

  /// Validates everything the deeper passes dereference and records each
  /// message's posting/receiving round. Returns false when the schedule is
  /// too damaged for the deeper passes to index safely.
  bool structure_and_conservation() {
    const std::size_t errors_before = errors_;
    if (s_.nranks <= 0) {
      emit(Severity::Error, Check::Structure, -1, -1, -1, "schedule has no ranks");
      return false;
    }
    if (static_cast<std::int32_t>(s_.programs.size()) != s_.nranks) {
      emit(Severity::Error, Check::Structure, -1, -1, -1,
           "schedule has " + std::to_string(s_.programs.size()) +
               " rank programs for " + std::to_string(s_.nranks) + " ranks");
      return false;
    }

    for (std::size_t m = 0; m < s_.messages.size(); ++m) {
      const auto& msg = s_.messages[m];
      const auto id = static_cast<std::int32_t>(m);
      if (msg.src < 0 || msg.src >= s_.nranks || msg.dst < 0 ||
          msg.dst >= s_.nranks) {
        emit(Severity::Error, Check::Structure, -1, -1, id,
             "message " + std::to_string(m) + " has endpoints " +
                 std::to_string(msg.src) + " -> " + std::to_string(msg.dst) +
                 " outside [0, " + std::to_string(s_.nranks) + ")");
        continue;
      }
      if (msg.src == msg.dst) {
        emit(Severity::Warning, Check::Structure, msg.src, -1, id,
             msg_str(id) + " is a self-message; the IR contract wants local "
                           "copies instead");
      }
      if (!region_in_arena(msg.src_region, s_.arena_size)) {
        emit(Severity::Error, Check::Structure, msg.src, -1, id,
             msg_str(id) + " source region " + region_str(msg.src_region) +
                 " leaves the arena of " + std::to_string(s_.arena_size) +
                 " doubles");
      }
      if (!region_in_arena(msg.dst_region, s_.arena_size)) {
        emit(Severity::Error, Check::Structure, msg.dst, -1, id,
             msg_str(id) + " destination region " + region_str(msg.dst_region) +
                 " leaves the arena of " + std::to_string(s_.arena_size) +
                 " doubles");
      }
      if (msg.src_region.count != msg.dst_region.count) {
        emit(Severity::Error, Check::Conservation, msg.dst, -1, id,
             "message " + std::to_string(m) + " sends " +
                 std::to_string(msg.src_region.count * 8) +
                 " B from rank " + std::to_string(msg.src) + " but receives " +
                 std::to_string(msg.dst_region.count * 8) + " B on rank " +
                 std::to_string(msg.dst) + ": payload not conserved");
      }
    }

    send_round_.assign(s_.messages.size(), -1);
    recv_round_.assign(s_.messages.size(), -1);
    bool ops_sound = true;
    std::vector<int> sent(s_.messages.size(), 0);
    std::vector<int> received(s_.messages.size(), 0);
    for (std::int32_t rank = 0; rank < s_.nranks; ++rank) {
      const auto& rounds = s_.programs[static_cast<std::size_t>(rank)].rounds;
      for (std::size_t k = 0; k < rounds.size(); ++k) {
        const auto round = static_cast<int>(k);
        for (const auto& op : rounds[k].sends) {
          if (op.msg < 0 || static_cast<std::size_t>(op.msg) >= s_.messages.size()) {
            emit(Severity::Error, Check::Structure, rank, round, op.msg,
                 "send op on rank " + std::to_string(rank) + " round " +
                     std::to_string(round) + " references unknown message " +
                     std::to_string(op.msg));
            ops_sound = false;
            continue;
          }
          const auto& msg = s_.messages[static_cast<std::size_t>(op.msg)];
          if (msg.src != rank) {
            emit(Severity::Error, Check::Structure, rank, round, op.msg,
                 "send op on rank " + std::to_string(rank) + " round " +
                     std::to_string(round) + " posts " + msg_str(op.msg) +
                     " owned by rank " + std::to_string(msg.src));
            ops_sound = false;
            continue;
          }
          if (++sent[static_cast<std::size_t>(op.msg)] == 1) {
            send_round_[static_cast<std::size_t>(op.msg)] = round;
          }
        }
        for (const auto& op : rounds[k].recvs) {
          if (op.msg < 0 || static_cast<std::size_t>(op.msg) >= s_.messages.size()) {
            emit(Severity::Error, Check::Structure, rank, round, op.msg,
                 "recv op on rank " + std::to_string(rank) + " round " +
                     std::to_string(round) + " references unknown message " +
                     std::to_string(op.msg));
            ops_sound = false;
            continue;
          }
          const auto& msg = s_.messages[static_cast<std::size_t>(op.msg)];
          if (msg.dst != rank) {
            emit(Severity::Error, Check::Structure, rank, round, op.msg,
                 "recv op on rank " + std::to_string(rank) + " round " +
                     std::to_string(round) + " waits for " + msg_str(op.msg) +
                     " addressed to rank " + std::to_string(msg.dst));
            ops_sound = false;
            continue;
          }
          if (++received[static_cast<std::size_t>(op.msg)] == 1) {
            recv_round_[static_cast<std::size_t>(op.msg)] = round;
          }
        }
        for (std::size_t c = 0; c < rounds[k].copies.size(); ++c) {
          const auto& op = rounds[k].copies[c];
          if (!region_in_arena(op.src, s_.arena_size) ||
              !region_in_arena(op.dst, s_.arena_size)) {
            emit(Severity::Error, Check::Structure, rank, round, -1,
                 "copy " + std::to_string(c) + " on rank " +
                     std::to_string(rank) + " round " + std::to_string(round) +
                     " touches " + region_str(op.src) + " -> " +
                     region_str(op.dst) + " outside the arena of " +
                     std::to_string(s_.arena_size) + " doubles");
          }
          if (op.src.count != op.dst.count) {
            emit(Severity::Error, Check::Structure, rank, round, -1,
                 "copy " + std::to_string(c) + " on rank " +
                     std::to_string(rank) + " round " + std::to_string(round) +
                     " copies " + std::to_string(op.src.count) +
                     " doubles into a region of " +
                     std::to_string(op.dst.count));
          }
        }
        if (rounds[k].compute_seconds < 0) {
          emit(Severity::Error, Check::Structure, rank, round, -1,
               "negative compute time on rank " + std::to_string(rank) +
                   " round " + std::to_string(round));
        }
      }
    }

    for (std::size_t m = 0; m < s_.messages.size(); ++m) {
      const auto& msg = s_.messages[m];
      if (msg.src < 0 || msg.src >= s_.nranks || msg.dst < 0 ||
          msg.dst >= s_.nranks) {
        ops_sound = false;  // endpoint errors already reported above
        continue;
      }
      const auto id = static_cast<std::int32_t>(m);
      if (sent[m] != 1) {
        emit(Severity::Error, Check::Conservation, msg.src, send_round_[m], id,
             msg_str(id) + " is posted " + std::to_string(sent[m]) +
                 " times by rank " + std::to_string(msg.src) +
                 " (must be exactly once)");
        ops_sound = false;
      }
      if (received[m] != 1) {
        emit(Severity::Error, Check::Conservation, msg.dst, recv_round_[m], id,
             msg_str(id) + " is received " + std::to_string(received[m]) +
                 " times by rank " + std::to_string(msg.dst) +
                 " (must be exactly once)");
        ops_sound = false;
      }
    }

    // Deeper passes index messages[op.msg] and send/recv rounds freely; any
    // dangling reference or multiplicity error above makes that unsafe or
    // meaningless. (Warnings — e.g. self-messages — do not block them.)
    return ops_sound && errors_ == errors_before;
  }

  // ---- Deadlock ------------------------------------------------------------
  //
  // Node (rank, round) stands for "rank completes round": its receives have
  // all been delivered and the rank may enter the next round. Dependencies:
  //   * (rank, k) depends on (rank, k-1): rounds complete in program order;
  //   * (dst, recv_round) depends on (src, send_round - 1) for each message:
  //     the payload is snapshotted when the sender *enters* send_round,
  //     i.e. right after it completes send_round - 1 (no dependency when
  //     send_round == 0 — entering round 0 is unconditional).
  // The executor realises exactly these edges, so it deadlocks iff this
  // graph has a cycle.

  std::size_t node(std::int32_t rank, int round) const {
    return node_base_[static_cast<std::size_t>(rank)] +
           static_cast<std::size_t>(round);
  }

  void deadlock() {
    // Fast acyclicity certificate: when every message is posted no later
    // than the round that waits for it, every happens-before edge strictly
    // decreases the round number — program-order edges by construction,
    // message edges because (dst, recv_round) then depends on
    // (src, send_round - 1) with send_round - 1 < recv_round. A strictly
    // decreasing potential admits no cycle, so the graph search is only
    // needed for schedules that message "backwards" across rounds.
    bool monotone = true;
    for (std::size_t m = 0; m < s_.messages.size(); ++m) {
      if (send_round_[m] > recv_round_[m]) {
        monotone = false;
        break;
      }
    }
    if (monotone) return;
    node_base_.assign(static_cast<std::size_t>(s_.nranks) + 1, 0);
    for (std::int32_t rank = 0; rank < s_.nranks; ++rank) {
      node_base_[static_cast<std::size_t>(rank) + 1] =
          node_base_[static_cast<std::size_t>(rank)] +
          s_.programs[static_cast<std::size_t>(rank)].rounds.size();
    }
    const std::size_t nodes = node_base_.back();
    if (nodes == 0) return;

    // CSR adjacency (count, prefix-sum, fill): one allocation for all edges
    // instead of one per node — this pass runs on every build() in checked
    // builds, so constant factors matter.
    struct Dep {
      std::size_t to;
      std::int32_t msg;  ///< -1 for a program-order edge.
    };
    std::vector<std::size_t> head(nodes + 1, 0);
    for (std::int32_t rank = 0; rank < s_.nranks; ++rank) {
      const auto& rounds = s_.programs[static_cast<std::size_t>(rank)].rounds;
      for (std::size_t k = 1; k < rounds.size(); ++k) {
        ++head[node(rank, static_cast<int>(k)) + 1];
      }
    }
    for (std::size_t m = 0; m < s_.messages.size(); ++m) {
      if (send_round_[m] <= 0) continue;  // posted unconditionally
      ++head[node(s_.messages[m].dst, recv_round_[m]) + 1];
    }
    for (std::size_t n = 0; n < nodes; ++n) head[n + 1] += head[n];
    std::vector<Dep> deps(head.back());
    std::vector<std::size_t> cursor(head.begin(), head.end() - 1);
    for (std::int32_t rank = 0; rank < s_.nranks; ++rank) {
      const auto& rounds = s_.programs[static_cast<std::size_t>(rank)].rounds;
      for (std::size_t k = 1; k < rounds.size(); ++k) {
        deps[cursor[node(rank, static_cast<int>(k))]++] =
            Dep{node(rank, static_cast<int>(k) - 1), -1};
      }
    }
    for (std::size_t m = 0; m < s_.messages.size(); ++m) {
      if (send_round_[m] <= 0) continue;
      const auto& msg = s_.messages[m];
      deps[cursor[node(msg.dst, recv_round_[m])]++] =
          Dep{node(msg.src, send_round_[m] - 1), static_cast<std::int32_t>(m)};
    }

    // Iterative colored DFS over the dependency edges; a gray target is a
    // cycle, recovered from the explicit stack.
    enum : unsigned char { White, Gray, Black };
    std::vector<unsigned char> color(nodes, White);
    struct Frame {
      std::size_t node;
      std::size_t next_dep;
      std::int32_t via_msg;  ///< edge that led here from the frame below.
    };
    std::vector<Frame> stack;
    for (std::size_t root = 0; root < nodes; ++root) {
      if (color[root] != White) continue;
      stack.push_back(Frame{root, 0, -1});
      color[root] = Gray;
      while (!stack.empty()) {
        Frame& f = stack.back();
        if (head[f.node] + f.next_dep < head[f.node + 1]) {
          const Dep d = deps[head[f.node] + f.next_dep++];
          if (color[d.to] == White) {
            color[d.to] = Gray;
            stack.push_back(Frame{d.to, 0, d.msg});
          } else if (color[d.to] == Gray) {
            report_cycle(stack, d);
            return;  // one cycle is enough to prove deadlock
          }
        } else {
          color[f.node] = Black;
          stack.pop_back();
        }
      }
    }
  }

  std::pair<std::int32_t, int> rank_round(std::size_t n) const {
    const auto it =
        std::upper_bound(node_base_.begin(), node_base_.end(), n) - 1;
    const auto rank =
        static_cast<std::int32_t>(it - node_base_.begin());
    return {rank, static_cast<int>(n - *it)};
  }

  template <typename Frame, typename Dep>
  void report_cycle(const std::vector<Frame>& stack, const Dep& closing) {
    // The cycle is the suffix of the DFS stack from the frame holding
    // closing.to, plus the closing edge back to it.
    std::size_t start = stack.size();
    while (start > 0 && stack[start - 1].node != closing.to) --start;
    --start;  // frame whose node == closing.to

    std::ostringstream os;
    const std::size_t len = stack.size() - start;
    os << "happens-before cycle over " << len
       << (len == 1 ? " round" : " rounds") << ":\n";
    // Walk the cycle in dependency direction: each frame waits on the next
    // (frames above in the stack), and the last edge closes back onto the
    // first frame.
    for (std::size_t i = start; i < stack.size(); ++i) {
      const auto [rank, round] = rank_round(stack[i].node);
      const std::int32_t via =
          i + 1 < stack.size() ? stack[i + 1].via_msg : closing.msg;
      os << "  rank " << rank << " cannot complete round " << round;
      if (via >= 0) {
        const auto& msg = s_.messages[static_cast<std::size_t>(via)];
        os << ": it waits for " << msg_str(via) << ", which rank " << msg.src
           << " only posts on entering round "
           << send_round_[static_cast<std::size_t>(via)];
      } else {
        os << " before its own earlier round (program order)";
      }
      os << "\n";
    }
    const auto [rank0, round0] = rank_round(stack[start].node);
    os << "  ... which closes the cycle at rank " << rank0 << " round "
       << round0;

    const auto [r, k] = rank_round(stack[start].node);
    std::int32_t first_msg = closing.msg;
    for (std::size_t i = start + 1; i < stack.size() && first_msg < 0; ++i) {
      first_msg = stack[i].via_msg;
    }
    emit(Severity::Error, Check::Deadlock, r, k, first_msg, os.str());
  }

  // ---- Write races ---------------------------------------------------------
  //
  // Within one round on one rank the executor's contract is copies -> sends
  // (snapshot) -> receives, but a real MPI runtime completes the posted
  // receives in arbitrary order and DMA-writes their buffers concurrently
  // with local work. Two same-round writes to overlapping regions are
  // therefore nondeterministic unless they accumulate with the same
  // commutative combine:
  //   * recv/recv — Error unless both use the same commutative combine;
  //   * recv/copy — Error: the copy is ordered before the combine in the
  //     simulator but races with the DMA write on real hardware;
  //   * copy/copy — Warning: deterministic under the executor's in-order
  //     copy execution, but order-dependent (a refactoring hazard).

  void races() {
    struct Write {
      Region region;
      Combine combine;
      bool is_recv;
      std::int32_t id;  ///< message id for recvs, copy index for copies.
    };
    std::vector<Write> writes;
    for (std::int32_t rank = 0; rank < s_.nranks; ++rank) {
      const auto& rounds = s_.programs[static_cast<std::size_t>(rank)].rounds;
      for (std::size_t k = 0; k < rounds.size(); ++k) {
        const auto round = static_cast<int>(k);
        writes.clear();
        for (std::size_t c = 0; c < rounds[k].copies.size(); ++c) {
          const auto& op = rounds[k].copies[c];
          if (op.dst.count <= 0) continue;
          writes.push_back(Write{op.dst, op.combine, false,
                                 static_cast<std::int32_t>(c)});
        }
        for (const auto& op : rounds[k].recvs) {
          const auto& msg = s_.messages[static_cast<std::size_t>(op.msg)];
          if (msg.dst_region.count <= 0) continue;
          writes.push_back(Write{msg.dst_region, msg.combine, true, op.msg});
        }
        if (writes.size() < 2) continue;
        std::sort(writes.begin(), writes.end(),
                  [](const Write& a, const Write& b) {
                    return a.region.offset < b.region.offset;
                  });
        for (std::size_t i = 0; i < writes.size(); ++i) {
          for (std::size_t j = i + 1; j < writes.size(); ++j) {
            if (writes[j].region.offset >=
                writes[i].region.offset + writes[i].region.count) {
              break;  // sorted by offset: nothing later overlaps i either
            }
            conflict(rank, round, writes[i], writes[j]);
          }
        }
      }
    }
  }

  template <typename Write>
  void conflict(std::int32_t rank, int round, const Write& a, const Write& b) {
    const auto describe = [&](const Write& w) {
      std::ostringstream os;
      if (w.is_recv) {
        os << "recv of " << msg_str(w.id);
      } else {
        os << "copy " << w.id;
      }
      os << " (" << combine_name(w.combine) << " into "
         << region_str(w.region) << ")";
      return os.str();
    };
    if (a.is_recv && b.is_recv) {
      if (a.combine == b.combine && commutative(a.combine)) return;
      emit(Severity::Error, Check::Race, rank, round, a.id,
           "overlapping receives on rank " + std::to_string(rank) + " round " +
               std::to_string(round) + ": " + describe(a) + " vs " +
               describe(b) +
               "; completion order decides the result");
    } else if (a.is_recv || b.is_recv) {
      const Write& recv = a.is_recv ? a : b;
      const Write& copy = a.is_recv ? b : a;
      emit(Severity::Error, Check::Race, rank, round, recv.id,
           "local copy races a posted receive on rank " + std::to_string(rank) +
               " round " + std::to_string(round) + ": " + describe(copy) +
               " vs " + describe(recv) +
               "; the receive buffer may be written concurrently");
    } else {
      emit(Severity::Warning, Check::Race, rank, round, -1,
           "overlapping local copies on rank " + std::to_string(rank) +
               " round " + std::to_string(round) + ": " + describe(a) +
               " vs " + describe(b) +
               "; result depends on the executor's in-order copy execution");
    }
  }

  // ---- Dataflow lints ------------------------------------------------------
  //
  // Arenas are rank-private, so dataflow is a per-rank sequential replay in
  // the executor's op order (copies, then send snapshots, then receive
  // combines). A segment map tracks, per double, the last writing op and
  // whether anything read it since; a write whose every double is
  // overwritten unread is dead, and a read of a never-written double is an
  // external input (or uninitialised data, per Options).

  struct Event {
    std::int32_t rank;
    int round;
    bool is_recv;
    std::int32_t id;  ///< message id for recvs, copy index for copies.
    std::int64_t total = 0;
    std::int64_t read = 0;
    std::int64_t killed = 0;
  };

  struct Segment {
    std::int64_t start;
    std::int64_t end;
    std::size_t writer;
    bool read_since_write;
  };
  /// Sorted, non-overlapping segments. A flat vector beats a node-based map
  /// here: a rank's arena decomposes into a handful of live intervals, and
  /// this replay runs on every build() in checked builds.
  using SegMap = std::vector<Segment>;

  static SegMap::iterator seg_lower_bound(SegMap& segs, std::int64_t x) {
    return std::lower_bound(
        segs.begin(), segs.end(), x,
        [](const Segment& seg, std::int64_t v) { return seg.start < v; });
  }

  /// Ensure no segment straddles `x`.
  static void split_at(SegMap& segs, std::int64_t x) {
    auto it = seg_lower_bound(segs, x);
    if (it == segs.begin()) return;
    --it;
    if (it->start < x && x < it->end) {
      Segment upper = *it;
      upper.start = x;
      it->end = x;
      segs.insert(it + 1, upper);
    }
  }

  void dataflow_read(SegMap& segs, std::vector<Event>& events,
                     std::vector<Region>& inputs, const Region& r) {
    if (r.count <= 0) return;
    const std::int64_t lo = r.offset, hi = r.offset + r.count;
    split_at(segs, lo);
    split_at(segs, hi);
    // After the splits no segment straddles lo or hi, so every segment that
    // intersects [lo, hi) lies entirely inside it.
    std::int64_t cursor = lo;
    for (auto it = seg_lower_bound(segs, lo); it != segs.end() && it->start < hi;
         ++it) {
      if (it->start > cursor) inputs.push_back(Region{cursor, it->start - cursor});
      events[it->writer].read += it->end - it->start;
      it->read_since_write = true;
      cursor = it->end;
    }
    if (cursor < hi) inputs.push_back(Region{cursor, hi - cursor});
  }

  void dataflow_write(SegMap& segs, std::vector<Event>& events,
                      std::size_t writer, const Region& r) {
    if (r.count <= 0) return;
    const std::int64_t lo = r.offset, hi = r.offset + r.count;
    split_at(segs, lo);
    split_at(segs, hi);
    const auto first = seg_lower_bound(segs, lo);
    auto it = first;
    for (; it != segs.end() && it->start < hi; ++it) {
      if (!it->read_since_write) {
        events[it->writer].killed += it->end - it->start;
      }
    }
    events[writer].total += r.count;
    // Replace the covered segments with the single new one in place.
    if (first != it) {
      *first = Segment{lo, hi, writer, false};
      segs.erase(first + 1, it);
    } else {
      segs.insert(first, Segment{lo, hi, writer, false});
    }
  }

  void dataflow() {
    std::vector<Event> events;
    SegMap segs;
    std::vector<Region> inputs;
    for (std::int32_t rank = 0; rank < s_.nranks; ++rank) {
      events.clear();
      segs.clear();
      inputs.clear();
      const auto& rounds = s_.programs[static_cast<std::size_t>(rank)].rounds;
      for (std::size_t k = 0; k < rounds.size(); ++k) {
        const auto round = static_cast<int>(k);
        for (std::size_t c = 0; c < rounds[k].copies.size(); ++c) {
          const auto& op = rounds[k].copies[c];
          dataflow_read(segs, events, inputs, op.src);
          if (op.combine != Combine::Replace) {
            dataflow_read(segs, events, inputs, op.dst);
          }
          events.push_back(
              Event{rank, round, false, static_cast<std::int32_t>(c)});
          dataflow_write(segs, events, events.size() - 1, op.dst);
        }
        for (const auto& op : rounds[k].sends) {
          const auto& msg = s_.messages[static_cast<std::size_t>(op.msg)];
          dataflow_read(segs, events, inputs, msg.src_region);
        }
        for (const auto& op : rounds[k].recvs) {
          const auto& msg = s_.messages[static_cast<std::size_t>(op.msg)];
          if (msg.combine != Combine::Replace) {
            dataflow_read(segs, events, inputs, msg.dst_region);
          }
          events.push_back(Event{rank, round, true, op.msg});
          dataflow_write(segs, events, events.size() - 1, msg.dst_region);
        }
      }
      for (const auto& e : events) {
        if (e.total > 0 && e.read == 0 && e.killed == e.total) {
          std::ostringstream os;
          if (e.is_recv) {
            os << "payload of " << msg_str(e.id);
          } else {
            os << "result of copy " << e.id;
          }
          os << " on rank " << e.rank << " round " << e.round
             << " is fully overwritten before any read (dead write)";
          emit(Severity::Warning, Check::DeadWrite, e.rank, e.round,
               e.is_recv ? e.id : -1, os.str());
        }
      }
      if (!inputs.empty()) report_inputs(rank, inputs);
    }
  }

  void report_inputs(std::int32_t rank, std::vector<Region>& inputs) {
    // Inputs are expected under the default contract and not reported:
    // skip the merge/format work entirely.
    if (opt_.assume_inputs_initialized && !opt_.report_inputs) return;
    std::sort(inputs.begin(), inputs.end(),
              [](const Region& a, const Region& b) {
                return a.offset < b.offset;
              });
    std::vector<Region> merged;
    for (const auto& r : inputs) {
      if (!merged.empty() && r.offset <= merged.back().offset + merged.back().count) {
        merged.back().count = std::max(merged.back().count,
                                       r.offset + r.count - merged.back().offset);
      } else {
        merged.push_back(r);
      }
    }
    std::ostringstream os;
    os << "rank " << rank << " reads ";
    for (std::size_t i = 0; i < merged.size(); ++i) {
      if (i) os << ", ";
      os << region_str(merged[i]);
    }
    if (opt_.assume_inputs_initialized) {
      if (!opt_.report_inputs) return;
      os << " before any write: inferred external input regions";
      emit(Severity::Info, Check::UninitRead, rank, -1, -1, os.str());
    } else {
      os << " before any write, and nothing initialises the arena: "
            "uninitialised data flows into the result";
      emit(Severity::Warning, Check::UninitRead, rank, -1, -1, os.str());
    }
  }

  const Schedule& s_;
  const Options& opt_;
  Report report_;
  std::size_t suppressed_ = 0;
  std::size_t errors_ = 0;
  std::vector<int> send_round_;
  std::vector<int> recv_round_;
  std::vector<std::size_t> node_base_;
};

}  // namespace

namespace {
std::atomic<std::uint64_t> g_analyze_calls{0};
}  // namespace

Report analyze(const Schedule& schedule, const Options& options) {
  g_analyze_calls.fetch_add(1, std::memory_order_relaxed);
  return Analyzer(schedule, options).run();
}

std::uint64_t analyze_call_count() {
  return g_analyze_calls.load(std::memory_order_relaxed);
}

}  // namespace mr::verify
