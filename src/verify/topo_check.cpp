#include "mixradix/verify/topo_check.hpp"

#include <cmath>
#include <sstream>

#include "mixradix/simnet/path.hpp"
#include "mixradix/util/prng.hpp"

namespace mr::verify {

namespace {

/// Diagnostic accumulator: formatting and severity counting in one place so
/// every check site stays a one-liner.
class TopoSink {
 public:
  explicit TopoSink(TopoReport& report) : report_(report) {}

  template <typename... Parts>
  void add(Severity severity, TopoCheck check, int level, Parts&&... parts) {
    std::ostringstream text;
    (text << ... << parts);
    report_.diagnostics.push_back(
        TopoDiagnostic{severity, check, level, text.str()});
  }

  template <typename... Parts>
  void error(TopoCheck check, int level, Parts&&... parts) {
    add(Severity::Error, check, level, std::forward<Parts>(parts)...);
  }
  template <typename... Parts>
  void warn(TopoCheck check, int level, Parts&&... parts) {
    add(Severity::Warning, check, level, std::forward<Parts>(parts)...);
  }

 private:
  TopoReport& report_;
};

std::string level_label(const std::vector<topo::LevelSpec>& levels, int k) {
  const auto& name = levels[static_cast<std::size_t>(k)].name;
  return name.empty() ? "level " + std::to_string(k)
                      : "level " + std::to_string(k) + " (" + name + ")";
}

bool finite_positive(double v) { return std::isfinite(v) && v > 0; }
bool finite_nonnegative(double v) { return std::isfinite(v) && v >= 0; }

void check_spec(TopoSink& sink, const std::vector<topo::LevelSpec>& levels,
                const topo::MessagingCosts& costs, double core_flops) {
  if (levels.empty()) {
    sink.error(TopoCheck::Spec, -1, "machine has no hierarchy levels");
    return;
  }
  for (int k = 0; k < static_cast<int>(levels.size()); ++k) {
    const auto& spec = levels[static_cast<std::size_t>(k)];
    const std::string label = level_label(levels, k);
    if (spec.radix < 1) {
      sink.error(TopoCheck::Spec, k, label, ": radix must be >= 1 (got ",
                 spec.radix, ")");
    } else if (spec.radix == 1) {
      sink.warn(TopoCheck::Spec, k, label,
                ": degenerate radix 1 (Hierarchy construction requires every "
                "radix >= 2; drop the level instead)");
    }
    if (!finite_positive(spec.link_bandwidth)) {
      sink.error(TopoCheck::Spec, k, label,
                 ": link bandwidth must be finite and positive (got ",
                 spec.link_bandwidth, ")");
    }
    if (!finite_nonnegative(spec.link_latency)) {
      sink.error(TopoCheck::Spec, k, label,
                 ": link latency must be finite and >= 0 (got ",
                 spec.link_latency, ")");
    }
    if (!finite_nonnegative(spec.mem_bandwidth)) {
      sink.error(TopoCheck::Spec, k, label,
                 ": memory bandwidth must be finite and >= 0 (got ",
                 spec.mem_bandwidth, ")");
    }
  }
  if (!finite_nonnegative(costs.send_overhead)) {
    sink.error(TopoCheck::Spec, -1, "send overhead must be finite and >= 0 (got ",
               costs.send_overhead, ")");
  }
  if (!finite_nonnegative(costs.recv_overhead)) {
    sink.error(TopoCheck::Spec, -1, "recv overhead must be finite and >= 0 (got ",
               costs.recv_overhead, ")");
  }
  if (!finite_nonnegative(costs.base_latency)) {
    sink.error(TopoCheck::Spec, -1, "base latency must be finite and >= 0 (got ",
               costs.base_latency, ")");
  }
  if (!finite_nonnegative(costs.reduce_seconds_per_byte)) {
    sink.error(TopoCheck::Spec, -1,
               "reduce cost must be finite and >= 0 (got ",
               costs.reduce_seconds_per_byte, ")");
  }
  if (costs.eager_threshold < 0) {
    sink.error(TopoCheck::Spec, -1, "eager threshold must be >= 0 (got ",
               costs.eager_threshold, ")");
  }
  if (!finite_positive(core_flops)) {
    sink.error(TopoCheck::Spec, -1,
               "core_flops must be finite and positive (got ", core_flops, ")");
  }

  // Aggregate-bandwidth taper: summed link bandwidth should not DECREASE
  // toward the leaves — an inner level with less total bandwidth than the
  // level above it means the model claims local traffic is slower than
  // global traffic, which is almost always a transposed spec. Only a
  // warning: deliberately inverted tapers are conceivable (oversubscribed
  // intra-node fabrics).
  double components = 1;
  double prev_aggregate = 0;
  for (int k = 0; k < static_cast<int>(levels.size()); ++k) {
    const auto& spec = levels[static_cast<std::size_t>(k)];
    if (spec.radix < 1 || !finite_positive(spec.link_bandwidth)) return;
    components *= static_cast<double>(spec.radix);
    const double aggregate = components * spec.link_bandwidth;
    if (k > 0 && aggregate < prev_aggregate) {
      sink.warn(TopoCheck::Taper, k, level_label(levels, k),
                ": aggregate link bandwidth ", aggregate,
                " B/s drops below the enclosing level's ", prev_aggregate,
                " B/s (inverted taper: is the spec transposed?)");
    }
    prev_aggregate = aggregate;
  }
}

void check_accounting(TopoSink& sink, const topo::Machine& machine) {
  const auto& h = machine.hierarchy();
  std::int64_t expected_offset = 0;
  for (int k = 0; k < machine.depth(); ++k) {
    if (machine.component_id(k, 0) != expected_offset) {
      sink.error(TopoCheck::Accounting, k,
                 "component_id(", k, ", 0) = ", machine.component_id(k, 0),
                 " but the cumulative outer-level component count is ",
                 expected_offset);
    }
    expected_offset += h.components_at(k);
  }
  if (machine.total_components() != expected_offset) {
    sink.error(TopoCheck::Accounting, -1, "total_components() = ",
               machine.total_components(),
               " but the per-level counts sum to ", expected_offset);
  }
  const std::int64_t last =
      machine.component_id(machine.depth() - 1,
                           h.components_at(machine.depth() - 1) - 1);
  if (last != machine.total_components() - 1) {
    sink.error(TopoCheck::Accounting, machine.depth() - 1,
               "last component id ", last, " != total_components() - 1 = ",
               machine.total_components() - 1);
  }

  const std::vector<double> caps = simnet::channel_capacities(machine);
  if (static_cast<std::int64_t>(caps.size()) != 3 * machine.total_components()) {
    sink.error(TopoCheck::Accounting, -1, "channel_capacities() has ",
               caps.size(), " entries, expected 3 * total_components() = ",
               3 * machine.total_components());
    return;
  }
  for (int k = 0; k < machine.depth(); ++k) {
    const auto& spec = machine.level(k);
    for (std::int64_t comp = 0; comp < h.components_at(k); ++comp) {
      const auto id = static_cast<std::size_t>(machine.component_id(k, comp));
      const double expected_mem =
          spec.mem_bandwidth > 0 ? spec.mem_bandwidth : 1.0;
      if (caps[3 * id] != spec.link_bandwidth ||
          caps[3 * id + 1] != spec.link_bandwidth ||
          caps[3 * id + 2] != expected_mem) {
        sink.error(TopoCheck::Accounting, k, level_label(machine.levels(), k),
                   " component ", comp,
                   ": capacity table row disagrees with the level spec");
        return;  // one located example is enough; the table is systematic
      }
      if (!(caps[3 * id] > 0) || !(caps[3 * id + 2] > 0)) {
        sink.error(TopoCheck::Accounting, k, level_label(machine.levels(), k),
                   " component ", comp, ": non-positive channel capacity");
        return;
      }
    }
  }
}

void check_latency(TopoSink& sink, const topo::Machine& machine,
                   const TopoOptions& options) {
  const std::int64_t cores = machine.cores();
  if (machine.path_latency(0, 0) != machine.costs().base_latency) {
    sink.error(TopoCheck::Latency, -1,
               "self path latency != base latency for core 0");
  }
  // Deterministic sample (seeded by the machine shape, not wall clock):
  // symmetry and the base-latency floor on each sampled pair.
  util::Xoshiro256 rng(0x746f706f6c696e74ull ^
                       static_cast<std::uint64_t>(cores));
  int asymmetric = 0;
  for (int i = 0; i < options.latency_sample_pairs; ++i) {
    const auto a = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(cores)));
    const auto b = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(cores)));
    const double ab = machine.path_latency(a, b);
    const double ba = machine.path_latency(b, a);
    if (ab != ba) {
      if (asymmetric++ == 0) {
        sink.error(TopoCheck::Latency, -1, "path_latency(", a, ", ", b,
                   ") = ", ab, " != path_latency(", b, ", ", a, ") = ", ba);
      }
    }
    if (ab < machine.costs().base_latency) {
      sink.error(TopoCheck::Latency, -1, "path_latency(", a, ", ", b,
                 ") = ", ab, " undercuts the base latency ",
                 machine.costs().base_latency);
      return;
    }
  }
  if (asymmetric > 1) {
    sink.error(TopoCheck::Latency, -1, asymmetric - 1,
               " further asymmetric pairs in the sample");
  }
}

/// Expected structure per preset family. with_nodes only retouches the
/// level-0 radix and with_nic_scale only the level-0 bandwidth, so the
/// inner radices and the level names stay checkable for every variant.
struct PresetShape {
  const char* name;
  std::vector<const char*> level_names;
  /// Expected radix per level; -1 = any (the with_nodes degree of freedom).
  std::vector<int> radices;
};

const std::vector<PresetShape>& preset_shapes() {
  static const std::vector<PresetShape> shapes = {
      {"hydra", {"node", "socket", "half", "core"}, {-1, 2, 2, 8}},
      {"hydra-node", {"socket", "half", "core"}, {2, 2, 8}},
      {"lumi", {"node", "socket", "numa", "l3", "core"}, {-1, 2, 4, 2, 8}},
      {"lumi-node", {"socket", "numa", "l3", "core"}, {2, 4, 2, 8}},
      {"testbox", {"node", "socket", "core"}, {2, 2, 4}},
  };
  return shapes;
}

void check_presets(TopoSink& sink, const topo::Machine& machine) {
  for (const PresetShape& shape : preset_shapes()) {
    if (machine.name() != shape.name) continue;
    if (machine.depth() != static_cast<int>(shape.level_names.size())) {
      sink.error(TopoCheck::Preset, -1, "preset '", shape.name,
                 "' must have ", shape.level_names.size(),
                 " levels, machine has ", machine.depth());
      return;
    }
    for (int k = 0; k < machine.depth(); ++k) {
      const auto& spec = machine.level(k);
      const auto i = static_cast<std::size_t>(k);
      if (spec.name != shape.level_names[i]) {
        sink.error(TopoCheck::Preset, k, "preset '", shape.name,
                   "' level ", k, " must be named '", shape.level_names[i],
                   "', got '", spec.name, "'");
      }
      if (shape.radices[i] != -1 && spec.radix != shape.radices[i]) {
        sink.error(TopoCheck::Preset, k, "preset '", shape.name,
                   "' level ", k, " must have radix ", shape.radices[i],
                   ", got ", spec.radix);
      }
    }
    if (machine.name() == "testbox") {
      // testbox exists so unit tests can predict times analytically: every
      // per-message cost must stay zero and every message rendezvous.
      const auto& costs = machine.costs();
      if (costs.send_overhead != 0 || costs.recv_overhead != 0 ||
          costs.base_latency != 0 || costs.reduce_seconds_per_byte != 0 ||
          costs.eager_threshold != 0) {
        sink.error(TopoCheck::Preset, -1,
                   "testbox must have zero per-message costs and a zero "
                   "eager threshold (analytic-prediction contract)");
      }
    }
    return;
  }
}

}  // namespace

const char* to_string(TopoCheck check) {
  switch (check) {
    case TopoCheck::Spec: return "spec";
    case TopoCheck::Accounting: return "accounting";
    case TopoCheck::Latency: return "latency";
    case TopoCheck::Taper: return "taper";
    case TopoCheck::Preset: return "preset";
  }
  return "?";
}

std::string TopoDiagnostic::to_string() const {
  std::ostringstream os;
  os << verify::to_string(severity) << '[' << verify::to_string(check) << ']';
  if (level >= 0) os << " level " << level;
  os << ": " << text;
  return os.str();
}

std::size_t TopoReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string TopoReport::summary() const {
  std::ostringstream os;
  os << count(Severity::Error) << " errors, " << count(Severity::Warning)
     << " warnings, " << count(Severity::Info) << " infos";
  return os.str();
}

std::string TopoReport::to_string() const {
  std::ostringstream os;
  for (const auto& d : diagnostics) os << d.to_string() << '\n';
  os << summary();
  return os.str();
}

TopoReport analyze_spec(const std::string& name,
                        const std::vector<topo::LevelSpec>& levels,
                        const topo::MessagingCosts& costs, double core_flops,
                        const TopoOptions& /*options*/) {
  TopoReport report;
  report.machine = name;
  TopoSink sink(report);
  check_spec(sink, levels, costs, core_flops);
  return report;
}

TopoReport analyze(const topo::Machine& machine, const TopoOptions& options) {
  TopoReport report = analyze_spec(machine.name(), machine.levels(),
                                   machine.costs(), machine.core_flops(),
                                   options);
  TopoSink sink(report);
  check_accounting(sink, machine);
  check_latency(sink, machine, options);
  if (options.check_presets) check_presets(sink, machine);
  return report;
}

}  // namespace mr::verify
