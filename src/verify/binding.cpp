#include "mixradix/verify/binding.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mixradix/simnet/path.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::verify::binding {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Diagnostic accumulator that prefixes "job k:" when several jobs are
/// analyzed, mirroring the run_timed job indexing.
class Sink {
 public:
  Sink(Report& report, bool multi_job) : report_(report), multi_(multi_job) {}

  void job(int j) { job_ = j; }

  template <typename... Parts>
  void error(std::int32_t rank, int round, std::int32_t msg, Parts&&... parts) {
    add(Severity::Error, rank, round, msg, std::forward<Parts>(parts)...);
  }
  template <typename... Parts>
  void warn(std::int32_t rank, int round, std::int32_t msg, Parts&&... parts) {
    add(Severity::Warning, rank, round, msg, std::forward<Parts>(parts)...);
  }

 private:
  template <typename... Parts>
  void add(Severity severity, std::int32_t rank, int round, std::int32_t msg,
           Parts&&... parts) {
    std::ostringstream os;
    if (multi_ && job_ >= 0) {
      os << "job " << job_ << ": ";
    }
    (os << ... << parts);
    report_.diagnostics.push_back(
        {severity, Check::Binding, rank, round, msg, os.str()});
  }

  Report& report_;
  bool multi_ = false;
  int job_ = 0;
};

/// Per-message derived facts, for one repetition of one job (routes and
/// round placement are repetition-invariant).
struct MsgFacts {
  std::int64_t send_gi = -1;  ///< flattened CSR round index of the send.
  std::int64_t recv_gi = -1;
  double latency = 0;         ///< machine.path_latency(src core, dst core).
  double cap_min = kInf;      ///< bottleneck capacity along the route; inf = self.
  double transfer_floor = 0;  ///< latency + bytes / cap_min.
  bool eager = false;
  bool crosses_network = false;  ///< route non-empty.
  std::int32_t route = -1;       ///< RouteCache id.
};

/// Facts about one (src_core, dst_core) route, derived once per distinct
/// pair rather than once per message (sweeps replay the same few core
/// pairs across every round and job). Unlike the simulator's RouteTable —
/// which asserts on malformed routes — defects are recorded so the caller
/// can surface a located diagnostic instead of aborting.
struct RouteFacts {
  simnet::ChanSet channels;  ///< duplicate-free (FlowSim's view); unordered.
  double latency = 0;
  double cap_min = kInf;  ///< min capacity over channels; inf for self.
  int raw_size = 0;       ///< deduped channel count, even when too deep.
  bool too_deep = false;  ///< route exceeds kMaxChannelsPerFlow.
};

/// Routes depend only on the machine, so one cache serves every job of an
/// analysis (and every message of an alltoall round trades its
/// flow_channels() walk for a hash lookup). Derivation replays the
/// flow_channels() contract — egress/ingress at every level from the first
/// divergent one inward, plus each endpoint's memory controllers — from
/// tables precomputed once per machine, instead of re-walking the
/// hierarchy API per pair; tests/test_binding.cpp pins the two against
/// each other.
class RouteCache {
 public:
  explicit RouteCache(const topo::Machine& machine) : depth_(machine.depth()) {
    radix_.resize(static_cast<std::size_t>(depth_));
    link_bw_.resize(static_cast<std::size_t>(depth_));
    offset_.resize(static_cast<std::size_t>(depth_));
    lat_suffix_.assign(static_cast<std::size_t>(depth_) + 1, 0.0);
    for (int k = depth_ - 1; k >= 0; --k) {
      radix_[static_cast<std::size_t>(k)] = machine.hierarchy().radix(k);
      link_bw_[static_cast<std::size_t>(k)] = machine.level(k).link_bandwidth;
      offset_[static_cast<std::size_t>(k)] = machine.component_id(k, 0);
      lat_suffix_[static_cast<std::size_t>(k)] =
          lat_suffix_[static_cast<std::size_t>(k) + 1] +
          2.0 * machine.level(k).link_latency;
      if (machine.level(k).mem_bandwidth > 0) {
        mem_levels_.push_back({k, machine.level(k).mem_bandwidth});
      }
    }
    base_latency_ = machine.costs().base_latency;
    comp_src_.resize(static_cast<std::size_t>(depth_));
    comp_dst_.resize(static_cast<std::size_t>(depth_));
    index_.reserve(1024);
  }

  std::int32_t route(std::int64_t src, std::int64_t dst) {
    const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) |
                              static_cast<std::uint64_t>(dst);
    const auto [it, inserted] =
        index_.try_emplace(key, static_cast<std::int32_t>(routes_.size()));
    if (inserted) {
      routes_.push_back(derive(src, dst));
    }
    return it->second;
  }

  const RouteFacts& facts(std::int32_t id) const {
    return routes_[static_cast<std::size_t>(id)];
  }

  /// Every derived route, indexed by id (BoundStructure snapshots these).
  const std::vector<RouteFacts>& all() const { return routes_; }

 private:
  struct MemLevel {
    int level = 0;
    double bandwidth = 0;
  };

  RouteFacts derive(std::int64_t src, std::int64_t dst) {
    RouteFacts rf;
    rf.latency = base_latency_;
    if (src == dst) {
      return rf;
    }
    // Per-level component of each core (core / leaves-below), built with
    // one small-radix division per level instead of a wide division per
    // lookup: the leaf component IS the core, and each outer component is
    // the inner one divided by the inner level's radix.
    comp_src_[static_cast<std::size_t>(depth_) - 1] = src;
    comp_dst_[static_cast<std::size_t>(depth_) - 1] = dst;
    for (int k = depth_ - 2; k >= 0; --k) {
      comp_src_[static_cast<std::size_t>(k)] =
          comp_src_[static_cast<std::size_t>(k) + 1] /
          radix_[static_cast<std::size_t>(k) + 1];
      comp_dst_[static_cast<std::size_t>(k)] =
          comp_dst_[static_cast<std::size_t>(k) + 1] /
          radix_[static_cast<std::size_t>(k) + 1];
    }
    // First level (outermost = 0) where the cores' components diverge;
    // exists because distinct cores differ at least at the leaf level.
    int fd = 0;
    while (comp_src_[static_cast<std::size_t>(fd)] ==
           comp_dst_[static_cast<std::size_t>(fd)]) {
      ++fd;
    }
    rf.latency += lat_suffix_[static_cast<std::size_t>(fd)];
    // A memory controller above the divergence level is shared by both
    // endpoints and must be accounted once, not twice (the FlowSim /
    // RouteTable dedupe); below it the endpoints' controllers differ, as
    // do every level's egress/ingress components.
    rf.raw_size = 2 * (depth_ - fd);
    for (const MemLevel& m : mem_levels_) {
      rf.raw_size += m.level < fd ? 1 : 2;
    }
    if (rf.raw_size > simnet::kMaxChannelsPerFlow) {
      rf.too_deep = true;
      return rf;
    }
    const auto push = [&](simnet::ChannelId id, double cap) {
      rf.channels.ids[static_cast<std::size_t>(rf.channels.count++)] = id;
      rf.cap_min = std::min(rf.cap_min, cap);
    };
    for (int k = fd; k < depth_; ++k) {
      const std::size_t ki = static_cast<std::size_t>(k);
      const std::int64_t off = offset_[ki];
      push(static_cast<simnet::ChannelId>(3 * (off + comp_src_[ki])),
           link_bw_[ki]);
      push(static_cast<simnet::ChannelId>(3 * (off + comp_dst_[ki]) + 1),
           link_bw_[ki]);
    }
    for (const MemLevel& m : mem_levels_) {
      const std::size_t ki = static_cast<std::size_t>(m.level);
      const std::int64_t off = offset_[ki];
      push(static_cast<simnet::ChannelId>(3 * (off + comp_src_[ki]) + 2),
           m.bandwidth);
      if (m.level >= fd) {
        push(static_cast<simnet::ChannelId>(3 * (off + comp_dst_[ki]) + 2),
             m.bandwidth);
      }
    }
    return rf;
  }

  int depth_ = 0;
  std::vector<std::int64_t> radix_;   ///< per-level radix.
  std::vector<double> link_bw_;       ///< per-level egress/ingress capacity.
  std::vector<std::int64_t> offset_;  ///< dense component id of (level, 0).
  std::vector<double> lat_suffix_;    ///< 2 * sum of link latencies inward.
  std::vector<MemLevel> mem_levels_;  ///< levels with a memory model.
  double base_latency_ = 0;
  std::vector<std::int64_t> comp_src_;  ///< derive() scratch, sized depth.
  std::vector<std::int64_t> comp_dst_;
  std::unordered_map<std::uint64_t, std::int32_t> index_;
  std::vector<RouteFacts> routes_;
};

/// Per-job derived state shared by the load report and the bound.
struct JobFacts {
  std::vector<MsgFacts> msgs;         ///< indexed by message id (one rep).
  std::vector<double> round_cpu;      ///< per flattened CSR round.
  std::int64_t node_base = 0;         ///< first DP node of this job.
  std::vector<std::int64_t> rank_node_base;  ///< per rank, relative to job.
};

double round_cpu_time(const simmpi::PlanExec& exec,
                      const topo::MessagingCosts& costs, std::int64_t round) {
  const auto i = static_cast<std::size_t>(round);
  double cpu = exec.round_compute[i];
  cpu += costs.send_overhead *
         static_cast<double>(exec.send_begin[i + 1] - exec.send_begin[i]);
  cpu += costs.recv_overhead *
         static_cast<double>(exec.recv_begin[i + 1] - exec.recv_begin[i]);
  cpu += static_cast<double>(exec.round_copy_doubles[i]) * 8.0 *
         costs.reduce_seconds_per_byte;
  return cpu;
}

/// Validate one job's binding; returns false when later phases must not
/// trust its indices. Fills `facts` (rounds/routes) only on success.
bool check_job(const topo::Machine& machine, const JobBinding& job,
               RouteCache& routes, Sink& sink, JobFacts& facts) {
  if (job.schedule == nullptr || job.exec == nullptr ||
      job.core_of_rank == nullptr) {
    sink.error(-1, -1, -1, "job is missing its ",
               job.schedule == nullptr  ? "schedule"
               : job.exec == nullptr    ? "execution structure"
                                        : "core_of_rank binding");
    return false;
  }
  const simmpi::Schedule& sched = *job.schedule;
  const simmpi::PlanExec& exec = *job.exec;
  const std::vector<std::int64_t>& cores = *job.core_of_rank;
  bool ok = true;

  if (job.repetitions < 1) {
    sink.error(-1, -1, -1, "repetitions must be >= 1, got ", job.repetitions);
    ok = false;
  }
  if (!std::isfinite(job.start_time) || job.start_time < 0) {
    sink.error(-1, -1, -1, "start_time must be finite and >= 0, got ",
               job.start_time);
    ok = false;
  }
  if (cores.size() != static_cast<std::size_t>(sched.nranks)) {
    sink.error(-1, -1, -1, "core_of_rank has ", cores.size(),
               " entries for ", sched.nranks, " ranks");
    return false;
  }
  for (std::int32_t r = 0; r < sched.nranks; ++r) {
    const std::int64_t core = cores[static_cast<std::size_t>(r)];
    if (core < 0 || core >= machine.cores()) {
      sink.error(r, -1, -1, "rank ", r, " is bound to core ", core,
                 " outside machine '", machine.name(), "' with ",
                 machine.cores(), " cores");
      ok = false;
    }
  }
  if (!ok) {
    return false;
  }
  {
    // Two ranks sharing a core is legal (latency-only self routes) but is
    // almost always a mapping-generator bug worth surfacing.
    std::vector<std::int64_t> sorted = cores;
    std::sort(sorted.begin(), sorted.end());
    const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
    if (dup != sorted.end()) {
      sink.warn(-1, -1, -1, "two ranks share core ", *dup,
                "; their traffic is modelled latency-only");
    }
  }
  // The TimedExecutor shifts message ids by rep * messages_per_rep in
  // int32 arithmetic; overflow would alias messages across repetitions.
  const auto msgs_per_rep = static_cast<std::int64_t>(sched.messages.size());
  if (msgs_per_rep * job.repetitions >
      static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::max())) {
    sink.error(-1, -1, -1, "repetitions * messages (", job.repetitions, " * ",
               msgs_per_rep, ") overflows the 32-bit message id space");
    return false;
  }
  if (exec.msg_bytes.size() != sched.messages.size() ||
      exec.rank_rounds_begin.size() !=
          static_cast<std::size_t>(sched.nranks) + 1) {
    sink.error(-1, -1, -1,
               "execution structure does not match the schedule (",
               exec.msg_bytes.size(), " vs ", sched.messages.size(),
               " messages, ", exec.rank_rounds_begin.size(), " vs ",
               sched.nranks + 1, " rank offsets); was it derived from a "
               "different plan?");
    return false;
  }

  // Locate every message's send/recv round in the CSR, then resolve and
  // vet its route.
  facts.msgs.assign(sched.messages.size(), {});
  const std::int64_t total_rounds = exec.rank_rounds_begin.back();
  for (std::int64_t gi = 0; gi < total_rounds; ++gi) {
    const auto i = static_cast<std::size_t>(gi);
    for (std::int64_t k = exec.send_begin[i]; k < exec.send_begin[i + 1];
         ++k) {
      facts.msgs[static_cast<std::size_t>(
                     exec.send_msg[static_cast<std::size_t>(k)])]
          .send_gi = gi;
    }
    for (std::int64_t k = exec.recv_begin[i]; k < exec.recv_begin[i + 1];
         ++k) {
      facts.msgs[static_cast<std::size_t>(
                     exec.recv_msg[static_cast<std::size_t>(k)])]
          .recv_gi = gi;
    }
  }
  for (std::size_t m = 0; m < sched.messages.size(); ++m) {
    const simmpi::MsgInfo& info = sched.messages[m];
    MsgFacts& mf = facts.msgs[m];
    const auto msg_id = static_cast<std::int32_t>(m);
    if (mf.send_gi < 0 || mf.recv_gi < 0) {
      sink.error(info.src, -1, msg_id, "message ", m,
                 " is never ", mf.send_gi < 0 ? "sent" : "received",
                 " in the execution structure");
      ok = false;
      continue;
    }
    const int send_round = static_cast<int>(
        mf.send_gi -
        exec.rank_rounds_begin[static_cast<std::size_t>(info.src)]);
    const std::int64_t core_src = cores[static_cast<std::size_t>(info.src)];
    const std::int64_t core_dst = cores[static_cast<std::size_t>(info.dst)];
    mf.route = routes.route(core_src, core_dst);
    const RouteFacts& rf = routes.facts(mf.route);
    mf.latency = rf.latency;
    mf.eager = info.bytes() <= machine.costs().eager_threshold;
    mf.crosses_network = rf.raw_size > 0;
    if (core_src == core_dst && mf.crosses_network) {
      sink.error(info.src, send_round, msg_id,
                 "self-message on core ", core_src, " crosses ",
                 rf.raw_size, " channels; self traffic must be "
                 "latency-only");
      ok = false;
      continue;
    }
    if (core_src != core_dst && !mf.crosses_network) {
      sink.error(info.src, send_round, msg_id,
                 "message between distinct cores ", core_src, " and ",
                 core_dst, " resolved to an empty route");
      ok = false;
      continue;
    }
    // The simulator's RouteTable asserts (aborts) on these; report them as
    // analysis findings instead so a too-deep machine fails gracefully.
    if (rf.too_deep) {
      sink.error(info.src, send_round, msg_id,
                 "route crosses ", rf.raw_size,
                 " channels, above the simulator limit of ",
                 simnet::kMaxChannelsPerFlow);
      ok = false;
      continue;
    }
    mf.cap_min = rf.cap_min;
    if (mf.cap_min <= 0) {
      sink.error(info.src, send_round, msg_id,
                 "route bottleneck capacity is ", mf.cap_min,
                 "; transfers would never complete");
      ok = false;
      continue;
    }
    mf.transfer_floor =
        mf.latency + static_cast<double>(info.bytes()) / mf.cap_min;
  }
  if (!ok) {
    return false;
  }
  facts.round_cpu.resize(static_cast<std::size_t>(total_rounds));
  for (std::int64_t gi = 0; gi < total_rounds; ++gi) {
    facts.round_cpu[static_cast<std::size_t>(gi)] =
        round_cpu_time(exec, machine.costs(), gi);
  }
  return true;
}

/// One (channel, round, bytes) contribution; bucketed by channel with a
/// counting sort to aggregate without per-channel hash maps or a
/// comparison sort on the analyzer hot path.
struct ChannelTouch {
  simnet::ChannelId channel = -1;
  std::int32_t round = 0;
  std::int64_t bytes = 0;
};

void build_load_report(const topo::Machine& machine,
                       const std::vector<JobBinding>& jobs,
                       const std::vector<JobFacts>& facts,
                       const std::vector<double>& capacities,
                       const RouteCache& routes, int top_k,
                       LoadReport& load) {
  std::vector<ChannelTouch> touches;
  std::vector<double> round_straggler;  ///< slowest uncontended msg per round.
  // Per-channel totals over all jobs and repetitions, kept sparse via the
  // touched list so the flat arrays are only ever scanned where traffic is.
  std::vector<std::int64_t> chan_bytes(capacities.size(), 0);
  std::vector<std::int64_t> chan_flows(capacities.size(), 0);
  std::vector<simnet::ChannelId> touched;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobBinding& job = jobs[j];
    const simmpi::Schedule& sched = *job.schedule;
    const simmpi::PlanExec& exec = *job.exec;
    const auto reps = static_cast<std::int64_t>(job.repetitions);
    for (std::size_t m = 0; m < sched.messages.size(); ++m) {
      const MsgFacts& mf = facts[j].msgs[m];
      const std::int64_t bytes = sched.messages[m].bytes();
      if (!mf.crosses_network) {
        load.self_bytes += bytes * reps;
        continue;
      }
      load.total_bytes += bytes * reps;
      load.total_flows += reps;
      // Report rounds by the sender's local round index within one
      // repetition — the axis schedules are written along.
      const std::int64_t round =
          mf.send_gi - exec.rank_rounds_begin[static_cast<std::size_t>(
                           sched.messages[m].src)];
      if (round >= static_cast<std::int64_t>(load.rounds.size())) {
        load.rounds.resize(static_cast<std::size_t>(round) + 1);
        round_straggler.resize(static_cast<std::size_t>(round) + 1, 0.0);
      }
      RoundLoad& rl = load.rounds[static_cast<std::size_t>(round)];
      rl.bytes += bytes;
      rl.flows += 1;
      round_straggler[static_cast<std::size_t>(round)] =
          std::max(round_straggler[static_cast<std::size_t>(round)],
                   static_cast<double>(bytes) / mf.cap_min);
      const simnet::ChanSet& set = routes.facts(mf.route).channels;
      for (std::int32_t k = 0; k < set.count; ++k) {
        const simnet::ChannelId c = set.ids[static_cast<std::size_t>(k)];
        if (chan_flows[static_cast<std::size_t>(c)] == 0) {
          touched.push_back(c);
        }
        chan_bytes[static_cast<std::size_t>(c)] += bytes * reps;
        chan_flows[static_cast<std::size_t>(c)] += reps;
        touches.push_back({c, static_cast<std::int32_t>(round), bytes});
      }
    }
  }
  for (std::size_t r = 0; r < load.rounds.size(); ++r) {
    load.rounds[r].round = static_cast<std::int64_t>(r);
  }

  // Counting sort by channel: occurrence counts -> bucket offsets ->
  // scatter. O(touches + touched channels), no comparisons.
  std::sort(touched.begin(), touched.end());
  std::vector<std::int32_t> bucket_begin(touched.size() + 1, 0);
  std::vector<std::int32_t> bucket_of_channel(capacities.size(), -1);
  for (std::size_t t = 0; t < touched.size(); ++t) {
    bucket_of_channel[static_cast<std::size_t>(touched[t])] =
        static_cast<std::int32_t>(t);
  }
  for (const ChannelTouch& t : touches) {
    ++bucket_begin[static_cast<std::size_t>(
                       bucket_of_channel[static_cast<std::size_t>(t.channel)]) +
                   1];
  }
  for (std::size_t t = 1; t <= touched.size(); ++t) {
    bucket_begin[t] += bucket_begin[t - 1];
  }
  std::vector<ChannelTouch> bucketed(touches.size());
  {
    std::vector<std::int32_t> cursor(bucket_begin.begin(),
                                     bucket_begin.end() - 1);
    for (const ChannelTouch& t : touches) {
      const auto b = static_cast<std::size_t>(
          bucket_of_channel[static_cast<std::size_t>(t.channel)]);
      bucketed[static_cast<std::size_t>(cursor[b]++)] = t;
    }
  }

  // Per-round scratch, reset via the seen list after each channel.
  std::vector<std::int64_t> round_sum(load.rounds.size(), 0);
  std::vector<std::int32_t> rounds_seen;
  std::vector<ChannelLoad> ranked;
  ranked.reserve(touched.size());
  for (std::size_t t = 0; t < touched.size(); ++t) {
    const simnet::ChannelId id = touched[t];
    ChannelLoad cl;
    cl.channel = id;
    cl.bytes = chan_bytes[static_cast<std::size_t>(id)];
    cl.flows = chan_flows[static_cast<std::size_t>(id)];
    const double cap = capacities[static_cast<std::size_t>(id)];
    cl.serialization_seconds = static_cast<double>(cl.bytes) / cap;
    rounds_seen.clear();
    for (std::int32_t e = bucket_begin[t]; e < bucket_begin[t + 1]; ++e) {
      const ChannelTouch& touch = bucketed[static_cast<std::size_t>(e)];
      const auto r = static_cast<std::size_t>(touch.round);
      if (round_sum[r] == 0 && touch.bytes != 0) {
        rounds_seen.push_back(touch.round);
      }
      round_sum[r] += touch.bytes;
    }
    for (const std::int32_t round : rounds_seen) {
      const auto r = static_cast<std::size_t>(round);
      const std::int64_t bytes = round_sum[r];
      round_sum[r] = 0;
      const double straggler = round_straggler[r];
      if (straggler <= 0) {
        continue;
      }
      const double over = static_cast<double>(bytes) / cap / straggler;
      cl.oversubscription = std::max(cl.oversubscription, over);
      RoundLoad& rl = load.rounds[r];
      if (over > rl.max_oversubscription) {
        rl.max_oversubscription = over;
        rl.hottest = id;
      }
    }
    ranked.push_back(std::move(cl));
  }
  for (RoundLoad& rl : load.rounds) {
    if (rl.hottest >= 0) {
      rl.hottest_name = channel_name(machine, rl.hottest);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ChannelLoad& a, const ChannelLoad& b) {
              if (a.serialization_seconds != b.serialization_seconds) {
                return a.serialization_seconds > b.serialization_seconds;
              }
              return a.channel < b.channel;
            });
  if (static_cast<int>(ranked.size()) > top_k) {
    ranked.resize(static_cast<std::size_t>(top_k));
  }
  // Names are built only for the channels that survived the cut.
  for (ChannelLoad& cl : ranked) {
    cl.name = channel_name(machine, cl.channel);
  }
  load.top_channels = std::move(ranked);
}

/// Critical-path DP over (job, rank, virtual round) nodes, plus the
/// per-channel serialization bound.
///
/// Each node splits into a READY event (previous round finished + this
/// round's CPU cost) and a FINISH event (all posted ops complete). A
/// message constrains the receiver's FINISH by the sender's READY — not
/// its FINISH — which is what lets the ubiquitous same-round exchange
/// (a<->b sendrecv) stay acyclic: posts are non-blocking, only the
/// waitall orders rounds. FINISH events left unprocessed mean a genuine
/// happens-before cycle: diagnosed, and the bound stays 0 (trivially
/// sound).
/// When `trace` is non-null, every popped worklist event is appended in
/// processing order. The pop order is payload-invariant — pend counts and
/// worklist pushes depend only on the CSR edges, never on message bytes —
/// so BoundStructure::evaluate can replay the recorded sequence against a
/// different payload and reproduce this DP's value operations exactly.
void build_bound(const std::vector<JobBinding>& jobs,
                 std::vector<JobFacts>& facts,
                 const std::vector<double>& capacities,
                 const RouteCache& routes, Sink& sink, Bound& bound,
                 std::vector<std::int64_t>* trace = nullptr) {
  // Node numbering: per job, per rank, virtual round vr in
  // [0, rounds_of(rank) * repetitions).
  std::int64_t nnodes = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    facts[j].node_base = nnodes;
    const simmpi::PlanExec& exec = *jobs[j].exec;
    const std::int32_t nranks = jobs[j].schedule->nranks;
    facts[j].rank_node_base.assign(static_cast<std::size_t>(nranks) + 1, 0);
    for (std::int32_t r = 0; r < nranks; ++r) {
      facts[j].rank_node_base[static_cast<std::size_t>(r) + 1] =
          facts[j].rank_node_base[static_cast<std::size_t>(r)] +
          exec.rounds_of(r) * jobs[j].repetitions;
    }
    nnodes += facts[j].rank_node_base[static_cast<std::size_t>(nranks)];
  }

  const auto n = static_cast<std::size_t>(nnodes);
  std::vector<double> ready(n, 0.0);
  std::vector<double> finish(n, 0.0);
  // Max over constraints a node's FINISH must respect beyond its own
  // READY: incoming message floors and its own rendezvous floors.
  std::vector<double> inbound(n, 0.0);
  // FINISH prerequisites outstanding: own READY plus one per incoming
  // receive edge.
  std::vector<std::int32_t> pend(n, 0);

  const auto node_of = [&](std::size_t j, std::int32_t rank,
                           std::int64_t vr) {
    return facts[j].node_base +
           facts[j].rank_node_base[static_cast<std::size_t>(rank)] + vr;
  };

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const simmpi::PlanExec& exec = *jobs[j].exec;
    const std::int32_t nranks = jobs[j].schedule->nranks;
    for (std::int32_t r = 0; r < nranks; ++r) {
      const std::int64_t rounds = exec.rounds_of(r);
      for (std::int64_t vr = 0; vr < rounds * jobs[j].repetitions; ++vr) {
        pend[static_cast<std::size_t>(node_of(j, r, vr))] = 1;
      }
    }
    for (std::size_t m = 0; m < facts[j].msgs.size(); ++m) {
      const MsgFacts& mf = facts[j].msgs[m];
      const simmpi::MsgInfo& info = jobs[j].schedule->messages[m];
      const std::int64_t recv_local =
          mf.recv_gi -
          exec.rank_rounds_begin[static_cast<std::size_t>(info.dst)];
      const std::int64_t rounds = exec.rounds_of(info.dst);
      for (int rep = 0; rep < jobs[j].repetitions; ++rep) {
        pend[static_cast<std::size_t>(
            node_of(j, info.dst, rep * rounds + recv_local))] += 1;
      }
    }
  }

  // Worklist events: 2 * node = READY computable, 2 * node + 1 = FINISH
  // computable. READY of a rank's first virtual round is computable
  // immediately; every later READY is triggered by the previous FINISH.
  std::vector<std::int64_t> worklist;
  worklist.reserve(n);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (std::int32_t r = 0; r < jobs[j].schedule->nranks; ++r) {
      if (jobs[j].exec->rounds_of(r) > 0) {
        worklist.push_back(2 * node_of(j, r, 0));
      }
    }
  }

  std::size_t finished = 0;
  double cp = 0.0;
  // Channel bound inputs, collected as sender READY events fire; flat
  // arrays + a touched list keep the hot loop hash-free.
  std::vector<double> chan_entry(capacities.size(), kInf);
  std::vector<std::int64_t> chan_bytes(capacities.size(), 0);
  std::vector<simnet::ChannelId> chan_touched;

  while (!worklist.empty()) {
    const std::int64_t event = worklist.back();
    worklist.pop_back();
    if (trace != nullptr) {
      trace->push_back(event);
    }
    const std::int64_t node = event / 2;
    // Locate the node from the stored bases.
    std::size_t j = 0;
    while (j + 1 < jobs.size() && facts[j + 1].node_base <= node) {
      ++j;
    }
    const std::int64_t local = node - facts[j].node_base;
    const auto& rbase = facts[j].rank_node_base;
    const auto rit = std::upper_bound(rbase.begin(), rbase.end(), local);
    const auto rank =
        static_cast<std::int32_t>(std::distance(rbase.begin(), rit)) - 1;
    const std::int64_t vr = local - rbase[static_cast<std::size_t>(rank)];
    const simmpi::PlanExec& exec = *jobs[j].exec;
    const std::int64_t rounds = exec.rounds_of(rank);
    const std::int64_t gi =
        exec.rank_rounds_begin[static_cast<std::size_t>(rank)] + vr % rounds;
    const auto ni = static_cast<std::size_t>(node);
    const auto i = static_cast<std::size_t>(gi);

    if (event % 2 == 1) {
      // FINISH: all prerequisites delivered. NOT clamped to this round's
      // own ready: the engine completes an in-flight receive at transfer
      // time without waiting out the receiver's CPU serialisation, so a
      // recv-only round can finish before its own ready. The ready term
      // was merged into `inbound` at READY time exactly when the engine
      // guarantees it (eager sends complete at ready; op-less rounds
      // advance at ready).
      const double post = vr == 0 ? jobs[j].start_time
                                  : finish[static_cast<std::size_t>(node - 1)];
      finish[ni] = std::max(post, inbound[ni]);
      ++finished;
      if (vr == rounds * jobs[j].repetitions - 1) {
        cp = std::max(cp, finish[ni]);
      } else {
        worklist.push_back(2 * (node + 1));
      }
      continue;
    }

    // READY: the previous round's FINISH (or the job start) is known.
    ready[ni] = (vr == 0 ? jobs[j].start_time
                         : finish[static_cast<std::size_t>(node - 1)]) +
                facts[j].round_cpu[i];
    bool has_eager_send = false;
    for (std::int64_t k = exec.send_begin[i]; k < exec.send_begin[i + 1];
         ++k) {
      const auto m = static_cast<std::size_t>(
          exec.send_msg[static_cast<std::size_t>(k)]);
      const MsgFacts& mf = facts[j].msgs[m];
      const simmpi::MsgInfo& info = jobs[j].schedule->messages[m];
      // The receiver's FINISH of the same repetition waits at least the
      // transfer floor past this READY.
      const std::int64_t recv_local =
          mf.recv_gi -
          exec.rank_rounds_begin[static_cast<std::size_t>(info.dst)];
      const std::int64_t rv =
          vr / rounds * exec.rounds_of(info.dst) + recv_local;
      const std::int64_t recv_node = node_of(j, info.dst, rv);
      const auto ri = static_cast<std::size_t>(recv_node);
      inbound[ri] = std::max(inbound[ri], ready[ni] + mf.transfer_floor);
      if (--pend[ri] == 0) {
        worklist.push_back(2 * recv_node + 1);
      }
      if (mf.eager) {
        has_eager_send = true;
      } else {
        // Rendezvous sends complete no earlier than their own transfer
        // floor (the receiver-ready term is dropped to keep the DP
        // acyclic — still a valid lower bound).
        inbound[ni] = std::max(inbound[ni], ready[ni] + mf.transfer_floor);
      }
      if (mf.crosses_network && vr / rounds == 0) {
        // ready is non-decreasing across repetitions, so repetition 0
        // holds each channel's earliest possible entry.
        const double entry = ready[ni] + mf.latency;
        const simnet::ChanSet& set = routes.facts(mf.route).channels;
        for (std::int32_t s = 0; s < set.count; ++s) {
          const auto c = static_cast<std::size_t>(
              set.ids[static_cast<std::size_t>(s)]);
          if (chan_bytes[c] == 0) {
            chan_touched.push_back(set.ids[static_cast<std::size_t>(s)]);
          }
          chan_entry[c] = std::min(chan_entry[c], entry);
          chan_bytes[c] += info.bytes() * jobs[j].repetitions;
        }
      }
    }
    for (std::int64_t k = exec.recv_begin[i]; k < exec.recv_begin[i + 1];
         ++k) {
      const auto m = static_cast<std::size_t>(
          exec.recv_msg[static_cast<std::size_t>(k)]);
      const MsgFacts& mf = facts[j].msgs[m];
      if (!mf.eager) {
        // Rendezvous transfers start only after the receiver posts.
        inbound[ni] = std::max(inbound[ni], ready[ni] + mf.transfer_floor);
      }
    }
    // The engine only guarantees finish >= ready when an eager send
    // completes at ready, or when the round has no network ops and
    // advances at ready. A recv-only round's in-flight receives complete
    // at raw transfer time, possibly before the receiver's own ready.
    const bool has_sends = exec.send_begin[i + 1] > exec.send_begin[i];
    const bool has_recvs = exec.recv_begin[i + 1] > exec.recv_begin[i];
    if (has_eager_send || (!has_sends && !has_recvs)) {
      inbound[ni] = std::max(inbound[ni], ready[ni]);
    }
    if (--pend[ni] == 0) {
      worklist.push_back(2 * node + 1);
    }
  }

  if (finished != n) {
    sink.error(-1, -1, -1,
               "happens-before graph has a cycle through ", n - finished,
               " of ", n, " rounds; the schedule deadlocks on this binding "
               "and no finite lower bound exists");
    return;
  }

  double agg = 0.0;
  for (const simnet::ChannelId id : chan_touched) {
    const auto c = static_cast<std::size_t>(id);
    agg = std::max(agg, chan_entry[c] + static_cast<double>(chan_bytes[c]) /
                                            capacities[c]);
  }

  bound.critical_path = cp;
  bound.channel_serialization = agg;
  bound.lower_bound = std::max(cp, agg);
}

}  // namespace

std::string channel_name(const topo::Machine& machine, simnet::ChannelId id) {
  static constexpr const char* kKind[3] = {"egress", "ingress", "mem"};
  const std::int64_t dense = id / 3;
  std::ostringstream os;
  if (id < 0 || dense >= machine.total_components()) {
    os << "channel[" << id << "]";
    return os.str();
  }
  int level = 0;
  for (int k = machine.depth() - 1; k >= 0; --k) {
    if (machine.component_id(k, 0) <= dense) {
      level = k;
      break;
    }
  }
  os << machine.level(level).name << '[' << dense - machine.component_id(level, 0)
     << "]." << kKind[id % 3];
  return os.str();
}

std::string Result::to_string() const {
  std::ostringstream os;
  os << "binding analysis of machine '" << machine << "': "
     << report.summary() << '\n';
  for (const Diagnostic& d : report.diagnostics) {
    os << "  " << d.to_string() << '\n';
  }
  if (!report.clean()) {
    return os.str();
  }
  os << "traffic: " << load.total_bytes << " bytes in " << load.total_flows
     << " flows over " << load.rounds.size() << " rounds ("
     << load.self_bytes << " self bytes)\n";
  for (const RoundLoad& r : load.rounds) {
    os << "  round " << r.round << ": " << r.bytes << " bytes, " << r.flows
       << " flows";
    if (r.hottest >= 0) {
      os << ", max oversubscription " << r.max_oversubscription << " on "
         << r.hottest_name;
    }
    os << '\n';
  }
  if (!load.top_channels.empty()) {
    os << "hottest channels:\n";
    for (const ChannelLoad& c : load.top_channels) {
      os << "  " << c.name << ": " << c.bytes << " bytes in " << c.flows
         << " flows, " << c.serialization_seconds
         << " s serialization, oversubscription " << c.oversubscription
         << '\n';
    }
  }
  os << "lower bound: " << bound.lower_bound << " s (critical path "
     << bound.critical_path << " s, channel serialization "
     << bound.channel_serialization << " s)\n";
  return os.str();
}

Result analyze_jobs(const topo::Machine& machine,
                    const std::vector<JobBinding>& jobs,
                    const Options& options) {
  Result result;
  result.machine = machine.name();
  Sink sink(result.report, jobs.size() > 1);
  if (jobs.empty()) {
    return result;
  }
  RouteCache routes(machine);
  std::vector<JobFacts> facts(jobs.size());
  bool ok = true;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    sink.job(static_cast<int>(j));
    ok = check_job(machine, jobs[j], routes, sink, facts[j]) && ok;
  }
  if (!ok) {
    return result;
  }
  sink.job(-1);
  if (!options.load_report && !options.lower_bound) {
    return result;  // preverify configuration: diagnostics only.
  }
  const std::vector<double> capacities = simnet::channel_capacities(machine);
  if (options.load_report) {
    build_load_report(machine, jobs, facts, capacities, routes, options.top_k,
                      result.load);
  }
  if (options.lower_bound) {
    build_bound(jobs, facts, capacities, routes, sink, result.bound);
  }
  return result;
}

Result analyze(const simmpi::Plan& plan, const topo::Machine& machine,
               const std::vector<std::int64_t>& core_of_rank,
               const Options& options) {
  JobBinding job;
  job.schedule = &plan.schedule;
  job.exec = &plan.exec;
  job.repetitions = plan.repetitions;
  job.core_of_rank = &core_of_rank;
  return analyze_jobs(machine, {job}, options);
}

// ---- BoundStructure -------------------------------------------------------

/// The frozen payload-invariant half of one analysis. Job structure is
/// DEEP-COPIED (CSR arrays, endpoints, cores): JobBinding is non-owning and
/// the plans behind a tune candidate can be evicted from the PlanCache
/// between the build and a later evaluate, so pointers must never outlive
/// the call that passed them in.
struct BoundStructure::Impl {
  /// One job's structural snapshot plus the invariant message facts.
  struct JobStruct {
    std::int32_t nranks = 0;
    int repetitions = 1;
    double start_time = 0;
    std::vector<std::int64_t> cores;
    std::vector<std::int32_t> msg_src;  ///< per message; bytes NOT kept.
    std::vector<std::int32_t> msg_dst;
    std::vector<std::int64_t> rank_rounds_begin;
    std::vector<std::int64_t> send_begin;
    std::vector<std::int64_t> recv_begin;
    std::vector<std::int32_t> send_msg;
    std::vector<std::int32_t> recv_msg;
    /// Invariant per-message facts: send_gi/recv_gi, route id, latency,
    /// cap_min, crosses_network. The eager/transfer_floor fields hold the
    /// BUILD payload's values and are recomputed per evaluate.
    std::vector<MsgFacts> msgs;
    std::int64_t node_base = 0;
    std::vector<std::int64_t> rank_node_base;
  };

  std::string fingerprint;   ///< topo::machine_fingerprint at build time.
  std::string machine_name;
  Report report;             ///< payload-invariant diagnostics, verbatim.
  bool clean_ok = false;
  std::vector<double> capacities;   ///< simnet::channel_capacities snapshot.
  std::vector<RouteFacts> routes;   ///< by RouteCache id.
  std::vector<JobStruct> jobs;
  std::vector<std::int64_t> trace;  ///< popped DP events, processing order.
  std::int64_t nnodes = 0;
};

BoundStructure::BoundStructure() = default;
BoundStructure::~BoundStructure() = default;
BoundStructure::BoundStructure(BoundStructure&&) noexcept = default;
BoundStructure& BoundStructure::operator=(BoundStructure&&) noexcept = default;

bool BoundStructure::clean() const {
  return impl_ != nullptr && impl_->clean_ok;
}

BoundStructure BoundStructure::build(const topo::Machine& machine,
                                     const std::vector<JobBinding>& jobs,
                                     Result& fresh) {
  BoundStructure s;
  s.impl_ = std::make_unique<Impl>();
  Impl& im = *s.impl_;
  im.fingerprint = topo::machine_fingerprint(machine);
  im.machine_name = machine.name();

  // Mirror analyze_jobs(machine, jobs, {load_report=false}) exactly, with
  // the DP trace recorded alongside.
  fresh = Result{};
  fresh.machine = machine.name();
  Sink sink(fresh.report, jobs.size() > 1);
  if (jobs.empty()) {
    return s;
  }
  RouteCache routes(machine);
  std::vector<JobFacts> facts(jobs.size());
  bool ok = true;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    sink.job(static_cast<int>(j));
    ok = check_job(machine, jobs[j], routes, sink, facts[j]) && ok;
  }
  if (ok) {
    sink.job(-1);
    im.capacities = simnet::channel_capacities(machine);
    build_bound(jobs, facts, im.capacities, routes, sink, fresh.bound,
                &im.trace);
  }
  im.report = fresh.report;
  im.clean_ok = ok && fresh.report.clean();
  if (!im.clean_ok) {
    return s;  // defective bindings are analyzed fresh every time.
  }

  im.routes = routes.all();
  im.jobs.resize(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const simmpi::Schedule& sched = *jobs[j].schedule;
    const simmpi::PlanExec& exec = *jobs[j].exec;
    Impl::JobStruct& js = im.jobs[j];
    js.nranks = sched.nranks;
    js.repetitions = jobs[j].repetitions;
    js.start_time = jobs[j].start_time;
    js.cores = *jobs[j].core_of_rank;
    js.msg_src.reserve(sched.messages.size());
    js.msg_dst.reserve(sched.messages.size());
    for (const simmpi::MsgInfo& info : sched.messages) {
      js.msg_src.push_back(info.src);
      js.msg_dst.push_back(info.dst);
    }
    js.rank_rounds_begin = exec.rank_rounds_begin;
    js.send_begin = exec.send_begin;
    js.recv_begin = exec.recv_begin;
    js.send_msg = exec.send_msg;
    js.recv_msg = exec.recv_msg;
    js.msgs = std::move(facts[j].msgs);
    js.node_base = facts[j].node_base;
    js.rank_node_base = std::move(facts[j].rank_node_base);
    im.nnodes = js.node_base +
                js.rank_node_base[static_cast<std::size_t>(js.nranks)];
  }
  return s;
}

bool BoundStructure::compatible(const topo::Machine& machine,
                                const std::vector<JobBinding>& jobs) const {
  // Unclean structures keep no structural snapshot; they never match.
  if (impl_ == nullptr || !impl_->clean_ok) {
    return false;
  }
  const Impl& im = *impl_;
  if (jobs.size() != im.jobs.size() ||
      topo::machine_fingerprint(machine) != im.fingerprint) {
    return false;
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobBinding& job = jobs[j];
    const Impl::JobStruct& js = im.jobs[j];
    if (job.schedule == nullptr || job.exec == nullptr ||
        job.core_of_rank == nullptr) {
      return false;
    }
    const simmpi::Schedule& sched = *job.schedule;
    const simmpi::PlanExec& exec = *job.exec;
    // start_time compares bit-exactly: any difference shifts every DP
    // value, so only the identical double may reuse the recorded report.
    if (sched.nranks != js.nranks || job.repetitions != js.repetitions ||
        job.start_time != js.start_time || *job.core_of_rank != js.cores) {
      return false;
    }
    if (sched.messages.size() != js.msg_src.size()) {
      return false;
    }
    for (std::size_t m = 0; m < sched.messages.size(); ++m) {
      if (sched.messages[m].src != js.msg_src[m] ||
          sched.messages[m].dst != js.msg_dst[m]) {
        return false;
      }
    }
    if (exec.rank_rounds_begin != js.rank_rounds_begin ||
        exec.send_begin != js.send_begin ||
        exec.recv_begin != js.recv_begin || exec.send_msg != js.send_msg ||
        exec.recv_msg != js.recv_msg) {
      return false;
    }
    // The payload-dependent arrays may hold any values, but evaluate()
    // indexes them, so their extents must cover the structure.
    const std::int64_t total_rounds = exec.rank_rounds_begin.back();
    if (exec.msg_bytes.size() != sched.messages.size() ||
        exec.round_compute.size() < static_cast<std::size_t>(total_rounds) ||
        exec.round_copy_doubles.size() <
            static_cast<std::size_t>(total_rounds)) {
      return false;
    }
  }
  return true;
}

Result BoundStructure::evaluate(const topo::Machine& machine,
                                const std::vector<JobBinding>& jobs) const {
  MR_EXPECT(clean(), "evaluate() requires a clean BoundStructure");
  const Impl& im = *impl_;
  Result result;
  result.machine = im.machine_name;
  result.report = im.report;  // payload-invariant, verbatim.
  const topo::MessagingCosts& costs = machine.costs();

  // Payload-dependent terms, recomputed with the exact expressions
  // check_job uses so every double matches the fresh analysis bit for bit.
  struct JobEval {
    std::vector<double> floor;        ///< latency + bytes / cap_min.
    std::vector<std::uint8_t> eager;  ///< bytes <= eager_threshold.
    std::vector<double> round_cpu;
  };
  std::vector<JobEval> ev(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const simmpi::Schedule& sched = *jobs[j].schedule;
    const simmpi::PlanExec& exec = *jobs[j].exec;
    const Impl::JobStruct& js = im.jobs[j];
    const std::size_t nmsgs = sched.messages.size();
    ev[j].floor.resize(nmsgs);
    ev[j].eager.resize(nmsgs);
    for (std::size_t m = 0; m < nmsgs; ++m) {
      const std::int64_t bytes = sched.messages[m].bytes();
      ev[j].eager[m] = bytes <= costs.eager_threshold ? 1 : 0;
      ev[j].floor[m] =
          js.msgs[m].latency + static_cast<double>(bytes) / js.msgs[m].cap_min;
    }
    const std::int64_t total_rounds = exec.rank_rounds_begin.back();
    ev[j].round_cpu.resize(static_cast<std::size_t>(total_rounds));
    for (std::int64_t gi = 0; gi < total_rounds; ++gi) {
      ev[j].round_cpu[static_cast<std::size_t>(gi)] =
          round_cpu_time(exec, costs, gi);
    }
  }

  // Replay the recorded DP: identical event order, identical value
  // operations, payload terms swapped in. No pend counts or worklist — the
  // trace already encodes the schedule (and proves it acyclic).
  const auto n = static_cast<std::size_t>(im.nnodes);
  std::vector<double> ready(n, 0.0);
  std::vector<double> finish(n, 0.0);
  std::vector<double> inbound(n, 0.0);
  double cp = 0.0;
  std::vector<double> chan_entry(im.capacities.size(), kInf);
  std::vector<std::int64_t> chan_bytes(im.capacities.size(), 0);
  std::vector<simnet::ChannelId> chan_touched;

  for (const std::int64_t event : im.trace) {
    const std::int64_t node = event / 2;
    std::size_t j = 0;
    while (j + 1 < im.jobs.size() && im.jobs[j + 1].node_base <= node) {
      ++j;
    }
    const Impl::JobStruct& js = im.jobs[j];
    const std::int64_t local = node - js.node_base;
    const auto& rbase = js.rank_node_base;
    const auto rit = std::upper_bound(rbase.begin(), rbase.end(), local);
    const auto rank =
        static_cast<std::int32_t>(std::distance(rbase.begin(), rit)) - 1;
    const std::int64_t vr = local - rbase[static_cast<std::size_t>(rank)];
    const simmpi::PlanExec& exec = *jobs[j].exec;
    const std::int64_t rounds = exec.rounds_of(rank);
    const std::int64_t gi =
        exec.rank_rounds_begin[static_cast<std::size_t>(rank)] + vr % rounds;
    const auto ni = static_cast<std::size_t>(node);
    const auto i = static_cast<std::size_t>(gi);

    if (event % 2 == 1) {
      const double post = vr == 0 ? js.start_time
                                  : finish[static_cast<std::size_t>(node - 1)];
      finish[ni] = std::max(post, inbound[ni]);
      if (vr == rounds * js.repetitions - 1) {
        cp = std::max(cp, finish[ni]);
      }
      continue;
    }

    ready[ni] = (vr == 0 ? js.start_time
                         : finish[static_cast<std::size_t>(node - 1)]) +
                ev[j].round_cpu[i];
    bool has_eager_send = false;
    for (std::int64_t k = exec.send_begin[i]; k < exec.send_begin[i + 1];
         ++k) {
      const auto m = static_cast<std::size_t>(
          exec.send_msg[static_cast<std::size_t>(k)]);
      const MsgFacts& mf = js.msgs[m];
      const simmpi::MsgInfo& info = jobs[j].schedule->messages[m];
      const std::int64_t recv_local =
          mf.recv_gi -
          exec.rank_rounds_begin[static_cast<std::size_t>(info.dst)];
      const std::int64_t rv =
          vr / rounds * exec.rounds_of(info.dst) + recv_local;
      const std::int64_t recv_node =
          js.node_base + rbase[static_cast<std::size_t>(info.dst)] + rv;
      const auto ri = static_cast<std::size_t>(recv_node);
      inbound[ri] = std::max(inbound[ri], ready[ni] + ev[j].floor[m]);
      if (ev[j].eager[m] != 0) {
        has_eager_send = true;
      } else {
        inbound[ni] = std::max(inbound[ni], ready[ni] + ev[j].floor[m]);
      }
      if (mf.crosses_network && vr / rounds == 0) {
        const double entry = ready[ni] + mf.latency;
        const simnet::ChanSet& set = im.routes[static_cast<std::size_t>(
                                                   mf.route)].channels;
        for (std::int32_t s = 0; s < set.count; ++s) {
          const auto c = static_cast<std::size_t>(
              set.ids[static_cast<std::size_t>(s)]);
          if (chan_bytes[c] == 0) {
            chan_touched.push_back(set.ids[static_cast<std::size_t>(s)]);
          }
          chan_entry[c] = std::min(chan_entry[c], entry);
          chan_bytes[c] += info.bytes() * js.repetitions;
        }
      }
    }
    for (std::int64_t k = exec.recv_begin[i]; k < exec.recv_begin[i + 1];
         ++k) {
      const auto m = static_cast<std::size_t>(
          exec.recv_msg[static_cast<std::size_t>(k)]);
      if (ev[j].eager[m] == 0) {
        inbound[ni] = std::max(inbound[ni], ready[ni] + ev[j].floor[m]);
      }
    }
    const bool has_sends = exec.send_begin[i + 1] > exec.send_begin[i];
    const bool has_recvs = exec.recv_begin[i + 1] > exec.recv_begin[i];
    if (has_eager_send || (!has_sends && !has_recvs)) {
      inbound[ni] = std::max(inbound[ni], ready[ni]);
    }
  }

  double agg = 0.0;
  for (const simnet::ChannelId id : chan_touched) {
    const auto c = static_cast<std::size_t>(id);
    agg = std::max(agg, chan_entry[c] + static_cast<double>(chan_bytes[c]) /
                                            im.capacities[c]);
  }
  result.bound.critical_path = cp;
  result.bound.channel_serialization = agg;
  result.bound.lower_bound = std::max(cp, agg);
  return result;
}

// ---- structure_key --------------------------------------------------------

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ bytes[i]) * kFnvPrime;
  }
  return h;
}

template <typename T>
std::uint64_t fnv1a_vec(std::uint64_t h, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  h = fnv1a(h, v.data(), v.size() * sizeof(T));
  // Fold in the length so adjacent arrays can't alias across boundaries.
  const auto size = static_cast<std::uint64_t>(v.size());
  return fnv1a(h, &size, sizeof(size));
}

}  // namespace

std::uint64_t structure_key(const topo::Machine& machine,
                            const std::vector<JobBinding>& jobs) {
  const std::string fp = topo::machine_fingerprint(machine);
  std::uint64_t h = fnv1a(kFnvOffset, fp.data(), fp.size());
  for (const JobBinding& job : jobs) {
    if (job.schedule == nullptr || job.exec == nullptr ||
        job.core_of_rank == nullptr) {
      // Defective bindings never cache; any stable value works.
      h = fnv1a(h, "null", 4);
      continue;
    }
    const simmpi::Schedule& sched = *job.schedule;
    const simmpi::PlanExec& exec = *job.exec;
    const std::int64_t scalars[3] = {
        static_cast<std::int64_t>(sched.nranks),
        static_cast<std::int64_t>(job.repetitions), 0};
    h = fnv1a(h, scalars, sizeof(scalars));
    h = fnv1a(h, &job.start_time, sizeof(job.start_time));
    h = fnv1a_vec(h, *job.core_of_rank);
    for (const simmpi::MsgInfo& info : sched.messages) {
      const std::int32_t ends[2] = {info.src, info.dst};
      h = fnv1a(h, ends, sizeof(ends));
    }
    h = fnv1a_vec(h, exec.rank_rounds_begin);
    h = fnv1a_vec(h, exec.send_begin);
    h = fnv1a_vec(h, exec.recv_begin);
    h = fnv1a_vec(h, exec.send_msg);
    h = fnv1a_vec(h, exec.recv_msg);
  }
  return h;
}

// ---- BoundCache -----------------------------------------------------------

Result BoundCache::analyze(const topo::Machine& machine,
                           const std::vector<JobBinding>& jobs,
                           bool* structure_reused) {
  if (structure_reused != nullptr) {
    *structure_reused = false;
  }
  const std::uint64_t key = structure_key(machine, jobs);
  std::shared_ptr<const BoundStructure> cached;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.recency);
      cached = it->second.structure;
    }
  }
  // Evaluate outside the lock; the structure is immutable and shared_ptr
  // keeps it alive across a concurrent eviction.
  if (cached != nullptr && cached->compatible(machine, jobs)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++hits_;
    }
    if (structure_reused != nullptr) {
      *structure_reused = true;
    }
    return cached->evaluate(machine, jobs);
  }

  // Miss (cold key, or a hash collision whose exact check failed): run the
  // full analysis outside the lock; two threads racing the same key both
  // build — both sound, last one lands in the cache.
  auto built = std::make_shared<BoundStructure>();
  Result fresh;
  *built = BoundStructure::build(machine, jobs, fresh);
  const bool cacheable = built->clean() && !jobs.empty();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    if (cacheable) {
      const auto it = map_.find(key);
      if (it != map_.end()) {
        it->second.structure = std::move(built);
        lru_.splice(lru_.begin(), lru_, it->second.recency);
      } else {
        lru_.push_front(key);
        map_.emplace(key, Entry{std::move(built), lru_.begin()});
        enforce_capacity_locked();
      }
    }
  }
  return fresh;
}

BoundCache::Stats BoundCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = map_.size();
  return s;
}

void BoundCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

void BoundCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  enforce_capacity_locked();
}

std::size_t BoundCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void BoundCache::enforce_capacity_locked() {
  if (capacity_ == 0) {
    return;
  }
  while (map_.size() > capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++evictions_;
  }
}

}  // namespace mr::verify::binding
