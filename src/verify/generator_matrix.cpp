#include "mixradix/verify/generator_matrix.hpp"

#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/simmpi/registry.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::verify {

using simmpi::Schedule;

namespace {

// The per-algorithm generators, support predicates, and the canonical
// alltoallv counts fixture all live in the simmpi algorithm registry
// (mixradix/simmpi/registry.hpp). This file only adds the composition
// shapes — the schedule forms the sweeps actually replay (steady-state
// repetition, back-to-back collectives, simultaneous subcommunicators).

/// Two part-p communicators interleaved over 2p global ranks: part 0 on the
/// even ranks, part 1 on the odd ones.
Schedule interleaved_merge(const Schedule& part) {
  std::vector<std::int32_t> evens, odds;
  for (std::int32_t r = 0; r < part.nranks; ++r) {
    evens.push_back(2 * r);
    odds.push_back(2 * r + 1);
  }
  return simmpi::merge({part, part}, {evens, odds}, 2 * part.nranks);
}

struct Composition {
  const char* name;
  Schedule (*make)(std::int32_t p, std::int64_t count);
};

const Composition kCompositions[] = {
    {"repeat",
     [](std::int32_t p, std::int64_t c) {
       return simmpi::repeat(simmpi::allreduce_ring(p, c), 3);
     }},
    {"concat",
     [](std::int32_t p, std::int64_t c) {
       return simmpi::concat({simmpi::allreduce_recursive_doubling(p, c),
                              simmpi::allgather_ring(p, c),
                              simmpi::barrier_dissemination(p)});
     }},
    {"merge",
     [](std::int32_t p, std::int64_t c) {
       return interleaved_merge(simmpi::allreduce_ring(p, c));
     }},
    {"concat_merge",
     [](std::int32_t p, std::int64_t c) {
       // Two interleaved subcommunicator allreduces, then a full-width
       // alltoall over all 2p ranks: a whole sweep iteration as one IR.
       return simmpi::concat({interleaved_merge(simmpi::allreduce_ring(p, c)),
                              simmpi::alltoall_pairwise(2 * p, c)});
     }},
};

const Composition* find_composition(const std::string& name) {
  for (const Composition& c : kCompositions) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  for (const auto& e : simmpi::algorithm_registry()) names.emplace_back(e.name);
  for (const Composition& c : kCompositions) names.emplace_back(c.name);
  return names;
}

bool supports(const std::string& name, std::int32_t p) {
  if (p < 1) return false;
  if (const auto* e = simmpi::find_algorithm(name)) return e->supported(p);
  return find_composition(name) != nullptr;
}

Schedule make_named(const std::string& name, std::int32_t p,
                    std::int64_t count, std::int32_t root) {
  if (const Composition* c = find_composition(name)) {
    MR_EXPECT(p >= 1, name + " does not support p = " + std::to_string(p));
    MR_EXPECT(count >= 1, "count must be >= 1");
    MR_EXPECT(root >= 0 && root < p, "root out of range");
    return c->make(p, count);
  }
  return simmpi::make_algorithm(name, p, count, root);
}

std::vector<MatrixPoint> generator_matrix(
    const std::vector<std::int32_t>& ranks,
    const std::vector<std::int64_t>& counts) {
  std::vector<MatrixPoint> points;
  const auto add = [&points](const char* name, bool rooted, std::int32_t p,
                             std::int64_t c) {
    std::vector<std::int32_t> roots{0};
    if (rooted && p > 1) roots.push_back(p - 1);
    for (const std::int32_t root : roots) {
      MatrixPoint point;
      point.algorithm = name;
      point.nranks = p;
      point.count = c;
      point.name = std::string(name) + "/p=" + std::to_string(p) +
                   "/c=" + std::to_string(c);
      if (rooted && p > 1) point.name += "/root=" + std::to_string(root);
      point.make = [name = std::string(name), p, c, root] {
        return make_named(name, p, c, root);
      };
      points.push_back(std::move(point));
    }
  };
  for (const auto& e : simmpi::algorithm_registry()) {
    for (const std::int32_t p : ranks) {
      if (p < 1 || !e.supported(p)) continue;
      for (const std::int64_t c : counts) add(e.name, e.rooted, p, c);
    }
  }
  for (const Composition& comp : kCompositions) {
    for (const std::int32_t p : ranks) {
      if (p < 1) continue;
      for (const std::int64_t c : counts) add(comp.name, false, p, c);
    }
  }
  return points;
}

}  // namespace mr::verify
