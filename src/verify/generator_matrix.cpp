#include "mixradix/verify/generator_matrix.hpp"

#include <algorithm>

#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::verify {

using simmpi::Schedule;

namespace {

bool is_power_of_two(std::int32_t p) { return p > 0 && (p & (p - 1)) == 0; }

/// Deterministic non-uniform counts matrix for alltoallv, including zero
/// entries (the generator's trickiest case).
std::vector<std::vector<std::int64_t>> v_counts(std::int32_t p,
                                                std::int64_t count) {
  const std::int64_t unit = (count + 3) / 4;
  std::vector<std::vector<std::int64_t>> counts(static_cast<std::size_t>(p));
  for (std::int32_t i = 0; i < p; ++i) {
    auto& row = counts[static_cast<std::size_t>(i)];
    row.resize(static_cast<std::size_t>(p));
    for (std::int32_t j = 0; j < p; ++j) {
      row[static_cast<std::size_t>(j)] = ((i + 2 * j) % 4) * unit;
    }
  }
  return counts;
}

/// Two part-p communicators interleaved over 2p global ranks: part 0 on the
/// even ranks, part 1 on the odd ones.
Schedule interleaved_merge(const Schedule& part) {
  std::vector<std::int32_t> evens, odds;
  for (std::int32_t r = 0; r < part.nranks; ++r) {
    evens.push_back(2 * r);
    odds.push_back(2 * r + 1);
  }
  return simmpi::merge({part, part}, {evens, odds}, 2 * part.nranks);
}

struct Entry {
  const char* name;
  bool rooted;
  bool (*supported)(std::int32_t p);
  Schedule (*make)(std::int32_t p, std::int64_t count, std::int32_t root);
};

constexpr bool any_p(std::int32_t) { return true; }

const Entry kEntries[] = {
    {"alltoall_pairwise", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::alltoall_pairwise(p, c);
     }},
    {"alltoall_bruck", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::alltoall_bruck(p, c);
     }},
    {"alltoall_linear", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::alltoall_linear(p, c);
     }},
    {"allgather_ring", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::allgather_ring(p, c);
     }},
    {"allgather_recursive_doubling", false, is_power_of_two,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::allgather_recursive_doubling(p, c);
     }},
    {"allgather_bruck", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::allgather_bruck(p, c);
     }},
    {"allreduce_recursive_doubling", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::allreduce_recursive_doubling(p, c);
     }},
    {"allreduce_ring", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::allreduce_ring(p, c);
     }},
    {"bcast_binomial", true, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t root) {
       return simmpi::bcast_binomial(p, c, root);
     }},
    {"bcast_scatter_allgather", true, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t root) {
       return simmpi::bcast_scatter_allgather(p, c, root);
     }},
    {"reduce_binomial", true, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t root) {
       return simmpi::reduce_binomial(p, c, root);
     }},
    {"gather_linear", true, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t root) {
       return simmpi::gather_linear(p, c, root);
     }},
    {"scatter_linear", true, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t root) {
       return simmpi::scatter_linear(p, c, root);
     }},
    {"scatter_binomial", true, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t root) {
       return simmpi::scatter_binomial(p, c, root);
     }},
    {"gather_binomial", true, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t root) {
       return simmpi::gather_binomial(p, c, root);
     }},
    {"reduce_scatter_ring", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::reduce_scatter_ring(p, c);
     }},
    {"scan_recursive_doubling", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::scan_recursive_doubling(p, c);
     }},
    {"barrier_dissemination", false, any_p,
     [](std::int32_t p, std::int64_t, std::int32_t) {
       return simmpi::barrier_dissemination(p);
     }},
    {"alltoallv_pairwise", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::alltoallv_pairwise(v_counts(p, c));
     }},
    // Compositions — the shapes the sweeps actually replay (steady-state
    // repetition, back-to-back collectives, simultaneous subcommunicators).
    {"repeat", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::repeat(simmpi::allreduce_ring(p, c), 3);
     }},
    {"concat", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return simmpi::concat({simmpi::allreduce_recursive_doubling(p, c),
                              simmpi::allgather_ring(p, c),
                              simmpi::barrier_dissemination(p)});
     }},
    {"merge", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       return interleaved_merge(simmpi::allreduce_ring(p, c));
     }},
    {"concat_merge", false, any_p,
     [](std::int32_t p, std::int64_t c, std::int32_t) {
       // Two interleaved subcommunicator allreduces, then a full-width
       // alltoall over all 2p ranks: a whole sweep iteration as one IR.
       return simmpi::concat({interleaved_merge(simmpi::allreduce_ring(p, c)),
                              simmpi::alltoall_pairwise(2 * p, c)});
     }},
};

const Entry* find_entry(const std::string& name) {
  for (const Entry& e : kEntries) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  for (const Entry& e : kEntries) names.emplace_back(e.name);
  return names;
}

bool supports(const std::string& name, std::int32_t p) {
  const Entry* e = find_entry(name);
  return e != nullptr && p >= 1 && e->supported(p);
}

Schedule make_named(const std::string& name, std::int32_t p,
                    std::int64_t count, std::int32_t root) {
  const Entry* e = find_entry(name);
  MR_EXPECT(e != nullptr, "unknown algorithm: " + name);
  MR_EXPECT(p >= 1 && e->supported(p),
            name + " does not support p = " + std::to_string(p));
  MR_EXPECT(count >= 1, "count must be >= 1");
  MR_EXPECT(root >= 0 && root < p, "root out of range");
  return e->make(p, count, root);
}

std::vector<MatrixPoint> generator_matrix(
    const std::vector<std::int32_t>& ranks,
    const std::vector<std::int64_t>& counts) {
  std::vector<MatrixPoint> points;
  for (const Entry& e : kEntries) {
    for (const std::int32_t p : ranks) {
      if (p < 1 || !e.supported(p)) continue;
      std::vector<std::int32_t> roots{0};
      if (e.rooted && p > 1) roots.push_back(p - 1);
      for (const std::int64_t c : counts) {
        for (const std::int32_t root : roots) {
          MatrixPoint point;
          point.algorithm = e.name;
          point.nranks = p;
          point.count = c;
          point.name = std::string(e.name) + "/p=" + std::to_string(p) +
                       "/c=" + std::to_string(c);
          if (e.rooted && p > 1) point.name += "/root=" + std::to_string(root);
          point.make = [&e, p, c, root] { return e.make(p, c, root); };
          points.push_back(std::move(point));
        }
      }
    }
  }
  return points;
}

}  // namespace mr::verify
