#include "mixradix/engine/engine.hpp"

#include <utility>

#include "mixradix/mr/equivalence.hpp"

namespace mr {

Engine::Engine(const EngineConfig& config)
    : config_(config),
      owned_cache_(
          std::make_unique<simmpi::PlanCache>(config.plan_cache_capacity)),
      cache_(owned_cache_.get()) {
  if (config.dedicated_threads > 0) {
    owned_pool_ = std::make_unique<util::ThreadPool>(config.dedicated_threads);
    pool_ = owned_pool_.get();
  }
}

Engine::Engine(SharedTag) : cache_(&simmpi::PlanCache::shared()) {
  // pool_ stays null: thread_pool() resolves to ThreadPool::shared()
  // lazily, so serial callers routed through the shared engine still
  // never spawn worker threads.
}

Engine::~Engine() = default;

Engine::WorkspaceLease Engine::workspace() {
  std::unique_ptr<simmpi::SimWorkspace> ws;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.workspace_checkouts;
    if (!idle_.empty()) {
      ws = std::move(idle_.back());
      idle_.pop_back();
    } else {
      ++counters_.workspaces_created;
    }
  }
  if (!ws) ws = std::make_unique<simmpi::SimWorkspace>();
  return WorkspaceLease(this, std::move(ws));
}

void Engine::return_workspace(std::unique_ptr<simmpi::SimWorkspace> ws) {
  std::lock_guard<std::mutex> lock(mutex_);
  idle_.push_back(std::move(ws));
}

void Engine::WorkspaceLease::release() {
  if (engine_ != nullptr && workspace_ != nullptr) {
    engine_->return_workspace(std::move(workspace_));
  }
  engine_ = nullptr;
}

Engine::Stats Engine::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = counters_;
    out.workspaces_idle = static_cast<std::int64_t>(idle_.size());
  }
  out.plan_cache = cache_->stats();
  return out;
}

void Engine::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_ = Stats{};
}

void Engine::record_run(const simmpi::TimedResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.sim_runs;
  counters_.events_processed += result.engine_stats.events_processed;
  counters_.flow_completions += result.total_flow_events;
  counters_.route_cache_hits += result.engine_stats.route_cache_hits;
  counters_.route_cache_misses += result.engine_stats.route_cache_misses;
}

void Engine::record_classify(const ClassifyStats& classify) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.classify_runs;
  counters_.orders_classified += classify.orders;
  counters_.classes_found += classify.classes;
  counters_.signatures_hashed += classify.signatures_hashed;
  counters_.collision_checks += classify.collision_checks;
  counters_.hash_collisions += classify.hash_collisions;
}

void Engine::record_tune(std::int64_t candidates_simulated,
                         std::int64_t sim_points) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.tune_runs;
  counters_.tune_candidates_simulated += candidates_simulated;
  counters_.tune_sim_points += sim_points;
}

Engine& Engine::shared() {
  static Engine engine{SharedTag{}};
  return engine;
}

}  // namespace mr
