#include "mixradix/engine/engine.hpp"

#include <algorithm>
#include <utility>

#include "mixradix/mr/equivalence.hpp"

namespace mr {

namespace {

/// Process-wide dedicated-thread budget state (cooperative cap).
struct ThreadBudget {
  std::mutex mutex;
  unsigned budget = 0;  ///< 0 = unlimited.
  unsigned in_use = 0;  ///< granted to live engines.
};

ThreadBudget& thread_budget() {
  static ThreadBudget budget;
  return budget;
}

/// Draw up to `requested` threads from the budget; never returns 0 so a
/// tenant engine arriving after the budget is exhausted still progresses
/// (one worker oversubscribes by at most 1 per engine, not by N).
unsigned acquire_dedicated_threads(unsigned requested) {
  ThreadBudget& b = thread_budget();
  std::lock_guard<std::mutex> lock(b.mutex);
  unsigned grant = requested;
  if (b.budget > 0) {
    const unsigned available = b.budget > b.in_use ? b.budget - b.in_use : 0;
    grant = std::min(requested, std::max(1u, available));
  }
  b.in_use += grant;
  return grant;
}

void release_dedicated_threads(unsigned grant) {
  if (grant == 0) return;
  ThreadBudget& b = thread_budget();
  std::lock_guard<std::mutex> lock(b.mutex);
  b.in_use -= std::min(b.in_use, grant);
}

}  // namespace

Engine::Engine(const EngineConfig& config)
    : config_(config),
      owned_cache_(
          std::make_unique<simmpi::PlanCache>(config.plan_cache_capacity)),
      cache_(owned_cache_.get()),
      bound_cache_(std::make_unique<verify::binding::BoundCache>(
          config.bound_cache_capacity)) {
  if (config.dedicated_threads > 0) {
    granted_ = acquire_dedicated_threads(config.dedicated_threads);
    owned_pool_ = std::make_unique<util::ThreadPool>(granted_);
    pool_ = owned_pool_.get();
  }
}

Engine::Engine(SharedTag)
    : cache_(&simmpi::PlanCache::shared()),
      bound_cache_(std::make_unique<verify::binding::BoundCache>()) {
  // pool_ stays null: thread_pool() resolves to ThreadPool::shared()
  // lazily, so serial callers routed through the shared engine still
  // never spawn worker threads.
}

Engine::~Engine() {
  // Join the dedicated pool before returning its threads to the budget so
  // a successor engine never sees the budget free while workers still run.
  owned_pool_.reset();
  release_dedicated_threads(granted_);
}

void Engine::set_dedicated_thread_budget(unsigned budget) {
  ThreadBudget& b = thread_budget();
  std::lock_guard<std::mutex> lock(b.mutex);
  b.budget = budget;
}

unsigned Engine::dedicated_thread_budget() {
  ThreadBudget& b = thread_budget();
  std::lock_guard<std::mutex> lock(b.mutex);
  return b.budget;
}

unsigned Engine::dedicated_threads_in_use() {
  ThreadBudget& b = thread_budget();
  std::lock_guard<std::mutex> lock(b.mutex);
  return b.in_use;
}

Engine::WorkspaceLease Engine::workspace() {
  std::unique_ptr<simmpi::SimWorkspace> ws;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.workspace_checkouts;
    if (!idle_.empty()) {
      ws = std::move(idle_.back());
      idle_.pop_back();
    } else {
      ++counters_.workspaces_created;
    }
  }
  if (!ws) ws = std::make_unique<simmpi::SimWorkspace>();
  return WorkspaceLease(this, std::move(ws));
}

void Engine::return_workspace(std::unique_ptr<simmpi::SimWorkspace> ws) {
  std::lock_guard<std::mutex> lock(mutex_);
  idle_.push_back(std::move(ws));
}

void Engine::WorkspaceLease::release() {
  if (engine_ != nullptr && workspace_ != nullptr) {
    engine_->return_workspace(std::move(workspace_));
  }
  engine_ = nullptr;
}

Engine::Stats Engine::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = counters_;
    out.workspaces_idle = static_cast<std::int64_t>(idle_.size());
  }
  out.plan_cache = cache_->stats();
  out.bound_cache = bound_cache_->stats();
  return out;
}

void Engine::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_ = Stats{};
}

void Engine::record_run(const simmpi::TimedResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.sim_runs;
  counters_.events_processed += result.engine_stats.events_processed;
  counters_.flow_completions += result.total_flow_events;
  counters_.route_cache_hits += result.engine_stats.route_cache_hits;
  counters_.route_cache_misses += result.engine_stats.route_cache_misses;
}

void Engine::record_classify(const ClassifyStats& classify) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.classify_runs;
  counters_.orders_classified += classify.orders;
  counters_.classes_found += classify.classes;
  counters_.signatures_hashed += classify.signatures_hashed;
  counters_.collision_checks += classify.collision_checks;
  counters_.hash_collisions += classify.hash_collisions;
}

void Engine::record_tune(std::int64_t candidates_simulated,
                         std::int64_t sim_points) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.tune_runs;
  counters_.tune_candidates_simulated += candidates_simulated;
  counters_.tune_sim_points += sim_points;
}

Engine& Engine::shared() {
  static Engine engine{SharedTag{}};
  return engine;
}

}  // namespace mr
