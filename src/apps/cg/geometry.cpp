#include "mixradix/apps/cg.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::apps::cg {

CgClass cg_class(char name) {
  // n and nonzer per NPB specification; nnz ~= n * (nonzer+1)^2 / 2 is the
  // usual back-of-envelope for makea()'s output, rounded to published
  // nonzero counts.
  switch (name) {
    case 'S':
      return CgClass{'S', 1400, 78148, 15, 25};
    case 'A':
      return CgClass{'A', 14000, 1853104, 15, 25};
    case 'B':
      return CgClass{'B', 75000, 13708072, 75, 25};
    case 'C':
      return CgClass{'C', 150000, 36121058, 75, 25};
    default:
      MR_EXPECT(false, std::string("unknown CG class '") + name + "'");
  }
  return {};
}

Grid npb_grid(std::int32_t p) {
  MR_EXPECT(p >= 1 && (p & (p - 1)) == 0, "NPB-CG needs a power-of-two size");
  int k = 0;
  while ((std::int32_t{1} << k) < p) ++k;
  Grid g;
  g.rows = std::int32_t{1} << ((k + 1) / 2);
  g.cols = std::int32_t{1} << (k / 2);
  MR_ASSERT_INTERNAL(g.rows * g.cols == p && g.rows >= g.cols);
  return g;
}

}  // namespace mr::apps::cg
