#include <algorithm>

#include "mixradix/apps/cg.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::apps::cg {

namespace {

int log2_exact(std::int32_t v) {
  int k = 0;
  while ((std::int32_t{1} << k) < v) ++k;
  MR_EXPECT((std::int32_t{1} << k) == v, "value must be a power of two");
  return k;
}

}  // namespace

simmpi::Schedule cg_schedule(const CgClass& klass, std::int32_t p,
                             const std::vector<double>& compute_time_per_rank,
                             int inner_iters) {
  MR_EXPECT(p >= 1 && (p & (p - 1)) == 0, "NPB-CG needs a power-of-two size");
  MR_EXPECT(static_cast<std::int32_t>(compute_time_per_rank.size()) == p,
            "need one compute time per rank");
  MR_EXPECT(inner_iters >= 1, "need at least one iteration");
  const Grid grid = npb_grid(p);
  const int lcols = log2_exact(grid.cols);
  const int lp = log2_exact(p);

  // Region sizes (doubles). The matvec row-reduce exchanges a rows-partition
  // of the vector; the transpose swap moves each process's n/p slice; dot
  // products move single doubles.
  const std::int64_t reduce_len = std::max<std::int64_t>(1, klass.n / grid.rows);
  const std::int64_t transpose_len = std::max<std::int64_t>(1, klass.n / p);
  const std::int64_t arena = std::max(reduce_len, transpose_len) + 1;
  const simmpi::Region vec{0, reduce_len};
  const simmpi::Region slice{0, transpose_len};
  const simmpi::Region scalar{arena - 1, 1};

  simmpi::ScheduleBuilder b(p, arena);
  int round = 0;
  for (int it = 0; it < inner_iters; ++it) {
    // Local matvec + vector updates (roofline time, varies per rank with
    // its memory-domain contention).
    for (std::int32_t rank = 0; rank < p; ++rank) {
      b.compute(round, rank, compute_time_per_rank[static_cast<std::size_t>(rank)]);
    }
    ++round;
    // Row reduce: log2(cols) pairwise exchanges across the process row.
    for (int k = 0; k < lcols; ++k, ++round) {
      for (std::int32_t rank = 0; rank < p; ++rank) {
        const std::int32_t col = rank % grid.cols;
        const std::int32_t partner =
            (rank - col) + (col ^ (std::int32_t{1} << k));
        b.message(round, rank, vec, round, partner, vec, simmpi::Combine::Sum);
      }
    }
    // Transpose swap of the solution vector slices. On a square grid the
    // partner is the transposed coordinate; NPB's rows==2*cols layout does
    // a staged swap that we approximate with a half-shift partner.
    if (p > 1) {
      for (std::int32_t rank = 0; rank < p; ++rank) {
        std::int32_t partner;
        if (grid.rows == grid.cols) {
          const std::int32_t row = rank / grid.cols;
          const std::int32_t col = rank % grid.cols;
          partner = col * grid.cols + row;
        } else {
          partner = (rank + p / 2) % p;
        }
        if (partner != rank) {
          b.message(round, rank, slice, round, partner, slice);
        }
      }
      ++round;
    }
    // Two dot-product allreduces (recursive doubling on one double each).
    for (int dot = 0; dot < 2; ++dot) {
      for (int k = 0; k < lp; ++k, ++round) {
        for (std::int32_t rank = 0; rank < p; ++rank) {
          const std::int32_t partner = rank ^ (std::int32_t{1} << k);
          b.message(round, rank, scalar, round, partner, scalar,
                    simmpi::Combine::Sum);
        }
      }
    }
  }
  return std::move(b).build();
}

CgResult simulate_cg(const topo::Machine& machine, const CgClass& klass,
                     const std::vector<std::int64_t>& core_list,
                     int sim_inner_iters) {
  const auto p = static_cast<std::int32_t>(core_list.size());
  MR_EXPECT(p >= 1, "need at least one process");

  std::vector<double> compute(static_cast<std::size_t>(p));
  for (std::int32_t rank = 0; rank < p; ++rank) {
    const double bw = process_mem_bandwidth(machine, core_list,
                                            core_list[static_cast<std::size_t>(rank)]);
    compute[static_cast<std::size_t>(rank)] =
        compute_seconds(klass, p, machine.core_flops(), bw);
  }

  const double total_inner =
      static_cast<double>(klass.iterations) * klass.inner_per_iteration;
  CgResult result;
  result.compute_seconds =
      *std::max_element(compute.begin(), compute.end()) * total_inner;

  if (p == 1) {
    result.seconds = result.compute_seconds;
    result.comm_seconds = 0;
    return result;
  }

  // Compile one inner iteration and loop it: cg_schedule appends identical
  // structure per iteration, so the plan repetition count reproduces
  // cg_schedule(..., sim_inner_iters) exactly without materializing it.
  MR_EXPECT(sim_inner_iters >= 1, "need at least one iteration");
  const simmpi::Plan plan = simmpi::make_plan(
      cg_schedule(klass, p, compute, 1), sim_inner_iters, "npb_cg_inner");
  const double simulated =
      simmpi::run_timed_plan_single(machine, plan, core_list);
  result.seconds = simulated * total_inner / sim_inner_iters;
  result.comm_seconds = std::max(0.0, result.seconds - result.compute_seconds);
  return result;
}

double serial_seconds(const topo::Machine& machine, const CgClass& klass) {
  // One process alone on core 0: full memory bandwidth of every domain.
  const double bw = process_mem_bandwidth(machine, {0}, 0);
  return compute_seconds(klass, 1, machine.core_flops(), bw) *
         static_cast<double>(klass.iterations) * klass.inner_per_iteration;
}

}  // namespace mr::apps::cg
