#include <map>

#include "mixradix/apps/cg.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::apps::cg {

double process_mem_bandwidth(const topo::Machine& machine,
                             const std::vector<std::int64_t>& active_cores,
                             std::int64_t my_core) {
  MR_EXPECT(!active_cores.empty(), "no active cores");
  double bw = machine.core_flops() * 8;  // effectively unbounded start
  bool bounded = false;
  for (int level = 0; level < machine.depth(); ++level) {
    const double level_bw = machine.level(level).mem_bandwidth;
    if (level_bw <= 0) continue;
    const std::int64_t mine = machine.component_of(my_core, level);
    std::int64_t sharers = 0;
    for (std::int64_t core : active_cores) {
      if (machine.component_of(core, level) == mine) ++sharers;
    }
    MR_EXPECT(sharers >= 1, "my_core must be among the active cores");
    bw = std::min(bw, level_bw / static_cast<double>(sharers));
    bounded = true;
  }
  MR_EXPECT(bounded, "machine models no memory bandwidth at any level");
  return bw;
}

double compute_seconds(const CgClass& klass, std::int32_t p, double core_flops,
                       double mem_bandwidth) {
  MR_EXPECT(p >= 1, "need at least one process");
  MR_EXPECT(core_flops > 0 && mem_bandwidth > 0, "need positive rates");
  // One inner iteration: a sparse matvec (2 flops and 12 bytes per nonzero:
  // 8 B value + 4 B index) plus ~10 vector ops over n elements (1 flop,
  // 8 bytes each, counting the classic 2.5 reads/writes per saxpy).
  const double flops =
      (2.0 * static_cast<double>(klass.nnz) + 10.0 * static_cast<double>(klass.n)) /
      static_cast<double>(p);
  const double bytes =
      (12.0 * static_cast<double>(klass.nnz) + 80.0 * static_cast<double>(klass.n)) /
      static_cast<double>(p);
  return std::max(flops / core_flops, bytes / mem_bandwidth);
}

}  // namespace mr::apps::cg
