#include <cmath>

#include "mixradix/apps/splatt.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/prng.hpp"

namespace mr::apps::splatt {

TensorSpec nell1_like(std::uint64_t seed) {
  TensorSpec spec;
  spec.dims[0] = 2902330;
  spec.dims[1] = 2143368;
  spec.dims[2] = 25495389;
  spec.nnz = 143599552;
  spec.seed = seed;
  spec.skew = 1.1;
  return spec;
}

std::vector<std::vector<std::int64_t>> layer_volumes(const TensorSpec& spec,
                                                     const Grid3& grid, int mode,
                                                     std::int64_t layer,
                                                     std::int64_t factor_rank) {
  MR_EXPECT(mode >= 0 && mode < 3, "mode out of range");
  MR_EXPECT(factor_rank >= 1, "factor rank must be positive");
  const std::int32_t p = grid.p[mode];
  const std::int64_t nlayers = static_cast<std::int64_t>(grid.nprocs()) / p;
  MR_EXPECT(layer >= 0 && layer < nlayers, "layer out of range");

  // Per-member slice weights: Zipf-like with a deterministic random
  // permutation of heaviness, so every layer is imbalanced differently.
  util::Xoshiro256 rng(spec.seed ^ (static_cast<std::uint64_t>(mode) << 32) ^
                       static_cast<std::uint64_t>(layer) * 0x9e3779b97f4a7c15ULL);
  std::vector<double> weight(static_cast<std::size_t>(p));
  double total_weight = 0;
  for (std::int32_t a = 0; a < p; ++a) {
    const double zipf =
        1.0 / std::pow(static_cast<double>(1 + rng.next_below(
                           static_cast<std::uint64_t>(p))),
                       spec.skew);
    weight[static_cast<std::size_t>(a)] = 0.2 + zipf;  // floor keeps all active
    total_weight += weight[static_cast<std::size_t>(a)];
  }

  // Rows exchanged in this layer per iteration: the layer holds
  // nnz / nlayers nonzeros, each referencing factor rows that must travel
  // to (partial products) and from (updated rows) their owners. The 1.8
  // multiplier is the calibrated two-way traffic factor that lands the
  // aggregate volume at nell-1's published medium-grained communication
  // scale (a few GB per mode and iteration at 1024 processes).
  const double layer_nnz = static_cast<double>(spec.nnz) / static_cast<double>(nlayers);
  const double distinct_rows =
      std::min(layer_nnz, static_cast<double>(spec.dims[mode])) * 1.8;

  std::vector<std::vector<std::int64_t>> counts(
      static_cast<std::size_t>(p), std::vector<std::int64_t>(static_cast<std::size_t>(p), 0));
  for (std::int32_t a = 0; a < p; ++a) {
    for (std::int32_t b = 0; b < p; ++b) {
      if (a == b) continue;
      const double share = weight[static_cast<std::size_t>(a)] *
                           weight[static_cast<std::size_t>(b)] /
                           (total_weight * total_weight);
      counts[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          static_cast<std::int64_t>(distinct_rows * share) * factor_rank;
    }
  }
  return counts;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  MR_EXPECT(x.size() == y.size() && x.size() >= 2, "need matched samples");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  MR_EXPECT(sxx > 0 && syy > 0, "samples must not be constant");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace mr::apps::splatt
