#include "mixradix/apps/splatt.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::apps::splatt {

Grid3 default_grid(std::int32_t nprocs) {
  MR_EXPECT(nprocs >= 1, "need at least one process");
  // Greedy balanced factorisation with p1 >= p2 >= p3 (SPLATT's own
  // heuristic prefers near-cubic grids with the largest factor first).
  Grid3 best;
  std::int64_t best_score = -1;
  for (std::int32_t p1 = 1; p1 <= nprocs; ++p1) {
    if (nprocs % p1 != 0) continue;
    const std::int32_t rest = nprocs / p1;
    for (std::int32_t p2 = 1; p2 <= rest; ++p2) {
      if (rest % p2 != 0) continue;
      const std::int32_t p3 = rest / p2;
      if (!(p1 >= p2 && p2 >= p3)) continue;
      // Prefer the most cubic grid: maximise the smallest factor, then the
      // middle one.
      const std::int64_t score = static_cast<std::int64_t>(p3) * 100000 + p2;
      if (score > best_score) {
        best_score = score;
        best.p[0] = p1;
        best.p[1] = p2;
        best.p[2] = p3;
      }
    }
  }
  MR_ASSERT_INTERNAL(best.nprocs() == nprocs);
  return best;
}

std::vector<std::vector<std::int32_t>> layer_comms(const Grid3& grid, int mode) {
  MR_EXPECT(mode >= 0 && mode < 3, "mode out of range");
  const std::int32_t p1 = grid.p[0], p2 = grid.p[1], p3 = grid.p[2];
  const auto rank_of = [&](std::int32_t i, std::int32_t j, std::int32_t k) {
    return (i * p2 + j) * p3 + k;
  };
  std::vector<std::vector<std::int32_t>> comms;
  switch (mode) {
    case 0:
      comms.reserve(static_cast<std::size_t>(p2) * p3);
      for (std::int32_t j = 0; j < p2; ++j) {
        for (std::int32_t k = 0; k < p3; ++k) {
          std::vector<std::int32_t> members;
          members.reserve(static_cast<std::size_t>(p1));
          for (std::int32_t i = 0; i < p1; ++i) members.push_back(rank_of(i, j, k));
          comms.push_back(std::move(members));
        }
      }
      break;
    case 1:
      comms.reserve(static_cast<std::size_t>(p1) * p3);
      for (std::int32_t i = 0; i < p1; ++i) {
        for (std::int32_t k = 0; k < p3; ++k) {
          std::vector<std::int32_t> members;
          members.reserve(static_cast<std::size_t>(p2));
          for (std::int32_t j = 0; j < p2; ++j) members.push_back(rank_of(i, j, k));
          comms.push_back(std::move(members));
        }
      }
      break;
    case 2:
      comms.reserve(static_cast<std::size_t>(p1) * p2);
      for (std::int32_t i = 0; i < p1; ++i) {
        for (std::int32_t j = 0; j < p2; ++j) {
          std::vector<std::int32_t> members;
          members.reserve(static_cast<std::size_t>(p3));
          for (std::int32_t k = 0; k < p3; ++k) members.push_back(rank_of(i, j, k));
          comms.push_back(std::move(members));
        }
      }
      break;
  }
  return comms;
}

}  // namespace mr::apps::splatt
