#include <algorithm>

#include "mixradix/apps/splatt.hpp"
#include "mixradix/mr/decompose.hpp"
#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::apps::splatt {

namespace {

// MTTKRP cost model: per nonzero, SPLATT touches ~3 factor rows (3*F*8
// bytes, poor locality) plus the CSF indices, and performs 3*F flops.
// The imbalance factor reflects nell-1's heavy-tailed slice distribution:
// the slowest process owns a few times the average nonzero count.
constexpr double kBytesPerNnzPerF = 3.0 * 8.0 * 1.0;  // all-miss factor accesses
constexpr double kIndexBytesPerNnz = 12.0;
constexpr double kFlopsPerNnzPerF = 3.0;
constexpr double kImbalance = 4.0;
// Fixed local work per mode block (CSF traversal setup, fit residual,
// column normalisation) -- calibrated against the paper's absolute CPD
// durations on 1024 Hydra cores.
constexpr double kFixedBlockSeconds = 0.11;

double mttkrp_seconds(const topo::Machine& machine, const TensorSpec& spec,
                      std::int32_t nprocs, std::int64_t factor_rank) {
  const double nnz_per_proc =
      static_cast<double>(spec.nnz) / static_cast<double>(nprocs) * kImbalance;
  const double flops =
      nnz_per_proc * kFlopsPerNnzPerF * static_cast<double>(factor_rank);
  const double bytes =
      nnz_per_proc *
      (kIndexBytesPerNnz + kBytesPerNnzPerF * static_cast<double>(factor_rank));
  // Every core busy: per-core memory bandwidth is the innermost level's.
  const double bw = machine.level(machine.depth() - 1).mem_bandwidth > 0
                        ? machine.level(machine.depth() - 1).mem_bandwidth
                        : 8e9;
  return kFixedBlockSeconds +
         std::max(flops / machine.core_flops(), bytes / bw);
}

/// All layer alltoallvs of one mode, merged into a world-size schedule.
simmpi::Schedule mode_alltoallv(const TensorSpec& spec, const Grid3& grid,
                                int mode, std::int64_t factor_rank) {
  const auto comms = layer_comms(grid, mode);
  std::vector<simmpi::Schedule> parts;
  std::vector<std::vector<std::int32_t>> rank_maps;
  parts.reserve(comms.size());
  for (std::size_t layer = 0; layer < comms.size(); ++layer) {
    parts.push_back(simmpi::alltoallv_pairwise(
        layer_volumes(spec, grid, mode, static_cast<std::int64_t>(layer),
                      factor_rank)));
    rank_maps.push_back(comms[layer]);
  }
  return simmpi::merge(parts, rank_maps, grid.nprocs());
}

/// Per-rank compute round.
simmpi::Schedule compute_schedule(std::int32_t nprocs, double seconds) {
  simmpi::ScheduleBuilder b(nprocs, 0);
  for (std::int32_t rank = 0; rank < nprocs; ++rank) {
    b.compute(0, rank, seconds);
  }
  return std::move(b).build();
}

/// World-wide small reduction modelled as binomial reduce + broadcast
/// (Rabenseifner-equivalent traffic at a fraction of the simulated
/// message count of recursive doubling).
std::vector<simmpi::Schedule> world_reduce_bcast(std::int32_t nprocs,
                                                 std::int64_t count) {
  return {simmpi::reduce_binomial(nprocs, count, 0),
          simmpi::bcast_binomial(nprocs, count, 0)};
}

/// The 256-process communicators mpisee observed (8 of them on 1024
/// ranks): two split families — contiguous quarters and stride-4 quarters —
/// each running a factor-norm allreduce (reduce+bcast) per mode.
std::vector<simmpi::Schedule> quarter_comm_phase(std::int32_t nprocs,
                                                 std::int64_t count) {
  if (nprocs % 16 != 0) return {};
  const std::int32_t quarter = nprocs / 4;
  std::vector<simmpi::Schedule> phases;
  for (int family = 0; family < 2; ++family) {
    std::vector<simmpi::Schedule> parts;
    std::vector<std::vector<std::int32_t>> rank_maps;
    for (std::int32_t q = 0; q < 4; ++q) {
      std::vector<std::int32_t> members;
      members.reserve(static_cast<std::size_t>(quarter));
      for (std::int32_t i = 0; i < quarter; ++i) {
        members.push_back(family == 0 ? q * quarter + i : i * 4 + q);
      }
      parts.push_back(simmpi::reduce_binomial(quarter, count, 0));
      rank_maps.push_back(std::move(members));
    }
    phases.push_back(simmpi::merge(parts, rank_maps, nprocs));
  }
  return phases;
}

}  // namespace

simmpi::Schedule cpd_iteration_schedule(const topo::Machine& machine,
                                        const TensorSpec& spec, const Grid3& grid,
                                        const CpdConfig& config) {
  const std::int32_t nprocs = grid.nprocs();
  const double mttkrp =
      mttkrp_seconds(machine, spec, nprocs, config.factor_rank);

  // One *mode block*: layer alltoallv -> MTTKRP -> Gram reduce+bcast ->
  // quarter-communicator norms. The three modes of a CPD iteration are
  // statistically identical (volumes drawn from the same distribution), so
  // simulate_cpd simulates one block and scales by three — a 3x event-count
  // saving that leaves the order sensitivity untouched.
  std::vector<simmpi::Schedule> phases;
  phases.push_back(mode_alltoallv(spec, grid, 0, config.factor_rank));
  phases.push_back(compute_schedule(nprocs, mttkrp));
  for (auto& s : world_reduce_bcast(nprocs, config.factor_rank * config.factor_rank)) {
    phases.push_back(std::move(s));
  }
  for (auto& s : quarter_comm_phase(nprocs, config.factor_rank)) {
    phases.push_back(std::move(s));
  }
  return simmpi::concat(phases);
}

CpdResult simulate_cpd(const topo::Machine& machine, const TensorSpec& spec,
                       const Order& order, const CpdConfig& config) {
  // Black-box rank reordering: application rank r runs on the core that
  // carries reordered rank r.
  const auto placement = placement_of_new_ranks(machine.hierarchy(), order);
  return simulate_cpd_placement(
      machine, spec, std::vector<std::int64_t>(placement.begin(), placement.end()),
      config);
}

CpdResult simulate_cpd_placement(const topo::Machine& machine,
                                 const TensorSpec& spec,
                                 std::vector<std::int64_t> core_of_rank,
                                 const CpdConfig& config) {
  const Grid3 grid = default_grid(static_cast<std::int32_t>(machine.cores()));
  MR_EXPECT(config.sim_iterations >= 1 &&
                config.sim_iterations <= config.iterations,
            "sim_iterations must be in [1, iterations]");
  MR_EXPECT(static_cast<std::int64_t>(core_of_rank.size()) == machine.cores(),
            "need one core per rank");

  // One compiled mode block, looped sim_iterations times by the executor —
  // no materialized repeat() copies of the IR.
  const simmpi::Plan run =
      simmpi::make_plan(cpd_iteration_schedule(machine, spec, grid, config),
                        config.sim_iterations, "cpd_mode_block");
  // 3 mode blocks per iteration, `iterations` iterations.
  const double scale =
      3.0 * static_cast<double>(config.iterations) / config.sim_iterations;

  CpdResult result;
  result.seconds =
      simmpi::run_timed_plan_single(machine, run, core_of_rank) * scale;

  // The 16-process-layer alltoallv portion alone, for the §4.2 correlation.
  const simmpi::Plan comm_plan = simmpi::make_plan(
      mode_alltoallv(spec, grid, 0, config.factor_rank), config.sim_iterations,
      "cpd_mode_alltoallv");
  result.alltoallv_seconds =
      simmpi::run_timed_plan_single(machine, comm_plan, core_of_rank) * scale;

  result.compute_seconds =
      3.0 * mttkrp_seconds(machine, spec, grid.nprocs(), config.factor_rank) *
      config.iterations;
  return result;
}

std::vector<std::vector<double>> cpd_comm_matrix(const TensorSpec& spec,
                                                 const Grid3& grid,
                                                 std::int64_t factor_rank) {
  const std::int32_t p = grid.nprocs();
  std::vector<std::vector<double>> matrix(
      static_cast<std::size_t>(p), std::vector<double>(static_cast<std::size_t>(p), 0));
  for (int mode = 0; mode < 3; ++mode) {
    const auto comms = layer_comms(grid, mode);
    for (std::size_t layer = 0; layer < comms.size(); ++layer) {
      const auto counts = layer_volumes(spec, grid, mode,
                                        static_cast<std::int64_t>(layer), factor_rank);
      const auto& members = comms[layer];
      for (std::size_t a = 0; a < members.size(); ++a) {
        for (std::size_t b = 0; b < members.size(); ++b) {
          matrix[static_cast<std::size_t>(members[a])]
                [static_cast<std::size_t>(members[b])] +=
              8.0 * static_cast<double>(counts[a][b]);
        }
      }
    }
  }
  return matrix;
}

}  // namespace mr::apps::splatt
