#include "mixradix/tune/report.hpp"

#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

namespace mr::tune {

namespace {

/// Canonical double rendering: max_digits10 shortest-round-trip is not
/// available pre-C++17-to_chars everywhere, so fix the precision — equal
/// doubles always render to equal bytes, which is all canonicality needs.
std::string jnum(double v) {
  std::ostringstream ss;
  ss << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return ss.str();
}

std::string jstr(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string jbool(bool b) { return b ? "true" : "false"; }

void write_point(std::ostream& os, const QueryPoint& point) {
  os << "{\"collective\": " << jstr(collective_name(point.collective))
     << ", \"comm_size\": " << point.comm_size
     << ", \"total_bytes\": " << point.total_bytes << "}";
}

void write_candidate(std::ostream& os, const TuneCandidate& c) {
  os << "      {\"order\": " << jstr(order_to_string(c.order))
     << ", \"fate\": " << jstr(fate_name(c.fate))
     << ", \"class_size\": " << c.members.size()
     << ", \"ring_cost\": " << c.character.ring_cost
     << ", \"lower_bound\": " << jnum(c.lower_bound);
  if (c.fate == Fate::Simulated) {
    os << ", \"score\": " << jnum(c.score) << ", \"wave\": " << c.wave
       << ", \"points\": [";
    for (std::size_t i = 0; i < c.points.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"makespan\": " << jnum(c.points[i].makespan)
         << ", \"mean_bandwidth\": " << jnum(c.points[i].mean_bandwidth)
         << "}";
    }
    os << "]";
  }
  os << "}";
}

}  // namespace

std::string to_string(const TuneReport& report) {
  const TuneStats& s = report.stats;
  std::ostringstream os;
  os << "mr::tune " << report.machine << " " << report.hierarchy << "\n";
  os << "  points:";
  for (const QueryPoint& p : report.points) os << " " << p.to_string();
  os << "\n";
  if (report.query.shard_count > 1) {
    os << "  shard: " << report.query.shard_index << "/"
       << report.query.shard_count << "\n";
  }
  os << "  funnel: " << s.orders << " orders -> " << s.classes
     << " classes -> " << s.shard_classes - s.screened_out << " screened -> "
     << s.shard_classes - s.screened_out - s.pruned - s.budget_skipped
     << " simulated (" << s.sim_points << " of " << s.exhaustive_points
     << " exhaustive point sims";
  if (s.sim_points > 0) {
    os << ", " << std::setprecision(3)
       << static_cast<double>(s.exhaustive_points) /
              static_cast<double>(s.sim_points)
       << "x saving";
  }
  os << ")\n";
  if (s.bound_structures_built + s.bound_structure_reuses > 0) {
    os << "  bound cache: " << s.bound_structures_built << " structures built, "
       << s.bound_structure_reuses << " reused";
    if (s.bound_structures_built > 0) {
      os << " (" << std::setprecision(3)
         << static_cast<double>(s.bound_structures_built +
                                s.bound_structure_reuses) /
                static_cast<double>(s.bound_structures_built)
         << "x fewer full analyses)";
    }
    os << ", stage 2 " << std::setprecision(4) << s.bound_seconds << " s\n";
  }
  if (s.seeded_candidates > 0) {
    os << "  seeded: " << s.seeded_candidates
       << " incumbents re-simulated from the previous report\n";
  }
  if (!s.exhausted) {
    os << "  BUDGET EXHAUSTED after " << s.sim_points
       << " point sims: ranking is best-so-far (" << s.budget_skipped
       << " candidates unvisited)\n";
  }
  os << "  elapsed: " << std::setprecision(4) << s.elapsed_seconds << " s\n";
  os << "  top " << report.top.size() << ":\n";
  for (std::size_t rank = 0; rank < report.top.size(); ++rank) {
    const TuneCandidate& c = report.candidates[report.top[rank]];
    os << "    " << rank + 1 << ". " << c.character.to_string()
       << "  score " << std::setprecision(6) << c.score << " s"
       << "  bound " << std::setprecision(6) << c.lower_bound << " s"
       << "  class " << c.members.size() << " orders\n";
  }
  return os.str();
}

void write_json(std::ostream& os, const TuneReport& report, bool candidates) {
  const TuneStats& s = report.stats;
  os << "{\n";
  os << "  \"machine\": " << jstr(report.machine) << ",\n";
  os << "  \"hierarchy\": " << jstr(report.hierarchy) << ",\n";
  os << "  \"k\": " << report.query.k << ",\n";
  os << "  \"concurrency\": "
     << jstr(report.query.concurrency == Concurrency::AllComms ? "all"
                                                               : "single")
     << ",\n";
  os << "  \"completion_slack\": " << jnum(report.query.completion_slack)
     << ",\n";
  os << "  \"repetitions\": " << report.query.repetitions << ",\n";
  os << "  \"shard\": {\"index\": " << report.query.shard_index
     << ", \"count\": " << report.query.shard_count << "},\n";
  os << "  \"points\": [";
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    if (i > 0) os << ", ";
    write_point(os, report.points[i]);
  }
  os << "],\n";
  os << "  \"stats\": {\n";
  os << "    \"orders\": " << s.orders << ",\n";
  os << "    \"classes\": " << s.classes << ",\n";
  os << "    \"shard_classes\": " << s.shard_classes << ",\n";
  os << "    \"screened_out\": " << s.screened_out << ",\n";
  os << "    \"bounds_computed\": " << s.bounds_computed << ",\n";
  os << "    \"pruned\": " << s.pruned << ",\n";
  os << "    \"simulated\": " << s.simulated << ",\n";
  os << "    \"sim_points\": " << s.sim_points << ",\n";
  os << "    \"exhaustive_points\": " << s.exhaustive_points << ",\n";
  os << "    \"budget_skipped\": " << s.budget_skipped << ",\n";
  // bound_structures_built / bound_structure_reuses are deliberately NOT
  // here: they depend on BoundCache warmth across runs sharing an engine,
  // and the canonical document must be byte-identical for identical work.
  os << "    \"seeded_candidates\": " << s.seeded_candidates << ",\n";
  os << "    \"hash_collisions\": " << s.classify.hash_collisions << ",\n";
  os << "    \"exhausted\": " << jbool(s.exhausted) << "\n";
  os << "  },\n";
  os << "  \"top\": [\n";
  for (std::size_t rank = 0; rank < report.top.size(); ++rank) {
    const TuneCandidate& c = report.candidates[report.top[rank]];
    os << "    {\"rank\": " << rank + 1
       << ", \"order\": " << jstr(order_to_string(c.order))
       << ", \"character\": " << jstr(c.character.to_string())
       << ", \"score\": " << jnum(c.score)
       << ", \"lower_bound\": " << jnum(c.lower_bound)
       << ", \"class_size\": " << c.members.size() << "}";
    os << (rank + 1 < report.top.size() ? ",\n" : "\n");
  }
  os << "  ]";
  if (candidates) {
    os << ",\n  \"candidates\": [\n";
    for (std::size_t i = 0; i < report.candidates.size(); ++i) {
      write_candidate(os, report.candidates[i]);
      os << (i + 1 < report.candidates.size() ? ",\n" : "\n");
    }
    os << "  ]";
  }
  os << "\n}\n";
}

}  // namespace mr::tune
