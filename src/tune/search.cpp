#include "mixradix/tune/search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "mixradix/engine/engine.hpp"
#include "mixradix/harness/microbench.hpp"
#include "mixradix/mr/decompose.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/thread_pool.hpp"
#include "mixradix/verify/binding.hpp"

namespace mr::tune {

namespace {

struct CollectiveName {
  std::string_view name;
  simmpi::Collective collective;
};

constexpr CollectiveName kCollectives[] = {
    {"alltoall", simmpi::Collective::Alltoall},
    {"allgather", simmpi::Collective::Allgather},
    {"allreduce", simmpi::Collective::Allreduce},
    {"bcast", simmpi::Collective::Bcast},
    {"reduce", simmpi::Collective::Reduce},
    {"reduce_scatter", simmpi::Collective::ReduceScatter},
    {"gather", simmpi::Collective::Gather},
    {"scatter", simmpi::Collective::Scatter},
    {"scan", simmpi::Collective::Scan},
    {"barrier", simmpi::Collective::Barrier},
};

/// Resolve the `threads` knob (same contract as the sweep engine).
unsigned resolve_workers(int threads) {
  MR_EXPECT(threads >= 0, "threads must be non-negative");
  return threads > 0 ? static_cast<unsigned>(threads)
                     : util::ThreadPool::default_threads();
}

/// Indexed parallel_for with the serial fallback every entry point uses:
/// results land in pre-sized slots, so output never depends on the worker
/// count. Serial queries never touch the pool.
template <typename Fn>
void fan_out(Engine& engine, std::size_t n, unsigned workers, const Fn& fn) {
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  } else {
    engine.thread_pool().parallel_for(n, fn, workers);
  }
}

harness::MicrobenchConfig point_config(const TuneQuery& query,
                                       const QueryPoint& point,
                                       const Order& order) {
  harness::MicrobenchConfig mb;
  mb.order = order;
  mb.comm_size = point.comm_size;
  mb.collective = point.collective;
  mb.total_bytes = point.total_bytes;
  mb.all_comms = query.concurrency == Concurrency::AllComms;
  mb.repetitions = query.repetitions;
  mb.use_plan_cache = query.use_plan_cache;
  mb.completion_slack = query.completion_slack;
  return mb;
}

// ---- Stage 1: sound dedup ---------------------------------------------------
//
// A class may share one simulation only if every member is BYTE-identical
// to the representative under the query's exact configuration:
//  * SingleComm — the engine sees nothing but the first subcommunicator's
//    core sequence, so that sequence (concatenated over the query's comm
//    sizes) is the complete simulation input; grouping by it is maximal
//    sound dedup at any slack.
//  * AllComms + slack 0 — exact max-min fairness is invariant under
//    exchanging whole communicators (the job list is a set), so the hashed
//    SameSetsAndInternal classifier applies, intersected across comm sizes
//    when the query has several (an order pair must be equivalent at EVERY
//    size to share a simulation).
//  * AllComms + slack > 0 — completion merging is job-order sensitive
//    (measured at up to ~3% relative in the design probe), so only
//    identical placements are byte-identical: ExactPlacement, which is
//    size-independent and needs no intersection.

/// Distinct values of `values` in first-occurrence order.
std::vector<std::int64_t> distinct(const std::vector<std::int64_t>& values) {
  std::vector<std::int64_t> out;
  for (const std::int64_t v : values) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

/// Per-order class label array (indexed by lexicographic order rank) of one
/// classify_orders partition.
std::vector<std::int32_t> class_labels(const std::vector<OrderClass>& classes,
                                       std::int64_t norders) {
  std::vector<std::int32_t> labels(static_cast<std::size_t>(norders), -1);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    for (const Order& member : classes[c].members) {
      labels[static_cast<std::size_t>(order_index_lexicographic(member))] =
          static_cast<std::int32_t>(c);
    }
  }
  return labels;
}

std::vector<TuneCandidate> dedup_candidates(Engine& engine, const Hierarchy& h,
                                            const TuneQuery& query,
                                            TuneStats& stats) {
  const std::vector<Order> orders = all_orders_lexicographic(h.depth());
  const std::int64_t norders = static_cast<std::int64_t>(orders.size());
  const std::vector<std::int64_t> sizes = distinct(query.comm_sizes);

  // One label per order and grouping dimension; orders sharing every label
  // form one candidate class.
  std::vector<std::vector<std::int32_t>> labels;

  if (!query.dedup) {
    // Every order its own class: no labels, grouped by identity below.
  } else if (query.concurrency == Concurrency::SingleComm) {
    // Group by the concatenated first-subcommunicator core sequences.
    std::vector<std::vector<std::int64_t>> first_comm(orders.size());
    fan_out(engine, orders.size(), resolve_workers(query.threads),
            [&](std::size_t i) {
      const auto placement = placement_of_new_ranks(h, orders[i]);
      std::vector<std::int64_t> key;
      for (const std::int64_t s : sizes) {
        key.insert(key.end(), placement.begin(),
                   placement.begin() + static_cast<std::ptrdiff_t>(s));
      }
      first_comm[i] = std::move(key);
    });
    std::vector<std::int32_t> label(orders.size());
    std::map<std::vector<std::int64_t>, std::int32_t> seen;
    for (std::size_t i = 0; i < orders.size(); ++i) {
      label[i] = seen.try_emplace(std::move(first_comm[i]),
                                  static_cast<std::int32_t>(seen.size()))
                     .first->second;
    }
    labels.push_back(std::move(label));
  } else if (query.completion_slack > 0) {
    ClassifyStats cs;
    const auto classes =
        classify_orders(engine, h, sizes.front(), Equivalence::ExactPlacement,
                        query.threads, MetricsImpl::Fast, &cs);
    stats.classify = cs;
    labels.push_back(class_labels(classes, norders));
  } else {
    for (const std::int64_t s : sizes) {
      ClassifyStats cs;
      const auto classes =
          classify_orders(engine, h, s, Equivalence::SameSetsAndInternal,
                          query.threads, MetricsImpl::Fast, &cs);
      stats.classify.orders += cs.orders;
      stats.classify.classes += cs.classes;
      stats.classify.signatures_hashed += cs.signatures_hashed;
      stats.classify.collision_checks += cs.collision_checks;
      stats.classify.hash_collisions += cs.hash_collisions;
      labels.push_back(class_labels(classes, norders));
    }
  }

  // Group orders (in lexicographic rank order, so the first member of each
  // group is the lexicographic representative) by their label tuples.
  std::vector<TuneCandidate> candidates;
  std::map<std::vector<std::int32_t>, std::size_t> group_of;
  std::vector<std::int32_t> key(labels.size());
  for (std::size_t i = 0; i < orders.size(); ++i) {
    if (labels.empty()) {
      candidates.emplace_back().order = orders[i];
      candidates.back().members.push_back(orders[i]);
      continue;
    }
    for (std::size_t l = 0; l < labels.size(); ++l) key[l] = labels[l][i];
    const auto [it, inserted] = group_of.try_emplace(key, candidates.size());
    if (inserted) {
      candidates.emplace_back().order = orders[i];
    }
    candidates[it->second].members.push_back(orders[i]);
  }
  return candidates;
}

// ---- Stages 2+3 helpers -----------------------------------------------------

/// One candidate's stage-2 outcome: the admissible bound plus the
/// full-analysis vs structure-reuse accounting behind it.
struct BoundOutcome {
  double bound = 0;
  std::int64_t built = 0;   ///< full route-resolution + DP passes.
  std::int64_t reused = 0;  ///< BoundCache evaluate()s of a cached structure.
};

/// Stage-2 admissible bound of one candidate: per-point static lower bounds
/// (deflated for the simulated slack), summed — a lower bound on the
/// candidate's score because the score is the sum of point makespans. With
/// the bound cache on, the payload-invariant structure is resolved once per
/// binding class and evaluated per payload point — the Results (and hence
/// the bounds and the funnel's ranking) are bit-identical either way.
BoundOutcome candidate_bound(Engine& engine, const topo::Machine& machine,
                             const TuneQuery& query,
                             const std::vector<QueryPoint>& points,
                             const Order& order) {
  verify::binding::Options options;
  options.load_report = false;
  options.lower_bound = true;
  BoundOutcome out;
  for (const QueryPoint& point : points) {
    const auto jobs = harness::protocol_jobs(
        engine, machine, point_config(query, point, order));
    std::vector<verify::binding::JobBinding> bindings;
    bindings.reserve(jobs.size());
    for (const auto& job : jobs) {
      bindings.push_back({&job.plan->schedule, &job.plan->exec,
                          job.plan->repetitions, &job.core_of_rank,
                          job.start_time});
    }
    verify::binding::Result result;
    if (query.use_bound_cache) {
      bool reused = false;
      result = engine.bound_cache().analyze(machine, bindings, &reused);
      ++(reused ? out.reused : out.built);
    } else {
      result = verify::binding::analyze_jobs(machine, bindings, options);
      ++out.built;
    }
    // A diagnostic here would mean the tuner built an invalid binding; a
    // zero bound keeps the candidate simulable instead of mis-pruning it.
    if (result.clean()) {
      out.bound += result.bound.for_slack(query.completion_slack);
    }
  }
  return out;
}

/// Stage-3 full-fidelity evaluation of one candidate. The workspace is
/// leased from the engine's pool for the candidate's whole point loop
/// (LIFO reuse keeps interned routes warm across candidates on the same
/// driving thread) — reuse has no effect on results (enforced by the
/// determinism tests), and unlike the old function-scoped thread_local the
/// memory dies with the engine instead of the pool threads.
void simulate_candidate(Engine& engine, const topo::Machine& machine,
                        const TuneQuery& query,
                        const std::vector<QueryPoint>& points,
                        TuneCandidate& candidate) {
  Engine::WorkspaceLease lease = engine.workspace();
  candidate.points.clear();
  candidate.points.reserve(points.size());
  candidate.score = 0;
  for (const QueryPoint& point : points) {
    const auto jobs = harness::protocol_jobs(
        engine, machine, point_config(query, point, candidate.order));
    simmpi::ExecOptions exec;
    exec.completion_slack = query.completion_slack;
    exec.workspace = lease.get();
    const simmpi::TimedResult timed = simmpi::run_timed(machine, jobs, exec);
    engine.record_run(timed);
    PointResult pr;
    pr.makespan = timed.makespan;
    double bw = 0;
    for (const double finish : timed.job_finish) {
      bw += static_cast<double>(point.total_bytes) /
            (finish / query.repetitions);
    }
    pr.mean_bandwidth = bw / static_cast<double>(timed.job_finish.size());
    candidate.points.push_back(pr);
    candidate.score += pr.makespan;
  }
}

void validate(const topo::Machine& machine, const TuneQuery& query) {
  const Hierarchy& h = machine.hierarchy();
  MR_EXPECT(!query.collectives.empty(), "query needs at least one collective");
  MR_EXPECT(!query.comm_sizes.empty(), "query needs at least one comm size");
  MR_EXPECT(!query.total_bytes.empty(), "query needs at least one size");
  for (const std::int64_t s : query.comm_sizes) {
    MR_EXPECT(s >= 2, "communicator needs at least two ranks");
    MR_EXPECT(h.total() % s == 0, "comm size must divide the process count");
  }
  for (const std::int64_t b : query.total_bytes) {
    MR_EXPECT(b >= 1, "total_bytes must be positive");
  }
  MR_EXPECT(query.k >= 1, "k must be at least 1");
  MR_EXPECT(query.repetitions >= 1, "need at least one repetition");
  MR_EXPECT(query.completion_slack >= 0, "completion slack must be >= 0");
  MR_EXPECT(query.wave_size >= 1, "wave size must be at least 1");
  MR_EXPECT(query.screen_keep >= 0, "screen_keep must be non-negative");
  MR_EXPECT(query.shard_count >= 1 && query.shard_index >= 0 &&
                query.shard_index < query.shard_count,
            "shard index must lie in [0, shard_count)");
}

/// May `previous` seed this query's stage-3 incumbents? The previous
/// winners' scores transfer as first-wave candidates only when both runs
/// rank by the same objective family: same machine and hierarchy, same
/// concurrency/repetitions/slack, both unsharded, and every previous point
/// present in the new grid (a superset query — the canonical incremental
/// shape: added payload sizes or collectives).
bool seed_applicable(const TuneReport* previous, const topo::Machine& machine,
                     const Hierarchy& h, const TuneQuery& query,
                     const std::vector<QueryPoint>& points) {
  if (previous == nullptr || previous->top.empty()) return false;
  if (previous->machine != machine.name() ||
      previous->hierarchy != h.to_string()) {
    return false;
  }
  const TuneQuery& pq = previous->query;
  if (pq.concurrency != query.concurrency ||
      pq.repetitions != query.repetitions ||
      pq.completion_slack != query.completion_slack ||
      pq.shard_count != 1 || query.shard_count != 1) {
    return false;
  }
  for (const QueryPoint& p : previous->points) {
    const bool found = std::any_of(
        points.begin(), points.end(), [&](const QueryPoint& q) {
          return p.collective == q.collective && p.comm_size == q.comm_size &&
                 p.total_bytes == q.total_bytes;
        });
    if (!found) return false;
  }
  return true;
}

}  // namespace

std::string QueryPoint::to_string() const {
  return std::string(collective_name(collective)) + "/p" +
         std::to_string(comm_size) + "/" + std::to_string(total_bytes) + "B";
}

std::string_view fate_name(Fate fate) {
  switch (fate) {
    case Fate::Simulated: return "simulated";
    case Fate::Pruned: return "pruned";
    case Fate::Screened: return "screened";
    case Fate::Skipped: return "skipped";
  }
  return "?";
}

simmpi::Collective parse_collective(std::string_view name) {
  for (const auto& entry : kCollectives) {
    if (entry.name == name) return entry.collective;
  }
  std::string known;
  for (const auto& entry : kCollectives) {
    known += known.empty() ? "" : ", ";
    known += entry.name;
  }
  throw invalid_argument("unknown collective '" + std::string(name) +
                         "' (known: " + known + ")");
}

std::string_view collective_name(simmpi::Collective collective) {
  for (const auto& entry : kCollectives) {
    if (entry.collective == collective) return entry.name;
  }
  return "?";
}

TuneReport tune(Engine& engine, const topo::Machine& machine,
                const TuneQuery& query, const TuneReport* previous) {
  validate(machine, query);
  const Hierarchy& h = machine.hierarchy();
  const unsigned workers = resolve_workers(query.threads);
  BudgetMeter meter(query.budget);

  TuneReport report;
  report.machine = machine.name();
  report.hierarchy = h.to_string();
  report.query = query;
  for (const simmpi::Collective c : query.collectives) {
    for (const std::int64_t s : query.comm_sizes) {
      for (const std::int64_t b : query.total_bytes) {
        report.points.push_back({c, s, b});
      }
    }
  }
  const auto npoints = static_cast<std::int64_t>(report.points.size());

  TuneStats& stats = report.stats;
  stats.orders = factorial(h.depth());
  stats.exhaustive_points = stats.orders * npoints;

  // Stage 1: dedup into candidates (sorted by representative because the
  // grouping walks orders in lexicographic rank order), then keep this
  // shard's slice of the stream.
  std::vector<TuneCandidate> candidates =
      dedup_candidates(engine, h, query, stats);
  stats.classes = static_cast<std::int64_t>(candidates.size());
  if (query.shard_count > 1) {
    std::vector<TuneCandidate> mine;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(query.shard_count)) ==
          query.shard_index) {
        mine.push_back(std::move(candidates[i]));
      }
    }
    candidates = std::move(mine);
  }
  stats.shard_classes = static_cast<std::int64_t>(candidates.size());

  // Stage 0: closed-form characterization of every representative (the
  // report legend and the screening heuristic; never a simulation).
  fan_out(engine, candidates.size(), workers, [&](std::size_t i) {
    candidates[i].character = characterize_order(
        h, candidates[i].order, query.comm_sizes.front(), MetricsImpl::Fast);
  });

  // Funnel order over candidate indices; screened-out candidates keep
  // their report slot but leave the active stream.
  std::vector<std::size_t> active(candidates.size());
  std::iota(active.begin(), active.end(), std::size_t{0});
  if (query.screen_keep > 0 &&
      static_cast<std::int64_t>(active.size()) > query.screen_keep) {
    // Packedness heuristic: low ring cost first (ties lexicographic).
    std::stable_sort(active.begin(), active.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (candidates[a].character.ring_cost !=
                           candidates[b].character.ring_cost) {
                         return candidates[a].character.ring_cost <
                                candidates[b].character.ring_cost;
                       }
                       return candidates[a].order < candidates[b].order;
                     });
    for (std::size_t i = static_cast<std::size_t>(query.screen_keep);
         i < active.size(); ++i) {
      candidates[active[i]].fate = Fate::Screened;
      ++stats.screened_out;
    }
    active.resize(static_cast<std::size_t>(query.screen_keep));
  }

  // Stage 2: admissible lower bounds, computed in parallel, then the
  // branch-and-bound visit order (bound ascending, packed-first tie-break).
  if (query.prune) {
    const auto bound_start = std::chrono::steady_clock::now();
    std::vector<BoundOutcome> outcomes(active.size());
    fan_out(engine, active.size(), workers, [&](std::size_t i) {
      outcomes[i] = candidate_bound(engine, machine, query, report.points,
                                    candidates[active[i]].order);
    });
    for (std::size_t i = 0; i < active.size(); ++i) {
      candidates[active[i]].lower_bound = outcomes[i].bound;
      stats.bound_structures_built += outcomes[i].built;
      stats.bound_structure_reuses += outcomes[i].reused;
    }
    stats.bounds_computed = static_cast<std::int64_t>(active.size());
    stats.bound_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      bound_start)
            .count();
  }
  std::sort(active.begin(), active.end(), [&](std::size_t a, std::size_t b) {
    if (candidates[a].lower_bound != candidates[b].lower_bound) {
      return candidates[a].lower_bound < candidates[b].lower_bound;
    }
    if (candidates[a].character.ring_cost != candidates[b].character.ring_cost) {
      return candidates[a].character.ring_cost <
             candidates[b].character.ring_cost;
    }
    return candidates[a].order < candidates[b].order;
  });

  // Incremental seeding: when a compatible previous report is supplied,
  // re-simulate its winners FIRST (wave 0), in previous-score order, so the
  // k-th best cut is a real incumbent before the bound-ordered sweep
  // starts. Seeds earn true new-grid scores through the exact same
  // simulate_candidate path, so pruning keeps its admissible strict-cut
  // guarantee and the final top-k equals the cold run's.
  std::vector<double> best;  // ascending; at most k simulated scores.
  const double inf = std::numeric_limits<double>::infinity();
  int wave = 0;
  std::vector<std::size_t> pending = active;  // bound order, minus any seeds.
  if (seed_applicable(previous, machine, h, query, report.points) &&
      !meter.exhausted()) {
    // Previous winners' scores, addressable by ANY class member: the new
    // dedup may split or relabel classes, but a member order identifies
    // its old class regardless.
    std::map<Order, double> prev_score;
    for (const std::size_t t : previous->top) {
      const TuneCandidate& c = previous->candidates[t];
      for (const Order& m : c.members) prev_score.emplace(m, c.score);
    }
    std::vector<std::pair<double, std::size_t>> ranked;  // (score, active pos)
    for (std::size_t i = 0; i < active.size(); ++i) {
      double sc = inf;
      for (const Order& m : candidates[active[i]].members) {
        const auto it = prev_score.find(m);
        if (it != prev_score.end()) sc = std::min(sc, it->second);
      }
      if (sc < inf) ranked.push_back({sc, i});
    }
    std::sort(ranked.begin(), ranked.end(),
              [&](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return candidates[active[a.second]].order <
                       candidates[active[b.second]].order;
              });
    std::size_t nseeds =
        std::min(ranked.size(), static_cast<std::size_t>(query.k));
    if (npoints > 0) {
      const std::int64_t affordable = meter.remaining_points() / npoints;
      nseeds = std::min(
          nseeds, static_cast<std::size_t>(std::max<std::int64_t>(affordable,
                                                                  1)));
    }
    if (nseeds > 0) {
      fan_out(engine, nseeds, workers, [&](std::size_t i) {
        simulate_candidate(engine, machine, query, report.points,
                           candidates[active[ranked[i].second]]);
      });
      std::vector<bool> seeded(active.size(), false);
      for (std::size_t i = 0; i < nseeds; ++i) {
        TuneCandidate& c = candidates[active[ranked[i].second]];
        c.fate = Fate::Simulated;
        c.wave = 0;
        seeded[ranked[i].second] = true;
        ++stats.simulated;
        best.insert(std::upper_bound(best.begin(), best.end(), c.score),
                    c.score);
        if (best.size() > static_cast<std::size_t>(query.k)) best.pop_back();
      }
      meter.charge(static_cast<std::int64_t>(nseeds) * npoints);
      stats.sim_points += static_cast<std::int64_t>(nseeds) * npoints;
      stats.seeded_candidates = static_cast<std::int64_t>(nseeds);
      wave = 1;
      pending.clear();
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!seeded[i]) pending.push_back(active[i]);
      }
    }
  }

  // Stage 3: fixed-size simulation waves in bound order. The k-th best
  // simulated score only improves between waves, and the candidates are
  // bound-sorted, so the first candidate whose bound STRICTLY exceeds it
  // ends the search: everything after is provably outside the top k. The
  // strict inequality keeps exact ties simulable — a pruned candidate's
  // true score is > the k-th best, never equal, so lexicographic
  // tie-breaking matches the exhaustive ranking bit for bit. With no seeds
  // `pending` IS the active stream and this loop is the cold funnel
  // verbatim.
  std::size_t pos = 0;
  while (pos < pending.size()) {
    const double kth =
        static_cast<std::size_t>(query.k) <= best.size()
            ? best[static_cast<std::size_t>(query.k) - 1]
            : inf;
    if (query.prune && candidates[pending[pos]].lower_bound > kth) {
      for (std::size_t i = pos; i < pending.size(); ++i) {
        candidates[pending[i]].fate = Fate::Pruned;
        ++stats.pruned;
      }
      break;
    }
    if (meter.exhausted()) {
      for (std::size_t i = pos; i < pending.size(); ++i) {
        candidates[pending[i]].fate = Fate::Skipped;
        ++stats.budget_skipped;
      }
      stats.exhausted = false;
      break;
    }
    // Wave = the next wave_size candidates that survive the current k-th
    // best and still fit the point budget (all thread-count independent).
    std::size_t end = std::min(pos + static_cast<std::size_t>(query.wave_size),
                               pending.size());
    if (query.prune) {
      while (end > pos && candidates[pending[end - 1]].lower_bound > kth) --end;
    }
    if (npoints > 0) {
      const std::int64_t affordable = meter.remaining_points() / npoints;
      end = std::min(end, pos + static_cast<std::size_t>(std::max<std::int64_t>(
                              affordable, 1)));
    }
    fan_out(engine, end - pos, workers, [&](std::size_t i) {
      simulate_candidate(engine, machine, query, report.points,
                         candidates[pending[pos + i]]);
    });
    for (std::size_t i = pos; i < end; ++i) {
      TuneCandidate& c = candidates[pending[i]];
      c.fate = Fate::Simulated;
      c.wave = wave;
      ++stats.simulated;
      best.insert(std::upper_bound(best.begin(), best.end(), c.score),
                  c.score);
      if (best.size() > static_cast<std::size_t>(query.k)) best.pop_back();
    }
    meter.charge(static_cast<std::int64_t>(end - pos) * npoints);
    stats.sim_points += static_cast<std::int64_t>(end - pos) * npoints;
    pos = end;
    ++wave;
  }

  // Final ranking: simulated candidates by (score, representative order).
  // Keep the report's candidate table in funnel (bound) order, so indices
  // in `top` point into a stable provenance layout.
  report.candidates.reserve(candidates.size());
  std::vector<std::size_t> layout(candidates.size());
  for (std::size_t i = 0; i < active.size(); ++i) layout[i] = active[i];
  // Screened candidates come after the active stream, in lex order.
  std::size_t tail = active.size();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].fate == Fate::Screened) layout[tail++] = i;
  }
  for (const std::size_t idx : layout) {
    report.candidates.push_back(std::move(candidates[idx]));
  }
  std::vector<std::size_t> simulated;
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    if (report.candidates[i].fate == Fate::Simulated) simulated.push_back(i);
  }
  std::sort(simulated.begin(), simulated.end(),
            [&](std::size_t a, std::size_t b) {
              if (report.candidates[a].score != report.candidates[b].score) {
                return report.candidates[a].score < report.candidates[b].score;
              }
              return report.candidates[a].order < report.candidates[b].order;
            });
  const std::size_t keep =
      std::min(simulated.size(), static_cast<std::size_t>(query.k));
  report.top.assign(simulated.begin(),
                    simulated.begin() + static_cast<std::ptrdiff_t>(keep));
  stats.elapsed_seconds = meter.elapsed_seconds();
  engine.record_tune(stats.simulated, stats.sim_points);
  return report;
}

TuneReport tune(Engine& engine, const topo::Machine& machine,
                const TuneQuery& query) {
  return tune(engine, machine, query, nullptr);
}

// Backward-compat shim: the singleton-era signature, routed through the
// process-wide engine (same cache, same pool, same report bytes).
TuneReport tune(const topo::Machine& machine, const TuneQuery& query) {
  return tune(Engine::shared(), machine, query, nullptr);
}

}  // namespace mr::tune
