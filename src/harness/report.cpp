#include <iomanip>
#include <ostream>

#include "mixradix/harness/microbench.hpp"
#include "mixradix/util/csv.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/strings.hpp"

namespace mr::harness {

namespace {

void print_block(std::ostream& os, const std::string& scenario,
                 const std::vector<SweepSeries>& block) {
  if (block.empty()) return;
  os << "\n-- " << scenario << " --\n";
  os << std::left << std::setw(10) << "size";
  for (const auto& series : block) {
    os << std::right << std::setw(14) << order_to_string(series.character.order);
  }
  os << "\n";
  const auto& sizes = block.front().sizes;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    os << std::left << std::setw(10)
       << util::format_bytes(static_cast<std::uint64_t>(sizes[i]));
    for (const auto& series : block) {
      MR_EXPECT(series.sizes == sizes, "series have mismatched size axes");
      os << std::right << std::setw(14)
         << util::format_fixed(series.results[i].mean_bandwidth / 1e6, 1);
    }
    os << "\n";
  }
}

}  // namespace

void print_figure(std::ostream& os, const std::string& title,
                  const std::vector<SweepSeries>& single,
                  const std::vector<SweepSeries>& simultaneous) {
  os << "== " << title << " ==\n";
  os << "legend (order (ring cost - % of process pairs per level)):\n";
  const auto& legend_src = single.empty() ? simultaneous : single;
  for (const auto& series : legend_src) {
    os << "  " << series.character.to_string();
    if (!series.results.empty() && !series.results.front().algorithm.empty()) {
      os << "   [" << series.results.front().algorithm << " -> "
         << series.results.back().algorithm << "]";
    }
    os << "\n";
  }
  os << "bandwidth in MB/s:\n";
  print_block(os, "1 simultaneous comm.", single);
  print_block(os, "all simultaneous comms.", simultaneous);
  os << "\n";
}

void write_figure_csv(std::ostream& os, const std::string& figure,
                      const std::vector<SweepSeries>& single,
                      const std::vector<SweepSeries>& simultaneous) {
  util::CsvWriter csv(os, {"figure", "scenario", "order", "ring_cost", "size_bytes",
                           "bandwidth_mbs", "bw_p10_mbs", "bw_p90_mbs",
                           "seconds_per_op", "algorithm"});
  const auto emit = [&](const char* scenario, const std::vector<SweepSeries>& block) {
    for (const auto& series : block) {
      for (std::size_t i = 0; i < series.sizes.size(); ++i) {
        const auto& r = series.results[i];
        csv.row_of(figure, scenario, order_to_string(series.character.order),
                   series.character.ring_cost, series.sizes[i],
                   r.mean_bandwidth / 1e6, r.bw_p10 / 1e6, r.bw_p90 / 1e6,
                   r.mean_seconds_per_op, r.algorithm);
      }
    }
  };
  emit("single", single);
  emit("simultaneous", simultaneous);
}

}  // namespace mr::harness
