#include "mixradix/harness/microbench.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::harness {

std::vector<std::int64_t> paper_sizes(std::int64_t max_bytes) {
  // The paper's x-axis ticks: 16 KB, 128 KB, 1 MB, 8 MB, 64 MB, 512 MB.
  std::vector<std::int64_t> sizes;
  for (std::int64_t s = 16ll << 10; s <= max_bytes; s *= 8) {
    sizes.push_back(s);
  }
  return sizes;
}

std::vector<SweepSeries> run_sweep(const topo::Machine& machine,
                                   const SweepConfig& config) {
  MR_EXPECT(!config.orders.empty() && !config.sizes.empty(),
            "sweep needs orders and sizes");
  std::vector<SweepSeries> out;
  out.reserve(config.orders.size());
  for (const Order& order : config.orders) {
    SweepSeries series;
    series.character =
        characterize_order(machine.hierarchy(), order, config.comm_size);
    series.sizes = config.sizes;
    for (std::int64_t size : config.sizes) {
      MicrobenchConfig mb;
      mb.order = order;
      mb.comm_size = config.comm_size;
      mb.collective = config.collective;
      mb.total_bytes = size;
      mb.all_comms = config.all_comms;
      mb.repetitions = config.repetitions;
      series.results.push_back(run_microbench(machine, mb));
    }
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace mr::harness
