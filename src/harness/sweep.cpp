#include "mixradix/engine/engine.hpp"
#include "mixradix/harness/microbench.hpp"
#include "mixradix/tune/search.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/thread_pool.hpp"

namespace mr::harness {

namespace {

/// SweepConfig::tune_top_k screening: ask the autotuner for the top-K
/// orders of this sweep's workload and plot those instead of the given
/// list. The query mirrors the sweep exactly (same collective, comm size,
/// sizes, concurrency, repetitions, slack), so the tuner's objective — the
/// sum of point makespans — ranks orders by the very curves the sweep will
/// draw.
std::vector<Order> tuned_orders(Engine& engine, const topo::Machine& machine,
                                const SweepConfig& config) {
  tune::TuneQuery query;
  query.collectives = {config.collective};
  query.comm_sizes = {config.comm_size};
  query.total_bytes = config.sizes;
  query.concurrency = config.all_comms ? tune::Concurrency::AllComms
                                       : tune::Concurrency::SingleComm;
  query.k = config.tune_top_k;
  query.repetitions = config.repetitions;
  query.completion_slack = config.completion_slack;
  query.threads = config.threads;
  query.use_plan_cache = config.use_plan_cache;
  query.budget.max_points = config.tune_budget_points;
  const tune::TuneReport report = tune::tune(engine, machine, query);
  std::vector<Order> orders;
  orders.reserve(report.top.size());
  for (const std::size_t idx : report.top) {
    orders.push_back(report.candidates[idx].order);
  }
  return orders;
}

}  // namespace

std::vector<std::int64_t> paper_sizes(std::int64_t max_bytes) {
  // The paper's x-axis ticks: 16 KB, 128 KB, 1 MB, 8 MB, 64 MB, 512 MB.
  std::vector<std::int64_t> sizes;
  for (std::int64_t s = 16ll << 10; s <= max_bytes; s *= 8) {
    sizes.push_back(s);
  }
  return sizes;
}

// Every (order, size) point is an independent simulation: run_microbench
// builds its own schedules, TimedExecutor and FlowSim, and only reads the
// (immutable) machine. Points fan out across the engine's pool and land in
// pre-sized slots indexed by (order, size), so the merged output is
// bit-identical to the serial path regardless of the thread count or the
// completion order of the tasks.
std::vector<SweepSeries> run_sweep(Engine& engine,
                                   const topo::Machine& machine,
                                   const SweepConfig& input) {
  MR_EXPECT(input.tune_top_k > 0 || !input.orders.empty(),
            "sweep needs orders (or tune_top_k to find them)");
  MR_EXPECT(!input.sizes.empty(), "sweep needs sizes");
  MR_EXPECT(input.threads >= 0, "threads must be non-negative");
  SweepConfig config = input;
  if (config.tune_top_k > 0) {
    config.orders = tuned_orders(engine, machine, input);
  }
  const std::size_t norders = config.orders.size();
  const std::size_t nsizes = config.sizes.size();

  std::vector<SweepSeries> out(norders);
  for (std::size_t oi = 0; oi < norders; ++oi) {
    out[oi].sizes = config.sizes;
    out[oi].results.resize(nsizes);
  }

  const auto point = [&](std::size_t task) {
    const std::size_t oi = task / nsizes;
    const std::size_t si = task % nsizes;
    if (si == 0) {
      // Legend characterization goes through the closed-form kernels: for
      // an h! enumeration the O(s^2) reference pair scan would rival the
      // simulations themselves (bit-identical either way, see
      // bench/enum_scaling).
      out[oi].character =
          characterize_order(machine.hierarchy(), config.orders[oi],
                             config.comm_size, MetricsImpl::Fast);
    }
    // run_microbench leases a workspace from the engine's pool: every
    // point a worker simulates reuses flow-simulator arrays, the event
    // heap and interned routes (the pool hands the most recently returned
    // workspace back first), which is what keeps a 5040-order enumeration
    // from paying allocation churn per point — and, unlike the old
    // function-scoped thread_local, the memory is reclaimed when the
    // engine dies and never shared across engines. Results are
    // independent of reuse by construction (bit-identity is enforced by
    // the determinism tests and bench/timed_hotpath).
    MicrobenchConfig mb;
    mb.order = config.orders[oi];
    mb.comm_size = config.comm_size;
    mb.collective = config.collective;
    mb.total_bytes = config.sizes[si];
    mb.all_comms = config.all_comms;
    mb.repetitions = config.repetitions;
    mb.use_plan_cache = config.use_plan_cache;
    mb.completion_slack = config.completion_slack;
    mb.reference_engine = config.reference_engine;
    out[oi].results[si] = run_microbench(engine, machine, mb);
  };

  const unsigned threads = config.threads > 0
                               ? static_cast<unsigned>(config.threads)
                               : util::ThreadPool::default_threads();
  const std::size_t npoints = norders * nsizes;
  if (threads <= 1) {
    // Serial path: never touches the pool (no worker threads spawned).
    for (std::size_t task = 0; task < npoints; ++task) point(task);
  } else {
    engine.thread_pool().parallel_for(npoints, point, threads);
  }
  return out;
}

std::vector<SweepSeries> run_sweep(const topo::Machine& machine,
                                   const SweepConfig& config) {
  return run_sweep(Engine::shared(), machine, config);
}

}  // namespace mr::harness
