#include <algorithm>
#include <cmath>

#include "mixradix/engine/engine.hpp"
#include "mixradix/harness/microbench.hpp"
#include "mixradix/mr/decompose.hpp"
#include "mixradix/simmpi/plan_cache.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::harness {

namespace {

/// Per-rank element count (doubles) so that comm_size * count * 8 bytes ==
/// total_bytes, following the paper's size definition (they use MPI_BYTE;
/// we use doubles, which only rescales `count`).
std::int64_t count_for(std::int64_t total_bytes, std::int64_t comm_size) {
  return std::max<std::int64_t>(1, total_bytes / (8 * comm_size));
}

}  // namespace

std::vector<simmpi::PlanJob> protocol_jobs(Engine& engine,
                                           const topo::Machine& machine,
                                           const MicrobenchConfig& config) {
  const Hierarchy& h = machine.hierarchy();
  MR_EXPECT(config.comm_size >= 2, "communicator needs at least two ranks");
  MR_EXPECT(h.total() % config.comm_size == 0,
            "comm size must divide the process count");
  MR_EXPECT(config.total_bytes >= 1, "total_bytes must be positive");
  MR_EXPECT(config.repetitions >= 1, "need at least one repetition");

  const std::int64_t count = count_for(config.total_bytes, config.comm_size);
  const auto p = static_cast<std::int32_t>(config.comm_size);
  // The plan depends only on (algorithm, p, count, repetitions) — never on
  // the order — so every h! enumeration order of a sweep shares one cached
  // compile. Repetitions are a plan loop count, not a materialized repeat().
  const simmpi::PlanKey key{
      simmpi::selected_algorithm(config.collective, p, count,
                                 machine.costs().eager_threshold),
      p, count, /*root=*/0, config.repetitions};
  const std::shared_ptr<const simmpi::Plan> plan =
      config.use_plan_cache
          ? engine.plan_cache().get(key)
          : std::make_shared<const simmpi::Plan>(simmpi::compile_plan(
                key.algorithm, key.nranks, key.count, key.root,
                key.repetitions));

  // Step 1+2 of the protocol: reorder, then carve consecutive blocks of
  // reordered ranks; communicator k's rank j sits on the core that carries
  // reordered rank k*comm_size + j.
  const auto placement = placement_of_new_ranks(h, config.order);
  const std::int64_t ncomms =
      config.all_comms ? h.total() / config.comm_size : 1;

  std::vector<simmpi::PlanJob> jobs;
  jobs.reserve(static_cast<std::size_t>(ncomms));
  for (std::int64_t k = 0; k < ncomms; ++k) {
    simmpi::PlanJob job;
    job.plan = plan;
    job.core_of_rank.resize(static_cast<std::size_t>(config.comm_size));
    for (std::int64_t j = 0; j < config.comm_size; ++j) {
      job.core_of_rank[static_cast<std::size_t>(j)] =
          placement[static_cast<std::size_t>(k * config.comm_size + j)];
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

MicrobenchResult run_microbench(Engine& engine, const topo::Machine& machine,
                                const MicrobenchConfig& config) {
  const std::vector<simmpi::PlanJob> jobs =
      protocol_jobs(engine, machine, config);

  simmpi::ExecOptions exec;
  exec.completion_slack = config.completion_slack;
  exec.reference = config.reference_engine;
  exec.workspace = config.workspace;
  // No explicit workspace: lease one from the engine's pool for this run
  // (reused across runs, reclaimed with the engine). The reference engine
  // allocates fresh by contract and ignores workspaces.
  Engine::WorkspaceLease lease;
  if (config.workspace == nullptr && !config.reference_engine) {
    lease = engine.workspace();
    exec.workspace = lease.get();
  }
  const simmpi::TimedResult timed = simmpi::run_timed(machine, jobs, exec);
  engine.record_run(timed);

  std::vector<double> bandwidths;
  bandwidths.reserve(jobs.size());
  double sum_seconds = 0;
  for (double finish : timed.job_finish) {
    const double per_op = finish / config.repetitions;
    sum_seconds += per_op;
    bandwidths.push_back(static_cast<double>(config.total_bytes) / per_op);
  }
  std::sort(bandwidths.begin(), bandwidths.end());

  MicrobenchResult result;
  result.mean_seconds_per_op = sum_seconds / static_cast<double>(jobs.size());
  double mean_bw = 0;
  for (double bw : bandwidths) mean_bw += bw;
  result.mean_bandwidth = mean_bw / static_cast<double>(bandwidths.size());
  const auto decile = [&](double q) {
    // Round to the nearest order statistic so the deciles always bracket
    // the mean for small communicator counts.
    const auto idx = static_cast<std::size_t>(
        std::llround(q * static_cast<double>(bandwidths.size() - 1)));
    return bandwidths[std::min(idx, bandwidths.size() - 1)];
  };
  result.bw_p10 = decile(0.1);
  result.bw_p90 = decile(0.9);
  result.algorithm = jobs.front().plan->algorithm;
  return result;
}

// Backward-compat shims: the original singleton-era signatures, routed
// through the process-wide engine (same cache, same pool, same output).
std::vector<simmpi::PlanJob> protocol_jobs(const topo::Machine& machine,
                                           const MicrobenchConfig& config) {
  return protocol_jobs(Engine::shared(), machine, config);
}

MicrobenchResult run_microbench(const topo::Machine& machine,
                                const MicrobenchConfig& config) {
  return run_microbench(Engine::shared(), machine, config);
}

}  // namespace mr::harness
