#include "mixradix/util/csv.hpp"

#include <cstdio>

#include "mixradix/util/expect.hpp"

namespace mr::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> header)
    : os_(os), arity_(header.size()) {
  MR_EXPECT(!header.empty(), "CSV header must not be empty");
  write_line(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  MR_EXPECT(fields.size() == arity_, "CSV row arity mismatch");
  write_line(fields);
}

std::string CsvWriter::to_field(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void CsvWriter::write_line(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << csv_escape(fields[i]);
  }
  os_ << '\n';
}

}  // namespace mr::util
