#include "mixradix/util/prng.hpp"

// All PRNG code is header-only; this translation unit exists so the build
// has a stable object for the module and to host future non-inline helpers.
namespace mr::util {}
