#include "mixradix/util/thread_pool.hpp"

#include <cstdlib>
#include <exception>
#include <string>

#include "mixradix/util/expect.hpp"

namespace mr::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->tasks.emplace_back([packaged] { (*packaged)(); });
  }
  {
    // The increment must be ordered with the wait predicate's read (both
    // under wake_mutex_), or a worker between its predicate check and the
    // actual block could miss this wakeup forever.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    queued_.fetch_add(1, std::memory_order_release);
  }
  wake_.notify_one();
  return future;
}

bool ThreadPool::pop_own(std::size_t self, std::function<void()>& task) {
  Worker& w = *workers_[self];
  std::lock_guard<std::mutex> lock(w.mutex);
  if (w.tasks.empty()) return false;
  task = std::move(w.tasks.front());
  w.tasks.pop_front();
  return true;
}

bool ThreadPool::steal(std::size_t self, std::function<void()>& task) {
  const std::size_t n = workers_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& w = *workers_[(self + k) % n];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.tasks.empty()) continue;
    task = std::move(w.tasks.back());
    w.tasks.pop_back();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  while (true) {
    std::function<void()> task;
    if (pop_own(self, task) || steal(self, task)) {
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_) return;
    wake_.wait(lock, [this] {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              unsigned max_workers) {
  parallel_for_slots(
      n, [&body](unsigned /*slot*/, std::size_t i) { body(i); }, max_workers);
}

void ThreadPool::parallel_for_slots(
    std::size_t n, const std::function<void(unsigned, std::size_t)>& body,
    unsigned max_workers) {
  if (n == 0) return;
  unsigned workers = size();
  if (max_workers != 0 && max_workers < workers) workers = max_workers;
  if (static_cast<std::size_t>(workers) > n) {
    workers = static_cast<unsigned>(n);
  }
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto drive = [&](unsigned slot) {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(slot, i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        cursor.store(n, std::memory_order_relaxed);  // cancel the rest.
        return;
      }
    }
  };

  std::vector<std::future<void>> helpers;
  helpers.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) {
    helpers.push_back(submit([&drive, w] { drive(w); }));
  }
  drive(0);  // the caller participates as slot 0.
  for (std::future<void>& f : helpers) f.get();
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_threads());
  return pool;
}

unsigned ThreadPool::default_threads() {
  if (const char* env = std::getenv("MIXRADIX_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1) {
      return static_cast<unsigned>(value);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace mr::util
