#include "mixradix/util/strings.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>

#include "mixradix/util/expect.hpp"

namespace mr::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string join_ints(const std::vector<int>& values, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += sep;
    out += std::to_string(values[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

int parse_int(std::string_view s) {
  s = trim(s);
  int value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  MR_EXPECT(ec == std::errc{} && ptr == s.data() + s.size(),
            "not an integer: '" + std::string(s) + "'");
  return value;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (value == static_cast<std::uint64_t>(value)) {
    std::snprintf(buf, sizeof buf, "%llu %s",
                  static_cast<unsigned long long>(value), kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace mr::util
