#include "mixradix/slurm/distribution.hpp"

#include "mixradix/mr/decompose.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/strings.hpp"

namespace mr::slurm {

namespace {

NodeDist parse_node_policy(std::string_view token, int& plane_size) {
  if (token == "block") return NodeDist::Block;
  if (token == "cyclic") return NodeDist::Cyclic;
  if (token.starts_with("plane=")) {
    plane_size = util::parse_int(token.substr(6));
    MR_EXPECT(plane_size >= 1, "plane size must be >= 1");
    return NodeDist::Plane;
  }
  MR_EXPECT(false, "unknown node distribution '" + std::string(token) + "'");
  return NodeDist::Block;  // unreachable
}

SocketDist parse_socket_policy(std::string_view token) {
  if (token == "block") return SocketDist::Block;
  if (token == "cyclic" || token == "fcyclic") return SocketDist::Cyclic;
  MR_EXPECT(false, "unknown socket distribution '" + std::string(token) + "'");
  return SocketDist::Block;  // unreachable
}

}  // namespace

Distribution Distribution::parse(std::string_view text) {
  const auto parts = util::split(util::trim(text), ':');
  MR_EXPECT(parts.size() >= 1 && parts.size() <= 2,
            "expected <node>[:<socket>] in '" + std::string(text) + "'");
  Distribution d;
  d.node = parse_node_policy(parts[0], d.plane_size);
  if (parts.size() == 2) {
    MR_EXPECT(d.node != NodeDist::Plane,
              "plane= does not take a socket policy in Slurm syntax");
    d.socket = parse_socket_policy(parts[1]);
  }
  return d;
}

std::string Distribution::to_string() const {
  switch (node) {
    case NodeDist::Plane:
      return "plane=" + std::to_string(plane_size);
    case NodeDist::Block:
      return std::string("block:") + (socket == SocketDist::Block ? "block" : "cyclic");
    case NodeDist::Cyclic:
      return std::string("cyclic:") + (socket == SocketDist::Block ? "block" : "cyclic");
  }
  MR_ASSERT_INTERNAL(false);
  return {};
}

MachineView MachineView::from_hierarchy(const Hierarchy& h) {
  MR_EXPECT(h.depth() >= 2, "need at least node and core levels");
  MachineView m;
  m.nodes = h.radix(0);
  if (h.depth() == 2) {
    m.sockets_per_node = 1;
    m.cores_per_socket = h.radix(1);
  } else {
    m.sockets_per_node = h.radix(1);
    m.cores_per_socket = h.leaves_below(2);
  }
  return m;
}

}  // namespace mr::slurm
