#include <algorithm>

#include "mixradix/mr/decompose.hpp"
#include "mixradix/slurm/distribution.hpp"
#include "mixradix/util/expect.hpp"

namespace mr::slurm {

namespace {

/// Node-local slot (0..cores_per_node) of global rank `i`, plus its node,
/// under the node-level policy. Slots count tasks in global-rank order
/// within each node.
struct NodeSlot {
  std::int64_t node = 0;
  std::int64_t slot = 0;
};

NodeSlot node_slot(const MachineView& m, const Distribution& d, std::int64_t rank) {
  switch (d.node) {
    case NodeDist::Block:
      return {rank / m.cores_per_node(), rank % m.cores_per_node()};
    case NodeDist::Cyclic:
      return {rank % m.nodes, rank / m.nodes};
    case NodeDist::Plane: {
      // Blocks of plane_size tasks dealt round-robin across nodes; blocks
      // landing on the same node stack consecutively.
      const std::int64_t block = rank / d.plane_size;
      const std::int64_t offset = rank % d.plane_size;
      return {block % m.nodes, (block / m.nodes) * d.plane_size + offset};
    }
  }
  MR_ASSERT_INTERNAL(false);
  return {};
}

}  // namespace

std::vector<std::int64_t> task_map(const MachineView& m, const Distribution& d) {
  MR_EXPECT(m.nodes >= 1 && m.sockets_per_node >= 1 && m.cores_per_socket >= 1,
            "machine view must be populated");
  if (d.node == NodeDist::Plane) {
    MR_EXPECT(d.plane_size >= 1 && d.plane_size <= m.cores_per_node(),
              "plane size out of range");
    MR_EXPECT(m.cores_per_node() % d.plane_size == 0,
              "plane size must divide the cores per node for a full layout");
  }
  const std::int64_t total = m.total_cores();
  std::vector<std::int64_t> map(static_cast<std::size_t>(total));
  for (std::int64_t rank = 0; rank < total; ++rank) {
    const NodeSlot ns = node_slot(m, d, rank);
    std::int64_t socket = 0;
    std::int64_t core = 0;
    if (d.socket == SocketDist::Block) {
      socket = ns.slot / m.cores_per_socket;
      core = ns.slot % m.cores_per_socket;
    } else {
      socket = ns.slot % m.sockets_per_node;
      core = ns.slot / m.sockets_per_node;
    }
    map[static_cast<std::size_t>(rank)] =
        ns.node * m.cores_per_node() + socket * m.cores_per_socket + core;
  }
  return map;
}

std::optional<Distribution> equivalent_distribution(const Hierarchy& h,
                                                    const Order& order) {
  const MachineView m = MachineView::from_hierarchy(h);
  const auto target = placement_of_new_ranks(h, order);

  std::vector<Distribution> candidates;
  for (NodeDist nd : {NodeDist::Block, NodeDist::Cyclic}) {
    for (SocketDist sd : {SocketDist::Block, SocketDist::Cyclic}) {
      candidates.push_back(Distribution{nd, sd, 0});
    }
  }
  for (int k = 2; k < m.cores_per_node(); ++k) {
    if (m.cores_per_node() % k == 0) {
      candidates.push_back(Distribution{NodeDist::Plane, SocketDist::Block, k});
    }
  }
  for (const auto& d : candidates) {
    if (task_map(m, d) == target) return d;
  }
  return std::nullopt;
}

std::optional<Order> equivalent_order(const Hierarchy& h, const Distribution& d) {
  const MachineView m = MachineView::from_hierarchy(h);
  const auto target = task_map(m, d);
  std::optional<Order> found;
  for_each_order(h.depth(), [&](const Order& order) {
    if (placement_of_new_ranks(h, order) == target) {
      found = order;
      return false;
    }
    return true;
  });
  return found;
}

}  // namespace mr::slurm
