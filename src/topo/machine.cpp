#include "mixradix/topo/machine.hpp"

#include <cmath>
#include <sstream>
#include <string>
#include <utility>

#include "mixradix/mr/metrics.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/strings.hpp"

namespace mr::topo {

namespace {

std::string level_tag(std::size_t index, const LevelSpec& spec) {
  return "level " + std::to_string(index) + " ('" + spec.name + "')";
}

/// Parameter validation runs BEFORE Hierarchy construction so a bad radix
/// is reported with its level index and name rather than Hierarchy's
/// location-free precondition message.
void validate_levels(const std::vector<LevelSpec>& levels) {
  MR_EXPECT(!levels.empty(), "machine needs at least one level");
  for (std::size_t k = 0; k < levels.size(); ++k) {
    const LevelSpec& spec = levels[k];
    // Hierarchy re-checks this, but without the level location.
    MR_EXPECT(spec.radix >= 2,
              level_tag(k, spec) + " needs radix >= 2, got " +
                  std::to_string(spec.radix));
    MR_EXPECT(std::isfinite(spec.link_bandwidth) && spec.link_bandwidth > 0,
              level_tag(k, spec) + " needs finite positive link bandwidth, got " +
                  std::to_string(spec.link_bandwidth));
    MR_EXPECT(std::isfinite(spec.link_latency) && spec.link_latency >= 0,
              level_tag(k, spec) + " needs finite non-negative link latency, got " +
                  std::to_string(spec.link_latency));
    MR_EXPECT(std::isfinite(spec.mem_bandwidth) && spec.mem_bandwidth >= 0,
              level_tag(k, spec) + " needs finite non-negative memory bandwidth, got " +
                  std::to_string(spec.mem_bandwidth));
  }
}

void validate_costs(const MessagingCosts& costs) {
  MR_EXPECT(std::isfinite(costs.send_overhead) && costs.send_overhead >= 0,
            "send_overhead must be finite and >= 0, got " +
                std::to_string(costs.send_overhead));
  MR_EXPECT(std::isfinite(costs.recv_overhead) && costs.recv_overhead >= 0,
            "recv_overhead must be finite and >= 0, got " +
                std::to_string(costs.recv_overhead));
  MR_EXPECT(std::isfinite(costs.base_latency) && costs.base_latency >= 0,
            "base_latency must be finite and >= 0, got " +
                std::to_string(costs.base_latency));
  MR_EXPECT(costs.eager_threshold >= 0,
            "eager_threshold must be >= 0, got " +
                std::to_string(costs.eager_threshold));
  MR_EXPECT(std::isfinite(costs.reduce_seconds_per_byte) &&
                costs.reduce_seconds_per_byte >= 0,
            "reduce_seconds_per_byte must be finite and >= 0, got " +
                std::to_string(costs.reduce_seconds_per_byte));
}

Hierarchy hierarchy_from_levels(const std::vector<LevelSpec>& levels) {
  validate_levels(levels);
  std::vector<int> radices;
  std::vector<std::string> names;
  for (const auto& spec : levels) {
    radices.push_back(spec.radix);
    names.push_back(spec.name);
  }
  return Hierarchy(std::move(radices), std::move(names));
}

}  // namespace

Machine::Machine(std::string name, std::vector<LevelSpec> levels,
                 MessagingCosts costs, double core_flops)
    : name_(std::move(name)),
      levels_(std::move(levels)),
      hierarchy_(hierarchy_from_levels(levels_)),
      costs_(costs),
      core_flops_(core_flops) {
  validate_costs(costs_);
  MR_EXPECT(std::isfinite(core_flops_) && core_flops_ > 0,
            "core_flops must be finite and positive, got " +
                std::to_string(core_flops_));
  level_offset_.resize(levels_.size());
  for (int k = 0; k < depth(); ++k) {
    level_offset_[static_cast<std::size_t>(k)] = total_components_;
    total_components_ += hierarchy_.components_at(k);
  }
}

const LevelSpec& Machine::level(int k) const {
  MR_EXPECT(k >= 0 && k < depth(), "level out of range");
  return levels_[static_cast<std::size_t>(k)];
}

std::int64_t Machine::component_of(std::int64_t core, int level) const {
  MR_EXPECT(core >= 0 && core < cores(), "core id out of range");
  MR_EXPECT(level >= 0 && level < depth(), "level out of range");
  return core / hierarchy_.leaves_below(level + 1);
}

std::int64_t Machine::component_id(int level, std::int64_t component_in_level) const {
  MR_EXPECT(level >= 0 && level < depth(), "level out of range");
  MR_EXPECT(component_in_level >= 0 &&
                component_in_level < hierarchy_.components_at(level),
            "component index out of range");
  return level_offset_[static_cast<std::size_t>(level)] + component_in_level;
}

double Machine::path_latency(std::int64_t core_a, std::int64_t core_b) const {
  if (core_a == core_b) return costs_.base_latency;
  const Coords a = decompose(hierarchy_, core_a);
  const Coords b = decompose(hierarchy_, core_b);
  const int fd = innermost_common_level(hierarchy_, a, b);
  double latency = costs_.base_latency;
  for (int k = fd; k < depth(); ++k) {
    latency += 2.0 * levels_[static_cast<std::size_t>(k)].link_latency;
  }
  return latency;
}

Machine Machine::with_nodes(int nodes) const {
  MR_EXPECT(nodes >= 2, "need at least two nodes at the outer level, got " +
                            std::to_string(nodes));
  std::vector<LevelSpec> levels = levels_;
  levels[0].radix = nodes;
  return Machine(name_, std::move(levels), costs_, core_flops_);
}

Machine Machine::with_nic_scale(double factor) const {
  MR_EXPECT(std::isfinite(factor) && factor > 0,
            "NIC scale must be finite and positive, got " +
                std::to_string(factor));
  std::vector<LevelSpec> levels = levels_;
  levels[0].link_bandwidth *= factor;
  return Machine(name_, std::move(levels), costs_, core_flops_);
}

Machine Machine::with_costs(MessagingCosts costs) const {
  return Machine(name_, levels_, costs, core_flops_);
}

std::string machine_fingerprint(const Machine& machine) {
  std::ostringstream os;
  os.precision(17);
  os << machine.name() << '\n' << machine.core_flops();
  const auto& costs = machine.costs();
  os << '\n'
     << costs.send_overhead << ' ' << costs.recv_overhead << ' '
     << costs.base_latency << ' ' << costs.eager_threshold << ' '
     << costs.reduce_seconds_per_byte;
  for (const auto& level : machine.levels()) {
    os << '\n'
       << level.name << ' ' << level.radix << ' ' << level.link_latency << ' '
       << level.link_bandwidth << ' ' << level.mem_bandwidth;
  }
  return os.str();
}

std::string Machine::describe() const {
  std::string out = name_ + " " + hierarchy_.to_string() + ", " +
                    std::to_string(cores()) + " cores\n";
  for (int k = 0; k < depth(); ++k) {
    const auto& spec = levels_[static_cast<std::size_t>(k)];
    out += "  level " + std::to_string(k) + " (" + spec.name +
           "): radix " + std::to_string(spec.radix) + ", uplink " +
           util::format_bytes(static_cast<std::uint64_t>(spec.link_bandwidth)) +
           "/s, hop " + util::format_fixed(spec.link_latency * 1e9, 0) + " ns";
    if (spec.mem_bandwidth > 0) {
      out += ", mem " +
             util::format_bytes(static_cast<std::uint64_t>(spec.mem_bandwidth)) + "/s";
    }
    out += "\n";
  }
  return out;
}

}  // namespace mr::topo
