#include "mixradix/topo/machine.hpp"

#include <utility>

#include "mixradix/mr/metrics.hpp"
#include "mixradix/util/expect.hpp"
#include "mixradix/util/strings.hpp"

namespace mr::topo {

namespace {

Hierarchy hierarchy_from_levels(const std::vector<LevelSpec>& levels) {
  MR_EXPECT(!levels.empty(), "machine needs at least one level");
  std::vector<int> radices;
  std::vector<std::string> names;
  for (const auto& spec : levels) {
    radices.push_back(spec.radix);
    names.push_back(spec.name);
  }
  return Hierarchy(std::move(radices), std::move(names));
}

}  // namespace

Machine::Machine(std::string name, std::vector<LevelSpec> levels,
                 MessagingCosts costs, double core_flops)
    : name_(std::move(name)),
      levels_(std::move(levels)),
      hierarchy_(hierarchy_from_levels(levels_)),
      costs_(costs),
      core_flops_(core_flops) {
  for (const auto& spec : levels_) {
    MR_EXPECT(spec.link_latency >= 0 && spec.link_bandwidth > 0,
              "level '" + spec.name + "' needs positive link bandwidth");
    MR_EXPECT(spec.mem_bandwidth >= 0, "memory bandwidth must be >= 0");
  }
  MR_EXPECT(core_flops_ > 0, "core_flops must be positive");
  level_offset_.resize(levels_.size());
  for (int k = 0; k < depth(); ++k) {
    level_offset_[static_cast<std::size_t>(k)] = total_components_;
    total_components_ += hierarchy_.components_at(k);
  }
}

const LevelSpec& Machine::level(int k) const {
  MR_EXPECT(k >= 0 && k < depth(), "level out of range");
  return levels_[static_cast<std::size_t>(k)];
}

std::int64_t Machine::component_of(std::int64_t core, int level) const {
  MR_EXPECT(core >= 0 && core < cores(), "core id out of range");
  MR_EXPECT(level >= 0 && level < depth(), "level out of range");
  return core / hierarchy_.leaves_below(level + 1);
}

std::int64_t Machine::component_id(int level, std::int64_t component_in_level) const {
  MR_EXPECT(level >= 0 && level < depth(), "level out of range");
  MR_EXPECT(component_in_level >= 0 &&
                component_in_level < hierarchy_.components_at(level),
            "component index out of range");
  return level_offset_[static_cast<std::size_t>(level)] + component_in_level;
}

double Machine::path_latency(std::int64_t core_a, std::int64_t core_b) const {
  if (core_a == core_b) return costs_.base_latency;
  const Coords a = decompose(hierarchy_, core_a);
  const Coords b = decompose(hierarchy_, core_b);
  const int fd = innermost_common_level(hierarchy_, a, b);
  double latency = costs_.base_latency;
  for (int k = fd; k < depth(); ++k) {
    latency += 2.0 * levels_[static_cast<std::size_t>(k)].link_latency;
  }
  return latency;
}

Machine Machine::with_nodes(int nodes) const {
  MR_EXPECT(nodes >= 2, "need at least two nodes at the outer level");
  std::vector<LevelSpec> levels = levels_;
  levels[0].radix = nodes;
  return Machine(name_, std::move(levels), costs_, core_flops_);
}

Machine Machine::with_nic_scale(double factor) const {
  MR_EXPECT(factor > 0, "NIC scale must be positive");
  std::vector<LevelSpec> levels = levels_;
  levels[0].link_bandwidth *= factor;
  return Machine(name_, std::move(levels), costs_, core_flops_);
}

Machine Machine::with_costs(MessagingCosts costs) const {
  return Machine(name_, levels_, costs, core_flops_);
}

std::string Machine::describe() const {
  std::string out = name_ + " " + hierarchy_.to_string() + ", " +
                    std::to_string(cores()) + " cores\n";
  for (int k = 0; k < depth(); ++k) {
    const auto& spec = levels_[static_cast<std::size_t>(k)];
    out += "  level " + std::to_string(k) + " (" + spec.name +
           "): radix " + std::to_string(spec.radix) + ", uplink " +
           util::format_bytes(static_cast<std::uint64_t>(spec.link_bandwidth)) +
           "/s, hop " + util::format_fixed(spec.link_latency * 1e9, 0) + " ns";
    if (spec.mem_bandwidth > 0) {
      out += ", mem " +
             util::format_bytes(static_cast<std::uint64_t>(spec.mem_bandwidth)) + "/s";
    }
    out += "\n";
  }
  return out;
}

}  // namespace mr::topo
