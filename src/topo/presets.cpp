#include "mixradix/topo/presets.hpp"

#include "mixradix/util/expect.hpp"

namespace mr::topo {

Machine hydra(int nodes, int nics) {
  MR_EXPECT(nics == 1 || nics == 2, "Hydra nodes have one or two NICs");
  std::vector<LevelSpec> levels = {
      // Omni-Path HFI: 100 Gb/s = 12.5 GB/s per NIC, ~1 us fabric hop.
      {"node", nodes, 1.0e-6, 12.5e9 * nics, 0.0},
      // UPI cross-socket: ~20 GB/s sustained, DDR4-2666 6ch per socket.
      {"socket", 2, 4.0e-7, 20.0e9, 85.0e9},
      // Fake level: halves of a socket (the paper's 2 x 8 split); traffic
      // between halves rides the on-die mesh.
      {"half", 2, 1.5e-7, 40.0e9, 48.0e9},
      // Within a half: shared-memory copies, bounded per core.
      {"core", 8, 1.0e-7, 9.0e9, 12.0e9},
  };
  // Xeon Gold 6130F: 2.1 GHz, AVX-512; ~33.6 GFLOP/s sustained per core.
  return Machine("hydra", std::move(levels), MessagingCosts{}, 33.6e9);
}

Machine lumi(int nodes) {
  std::vector<LevelSpec> levels = {
      // Slingshot-11: 200 Gb/s = 25 GB/s, ~0.9 us fabric hop.
      {"node", nodes, 9.0e-7, 25.0e9, 0.0},
      // xGMI socket interconnect; 8-channel DDR4-3200 per socket.
      {"socket", 2, 3.5e-7, 36.0e9, 190.0e9},
      // NUMA domain (NPS4): quarter of the socket's memory controllers.
      {"numa", 4, 1.8e-7, 45.0e9, 48.0e9},
      // CCX: 8 cores behind one L3; Infinity-Fabric port to memory.
      {"l3", 2, 1.2e-7, 60.0e9, 32.0e9},
      {"core", 8, 8.0e-8, 10.0e9, 20.0e9},
  };
  // EPYC 7763: 2.45 GHz; ~39 GFLOP/s sustained per core.
  MessagingCosts costs;
  costs.base_latency = 2.5e-7;  // Slingshot + Cray MPICH are snappier.
  return Machine("lumi", std::move(levels), costs, 39.0e9);
}

Machine lumi_node() {
  std::vector<LevelSpec> levels = {
      {"socket", 2, 3.5e-7, 36.0e9, 190.0e9},
      {"numa", 4, 1.8e-7, 45.0e9, 48.0e9},
      {"l3", 2, 1.2e-7, 60.0e9, 32.0e9},
      {"core", 8, 8.0e-8, 10.0e9, 20.0e9},
  };
  MessagingCosts costs;
  costs.base_latency = 2.5e-7;
  return Machine("lumi-node", std::move(levels), costs, 39.0e9);
}

Machine hydra_node(int nics) {
  MR_EXPECT(nics == 1 || nics == 2, "Hydra nodes have one or two NICs");
  (void)nics;  // a single node never exercises its NIC
  std::vector<LevelSpec> levels = {
      {"socket", 2, 4.0e-7, 20.0e9, 85.0e9},
      {"half", 2, 1.5e-7, 40.0e9, 48.0e9},
      {"core", 8, 1.0e-7, 9.0e9, 12.0e9},
  };
  return Machine("hydra-node", std::move(levels), MessagingCosts{}, 33.6e9);
}

Machine testbox() {
  std::vector<LevelSpec> levels = {
      {"node", 2, 0.0, 1.0e9, 0.0},
      {"socket", 2, 0.0, 2.0e9, 8.0e9},
      {"core", 4, 0.0, 4.0e9, 4.0e9},
  };
  MessagingCosts costs;
  costs.send_overhead = 0.0;
  costs.recv_overhead = 0.0;
  costs.base_latency = 0.0;
  costs.eager_threshold = 0;  // everything rendezvous: fully deterministic
  costs.reduce_seconds_per_byte = 0.0;
  return Machine("testbox", std::move(levels), costs, 1.0e9);
}

Machine generic(int nodes, int sockets, int cores_per_socket) {
  std::vector<LevelSpec> levels = {
      {"node", nodes, 1.0e-6, 12.5e9, 0.0},
      {"socket", sockets, 3.0e-7, 25.0e9, 100.0e9},
      {"core", cores_per_socket, 1.0e-7, 10.0e9, 15.0e9},
  };
  return Machine("generic", std::move(levels));
}

}  // namespace mr::topo
