#include "mixradix/topo/discover.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>

namespace mr::topo {

namespace {

namespace fs = std::filesystem;

std::optional<int> read_int_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  int value = 0;
  in >> value;
  if (!in) return std::nullopt;
  return value;
}

struct CpuInfo {
  int package = 0;
  int numa = 0;
  int core = 0;  // physical core id within package (SMT siblings share it)
};

}  // namespace

std::optional<Hierarchy> discover_host(const std::string& sysfs_root) {
  const fs::path cpu_dir = fs::path(sysfs_root) / "devices/system/cpu";
  std::error_code ec;
  if (!fs::is_directory(cpu_dir, ec)) return std::nullopt;

  // NUMA node of each cpu: scan node directories (they contain cpuN links).
  std::map<int, int> numa_of_cpu;
  const fs::path node_dir = fs::path(sysfs_root) / "devices/system/node";
  if (fs::is_directory(node_dir, ec)) {
    for (const auto& entry : fs::directory_iterator(node_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("node", 0) != 0) continue;
      int node_id = 0;
      try {
        node_id = std::stoi(name.substr(4));
      } catch (...) {
        continue;
      }
      for (const auto& sub : fs::directory_iterator(entry.path(), ec)) {
        const std::string sub_name = sub.path().filename().string();
        if (sub_name.rfind("cpu", 0) == 0 && sub_name.size() > 3 &&
            std::isdigit(static_cast<unsigned char>(sub_name[3]))) {
          try {
            numa_of_cpu[std::stoi(sub_name.substr(3))] = node_id;
          } catch (...) {
          }
        }
      }
    }
  }

  std::map<int, CpuInfo> cpus;  // logical cpu -> location
  for (const auto& entry : fs::directory_iterator(cpu_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("cpu", 0) != 0 || name.size() <= 3 ||
        !std::isdigit(static_cast<unsigned char>(name[3]))) {
      continue;
    }
    int cpu_id = 0;
    try {
      cpu_id = std::stoi(name.substr(3));
    } catch (...) {
      continue;
    }
    const auto pkg = read_int_file(entry.path() / "topology/physical_package_id");
    const auto core = read_int_file(entry.path() / "topology/core_id");
    if (!pkg || !core) continue;  // offline cpu or exotic sysfs
    CpuInfo info;
    info.package = *pkg;
    info.core = *core;
    const auto numa_it = numa_of_cpu.find(cpu_id);
    info.numa = numa_it == numa_of_cpu.end() ? *pkg : numa_it->second;
    cpus.emplace(cpu_id, info);
  }
  if (cpus.empty()) return std::nullopt;

  // Count physical cores per (package, numa); ignore SMT siblings.
  std::set<int> packages;
  std::map<int, std::set<int>> numas_per_package;
  std::map<std::pair<int, int>, std::set<int>> cores_per_numa;
  for (const auto& [cpu, info] : cpus) {
    packages.insert(info.package);
    numas_per_package[info.package].insert(info.numa);
    cores_per_numa[{info.package, info.numa}].insert(info.core);
  }

  // Homogeneity (§3.2 constraint 2): every package must hold the same
  // number of NUMA domains, every domain the same number of cores.
  const std::size_t numas = numas_per_package.begin()->second.size();
  for (const auto& [pkg, set] : numas_per_package) {
    if (set.size() != numas) return std::nullopt;
  }
  const std::size_t cores = cores_per_numa.begin()->second.size();
  for (const auto& [key, set] : cores_per_numa) {
    if (set.size() != cores) return std::nullopt;
  }

  std::vector<int> radices;
  std::vector<std::string> names;
  if (packages.size() > 1) {
    radices.push_back(static_cast<int>(packages.size()));
    names.emplace_back("socket");
  }
  if (numas > 1) {
    radices.push_back(static_cast<int>(numas));
    names.emplace_back("numa");
  }
  if (cores > 1) {
    radices.push_back(static_cast<int>(cores));
    names.emplace_back("core");
  }
  if (radices.empty()) return std::nullopt;  // single-core host: no hierarchy
  return Hierarchy(std::move(radices), std::move(names));
}

}  // namespace mr::topo
