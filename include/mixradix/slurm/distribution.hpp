// A faithful model of the Slurm task-distribution options the paper
// compares against (§3.4): --distribution=<node>:<socket> with the block /
// cyclic policies and the plane=<k> node policy, plus --cpu-bind=map_cpu.
//
// Slurm can only steer two hierarchy levels (node and socket); everything
// below a socket is filled in physical-id order. This is precisely the
// limitation the mixed-radix technique lifts, and the reason Fig. 2's
// order [1,0,2] has no --distribution equivalent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mixradix/mr/hierarchy.hpp"
#include "mixradix/mr/permutation.hpp"

namespace mr::slurm {

enum class NodeDist { Block, Cyclic, Plane };
enum class SocketDist { Block, Cyclic };

/// A parsed --distribution value.
struct Distribution {
  NodeDist node = NodeDist::Block;
  SocketDist socket = SocketDist::Block;
  int plane_size = 0;  ///< only meaningful when node == Plane.

  /// Parse "block:cyclic", "cyclic:block", "block", "plane=4", ...
  static Distribution parse(std::string_view text);

  /// Canonical rendering ("block:cyclic", "plane=4").
  std::string to_string() const;

  friend bool operator==(const Distribution&, const Distribution&) = default;
};

/// The three-level view Slurm has of a machine. Deeper hierarchies are
/// collapsed: every level below the socket becomes part of
/// `cores_per_socket`, enumerated by physical id.
struct MachineView {
  std::int64_t nodes = 0;
  std::int64_t sockets_per_node = 0;
  std::int64_t cores_per_socket = 0;

  std::int64_t cores_per_node() const { return sockets_per_node * cores_per_socket; }
  std::int64_t total_cores() const { return nodes * cores_per_node(); }

  /// Collapse a full hierarchy: level 0 = nodes, level 1 = sockets,
  /// levels >= 2 merged into cores_per_socket. Depth must be >= 2; a
  /// 2-level hierarchy is treated as single-socket nodes.
  static MachineView from_hierarchy(const Hierarchy& h);
};

/// Slurm's task->core map when every core runs one task: result[rank] is
/// the global core id (node * cores_per_node + socket * cores_per_socket +
/// core) hosting that rank.
std::vector<std::int64_t> task_map(const MachineView& m, const Distribution& d);

/// Find the --distribution value whose task map equals the mixed-radix
/// order's map on hierarchy `h`, trying block/cyclic combinations and
/// plane=k for every k in [2, cores_per_node). std::nullopt reproduces
/// Fig. 2's "Not possible" caption for order [1,0,2].
std::optional<Distribution> equivalent_distribution(const Hierarchy& h,
                                                    const Order& order);

/// The inverse direction: the order (if any) whose reordering equals this
/// distribution's map. Always exists for block/cyclic combinations on a
/// 3-level hierarchy; plane sizes not matching a level boundary have none.
std::optional<Order> equivalent_order(const Hierarchy& h, const Distribution& d);

}  // namespace mr::slurm
