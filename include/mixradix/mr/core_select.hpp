// Second use case (§3.4): selecting cores for jobs that do not use every
// core of a node — Algorithm 3 of the paper, which generates the explicit
// core list for Slurm's --cpu-bind=map_cpu:<list> and thereby extends
// --distribution to every hierarchy level (NUMA, L3, fake levels, ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mixradix/mr/hierarchy.hpp"
#include "mixradix/mr/permutation.hpp"

namespace mr {

/// Algorithm 3: the list `l` of physical core IDs such that the process
/// with node-local rank r binds to core l[r]. `h` is the hierarchy of ONE
/// compute node, `n` the number of cores to use per node (1 <= n <= total).
std::vector<std::int64_t> select_cores(const Hierarchy& h, const Order& order,
                                       std::int64_t n);

/// Render a selection as the Slurm option value "map_cpu:0,8,16,...".
std::string map_cpu_string(const std::vector<std::int64_t>& cores);

/// The selected cores in ascending ID order (the *set*, ignoring rank
/// assignment). Orders producing equal sets differ only in rank mapping —
/// the color groups of Fig. 9.
std::vector<std::int64_t> sorted_core_set(std::vector<std::int64_t> cores);

/// Compact "0-3,8-11,64-67" rendering of a sorted core set, as printed
/// next to the bars of Fig. 9.
std::string core_set_ranges(const std::vector<std::int64_t>& sorted_cores);

/// Effective hierarchy formed by a selected core set (§3.4: picking both
/// first sockets of ⟦2,2,4⟧ yields ⟦2,4⟧). Defined only when the set is
/// "rectangular" — a cartesian product of per-level coordinate subsets —
/// otherwise std::nullopt. Levels contributing a single coordinate are
/// dropped; a fully-selected machine returns `h` itself.
std::optional<Hierarchy> selected_hierarchy(const Hierarchy& h,
                                            const std::vector<std::int64_t>& sorted_cores);

/// One order's selection outcome, used to enumerate Fig. 9 configurations.
struct SelectionOutcome {
  Order order;
  std::vector<std::int64_t> core_list;  ///< rank -> core id (Algorithm 3).
  std::vector<std::int64_t> core_set;   ///< ascending ids.
};

/// Evaluate every order of `h` for `n` cores and drop duplicates that give
/// the *identical rank->core list* (they are indistinguishable even at the
/// MPI level). Outcomes are grouped by core set: outcomes sharing a set are
/// adjacent, and groups appear in order of first discovery — matching how
/// Fig. 9 clusters bars by color.
std::vector<SelectionOutcome> enumerate_selections(const Hierarchy& h,
                                                   std::int64_t n);

}  // namespace mr
