// Mapping metrics from §3.3 of the paper: the ring cost and the
// percentages of process pairs per level.
//
// Both metrics characterise how one subcommunicator lands on the machine
// under a given enumeration order, without running anything:
//  * ring cost — cost of the chain rank0 -> rank1 -> ... -> rank_{p-1},
//    where a hop inside the lowest level costs 1 and each additional
//    hierarchy level crossed adds 1. Low = ranks assigned sequentially
//    (locality in ring-like algorithms); high = round-robin assignment.
//  * pairs per level — for every unordered pair of comm members, the
//    innermost hierarchy level whose component contains both; reported as
//    percentages from the lowest level to the outermost. High percentages
//    at low levels = packed mapping; at the outermost level = spread.
//
// The figure legends of the paper (e.g. "0-1-2-3 (60 - 0.0, 0.0, 0.0,
// 100.0)") are exactly these two metrics and serve as golden values in the
// test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mixradix/mr/decompose.hpp"
#include "mixradix/mr/hierarchy.hpp"
#include "mixradix/mr/permutation.hpp"

namespace mr {

/// Communication cost between two cores identified by coordinates: 1 if
/// they share the lowest-level component, +1 per extra level crossed
/// (depth - first-differing-level). Cost 0 iff same core.
int hop_cost(const Hierarchy& h, const Coords& a, const Coords& b);

/// Index of the innermost level whose component contains both cores:
/// depth-1 if they share the lowest-level component, 0 if they only share
/// the machine (differ already at the outermost level). Precondition: a != b.
int innermost_common_level(const Hierarchy& h, const Coords& a, const Coords& b);

/// Ring cost of a communicator whose member i runs on the core with
/// coordinates `members[i]` (comm-rank order; no wrap-around hop).
std::int64_t ring_cost(const Hierarchy& h, const std::vector<Coords>& members);

/// Percentages of process pairs per level, from LOWEST level to OUTERMOST
/// (the order used in the paper's legends). Size = h.depth(); sums to 100.
std::vector<double> pair_percentages(const Hierarchy& h,
                                     const std::vector<Coords>& members);

/// Coordinates of the cores hosting subcommunicator `comm_index` when
/// world ranks are reordered under `order` and split into consecutive
/// blocks of `comm_size` reordered ranks (§3.2's quotient coloring).
/// Element j is the core of comm-rank j.
///
/// Note: §4.1 of the paper writes the split color as "reordered_rank %
/// subcomm_size"; that conflicts with §3.2 ("quotient of the division")
/// and with Fig. 2's coloring, so we follow the quotient definition.
std::vector<Coords> subcommunicator_coords(const Hierarchy& h, const Order& order,
                                           std::int64_t comm_index,
                                           std::int64_t comm_size);

/// Ring cost + pair percentages of one order, computed on the first
/// subcommunicator — the tuple printed in the paper's figure legends.
struct OrderCharacter {
  Order order;
  std::int64_t ring_cost = 0;
  std::vector<double> pair_pct;  ///< lowest level -> outermost.

  /// Legend rendering: "1-3-2-0 (45 - 46.7, 0.0, 53.3, 0.0)".
  std::string to_string() const;
};

OrderCharacter characterize_order(const Hierarchy& h, const Order& order,
                                  std::int64_t comm_size);

/// Characterize a batch of orders (e.g. all h! of them), chunked across
/// the shared thread pool. Element i describes orders[i], independent of
/// the thread count. `threads`: 0 = util::ThreadPool::default_threads(),
/// 1 = serial in-thread, N = at most N concurrent workers.
std::vector<OrderCharacter> characterize_orders(const Hierarchy& h,
                                                const std::vector<Order>& orders,
                                                std::int64_t comm_size,
                                                int threads = 0);

/// Scalar "spreadness" in [0, 1]: expected fraction of levels crossed per
/// pair (0 = fully packed, 1 = every pair crosses every level). Handy for
/// sorting orders in exploration tools.
double spreadness(const Hierarchy& h, const std::vector<Coords>& members);

}  // namespace mr
