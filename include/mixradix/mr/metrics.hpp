// Mapping metrics from §3.3 of the paper: the ring cost and the
// percentages of process pairs per level.
//
// Both metrics characterise how one subcommunicator lands on the machine
// under a given enumeration order, without running anything:
//  * ring cost — cost of the chain rank0 -> rank1 -> ... -> rank_{p-1},
//    where a hop inside the lowest level costs 1 and each additional
//    hierarchy level crossed adds 1. Low = ranks assigned sequentially
//    (locality in ring-like algorithms); high = round-robin assignment.
//  * pairs per level — for every unordered pair of comm members, the
//    innermost hierarchy level whose component contains both; reported as
//    percentages from the lowest level to the outermost. High percentages
//    at low levels = packed mapping; at the outermost level = spread.
//
// The figure legends of the paper (e.g. "0-1-2-3 (60 - 0.0, 0.0, 0.0,
// 100.0)") are exactly these two metrics and serve as golden values in the
// test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mixradix/mr/decompose.hpp"
#include "mixradix/mr/hierarchy.hpp"
#include "mixradix/mr/permutation.hpp"

namespace mr {

class Engine;  // mixradix/engine/engine.hpp

/// Which metric kernels to run. Fast kernels exploit that a
/// subcommunicator is a CONTIGUOUS block of new ranks in the permuted
/// mixed-radix space, so both metrics are combinatorial functions of
/// (radices, order, comm size): ring cost is an O(h) carry-counting sum
/// and pair percentages an O(h^2) digit DP — no placement vector, no
/// O(s^2) pair scan. Reference kernels walk the materialised placement;
/// they are the ground truth for differential tests (the same pattern as
/// simmpi::ExecOptions::reference). Both produce bit-identical results.
enum class MetricsImpl {
  Fast,       ///< closed-form kernels (default).
  Reference,  ///< brute-force O(s^2 h) kernels over explicit coordinates.
};

/// Communication cost between two cores identified by coordinates: 1 if
/// they share the lowest-level component, +1 per extra level crossed
/// (depth - first-differing-level). Cost 0 iff same core.
int hop_cost(const Hierarchy& h, const Coords& a, const Coords& b);

/// Index of the innermost level whose component contains both cores:
/// depth-1 if they share the lowest-level component, 0 if they only share
/// the machine (differ already at the outermost level). Precondition: a != b.
int innermost_common_level(const Hierarchy& h, const Coords& a, const Coords& b);

/// Ring cost of a communicator whose member i runs on the core with
/// coordinates `members[i]` (comm-rank order; no wrap-around hop).
/// A singleton communicator has no hops: cost 0.
std::int64_t ring_cost(const Hierarchy& h, const std::vector<Coords>& members);

/// Percentages of process pairs per level, from LOWEST level to OUTERMOST
/// (the order used in the paper's legends). Size = h.depth(); sums to 100.
/// A singleton communicator has no pairs: the result is empty.
std::vector<double> pair_percentages(const Hierarchy& h,
                                     const std::vector<Coords>& members);

/// Closed-form ring cost of the FIRST subcommunicator (comm-ranks 0..s-1
/// under `order`), equal to ring_cost() over subcommunicator_coords(...,0,s)
/// but computed in O(h) without materialising any placement. Derivation:
/// consecutive new ranks differ by a mixed-radix increment in the permuted
/// base; an increment whose k fastest permuted digits roll over changes
/// exactly the levels {order[0..k]}, so it costs depth - min(order[0..k]),
/// and the number of increments with at least k carries among the s-1 hops
/// is floor((s-1) / prod(radix(order[0..k-1]))).
std::int64_t ring_cost_closed_form(const Hierarchy& h, const Order& order,
                                   std::int64_t comm_size);

/// Closed-form pair percentages of the first subcommunicator, equal to
/// pair_percentages() over subcommunicator_coords(..., 0, s) but computed
/// in O(h^2) via a digit DP over the permuted radices instead of the
/// O(s^2) pair scan: the number of pairs whose first-differing level is L
/// is agree(levels < L) - agree(levels <= L), where agree(T) counts pairs
/// in [0, s) with equal digits at every level in T — a 3-state
/// (tight/tight, tight/free, free/free) bounded-counting DP.
std::vector<double> pair_percentages_closed_form(const Hierarchy& h,
                                                 const Order& order,
                                                 std::int64_t comm_size);

/// Coordinates of the cores hosting subcommunicator `comm_index` when
/// world ranks are reordered under `order` and split into consecutive
/// blocks of `comm_size` reordered ranks (§3.2's quotient coloring).
/// Element j is the core of comm-rank j.
///
/// Note: §4.1 of the paper writes the split color as "reordered_rank %
/// subcomm_size"; that conflicts with §3.2 ("quotient of the division")
/// and with Fig. 2's coloring, so we follow the quotient definition.
std::vector<Coords> subcommunicator_coords(const Hierarchy& h, const Order& order,
                                           std::int64_t comm_index,
                                           std::int64_t comm_size);

/// Ring cost + pair percentages of one order, computed on the first
/// subcommunicator — the tuple printed in the paper's figure legends.
struct OrderCharacter {
  Order order;
  std::int64_t ring_cost = 0;
  std::vector<double> pair_pct;  ///< lowest level -> outermost.

  /// Legend rendering: "1-3-2-0 (45 - 46.7, 0.0, 53.3, 0.0)"; a
  /// singleton communicator (empty pair_pct) renders as "1-3-2-0 (0)".
  std::string to_string() const;
};

/// Both implementations produce bit-identical characters (enforced by the
/// property tests and bench/enum_scaling); Fast is O(h^2) per order,
/// Reference materialises the placement and scans all pairs.
OrderCharacter characterize_order(const Hierarchy& h, const Order& order,
                                  std::int64_t comm_size,
                                  MetricsImpl impl = MetricsImpl::Fast);

/// Characterize a batch of orders (e.g. all h! of them), chunked across
/// the engine's thread pool. Element i describes orders[i], independent of
/// the thread count. `threads`: 0 = util::ThreadPool::default_threads(),
/// 1 = serial in-thread (the pool is never touched), N = at most N
/// concurrent workers.
std::vector<OrderCharacter> characterize_orders(Engine& engine,
                                                const Hierarchy& h,
                                                const std::vector<Order>& orders,
                                                std::int64_t comm_size,
                                                int threads = 0,
                                                MetricsImpl impl = MetricsImpl::Fast);
/// Backward-compat shim: characterize_orders through Engine::shared().
std::vector<OrderCharacter> characterize_orders(const Hierarchy& h,
                                                const std::vector<Order>& orders,
                                                std::int64_t comm_size,
                                                int threads = 0,
                                                MetricsImpl impl = MetricsImpl::Fast);

/// Scalar "spreadness" in [0, 1]: expected fraction of levels crossed per
/// pair (0 = fully packed, 1 = every pair crosses every level). Handy for
/// sorting orders in exploration tools.
double spreadness(const Hierarchy& h, const std::vector<Coords>& members);

}  // namespace mr
