// Hierarchy: the mixed-radix base describing a machine's nesting structure.
//
// A hierarchy ⟦h0, h1, ..., h_{d-1}⟧ (paper notation J...K) lists, from the
// outermost level inward, how many sub-components each component contains:
// e.g. ⟦2, 2, 4⟧ is 2 nodes x 2 sockets x 4 cores (Fig. 1 of the paper).
// The product of all radices is the total number of leaf resources and must
// equal the number of MPI processes when used for rank reordering (§3.2
// constraint 1); heterogeneous machines are rejected by construction
// (constraint 2) because a single radix vector cannot describe them.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mr {

/// Immutable radix vector with level names. Index 0 is the OUTERMOST level
/// (nodes), index depth()-1 the innermost (cores), matching the paper.
class Hierarchy {
 public:
  /// Construct from radices; every radix must be >= 2 (a strictly
  /// greater-than-1 base is required for the decomposition to be unique).
  /// Level names default to "level0", "level1", ...
  explicit Hierarchy(std::vector<int> radices,
                     std::vector<std::string> level_names = {});
  Hierarchy(std::initializer_list<int> radices)
      : Hierarchy(std::vector<int>(radices)) {}

  /// Parse "2:2:4", "2,2,4", "2x2x4", or the paper's "[2, 2, 4]" forms.
  static Hierarchy parse(std::string_view text);

  /// Number of levels (|h| in the paper).
  int depth() const noexcept { return static_cast<int>(radices_.size()); }

  /// Total number of leaf resources: the product of all radices.
  std::int64_t total() const noexcept { return total_; }

  /// Radix of `level` (0 = outermost).
  int radix(int level) const;
  int operator[](int level) const { return radix(level); }

  const std::vector<int>& radices() const noexcept { return radices_; }
  const std::vector<std::string>& level_names() const noexcept { return names_; }
  const std::string& level_name(int level) const;

  /// Number of leaves under ONE component at `level` (product of radices
  /// strictly below it). level == depth() is allowed and yields 1.
  std::int64_t leaves_below(int level) const;

  /// Number of components existing at `level` across the whole machine:
  /// the product of radices [0, level]. E.g. for ⟦2,2,4⟧, components_at(0)
  /// is 2 nodes, components_at(1) is 4 sockets, components_at(2) is 16 cores.
  std::int64_t components_at(int level) const;

  /// New hierarchy whose radices are this one's reordered by `order`:
  /// result[i] = radix(order[i]). Used for the "permuted hierarchy" column
  /// of Table 1. `order` must be a permutation of [0, depth()).
  Hierarchy permuted(const std::vector<int>& order) const;

  /// Split `level` (of radix r) into two nested levels ⟦outer, r/outer⟧ —
  /// the paper's "fake level" trick (§3.2): a 16-core socket faked as
  /// 2 groups of 8 explores more orders. `outer` must divide the radix.
  Hierarchy with_split_level(int level, int outer,
                             std::string_view outer_name = {}) const;

  /// Prepend network levels outside the node level (§3.2), e.g. switches.
  Hierarchy with_prefix_levels(const std::vector<int>& radices,
                               std::vector<std::string> names = {}) const;

  /// Keep only levels [first, depth()): e.g. the intra-node sub-hierarchy.
  Hierarchy suffix(int first) const;

  /// Paper-style rendering: "[2, 2, 4]".
  std::string to_string() const;

  /// Equality is structural: two hierarchies are equal iff their radix
  /// vectors match. Level names are documentation, not identity.
  friend bool operator==(const Hierarchy& a, const Hierarchy& b) {
    return a.radices_ == b.radices_;
  }

 private:
  std::vector<int> radices_;
  std::vector<std::string> names_;
  std::int64_t total_ = 1;
};

/// §3.2 constraint check for using `h` to reorder `nprocs` ranks: the
/// product of radices must equal the process count. Returns a diagnostic
/// string on failure, std::nullopt when valid.
std::optional<std::string> validate_for_nprocs(const Hierarchy& h,
                                               std::int64_t nprocs);

}  // namespace mr
