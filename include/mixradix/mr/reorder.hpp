// First use case (§3.2): reordering the ranks of MPI_COMM_WORLD.
//
// Two deployment methods are modelled, matching the paper:
//  1. MPI_Comm_split with the reordered rank as key (application opts in and
//     uses the new communicator) — split_key()/split_color() compute the
//     arguments;
//  2. a rankfile consumed by the launcher (transparent to the application) —
//     rankfile() emits Open MPI rankfile syntax.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mixradix/mr/decompose.hpp"
#include "mixradix/mr/hierarchy.hpp"
#include "mixradix/mr/permutation.hpp"

namespace mr {

/// A reordering of a world of h.total() ranks under a level permutation.
class ReorderPlan {
 public:
  ReorderPlan(Hierarchy hierarchy, Order order);

  const Hierarchy& hierarchy() const noexcept { return hierarchy_; }
  const Order& order() const noexcept { return order_; }

  /// New rank of `old_rank` (Algorithms 1 + 2).
  std::int64_t new_rank(std::int64_t old_rank) const;

  /// Original core/rank that carries `new_rank` after reordering.
  std::int64_t placement(std::int64_t new_rank) const;

  /// Arguments to MPI_Comm_split that realise the reordering on
  /// MPI_COMM_WORLD: every process passes color 0 and its reordered rank
  /// as the key.
  int split_color() const noexcept { return 0; }
  std::int64_t split_key(std::int64_t old_rank) const { return new_rank(old_rank); }

  /// Color for the second split that carves consecutive blocks of
  /// `comm_size` reordered ranks into subcommunicators (§3.2).
  std::int64_t subcomm_color(std::int64_t old_rank, std::int64_t comm_size) const;

  /// Rank within its subcommunicator after both splits.
  std::int64_t subcomm_rank(std::int64_t old_rank, std::int64_t comm_size) const;

  /// The full forward map: result[old_rank] = new_rank.
  const std::vector<std::int64_t>& forward_map() const noexcept { return forward_; }

  /// Open MPI rankfile: "rank R=+nK slot=C" lines placing each reordered
  /// rank R on node K, core C. The node level is hierarchy level 0; cores
  /// per node = leaves below level 1.
  std::string rankfile() const;

 private:
  Hierarchy hierarchy_;
  Order order_;
  std::vector<std::int64_t> forward_;
  std::vector<std::int64_t> placement_;
};

}  // namespace mr
