// Order equivalence (§3.3): different orders can yield the same — or a
// performance-equivalent — mapping of subcommunicators, so evaluating all
// h! orders is redundant. E.g. on ⟦2,2,4⟧, orders [2,0,1] and [2,1,0] only
// swap which socket hosts which communicator; absent inter-communicator
// traffic they perform identically. Orders [0,1,2] and [1,0,2] place
// communicators on the same cores but number the ranks inside differently,
// which can matter for rank-order-sensitive collectives.
//
// We expose three granularities of "the same":
//  * ExactPlacement          — identical rank->core map (trivially equal);
//  * SameSetsAndInternal     — the multiset of (core sequence per comm) is
//                              equal, i.e. communicators may be exchanged
//                              but each keeps its internal rank order;
//  * SameSetsOnly            — the multiset of core *sets* is equal; the
//                              internal order may differ (the paper's
//                              "similar" orders, distinguishable by ring
//                              cost but not by pair percentages).
#pragma once

#include <cstdint>
#include <vector>

#include "mixradix/mr/hierarchy.hpp"
#include "mixradix/mr/metrics.hpp"
#include "mixradix/mr/permutation.hpp"

namespace mr {

class Engine;  // mixradix/engine/engine.hpp

enum class Equivalence {
  ExactPlacement,
  SameSetsAndInternal,
  SameSetsOnly,
};

/// One equivalence class of orders for a fixed (hierarchy, comm size).
struct OrderClass {
  std::vector<Order> members;     ///< lexicographically first is the representative.
  OrderCharacter representative;  ///< metrics of members.front().
};

/// Kernel counters of one classification run, reported by the enumeration
/// benches (bench::print_kernel_counters). The hashed fast path hashes one
/// 128-bit signature per order and then proves every hash group sound by
/// comparing real signatures (collision_checks); hash_collisions counts
/// groups that had to be split because distinct signatures shared a hash —
/// expected to be 0, but handled correctly if it ever happens.
struct ClassifyStats {
  std::int64_t orders = 0;            ///< orders classified (= h!).
  std::int64_t classes = 0;           ///< equivalence classes found.
  std::int64_t signatures_hashed = 0; ///< pass-1 hashes (0 on the map path).
  std::int64_t collision_checks = 0;  ///< real-signature comparisons in pass 2.
  std::int64_t hash_collisions = 0;   ///< groups split on a real mismatch.
};

/// Partition all h.depth()! orders into equivalence classes at the given
/// granularity. Classes are sorted by their representative order.
/// Signature computation fans out over the engine's thread pool;
/// `threads`: 0 = util::ThreadPool::default_threads(), 1 = serial
/// in-thread (the pool is never touched), N = at most N concurrent
/// workers. The classification is identical for every thread count and
/// every engine, and the run's counters are rolled into Engine::Stats.
///
/// `impl` selects the grouping machinery (byte-identical results either
/// way): MetricsImpl::Fast groups by a 128-bit signature hash computed
/// into per-slot flat buffers scoped to the call, verifies each group
/// against the real signatures, and characterizes representatives with the
/// closed-form kernels; MetricsImpl::Reference is the original
/// map-of-placement-vectors classifier kept as the differential baseline.
std::vector<OrderClass> classify_orders(Engine& engine, const Hierarchy& h,
                                        std::int64_t comm_size,
                                        Equivalence granularity, int threads = 0,
                                        MetricsImpl impl = MetricsImpl::Fast,
                                        ClassifyStats* stats = nullptr);
/// Backward-compat shim: classify_orders through Engine::shared().
std::vector<OrderClass> classify_orders(const Hierarchy& h, std::int64_t comm_size,
                                        Equivalence granularity, int threads = 0,
                                        MetricsImpl impl = MetricsImpl::Fast,
                                        ClassifyStats* stats = nullptr);

/// Representatives only — the reduced set of orders worth benchmarking.
std::vector<Order> distinct_orders(Engine& engine, const Hierarchy& h,
                                   std::int64_t comm_size,
                                   Equivalence granularity, int threads = 0,
                                   MetricsImpl impl = MetricsImpl::Fast);
/// Backward-compat shim: distinct_orders through Engine::shared().
std::vector<Order> distinct_orders(const Hierarchy& h, std::int64_t comm_size,
                                   Equivalence granularity, int threads = 0,
                                   MetricsImpl impl = MetricsImpl::Fast);

/// Merge an ExactPlacement classification into a coarser granularity by
/// re-signing ONE representative per exact class (orders in an exact class
/// share a placement, hence every coarser signature). Equal to
/// classify_orders(h, comm_size, granularity) but with exact.size()
/// signature computations instead of h! — the cheap path for tools that
/// already hold the exact partition and want the coarser views too
/// (explore_orders). Characters are reused from the exact classes, never
/// recomputed. Precondition: `exact` is a classify_orders(...,
/// ExactPlacement, ...) result for the same (h, comm_size).
std::vector<OrderClass> coarsen_classes(const Hierarchy& h,
                                        std::int64_t comm_size,
                                        const std::vector<OrderClass>& exact,
                                        Equivalence granularity);

}  // namespace mr
