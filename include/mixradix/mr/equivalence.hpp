// Order equivalence (§3.3): different orders can yield the same — or a
// performance-equivalent — mapping of subcommunicators, so evaluating all
// h! orders is redundant. E.g. on ⟦2,2,4⟧, orders [2,0,1] and [2,1,0] only
// swap which socket hosts which communicator; absent inter-communicator
// traffic they perform identically. Orders [0,1,2] and [1,0,2] place
// communicators on the same cores but number the ranks inside differently,
// which can matter for rank-order-sensitive collectives.
//
// We expose three granularities of "the same":
//  * ExactPlacement          — identical rank->core map (trivially equal);
//  * SameSetsAndInternal     — the multiset of (core sequence per comm) is
//                              equal, i.e. communicators may be exchanged
//                              but each keeps its internal rank order;
//  * SameSetsOnly            — the multiset of core *sets* is equal; the
//                              internal order may differ (the paper's
//                              "similar" orders, distinguishable by ring
//                              cost but not by pair percentages).
#pragma once

#include <cstdint>
#include <vector>

#include "mixradix/mr/hierarchy.hpp"
#include "mixradix/mr/metrics.hpp"
#include "mixradix/mr/permutation.hpp"

namespace mr {

enum class Equivalence {
  ExactPlacement,
  SameSetsAndInternal,
  SameSetsOnly,
};

/// One equivalence class of orders for a fixed (hierarchy, comm size).
struct OrderClass {
  std::vector<Order> members;     ///< lexicographically first is the representative.
  OrderCharacter representative;  ///< metrics of members.front().
};

/// Partition all h.depth()! orders into equivalence classes at the given
/// granularity. Classes are sorted by their representative order.
/// Signature computation is chunked across the shared thread pool;
/// `threads`: 0 = util::ThreadPool::default_threads(), 1 = serial
/// in-thread, N = at most N concurrent workers. The classification is
/// identical for every thread count.
std::vector<OrderClass> classify_orders(const Hierarchy& h, std::int64_t comm_size,
                                        Equivalence granularity, int threads = 0);

/// Representatives only — the reduced set of orders worth benchmarking.
std::vector<Order> distinct_orders(const Hierarchy& h, std::int64_t comm_size,
                                   Equivalence granularity, int threads = 0);

}  // namespace mr
