// Mixed-radix decomposition and recomposition of ranks — Algorithms 1 and 2
// of the paper (Equations (1) and (2)).
//
// decompose() turns a rank into per-level coordinates; for rank 10 on
// ⟦2, 2, 4⟧ the result is [1, 0, 2]: node 1, socket 0, core 2. compose()
// rebuilds a rank from coordinates under a level permutation σ, which is
// the whole reordering trick: enumerating the levels in a different order
// renumbers every core.
#pragma once

#include <cstdint>
#include <vector>

#include "mixradix/mr/hierarchy.hpp"

namespace mr {

/// Per-level coordinates of a rank. coords[i] is the index within level i,
/// with i = 0 the outermost level (same orientation as Hierarchy).
using Coords = std::vector<int>;

/// Identity order [0, 1, ..., d-1].
std::vector<int> identity_order(int depth);

/// The order that makes compose() invert decompose(): [d-1, ..., 1, 0].
/// (The paper notes Algorithm 2 with [2,1,0] is the inverse of Algorithm 1
/// for a 3-level hierarchy.)
std::vector<int> inverse_of_decompose_order(int depth);

/// Algorithm 1: rank -> coordinates. `rank` must lie in [0, h.total()).
Coords decompose(const Hierarchy& h, std::int64_t rank);

/// Algorithm 2 / Equation (2): coordinates + permutation -> new rank.
///   r = c[σ(0)] + Σ_{i>=1} c[σ(i)] · Π_{j<i} h[σ(j)]
/// `order` must be a permutation of [0, h.depth()).
std::int64_t compose(const Hierarchy& h, const Coords& coords,
                     const std::vector<int>& order);

/// compose() with the natural order that undoes decompose().
std::int64_t compose(const Hierarchy& h, const Coords& coords);

/// One-call reordering of a single rank: decompose then compose under
/// `order`. This is "ComputeNewRank" used by Algorithm 3.
std::int64_t reorder_rank(const Hierarchy& h, std::int64_t rank,
                          const std::vector<int>& order);

/// Apply reorder_rank to every rank: result[old_rank] = new_rank.
/// The result is always a permutation of [0, h.total()).
std::vector<std::int64_t> reorder_all_ranks(const Hierarchy& h,
                                            const std::vector<int>& order);

/// Inverse mapping: result[new_rank] = old_rank (i.e. which original core
/// carries each reordered rank). Useful to draw Fig. 2-style layouts.
std::vector<std::int64_t> placement_of_new_ranks(const Hierarchy& h,
                                                 const std::vector<int>& order);

}  // namespace mr
