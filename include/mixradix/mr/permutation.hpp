// Generation and manipulation of level permutations ("orders").
//
// The paper enumerates all h! orders of a depth-h hierarchy with Heap's
// algorithm [Heap 1963] and Python's itertools.permutations(); we provide
// both (Heap's order and lexicographic order) plus parsing/printing of the
// paper's "1-3-2-0" notation.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace mr {

using Order = std::vector<int>;

/// Parse "1-3-2-0", "1,3,2,0" or "[1, 3, 2, 0]" into an order; validates
/// that it is a permutation of [0, n).
Order parse_order(std::string_view text);

/// The paper's rendering: "1-3-2-0".
std::string order_to_string(const Order& order);

/// True iff `order` is a permutation of [0, n).
bool is_permutation_of_iota(const Order& order);

/// Inverse permutation: inverse[order[i]] = i.
Order inverse_order(const Order& order);

/// Compose permutations: result[i] = a[b[i]] (apply b, then a).
Order compose_orders(const Order& a, const Order& b);

/// All n! permutations of [0, n) in lexicographic order (the
/// itertools.permutations() order used by the paper's companion scripts).
std::vector<Order> all_orders_lexicographic(int n);

/// The `index`-th permutation of [0, n) in lexicographic order (the
/// factorial number system unranking), without materialising the other
/// n! - 1: all_orders_lexicographic(n)[index] == nth_order_lexicographic(n,
/// index). Lets shards of the order space be enumerated independently
/// (e.g. chunked benches or distributed classification). `index` must lie
/// in [0, n!).
Order nth_order_lexicographic(int n, long long index);

/// Lexicographic rank of a permutation — the inverse of
/// nth_order_lexicographic: order_index_lexicographic(
/// nth_order_lexicographic(n, i)) == i. Lets a consumer holding an Order
/// locate it in a sharded enumeration stream (mrenum `orders --shard i/n`,
/// mr::tune's candidate partitioning) without materialising the stream.
long long order_index_lexicographic(const Order& order);

/// All n! permutations in the order produced by Heap's algorithm [8].
std::vector<Order> all_orders_heap(int n);

/// Visit each permutation without materialising the full list; stops early
/// if the visitor returns false. Lexicographic order.
void for_each_order(int n, const std::function<bool(const Order&)>& visit);

/// n! as a 64-bit value; throws for n > 20.
long long factorial(int n);

}  // namespace mr
