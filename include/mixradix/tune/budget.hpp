// Anytime-search budgets for the mapping autotuner (mixradix/tune/search.hpp).
//
// The funnel's expensive resource is a *point simulation* — one
// TimedExecutor run of (candidate order, query point). A Budget caps how
// many of those the search may spend (and, optionally, how long it may run
// in wall-clock seconds); the search charges the meter between waves and
// returns the best-so-far ranking with `TuneStats::exhausted == false` when
// either cap trips.
//
// Point budgets are deterministic: the same query with the same max_points
// truncates at exactly the same candidate regardless of the thread count
// (enforced by the budget-truncation determinism test). Wall-clock budgets
// are inherently machine-dependent and exist for interactive use; anything
// that must reproduce byte-identically should cap points, not seconds.
#pragma once

#include <chrono>
#include <cstdint>

namespace mr::tune {

struct Budget {
  /// Point simulations the search may run; 0 = unlimited.
  std::int64_t max_points = 0;
  /// Wall-clock cap in seconds, checked between waves; 0 = unlimited.
  /// Non-deterministic by nature — see the header comment.
  double max_seconds = 0;

  bool unlimited() const { return max_points <= 0 && max_seconds <= 0; }
};

/// Running meter over one search: charge() after each simulated wave,
/// exhausted() before starting the next.
class BudgetMeter {
 public:
  explicit BudgetMeter(const Budget& budget)
      : budget_(budget), start_(std::chrono::steady_clock::now()) {}

  void charge(std::int64_t points) { used_ += points; }
  std::int64_t points_used() const { return used_; }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// True once either cap is reached. With a point cap, how many MORE
  /// candidates fit is what matters — see remaining_points().
  bool exhausted() const {
    if (budget_.max_points > 0 && used_ >= budget_.max_points) return true;
    if (budget_.max_seconds > 0 && elapsed_seconds() >= budget_.max_seconds) {
      return true;
    }
    return false;
  }

  /// Point simulations still affordable; INT64_MAX when uncapped.
  std::int64_t remaining_points() const {
    if (budget_.max_points <= 0) return INT64_MAX;
    return budget_.max_points > used_ ? budget_.max_points - used_ : 0;
  }

 private:
  Budget budget_;
  std::int64_t used_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mr::tune
