// Rendering of TuneReports: a human-readable ranking table and a
// machine-readable JSON document (mrtune --json, BENCH_tune.json inputs,
// the byte-identity oracle of the determinism tests).
//
// write_json is canonical: doubles are printed with max_digits10 so equal
// doubles render equally, and wall-clock fields are excluded — two
// searches that took different real time but did the same work produce the
// SAME bytes. to_string targets humans and does include the elapsed time.
#pragma once

#include <iosfwd>
#include <string>

#include "mixradix/tune/search.hpp"

namespace mr::tune {

/// Human-readable digest: query echo, top-k table (score, bandwidth,
/// metrics, class size, bound), funnel statistics.
std::string to_string(const TuneReport& report);

/// Canonical JSON document (see header comment). `candidates: true` embeds
/// the full per-candidate provenance table; false keeps only the top-k and
/// statistics (the CLI default for big order spaces).
void write_json(std::ostream& os, const TuneReport& report,
                bool candidates = true);

}  // namespace mr::tune
