// mr::tune — the mapping autotuner: "give me the best k enumeration orders
// for this workload, fast".
//
// The paper's order permutation shrinks the n! mapping space to h!, but h!
// still explodes at depth 7-8 (5040-40320 orders) and the sweep benches
// simulate all of them exhaustively. Process-mapping literature treats
// mapping as a search problem with pruning; this subsystem composes the
// library's existing ingredients into a multi-fidelity funnel over the h!
// orders:
//
//  * stage 0 — closed-form metric screening: every candidate is
//    characterized with the O(h^2) ring-cost / pair-percentage kernels (no
//    simulation); an optional `screen_keep` cap drops the heuristically
//    worst candidates (forfeiting exactness — off by default).
//  * stage 1 — equivalence-class dedup: only one representative per class
//    of orders PROVEN to simulate byte-identically is ever considered.
//    Single-comm queries group by the first subcommunicator's core
//    sequence (the only thing the simulation sees); all-comms queries use
//    the hashed SameSetsAndInternal classifier, intersected across comm
//    sizes — sound because exact max-min timing (completion slack 0, the
//    tuner's default) is invariant under communicator exchange. At slack
//    > 0 the engine's completion merging is job-order sensitive, so
//    all-comms dedup falls back to ExactPlacement.
//  * stage 2 — branch-and-bound pruning: candidates are sorted by the
//    static critical-path lower bound (verify::binding, admissible at the
//    simulated slack via Bound::for_slack); once a candidate's bound
//    strictly exceeds the current k-th best simulated score, it and every
//    candidate after it are discarded without running FlowSim. The strict
//    inequality keeps exact ties simulable, so the returned ranking equals
//    the exhaustive one even under lexicographic tie-breaking.
//  * stage 3 — full timed simulation of the survivors through the engine's
//    plan cache and per-slot workspaces leased from its pool, fanned over
//    its thread pool in FIXED-SIZE waves with deterministic in-order merge:
//    the set of simulated candidates and every byte of the report are
//    identical for any --threads=N and any engine (shared or private).
//
// The search is *anytime*: a point/seconds budget (mixradix/tune/budget.hpp)
// returns the best-so-far ranking with `exhausted: false`. The candidate
// stream is shardable (`shard_index`/`shard_count` partition the class list;
// order_index_lexicographic anchors orders in the stream) for future
// distributed runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mixradix/mr/equivalence.hpp"
#include "mixradix/mr/metrics.hpp"
#include "mixradix/mr/permutation.hpp"
#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/topo/machine.hpp"
#include "mixradix/tune/budget.hpp"

namespace mr {
class Engine;  // mixradix/engine/engine.hpp
}  // namespace mr

namespace mr::tune {

/// §4.1's two experiment shapes: the collective in the first
/// subcommunicator only, or in all subcommunicators simultaneously.
enum class Concurrency { SingleComm, AllComms };

/// One cell of the workload: a collective at one communicator size and one
/// total payload. A query's points are the cross product of its
/// collectives x comm_sizes x total_bytes lists; the tuning objective is
/// the SUM over points of the simulated makespan.
struct QueryPoint {
  simmpi::Collective collective = simmpi::Collective::Alltoall;
  std::int64_t comm_size = 0;
  std::int64_t total_bytes = 0;

  std::string to_string() const;
};

struct TuneQuery {
  std::vector<simmpi::Collective> collectives = {simmpi::Collective::Alltoall};
  std::vector<std::int64_t> comm_sizes;            ///< each >= 2, divides cores.
  std::vector<std::int64_t> total_bytes = {8ll << 20};
  Concurrency concurrency = Concurrency::AllComms;
  int k = 3;               ///< orders to return.
  int repetitions = 2;     ///< back-to-back ops per point (steady state).
  /// Tuner default 0 (exact max-min timing): keeps the all-comms dedup at
  /// SameSetsAndInternal byte-identical and the lower bound undeflated.
  /// Matching a slack-merged sweep costs both (see the header comment).
  double completion_slack = 0.0;
  Budget budget;
  /// Worker threads (0 = ThreadPool::default_threads(), 1 = serial). The
  /// report is byte-identical for every value.
  int threads = 0;
  /// Candidates simulated per wave. The k-th best only updates between
  /// waves, so larger waves prune less; the value is part of the query —
  /// NOT derived from the thread count — to keep reports thread-invariant.
  int wave_size = 16;
  /// Stage-0 heuristic cap: keep only the `screen_keep` candidates with
  /// the lowest ring cost (packed first). 0 = keep all (exact search).
  std::int64_t screen_keep = 0;
  bool dedup = true;   ///< stage 1; off = every order its own candidate.
  bool prune = true;   ///< stage 2; off = simulate every candidate.
  bool use_plan_cache = true;  ///< resolve plans through the engine's cache.
  /// Serve stage-2 bounds through the engine's BoundCache: one payload-
  /// invariant structure per binding class, evaluated across the whole
  /// payload grid. Bit-identical bounds either way (the cached evaluate IS
  /// the uncached analysis); off = fresh analyze_jobs per candidate x point.
  bool use_bound_cache = true;
  /// Shard `shard_index` of `shard_count` over the candidate stream: after
  /// dedup, candidate i (in representative-lexicographic order) belongs to
  /// shard i % shard_count. Shards partition the candidates exactly.
  int shard_index = 0;
  int shard_count = 1;
};

/// Simulated outcome of one (candidate, point) cell.
struct PointResult {
  double makespan = 0;        ///< completion of the last communicator.
  double mean_bandwidth = 0;  ///< total_bytes / per-op seconds, comm mean.
};

/// How a candidate left the funnel (per-candidate provenance).
enum class Fate : std::int8_t {
  Simulated,  ///< stage 3 ran; `score` is the simulated objective.
  Pruned,     ///< stage 2: lower bound strictly above the k-th best score.
  Screened,   ///< stage 0: dropped by the screen_keep heuristic cap.
  Skipped,    ///< budget exhausted before this candidate was reached.
};
std::string_view fate_name(Fate fate);

/// One equivalence class of orders moving through the funnel. `members`
/// records the dedup provenance: every member order simulates
/// byte-identically to the representative, so the class's score speaks for
/// all of them.
struct TuneCandidate {
  Order order;                    ///< representative (lexicographic min).
  OrderCharacter character;       ///< stage-0 metrics (at comm_sizes[0]).
  std::vector<Order> members;     ///< the whole class, sorted.
  double lower_bound = 0;         ///< stage-2 bound, summed over points.
  double score = 0;               ///< sum of point makespans (Simulated only).
  std::vector<PointResult> points;  ///< per query point (Simulated only).
  Fate fate = Fate::Skipped;
  int wave = -1;                  ///< stage-3 wave index (Simulated only).
};

/// Search statistics — the funnel's accounting, and the numbers the
/// ≥5x-fewer-FlowSim-invocations claim is measured by.
struct TuneStats {
  std::int64_t orders = 0;        ///< h! orders in scope.
  std::int64_t classes = 0;       ///< candidates after stage-1 dedup.
  std::int64_t shard_classes = 0; ///< candidates owned by this shard.
  std::int64_t screened_out = 0;  ///< stage-0 heuristic drops.
  std::int64_t bounds_computed = 0;
  std::int64_t pruned = 0;        ///< stage-2 discards.
  std::int64_t simulated = 0;     ///< candidates that reached stage 3.
  std::int64_t sim_points = 0;    ///< FlowSim invocations actually run.
  /// FlowSim invocations exhaustive enumeration would have run
  /// (h! x points); sim_points vs this is the funnel's saving.
  std::int64_t exhaustive_points = 0;
  std::int64_t budget_skipped = 0;
  /// Stage-2 full analyses (route resolution + DP recording) vs cheap
  /// structure reuses (BoundCache evaluate). built + reuses ==
  /// bounds_computed x points; with the cache off every call is a build.
  /// Excluded from write_json: reuse counts depend on cache warmth across
  /// runs sharing an engine, and reports must stay byte-comparable.
  std::int64_t bound_structures_built = 0;
  std::int64_t bound_structure_reuses = 0;
  /// Candidates simulated as wave 0 from a previous report's ranking
  /// (incremental re-tune); 0 on a cold run. Deterministic, in write_json.
  std::int64_t seeded_candidates = 0;
  mr::ClassifyStats classify;     ///< stage-1 hashed-classifier counters.
  /// True iff the funnel ran to completion; false = budget truncation, the
  /// ranking is best-so-far (anytime semantics).
  bool exhausted = true;
  /// Wall clock of the whole search / of stage 2's bound computation.
  /// Excluded from write_json so reports stay byte-comparable across runs.
  double elapsed_seconds = 0;
  double bound_seconds = 0;
};

struct TuneReport {
  std::string machine;
  std::string hierarchy;             ///< paper rendering, e.g. "[2, 2, 4]".
  TuneQuery query;
  std::vector<QueryPoint> points;    ///< expanded cross product.
  /// Every candidate of this shard in funnel order (stage-2 bound
  /// ascending), with full per-candidate provenance.
  std::vector<TuneCandidate> candidates;
  /// Indices into `candidates`: the top-k simulated orders, ranked by
  /// (score, representative order) — exactly the exhaustive ranking when
  /// the search ran unscreened to exhaustion.
  std::vector<std::size_t> top;
  TuneStats stats;
};

/// Run the funnel through `engine`: plans from its cache, survivor
/// simulations on workspaces leased from its pool, stages fanned over its
/// thread pool, and the funnel's totals rolled into Engine::Stats. Throws
/// mr::invalid_argument on malformed queries (empty point lists, comm sizes
/// not dividing the core count, bad shard spec).
///
/// Incremental re-tune: when `previous` is a report whose query is
/// compatible with this one (same machine/hierarchy, same concurrency,
/// repetitions and completion slack, unsharded, and the previous point grid
/// is a SUBSET of the new one), the previous winners are re-simulated first
/// as wave 0, so branch-and-bound starts with k real incumbents and prunes
/// from the first wave. The top-k set and ranking are EXACTLY the cold
/// run's — seeds carry true new-grid scores and pruning keeps its strict
/// admissible cut — only the simulated-candidate count shrinks. An
/// incompatible or null `previous` degenerates to a cold run byte for byte.
TuneReport tune(Engine& engine, const topo::Machine& machine,
                const TuneQuery& query, const TuneReport* previous);
TuneReport tune(Engine& engine, const topo::Machine& machine,
                const TuneQuery& query);
/// Backward-compat shim: tune through Engine::shared().
TuneReport tune(const topo::Machine& machine, const TuneQuery& query);

/// Collective <-> name, for CLIs and reports: "alltoall", "allgather",
/// "allreduce", "bcast", "reduce", "reduce_scatter", "gather", "scatter",
/// "scan", "barrier". parse throws mr::invalid_argument on unknown names.
simmpi::Collective parse_collective(std::string_view name);
std::string_view collective_name(simmpi::Collective collective);

}  // namespace mr::tune
