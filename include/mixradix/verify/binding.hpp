// Static binding analysis: proves properties of a compiled Plan BOUND to a
// Machine through a rank->core mapping, without running the simulator.
//
// mr::verify::analyze(Schedule) proves machine-independent properties;
// topo_check.hpp lints the Machine itself. This header closes the loop on
// the third ingredient of every experiment — the binding — with three
// products per analysis:
//
//  * diagnostics — every send must resolve to a route the flow simulator
//    can carry (channel count within ChanSet's inline capacity, channel
//    ids inside the capacity table), no self-send may cross a channel,
//    bindings must be in range, and suspicious-but-legal shapes (two ranks
//    of one job sharing a core) are flagged as warnings;
//  * a load report — per-round and per-channel traffic (bytes, flow
//    count, serialization seconds, oversubscription ratios) with the
//    top-k congested channels named by level/component, the quantities
//    process-mapping papers rank mappings by;
//  * a critical-path lower bound — the longest chain through the
//    happens-before graph where each message contributes
//    max(path latency, bytes / bottleneck-channel capacity) and each round
//    its CPU serialisation, combined with a per-channel serialization
//    bound (all bytes crossing a channel must drain through its
//    capacity). Under exact max-min fairness (completion slack 0) the
//    bound NEVER exceeds the TimedExecutor's simulated makespan — a
//    standing oracle every current and future engine fast path is tested
//    against; Bound::for_slack deflates it for slack-merged runs.
//
// Soundness sketch (details in DESIGN.md §12): a flow's max-min rate never
// exceeds the capacity of any channel it crosses, so a message's transfer
// lasts at least bytes / min-capacity after a start that the
// happens-before edges delay at least as much as the DP's `ready` chain;
// and a channel's aggregate allocated rate never exceeds its capacity, so
// the last completion on it trails the first entry by at least
// total-bytes / capacity. Both arguments survive every engine fast path
// (interned routes, lazy deadline heap, workspace reuse) because those are
// bit-identical by construction.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mixradix/simmpi/plan.hpp"
#include "mixradix/simnet/flow_sim.hpp"
#include "mixradix/topo/machine.hpp"
#include "mixradix/verify/verify.hpp"

namespace mr::verify::binding {

/// Aggregated traffic of one simulator channel over the whole analysis
/// (all jobs, all repetitions).
struct ChannelLoad {
  simnet::ChannelId channel = -1;
  std::string name;   ///< "socket[3].egress", "numa[0].mem", ...
  std::int64_t bytes = 0;
  std::int64_t flows = 0;
  /// bytes / capacity: the time this channel alone needs to drain its
  /// share of the traffic.
  double serialization_seconds = 0;
  /// Max over rounds of (round bytes on this channel / capacity) divided
  /// by the round's slowest uncontended message — 1.0 means the channel
  /// is no more loaded than the round's natural straggler, k means
  /// contention stretches the round k-fold even under perfect sharing.
  double oversubscription = 0;
};

/// Traffic of one schedule round (round r = the r-th round of each rank's
/// program, for ONE repetition; repetitions repeat the pattern).
struct RoundLoad {
  std::int64_t round = 0;
  std::int64_t bytes = 0;          ///< network-crossing payload posted.
  std::int64_t flows = 0;          ///< messages that cross >= 1 channel.
  double max_oversubscription = 0; ///< over this round's channels.
  simnet::ChannelId hottest = -1;  ///< channel attaining the max, -1 = none.
  std::string hottest_name;
};

struct LoadReport {
  std::vector<RoundLoad> rounds;          ///< indexed by round number.
  std::vector<ChannelLoad> top_channels;  ///< top-k by serialization time.
  std::int64_t total_bytes = 0;  ///< network-crossing, all jobs and reps.
  std::int64_t self_bytes = 0;   ///< same-core payload (latency-only).
  std::int64_t total_flows = 0;  ///< network-crossing messages, all reps.
};

/// The static lower bound and its ingredients.
struct Bound {
  /// max(critical_path, channel_serialization); sound for completion
  /// slack 0 in both engine modes.
  double lower_bound = 0;
  /// Longest happens-before chain: round CPU serialisation plus per-message
  /// max-min transfer floors.
  double critical_path = 0;
  /// max over channels of (earliest entry + total bytes / capacity).
  double channel_serialization = 0;

  /// Deflated bound that stays sound when the run merges completions with
  /// FlowSim's completion slack: slack lets a flow finish early by at most
  /// a slack fraction of each event horizon, and the deferred-allocation
  /// steal path can transiently oversubscribe a channel by ~1% between
  /// exact recomputations, so a 2*slack haircut covers both with margin.
  double for_slack(double completion_slack) const {
    return completion_slack <= 0
               ? lower_bound
               : lower_bound / (1.0 + 2.0 * completion_slack);
  }
};

struct Result {
  std::string machine;  ///< analyzed machine's name.
  Report report;        ///< binding diagnostics (verify::Diagnostic).
  LoadReport load;
  Bound bound;
  bool clean() const { return report.clean(); }
  /// Human-readable load + bound digest (CLI / CI artifact).
  std::string to_string() const;
};

struct Options {
  int top_k = 8;            ///< congested channels kept in the load report.
  bool load_report = true;  ///< skip to make preverify cheapest.
  bool lower_bound = true;
};

/// One plan bound to machine cores — a non-owning mirror of
/// simmpi::PlanJob that also fits ad-hoc schedules (the JobSpec path).
struct JobBinding {
  const simmpi::Schedule* schedule = nullptr;
  const simmpi::PlanExec* exec = nullptr;
  int repetitions = 1;
  const std::vector<std::int64_t>* core_of_rank = nullptr;
  double start_time = 0;
};

/// Analyze one bound plan. Never throws on a bad binding: every defect
/// becomes a located diagnostic (rank/round/msg fields of
/// verify::Diagnostic). The load report and lower bound are computed only
/// when the binding has no Error-level findings.
Result analyze(const simmpi::Plan& plan, const topo::Machine& machine,
               const std::vector<std::int64_t>& core_of_rank,
               const Options& options = {});

/// Analyze several concurrently-launched bound plans — the exact shape
/// simmpi::run_timed executes. Diagnostics from job k are prefixed
/// "job k:" when more than one job is analyzed.
Result analyze_jobs(const topo::Machine& machine,
                    const std::vector<JobBinding>& jobs,
                    const Options& options = {});

/// Human-readable channel name: "socket[3].egress" etc.
std::string channel_name(const topo::Machine& machine, simnet::ChannelId id);

// ---- Payload-invariant bound structure and its cache ------------------------
//
// analyze_jobs splits naturally along the payload axis. Everything the
// worklist DP's CONTROL FLOW depends on — resolved routes, the CSR
// happens-before skeleton, node numbering, pend counts and therefore the
// exact event pop order — is a function of the machine fingerprint and the
// jobs' structural arrays alone; message byte counts only enter as VALUES
// (eager flags, transfer floors, per-round CPU costs, channel byte totals).
// BoundStructure captures the invariant half once — full route resolution,
// validation diagnostics, and the recorded event schedule — and
// evaluate() replays the recorded events applying the identical sequence of
// max/min/+= value operations with floors recomputed from the live payload,
// which makes its Result BIT-IDENTICAL to a fresh
// analyze_jobs(machine, jobs, {load_report=false}) on any structurally
// compatible job list (tests/test_binding.cpp pins this). Soundness is
// therefore inherited, not re-argued: a cached bound IS the uncached bound.

/// The payload-invariant half of one analyze_jobs call (see above). Built
/// from a full analysis; immutable afterwards, so a single structure can be
/// evaluated concurrently from many threads.
class BoundStructure {
 public:
  BoundStructure();
  ~BoundStructure();
  BoundStructure(BoundStructure&&) noexcept;
  BoundStructure& operator=(BoundStructure&&) noexcept;
  BoundStructure(const BoundStructure&) = delete;
  BoundStructure& operator=(const BoundStructure&) = delete;

  /// Run the full analysis (diagnostics + lower bound, no load report) and
  /// record the payload-invariant structure alongside. `fresh` receives
  /// exactly what analyze_jobs(machine, jobs, {load_report=false}) returns.
  static BoundStructure build(const topo::Machine& machine,
                              const std::vector<JobBinding>& jobs,
                              Result& fresh);

  /// True when the recorded binding had no Error diagnostics; only clean
  /// structures can evaluate (a defective binding computes no bound anyway).
  bool clean() const;

  /// Exact structural-equality check: machine fingerprint, job count, and
  /// every payload-invariant array (ranks, repetitions, start times, message
  /// endpoints, execution CSR, core bindings) must match bit for bit. This
  /// is a full comparison, not a hash — a true return PROVES evaluate()
  /// equals the uncached analysis.
  bool compatible(const topo::Machine& machine,
                  const std::vector<JobBinding>& jobs) const;

  /// The payload-dependent pass: recompute eager flags, transfer floors and
  /// per-round CPU costs from the live message bytes, then replay the
  /// recorded event schedule. Requires clean() && compatible(machine, jobs).
  Result evaluate(const topo::Machine& machine,
                  const std::vector<JobBinding>& jobs) const;

  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

/// 64-bit structural key of (machine fingerprint, jobs): the BoundCache
/// index. Collisions are survivable — the cache re-checks
/// BoundStructure::compatible before reusing an entry — so the hash only
/// routes lookups, it never vouches for equality.
std::uint64_t structure_key(const topo::Machine& machine,
                            const std::vector<JobBinding>& jobs);

/// Thread-safe LRU memoization of BoundStructure (the PlanCache idiom):
/// one full route-resolution + recording pass per distinct binding
/// structure, then a cheap evaluate() per payload point. A tune query over
/// a payload grid computes each candidate class's structure once and
/// evaluates it across every byte size. Only clean structures are cached;
/// a key whose stored structure fails the exact compatibility check (hash
/// collision) is rebuilt and replaced, counted as a miss.
class BoundCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    ///< served by a cached structure's evaluate().
    std::uint64_t misses = 0;  ///< full analyses (build or unclean fallback).
    std::uint64_t evictions = 0;  ///< entries dropped by the LRU bound.
    std::size_t entries = 0;
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  /// Default capacity bounds the cache to kDefaultCapacity structures
  /// (LRU); 0 = unbounded.
  static constexpr std::size_t kDefaultCapacity = 512;
  explicit BoundCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Equivalent to analyze_jobs(machine, jobs, {load_report = false,
  /// lower_bound = true}) — bit-identical Result, served from a cached
  /// structure when one matches. `structure_reused` (optional) reports
  /// whether this call skipped the full route-resolution pass.
  Result analyze(const topo::Machine& machine,
                 const std::vector<JobBinding>& jobs,
                 bool* structure_reused = nullptr);

  Stats stats() const;
  /// Drop every entry and reset the counters.
  void clear();
  /// Change the LRU bound; 0 = unbounded. Shrinking evicts oldest first.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

 private:
  struct Entry {
    std::shared_ptr<const BoundStructure> structure;
    std::list<std::uint64_t>::iterator recency;
  };

  /// Precondition: mutex_ held.
  void enforce_capacity_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_ = kDefaultCapacity;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> lru_;  ///< keys, most recently used first.
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mr::verify::binding
