// Static binding analysis: proves properties of a compiled Plan BOUND to a
// Machine through a rank->core mapping, without running the simulator.
//
// mr::verify::analyze(Schedule) proves machine-independent properties;
// topo_check.hpp lints the Machine itself. This header closes the loop on
// the third ingredient of every experiment — the binding — with three
// products per analysis:
//
//  * diagnostics — every send must resolve to a route the flow simulator
//    can carry (channel count within ChanSet's inline capacity, channel
//    ids inside the capacity table), no self-send may cross a channel,
//    bindings must be in range, and suspicious-but-legal shapes (two ranks
//    of one job sharing a core) are flagged as warnings;
//  * a load report — per-round and per-channel traffic (bytes, flow
//    count, serialization seconds, oversubscription ratios) with the
//    top-k congested channels named by level/component, the quantities
//    process-mapping papers rank mappings by;
//  * a critical-path lower bound — the longest chain through the
//    happens-before graph where each message contributes
//    max(path latency, bytes / bottleneck-channel capacity) and each round
//    its CPU serialisation, combined with a per-channel serialization
//    bound (all bytes crossing a channel must drain through its
//    capacity). Under exact max-min fairness (completion slack 0) the
//    bound NEVER exceeds the TimedExecutor's simulated makespan — a
//    standing oracle every current and future engine fast path is tested
//    against; Bound::for_slack deflates it for slack-merged runs.
//
// Soundness sketch (details in DESIGN.md §12): a flow's max-min rate never
// exceeds the capacity of any channel it crosses, so a message's transfer
// lasts at least bytes / min-capacity after a start that the
// happens-before edges delay at least as much as the DP's `ready` chain;
// and a channel's aggregate allocated rate never exceeds its capacity, so
// the last completion on it trails the first entry by at least
// total-bytes / capacity. Both arguments survive every engine fast path
// (interned routes, lazy deadline heap, workspace reuse) because those are
// bit-identical by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mixradix/simmpi/plan.hpp"
#include "mixradix/simnet/flow_sim.hpp"
#include "mixradix/topo/machine.hpp"
#include "mixradix/verify/verify.hpp"

namespace mr::verify::binding {

/// Aggregated traffic of one simulator channel over the whole analysis
/// (all jobs, all repetitions).
struct ChannelLoad {
  simnet::ChannelId channel = -1;
  std::string name;   ///< "socket[3].egress", "numa[0].mem", ...
  std::int64_t bytes = 0;
  std::int64_t flows = 0;
  /// bytes / capacity: the time this channel alone needs to drain its
  /// share of the traffic.
  double serialization_seconds = 0;
  /// Max over rounds of (round bytes on this channel / capacity) divided
  /// by the round's slowest uncontended message — 1.0 means the channel
  /// is no more loaded than the round's natural straggler, k means
  /// contention stretches the round k-fold even under perfect sharing.
  double oversubscription = 0;
};

/// Traffic of one schedule round (round r = the r-th round of each rank's
/// program, for ONE repetition; repetitions repeat the pattern).
struct RoundLoad {
  std::int64_t round = 0;
  std::int64_t bytes = 0;          ///< network-crossing payload posted.
  std::int64_t flows = 0;          ///< messages that cross >= 1 channel.
  double max_oversubscription = 0; ///< over this round's channels.
  simnet::ChannelId hottest = -1;  ///< channel attaining the max, -1 = none.
  std::string hottest_name;
};

struct LoadReport {
  std::vector<RoundLoad> rounds;          ///< indexed by round number.
  std::vector<ChannelLoad> top_channels;  ///< top-k by serialization time.
  std::int64_t total_bytes = 0;  ///< network-crossing, all jobs and reps.
  std::int64_t self_bytes = 0;   ///< same-core payload (latency-only).
  std::int64_t total_flows = 0;  ///< network-crossing messages, all reps.
};

/// The static lower bound and its ingredients.
struct Bound {
  /// max(critical_path, channel_serialization); sound for completion
  /// slack 0 in both engine modes.
  double lower_bound = 0;
  /// Longest happens-before chain: round CPU serialisation plus per-message
  /// max-min transfer floors.
  double critical_path = 0;
  /// max over channels of (earliest entry + total bytes / capacity).
  double channel_serialization = 0;

  /// Deflated bound that stays sound when the run merges completions with
  /// FlowSim's completion slack: slack lets a flow finish early by at most
  /// a slack fraction of each event horizon, and the deferred-allocation
  /// steal path can transiently oversubscribe a channel by ~1% between
  /// exact recomputations, so a 2*slack haircut covers both with margin.
  double for_slack(double completion_slack) const {
    return completion_slack <= 0
               ? lower_bound
               : lower_bound / (1.0 + 2.0 * completion_slack);
  }
};

struct Result {
  std::string machine;  ///< analyzed machine's name.
  Report report;        ///< binding diagnostics (verify::Diagnostic).
  LoadReport load;
  Bound bound;
  bool clean() const { return report.clean(); }
  /// Human-readable load + bound digest (CLI / CI artifact).
  std::string to_string() const;
};

struct Options {
  int top_k = 8;            ///< congested channels kept in the load report.
  bool load_report = true;  ///< skip to make preverify cheapest.
  bool lower_bound = true;
};

/// One plan bound to machine cores — a non-owning mirror of
/// simmpi::PlanJob that also fits ad-hoc schedules (the JobSpec path).
struct JobBinding {
  const simmpi::Schedule* schedule = nullptr;
  const simmpi::PlanExec* exec = nullptr;
  int repetitions = 1;
  const std::vector<std::int64_t>* core_of_rank = nullptr;
  double start_time = 0;
};

/// Analyze one bound plan. Never throws on a bad binding: every defect
/// becomes a located diagnostic (rank/round/msg fields of
/// verify::Diagnostic). The load report and lower bound are computed only
/// when the binding has no Error-level findings.
Result analyze(const simmpi::Plan& plan, const topo::Machine& machine,
               const std::vector<std::int64_t>& core_of_rank,
               const Options& options = {});

/// Analyze several concurrently-launched bound plans — the exact shape
/// simmpi::run_timed executes. Diagnostics from job k are prefixed
/// "job k:" when more than one job is analyzed.
Result analyze_jobs(const topo::Machine& machine,
                    const std::vector<JobBinding>& jobs,
                    const Options& options = {});

/// Human-readable channel name: "socket[3].egress" etc.
std::string channel_name(const topo::Machine& machine, simnet::ChannelId id);

}  // namespace mr::verify::binding
