// The generator matrix: every collective algorithm the library can compile
// to a Schedule, instantiable by name over (nranks, count, root), plus the
// repeat/concat/merge compositions — the riskiest schedule shapes.
//
// The per-algorithm table lives in the simmpi algorithm registry
// (mixradix/simmpi/registry.hpp) — the same single source of truth the
// selector and plan compiler use; this header adds only the composition
// shapes on top. The matrix feeds three consumers: the verifier test suite
// (every point must analyze clean), bench/verify_overhead (analyzer cost vs
// generation cost per point), and the verify_cli example (ad-hoc inspection
// of any point).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mixradix/simmpi/schedule.hpp"

namespace mr::verify {

struct MatrixPoint {
  std::string name;  ///< e.g. "alltoall_bruck/p=16/c=1000".
  std::string algorithm;
  std::int32_t nranks = 0;
  std::int64_t count = 0;
  /// Deferred so consumers can time generation separately from analysis.
  std::function<simmpi::Schedule()> make;
};

/// Names accepted by make_named: every algorithm in
/// mixradix/simmpi/collectives.hpp plus the "repeat", "concat", "merge",
/// and "concat_merge" composition shapes.
std::vector<std::string> algorithm_names();

/// Instantiate algorithm `name` for `p` ranks. `count` follows the
/// collective's own convention (doubles); `root` applies to the rooted
/// collectives and is ignored elsewhere. Throws mr::invalid_argument for
/// unknown names and unsupported (name, p) combinations (e.g.
/// allgather_recursive_doubling on a non-power-of-two p).
simmpi::Schedule make_named(const std::string& name, std::int32_t p,
                            std::int64_t count, std::int32_t root = 0);

/// True when `name` can be instantiated for `p` ranks.
bool supports(const std::string& name, std::int32_t p);

/// The full cross product of algorithm_names() x ranks x counts, skipping
/// unsupported combinations. Rooted collectives appear once per distinct
/// root in {0, p - 1}.
std::vector<MatrixPoint> generator_matrix(
    const std::vector<std::int32_t>& ranks,
    const std::vector<std::int64_t>& counts);

}  // namespace mr::verify
