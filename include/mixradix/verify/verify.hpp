// Static schedule verification: proves properties of a simmpi Schedule
// before either executor touches it.
//
// A Schedule is a deterministic message-passing program with explicit
// message ids (no wildcard matching), post-then-waitall rounds, and
// per-rank private arenas. That makes it fully analyzable ahead of time —
// the analyses MPI correctness checkers like MUST or ISP approximate
// dynamically are exact here:
//
//  * deadlock freedom — a cycle search over the happens-before graph
//    built from per-rank round ordering plus send->recv message edges;
//    failures come with the full rank/round/message cycle trace;
//  * write-race freedom — conflicting same-round writes to overlapping
//    arena regions (recv vs recv under a non-commutative combine, recv
//    vs local copy, copy vs copy);
//  * conservation — every message sent and received exactly once, with
//    equal byte counts on both ends;
//  * liveness lints — writes that are fully overwritten before any read
//    (dead writes) and reads of regions the schedule never writes
//    (external inputs, or uninitialised data when nothing seeds them).
//
// `analyze` never throws on a bad schedule: it returns a Report whose
// diagnostics carry severities. Error-level findings mean at least one
// executor would misbehave (deadlock, nondeterministic result, dropped
// payload); warnings are portability/efficiency hazards; infos are
// observations (inferred input regions).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mixradix/simmpi/schedule.hpp"

namespace mr::verify {

enum class Severity { Info, Warning, Error };

enum class Check {
  Structure,     ///< malformed IR: bad endpoints, dangling ops, regions out of arena
  Conservation,  ///< send/receive multiplicity or byte-count mismatch
  Deadlock,      ///< cycle in the happens-before graph
  Race,          ///< conflicting same-round writes to overlapping regions
  DeadWrite,     ///< region fully overwritten before any read
  UninitRead,    ///< read of a region the schedule never writes
  Binding,       ///< plan-to-machine binding defect (mixradix/verify/binding.hpp)
};

const char* to_string(Severity severity);
const char* to_string(Check check);

struct Diagnostic {
  Severity severity = Severity::Error;
  Check check = Check::Structure;
  std::int32_t rank = -1;  ///< involved rank, -1 when not rank-specific.
  int round = -1;          ///< involved round, -1 when not round-specific.
  std::int32_t msg = -1;   ///< involved message id, -1 when none.
  std::string text;        ///< human-readable; deadlocks carry the cycle trace.

  /// "error[deadlock] rank 1 round 0 msg 3: ..." (locations omitted when -1).
  std::string to_string() const;
};

struct Options {
  bool check_deadlock = true;
  bool check_races = true;
  bool check_dataflow = true;  ///< dead writes + never-written reads.
  /// Arenas are initialised externally before run() (the DataExecutor
  /// contract), so reads of never-written regions are the schedule's
  /// *inputs*. Set false for schedules that must be self-contained: the
  /// same reads are then reported as uninitialised-data-flow warnings.
  bool assume_inputs_initialized = true;
  /// Emit one Info per rank listing the inferred input regions.
  bool report_inputs = false;
  /// Stop appending diagnostics past this count (a closing Info notes the
  /// suppression) so pathological schedules cannot explode the report.
  std::size_t max_diagnostics = 256;
};

struct Report {
  std::vector<Diagnostic> diagnostics;

  std::size_t count(Severity severity) const;
  /// No Error-level diagnostics: every executor will run this schedule to
  /// completion with a deterministic result.
  bool clean() const { return count(Severity::Error) == 0; }
  /// One line: "2 errors, 1 warning, 0 infos".
  std::string summary() const;
  /// Full listing, one diagnostic per paragraph, ending with the summary.
  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Report& report);

/// Statically analyze `schedule`. Structural damage that would make the
/// deeper analyses read out of bounds (dangling message ids, missing
/// programs) short-circuits: the report then carries only the
/// structure/conservation findings.
Report analyze(const simmpi::Schedule& schedule, const Options& options = {});

/// Process-wide number of analyze() invocations so far. Tests and benches
/// use deltas of this counter to prove the plan cache runs the analyzer at
/// most once per distinct plan key.
std::uint64_t analyze_call_count();

}  // namespace mr::verify
